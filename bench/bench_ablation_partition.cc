/// \file bench_ablation_partition.cc
/// \brief Ablation of the four built-in partitioners (Section 3.2): edge-cut
/// quality, balance, partitioning time and the downstream effect on
/// remote-read counts during neighborhood sampling.

#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Ablation — partition algorithm choice",
      "partitioners trade partition time for edge-cut quality; fewer cut "
      "edges mean fewer remote reads during sampling");

  auto graph =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(0.3 * args.scale))).value();
  std::printf("dataset: %s, 8 workers\n\n", graph.ToString().c_str());

  bench::Row({"partitioner", "partition (ms)", "edge cut", "edge balance",
              "repl factor", "hot share", "remote reads"});
  for (const char* name :
       {"edge_cut", "vertex_cut", "grid2d", "streaming", "metis", "hybrid"}) {
    auto partitioner = std::move(MakePartitioner(name)).value();
    Timer t;
    ClusterBuildReport report;
    auto cluster = Cluster::Build(graph, *partitioner, 8, &report);
    if (!cluster.ok()) continue;
    const double partition_ms = report.partition_ms;

    // Downstream workload: 2-hop neighborhood sampling from worker 0.
    CommStats stats;
    DistributedNeighborSource source(*cluster, 0, &stats);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, 5);
    TraverseSampler traverse(
        std::vector<VertexId>(cluster->server(0).owned_vertices()), 7);
    const std::vector<uint32_t> fans{10, 5};
    for (int round = 0; round < 10; ++round) {
      auto seeds = traverse.Sample(128);
      if (seeds.empty()) break;
      hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
    }

    bench::Row({name, bench::Fmt("%.1f", partition_ms),
                bench::Fmt("%.3f", report.partition_stats.edge_cut_fraction),
                bench::Fmt("%.2f", report.partition_stats.edge_balance),
                bench::Fmt("%.2f", report.partition_stats.replication_factor),
                bench::Fmt("%.3f", report.partition_stats.hot_server_share),
                std::to_string(stats.remote_reads.load())});
  }
  return 0;
}
