/// \file bench_theorems.cc
/// \brief Empirical verification of Theorems 1 and 2: on power-law graphs
/// the k-hop in/out neighborhood counts and the importance metric are
/// power-law distributed. Prints the fitted log-log slope (-gamma) and the
/// fit quality r^2 for each quantity at k = 1..3, on a Chung-Lu graph and
/// on the Taobao synthetic AHG.

#include <cstdio>

#include "bench_util.h"
#include "common/histogram.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "graph/khop.h"

namespace aligraph {
namespace {

void RunGraph(const char* name, const AttributedGraph& graph) {
  std::printf("\n%s: %s\n", name, graph.ToString().c_str());
  bench::Row({"quantity", "k", "slope (-gamma)", "r^2"});
  for (int k = 1; k <= 3; ++k) {
    const auto fit_out = FitPowerLawSlope(KHopOutCounts(graph, k));
    bench::Row({"D_o^k (out paths)", std::to_string(k),
                bench::Fmt("%.2f", fit_out.slope),
                bench::Fmt("%.3f", fit_out.r_squared)});
    const auto fit_in = FitPowerLawSlope(KHopInCounts(graph, k));
    bench::Row({"D_i^k (in paths)", std::to_string(k),
                bench::Fmt("%.2f", fit_in.slope),
                bench::Fmt("%.3f", fit_in.r_squared)});
    std::vector<double> imp = ImportanceScores(graph, k);
    for (double& v : imp) v *= 10.0;  // shift body into the fitter's domain
    const auto fit_imp = FitPowerLawSlope(imp);
    bench::Row({"Imp^k (importance)", std::to_string(k),
                bench::Fmt("%.2f", fit_imp.slope),
                bench::Fmt("%.3f", fit_imp.r_squared)});
  }
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Theorems 1 & 2 — power-law property of k-hop counts and importance",
      "all three quantities fit a power law (negative slope, r^2 near 1)");

  gen::ChungLuConfig cfg;
  cfg.num_vertices = static_cast<VertexId>(30000 * args.scale);
  cfg.avg_degree = 10;
  cfg.gamma = 2.3;
  auto chunglu = std::move(gen::ChungLu(cfg)).value();
  RunGraph("Chung-Lu (gamma = 2.3)", chunglu);

  auto taobao =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
  RunGraph("Taobao-small (synthetic)", taobao);
  return 0;
}
