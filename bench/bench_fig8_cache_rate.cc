/// \file bench_fig8_cache_rate.cc
/// \brief Figure 8: percentage of vertices cached vs. the importance
/// threshold tau (k = 2, 1-hop neighbors always cached as in the paper's
/// setup). The curve drops steeply at small tau and flattens — the
/// power-law consequence of Theorem 2.

#include <cstdio>

#include "bench_util.h"
#include "gen/taobao.h"
#include "storage/importance.h"

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner("Figure 8 — cache rate w.r.t. importance threshold",
                "cache rate decreases with threshold, steeply below ~0.2, "
                "then stabilizes; ~20% extra vertices cached at the chosen "
                "threshold");

  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  bench::Row({"threshold", "cached vertices (%)"});
  for (double tau :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    const double rate = CacheRateAtThreshold(graph, /*k=*/2, tau);
    bench::Row({bench::Fmt("%.2f", tau), bench::Pct(rate)});
  }
  return 0;
}
