/// \file bench_fig8_cache_rate.cc
/// \brief Figure 8: percentage of vertices cached vs. the importance
/// threshold tau (k = 2, 1-hop neighbors always cached as in the paper's
/// setup). The curve drops steeply at small tau and flattens — the
/// power-law consequence of Theorem 2.
///
/// The sweep also reports the modeled communication time of a 2-hop
/// NEIGHBORHOOD workload at each threshold, for the coalesced
/// NeighborsBatch path vs. the per-vertex comparator: caching shrinks the
/// remote residue, batching amortizes the per-RPC latency of whatever
/// residue remains — the two optimizations compose.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"
#include "storage/importance.h"

namespace aligraph {
namespace {

struct CommCosts {
  double batched_ms = 0;
  double per_vertex_ms = 0;
};

// One 2-hop NEIGHBORHOOD round (batch 256, fan-out 8x4) from worker 0,
// modeled through both read paths.
CommCosts ModeledWorkload(Cluster& cluster, uint64_t seed) {
  CommModel model;
  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  PerVertexNeighborSource per_vertex(source);
  TraverseSampler traverse(
      std::vector<VertexId>(cluster.server(0).owned_vertices()), seed);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, seed + 1);
  const std::vector<uint32_t> fans{8, 4};
  const auto seeds = traverse.Sample(256);

  CommCosts costs;
  CommStats::Snapshot before = stats.snapshot();
  hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  costs.batched_ms = model.ModeledMillis(stats.snapshot().Delta(before));

  before = stats.snapshot();
  hood.Sample(per_vertex, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  costs.per_vertex_ms = model.ModeledMillis(stats.snapshot().Delta(before));
  return costs;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner("Figure 8 — cache rate w.r.t. importance threshold",
                "cache rate decreases with threshold, steeply below ~0.2, "
                "then stabilizes; ~20% extra vertices cached at the chosen "
                "threshold; batched reads amortize the residual remote cost");

  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();

  bench::Row({"threshold", "cached vertices (%)", "comm batched (ms)",
              "comm per-vertex (ms)"});
  for (double tau :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    const double rate = CacheRateAtThreshold(graph, /*k=*/2, tau);
    cluster.InstallImportanceCache(/*depth=*/2, {tau, tau});
    const auto costs = ModeledWorkload(cluster, args.seed);
    bench::Row({bench::Fmt("%.2f", tau), bench::Pct(rate),
                bench::Ms(costs.batched_ms), bench::Ms(costs.per_vertex_ms)});
  }
  return 0;
}
