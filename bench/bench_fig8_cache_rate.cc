/// \file bench_fig8_cache_rate.cc
/// \brief Figure 8: percentage of vertices cached vs. the importance
/// threshold tau (k = 2, 1-hop neighbors always cached as in the paper's
/// setup). The curve drops steeply at small tau and flattens — the
/// power-law consequence of Theorem 2.
///
/// The sweep also reports the modeled communication time of a 2-hop
/// NEIGHBORHOOD workload at each threshold, for the coalesced
/// NeighborsBatch path vs. the per-vertex comparator: caching shrinks the
/// remote residue, batching amortizes the per-RPC latency of whatever
/// residue remains — the two optimizations compose.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"
#include "storage/importance.h"

namespace aligraph {
namespace {

struct CommCosts {
  double batched_ms = 0;
  double per_vertex_ms = 0;
  CommStats::Snapshot batched_delta;
  CommStats::Snapshot per_vertex_delta;
};

// One 2-hop NEIGHBORHOOD round (batch 256, fan-out 8x4) from worker 0,
// modeled through both read paths.
CommCosts ModeledWorkload(Cluster& cluster, uint64_t seed) {
  CommModel model;
  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  PerVertexNeighborSource per_vertex(source);
  TraverseSampler traverse(
      std::vector<VertexId>(cluster.server(0).owned_vertices()), seed);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, seed + 1);
  const std::vector<uint32_t> fans{8, 4};
  const auto seeds = traverse.Sample(256);

  CommCosts costs;
  CommStats::Snapshot before = stats.snapshot();
  hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  costs.batched_delta = stats.snapshot().Delta(before);
  costs.batched_ms = model.ModeledMillis(costs.batched_delta);

  before = stats.snapshot();
  hood.Sample(per_vertex, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  costs.per_vertex_delta = stats.snapshot().Delta(before);
  costs.per_vertex_ms = model.ModeledMillis(costs.per_vertex_delta);
  return costs;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before Cluster::Build so comm counters resolve here.
  bench::ObsBench obs("fig8_cache_rate", args);
  obs.report().AddMeta("experiment", "Figure 8 cache rate vs threshold");
  bench::Banner("Figure 8 — cache rate w.r.t. importance threshold",
                "cache rate decreases with threshold, steeply below ~0.2, "
                "then stabilizes; ~20% extra vertices cached at the chosen "
                "threshold; batched reads amortize the residual remote cost");

  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());
  obs.report().AddMeta("dataset", graph.ToString());

  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();

  obs.Table("cache_rate", {"threshold", "cached vertices (%)",
                           "comm batched (ms)", "comm per-vertex (ms)"});
  for (double tau :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    const double rate = CacheRateAtThreshold(graph, /*k=*/2, tau);
    cluster.InstallImportanceCache(/*depth=*/2, {tau, tau});
    const auto costs = ModeledWorkload(cluster, args.seed);
    obs.TableRow({bench::Fmt("%.2f", tau), bench::Pct(rate),
                  bench::Ms(costs.batched_ms),
                  bench::Ms(costs.per_vertex_ms)});
    const std::string key = bench::Fmt("tau_%.2f", tau);
    obs.report().AddMetric(key + ".cache_rate", rate);
    obs.report().AddMetric(key + ".comm_batched_ms", costs.batched_ms);
    obs.report().AddMetric(key + ".comm_per_vertex_ms", costs.per_vertex_ms);
    // Persist the per-path comm deltas at the paper's operating point so
    // the report shows WHY batching wins (messages, batched reads).
    if (tau == 0.20) {
      costs.batched_delta.ExportTo(obs.registry(), "fig8.tau020.batched");
      costs.per_vertex_delta.ExportTo(obs.registry(),
                                      "fig8.tau020.per_vertex");
    }
  }
  obs.WriteReport();
  return 0;
}
