/// \file bench_table9_mixture.cc
/// \brief Table 9: Mixture GNN vs. DAE and beta-VAE on the recommendation
/// task (hit recall @ 20 / 50 over held-out user-item edges).
///
/// Paper shape: Mixture GNN lifts HR@20 and HR@50 by ~2 points.

#include <cstdio>
#include <numeric>
#include <vector>

#include "algo/mixture.h"
#include "bench_util.h"
#include "eval/link_prediction.h"
#include "eval/metrics.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

// Ranks for autoencoder models: rank of the held-out item among all items
// by reconstruction score.
std::vector<size_t> AutoencoderRanks(
    algo::InteractionAutoencoder& model,
    const std::vector<std::vector<uint32_t>>& train_items,
    const std::vector<std::pair<uint32_t, uint32_t>>& test_pairs) {
  std::vector<size_t> ranks;
  for (const auto& [user, item] : test_pairs) {
    const auto scores = model.Score(train_items[user]);
    size_t rank = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (i != item && scores[i] > scores[item]) ++rank;
    }
    ranks.push_back(rank);
  }
  return ranks;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 9 — Mixture GNN vs DAE / beta-VAE (hit recall)",
      "Mixture GNN improves HR@20 / HR@50 by ~2 points");

  auto graph =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(0.15 * args.scale)))
          .value();
  auto split = std::move(eval::SplitLinkPrediction(graph, 0.15, 42)).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  const VertexType user_t = graph.schema().VertexTypeId("user").value();
  const VertexType item_t = graph.schema().VertexTypeId("item").value();
  const auto items = graph.VerticesOfType(item_t);
  const VertexId item_base = items.empty() ? 0 : items[0];
  const size_t num_items = items.size();

  // Train interactions per user (from the train split), and test pairs
  // (held-out user->item edges).
  const VertexId num_users =
      static_cast<VertexId>(graph.VerticesOfType(user_t).size());
  std::vector<std::vector<uint32_t>> train_items(num_users);
  for (VertexId u = 0; u < num_users; ++u) {
    for (const Neighbor& nb : split.train.OutNeighbors(u)) {
      if (graph.vertex_type(nb.dst) == item_t) {
        train_items[u].push_back(nb.dst - item_base);
      }
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> test_pairs;
  for (const RawEdge& e : split.test_positive) {
    if (e.src < num_users && graph.vertex_type(e.dst) == item_t) {
      test_pairs.emplace_back(e.src, e.dst - item_base);
    }
  }
  std::printf("test user-item pairs: %zu\n\n", test_pairs.size());

  bench::Row({"method", "HR Rate@20", "HR Rate@50"});

  for (bool variational : {false, true}) {
    algo::InteractionAutoencoder::Config cfg;
    cfg.hidden = 64;
    cfg.epochs = 8;
    cfg.variational = variational;
    algo::InteractionAutoencoder model(num_items, cfg);
    model.Train(train_items);
    const auto ranks = AutoencoderRanks(model, train_items, test_pairs);
    bench::Row({variational ? "beta-VAE" : "DAE",
                bench::Fmt("%.4f", eval::HitRateAtK(ranks, 20)),
                bench::Fmt("%.4f", eval::HitRateAtK(ranks, 50))});
  }

  {
    algo::MixtureGnn::Config cfg;
    cfg.senses = 3;
    cfg.sense_dim = 12;
    cfg.walks.walks_per_vertex = 3;
    cfg.walks.walk_length = 10;
    cfg.epochs = 2;
    algo::MixtureGnn model(cfg);
    auto emb = std::move(model.Embed(split.train)).value();
    // Rank the held-out item among all items by embedding score.
    std::vector<size_t> ranks;
    for (const auto& [user, item] : test_pairs) {
      const double pos = eval::ScorePair(emb, user, item_base + item,
                                         eval::PairScorer::kDot);
      size_t rank = 0;
      for (size_t i = 0; i < num_items; ++i) {
        if (i != item &&
            eval::ScorePair(emb, user, item_base + static_cast<VertexId>(i),
                            eval::PairScorer::kDot) > pos) {
          ++rank;
        }
      }
      ranks.push_back(rank);
    }
    bench::Row({"Mixture GNN (ours)",
                bench::Fmt("%.4f", eval::HitRateAtK(ranks, 20)),
                bench::Fmt("%.4f", eval::HitRateAtK(ranks, 50))});
  }
  return 0;
}
