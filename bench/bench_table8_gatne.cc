/// \file bench_table8_gatne.cc
/// \brief Table 8: GATNE vs. the full baseline set — DeepWalk, Node2Vec,
/// LINE, ANRL, Metapath2Vec, PMNE-n/r/c, MVE, MNE — on the Amazon-like and
/// Taobao-small synthetic AHGs, reporting ROC-AUC / PR-AUC / F1 averaged
/// over edge types.
///
/// Paper shape: GATNE wins every metric on both datasets because it is the
/// only model using the multiplex structure AND the attributes together.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "algo/classic.h"
#include "algo/gatne.h"
#include "algo/heterogeneous.h"
#include "bench_util.h"
#include "eval/link_prediction.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

struct Entry {
  const char* name;
  std::function<std::unique_ptr<algo::EmbeddingAlgorithm>()> make;
  bool per_type = false;  // evaluate with per-edge-type embeddings
};

void RunDataset(const char* dataset_name, const AttributedGraph& graph,
                double test_fraction) {
  auto split =
      std::move(eval::SplitLinkPrediction(graph, test_fraction, 42)).value();
  std::printf("\n%s: %s\n", dataset_name, graph.ToString().c_str());
  bench::Row({"method", "ROC-AUC (%)", "PR-AUC (%)", "F1 (%)"});

  nn::WalkConfig walks;
  walks.walks_per_vertex = 3;
  walks.walk_length = 10;
  nn::SkipGramConfig sgns;
  sgns.dim = 32;
  sgns.epochs = 2;
  sgns.learning_rate = 0.025f;

  std::vector<Entry> entries;
  entries.push_back({"DeepWalk", [&] {
                       algo::DeepWalk::Config c;
                       c.walks = walks;
                       c.sgns = sgns;
                       return std::make_unique<algo::DeepWalk>(c);
                     }});
  entries.push_back({"Node2Vec", [&] {
                       algo::Node2Vec::Config c;
                       c.walks = walks;
                       c.sgns = sgns;
                       c.p = 1.0;
                       c.q = 0.5;
                       return std::make_unique<algo::Node2Vec>(c);
                     }});
  entries.push_back({"LINE", [&] {
                       algo::Line::Config c;
                       c.dim = 32;
                       c.epochs = 2;
                       return std::make_unique<algo::Line>(c);
                     }});
  entries.push_back({"ANRL", [&] {
                       algo::Anrl::Config c;
                       c.dim = 32;
                       c.feature_dim = 24;
                       c.walks = walks;
                       c.epochs = 2;
                       return std::make_unique<algo::Anrl>(c);
                     }});
  entries.push_back({"Metapath2Vec", [&] {
                       algo::Metapath2Vec::Config c;
                       c.walks = walks;
                       c.sgns = sgns;
                       return std::make_unique<algo::Metapath2Vec>(c);
                     }});
  for (auto [label, variant] :
       std::initializer_list<std::pair<const char*, algo::PmneVariant>>{
           {"PMNE-n", algo::PmneVariant::kNetwork},
           {"PMNE-r", algo::PmneVariant::kResults},
           {"PMNE-c", algo::PmneVariant::kCoAnalysis}}) {
    entries.push_back({label, [&, variant] {
                         algo::Pmne::Config c;
                         c.walks = walks;
                         c.sgns = sgns;
                         c.variant = variant;
                         return std::make_unique<algo::Pmne>(c);
                       }});
  }
  entries.push_back({"MVE", [&] {
                       algo::Mve::Config c;
                       c.walks = walks;
                       c.sgns = sgns;
                       return std::make_unique<algo::Mve>(c);
                     }});
  entries.push_back({"MNE", [&] {
                       algo::Mne::Config c;
                       c.walks = walks;
                       c.dim = 32;
                       c.extra_dim = 8;
                       c.epochs = 2;
                       return std::make_unique<algo::Mne>(c);
                     }});

  for (const Entry& entry : entries) {
    auto algorithm = entry.make();
    auto emb = algorithm->Embed(split.train);
    if (!emb.ok()) {
      bench::Row({entry.name, "N.A.", "N.A.", "N.A."});
      continue;
    }
    const auto m = eval::EvaluateLinkPrediction(*emb, split);
    bench::Row({entry.name, bench::Pct(m.roc_auc), bench::Pct(m.pr_auc),
                bench::Pct(m.f1)});
  }

  // GATNE last, evaluated with its per-edge-type embeddings h_{v,c}.
  {
    algo::Gatne::Config c;
    c.dim = 32;
    c.spec_dim = 8;
    c.att_dim = 8;
    c.feature_dim = 24;
    c.alpha = 0.5f;
    c.beta = 1.0f;
    c.walks = walks;
    c.epochs = 3;
    algo::Gatne gatne(c);
    auto emb = gatne.Embed(split.train);
    if (emb.ok()) {
      const auto m = eval::EvaluateLinkPredictionPerType(
          gatne.per_type_embeddings(), split);
      bench::Row({"GATNE (ours)", bench::Pct(m.roc_auc), bench::Pct(m.pr_auc),
                  bench::Pct(m.f1)});
    }
  }
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 8 — GATNE vs. competitors on Amazon and Taobao-small (syn)",
      "GATNE outperforms every baseline on all metrics on both datasets");

  {
    gen::AmazonConfig cfg;
    cfg.num_products = static_cast<VertexId>(4000 * args.scale);
    cfg.num_edges = static_cast<size_t>(60000 * args.scale);
    auto amazon = std::move(gen::Amazon(cfg)).value();
    RunDataset("Amazon (synthetic)", amazon, 0.15);
  }
  {
    auto taobao =
        std::move(gen::Taobao(gen::TaobaoSmallConfig(0.15 * args.scale)))
            .value();
    RunDataset("Taobao-small (synthetic)", taobao, 0.15);
  }
  return 0;
}
