/// \file bench_table12_bayesian.cc
/// \brief Table 12: hit recall of GraphSAGE embeddings with and without the
/// Bayesian knowledge-graph correction, at brand and category granularity,
/// for click and buy behaviours.
///
/// Paper shape: the Bayesian correction lifts HR@{10,30,50} by 1-3 points
/// at every granularity / behaviour combination.

#include <cstdio>
#include <vector>

#include "algo/bayesian.h"
#include "algo/gnn.h"
#include "bench_util.h"
#include "eval/link_prediction.h"
#include "eval/metrics.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

// Ranks of held-out items of one behaviour edge type under an embedding.
std::vector<size_t> Ranks(const nn::Matrix& emb,
                          const eval::LinkPredictionSplit& split,
                          EdgeType behaviour,
                          std::span<const VertexId> item_pool, Rng& rng) {
  std::vector<size_t> ranks;
  for (const RawEdge& e : split.test_positive) {
    if (e.type != behaviour) continue;
    const double pos = eval::ScorePair(emb, e.src, e.dst,
                                       eval::PairScorer::kDot);
    size_t rank = 0;
    for (int c = 0; c < 100; ++c) {
      const VertexId item = item_pool[rng.Uniform(item_pool.size())];
      if (item == e.dst) continue;
      if (eval::ScorePair(emb, e.src, item, eval::PairScorer::kDot) > pos) {
        ++rank;
      }
    }
    ranks.push_back(rank);
  }
  return ranks;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 12 — Bayesian GNN correction, HR@{10,30,50}",
      "adding the Bayesian knowledge correction to GraphSAGE lifts hit "
      "recall by 1-3 points for both brand and category granularity");

  auto graph =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(0.15 * args.scale)))
          .value();
  auto split = std::move(eval::SplitLinkPrediction(graph, 0.15, 42)).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  // Base embeddings from GraphSAGE on the train graph.
  algo::GnnConfig gnn;
  gnn.dim = 32;
  gnn.feature_dim = 32;
  gnn.epochs = 2;
  gnn.batches_per_epoch = 96;
  algo::GraphSage sage(gnn);
  auto base = std::move(sage.Embed(split.train)).value();

  const VertexType item_t = graph.schema().VertexTypeId("item").value();
  const auto item_span = graph.VerticesOfType(item_t);
  std::vector<VertexId> item_vec(item_span.begin(), item_span.end());

  for (auto [gran_name, granularity] :
       {std::pair<const char*, algo::KnowledgeGranularity>{
            "Brand", algo::KnowledgeGranularity::kBrand},
        {"Category", algo::KnowledgeGranularity::kCategory}}) {
    // Knowledge groups from item metadata.
    std::vector<uint32_t> groups;
    groups.reserve(item_vec.size());
    for (VertexId item : item_vec) {
      groups.push_back(granularity == algo::KnowledgeGranularity::kBrand
                           ? gen::ItemBrand(graph, item)
                           : gen::ItemCategory(graph, item));
    }
    algo::BayesianCorrection::Config bc;
    bc.epochs = 2;
    bc.pairs_per_epoch = 10000;
    algo::BayesianCorrection correction(bc);
    auto corrected =
        std::move(correction.Correct(base, item_vec, groups)).value();

    std::printf("\nGranularity: %s\n", gran_name);
    bench::Row({"behaviour", "K", "GraphSAGE", "GraphSAGE + Bayesian"});
    for (const char* behaviour_name : {"click", "buy"}) {
      const EdgeType behaviour =
          graph.schema().EdgeTypeId(behaviour_name).value();
      Rng rng(17);
      const auto base_ranks =
          Ranks(base, split, behaviour, item_vec, rng);
      Rng rng2(17);
      const auto corr_ranks =
          Ranks(corrected, split, behaviour, item_vec, rng2);
      for (size_t k : {10u, 30u, 50u}) {
        bench::Row({behaviour_name, std::to_string(k),
                    bench::Pct(eval::HitRateAtK(base_ranks, k)),
                    bench::Pct(eval::HitRateAtK(corr_ranks, k))});
      }
    }
  }
  return 0;
}
