/// \file bench_table7_ahep.cc
/// \brief Table 7: effectiveness of AHEP vs. its competitors on Taobao-small
/// (synthetic) link prediction.
///
/// Paper shape: at the real Taobao-small's 157M-vertex scale, Struc2Vec /
/// GCN / FastGCN / GraphSAGE cannot finish in reasonable time ("N.A.") and
/// AS-GCN runs out of memory; HEP and AHEP are the only methods that
/// complete, with AHEP slightly below HEP in quality. At our synthetic
/// scale everything finishes, so we report measured quality for all and a
/// per-method runtime column; the quality relation AHEP ~= HEP (small gap)
/// is the reproduced claim, and the runtime column shows the cost ordering
/// that produces the paper's N.A. entries at 7400x scale.

#include <cstdio>

#include "algo/gnn.h"
#include "algo/hep.h"
#include "bench_util.h"
#include "common/timer.h"
#include "eval/link_prediction.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

void Report(const char* name, algo::EmbeddingAlgorithm& algorithm,
            const eval::LinkPredictionSplit& split) {
  Timer t;
  auto emb = algorithm.Embed(split.train);
  const double ms = t.ElapsedMillis();
  if (!emb.ok()) {
    bench::Row({name, "N.A.", "N.A.", "-"});
    return;
  }
  const auto m = eval::EvaluateLinkPrediction(*emb, split);
  bench::Row({name, bench::Pct(m.roc_auc), bench::Pct(m.f1),
              bench::Fmt("%.0f ms", ms)});
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 7 — AHEP effectiveness vs. competitors (Taobao-small syn)",
      "AHEP's ROC-AUC / F1 are close to HEP (paper: 75.51/50.97 vs "
      "77.77/57.93) at a fraction of the cost; the other baselines are "
      "N.A./O.O.M. at the paper's 157M-vertex scale");

  auto graph =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(0.2 * args.scale))).value();
  auto split = std::move(eval::SplitLinkPrediction(graph, 0.15, 42)).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  bench::Row({"method", "ROC-AUC (%)", "F1 (%)", "train time"});

  {
    algo::Struc2Vec::Config c;
    c.sgns.dim = 32;
    c.sgns.epochs = 1;
    c.walks.walks_per_vertex = 2;
    c.walks.walk_length = 8;
    algo::Struc2Vec s2v(c);
    Report("Struc2Vec", s2v, split);
  }
  {
    algo::Gcn::Config c;
    c.base.dim = 32;
    c.base.feature_dim = 32;
    c.base.epochs = 2;
    algo::Gcn gcn(c);
    Report("GCN", gcn, split);
  }
  {
    algo::Gcn::Config c;
    c.base.dim = 32;
    c.base.feature_dim = 32;
    c.base.epochs = 2;
    c.mode = algo::GcnMode::kFastGcn;
    algo::Gcn fast(c);
    Report("FastGCN", fast, split);
  }
  {
    algo::Gcn::Config c;
    c.base.dim = 32;
    c.base.feature_dim = 32;
    c.base.epochs = 2;
    c.mode = algo::GcnMode::kAsGcn;
    algo::Gcn as(c);
    Report("AS-GCN", as, split);
  }
  {
    algo::GnnConfig c;
    c.dim = 32;
    c.feature_dim = 32;
    c.epochs = 2;
    c.batches_per_epoch = 64;
    algo::GraphSage sage(c);
    Report("GraphSAGE", sage, split);
  }
  {
    algo::Hep::Config c;
    c.dim = 32;
    c.epochs = 6;
    c.learning_rate = 0.1f;
    c.negatives = 5;
    algo::Hep hep(c);
    Report("HEP", hep, split);
  }
  {
    algo::Hep::Config c;
    c.dim = 32;
    c.epochs = 6;
    c.learning_rate = 0.1f;
    c.negatives = 5;
    c.sample_size = 2;
    algo::Hep ahep(c);
    Report("AHEP", ahep, split);
  }
  return 0;
}
