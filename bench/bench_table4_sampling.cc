/// \file bench_table4_sampling.cc
/// \brief Table 4: latency of the three optimized samplers — TRAVERSE,
/// NEIGHBORHOOD, NEGATIVE — with batch size 512 and ~20% importance cache,
/// on Taobao-small and Taobao-large (synthetic).
///
/// Reported time = measured CPU time + modeled communication time per
/// batch. The paper's claims: all samplers finish within tens of
/// milliseconds, and latency grows slowly with graph size.

#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

struct SamplingTimes {
  double traverse_ms = 0;
  double neighborhood_ms = 0;       ///< batched NeighborsBatch pipeline
  double neighborhood_pv_ms = 0;    ///< per-vertex comparator (one RPC/read)
  double negative_ms = 0;
  double cache_rate = 0;
  // Modeled-communication-only components: pure functions of the comm
  // counters, hence bit-stable for a fixed seed/scale. These feed the
  // regression gate (bench/baseline.json); the wall-clock metrics above
  // stay out of it.
  double neighborhood_modeled_ms = 0;
  double neighborhood_pv_modeled_ms = 0;
};

SamplingTimes RunDataset(const AttributedGraph& graph, uint32_t workers,
                         uint64_t seed) {
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), workers)).value();
  SamplingTimes out;
  // ~20% cache as in the paper's setting.
  cluster.InstallTopImportanceCache(/*k=*/1, 0.2);
  out.cache_rate = 0.2;

  CommModel model;
  const size_t batch = 512;
  const int rounds = 20;

  // TRAVERSE: batch of seed vertices from one worker's partition.
  std::vector<VertexId> pool(cluster.server(0).owned_vertices());
  TraverseSampler traverse(pool, seed);
  {
    Timer t;
    for (int r = 0; r < rounds; ++r) {
      auto seeds = traverse.Sample(batch);
      if (seeds.empty()) break;
    }
    out.traverse_ms = t.ElapsedMillis() / rounds;
  }

  // NEIGHBORHOOD: 2-hop context [10, 5] for the batch, through the cluster.
  // Run the coalesced NeighborsBatch pipeline and the per-vertex comparator
  // on the same seeds; the Snapshot delta isolates each path's counters.
  {
    CommStats stats;
    DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
    PerVertexNeighborSource per_vertex(source);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, seed + 1);
    const std::vector<uint32_t> fans{10, 5};
    {
      const CommStats::Snapshot before = stats.snapshot();
      Timer t;
      for (int r = 0; r < rounds; ++r) {
        auto seeds = traverse.Sample(batch);
        hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
      }
      const CommStats::Snapshot delta = stats.snapshot().Delta(before);
      out.neighborhood_ms =
          (t.ElapsedMillis() + model.ModeledMillis(delta)) / rounds;
      out.neighborhood_modeled_ms = model.ModeledMillis(delta) / rounds;
    }
    {
      const CommStats::Snapshot before = stats.snapshot();
      Timer t;
      for (int r = 0; r < rounds; ++r) {
        auto seeds = traverse.Sample(batch);
        hood.Sample(per_vertex, seeds, NeighborhoodSampler::kAllEdgeTypes,
                    fans);
      }
      const CommStats::Snapshot delta = stats.snapshot().Delta(before);
      out.neighborhood_pv_ms =
          (t.ElapsedMillis() + model.ModeledMillis(delta)) / rounds;
      out.neighborhood_pv_modeled_ms = model.ModeledMillis(delta) / rounds;
    }
  }

  // NEGATIVE: degree^0.75 noise, batch draws of 5 negatives each.
  {
    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    NegativeSampler negatives(graph, all, 0.75, seed + 2);
    Timer t;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < batch; ++i) {
        negatives.Sample(5, static_cast<VertexId>(i));
      }
    }
    out.negative_ms = t.ElapsedMillis() / rounds;
  }
  return out;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach the observability session before any Cluster is built so the
  // comm counters resolve against this registry.
  bench::ObsBench obs("table4_sampling", args);
  obs.report().AddMeta("experiment", "Table 4 sampling latency");
  bench::Banner(
      "Table 4 — sampling latency (batch = 512, ~20% cache)",
      "TRAVERSE a few ms, NEIGHBORHOOD tens of ms, NEGATIVE a few ms; "
      "batched neighbor reads amortize the per-RPC latency the per-vertex "
      "path pays on every remote read");

  obs.Table("sampling_latency",
            {"dataset", "workers", "TRAVERSE", "NBHD batched",
             "NBHD per-vertex", "NEGATIVE"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto t = RunDataset(g, 4, args.seed);
    obs.TableRow({"Taobao-small (syn)", "4", bench::Ms(t.traverse_ms),
                  bench::Ms(t.neighborhood_ms),
                  bench::Ms(t.neighborhood_pv_ms), bench::Ms(t.negative_ms)});
    obs.report().AddMetric("taobao_small.traverse_ms", t.traverse_ms);
    obs.report().AddMetric("taobao_small.neighborhood_ms", t.neighborhood_ms);
    obs.report().AddMetric("taobao_small.neighborhood_per_vertex_ms",
                           t.neighborhood_pv_ms);
    obs.report().AddMetric("taobao_small.negative_ms", t.negative_ms);
    obs.report().AddMetric("taobao_small.neighborhood_modeled_ms",
                           t.neighborhood_modeled_ms);
    obs.report().AddMetric("taobao_small.neighborhood_per_vertex_modeled_ms",
                           t.neighborhood_pv_modeled_ms);
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    const auto t = RunDataset(g, 8, args.seed);
    obs.TableRow({"Taobao-large (syn)", "8", bench::Ms(t.traverse_ms),
                  bench::Ms(t.neighborhood_ms),
                  bench::Ms(t.neighborhood_pv_ms), bench::Ms(t.negative_ms)});
    obs.report().AddMetric("taobao_large.traverse_ms", t.traverse_ms);
    obs.report().AddMetric("taobao_large.neighborhood_ms", t.neighborhood_ms);
    obs.report().AddMetric("taobao_large.neighborhood_per_vertex_ms",
                           t.neighborhood_pv_ms);
    obs.report().AddMetric("taobao_large.negative_ms", t.negative_ms);
    obs.report().AddMetric("taobao_large.neighborhood_modeled_ms",
                           t.neighborhood_modeled_ms);
    obs.report().AddMetric("taobao_large.neighborhood_per_vertex_modeled_ms",
                           t.neighborhood_pv_modeled_ms);
  }
  obs.WriteReport();
  return 0;
}
