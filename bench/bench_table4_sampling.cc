/// \file bench_table4_sampling.cc
/// \brief Table 4: latency of the three optimized samplers — TRAVERSE,
/// NEIGHBORHOOD, NEGATIVE — with batch size 512 and ~20% importance cache,
/// on Taobao-small and Taobao-large (synthetic).
///
/// Reported time = measured CPU time + modeled communication time per
/// batch. The paper's claims: all samplers finish within tens of
/// milliseconds, and latency grows slowly with graph size.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "gen/zipf.h"
#include "layout/layout.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

struct SamplingTimes {
  double traverse_ms = 0;
  double neighborhood_ms = 0;       ///< batched NeighborsBatch pipeline
  double neighborhood_pv_ms = 0;    ///< per-vertex comparator (one RPC/read)
  double negative_ms = 0;
  double cache_rate = 0;
  // Modeled-communication-only components: pure functions of the comm
  // counters, hence bit-stable for a fixed seed/scale. These feed the
  // regression gate (bench/baseline.json); the wall-clock metrics above
  // stay out of it.
  double neighborhood_modeled_ms = 0;
  double neighborhood_pv_modeled_ms = 0;
};

SamplingTimes RunDataset(const AttributedGraph& graph, uint32_t workers,
                         uint64_t seed) {
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), workers)).value();
  SamplingTimes out;
  // ~20% cache as in the paper's setting.
  cluster.InstallTopImportanceCache(/*k=*/1, 0.2);
  out.cache_rate = 0.2;

  CommModel model;
  const size_t batch = 512;
  const int rounds = 20;

  // TRAVERSE: batch of seed vertices from one worker's partition.
  std::vector<VertexId> pool(cluster.server(0).owned_vertices());
  TraverseSampler traverse(pool, seed);
  {
    Timer t;
    for (int r = 0; r < rounds; ++r) {
      auto seeds = traverse.Sample(batch);
      if (seeds.empty()) break;
    }
    out.traverse_ms = t.ElapsedMillis() / rounds;
  }

  // NEIGHBORHOOD: 2-hop context [10, 5] for the batch, through the cluster.
  // Run the coalesced NeighborsBatch pipeline and the per-vertex comparator
  // on the same seeds; the Snapshot delta isolates each path's counters.
  {
    CommStats stats;
    DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
    PerVertexNeighborSource per_vertex(source);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, seed + 1);
    const std::vector<uint32_t> fans{10, 5};
    {
      const CommStats::Snapshot before = stats.snapshot();
      Timer t;
      for (int r = 0; r < rounds; ++r) {
        auto seeds = traverse.Sample(batch);
        hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
      }
      const CommStats::Snapshot delta = stats.snapshot().Delta(before);
      out.neighborhood_ms =
          (t.ElapsedMillis() + model.ModeledMillis(delta)) / rounds;
      out.neighborhood_modeled_ms = model.ModeledMillis(delta) / rounds;
    }
    {
      const CommStats::Snapshot before = stats.snapshot();
      Timer t;
      for (int r = 0; r < rounds; ++r) {
        auto seeds = traverse.Sample(batch);
        hood.Sample(per_vertex, seeds, NeighborhoodSampler::kAllEdgeTypes,
                    fans);
      }
      const CommStats::Snapshot delta = stats.snapshot().Delta(before);
      out.neighborhood_pv_ms =
          (t.ElapsedMillis() + model.ModeledMillis(delta)) / rounds;
      out.neighborhood_pv_modeled_ms = model.ModeledMillis(delta) / rounds;
    }
  }

  // NEGATIVE: degree^0.75 noise, batch draws of 5 negatives each.
  {
    std::vector<VertexId> all(graph.num_vertices());
    std::iota(all.begin(), all.end(), 0);
    NegativeSampler negatives(graph, all, 0.75, seed + 2);
    Timer t;
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < batch; ++i) {
        negatives.Sample(5, static_cast<VertexId>(i));
      }
    }
    out.negative_ms = t.ElapsedMillis() / rounds;
  }
  return out;
}

/// One layout variant's modeled replay of the recorded gather trace.
struct ReorderCost {
  layout::LayoutPolicy policy = layout::LayoutPolicy::kIdentity;
  double modeled_us = 0;
  double hit_rate = 0;
};

struct ReorderCosts {
  ReorderCost identity, degree, bfs, hot;
  /// identity modeled cost / hot-first modeled cost — the gated
  /// `sampling.reorder_speedup` key.
  double speedup = 0;
};

/// Reorder-on/off variants of the batched root-neighborhood gather.
///
/// The study runs on a FIXED ChungLu graph (not the scale-dependent Taobao
/// sets): layout effects need the graph to dwarf the modeled cache, and at
/// smoke scale the Taobao graphs fit entirely — the gated ratio must mean
/// the same thing at every --scale. Traffic is Zipf over an ACTIVITY
/// ranking drawn independently of degree (item popularity correlates only
/// loosely with connectivity), the sampler records its coalesced
/// per-request walk through a RecordingNeighborSource, and each layout
/// replays the identical reads — re-coalesced in its own id space, exactly
/// as the batch walk would touch memory — through the LRU + stream-
/// prefetch line model over its CSR geometry. Pure function of the seed,
/// so the speedup is bit-stable and CI can gate it.
ReorderCosts RunReorder(uint64_t seed) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 20000;
  cfg.avg_degree = 3;
  cfg.seed = 42;
  const AttributedGraph graph = std::move(gen::ChungLu(cfg)).value();

  // Activity ranking: a seeded shuffle of the vertex set.
  std::vector<VertexId> activity(graph.num_vertices());
  std::iota(activity.begin(), activity.end(), 0);
  Rng arng(seed + 11);
  for (size_t i = activity.size(); i > 1; --i) {
    std::swap(activity[i - 1], activity[arng.Uniform(i)]);
  }

  gen::ZipfConfig zcfg;
  zcfg.num_ranks = graph.num_vertices();
  zcfg.exponent = 1.2;
  zcfg.seed = seed + 6;
  gen::ZipfSampler zipf(zcfg);

  LocalNeighborSource local(graph);
  layout::RecordingNeighborSource recorder(local);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, seed + 5);
  const std::vector<uint32_t> fans{10};
  constexpr size_t kBatch = 512;
  constexpr int kRequests = 40;
  std::vector<VertexId> roots(kBatch);
  for (int r = 0; r < kRequests; ++r) {
    for (VertexId& v : roots) v = activity[zipf.Next()];
    hood.Sample(recorder, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  }
  // One window per request: the batch walk coalesces within a request,
  // never across requests.
  const std::vector<VertexId>& trace = recorder.trace();

  // An L1-ish cache (256 lines = 16 KiB of adjacency) against a ~5600-line
  // adjacency footprint: the packed hot band fits, a scattered one cannot.
  layout::CacheModelConfig model;
  model.cache_lines = 256;

  ReorderCosts out;
  const auto run = [&](const layout::VertexLayout& lay,
                       layout::LayoutPolicy policy) {
    ReorderCost cost;
    cost.policy = policy;
    const AttributedGraph reordered =
        std::move(layout::ApplyLayout(graph, lay)).value();
    std::vector<VertexId> replay = layout::MapToNew(lay, trace);
    for (size_t w = 0; w + kBatch <= replay.size(); w += kBatch) {
      std::sort(replay.begin() + static_cast<ptrdiff_t>(w),
                replay.begin() + static_cast<ptrdiff_t>(w + kBatch));
    }
    const layout::ScanCost scan =
        layout::ModeledScanCost(reordered, replay, model);
    cost.modeled_us = scan.modeled_us;
    cost.hit_rate = scan.HitRate();
    return cost;
  };
  out.identity = run(layout::VertexLayout::Identity(graph.num_vertices()),
                     layout::LayoutPolicy::kIdentity);
  out.degree =
      run(layout::ComputeLayout(graph, layout::LayoutPolicy::kDegreeDescending),
          layout::LayoutPolicy::kDegreeDescending);
  out.bfs = run(layout::ComputeLayout(graph, layout::LayoutPolicy::kBfsCluster),
                layout::LayoutPolicy::kBfsCluster);
  out.hot = run(layout::ComputeHotFirstLayout(graph, activity),
                layout::LayoutPolicy::kHotFirst);
  out.speedup = out.identity.modeled_us / out.hot.modeled_us;
  return out;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach the observability session before any Cluster is built so the
  // comm counters resolve against this registry.
  bench::ObsBench obs("table4_sampling", args);
  obs.report().AddMeta("experiment", "Table 4 sampling latency");
  bench::Banner(
      "Table 4 — sampling latency (batch = 512, ~20% cache)",
      "TRAVERSE a few ms, NEIGHBORHOOD tens of ms, NEGATIVE a few ms; "
      "batched neighbor reads amortize the per-RPC latency the per-vertex "
      "path pays on every remote read");

  obs.Table("sampling_latency",
            {"dataset", "workers", "TRAVERSE", "NBHD batched",
             "NBHD per-vertex", "NEGATIVE"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto t = RunDataset(g, 4, args.seed);
    obs.TableRow({"Taobao-small (syn)", "4", bench::Ms(t.traverse_ms),
                  bench::Ms(t.neighborhood_ms),
                  bench::Ms(t.neighborhood_pv_ms), bench::Ms(t.negative_ms)});
    obs.report().AddMetric("taobao_small.traverse_ms", t.traverse_ms);
    obs.report().AddMetric("taobao_small.neighborhood_ms", t.neighborhood_ms);
    obs.report().AddMetric("taobao_small.neighborhood_per_vertex_ms",
                           t.neighborhood_pv_ms);
    obs.report().AddMetric("taobao_small.negative_ms", t.negative_ms);
    obs.report().AddMetric("taobao_small.neighborhood_modeled_ms",
                           t.neighborhood_modeled_ms);
    obs.report().AddMetric("taobao_small.neighborhood_per_vertex_modeled_ms",
                           t.neighborhood_pv_modeled_ms);

  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    const auto t = RunDataset(g, 8, args.seed);
    obs.TableRow({"Taobao-large (syn)", "8", bench::Ms(t.traverse_ms),
                  bench::Ms(t.neighborhood_ms),
                  bench::Ms(t.neighborhood_pv_ms), bench::Ms(t.negative_ms)});
    obs.report().AddMetric("taobao_large.traverse_ms", t.traverse_ms);
    obs.report().AddMetric("taobao_large.neighborhood_ms", t.neighborhood_ms);
    obs.report().AddMetric("taobao_large.neighborhood_per_vertex_ms",
                           t.neighborhood_pv_ms);
    obs.report().AddMetric("taobao_large.negative_ms", t.negative_ms);
    obs.report().AddMetric("taobao_large.neighborhood_modeled_ms",
                           t.neighborhood_modeled_ms);
    obs.report().AddMetric("taobao_large.neighborhood_per_vertex_modeled_ms",
                           t.neighborhood_pv_modeled_ms);
  }
  {
    // Reorder-on/off variants: same recorded gather trace, replayed through
    // the cache-line model under each layout (fixed study graph — see
    // RunReorder). Modeled, hence deterministic —
    // `sampling.reorder_speedup` feeds the regression gate.
    const ReorderCosts rc = RunReorder(args.seed);
    obs.Table("reorder_locality",
              {"layout", "modeled scan", "hit rate", "vs identity"});
    const auto row = [&obs, &rc](const ReorderCost& c) {
      char hit[32], rel[32];
      std::snprintf(hit, sizeof(hit), "%.1f%%", c.hit_rate * 100.0);
      std::snprintf(rel, sizeof(rel), "%.2fx",
                    rc.identity.modeled_us / c.modeled_us);
      obs.TableRow({layout::PolicyName(c.policy),
                    bench::Ms(c.modeled_us / 1000.0), hit, rel});
    };
    row(rc.identity);
    row(rc.degree);
    row(rc.bfs);
    row(rc.hot);
    obs.report().AddMetric("sampling.reorder_speedup", rc.speedup);
    obs.report().AddMetric("sampling.reorder_hit_rate.identity",
                           rc.identity.hit_rate);
    obs.report().AddMetric("sampling.reorder_hit_rate.degree_descending",
                           rc.degree.hit_rate);
    obs.report().AddMetric("sampling.reorder_hit_rate.bfs_cluster",
                           rc.bfs.hit_rate);
    obs.report().AddMetric("sampling.reorder_hit_rate.hot_first",
                           rc.hot.hit_rate);
  }
  obs.WriteReport();
  return 0;
}
