/// \file bench_serve.cc
/// \brief Online serving experiment: SLO-driven request front-end over the
/// block execution path, driven by closed- and open-loop load.
///
/// Sweeps an open-loop Poisson stream across light / saturated / overloaded
/// arrival rates plus one closed-loop client population, and reports the
/// modeled tail latency (p50/p99/p99.9), goodput, shed rate and deadline
/// miss rate of each. All gated numbers live on the MODELED clock of
/// ServeEngine's discrete-event simulation, so they are a pure function of
/// (scale, seed) — byte-identical across machines — which is what lets CI
/// gate serving p99 and goodput against bench/baseline.json the same way it
/// gates the training-pipeline speedup. Run with --trace-out to export the
/// per-request Chrome trace and the slowest request's critical path.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "bench_util.h"
#include "gen/powerlaw.h"
#include "nn/matrix.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"

namespace {

using namespace aligraph;

struct Scenario {
  std::string key;     ///< metric prefix, e.g. "serve.open_1x"
  std::string label;   ///< table cell
  serve::LoadConfig load;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::ObsBench obs("bench_serve", args);
  bench::Banner(
      "Online serving: tail latency under closed/open-loop load",
      "the platform serves online GNN queries at production latency "
      "(Section 5: ~20ms P99 at Taobao scale); here the modeled serving "
      "sim gates p99 / p99.9 / goodput deterministically");

  // Power-law graph standing in for the serving catalog; Zipf-hot requests
  // concentrate on its hubs exactly as production traffic does.
  gen::ChungLuConfig gcfg;
  gcfg.num_vertices = std::max<VertexId>(
      static_cast<VertexId>(40000 * args.scale), 500);
  gcfg.avg_degree = 8;
  gcfg.seed = args.seed;
  const AttributedGraph graph = std::move(gen::ChungLu(gcfg)).value();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 16);
  std::printf("graph: %u vertices, %zu edges | %zu requests/scenario\n\n",
              graph.num_vertices(), graph.num_edges(),
              static_cast<size_t>(std::max(4000.0 * args.scale, 200.0)));

  serve::ServeConfig scfg;
  scfg.fanout1 = 10;
  scfg.fanout2 = 5;
  scfg.dim = 32;
  scfg.max_in_flight = 16;
  scfg.lanes = 2;
  scfg.deadline_us = 5000.0;
  scfg.pipeline_depth = 2;
  scfg.seed = args.seed + 29;
  serve::ServeEngine engine(graph, features, scfg);

  // Modeled capacity with these fans is ~7k rps on 2 lanes; the sweep
  // brackets it from well under to 1.7x over.
  const uint64_t num_requests =
      static_cast<uint64_t>(std::max(4000.0 * args.scale, 200.0));
  auto open_load = [&](double rate) {
    serve::LoadConfig load;
    load.mode = serve::LoadConfig::Mode::kOpen;
    load.num_requests = num_requests;
    load.roots_per_request = 4;
    load.zipf_exponent = 0.9;
    load.arrival_rate_rps = rate;
    load.seed = args.seed + 17;
    return load;
  };
  serve::LoadConfig closed_load;
  closed_load.mode = serve::LoadConfig::Mode::kClosed;
  closed_load.num_requests = num_requests;
  closed_load.roots_per_request = 4;
  closed_load.zipf_exponent = 0.9;
  closed_load.num_users = 8;
  closed_load.think_time_us = 500.0;
  closed_load.seed = args.seed + 17;

  const std::vector<Scenario> scenarios = {
      {"serve.open_light", "open 3k rps", open_load(3000.0)},
      {"serve.open", "open 6k rps", open_load(6000.0)},
      {"serve.open_overload", "open 12k rps", open_load(12000.0)},
      {"serve.closed", "closed 8 users", closed_load},
  };

  obs.Table("serving", {"scenario", "completed", "shed %", "miss %",
                        "p50 us", "p99 us", "p99.9 us", "goodput rps"});
  for (const Scenario& s : scenarios) {
    const serve::LoadGenerator gen(graph, s.load);
    const serve::LatencyReport r = engine.Run(gen);
    obs.TableRow({s.label,
                  std::to_string(r.completed) + "/" + std::to_string(r.offered),
                  bench::Pct(r.shed_rate), bench::Pct(r.deadline_miss_rate),
                  bench::Fmt("%.1f", r.p50_us), bench::Fmt("%.1f", r.p99_us),
                  bench::Fmt("%.1f", r.p999_us),
                  bench::Fmt("%.1f", r.goodput_rps)});
    // Modeled numbers only: deterministic, hence gateable.
    obs.report().AddMetric(s.key + ".p50_modeled_us", r.p50_us);
    obs.report().AddMetric(s.key + ".p99_modeled_us", r.p99_us);
    obs.report().AddMetric(s.key + ".p999_modeled_us", r.p999_us);
    obs.report().AddMetric(s.key + ".goodput_rps", r.goodput_rps);
    obs.report().AddMetric(s.key + ".shed_rate", r.shed_rate);
    obs.report().AddMetric(s.key + ".deadline_miss_rate",
                           r.deadline_miss_rate);
  }

  obs.WriteReport();
  return 0;
}
