/// \file bench_serve.cc
/// \brief Online serving experiment: SLO-driven request front-end over the
/// block execution path, driven by closed- and open-loop load.
///
/// Sweeps an open-loop Poisson stream across light / saturated / overloaded
/// arrival rates plus one closed-loop client population, and reports the
/// modeled tail latency (p50/p99/p99.9), goodput, shed rate and deadline
/// miss rate of each. All gated numbers live on the MODELED clock of
/// ServeEngine's discrete-event simulation, so they are a pure function of
/// (scale, seed) — byte-identical across machines — which is what lets CI
/// gate serving p99 and goodput against bench/baseline.json the same way it
/// gates the training-pipeline speedup. Run with --trace-out to export the
/// per-request Chrome trace and the slowest request's critical path.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "bench_util.h"
#include "gen/powerlaw.h"
#include "nn/matrix.h"
#include "obs/attrib.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"

namespace {

using namespace aligraph;

struct Scenario {
  std::string key;     ///< metric prefix, e.g. "serve.open_1x"
  std::string label;   ///< table cell
  serve::LoadConfig load;
};

/// Snapshots one scenario's windowed timeline into report-table rows while
/// the engine still holds it (the next Run() rebuilds the timeline).
std::vector<std::vector<std::string>> TimelineRows(
    const serve::ServeTimeline& tl) {
  std::vector<std::vector<std::string>> rows;
  const double interval_us = tl.offered.interval_us();
  for (int64_t w = tl.first_index(); w <= tl.last_index(); ++w) {
    rows.push_back(
        {bench::Fmt("%.1f", static_cast<double>(w) * interval_us * 1e-3),
         std::to_string(tl.offered.At(w).count),
         std::to_string(tl.completed.At(w).count),
         std::to_string(tl.shed.At(w).count),
         std::to_string(tl.missed.At(w).count),
         bench::Fmt("%.1f", tl.completed.RatePerSec(w)),
         bench::Fmt("%.1f", tl.completed.Percentile(w, 50.0)),
         bench::Fmt("%.1f", tl.completed.Percentile(w, 99.0))});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::ObsBench obs("bench_serve", args);
  bench::Banner(
      "Online serving: tail latency under closed/open-loop load",
      "the platform serves online GNN queries at production latency "
      "(Section 5: ~20ms P99 at Taobao scale); here the modeled serving "
      "sim gates p99 / p99.9 / goodput deterministically");

  // Power-law graph standing in for the serving catalog; Zipf-hot requests
  // concentrate on its hubs exactly as production traffic does.
  gen::ChungLuConfig gcfg;
  gcfg.num_vertices = std::max<VertexId>(
      static_cast<VertexId>(40000 * args.scale), 500);
  gcfg.avg_degree = 8;
  gcfg.seed = args.seed;
  const AttributedGraph graph = std::move(gen::ChungLu(gcfg)).value();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 16);
  std::printf("graph: %u vertices, %zu edges | %zu requests/scenario\n\n",
              graph.num_vertices(), graph.num_edges(),
              static_cast<size_t>(std::max(4000.0 * args.scale, 200.0)));

  serve::ServeConfig scfg;
  scfg.fanout1 = 10;
  scfg.fanout2 = 5;
  scfg.dim = 32;
  scfg.max_in_flight = 16;
  scfg.lanes = 2;
  scfg.deadline_us = 5000.0;
  scfg.pipeline_depth = 2;
  scfg.seed = args.seed + 29;
  // 50ms modeled windows: each scenario's stream spans a few hundred ms to
  // ~1.5s, so the timeline gets a handful-to-dozens of points.
  scfg.timeline_interval_us = 50000.0;
  serve::ServeEngine engine(graph, features, scfg);

  // Modeled capacity with these fans is ~7k rps on 2 lanes; the sweep
  // brackets it from well under to 1.7x over.
  const uint64_t num_requests =
      static_cast<uint64_t>(std::max(4000.0 * args.scale, 200.0));
  auto open_load = [&](double rate) {
    serve::LoadConfig load;
    load.mode = serve::LoadConfig::Mode::kOpen;
    load.num_requests = num_requests;
    load.roots_per_request = 4;
    load.zipf_exponent = 0.9;
    load.arrival_rate_rps = rate;
    load.seed = args.seed + 17;
    return load;
  };
  serve::LoadConfig closed_load;
  closed_load.mode = serve::LoadConfig::Mode::kClosed;
  closed_load.num_requests = num_requests;
  closed_load.roots_per_request = 4;
  closed_load.zipf_exponent = 0.9;
  closed_load.num_users = 8;
  closed_load.think_time_us = 500.0;
  closed_load.seed = args.seed + 17;

  const std::vector<Scenario> scenarios = {
      {"serve.open_light", "open 3k rps", open_load(3000.0)},
      {"serve.open", "open 6k rps", open_load(6000.0)},
      {"serve.open_overload", "open 12k rps", open_load(12000.0)},
      {"serve.closed", "closed 8 users", closed_load},
  };

  // The gated "serve.open" scenario also feeds a flight recorder: K
  // slowest completed requests + a uniform sample, traces rematched from
  // the span rings after the run, dumped for tools/trace_attrib.
  obs::FlightRecorderConfig rcfg;
  rcfg.slowest_k = 8;
  rcfg.sample_k = 8;
  rcfg.seed = args.seed;
  obs::FlightRecorder recorder(rcfg);
  obs::AttributionReport open_attrib;
  bool have_open_attrib = false;

  double min_coverage = 1.0;
  // Timeline rows are snapshotted inside the loop (the next Run() rebuilds
  // the engine's timeline) but emitted as report tables only after the
  // serving table's rows are complete — AddRow appends to the LAST table.
  std::vector<std::vector<std::vector<std::string>>> timelines;
  obs.Table("serving", {"scenario", "completed", "shed %", "miss %",
                        "p50 us", "p99 us", "p99.9 us", "goodput rps"});
  for (const Scenario& s : scenarios) {
    const bool recorded = s.key == "serve.open";
    engine.set_recorder(recorded ? &recorder : nullptr);
    const serve::LoadGenerator gen(graph, s.load);
    const serve::LatencyReport r = engine.Run(gen);
    obs.TableRow({s.label,
                  std::to_string(r.completed) + "/" + std::to_string(r.offered),
                  bench::Pct(r.shed_rate), bench::Pct(r.deadline_miss_rate),
                  bench::Fmt("%.1f", r.p50_us), bench::Fmt("%.1f", r.p99_us),
                  bench::Fmt("%.1f", r.p999_us),
                  bench::Fmt("%.1f", r.goodput_rps)});
    // Modeled numbers only: deterministic, hence gateable.
    obs.report().AddMetric(s.key + ".p50_modeled_us", r.p50_us);
    obs.report().AddMetric(s.key + ".p99_modeled_us", r.p99_us);
    obs.report().AddMetric(s.key + ".p999_modeled_us", r.p999_us);
    obs.report().AddMetric(s.key + ".goodput_rps", r.goodput_rps);
    obs.report().AddMetric(s.key + ".shed_rate", r.shed_rate);
    obs.report().AddMetric(s.key + ".deadline_miss_rate",
                           r.deadline_miss_rate);
    obs.report().AddMetric(s.key + ".attrib_coverage", r.attrib_coverage);
    min_coverage = std::min(min_coverage, r.attrib_coverage);
    if (engine.timeline() != nullptr) {
      timelines.push_back(TimelineRows(*engine.timeline()));
    } else {
      timelines.emplace_back();
    }
    if (recorded) {
      // Capture now: later scenarios keep writing the same span rings, so
      // this run's spans are only guaranteed resident at this point.
      open_attrib = obs::BuildAttributionReport(engine.budgets());
      have_open_attrib = true;
      recorder.SetAttribution(open_attrib);
      recorder.CaptureTraces(obs.tracer().Events());
    }
  }
  engine.set_recorder(nullptr);

  // Worst attribution coverage across the sweep: gated >= 0.95 so a new
  // modeled latency source cannot ship without declaring its budget
  // component.
  obs.report().AddMetric("serve.attrib.coverage", min_coverage);

  for (size_t i = 0; i < scenarios.size(); ++i) {
    if (timelines[i].empty()) continue;
    obs.report().AddTable(
        "timeline." + scenarios[i].key,
        {"t_ms", "offered", "completed", "shed", "missed", "goodput_rps",
         "p50_us", "p99_us"});
    for (const auto& row : timelines[i]) obs.report().AddRow(row);
  }

  if (have_open_attrib) {
    std::printf("\np50-vs-p99 attribution (serve.open):\n%s",
                open_attrib.ToString().c_str());
    const std::string rec_path = args.out_dir + "/bench_serve.flightrec.json";
    const Status st = recorder.WriteJson(rec_path, "bench_serve.serve.open");
    if (st.ok()) {
      std::printf("flight recorder: %s (%llu offered, %zu exemplars)\n",
                  rec_path.c_str(),
                  static_cast<unsigned long long>(recorder.offered()),
                  recorder.Exemplars().size());
    } else {
      std::printf("flight recorder FAILED: %s\n", st.ToString().c_str());
    }
  }

  obs.WriteReport();
  return 0;
}
