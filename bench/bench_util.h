/// \file bench_util.h
/// \brief Shared helpers for the experiment harnesses in bench/: table
/// printing in the paper's layout, a --scale command-line knob so every
/// experiment can grow toward paper scale on bigger machines, and an
/// ObsBench session that attaches the observability subsystem and mirrors
/// the printed tables into a machine-readable JSON run report.

#ifndef ALIGRAPH_BENCH_BENCH_UTIL_H_
#define ALIGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace aligraph {
namespace bench {

/// Parses --scale=<double> (default 1.0), --seed=<uint64>,
/// --out=<dir> (run-report directory, default bench/out) and
/// --trace-out[=<path>] (Chrome trace_event JSON; the bare flag defaults
/// the path to <out_dir>/<name>.trace.json) from argv.
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 1;
  std::string out_dir = "bench/out";
  bool trace_requested = false;
  std::string trace_out_path;  ///< empty = default to <out_dir>/<name>

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.scale = std::atof(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
        args.out_dir = argv[i] + 6;
      } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        args.trace_requested = true;
        args.trace_out_path = argv[i] + 12;
      } else if (std::strcmp(argv[i], "--trace-out") == 0) {
        args.trace_requested = true;
      }
    }
    return args;
  }
};

/// Prints a header banner naming the experiment.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// Prints one row of '|'-separated cells.
inline void Row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("| %-22s ", c.c_str());
  std::printf("|\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(double v) { return Fmt("%.2f", v * 100.0); }
inline std::string Ms(double v) { return Fmt("%.2f ms", v); }

/// \brief Observability session for one bench run.
///
/// Owns a MetricsRegistry and a Tracer, attaches both as process defaults
/// for its lifetime, and mirrors the printed tables into a RunReport that
/// WriteReport() serializes to <out_dir>/<name>.json. Construct BEFORE any
/// instrumented component (Cluster, BucketExecutor, HopEmbeddingCache):
/// those resolve their counter handles from the default registry at
/// construction time.
class ObsBench {
 public:
  ObsBench(std::string name, const BenchArgs& args)
      : report_(std::move(name)), out_dir_(args.out_dir) {
    obs::SetDefault(&registry_);
    obs::SetDefaultTracer(&tracer_);
    report_.AddMeta("scale", args.scale);
    report_.AddMeta("seed", static_cast<double>(args.seed));
    report_.SetBuildInfo(BuildGitSha(), BuildCompilerId(), BuildType());
    std::printf("build: %s | %s | %s\n", BuildGitSha(), BuildCompilerId(),
                BuildType());
    if (args.trace_requested) {
      trace_path_ = args.trace_out_path.empty()
                        ? out_dir_ + "/" + report_.name() + ".trace.json"
                        : args.trace_out_path;
    }
  }

  ~ObsBench() {
    if (obs::Default() == &registry_) obs::SetDefault(nullptr);
    if (obs::DefaultTracer() == &tracer_) obs::SetDefaultTracer(nullptr);
  }

  ObsBench(const ObsBench&) = delete;
  ObsBench& operator=(const ObsBench&) = delete;

  obs::MetricsRegistry& registry() { return registry_; }
  obs::Tracer& tracer() { return tracer_; }
  obs::RunReport& report() { return report_; }

  /// Starts a new report table and prints the header row.
  void Table(const std::string& name, const std::vector<std::string>& cols) {
    report_.AddTable(name, cols);
    Row(cols);
  }

  /// Prints one row and records it into the current report table.
  void TableRow(const std::vector<std::string>& cells) {
    report_.AddRow(cells);
    Row(cells);
  }

  /// Snapshots metrics + span aggregates into the report and writes
  /// <out_dir>/<name>.json, printing the path (or the error) to stdout.
  /// With --trace-out, also exports the causally-linked span events as
  /// Chrome trace_event JSON and prints the slowest request's critical
  /// path. Call at a quiescent point (all instrumented work finished).
  void WriteReport() {
    // Surface the tracer's own loss accounting: span records that fell off
    // the per-thread rings before this snapshot. A run report claiming
    // "here are the spans" should also say how many it is missing.
    registry_.GetCounter("trace.dropped_records")
        ->Add(tracer_.dropped_records());
    report_.AttachMetrics(registry_.Snapshot());
    report_.AttachSpans(tracer_.Aggregate());
    std::string path;
    const Status st = report_.WriteFile(out_dir_, &path);
    if (st.ok()) {
      std::printf("\nrun report: %s\n", path.c_str());
    } else {
      std::printf("\nrun report FAILED: %s\n", st.ToString().c_str());
    }
    if (!trace_path_.empty()) WriteTrace();
  }

 private:
  void WriteTrace() {
    const std::vector<obs::SpanEvent> events = tracer_.Events();
    const Status st = obs::WriteChromeTrace(events, trace_path_);
    if (!st.ok()) {
      std::printf("trace export FAILED: %s\n", st.ToString().c_str());
      return;
    }
    const obs::TraceForest forest = obs::AssembleTraces(events);
    std::printf("trace: %s (%zu events, %zu traces, %llu orphans, "
                "%llu untraced)\n",
                trace_path_.c_str(), events.size(), forest.traces.size(),
                static_cast<unsigned long long>(forest.orphan_spans),
                static_cast<unsigned long long>(forest.untraced_spans));
    // The slowest request is where a latency investigation starts; print
    // its longest blocking chain.
    const obs::TraceTree* slowest = nullptr;
    for (const obs::TraceTree& tree : forest.traces) {
      if (tree.nodes.size() < 2) continue;  // standalone helper spans
      if (slowest == nullptr ||
          tree.duration_us() > slowest->duration_us()) {
        slowest = &tree;
      }
    }
    if (slowest != nullptr) {
      std::printf("slowest request: %s\n%s\n",
                  slowest->root_event().name.c_str(),
                  obs::ComputeCriticalPath(*slowest).ToString().c_str());
    }
  }

  obs::MetricsRegistry registry_;
  obs::Tracer tracer_;
  obs::RunReport report_;
  std::string out_dir_;
  std::string trace_path_;
};

}  // namespace bench
}  // namespace aligraph

#endif  // ALIGRAPH_BENCH_BENCH_UTIL_H_
