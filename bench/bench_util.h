/// \file bench_util.h
/// \brief Shared helpers for the experiment harnesses in bench/: table
/// printing in the paper's layout and a --scale command-line knob so every
/// experiment can grow toward paper scale on bigger machines.

#ifndef ALIGRAPH_BENCH_BENCH_UTIL_H_
#define ALIGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace aligraph {
namespace bench {

/// Parses --scale=<double> (default 1.0) and --seed=<uint64> from argv.
struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 1;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--scale=", 8) == 0) {
        args.scale = std::atof(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      }
    }
    return args;
  }
};

/// Prints a header banner naming the experiment.
inline void Banner(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// Prints one row of '|'-separated cells.
inline void Row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("| %-22s ", c.c_str());
  std::printf("|\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string Pct(double v) { return Fmt("%.2f", v * 100.0); }
inline std::string Ms(double v) { return Fmt("%.2f ms", v); }

}  // namespace bench
}  // namespace aligraph

#endif  // ALIGRAPH_BENCH_BENCH_UTIL_H_
