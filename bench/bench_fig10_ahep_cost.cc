/// \file bench_fig10_ahep_cost.cc
/// \brief Figure 10: per-batch running time and memory of AHEP vs. HEP on
/// Taobao-small (synthetic). The paper: AHEP is 2-3x faster and uses much
/// less memory because it samples a few important neighbors per node type
/// instead of propagating from all of them.

#include <cstdio>

#include "algo/hep.h"
#include "bench_util.h"
#include "common/timer.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

struct HepCost {
  double batch_ms = 0;     ///< time per epoch-batch over all vertices
  double memory_mb = 0;    ///< embedding rows touched * row bytes
};

HepCost Run(const AttributedGraph& graph, size_t sample_size) {
  algo::Hep::Config cfg;
  cfg.dim = 32;
  cfg.epochs = 1;
  cfg.sample_size = sample_size;
  algo::Hep model(cfg);
  Timer t;
  auto emb = model.Embed(graph);
  HepCost cost;
  cost.batch_ms = t.ElapsedMillis();
  cost.memory_mb = static_cast<double>(model.rows_touched()) * cfg.dim *
                   sizeof(float) / (1024.0 * 1024.0);
  if (!emb.ok()) std::printf("error: %s\n", emb.status().ToString().c_str());
  return cost;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Figure 10 — average per-batch memory and running time, AHEP vs HEP",
      "AHEP is 2-3x faster than HEP and uses much less memory");

  // HEP's cost is dominated by propagating from *every* neighbor, so the
  // claim lives in the high-degree regime; real Taobao neighborhoods are
  // large, which a denser edge sample reproduces.
  gen::TaobaoConfig cfg = gen::TaobaoSmallConfig(args.scale);
  cfg.user_item_edges *= 6;
  cfg.item_item_edges *= 6;
  auto graph = std::move(gen::Taobao(cfg)).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  const auto hep = Run(graph, /*sample_size=*/0);
  const auto ahep = Run(graph, /*sample_size=*/2);

  bench::Row({"method", "time per batch (ms)", "memory traffic (MB)"});
  bench::Row({"HEP", bench::Fmt("%.1f", hep.batch_ms),
              bench::Fmt("%.2f", hep.memory_mb)});
  bench::Row({"AHEP", bench::Fmt("%.1f", ahep.batch_ms),
              bench::Fmt("%.2f", ahep.memory_mb)});
  bench::Row({"AHEP saving",
              bench::Fmt("%.1fx faster", hep.batch_ms / ahep.batch_ms),
              bench::Fmt("%.1fx less", hep.memory_mb / ahep.memory_mb)});
  return 0;
}
