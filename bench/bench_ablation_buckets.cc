/// \file bench_ablation_buckets.cc
/// \brief Ablation of the lock-free request-flow buckets (Section 3.3,
/// Figure 6): throughput of vertex-group read/update operations through
/// the lock-free MPSC buckets vs. a single mutex-protected queue.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/request_bucket.h"
#include "common/timer.h"

namespace aligraph {
namespace {

constexpr size_t kOps = 200000;
constexpr size_t kGroups = 64;

// Comparator: one mutex-protected queue drained by the same number of
// consumer threads, locking per operation.
double MutexQueueMillis(size_t consumers) {
  std::deque<std::function<void()>> queue;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<size_t> done{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        std::function<void()> op;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return stop.load() || !queue.empty(); });
          if (queue.empty()) {
            if (stop.load()) return;
            continue;
          }
          op = std::move(queue.front());
          queue.pop_front();
        }
        op();
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<uint64_t> counters(kGroups, 0);
  Timer t;
  for (size_t i = 0; i < kOps; ++i) {
    const size_t group = i % kGroups;
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back([&counters, group] { ++counters[group]; });
    }
    cv.notify_one();
  }
  while (done.load() < kOps) std::this_thread::yield();
  const double ms = t.ElapsedMillis();
  stop.store(true);
  cv.notify_all();
  for (auto& th : threads) th.join();
  return ms;
}

struct BucketRun {
  double ms = 0;
  uint64_t dropped = 0;
  uint64_t backoff_sleeps = 0;
};

BucketRun BucketExecutorMillis(size_t buckets) {
  // One counter per group; group -> bucket routing makes each counter
  // single-writer, so no locking is needed anywhere.
  std::vector<uint64_t> counters(kGroups, 0);
  BucketExecutor exec(buckets);
  Timer t;
  for (size_t i = 0; i < kOps; ++i) {
    const size_t group = i % kGroups;
    // A drop after the backoff budget would mean running the op here; with
    // the default budget it does not happen in this bench.
    while (!exec.Submit(group, [&counters, group] { ++counters[group]; })) {
    }
  }
  exec.Drain();
  BucketRun run;
  run.ms = t.ElapsedMillis();
  run.dropped = exec.dropped_after_spin();
  run.backoff_sleeps = exec.submit_backoff_sleeps();
  return run;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before any BucketExecutor exists so the bucket.* counters of
  // every run accumulate into the report's registry.
  bench::ObsBench obs("ablation_buckets", args);
  obs.report().AddMeta("experiment", "bucket executor ablation");
  bench::Banner(
      "Ablation — lock-free request buckets vs mutex queue",
      "binding vertex groups to lock-free per-core buckets removes "
      "per-operation locking (Section 3.3)");

  obs.Table("bucket_ablation",
            {"consumers/buckets", "mutex queue (ms)", "lock-free (ms)",
             "speedup", "drops", "backoff sleeps"});
  for (size_t n : {1u, 2u, 4u}) {
    const double mutex_ms = MutexQueueMillis(n);
    const BucketRun bucket = BucketExecutorMillis(n);
    obs.TableRow({std::to_string(n), bench::Fmt("%.1f", mutex_ms),
                  bench::Fmt("%.1f", bucket.ms),
                  bench::Fmt("%.2fx", mutex_ms / bucket.ms),
                  std::to_string(bucket.dropped),
                  std::to_string(bucket.backoff_sleeps)});
    const std::string key = "buckets_" + std::to_string(n);
    obs.report().AddMetric(key + ".mutex_ms", mutex_ms);
    obs.report().AddMetric(key + ".lockfree_ms", bucket.ms);
    obs.report().AddMetric(key + ".dropped_after_spin",
                           static_cast<double>(bucket.dropped));
    obs.report().AddMetric(key + ".submit_backoff_sleeps",
                           static_cast<double>(bucket.backoff_sleeps));
  }
  obs.WriteReport();
  return 0;
}
