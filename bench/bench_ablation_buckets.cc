/// \file bench_ablation_buckets.cc
/// \brief Ablation of the lock-free request-flow buckets (Section 3.3,
/// Figure 6): throughput of vertex-group read/update operations through
/// the lock-free MPSC buckets vs. a single mutex-protected queue.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/request_bucket.h"
#include "common/timer.h"

namespace aligraph {
namespace {

constexpr size_t kOps = 200000;
constexpr size_t kGroups = 64;

// Comparator: one mutex-protected queue drained by the same number of
// consumer threads, locking per operation.
double MutexQueueMillis(size_t consumers) {
  std::deque<std::function<void()>> queue;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<size_t> done{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (true) {
        std::function<void()> op;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return stop.load() || !queue.empty(); });
          if (queue.empty()) {
            if (stop.load()) return;
            continue;
          }
          op = std::move(queue.front());
          queue.pop_front();
        }
        op();
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<uint64_t> counters(kGroups, 0);
  Timer t;
  for (size_t i = 0; i < kOps; ++i) {
    const size_t group = i % kGroups;
    {
      std::lock_guard<std::mutex> lock(mu);
      queue.push_back([&counters, group] { ++counters[group]; });
    }
    cv.notify_one();
  }
  while (done.load() < kOps) std::this_thread::yield();
  const double ms = t.ElapsedMillis();
  stop.store(true);
  cv.notify_all();
  for (auto& th : threads) th.join();
  return ms;
}

double BucketExecutorMillis(size_t buckets) {
  // One counter per group; group -> bucket routing makes each counter
  // single-writer, so no locking is needed anywhere.
  std::vector<uint64_t> counters(kGroups, 0);
  BucketExecutor exec(buckets);
  Timer t;
  for (size_t i = 0; i < kOps; ++i) {
    const size_t group = i % kGroups;
    // A drop after the backoff budget would mean running the op here; with
    // the default budget it does not happen in this bench.
    while (!exec.Submit(group, [&counters, group] { ++counters[group]; })) {
    }
  }
  exec.Drain();
  return t.ElapsedMillis();
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  bench::Banner(
      "Ablation — lock-free request buckets vs mutex queue",
      "binding vertex groups to lock-free per-core buckets removes "
      "per-operation locking (Section 3.3)");

  bench::Row({"consumers/buckets", "mutex queue (ms)", "lock-free (ms)",
              "speedup"});
  for (size_t n : {1u, 2u, 4u}) {
    const double mutex_ms = MutexQueueMillis(n);
    const double bucket_ms = BucketExecutorMillis(n);
    bench::Row({std::to_string(n), bench::Fmt("%.1f", mutex_ms),
                bench::Fmt("%.1f", bucket_ms),
                bench::Fmt("%.2fx", mutex_ms / bucket_ms)});
  }
  return 0;
}
