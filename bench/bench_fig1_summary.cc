/// \file bench_fig1_summary.cc
/// \brief Figure 1: normalized-evaluation-metric summary of every in-house
/// model against its strongest competitor. Each comparison is a compact
/// rerun of the corresponding table's experiment; the normalized metric is
/// competitor_best / ours (competitor bar) vs 1.0 (our bar), and the lift
/// is (ours - competitor_best) / competitor_best.
///
/// Paper shape: every in-house model shows a positive lift, 4.12%-17.19%.

#include <cstdio>
#include <vector>

#include "algo/bayesian.h"
#include "algo/classic.h"
#include "algo/evolving.h"
#include "algo/gatne.h"
#include "algo/gnn.h"
#include "algo/hierarchical.h"
#include "algo/mixture.h"
#include "bench_util.h"
#include "eval/link_prediction.h"
#include "eval/metrics.h"
#include "gen/dynamic_gen.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

struct Lift {
  const char* model;
  double ours;
  double competitor;
};

void PrintLift(const Lift& lift) {
  const double pct =
      lift.competitor <= 0
          ? 0.0
          : (lift.ours - lift.competitor) / lift.competitor * 100.0;
  bench::Row({lift.model, bench::Fmt("%.4f", lift.ours),
              bench::Fmt("%.4f", lift.competitor),
              bench::Fmt("%+.2f%%", pct)});
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Figure 1 — normalized evaluation metric of in-house models",
      "every in-house model lifts its best competitor (paper: "
      "+4.12% to +17.19%)");

  const double s = 0.1 * args.scale;
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(s))).value();
  auto split = std::move(eval::SplitLinkPrediction(taobao, 0.15, 42)).value();

  nn::WalkConfig walks;
  walks.walks_per_vertex = 3;
  walks.walk_length = 10;
  nn::SkipGramConfig sgns;
  sgns.dim = 32;
  sgns.epochs = 2;
  sgns.learning_rate = 0.025f;

  bench::Row({"model", "ours", "best competitor", "lift"});

  // GATNE vs DeepWalk (F1, as in Table 8).
  {
    algo::DeepWalk::Config dc;
    dc.walks = walks;
    dc.sgns = sgns;
    algo::DeepWalk dw(dc);
    auto demb = std::move(dw.Embed(split.train)).value();
    const double dw_f1 = eval::EvaluateLinkPrediction(demb, split).f1;

    algo::Gatne::Config gc;
    gc.dim = 32;
    gc.spec_dim = 8;
    gc.att_dim = 8;
    gc.feature_dim = 24;
    gc.alpha = 0.5f;
    gc.beta = 1.0f;
    gc.walks = walks;
    gc.epochs = 3;
    algo::Gatne gatne(gc);
    (void)gatne.Embed(split.train);
    const double gatne_f1 =
        eval::EvaluateLinkPredictionPerType(gatne.per_type_embeddings(), split)
            .f1;
    PrintLift({"GATNE", gatne_f1, dw_f1});
  }

  // Hierarchical GNN vs GraphSAGE (F1, Table 10).
  {
    algo::GnnConfig base;
    base.dim = 32;
    base.feature_dim = 32;
    base.epochs = 1;
    base.batches_per_epoch = 64;
    algo::GraphSage sage(base);
    auto semb = std::move(sage.Embed(split.train)).value();
    const double sage_f1 = eval::EvaluateLinkPrediction(semb, split).f1;

    algo::HierarchicalGnn::Config hc;
    hc.base = base;
    hc.clusters = 32;
    algo::HierarchicalGnn hier(hc);
    auto hemb = std::move(hier.Embed(split.train)).value();
    const double hier_f1 = eval::EvaluateLinkPrediction(hemb, split).f1;
    PrintLift({"Hierarchical GNN", hier_f1, sage_f1});
  }

  // Mixture GNN vs DAE (HR@50, Table 9) — compact version.
  {
    const VertexType item_t = taobao.schema().VertexTypeId("item").value();
    const VertexType user_t = taobao.schema().VertexTypeId("user").value();
    const auto items = taobao.VerticesOfType(item_t);
    const VertexId item_base = items[0];
    const size_t num_items = items.size();
    const VertexId num_users =
        static_cast<VertexId>(taobao.VerticesOfType(user_t).size());

    std::vector<std::vector<uint32_t>> train_items(num_users);
    for (VertexId u = 0; u < num_users; ++u) {
      for (const Neighbor& nb : split.train.OutNeighbors(u)) {
        if (taobao.vertex_type(nb.dst) == item_t) {
          train_items[u].push_back(nb.dst - item_base);
        }
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> test_pairs;
    for (const RawEdge& e : split.test_positive) {
      if (e.src < num_users && taobao.vertex_type(e.dst) == item_t) {
        test_pairs.emplace_back(e.src, e.dst - item_base);
      }
    }

    algo::InteractionAutoencoder::Config ac;
    ac.hidden = 64;
    ac.epochs = 6;
    algo::InteractionAutoencoder dae(num_items, ac);
    dae.Train(train_items);
    std::vector<size_t> dae_ranks;
    for (const auto& [user, item] : test_pairs) {
      const auto scores = dae.Score(train_items[user]);
      size_t rank = 0;
      for (size_t i = 0; i < scores.size(); ++i) {
        if (i != item && scores[i] > scores[item]) ++rank;
      }
      dae_ranks.push_back(rank);
    }

    algo::MixtureGnn::Config mc;
    mc.senses = 3;
    mc.sense_dim = 12;
    mc.walks = walks;
    mc.epochs = 2;
    algo::MixtureGnn mixture(mc);
    auto memb = std::move(mixture.Embed(split.train)).value();
    std::vector<size_t> mix_ranks;
    for (const auto& [user, item] : test_pairs) {
      const double pos = eval::ScorePair(memb, user, item_base + item,
                                         eval::PairScorer::kDot);
      size_t rank = 0;
      for (size_t i = 0; i < num_items; ++i) {
        if (i != item &&
            eval::ScorePair(memb, user, item_base + static_cast<VertexId>(i),
                            eval::PairScorer::kDot) > pos) {
          ++rank;
        }
      }
      mix_ranks.push_back(rank);
    }
    PrintLift({"Mixture GNN", eval::HitRateAtK(mix_ranks, 50),
               eval::HitRateAtK(dae_ranks, 50)});
  }

  // Evolving GNN vs TNE (normal micro-F1, Table 11).
  {
    gen::DynamicConfig dcfg;
    dcfg.num_vertices = static_cast<VertexId>(1500 * args.scale);
    dcfg.num_timestamps = 4;
    dcfg.base_edges = static_cast<size_t>(6000 * args.scale);
    dcfg.normal_edges_per_step = static_cast<size_t>(1500 * args.scale);
    dcfg.burst_size = static_cast<size_t>(200 * args.scale);
    auto dynamic = std::move(gen::GenerateDynamic(dcfg)).value();

    algo::EvolvingGnn::Config base;
    base.gnn.dim = 32;
    base.gnn.feature_dim = 16;
    base.gnn.batches_per_epoch = 48;

    algo::EvolvingGnn::Config tne_cfg = base;
    tne_cfg.embedder = algo::DynamicEmbedder::kTne;
    algo::EvolvingGnn tne(tne_cfg);
    auto tne_scores = std::move(tne.Run(dynamic)).value();

    algo::EvolvingGnn evolving(base);
    auto ev_scores = std::move(evolving.Run(dynamic)).value();
    PrintLift({"Evolving GNN", ev_scores.normal.micro,
               tne_scores.normal.micro});
  }

  // Bayesian GNN vs plain GraphSAGE (HR@30 click, brand, Table 12).
  {
    algo::GnnConfig base;
    base.dim = 32;
    base.feature_dim = 32;
    base.epochs = 1;
    base.batches_per_epoch = 64;
    algo::GraphSage sage(base);
    auto semb = std::move(sage.Embed(split.train)).value();

    const VertexType item_t = taobao.schema().VertexTypeId("item").value();
    const auto item_span = taobao.VerticesOfType(item_t);
    std::vector<VertexId> item_vec(item_span.begin(), item_span.end());
    std::vector<uint32_t> groups;
    for (VertexId item : item_vec) {
      groups.push_back(gen::ItemBrand(taobao, item));
    }
    algo::BayesianCorrection correction;
    auto cemb =
        std::move(correction.Correct(semb, item_vec, groups)).value();

    const EdgeType click = taobao.schema().EdgeTypeId("click").value();
    auto ranks_for = [&](const nn::Matrix& emb) {
      Rng rng(5);
      std::vector<size_t> ranks;
      for (const RawEdge& e : split.test_positive) {
        if (e.type != click) continue;
        const double pos =
            eval::ScorePair(emb, e.src, e.dst, eval::PairScorer::kDot);
        size_t rank = 0;
        for (int c = 0; c < 100; ++c) {
          const VertexId item = item_vec[rng.Uniform(item_vec.size())];
          if (item == e.dst) continue;
          if (eval::ScorePair(emb, e.src, item, eval::PairScorer::kDot) >
              pos) {
            ++rank;
          }
        }
        ranks.push_back(rank);
      }
      return ranks;
    };
    const auto base_ranks = ranks_for(semb);
    const auto corr_ranks = ranks_for(cemb);
    PrintLift({"Bayesian GNN", eval::HitRateAtK(corr_ranks, 30),
               eval::HitRateAtK(base_ranks, 30)});
  }
  return 0;
}
