// Fault-tolerance experiment: modeled cost and degradation of k-hop
// NEIGHBORHOOD sampling under increasingly hostile fault schedules.
//
// Each row runs the same seeded sampling workload against the same cluster
// with a different FaultConfig: none, a probabilistic transient mix, a
// timeout-heavy mix, and a full blackout of one worker. Columns report the
// modeled sampling time (retry messages + backoff included), the retry and
// degradation counters, and the failure count — showing that recovery is
// paid for in modeled milliseconds, never in aborted samples.

#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "fault/fault_injector.h"
#include "gen/powerlaw.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

struct Scenario {
  std::string name;
  FaultConfig config;
};

std::vector<Scenario> MakeScenarios(uint64_t seed, uint32_t workers) {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"none", FaultConfig{}});

  FaultConfig transient;
  transient.seed = seed;
  transient.transient_prob = 0.2;
  scenarios.push_back({"transient20", transient});

  FaultConfig timeouts;
  timeouts.seed = seed;
  timeouts.timeout_prob = 0.15;
  timeouts.slow_prob = 0.15;
  scenarios.push_back({"timeout_slow30", timeouts});

  FaultConfig blackout;
  blackout.seed = seed;
  blackout.transient_prob = 0.1;
  blackout.schedule.push_back(
      {workers - 1, FaultKind::kTransient, /*fail_first_attempts=*/99});
  scenarios.push_back({"blackout_w3", blackout});
  return scenarios;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner("Fault tolerance: k-hop sampling under injected failures",
                "retries + degradation keep sampling complete and "
                "deterministic; faults cost modeled time, not aborts");
  bench::ObsBench obs("fault_tolerance", args);

  gen::ChungLuConfig gcfg;
  gcfg.num_vertices =
      static_cast<VertexId>(20000 * args.scale);
  gcfg.avg_degree = 8;
  gcfg.seed = args.seed;
  const AttributedGraph graph = std::move(gen::ChungLu(gcfg)).value();

  const uint32_t workers = 4;
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), workers)).value();
  CommModel model;

  std::vector<VertexId> roots;
  const size_t num_roots = static_cast<size_t>(512 * args.scale);
  Rng root_rng(args.seed ^ 0x5007u);
  for (size_t i = 0; i < num_roots; ++i) {
    roots.push_back(
        static_cast<VertexId>(root_rng.Uniform(graph.num_vertices())));
  }
  const std::vector<uint32_t> fans = {10, 5};

  obs.Table("fault_tolerance",
            {"schedule", "modeled_ms", "faults", "retries", "backoff_ms",
             "failed_reads", "degraded", "partial"});

  for (const auto& scenario : MakeScenarios(args.seed, workers)) {
    if (scenario.config.Active()) {
      cluster.InstallFaultInjection(scenario.config);
    } else {
      cluster.ClearFaultInjection();
    }
    CommStats stats;
    DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
    NeighborhoodSampler sampler(NeighborStrategy::kUniform, args.seed);
    const NeighborhoodSample sample =
        sampler.Sample(source, roots, kAllEdgeTypes, fans);

    const CommStats::Snapshot s = stats.snapshot();
    const double modeled_ms = model.ModeledMillis(stats);
    obs.TableRow({scenario.name, bench::Fmt("%.2f", modeled_ms),
                  std::to_string(s.faults_injected),
                  std::to_string(s.retry_attempts),
                  bench::Fmt("%.2f", s.retry_backoff_us / 1000.0),
                  std::to_string(s.failed_reads),
                  std::to_string(sample.degraded_draws),
                  sample.partial ? "yes" : "no"});
    obs.report().AddMetric("fault." + scenario.name + ".modeled_ms",
                           modeled_ms);
    obs.report().AddMetric("fault." + scenario.name + ".degraded",
                           static_cast<double>(sample.degraded_draws));
  }

  obs.WriteReport();
  return 0;
}
