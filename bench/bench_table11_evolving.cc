/// \file bench_table11_evolving.cc
/// \brief Table 11: Evolving GNN vs. competitors on multi-class link
/// prediction over a dynamic graph, scored separately for normal evolution
/// and burst change.
///
/// Paper shape: static methods (DeepWalk, DANE) are N.A. on dynamic graphs;
/// TNE and per-snapshot GraphSAGE work but Evolving GNN wins both micro and
/// macro F1 in both scenarios, with the larger margin on bursts.

#include <cstdio>

#include "algo/evolving.h"
#include "bench_util.h"
#include "gen/dynamic_gen.h"

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 11 — Evolving GNN vs competitors on dynamic graphs",
      "Evolving GNN has the best micro/macro F1 for both normal evolution "
      "and burst change");

  gen::DynamicConfig dcfg;
  dcfg.num_vertices = static_cast<VertexId>(3000 * args.scale);
  dcfg.num_timestamps = 5;
  dcfg.base_edges = static_cast<size_t>(12000 * args.scale);
  dcfg.normal_edges_per_step = static_cast<size_t>(2500 * args.scale);
  dcfg.bursts_per_step = 2;
  dcfg.burst_size = static_cast<size_t>(300 * args.scale);
  auto dynamic = std::move(gen::GenerateDynamic(dcfg)).value();
  std::printf("dynamic graph: %u vertices, %u timestamps, final %zu edges\n\n",
              dcfg.num_vertices, dynamic.num_timestamps(),
              dynamic.Snapshot(dynamic.num_timestamps()).num_edges());

  bench::Row({"method", "normal micro-F1", "normal macro-F1",
              "burst micro-F1", "burst macro-F1"});
  // Static embedding methods cannot handle dynamic graphs (paper rows).
  bench::Row({"DeepWalk", "N.A.", "N.A.", "N.A.", "N.A."});
  bench::Row({"DANE", "N.A.", "N.A.", "N.A.", "N.A."});

  algo::GnnConfig gnn;
  gnn.dim = 32;
  gnn.feature_dim = 16;
  gnn.epochs = 1;
  gnn.batches_per_epoch = 64;

  for (auto [name, embedder] :
       {std::pair<const char*, algo::DynamicEmbedder>{
            "TNE", algo::DynamicEmbedder::kTne},
        {"GraphSAGE", algo::DynamicEmbedder::kStaticGraphSage},
        {"Evolving GNN (ours)", algo::DynamicEmbedder::kEvolvingGnn}}) {
    algo::EvolvingGnn::Config cfg;
    cfg.gnn = gnn;
    cfg.embedder = embedder;
    algo::EvolvingGnn model(cfg);
    auto scores = model.Run(dynamic);
    if (!scores.ok()) {
      bench::Row({name, "N.A.", "N.A.", "N.A.", "N.A."});
      continue;
    }
    bench::Row({name, bench::Pct(scores->normal.micro),
                bench::Pct(scores->normal.macro),
                bench::Pct(scores->burst.micro),
                bench::Pct(scores->burst.macro)});
  }
  return 0;
}
