/// \file bench_fig7_build.cc
/// \brief Figure 7: graph-building time vs. number of workers on
/// Taobao-small and Taobao-large (synthetic), plus the PowerGraph-style
/// naive serial loader as the order-of-magnitude comparator.
///
/// Simulated parallel time = partition + distribute/p + slowest worker
/// (critical path); see cluster.h for the simulation contract.
///
/// The second half is the skew sweep behind the `partition.hot_server_speedup`
/// gate: Zipf-over-degree-rank traffic against a Chung-Lu power-law graph,
/// served under edge_cut / vertex_cut / hybrid placement. Replicating the hub
/// head (hybrid) spreads hub reads over every worker, so the hottest server's
/// served-read count — the quantity that bounds throughput on a skewed
/// workload — drops by the gated factor relative to hash edge-cut.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "gen/zipf.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

void RunDataset(bench::ObsBench& obs, const char* name,
                const gen::TaobaoConfig& config) {
  auto graph = std::move(gen::Taobao(config)).value();
  std::printf("\n%s: %s\n", name, graph.ToString().c_str());

  // The serial comparator mimics a synchronously coordinated loader: the
  // measured locked build plus a modeled 1 us/edge coordination round (the
  // cross-machine synchronization a serial distributed ingest pays per
  // edge; AliGraph's streaming partition-parallel ingest avoids it). This
  // coordination model is what turns "minutes" into "hours" at the paper's
  // 6.8B-edge scale.
  const double kCoordinationUsPerEdge = 1.0;
  const double naive_ms = NaiveLockedBuildMillis(graph) +
                          graph.num_edges() * kCoordinationUsPerEdge * 1e-3;
  std::printf("naive serial loader (measured + modeled %.1f us/edge "
              "coordination): %.1f ms\n",
              kCoordinationUsPerEdge, naive_ms);

  obs.Table(name, {"workers", "parallel build (ms)", "speedup vs naive",
                   "edge cut"});
  EdgeCutPartitioner partitioner;
  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u, 25u}) {
    ClusterBuildReport report;
    auto cluster = Cluster::Build(graph, partitioner, workers, &report);
    if (!cluster.ok()) continue;
    obs.TableRow(
        {std::to_string(workers),
         bench::Fmt("%.1f", report.simulated_parallel_ms),
         bench::Fmt("%.1fx", naive_ms / report.simulated_parallel_ms),
         bench::Fmt("%.3f", report.partition_stats.edge_cut_fraction)});
  }
}

/// Hot-server skew sweep. Traffic is the hostile case for source-owner
/// placement: sampling roots drawn Zipf(1.1) over degree rank, so the
/// power-law head absorbs most reads, and 2-hop expansion keeps the interior
/// degree-biased too (neighbors are degree-proportional endpoints). Reported per policy: modeled hot share (from
/// ComputePartitionStats' traffic model) and the measured per-worker
/// served-read counters; the gate compares the max (hottest server).
void RunSkewSweep(bench::ObsBench& obs, const bench::BenchArgs& args) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = static_cast<VertexId>(
      std::max(4000.0, 100000.0 * args.scale));
  cfg.avg_degree = 8;
  cfg.gamma = 2.1;
  // Undirected: a vertex's storage degree (what makes it a hub worth
  // replicating) and its read traffic (how often sampling lands on it) are
  // the same quantity, as in the paper's e-commerce graphs.
  cfg.directed = false;
  cfg.seed = args.seed;
  auto graph = std::move(gen::ChungLu(cfg)).value();
  const uint32_t kWorkers = 8;
  std::printf("\nskew sweep: %s, %u workers, Zipf(1.1) roots over "
              "degree rank\n",
              graph.ToString().c_str(), kWorkers);

  // rank r -> the vertex with the r-th largest out-degree (stable on ties).
  std::vector<VertexId> by_degree(graph.num_vertices());
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.OutDegree(a) > graph.OutDegree(b);
                   });

  gen::ZipfConfig zcfg;
  zcfg.num_ranks = graph.num_vertices();
  zcfg.exponent = 1.1;
  zcfg.seed = args.seed;

  obs.Table("skew_sweep",
            {"policy", "edge cut", "repl factor", "modeled hot share",
             "max served", "mean served", "memory (MB)"});
  double hot_share_edge_cut = 0;
  double hot_share_hybrid = 0;
  double max_served_edge_cut = 0;
  double max_served_hybrid = 0;
  // Per-worker served-read rows, collected during the sweep but emitted as
  // a report table only after the skew_sweep table is complete (AddRow
  // appends to the last table added).
  std::vector<std::vector<std::string>> served_rows;
  for (const char* name : {"edge_cut", "vertex_cut", "hybrid"}) {
    auto partitioner = std::move(MakePartitioner(name)).value();
    ClusterBuildReport report;
    auto built = Cluster::Build(graph, *partitioner, kWorkers, &report);
    if (!built.ok()) continue;
    Cluster& cluster = *built;

    // Every worker originates the same Zipf traffic (uniform readers over
    // skewed vertices); 2-hop batched sampling is the serving workload.
    gen::ZipfSampler zipf(zcfg);
    Rng rng(args.seed);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, 5);
    const std::vector<uint32_t> fans{10, 5};
    std::vector<size_t> ranks(256);
    for (int round = 0; round < 24; ++round) {
      const WorkerId from = static_cast<WorkerId>(round % kWorkers);
      zipf.SampleBatch(rng, ranks);
      std::vector<VertexId> roots(ranks.size());
      for (size_t i = 0; i < ranks.size(); ++i) roots[i] = by_degree[ranks[i]];
      CommStats stats;
      DistributedNeighborSource source(cluster, from, &stats);
      hood.Sample(source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
    }

    const std::vector<uint64_t> served = cluster.ServedReadsSnapshot();
    const uint64_t max_served =
        *std::max_element(served.begin(), served.end());
    const uint64_t total_served =
        std::accumulate(served.begin(), served.end(), uint64_t{0});
    const double mean_served =
        static_cast<double>(total_served) / served.size();
    for (size_t w = 0; w < served.size(); ++w) {
      served_rows.push_back(
          {name, std::to_string(w), std::to_string(served[w]),
           bench::Fmt("%.4f", total_served > 0
                                  ? static_cast<double>(served[w]) /
                                        static_cast<double>(total_served)
                                  : 0.0)});
    }
    if (std::string(name) == "edge_cut") {
      hot_share_edge_cut = report.partition_stats.hot_server_share;
      max_served_edge_cut = static_cast<double>(max_served);
    } else if (std::string(name) == "hybrid") {
      hot_share_hybrid = report.partition_stats.hot_server_share;
      max_served_hybrid = static_cast<double>(max_served);
    }
    obs.TableRow(
        {name, bench::Fmt("%.3f", report.partition_stats.edge_cut_fraction),
         bench::Fmt("%.2f", report.partition_stats.replication_factor),
         bench::Fmt("%.3f", report.partition_stats.hot_server_share),
         std::to_string(max_served), bench::Fmt("%.0f", mean_served),
         bench::Fmt("%.1f", [&] {
           size_t bytes = 0;
           for (uint32_t w = 0; w < kWorkers; ++w) {
             bytes += cluster.server(w).MemoryBytes();
           }
           return bytes / (1024.0 * 1024.0);
         }())});
  }

  // The full per-worker distribution behind the max/mean columns: which
  // worker the hub traffic actually lands on, per placement policy.
  obs.report().AddTable("served_reads_per_worker",
                        {"policy", "worker", "served_reads", "share"});
  for (const auto& row : served_rows) obs.report().AddRow(row);

  // The gated headline: how much hotter the hottest server runs under plain
  // hash edge-cut than under hub replication, on the degree-proportional
  // traffic model (ComputePartitionStats). The measured ratio from the
  // sampling workload is printed alongside; batched reads deduplicate each
  // hub to one read per batch, so it understates the per-request skew the
  // model captures and serves as a directional cross-check only.
  if (hot_share_hybrid > 0 && max_served_hybrid > 0) {
    const double modeled = hot_share_edge_cut / hot_share_hybrid;
    const double measured = max_served_edge_cut / max_served_hybrid;
    std::printf("\nhot-server speedup (edge_cut / hybrid): modeled %.2fx, "
                "measured (batch-deduped) %.2fx\n",
                modeled, measured);
    obs.report().AddMetric("partition.hot_server_speedup", modeled);
    obs.report().AddMetric("partition.hot_server_speedup_measured", measured);
  }
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::ObsBench obs("fig7_build", args);
  bench::Banner(
      "Figure 7 — graph building time w.r.t. number of workers",
      "build time decreases with workers; minutes, not hours "
      "(order of magnitude over the naive serial loader); hub replication "
      "flattens the hot server under skewed traffic");
  RunDataset(obs, "Taobao-small (synthetic)",
             gen::TaobaoSmallConfig(args.scale));
  RunDataset(obs, "Taobao-large (synthetic)",
             gen::TaobaoLargeConfig(args.scale));
  RunSkewSweep(obs, args);
  obs.WriteReport();
  return 0;
}
