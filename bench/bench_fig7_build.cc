/// \file bench_fig7_build.cc
/// \brief Figure 7: graph-building time vs. number of workers on
/// Taobao-small and Taobao-large (synthetic), plus the PowerGraph-style
/// naive serial loader as the order-of-magnitude comparator.
///
/// Simulated parallel time = partition + distribute/p + slowest worker
/// (critical path); see cluster.h for the simulation contract.

#include <cstdio>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"

namespace aligraph {
namespace {

void RunDataset(const char* name, const gen::TaobaoConfig& config) {
  auto graph = std::move(gen::Taobao(config)).value();
  std::printf("\n%s: %s\n", name, graph.ToString().c_str());

  // The serial comparator mimics a synchronously coordinated loader: the
  // measured locked build plus a modeled 1 us/edge coordination round (the
  // cross-machine synchronization a serial distributed ingest pays per
  // edge; AliGraph's streaming partition-parallel ingest avoids it). This
  // coordination model is what turns "minutes" into "hours" at the paper's
  // 6.8B-edge scale.
  const double kCoordinationUsPerEdge = 1.0;
  const double naive_ms = NaiveLockedBuildMillis(graph) +
                          graph.num_edges() * kCoordinationUsPerEdge * 1e-3;
  std::printf("naive serial loader (measured + modeled %.1f us/edge "
              "coordination): %.1f ms\n",
              kCoordinationUsPerEdge, naive_ms);

  bench::Row({"workers", "parallel build (ms)", "speedup vs naive",
              "edge cut"});
  EdgeCutPartitioner partitioner;
  for (uint32_t workers : {1u, 2u, 4u, 8u, 16u, 25u}) {
    ClusterBuildReport report;
    auto cluster = Cluster::Build(graph, partitioner, workers, &report);
    if (!cluster.ok()) continue;
    bench::Row({std::to_string(workers),
                bench::Fmt("%.1f", report.simulated_parallel_ms),
                bench::Fmt("%.1fx", naive_ms / report.simulated_parallel_ms),
                bench::Fmt("%.3f", report.partition_stats.edge_cut_fraction)});
  }
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Figure 7 — graph building time w.r.t. number of workers",
      "build time decreases with workers; minutes, not hours "
      "(order of magnitude over the naive serial loader)");
  RunDataset("Taobao-small (synthetic)",
             gen::TaobaoSmallConfig(args.scale));
  RunDataset("Taobao-large (synthetic)",
             gen::TaobaoLargeConfig(args.scale));
  return 0;
}
