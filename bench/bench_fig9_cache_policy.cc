/// \file bench_fig9_cache_policy.cc
/// \brief Figure 9: neighborhood-access cost vs. fraction of cached
/// vertices for the three cache strategies — AliGraph's importance-based
/// cache, a random pinned cache, and reactive LRU.
///
/// Workload: a fixed sequence of 2-hop neighborhood expansions issued from
/// random workers. Cost = measured CPU time + modeled communication time
/// (each individual remote fetch is one message: charged
/// CommModel::remote_rpc_us + remote_item_us); the paper's 40-60% savings
/// come from the remote-fetch counts, which this simulation reproduces
/// exactly.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"

namespace aligraph {
namespace {

// One pass of the query workload; returns modeled total time in ms.
double RunWorkload(Cluster& cluster, const CommModel& model, uint64_t seed) {
  Rng rng(seed);
  CommStats stats;
  const CommStats::Snapshot before = stats.snapshot();
  Timer timer;
  const VertexId n = cluster.graph().num_vertices();
  const uint32_t workers = cluster.num_workers();
  for (int q = 0; q < 20000; ++q) {
    const WorkerId from = static_cast<WorkerId>(rng.Uniform(workers));
    const VertexId v = static_cast<VertexId>(rng.Uniform(n));
    const auto nbs = cluster.GetNeighbors(from, v, &stats);
    // Expand one sampled second hop, as NEIGHBORHOOD sampling does.
    if (!nbs.empty()) {
      const VertexId u = nbs[rng.Uniform(nbs.size())].dst;
      cluster.GetNeighbors(from, u, &stats);
    }
  }
  return timer.ElapsedMillis() +
         model.ModeledMillis(stats.snapshot().Delta(before));
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before Cluster::Build so comm counters resolve here.
  bench::ObsBench obs("fig9_cache_policy", args);
  obs.report().AddMeta("experiment", "Figure 9 cache policy comparison");
  bench::Banner(
      "Figure 9 — access cost w.r.t. percentage of cached vertices",
      "importance cache saves ~40-50% vs random and ~50-60% vs LRU");

  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  CommModel model;

  std::printf("dataset: %s, 4 workers, 20k 2-hop queries\n\n",
              graph.ToString().c_str());
  obs.report().AddMeta("dataset", graph.ToString());
  obs.Table("cache_policy",
            {"cached (%)", "importance (ms)", "random (ms)", "LRU (ms)"});
  for (double fraction : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    cluster.ClearCaches();
    double importance_ms, random_ms, lru_ms;
    if (fraction == 0.0) {
      importance_ms = random_ms = lru_ms = RunWorkload(cluster, model, 99);
    } else {
      cluster.InstallTopImportanceCache(/*k=*/1, fraction);
      importance_ms = RunWorkload(cluster, model, 99);
      cluster.InstallRandomCache(fraction, /*seed=*/7);
      random_ms = RunWorkload(cluster, model, 99);
      cluster.InstallLruCache(
          static_cast<size_t>(fraction * graph.num_vertices()));
      lru_ms = RunWorkload(cluster, model, 99);
    }
    obs.TableRow({bench::Pct(fraction), bench::Fmt("%.1f", importance_ms),
                  bench::Fmt("%.1f", random_ms), bench::Fmt("%.1f", lru_ms)});
    const std::string key = bench::Fmt("fraction_%.1f", fraction);
    obs.report().AddMetric(key + ".importance_ms", importance_ms);
    obs.report().AddMetric(key + ".random_ms", random_ms);
    obs.report().AddMetric(key + ".lru_ms", lru_ms);
  }
  obs.WriteReport();
  return 0;
}
