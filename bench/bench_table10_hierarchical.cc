/// \file bench_table10_hierarchical.cc
/// \brief Table 10: Hierarchical GNN vs. plain GraphSAGE on link
/// prediction. Paper shape: the hierarchical representation lifts all
/// three metrics (F1 by ~7.5 points).

#include <cstdio>

#include "algo/gnn.h"
#include "algo/hierarchical.h"
#include "bench_util.h"
#include "eval/link_prediction.h"
#include "gen/taobao.h"

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Table 10 — Hierarchical GNN vs GraphSAGE",
      "hierarchical pooling lifts ROC-AUC / PR-AUC / F1 (F1 by ~7.5 pts)");

  auto graph =
      std::move(gen::Taobao(gen::TaobaoSmallConfig(0.15 * args.scale)))
          .value();
  auto split = std::move(eval::SplitLinkPrediction(graph, 0.15, 42)).value();
  std::printf("dataset: %s\n\n", graph.ToString().c_str());

  algo::GnnConfig base;
  base.dim = 32;
  base.feature_dim = 32;
  base.epochs = 2;
  base.batches_per_epoch = 96;

  bench::Row({"method", "ROC-AUC (%)", "PR-AUC (%)", "F1 (%)"});
  {
    algo::GraphSage sage(base);
    auto emb = std::move(sage.Embed(split.train)).value();
    const auto m = eval::EvaluateLinkPrediction(emb, split);
    bench::Row({"GraphSAGE", bench::Pct(m.roc_auc), bench::Pct(m.pr_auc),
                bench::Pct(m.f1)});
  }
  {
    algo::HierarchicalGnn::Config cfg;
    cfg.base = base;
    cfg.clusters = 48;
    cfg.coarse_weight = 0.4f;
    algo::HierarchicalGnn hier(cfg);
    auto emb = std::move(hier.Embed(split.train)).value();
    const auto m = eval::EvaluateLinkPrediction(emb, split);
    bench::Row({"Hierarchical GNN (ours)", bench::Pct(m.roc_auc),
                bench::Pct(m.pr_auc), bench::Pct(m.f1)});
  }
  return 0;
}
