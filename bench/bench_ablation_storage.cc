/// \file bench_ablation_storage.cc
/// \brief Ablation of the separate-attribute-storage design (Section 3.2):
/// deduplicated index storage vs. naive inlined storage, with the
/// O(n*ND*NL) -> O(n*ND + NA*NL) reduction measured on the synthetic
/// Taobao AHGs.

#include <cstdio>

#include "bench_util.h"
#include "gen/taobao.h"

namespace aligraph {
namespace {

void RunDataset(const char* name, const AttributedGraph& graph) {
  const AttributeStore& store = graph.vertex_attributes();
  const double inlined_mb = store.InlinedBytes() / (1024.0 * 1024.0);
  const double dedup_mb = store.DedupBytes() / (1024.0 * 1024.0);
  bench::Row({name, std::to_string(store.num_references()),
              std::to_string(store.num_records()),
              bench::Fmt("%.2f MB", inlined_mb),
              bench::Fmt("%.2f MB", dedup_mb),
              bench::Fmt("%.1fx", inlined_mb / dedup_mb)});
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::Banner(
      "Ablation — separate (deduplicated) attribute storage",
      "attributes overlap heavily, so the separate index cuts attribute "
      "storage from O(n*ND*NL) to O(n*ND + NA*NL)");

  bench::Row({"dataset", "references", "distinct", "inlined", "dedup",
              "saving"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    RunDataset("Taobao-small (syn)", g);
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    RunDataset("Taobao-large (syn)", g);
  }
  return 0;
}
