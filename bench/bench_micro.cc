/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the hot primitives the
/// system layers are built from: alias-table sampling, LRU access, CSR
/// neighbor scans, importance computation, lock-free bucket submission and
/// the dense GEMM behind AGGREGATE/COMBINE.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/request_bucket.h"
#include "common/alias_table.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "gen/powerlaw.h"
#include "gen/zipf.h"
#include "graph/khop.h"
#include "layout/layout.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/operators.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

const AttributedGraph& BenchGraph() {
  static const AttributedGraph* g = [] {
    gen::ChungLuConfig cfg;
    cfg.num_vertices = 50000;
    cfg.avg_degree = 10;
    cfg.seed = 42;
    return new AttributedGraph(std::move(gen::ChungLu(cfg)).value());
  }();
  return *g;
}

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_LruCacheGet(benchmark::State& state) {
  LruCache<uint64_t, uint64_t> cache(4096);
  for (uint64_t i = 0; i < 4096; ++i) cache.Put(i, i);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(key++ % 8192));
  }
}
BENCHMARK(BM_LruCacheGet);

void BM_CsrNeighborScan(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  Rng rng(3);
  for (auto _ : state) {
    const VertexId v = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    uint64_t acc = 0;
    for (const Neighbor& nb : g.OutNeighbors(v)) acc += nb.dst;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CsrNeighborScan);

void BM_ImportanceScores(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ImportanceScores(g, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ImportanceScores)->Arg(1)->Arg(2);

void BM_NeighborhoodSample(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  std::vector<VertexId> roots(64);
  std::iota(roots.begin(), roots.end(), 100);
  const std::vector<uint32_t> fans{10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(
        source, roots, NeighborhoodSampler::kAllEdgeTypes, fans));
  }
}
BENCHMARK(BM_NeighborhoodSample);

// Same workload with the observability subsystem attached (metrics registry
// + tracer). Compare against BM_NeighborhoodSample to measure the cost of
// leaving instrumentation on; the acceptance bar is <5% overhead.
void BM_NeighborhoodSampleInstrumented(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::SetDefault(&registry);
  obs::SetDefaultTracer(&tracer);
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  std::vector<VertexId> roots(64);
  std::iota(roots.begin(), roots.end(), 100);
  const std::vector<uint32_t> fans{10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(
        source, roots, NeighborhoodSampler::kAllEdgeTypes, fans));
  }
  obs::SetDefaultTracer(nullptr);
  obs::SetDefault(nullptr);
}
BENCHMARK(BM_NeighborhoodSampleInstrumented);

void BM_BucketSubmit(benchmark::State& state) {
  BucketExecutor exec(2);
  uint64_t group = 0;
  for (auto _ : state) {
    (void)exec.Submit(group++, [] {});
  }
  exec.Drain();
}
BENCHMARK(BM_BucketSubmit);

// Shared fixture for the block benchmarks: one sampled two-hop block over
// the bench graph plus a dense feature table.
struct BlockFixture {
  block::SampledBlock blk;
  nn::Matrix table;          // [num_vertices, d] global feature table
  std::vector<VertexId> slot_vertices;  // every slot's global id, flat
};

const BlockFixture& BenchBlock() {
  static const BlockFixture* f = [] {
    auto* fx = new BlockFixture;
    const AttributedGraph& g = BenchGraph();
    LocalNeighborSource source(g);
    NeighborhoodSampler sampler;
    std::vector<VertexId> roots(64);
    std::iota(roots.begin(), roots.end(), 100);
    const std::vector<uint32_t> fans{10, 5};
    fx->blk = sampler.SampleBlock(source, roots,
                                  NeighborhoodSampler::kAllEdgeTypes, fans);
    Rng rng(9);
    fx->table = nn::Matrix::Gaussian(g.num_vertices(), 32, 1.0f, rng);
    fx->slot_vertices.assign(roots.begin(), roots.end());
    for (const block::BlockHop& hop : fx->blk.hops()) {
      for (const uint32_t l : hop.src) {
        fx->slot_vertices.push_back(fx->blk.global_of(l));
      }
    }
    return fx;
  }();
  return *f;
}

// Feature gathering for one sampled block: per-SLOT (the legacy flat path,
// one row copy per occurrence) vs per-UNIQUE-vertex (the deduplicated
// block gather). Arg 0 = per-slot, 1 = dedup.
void BM_BlockGather(benchmark::State& state) {
  const BlockFixture& f = BenchBlock();
  block::MatrixFeatureSource source(f.table);
  const bool dedup = state.range(0) == 1;
  const std::span<const VertexId> targets =
      dedup ? f.blk.globals() : std::span<const VertexId>(f.slot_vertices);
  nn::Matrix out(targets.size(), f.table.cols());
  for (auto _ : state) {
    (void)source.Gather(targets, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size() * sizeof(float)));
}
BENCHMARK(BM_BlockGather)->Arg(0)->Arg(1);

// AGGREGATE over one hop: legacy per-slot materialization + map-based
// Forward vs dense CSR-indexed ForwardBlock. Arg 0 = map, 1 = block.
void BM_BlockAggregate(benchmark::State& state) {
  const BlockFixture& f = BenchBlock();
  const block::BlockHop& hop = f.blk.hops()[1];
  Rng rng(11);
  const nn::Matrix rows =
      nn::Matrix::Gaussian(f.blk.num_vertices(), 32, 1.0f, rng);
  ops::MeanAggregator agg;
  const bool use_block = state.range(0) == 1;
  for (auto _ : state) {
    if (use_block) {
      benchmark::DoNotOptimize(agg.ForwardBlock(rows, hop));
    } else {
      const nn::Matrix neighbors = block::GatherRows(rows, hop.src);
      benchmark::DoNotOptimize(agg.Forward(neighbors, hop.fan));
    }
  }
}
BENCHMARK(BM_BlockAggregate)->Arg(0)->Arg(1);

// Shared fixture for the layout benchmarks: the bench graph under a
// degree-descending layout, plus one Zipf-hot visit schedule (hot rank =
// degree rank, so rank k is new id k) expressed in both id spaces. All
// names carry "Reorder" so CI can pull every layout-sensitive micro with
// one --benchmark_filter=Reorder.
struct ReorderFixture {
  AttributedGraph reordered;
  layout::VertexLayout layout;
  std::vector<VertexId> visits_old;  ///< Zipf-hot trace, original ids
  std::vector<VertexId> visits_new;  ///< the same trace, reordered ids
};

const ReorderFixture& BenchReorder() {
  static const ReorderFixture* f = [] {
    auto* fx = new ReorderFixture;
    const AttributedGraph& g = BenchGraph();
    fx->layout =
        layout::ComputeLayout(g, layout::LayoutPolicy::kDegreeDescending);
    fx->reordered = std::move(layout::ApplyLayout(g, fx->layout)).value();
    gen::ZipfConfig zcfg;
    zcfg.num_ranks = g.num_vertices();
    zcfg.exponent = 1.0;
    zcfg.seed = 17;
    gen::ZipfSampler zipf(zcfg);
    fx->visits_old.resize(1 << 16);
    for (VertexId& v : fx->visits_old) {
      v = fx->layout.ToOld(static_cast<VertexId>(zipf.Next()));
    }
    fx->visits_new = layout::MapToNew(fx->layout, fx->visits_old);
    return fx;
  }();
  return *f;
}

// Whole-adjacency scans over the Zipf-hot schedule: Arg 0 walks the
// original CSR, Arg 1 the degree-reordered one. The same records are read
// either way; the reordered walk keeps the hot adjacency on far fewer
// distinct cache lines.
void BM_ReorderCsrScanZipfHot(benchmark::State& state) {
  const ReorderFixture& f = BenchReorder();
  const bool reordered = state.range(0) == 1;
  const AttributedGraph& g = reordered ? f.reordered : BenchGraph();
  const std::vector<VertexId>& visits =
      reordered ? f.visits_new : f.visits_old;
  size_t i = 0;
  for (auto _ : state) {
    const VertexId v = visits[i++ & (visits.size() - 1)];
    uint64_t acc = 0;
    for (const Neighbor& nb : g.OutNeighbors(v)) acc += nb.dst;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ReorderCsrScanZipfHot)->Arg(0)->Arg(1);

// Batched, software-prefetched NeighborsBatch vs one Neighbors call per
// vertex, over the same Zipf-hot schedule on the reordered CSR.
// Arg 0 = per-vertex, 1 = batched.
void BM_ReorderPrefetchedBatchRead(benchmark::State& state) {
  const ReorderFixture& f = BenchReorder();
  LocalNeighborSource source(f.reordered);
  const bool batched = state.range(0) == 1;
  constexpr size_t kBatch = 512;
  BatchResult batch;
  size_t i = 0;
  for (auto _ : state) {
    // i advances in kBatch strides over a power-of-two schedule, so the
    // masked start is always kBatch-aligned and the window stays in range.
    const std::span<const VertexId> window(
        f.visits_new.data() + (i & (f.visits_new.size() - 1)), kBatch);
    i += kBatch;
    // Both arms walk the full adjacency payload — the point of the batch
    // path is hiding THAT memory traffic behind prefetch + coalescing.
    uint64_t acc = 0;
    if (batched) {
      source.NeighborsBatch(window, kAllEdgeTypes, &batch);
      for (const std::span<const Neighbor>& span : batch.spans) {
        for (const Neighbor& nb : span) acc += nb.dst;
      }
    } else {
      for (const VertexId v : window) {
        for (const Neighbor& nb : source.Neighbors(v)) acc += nb.dst;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_ReorderPrefetchedBatchRead)->Arg(0)->Arg(1);

// Scalar Sample loop vs the two-pass SampleBatch on a table too big for
// cache; the batch path prefetches the accept/alias rows kAhead draws out.
// Arg 0 = scalar loop, 1 = batched.
void BM_ReorderAliasSampleBatch(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(1 << 20);
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table(weights);
  const bool batched = state.range(0) == 1;
  std::vector<size_t> out(512);
  AliasTable::BatchScratch scratch;
  for (auto _ : state) {
    if (batched) {
      table.SampleBatch(rng, out, &scratch);
    } else {
      for (size_t& o : out) o = table.Sample(rng);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_ReorderAliasSampleBatch)->Arg(0)->Arg(1);

void BM_MatMul(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix a = nn::Matrix::Gaussian(n, n, 1.0f, rng);
  nn::Matrix b = nn::Matrix::Gaussian(n, n, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

}  // namespace
}  // namespace aligraph
