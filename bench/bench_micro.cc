/// \file bench_micro.cc
/// \brief google-benchmark micro-benchmarks for the hot primitives the
/// system layers are built from: alias-table sampling, LRU access, CSR
/// neighbor scans, importance computation, lock-free bucket submission and
/// the dense GEMM behind AGGREGATE/COMBINE.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/request_bucket.h"
#include "common/alias_table.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "gen/powerlaw.h"
#include "graph/khop.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/operators.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

const AttributedGraph& BenchGraph() {
  static const AttributedGraph* g = [] {
    gen::ChungLuConfig cfg;
    cfg.num_vertices = 50000;
    cfg.avg_degree = 10;
    cfg.seed = 42;
    return new AttributedGraph(std::move(gen::ChungLu(cfg)).value());
  }();
  return *g;
}

void BM_AliasTableSample(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> weights(static_cast<size_t>(state.range(0)));
  for (auto& w : weights) w = rng.NextDouble() + 0.01;
  AliasTable table(weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_LruCacheGet(benchmark::State& state) {
  LruCache<uint64_t, uint64_t> cache(4096);
  for (uint64_t i = 0; i < 4096; ++i) cache.Put(i, i);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(key++ % 8192));
  }
}
BENCHMARK(BM_LruCacheGet);

void BM_CsrNeighborScan(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  Rng rng(3);
  for (auto _ : state) {
    const VertexId v = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    uint64_t acc = 0;
    for (const Neighbor& nb : g.OutNeighbors(v)) acc += nb.dst;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CsrNeighborScan);

void BM_ImportanceScores(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ImportanceScores(g, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_ImportanceScores)->Arg(1)->Arg(2);

void BM_NeighborhoodSample(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  std::vector<VertexId> roots(64);
  std::iota(roots.begin(), roots.end(), 100);
  const std::vector<uint32_t> fans{10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(
        source, roots, NeighborhoodSampler::kAllEdgeTypes, fans));
  }
}
BENCHMARK(BM_NeighborhoodSample);

// Same workload with the observability subsystem attached (metrics registry
// + tracer). Compare against BM_NeighborhoodSample to measure the cost of
// leaving instrumentation on; the acceptance bar is <5% overhead.
void BM_NeighborhoodSampleInstrumented(benchmark::State& state) {
  const AttributedGraph& g = BenchGraph();
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::SetDefault(&registry);
  obs::SetDefaultTracer(&tracer);
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  std::vector<VertexId> roots(64);
  std::iota(roots.begin(), roots.end(), 100);
  const std::vector<uint32_t> fans{10, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(
        source, roots, NeighborhoodSampler::kAllEdgeTypes, fans));
  }
  obs::SetDefaultTracer(nullptr);
  obs::SetDefault(nullptr);
}
BENCHMARK(BM_NeighborhoodSampleInstrumented);

void BM_BucketSubmit(benchmark::State& state) {
  BucketExecutor exec(2);
  uint64_t group = 0;
  for (auto _ : state) {
    (void)exec.Submit(group++, [] {});
  }
  exec.Drain();
}
BENCHMARK(BM_BucketSubmit);

// Shared fixture for the block benchmarks: one sampled two-hop block over
// the bench graph plus a dense feature table.
struct BlockFixture {
  block::SampledBlock blk;
  nn::Matrix table;          // [num_vertices, d] global feature table
  std::vector<VertexId> slot_vertices;  // every slot's global id, flat
};

const BlockFixture& BenchBlock() {
  static const BlockFixture* f = [] {
    auto* fx = new BlockFixture;
    const AttributedGraph& g = BenchGraph();
    LocalNeighborSource source(g);
    NeighborhoodSampler sampler;
    std::vector<VertexId> roots(64);
    std::iota(roots.begin(), roots.end(), 100);
    const std::vector<uint32_t> fans{10, 5};
    fx->blk = sampler.SampleBlock(source, roots,
                                  NeighborhoodSampler::kAllEdgeTypes, fans);
    Rng rng(9);
    fx->table = nn::Matrix::Gaussian(g.num_vertices(), 32, 1.0f, rng);
    fx->slot_vertices.assign(roots.begin(), roots.end());
    for (const block::BlockHop& hop : fx->blk.hops()) {
      for (const uint32_t l : hop.src) {
        fx->slot_vertices.push_back(fx->blk.global_of(l));
      }
    }
    return fx;
  }();
  return *f;
}

// Feature gathering for one sampled block: per-SLOT (the legacy flat path,
// one row copy per occurrence) vs per-UNIQUE-vertex (the deduplicated
// block gather). Arg 0 = per-slot, 1 = dedup.
void BM_BlockGather(benchmark::State& state) {
  const BlockFixture& f = BenchBlock();
  block::MatrixFeatureSource source(f.table);
  const bool dedup = state.range(0) == 1;
  const std::span<const VertexId> targets =
      dedup ? f.blk.globals() : std::span<const VertexId>(f.slot_vertices);
  nn::Matrix out(targets.size(), f.table.cols());
  for (auto _ : state) {
    (void)source.Gather(targets, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size() * sizeof(float)));
}
BENCHMARK(BM_BlockGather)->Arg(0)->Arg(1);

// AGGREGATE over one hop: legacy per-slot materialization + map-based
// Forward vs dense CSR-indexed ForwardBlock. Arg 0 = map, 1 = block.
void BM_BlockAggregate(benchmark::State& state) {
  const BlockFixture& f = BenchBlock();
  const block::BlockHop& hop = f.blk.hops()[1];
  Rng rng(11);
  const nn::Matrix rows =
      nn::Matrix::Gaussian(f.blk.num_vertices(), 32, 1.0f, rng);
  ops::MeanAggregator agg;
  const bool use_block = state.range(0) == 1;
  for (auto _ : state) {
    if (use_block) {
      benchmark::DoNotOptimize(agg.ForwardBlock(rows, hop));
    } else {
      const nn::Matrix neighbors = block::GatherRows(rows, hop.src);
      benchmark::DoNotOptimize(agg.Forward(neighbors, hop.fan));
    }
  }
}
BENCHMARK(BM_BlockAggregate)->Arg(0)->Arg(1);

void BM_MatMul(benchmark::State& state) {
  Rng rng(7);
  const size_t n = static_cast<size_t>(state.range(0));
  nn::Matrix a = nn::Matrix::Gaussian(n, n, 1.0f, rng);
  nn::Matrix b = nn::Matrix::Gaussian(n, n, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

}  // namespace
}  // namespace aligraph
