/// \file bench_table5_operators.cc
/// \brief Table 5: AGGREGATE + COMBINE cost per mini-batch without vs. with
/// the hop-embedding materialization cache (Section 3.4).
///
/// Within a mini-batch the sampled neighbor set is shared, so the same
/// vertex's hop-1 embedding is needed many times. The naive implementation
/// recomputes it per occurrence; AliGraph's implementation computes each
/// distinct (hop, vertex) embedding once and serves the rest from the
/// cache, giving the paper's order-of-magnitude speedup.

#include <any>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "nn/layers.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"
#include "partition/partitioner.h"
#include "pipeline/block_pipeline.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

struct OperatorCost {
  double naive_ms = 0;
  double cached_ms = 0;
};

OperatorCost RunDataset(const AttributedGraph& graph, uint64_t seed) {
  Rng rng(seed);
  const size_t d = 32;
  const size_t fan = 10;
  const size_t batch = 512;
  const size_t shared_pool = 256;  // shared sampled neighbors per batch
  const int rounds = 5;

  // Input features.
  nn::Matrix x(graph.num_vertices(), d);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.NextFloat();

  ops::MeanAggregator aggregator;
  ops::ConcatCombiner combiner(d, d, rng);

  // Computes h1 of one vertex from its own sampled neighbors.
  auto compute_h1 = [&](VertexId v, nn::Matrix* out_row) {
    nn::Matrix self(1, d);
    std::copy(x.Row(v).begin(), x.Row(v).end(), self.Row(0).begin());
    nn::Matrix neigh(fan, d);
    const auto nbs = graph.OutNeighbors(v);
    for (size_t f = 0; f < fan; ++f) {
      const VertexId u =
          nbs.empty() ? v : nbs[rng.Uniform(nbs.size())].dst;
      std::copy(x.Row(u).begin(), x.Row(u).end(), neigh.Row(f).begin());
    }
    const nn::Matrix agg = aggregator.Forward(neigh, fan);
    *out_row = combiner.Forward(self, agg);
  };

  OperatorCost cost;
  for (int round = 0; round < rounds; ++round) {
    // Shared neighbor pool for this mini-batch: every root's fan is drawn
    // from these vertices (the sharing FastGCN-style training uses).
    std::vector<VertexId> pool(shared_pool);
    for (auto& v : pool) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
    std::vector<std::vector<VertexId>> batch_neighbors(batch);
    for (auto& list : batch_neighbors) {
      list.resize(fan);
      for (auto& v : list) v = pool[rng.Uniform(pool.size())];
    }

    // Naive: recompute every occurrence.
    {
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          compute_h1(u, &h1);
        }
      }
      cost.naive_ms += t.ElapsedMillis();
    }
    // Cached: compute each distinct vertex once per mini-batch.
    {
      ops::HopEmbeddingCache cache(d);
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          if (!cache.Lookup(1, u).empty()) continue;
          compute_h1(u, &h1);
          cache.Insert(1, u, h1.Row(0));
        }
      }
      cost.cached_ms += t.ElapsedMillis();
    }
  }
  cost.naive_ms /= rounds;
  cost.cached_ms /= rounds;
  return cost;
}

// ---------------------------------------------------------------------------
// Map-based vs block-based execution of the same two-hop AGGREGATE stack:
// the legacy path fetches one attribute row per SLOT (per occurrence,
// individual RPCs, hash-keyed rows); the block path relabels the sample,
// gathers one row per UNIQUE vertex through a coalesced per-worker batch
// and aggregates over dense CSR indices.

struct BlockCost {
  double map_ms = 0;
  double block_ms = 0;
  double map_modeled_ms = 0;
  double block_modeled_ms = 0;
  double map_mb = 0;
  double block_mb = 0;
};

BlockCost RunBlockVariant(const AttributedGraph& graph, uint64_t seed) {
  const size_t d = 32;
  const std::vector<uint32_t> fans{10, 5};
  const size_t batch = 256;
  const int rounds = 3;

  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  const AttributeStore& store = cluster.graph().vertex_attributes();
  CommModel model;
  Rng rng(seed);

  // One attribute row, zero-padded / truncated to d.
  auto fetch_row = [&](VertexId v, CommStats* stats, std::span<float> out) {
    std::fill(out.begin(), out.end(), 0.0f);
    auto id = cluster.TryGetVertexAttr(/*from=*/0, v, stats);
    if (!id.ok() || *id == kNoAttr) return;
    const auto payload = store.Get(*id);
    const size_t n = payload.size() < d ? payload.size() : d;
    std::copy(payload.begin(), payload.begin() + n, out.begin());
  };

  BlockCost cost;
  // The two paths aggregate the same draws, so their outputs cancel; a
  // non-zero sink would mean they diverged.
  float sink = 0.0f;
  for (int round = 0; round < rounds; ++round) {
    std::vector<VertexId> roots(batch);
    for (auto& v : roots) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
    const uint64_t draw_seed = rng.Next();

    // Map path: flat sample, one fetch per slot, legacy per-slot matrices.
    {
      CommStats stats;
      DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
      NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
      Timer t;
      const NeighborhoodSample s = sampler.Sample(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
      nn::Matrix hop1(s.hops[1].size(), d);
      for (size_t i = 0; i < s.hops[1].size(); ++i) {
        fetch_row(s.hops[1][i], &stats, hop1.Row(i));
      }
      nn::Matrix hop0(s.hops[0].size(), d);
      for (size_t i = 0; i < s.hops[0].size(); ++i) {
        fetch_row(s.hops[0][i], &stats, hop0.Row(i));
      }
      ops::MeanAggregator agg1, agg0;
      const nn::Matrix a1 = agg1.Forward(hop1, fans[1]);
      const nn::Matrix a0 = agg0.Forward(hop0, fans[0]);
      cost.map_ms += t.ElapsedMillis();
      cost.map_modeled_ms += model.ModeledMillis(stats);
      const size_t slots =
          roots.size() + s.hops[0].size() + s.hops[1].size();
      cost.map_mb += static_cast<double>(slots * d * sizeof(float)) / 1e6;
      sink += a1.At(0, 0) + a0.At(0, 0);
    }
    // Block path: same draws relabeled, one coalesced gather per unique
    // vertex, CSR-indexed aggregation over the dense row matrix.
    {
      CommStats stats;
      DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
      block::ClusterFeatureSource features(cluster, /*worker=*/0, d, &stats);
      NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
      Timer t;
      const block::SampledBlock blk = sampler.SampleBlock(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans,
          /*pool=*/nullptr, &features);
      ops::MeanAggregator agg1, agg0;
      const nn::Matrix a1 =
          agg1.ForwardBlock(blk.features(), blk.hops()[1]);
      const nn::Matrix a0 =
          agg0.ForwardBlock(blk.features(), blk.hops()[0]);
      cost.block_ms += t.ElapsedMillis();
      cost.block_modeled_ms += model.ModeledMillis(stats);
      cost.block_mb +=
          static_cast<double>(blk.features().size() * sizeof(float)) / 1e6;
      sink -= a1.At(0, 0) + a0.At(0, 0);
    }
  }
  cost.map_ms /= rounds;
  cost.block_ms /= rounds;
  cost.map_modeled_ms /= rounds;
  cost.block_modeled_ms /= rounds;
  cost.map_mb /= rounds;
  cost.block_mb /= rounds;
  ALIGRAPH_CHECK_EQ(sink, 0.0f);
  return cost;
}

// ---------------------------------------------------------------------------
// Sequential vs pipelined execution of the same block batch stream: both
// paths run SampleBlock -> GatherBlockFeatures -> ForwardBlock per batch
// with identical draws, but the pipelined path overlaps batch N+1's
// sampling with batch N's gather and batch N-1's aggregation through
// pipeline::BlockPipeline (depth 2).

struct PipelineCost {
  double seq_ms = 0;        // measured wall clock, sequential
  double pipe_ms = 0;       // measured wall clock, pipelined (depth 2)
  double seq_modeled_ms = 0;   // deterministic per-stage cost model, summed
  double pipe_modeled_ms = 0;  // same costs through the pipeline schedule
  double speedup = 0;          // seq_modeled / pipe_modeled — the gated one
};

/// Completion time of the 3-stage pipeline schedule over per-batch stage
/// costs s/g/c with stage queues of `depth` slots: each stage processes
/// batches in order, a push blocks while the downstream queue is full and a
/// pop blocks while it is empty — exactly BlockPipeline's semantics, so
/// this is the deterministic twin of the measured pipelined run.
double PipelineScheduleMs(const std::vector<double>& s,
                          const std::vector<double>& g,
                          const std::vector<double>& c, size_t depth) {
  const size_t n = s.size();
  std::vector<double> s_push(n), g_start(n), g_push(n), c_start(n), c_fin(n);
  double s_fin = 0;
  for (size_t b = 0; b < n; ++b) {
    s_fin = (b > 0 ? s_push[b - 1] : 0) + s[b];
    // The sampled-queue slot frees when the gather stage pops batch b-depth.
    s_push[b] = b >= depth ? std::max(s_fin, g_start[b - depth]) : s_fin;
    g_start[b] = std::max(s_push[b], b > 0 ? g_push[b - 1] : 0);
    const double g_fin = g_start[b] + g[b];
    g_push[b] = b >= depth ? std::max(g_fin, c_start[b - depth]) : g_fin;
    c_start[b] = std::max(g_push[b], b > 0 ? c_fin[b - 1] : 0);
    c_fin[b] = c_start[b] + c[b];
  }
  return n > 0 ? c_fin[n - 1] : 0;
}

PipelineCost RunPipelineVariant(const AttributedGraph& graph, uint64_t seed) {
  const size_t d = 32;
  const std::vector<uint32_t> fans{10, 5};
  const size_t batch = 256;
  const size_t num_batches = 24;

  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  Rng rng(seed);

  // Pre-drawn roots so both paths consume the identical batch stream and
  // root drawing stays off the measured clock.
  std::vector<std::vector<VertexId>> all_roots(num_batches);
  for (auto& roots : all_roots) {
    roots.resize(batch);
    for (auto& v : roots) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
  }
  const uint64_t draw_seed = rng.Next();

  ops::MeanAggregator agg1, agg0;
  PipelineCost cost;
  // Per-batch checksums of the two paths, compared bitwise after both runs:
  // the pipeline must not change a single bit (stages stay in batch order).
  std::vector<float> seq_sums(num_batches), pipe_sums(num_batches);

  // Per-batch deterministic stage costs: sample and gather from the comm
  // model (each stage reads through its own CommStats), compute from the
  // aggregated element count. Wall clock on a loaded or single-core CI
  // runner says nothing reproducible about overlap, so the GATED speedup is
  // computed from these modeled costs run through the pipeline schedule;
  // the measured times are exported alongside, ungated.
  std::vector<double> s_cost(num_batches), g_cost(num_batches),
      c_cost(num_batches);
  const double kComputeMsPerElement = 1e-6;
  CommModel model;

  // Sequential: the exact stage sequence, back to back on one thread.
  {
    CommStats sample_stats, gather_stats;
    DistributedNeighborSource source(cluster, /*worker=*/0, &sample_stats);
    block::ClusterFeatureSource features(cluster, /*worker=*/0, d,
                                         &gather_stats);
    NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
    Timer t;
    for (size_t b = 0; b < num_batches; ++b) {
      const double s_before = model.ModeledMillis(sample_stats);
      const block::SampledBlock blk = sampler.SampleBlock(
          source, all_roots[b], NeighborhoodSampler::kAllEdgeTypes, fans);
      s_cost[b] = model.ModeledMillis(sample_stats) - s_before;
      const double g_before = model.ModeledMillis(gather_stats);
      const nn::Matrix x =
          block::GatherBlockFeatures(blk, features, /*row_cache=*/nullptr);
      g_cost[b] = model.ModeledMillis(gather_stats) - g_before;
      const nn::Matrix a1 = agg1.ForwardBlock(x, blk.hops()[1]);
      const nn::Matrix a0 = agg0.ForwardBlock(x, blk.hops()[0]);
      c_cost[b] = kComputeMsPerElement * static_cast<double>(
          (blk.hops()[0].src.size() + blk.hops()[1].src.size()) * d);
      seq_sums[b] = a1.At(0, 0) + a0.At(0, 0);
    }
    cost.seq_ms = t.ElapsedMillis();
  }
  // Pipelined: same draws, same gathers, same float ops — overlapped. Each
  // stage owns its CommStats (they are written from different lanes).
  {
    CommStats sample_stats, gather_stats;
    DistributedNeighborSource source(cluster, /*worker=*/0, &sample_stats);
    block::ClusterFeatureSource features(cluster, /*worker=*/0, d,
                                         &gather_stats);
    NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
    pipeline::BlockPipeline pipe({/*depth=*/2});
    Timer t;
    const Status run = pipe.Run(
        sampler, source, NeighborhoodSampler::kAllEdgeTypes, fans,
        num_batches,
        [&](size_t b, std::any*) { return all_roots[b]; },
        [&](const block::SampledBlock& blk) {
          return block::GatherBlockFeatures(blk, features,
                                            /*row_cache=*/nullptr);
        },
        [&](size_t b, const block::SampledBlock& blk, const nn::Matrix& x,
            std::any&) {
          const nn::Matrix a1 = agg1.ForwardBlock(x, blk.hops()[1]);
          const nn::Matrix a0 = agg0.ForwardBlock(x, blk.hops()[0]);
          pipe_sums[b] = a1.At(0, 0) + a0.At(0, 0);
        });
    cost.pipe_ms = t.ElapsedMillis();
    ALIGRAPH_CHECK(run.ok());
  }
  for (size_t b = 0; b < num_batches; ++b) {
    ALIGRAPH_CHECK_EQ(seq_sums[b], pipe_sums[b]);
  }
  for (size_t b = 0; b < num_batches; ++b) {
    cost.seq_modeled_ms += s_cost[b] + g_cost[b] + c_cost[b];
  }
  cost.pipe_modeled_ms =
      PipelineScheduleMs(s_cost, g_cost, c_cost, /*depth=*/2);
  cost.speedup = cost.seq_modeled_ms / cost.pipe_modeled_ms;
  return cost;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before any HopEmbeddingCache exists so its hit/miss counters
  // land in this registry, and so aggregate/combine spans are captured.
  bench::ObsBench obs("table5_operators", args);
  obs.report().AddMeta("experiment", "Table 5 operator cost");
  bench::Banner(
      "Table 5 — operator cost without vs. with the hop-embedding cache",
      "caching intermediate embedding vectors speeds AGGREGATE/COMBINE up "
      "by an order of magnitude (~13x)");

  obs.Table("operator_cost",
            {"dataset", "w/o cache (ms)", "with cache (ms)", "speedup"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-small (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_small.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_small.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_small.speedup", c.naive_ms / c.cached_ms);
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-large (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_large.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_large.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_large.speedup", c.naive_ms / c.cached_ms);
  }

  // Variant: map-based (per-slot fetch + hash-keyed rows) vs block-based
  // (relabeled block + coalesced gather + dense CSR aggregation) execution
  // of the same sampled two-hop AGGREGATE stack.
  obs.Table("block_execution",
            {"dataset", "path", "measured (ms)", "modeled comm (ms)",
             "gathered (MB)"});
  const auto report_block = [&obs](const char* dataset, const char* key,
                                   const BlockCost& c) {
    obs.TableRow({dataset, "map", bench::Fmt("%.2f", c.map_ms),
                  bench::Fmt("%.2f", c.map_modeled_ms),
                  bench::Fmt("%.3f", c.map_mb)});
    obs.TableRow({dataset, "block", bench::Fmt("%.2f", c.block_ms),
                  bench::Fmt("%.2f", c.block_modeled_ms),
                  bench::Fmt("%.3f", c.block_mb)});
    const std::string k(key);
    obs.report().AddMetric(k + ".map_ms", c.map_ms);
    obs.report().AddMetric(k + ".block_ms", c.block_ms);
    obs.report().AddMetric(k + ".map_modeled_ms", c.map_modeled_ms);
    obs.report().AddMetric(k + ".block_modeled_ms", c.block_modeled_ms);
    obs.report().AddMetric(k + ".map_gather_mb", c.map_mb);
    obs.report().AddMetric(k + ".block_gather_mb", c.block_mb);
  };
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    report_block("Taobao-small (syn)", "block_small",
                 RunBlockVariant(g, args.seed));
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    report_block("Taobao-large (syn)", "block_large",
                 RunBlockVariant(g, args.seed));
  }

  // Variant: the same block batch stream executed sequentially vs through
  // the 3-stage sample/gather/compute pipeline (depth 2). The checksum
  // inside asserts the pipeline did not change a single bit; the metric
  // below gates that the overlap keeps paying off.
  obs.Table("pipelined_execution",
            {"dataset", "seq (ms)", "pipe (ms)", "seq modeled (ms)",
             "pipe modeled (ms)", "modeled speedup"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto c = RunPipelineVariant(g, args.seed);
    obs.TableRow({"Taobao-small (syn)", bench::Fmt("%.2f", c.seq_ms),
                  bench::Fmt("%.2f", c.pipe_ms),
                  bench::Fmt("%.2f", c.seq_modeled_ms),
                  bench::Fmt("%.2f", c.pipe_modeled_ms),
                  bench::Fmt("%.2fx", c.speedup)});
    obs.report().AddMetric("pipeline.seq_ms", c.seq_ms);
    obs.report().AddMetric("pipeline.pipe_ms", c.pipe_ms);
    obs.report().AddMetric("pipeline.seq_modeled_ms", c.seq_modeled_ms);
    obs.report().AddMetric("pipeline.pipe_modeled_ms", c.pipe_modeled_ms);
    obs.report().AddMetric("pipeline.speedup", c.speedup);
  }
  obs.WriteReport();
  return 0;
}
