/// \file bench_table5_operators.cc
/// \brief Table 5: AGGREGATE + COMBINE cost per mini-batch without vs. with
/// the hop-embedding materialization cache (Section 3.4).
///
/// Within a mini-batch the sampled neighbor set is shared, so the same
/// vertex's hop-1 embedding is needed many times. The naive implementation
/// recomputes it per occurrence; AliGraph's implementation computes each
/// distinct (hop, vertex) embedding once and serves the rest from the
/// cache, giving the paper's order-of-magnitude speedup.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "nn/layers.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

struct OperatorCost {
  double naive_ms = 0;
  double cached_ms = 0;
};

OperatorCost RunDataset(const AttributedGraph& graph, uint64_t seed) {
  Rng rng(seed);
  const size_t d = 32;
  const size_t fan = 10;
  const size_t batch = 512;
  const size_t shared_pool = 256;  // shared sampled neighbors per batch
  const int rounds = 5;

  // Input features.
  nn::Matrix x(graph.num_vertices(), d);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.NextFloat();

  ops::MeanAggregator aggregator;
  ops::ConcatCombiner combiner(d, d, rng);

  // Computes h1 of one vertex from its own sampled neighbors.
  auto compute_h1 = [&](VertexId v, nn::Matrix* out_row) {
    nn::Matrix self(1, d);
    std::copy(x.Row(v).begin(), x.Row(v).end(), self.Row(0).begin());
    nn::Matrix neigh(fan, d);
    const auto nbs = graph.OutNeighbors(v);
    for (size_t f = 0; f < fan; ++f) {
      const VertexId u =
          nbs.empty() ? v : nbs[rng.Uniform(nbs.size())].dst;
      std::copy(x.Row(u).begin(), x.Row(u).end(), neigh.Row(f).begin());
    }
    const nn::Matrix agg = aggregator.Forward(neigh, fan);
    *out_row = combiner.Forward(self, agg);
  };

  OperatorCost cost;
  for (int round = 0; round < rounds; ++round) {
    // Shared neighbor pool for this mini-batch: every root's fan is drawn
    // from these vertices (the sharing FastGCN-style training uses).
    std::vector<VertexId> pool(shared_pool);
    for (auto& v : pool) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
    std::vector<std::vector<VertexId>> batch_neighbors(batch);
    for (auto& list : batch_neighbors) {
      list.resize(fan);
      for (auto& v : list) v = pool[rng.Uniform(pool.size())];
    }

    // Naive: recompute every occurrence.
    {
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          compute_h1(u, &h1);
        }
      }
      cost.naive_ms += t.ElapsedMillis();
    }
    // Cached: compute each distinct vertex once per mini-batch.
    {
      ops::HopEmbeddingCache cache(d);
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          if (!cache.Lookup(1, u).empty()) continue;
          compute_h1(u, &h1);
          cache.Insert(1, u, h1.Row(0));
        }
      }
      cost.cached_ms += t.ElapsedMillis();
    }
  }
  cost.naive_ms /= rounds;
  cost.cached_ms /= rounds;
  return cost;
}

// ---------------------------------------------------------------------------
// Map-based vs block-based execution of the same two-hop AGGREGATE stack:
// the legacy path fetches one attribute row per SLOT (per occurrence,
// individual RPCs, hash-keyed rows); the block path relabels the sample,
// gathers one row per UNIQUE vertex through a coalesced per-worker batch
// and aggregates over dense CSR indices.

struct BlockCost {
  double map_ms = 0;
  double block_ms = 0;
  double map_modeled_ms = 0;
  double block_modeled_ms = 0;
  double map_mb = 0;
  double block_mb = 0;
};

BlockCost RunBlockVariant(const AttributedGraph& graph, uint64_t seed) {
  const size_t d = 32;
  const std::vector<uint32_t> fans{10, 5};
  const size_t batch = 256;
  const int rounds = 3;

  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  const AttributeStore& store = cluster.graph().vertex_attributes();
  CommModel model;
  Rng rng(seed);

  // One attribute row, zero-padded / truncated to d.
  auto fetch_row = [&](VertexId v, CommStats* stats, std::span<float> out) {
    std::fill(out.begin(), out.end(), 0.0f);
    auto id = cluster.TryGetVertexAttr(/*from=*/0, v, stats);
    if (!id.ok() || *id == kNoAttr) return;
    const auto payload = store.Get(*id);
    const size_t n = payload.size() < d ? payload.size() : d;
    std::copy(payload.begin(), payload.begin() + n, out.begin());
  };

  BlockCost cost;
  // The two paths aggregate the same draws, so their outputs cancel; a
  // non-zero sink would mean they diverged.
  float sink = 0.0f;
  for (int round = 0; round < rounds; ++round) {
    std::vector<VertexId> roots(batch);
    for (auto& v : roots) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
    const uint64_t draw_seed = rng.Next();

    // Map path: flat sample, one fetch per slot, legacy per-slot matrices.
    {
      CommStats stats;
      DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
      NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
      Timer t;
      const NeighborhoodSample s = sampler.Sample(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
      nn::Matrix hop1(s.hops[1].size(), d);
      for (size_t i = 0; i < s.hops[1].size(); ++i) {
        fetch_row(s.hops[1][i], &stats, hop1.Row(i));
      }
      nn::Matrix hop0(s.hops[0].size(), d);
      for (size_t i = 0; i < s.hops[0].size(); ++i) {
        fetch_row(s.hops[0][i], &stats, hop0.Row(i));
      }
      ops::MeanAggregator agg1, agg0;
      const nn::Matrix a1 = agg1.Forward(hop1, fans[1]);
      const nn::Matrix a0 = agg0.Forward(hop0, fans[0]);
      cost.map_ms += t.ElapsedMillis();
      cost.map_modeled_ms += model.ModeledMillis(stats);
      const size_t slots =
          roots.size() + s.hops[0].size() + s.hops[1].size();
      cost.map_mb += static_cast<double>(slots * d * sizeof(float)) / 1e6;
      sink += a1.At(0, 0) + a0.At(0, 0);
    }
    // Block path: same draws relabeled, one coalesced gather per unique
    // vertex, CSR-indexed aggregation over the dense row matrix.
    {
      CommStats stats;
      DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
      block::ClusterFeatureSource features(cluster, /*worker=*/0, d, &stats);
      NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
      Timer t;
      const block::SampledBlock blk = sampler.SampleBlock(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans,
          /*pool=*/nullptr, &features);
      ops::MeanAggregator agg1, agg0;
      const nn::Matrix a1 =
          agg1.ForwardBlock(blk.features(), blk.hops()[1]);
      const nn::Matrix a0 =
          agg0.ForwardBlock(blk.features(), blk.hops()[0]);
      cost.block_ms += t.ElapsedMillis();
      cost.block_modeled_ms += model.ModeledMillis(stats);
      cost.block_mb +=
          static_cast<double>(blk.features().size() * sizeof(float)) / 1e6;
      sink -= a1.At(0, 0) + a0.At(0, 0);
    }
  }
  cost.map_ms /= rounds;
  cost.block_ms /= rounds;
  cost.map_modeled_ms /= rounds;
  cost.block_modeled_ms /= rounds;
  cost.map_mb /= rounds;
  cost.block_mb /= rounds;
  ALIGRAPH_CHECK_EQ(sink, 0.0f);
  return cost;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before any HopEmbeddingCache exists so its hit/miss counters
  // land in this registry, and so aggregate/combine spans are captured.
  bench::ObsBench obs("table5_operators", args);
  obs.report().AddMeta("experiment", "Table 5 operator cost");
  bench::Banner(
      "Table 5 — operator cost without vs. with the hop-embedding cache",
      "caching intermediate embedding vectors speeds AGGREGATE/COMBINE up "
      "by an order of magnitude (~13x)");

  obs.Table("operator_cost",
            {"dataset", "w/o cache (ms)", "with cache (ms)", "speedup"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-small (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_small.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_small.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_small.speedup", c.naive_ms / c.cached_ms);
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-large (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_large.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_large.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_large.speedup", c.naive_ms / c.cached_ms);
  }

  // Variant: map-based (per-slot fetch + hash-keyed rows) vs block-based
  // (relabeled block + coalesced gather + dense CSR aggregation) execution
  // of the same sampled two-hop AGGREGATE stack.
  obs.Table("block_execution",
            {"dataset", "path", "measured (ms)", "modeled comm (ms)",
             "gathered (MB)"});
  const auto report_block = [&obs](const char* dataset, const char* key,
                                   const BlockCost& c) {
    obs.TableRow({dataset, "map", bench::Fmt("%.2f", c.map_ms),
                  bench::Fmt("%.2f", c.map_modeled_ms),
                  bench::Fmt("%.3f", c.map_mb)});
    obs.TableRow({dataset, "block", bench::Fmt("%.2f", c.block_ms),
                  bench::Fmt("%.2f", c.block_modeled_ms),
                  bench::Fmt("%.3f", c.block_mb)});
    const std::string k(key);
    obs.report().AddMetric(k + ".map_ms", c.map_ms);
    obs.report().AddMetric(k + ".block_ms", c.block_ms);
    obs.report().AddMetric(k + ".map_modeled_ms", c.map_modeled_ms);
    obs.report().AddMetric(k + ".block_modeled_ms", c.block_modeled_ms);
    obs.report().AddMetric(k + ".map_gather_mb", c.map_mb);
    obs.report().AddMetric(k + ".block_gather_mb", c.block_mb);
  };
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    report_block("Taobao-small (syn)", "block_small",
                 RunBlockVariant(g, args.seed));
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    report_block("Taobao-large (syn)", "block_large",
                 RunBlockVariant(g, args.seed));
  }
  obs.WriteReport();
  return 0;
}
