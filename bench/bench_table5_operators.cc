/// \file bench_table5_operators.cc
/// \brief Table 5: AGGREGATE + COMBINE cost per mini-batch without vs. with
/// the hop-embedding materialization cache (Section 3.4).
///
/// Within a mini-batch the sampled neighbor set is shared, so the same
/// vertex's hop-1 embedding is needed many times. The naive implementation
/// recomputes it per occurrence; AliGraph's implementation computes each
/// distinct (hop, vertex) embedding once and serves the rest from the
/// cache, giving the paper's order-of-magnitude speedup.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/taobao.h"
#include "nn/layers.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"

namespace aligraph {
namespace {

struct OperatorCost {
  double naive_ms = 0;
  double cached_ms = 0;
};

OperatorCost RunDataset(const AttributedGraph& graph, uint64_t seed) {
  Rng rng(seed);
  const size_t d = 32;
  const size_t fan = 10;
  const size_t batch = 512;
  const size_t shared_pool = 256;  // shared sampled neighbors per batch
  const int rounds = 5;

  // Input features.
  nn::Matrix x(graph.num_vertices(), d);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.NextFloat();

  ops::MeanAggregator aggregator;
  ops::ConcatCombiner combiner(d, d, rng);

  // Computes h1 of one vertex from its own sampled neighbors.
  auto compute_h1 = [&](VertexId v, nn::Matrix* out_row) {
    nn::Matrix self(1, d);
    std::copy(x.Row(v).begin(), x.Row(v).end(), self.Row(0).begin());
    nn::Matrix neigh(fan, d);
    const auto nbs = graph.OutNeighbors(v);
    for (size_t f = 0; f < fan; ++f) {
      const VertexId u =
          nbs.empty() ? v : nbs[rng.Uniform(nbs.size())].dst;
      std::copy(x.Row(u).begin(), x.Row(u).end(), neigh.Row(f).begin());
    }
    const nn::Matrix agg = aggregator.Forward(neigh, fan);
    *out_row = combiner.Forward(self, agg);
  };

  OperatorCost cost;
  for (int round = 0; round < rounds; ++round) {
    // Shared neighbor pool for this mini-batch: every root's fan is drawn
    // from these vertices (the sharing FastGCN-style training uses).
    std::vector<VertexId> pool(shared_pool);
    for (auto& v : pool) {
      v = static_cast<VertexId>(rng.Uniform(graph.num_vertices()));
    }
    std::vector<std::vector<VertexId>> batch_neighbors(batch);
    for (auto& list : batch_neighbors) {
      list.resize(fan);
      for (auto& v : list) v = pool[rng.Uniform(pool.size())];
    }

    // Naive: recompute every occurrence.
    {
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          compute_h1(u, &h1);
        }
      }
      cost.naive_ms += t.ElapsedMillis();
    }
    // Cached: compute each distinct vertex once per mini-batch.
    {
      ops::HopEmbeddingCache cache(d);
      Timer t;
      nn::Matrix h1;
      for (size_t b = 0; b < batch; ++b) {
        for (VertexId u : batch_neighbors[b]) {
          if (!cache.Lookup(1, u).empty()) continue;
          compute_h1(u, &h1);
          cache.Insert(1, u, h1.Row(0));
        }
      }
      cost.cached_ms += t.ElapsedMillis();
    }
  }
  cost.naive_ms /= rounds;
  cost.cached_ms /= rounds;
  return cost;
}

}  // namespace
}  // namespace aligraph

int main(int argc, char** argv) {
  using namespace aligraph;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  // Attach before any HopEmbeddingCache exists so its hit/miss counters
  // land in this registry, and so aggregate/combine spans are captured.
  bench::ObsBench obs("table5_operators", args);
  obs.report().AddMeta("experiment", "Table 5 operator cost");
  bench::Banner(
      "Table 5 — operator cost without vs. with the hop-embedding cache",
      "caching intermediate embedding vectors speeds AGGREGATE/COMBINE up "
      "by an order of magnitude (~13x)");

  obs.Table("operator_cost",
            {"dataset", "w/o cache (ms)", "with cache (ms)", "speedup"});
  {
    auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-small (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_small.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_small.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_small.speedup", c.naive_ms / c.cached_ms);
  }
  {
    auto g = std::move(gen::Taobao(gen::TaobaoLargeConfig(args.scale))).value();
    const auto c = RunDataset(g, args.seed);
    obs.TableRow({"Taobao-large (syn)", bench::Fmt("%.2f", c.naive_ms),
                  bench::Fmt("%.2f", c.cached_ms),
                  bench::Fmt("%.1fx", c.naive_ms / c.cached_ms)});
    obs.report().AddMetric("taobao_large.naive_ms", c.naive_ms);
    obs.report().AddMetric("taobao_large.cached_ms", c.cached_ms);
    obs.report().AddMetric("taobao_large.speedup", c.naive_ms / c.cached_ms);
  }
  obs.WriteReport();
  return 0;
}
