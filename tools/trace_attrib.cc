/// \file trace_attrib.cc
/// \brief CLI over a flight-recorder dump: prints the run's p50-vs-p99
/// latency attribution and walks the retained exemplars.
///
/// Usage:
///   trace_attrib [--top=N] <flightrec.json>
///
/// Reads a dump produced by obs::FlightRecorder::WriteJson (bench_serve
/// writes one for its gated open-loop scenario) and prints
///   1. the embedded AttributionReport — which budget component explains
///      the gap between the p50 and p99 cohorts,
///   2. the top-N exemplars, slowest first, each with its per-component
///      budget, counters, and — when the dump carries spans — the longest
///      blocking chain of its causal trace plus the wall-clock budget
///      recovered from the trace tree (BudgetFromTraceTree), so the modeled
///      attribution can be eyeballed against what the real lanes did.
///
/// Exit codes: 0 = ok, 2 = usage / unreadable file / malformed dump.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/attrib.h"
#include "obs/recorder.h"
#include "obs/timeline.h"

namespace {

using namespace aligraph;

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--top=N] <flightrec.json>\n", argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void PrintBudget(const obs::RequestBudget& budget, const char* indent) {
  for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
    if (budget.components[c] == 0.0) continue;
    std::printf("%s%-14s %10.2f us  %5.1f%%\n", indent,
                obs::BudgetComponentName(
                    static_cast<obs::BudgetComponent>(c)),
                budget.components[c],
                budget.total_us > 0.0
                    ? 100.0 * budget.components[c] / budget.total_us
                    : 0.0);
  }
}

void PrintExemplar(const obs::Exemplar& ex) {
  std::printf(
      "request %llu  trace %016llx  %s%s%s  total %.2f us  coverage %.4f\n",
      static_cast<unsigned long long>(ex.budget.request_id),
      static_cast<unsigned long long>(ex.budget.trace_id),
      obs::BudgetOutcomeName(ex.budget.outcome), ex.slow ? " [slow]" : "",
      ex.sampled ? " [sampled]" : "", ex.budget.total_us,
      ex.budget.coverage());
  PrintBudget(ex.budget, "    ");
  if (!ex.counters.empty()) {
    std::printf("    counters:");
    for (const auto& [name, value] : ex.counters) {
      std::printf(" %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
    std::printf("\n");
  }
  if (ex.spans.empty()) return;
  // The dump carries the exemplar's causal spans: reassemble the tree and
  // show the wall-clock side of the story next to the modeled budget.
  const obs::TraceForest forest = obs::AssembleTraces(ex.spans);
  for (const obs::TraceTree& tree : forest.traces) {
    if (tree.trace_id != ex.budget.trace_id) continue;
    const obs::RequestBudget wall = obs::BudgetFromTraceTree(tree);
    std::printf("    wall trace: %zu spans, %.2f us, coverage %.4f\n",
                tree.nodes.size(), wall.total_us, wall.coverage());
    PrintBudget(wall, "        ");
    std::printf("    %s\n",
                obs::ComputeCriticalPath(tree).ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t top = 8;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--top=", 6) == 0) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(arg + 6, &end, 10);
      if (end == arg + 6 || *end != '\0') return Usage(argv[0]);
      top = static_cast<size_t>(v);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::string json;
  if (!ReadFile(path, &json)) {
    std::fprintf(stderr, "cannot read: %s\n", path.c_str());
    return 2;
  }
  const auto dump = obs::ParseRecorderDump(json);
  if (!dump.ok()) {
    std::fprintf(stderr, "trace_attrib: %s\n",
                 dump.status().ToString().c_str());
    return 2;
  }

  std::printf("flight recorder: %s\n", dump->name.c_str());
  std::printf("offered %llu requests | retained %zu exemplar(s) "
              "(slowest_k=%zu, sample_k=%zu)\n",
              static_cast<unsigned long long>(dump->offered),
              dump->exemplars.size(), dump->config.slowest_k,
              dump->config.sample_k);
  if (dump->has_attribution) {
    std::printf("\n%s", dump->attribution.ToString().c_str());
  } else {
    std::printf("\n(no attribution report embedded in this dump)\n");
  }

  std::printf("\nexemplars (slowest first, top %zu of %zu):\n", top,
              dump->exemplars.size());
  size_t shown = 0;
  for (const obs::Exemplar& ex : dump->exemplars) {
    if (shown++ >= top) break;
    std::printf("\n");
    PrintExemplar(ex);
  }
  return 0;
}
