/// \file bench_compare.cc
/// \brief CLI regression gate over run-report JSONs.
///
/// Usage:
///   bench_compare [--tolerance=0.10] [--metric-tolerance=NAME=TOL]...
///                 [--metric-slack=NAME=ABS] [--higher-better=NAME]...
///                 <baseline.json> <candidate.json> [candidate2.json]...
///   bench_compare --list [gate flags]... <baseline.json> [candidate.json]...
///
/// --list prints the gate CONTRACT instead of enforcing it: every gated key
/// with its baseline value, resolved tolerance, absolute slack and
/// direction (and, when candidates are given, the last-wins candidate
/// value). Always exits 0 unless the inputs are unreadable — it is the
/// "what would the gate check" introspection for CI logs and for humans
/// editing bench/baseline.json.
///
/// Walks the baseline's "metrics" object and compares each against the
/// candidates with the given relative tolerance; --metric-tolerance
/// overrides the default for one metric and may repeat. --metric-slack
/// widens one metric's bound by an ABSOLUTE amount on top of the relative
/// tolerance (the right units for latency-percentile keys, where the tail
/// sits on a single observation) and may repeat. Metrics default to
/// lower-is-better; --higher-better flips one metric's direction (speedups,
/// hit rates) and may repeat. Several candidate reports may each cover part
/// of the baseline's contract (e.g. the table4 and table5 smoke runs): the
/// LAST candidate carrying a metric wins, and only a metric absent from all
/// of them counts as missing.
/// Exit codes: 0 = gate passed, 1 = regression or missing metric,
/// 2 = usage / unreadable file / malformed JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/compare.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--tolerance=R] "
               "[--metric-tolerance=NAME=R]... [--metric-slack=NAME=ABS]... "
               "[--higher-better=NAME]... <baseline.json> "
               "<candidate.json>...\n       (--list needs no candidates)\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  aligraph::obs::CompareOptions options;
  bool list_mode = false;
  std::string baseline_path;
  std::vector<std::string> candidate_paths;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list_mode = true;
    } else if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      char* end = nullptr;
      options.default_tolerance = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0' || options.default_tolerance < 0) {
        std::fprintf(stderr, "bad --tolerance value: %s\n", arg + 12);
        return 2;
      }
    } else if (std::strncmp(arg, "--metric-tolerance=", 19) == 0) {
      const char* spec = arg + 19;
      const char* eq = std::strrchr(spec, '=');
      if (eq == nullptr || eq == spec) return Usage(argv[0]);
      char* end = nullptr;
      const double tol = std::strtod(eq + 1, &end);
      if (end == eq + 1 || *end != '\0' || tol < 0) {
        std::fprintf(stderr, "bad --metric-tolerance value: %s\n", spec);
        return 2;
      }
      options.per_metric_tolerance[std::string(spec, eq)] = tol;
    } else if (std::strncmp(arg, "--metric-slack=", 15) == 0) {
      const char* spec = arg + 15;
      const char* eq = std::strrchr(spec, '=');
      if (eq == nullptr || eq == spec) return Usage(argv[0]);
      char* end = nullptr;
      const double slack = std::strtod(eq + 1, &end);
      if (end == eq + 1 || *end != '\0' || slack < 0) {
        std::fprintf(stderr, "bad --metric-slack value: %s\n", spec);
        return 2;
      }
      options.per_metric_slack[std::string(spec, eq)] = slack;
    } else if (std::strncmp(arg, "--higher-better=", 16) == 0) {
      if (arg[16] == '\0') return Usage(argv[0]);
      options.higher_is_better.insert(arg + 16);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      candidate_paths.push_back(arg);
    }
  }
  if (baseline_path.empty()) return Usage(argv[0]);
  if (candidate_paths.empty() && !list_mode) return Usage(argv[0]);

  std::string baseline_json;
  if (!ReadFile(baseline_path, &baseline_json)) {
    std::fprintf(stderr, "cannot read baseline: %s\n", baseline_path.c_str());
    return 2;
  }
  const auto baseline = aligraph::obs::JsonValue::Parse(baseline_json);
  if (!baseline.ok()) {
    std::fprintf(stderr, "bench_compare: baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }

  std::vector<aligraph::obs::JsonValue> candidates;
  candidates.reserve(candidate_paths.size());
  for (const std::string& path : candidate_paths) {
    std::string json;
    if (!ReadFile(path, &json)) {
      std::fprintf(stderr, "cannot read candidate: %s\n", path.c_str());
      return 2;
    }
    auto parsed = aligraph::obs::JsonValue::Parse(json);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    candidates.push_back(std::move(*parsed));
  }
  std::vector<const aligraph::obs::JsonValue*> candidate_ptrs;
  candidate_ptrs.reserve(candidates.size());
  for (const auto& c : candidates) candidate_ptrs.push_back(&c);

  if (list_mode) {
    const aligraph::obs::JsonValue* base_metrics = baseline->Find("metrics");
    if (base_metrics == nullptr || !base_metrics->IsObject()) {
      std::fprintf(stderr, "bench_compare: baseline has no \"metrics\"\n");
      return 2;
    }
    std::printf("gate contract: %s (%zu metric(s), default tolerance "
                "%.0f%%)\n",
                baseline_path.c_str(), base_metrics->members.size(),
                100.0 * options.default_tolerance);
    for (const auto& [name, value] : base_metrics->members) {
      if (!value.IsNumber()) continue;
      const auto tol_it = options.per_metric_tolerance.find(name);
      const double tol = tol_it == options.per_metric_tolerance.end()
                             ? options.default_tolerance
                             : tol_it->second;
      const auto slack_it = options.per_metric_slack.find(name);
      const double slack = slack_it == options.per_metric_slack.end()
                               ? options.absolute_slack
                               : slack_it->second;
      const bool higher = options.higher_is_better.count(name) != 0;
      // Same last-wins resolution the gate itself applies.
      std::string cand = "-";
      for (auto it = candidate_ptrs.rbegin(); it != candidate_ptrs.rend();
           ++it) {
        const aligraph::obs::JsonValue* m = (*it)->Find("metrics");
        const aligraph::obs::JsonValue* found =
            m == nullptr ? nullptr : m->Find(name);
        if (found != nullptr && found->IsNumber()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.6g", found->number);
          cand = buf;
          break;
        }
      }
      std::printf("%-48s baseline=%-12.6g candidate=%-12s tol=%-5.0f%% "
                  "slack=%-10.4g %s\n",
                  name.c_str(), value.number, cand.c_str(), 100.0 * tol,
                  slack, higher ? "higher-better" : "lower-better");
    }
    return 0;
  }

  const auto result =
      aligraph::obs::CompareReports(*baseline, candidate_ptrs, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  std::printf("baseline:  %s\n", baseline_path.c_str());
  for (const std::string& path : candidate_paths) {
    std::printf("candidate: %s\n", path.c_str());
  }
  std::printf("%s\n", result->ToString().c_str());
  if (!result->ok()) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed\n");
  return 0;
}
