/// \file bench_compare.cc
/// \brief CLI regression gate over two run-report JSONs.
///
/// Usage:
///   bench_compare [--tolerance=0.10] [--metric-tolerance=NAME=TOL]...
///                 <baseline.json> <candidate.json>
///
/// Walks the baseline's "metrics" object (lower is better) and compares
/// each against the candidate with the given relative tolerance;
/// --metric-tolerance overrides the default for one metric and may repeat.
/// Exit codes: 0 = gate passed, 1 = regression or missing metric,
/// 2 = usage / unreadable file / malformed JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/compare.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance=R] [--metric-tolerance=NAME=R]... "
               "<baseline.json> <candidate.json>\n",
               argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  aligraph::obs::CompareOptions options;
  std::string baseline_path;
  std::string candidate_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      char* end = nullptr;
      options.default_tolerance = std::strtod(arg + 12, &end);
      if (end == arg + 12 || *end != '\0' || options.default_tolerance < 0) {
        std::fprintf(stderr, "bad --tolerance value: %s\n", arg + 12);
        return 2;
      }
    } else if (std::strncmp(arg, "--metric-tolerance=", 19) == 0) {
      const char* spec = arg + 19;
      const char* eq = std::strrchr(spec, '=');
      if (eq == nullptr || eq == spec) return Usage(argv[0]);
      char* end = nullptr;
      const double tol = std::strtod(eq + 1, &end);
      if (end == eq + 1 || *end != '\0' || tol < 0) {
        std::fprintf(stderr, "bad --metric-tolerance value: %s\n", spec);
        return 2;
      }
      options.per_metric_tolerance[std::string(spec, eq)] = tol;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      return Usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (candidate_path.empty()) return Usage(argv[0]);

  std::string baseline_json;
  if (!ReadFile(baseline_path, &baseline_json)) {
    std::fprintf(stderr, "cannot read baseline: %s\n", baseline_path.c_str());
    return 2;
  }
  std::string candidate_json;
  if (!ReadFile(candidate_path, &candidate_json)) {
    std::fprintf(stderr, "cannot read candidate: %s\n",
                 candidate_path.c_str());
    return 2;
  }

  const auto result = aligraph::obs::CompareReportJson(
      baseline_json, candidate_json, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  std::printf("baseline:  %s\ncandidate: %s\n%s\n", baseline_path.c_str(),
              candidate_path.c_str(), result->ToString().c_str());
  if (!result->ok()) {
    std::printf("GATE FAILED\n");
    return 1;
  }
  std::printf("gate passed\n");
  return 0;
}
