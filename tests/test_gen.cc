// Tests for the synthetic data generators that stand in for the paper's
// Taobao / Amazon datasets and the dynamic graphs.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "gen/dynamic_gen.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "gen/zipf.h"
#include "proptest.h"

namespace aligraph {
namespace gen {
namespace {

TEST(ChungLuTest, ProducesRequestedScale) {
  ChungLuConfig cfg;
  cfg.num_vertices = 5000;
  cfg.avg_degree = 10;
  auto g = ChungLu(cfg);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 5000u);
  EXPECT_NEAR(static_cast<double>(g->num_edges()) / 5000.0, 10.0, 1.0);
}

TEST(ChungLuTest, DegreesAreHeavyTailed) {
  ChungLuConfig cfg;
  cfg.num_vertices = 20000;
  cfg.avg_degree = 8;
  cfg.gamma = 2.3;
  auto g = std::move(ChungLu(cfg)).value();
  size_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Heavy tail: hubs far above the mean.
  EXPECT_GT(max_deg, 80u);
}

TEST(ChungLuTest, RejectsBadConfig) {
  ChungLuConfig cfg;
  cfg.num_vertices = 0;
  EXPECT_FALSE(ChungLu(cfg).ok());
  cfg.num_vertices = 10;
  cfg.gamma = 1.5;
  EXPECT_FALSE(ChungLu(cfg).ok());
}

TEST(ChungLuTest, DeterministicBySeed) {
  ChungLuConfig cfg;
  cfg.num_vertices = 500;
  auto a = std::move(ChungLu(cfg)).value();
  auto b = std::move(ChungLu(cfg)).value();
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

TEST(BarabasiAlbertTest, EveryNewVertexAttaches) {
  auto g = BarabasiAlbert(1000, 3, 1);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 4; v < g->num_vertices(); ++v) {
    EXPECT_GE(g->OutDegree(v), 3u);
  }
}

TEST(BarabasiAlbertTest, RejectsTooSmall) {
  EXPECT_FALSE(BarabasiAlbert(3, 5, 1).ok());
}

TEST(TaobaoTest, SchemaMatchesPaper) {
  auto g = std::move(Taobao(TaobaoSmallConfig(0.05))).value();
  const GraphSchema& schema = g.schema();
  EXPECT_TRUE(schema.VertexTypeId("user").ok());
  EXPECT_TRUE(schema.VertexTypeId("item").ok());
  for (const char* et : {"click", "collect", "cart", "buy", "co_occur"}) {
    EXPECT_TRUE(schema.EdgeTypeId(et).ok()) << et;
  }
  EXPECT_TRUE(schema.IsHeterogeneous());
}

TEST(TaobaoTest, UserItemPartitioning) {
  TaobaoConfig cfg = TaobaoSmallConfig(0.05);
  auto g = std::move(Taobao(cfg)).value();
  const VertexType user = g.schema().VertexTypeId("user").value();
  const VertexType item = g.schema().VertexTypeId("item").value();
  EXPECT_EQ(g.VerticesOfType(user).size(), cfg.num_users);
  EXPECT_EQ(g.VerticesOfType(item).size(), cfg.num_items);
  // Behaviour edges always point user -> item.
  const EdgeType click = g.schema().EdgeTypeId("click").value();
  for (VertexId v : g.VerticesOfType(user)) {
    for (const Neighbor& nb : g.OutNeighbors(v, click)) {
      EXPECT_EQ(g.vertex_type(nb.dst), item);
    }
  }
}

TEST(TaobaoTest, AttributesDeduplicated) {
  auto g = std::move(Taobao(TaobaoSmallConfig(0.1))).value();
  // Profiles come from small pools, so distinct records << references.
  EXPECT_LT(g.vertex_attributes().num_records(),
            g.vertex_attributes().num_references() / 10);
}

TEST(TaobaoTest, LargePresetIsRoughlySixTimesSmall) {
  auto small = std::move(Taobao(TaobaoSmallConfig(0.02))).value();
  auto large = std::move(Taobao(TaobaoLargeConfig(0.02))).value();
  const double ratio = static_cast<double>(large.num_edges()) /
                       static_cast<double>(small.num_edges());
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(TaobaoTest, ItemBrandCategoryReadable) {
  auto g = std::move(Taobao(TaobaoSmallConfig(0.05))).value();
  const VertexType item = g.schema().VertexTypeId("item").value();
  std::set<uint32_t> brands, cats;
  for (VertexId v : g.VerticesOfType(item)) {
    const uint32_t b = ItemBrand(g, v);
    const uint32_t c = ItemCategory(g, v);
    EXPECT_LT(b, kNumBrands);
    EXPECT_LT(c, kNumCategories);
    brands.insert(b);
    cats.insert(c);
  }
  EXPECT_GT(brands.size(), 3u);
  EXPECT_GT(cats.size(), 3u);
}

TEST(AmazonTest, MatchesTable6Shape) {
  AmazonConfig cfg;  // defaults mirror Table 6
  auto g = std::move(Amazon(cfg)).value();
  EXPECT_EQ(g.num_vertices(), 10166u);
  // Undirected: stored edges ~ 2x requested minus self-loop skips.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 148865.0,
              148865.0 * 0.05);
  EXPECT_EQ(g.schema().num_vertex_types(), 2u);  // default + product
  EXPECT_TRUE(g.schema().EdgeTypeId("co_view").ok());
  EXPECT_TRUE(g.schema().EdgeTypeId("co_buy").ok());
}

TEST(DynamicGenTest, SnapshotsGrowMonotonically) {
  DynamicConfig cfg;
  cfg.num_vertices = 500;
  cfg.num_timestamps = 4;
  cfg.base_edges = 2000;
  cfg.normal_edges_per_step = 300;
  cfg.burst_size = 50;
  auto dg = std::move(GenerateDynamic(cfg)).value();
  ASSERT_EQ(dg.num_timestamps(), 4u);
  for (Timestamp t = 2; t <= 4; ++t) {
    EXPECT_GT(dg.Snapshot(t).num_edges(), dg.Snapshot(t - 1).num_edges());
  }
}

TEST(DynamicGenTest, BurstAndNormalLabelsPresent) {
  DynamicConfig cfg;
  cfg.num_vertices = 500;
  cfg.num_timestamps = 3;
  auto dg = std::move(GenerateDynamic(cfg)).value();
  size_t normal = 0, burst = 0;
  for (Timestamp t = 2; t <= 3; ++t) {
    for (const DynamicEdge& e : dg.DeltaAt(t)) {
      (e.kind == EvolutionKind::kBurst ? burst : normal) += 1;
    }
  }
  EXPECT_GT(normal, 0u);
  EXPECT_GT(burst, 0u);
  // Bursts are the rare class.
  EXPECT_LT(burst, normal);
}

TEST(DynamicGenTest, BurstsConcentrateOnHubs) {
  DynamicConfig cfg;
  cfg.num_vertices = 1000;
  cfg.num_timestamps = 2;
  cfg.bursts_per_step = 1;
  cfg.burst_size = 200;
  auto dg = std::move(GenerateDynamic(cfg)).value();
  std::set<VertexId> burst_sources;
  for (const DynamicEdge& e : dg.DeltaAt(2)) {
    if (e.kind == EvolutionKind::kBurst) burst_sources.insert(e.edge.src);
  }
  // One burst event = one hub.
  EXPECT_LE(burst_sources.size(), 1u);
}

TEST(DynamicGenTest, RejectsBadConfig) {
  DynamicConfig cfg;
  cfg.num_vertices = 1;
  EXPECT_FALSE(GenerateDynamic(cfg).ok());
}

// ---------------------------------------------------------------------------
// ZipfSampler: the serving load generator's skew source. Determinism and
// pmf well-formedness are property-tested across random shapes; the
// empirical-frequency check pins the alias table to the analytic pmf.

ALIGRAPH_PROP(ZipfProps, DeterministicWithWellFormedPmf, 8) {
  ZipfConfig cfg;
  cfg.num_ranks = 1 + ctx.rng.Uniform(2000);
  cfg.exponent = ctx.rng.NextDouble() * 1.5;
  cfg.seed = ctx.rng.Next();
  ZipfSampler a(cfg);
  ZipfSampler b(cfg);

  // pmf: normalized and monotone non-increasing in rank.
  double total = 0.0;
  for (size_t r = 0; r < a.num_ranks(); ++r) {
    total += a.Probability(r);
    if (r > 0) {
      EXPECT_LE(a.Probability(r), a.Probability(r - 1) + 1e-12) << "rank " << r;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Same config => same internal stream; draws always in range.
  for (int i = 0; i < 256; ++i) {
    const size_t va = a.Next();
    EXPECT_EQ(va, b.Next()) << "draw " << i;
    EXPECT_LT(va, cfg.num_ranks);
  }
  // External-RNG draws are pure functions of the RNG state, independent of
  // the sampler's own stream position.
  Rng r1(cfg.seed + 1);
  Rng r2(cfg.seed + 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.Sample(r1), b.Sample(r2)) << "draw " << i;
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchAnalyticPmf) {
  ZipfConfig cfg;
  cfg.num_ranks = 16;
  cfg.exponent = 1.0;
  cfg.seed = 5;
  ZipfSampler z(cfg);
  const size_t draws = 200000;
  std::vector<size_t> counts(cfg.num_ranks, 0);
  for (size_t i = 0; i < draws; ++i) ++counts[z.Next()];
  for (size_t r = 0; r < cfg.num_ranks; ++r) {
    const double observed =
        static_cast<double>(counts[r]) / static_cast<double>(draws);
    // Standard error at 200k draws is ~1e-3; 1e-2 has huge headroom while
    // still catching an alias table built from the wrong weights.
    EXPECT_NEAR(observed, z.Probability(r), 0.01) << "rank " << r;
  }
  // The defining shape: rank 0 dominates the tail.
  EXPECT_GT(counts[0], 4 * counts[cfg.num_ranks - 1]);
}

// The serving layer's RootsFor draws ranks through SampleBatch; this
// property is what keeps every seeded root stream (and the serve baseline
// keys downstream of it) unchanged by the batching: the batched draw is
// bit-identical to the scalar Sample loop on the same RNG stream.
ALIGRAPH_PROP(ZipfProps, SampleBatchBitIdenticalToScalarSampleLoop, 8) {
  ZipfConfig cfg;
  cfg.num_ranks = 1 + ctx.rng.Uniform(2000);
  cfg.exponent = ctx.rng.NextDouble() * 1.5;
  cfg.seed = ctx.rng.Next();
  ZipfSampler z(cfg);

  const uint64_t stream_seed = ctx.rng.Next();
  const size_t count = 1 + ctx.rng.Uniform(300);
  Rng scalar_rng(stream_seed);
  std::vector<size_t> scalar(count);
  for (size_t& s : scalar) s = z.Sample(scalar_rng);

  Rng batch_rng(stream_seed);
  std::vector<size_t> batched(count);
  z.SampleBatch(batch_rng, batched);
  EXPECT_EQ(batched, scalar);
  EXPECT_EQ(batch_rng.Next(), scalar_rng.Next());
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfConfig cfg;
  cfg.num_ranks = 64;
  cfg.exponent = 0.0;
  cfg.seed = 2;
  ZipfSampler z(cfg);
  for (size_t r = 0; r < cfg.num_ranks; ++r) {
    EXPECT_DOUBLE_EQ(z.Probability(r), 1.0 / 64.0);
  }
}

}  // namespace
}  // namespace gen
}  // namespace aligraph
