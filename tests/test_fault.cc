// Tests for deterministic fault injection, the retry layer in the cluster
// read paths, and graceful degradation in the samplers. The differential
// suites are the contract: with faults disabled every path is bit-identical
// to the uninjected cluster; with a seeded schedule, recovery is exact and
// reproducible.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"
#include "gen/powerlaw.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"
#include "proptest.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

AttributedGraph MakeGraph(uint64_t seed = 9) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 1200;
  cfg.avg_degree = 6;
  cfg.seed = seed;
  return std::move(gen::ChungLu(cfg)).value();
}

bool SameBytes(std::span<const Neighbor> a, std::span<const Neighbor> b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Neighbor)) == 0;
}

// A config where every attempt draws the transient probability.
FaultConfig TransientConfig(uint64_t seed, double p) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.transient_prob = p;
  return cfg;
}

// A schedule where worker `w` fails its first `n` attempts with `kind`.
FaultConfig ScheduleConfig(uint64_t seed, WorkerId w, FaultKind kind,
                           uint32_t n) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.schedule.push_back({w, kind, n});
  return cfg;
}

// ---------------------------------------------------------------------------
// FaultInjector: pure-function determinism.

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  const FaultConfig cfg = TransientConfig(/*seed=*/42, /*p=*/0.3);
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  for (uint64_t key = 0; key < 500; ++key) {
    for (uint32_t attempt = 1; attempt <= 3; ++attempt) {
      const FaultDecision da = a.Decide(0, 1, Mix64(key), attempt);
      const FaultDecision db = b.Decide(0, 1, Mix64(key), attempt);
      EXPECT_EQ(da.kind, db.kind);
      EXPECT_EQ(da.latency_us, db.latency_us);
    }
  }
  EXPECT_EQ(a.injected(), b.injected());
  EXPECT_GT(a.injected(), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDisagreeSomewhere) {
  FaultInjector a(TransientConfig(1, 0.5));
  FaultInjector b(TransientConfig(2, 0.5));
  bool diverged = false;
  for (uint64_t key = 0; key < 200 && !diverged; ++key) {
    diverged = a.Decide(0, 1, Mix64(key), 1).kind !=
               b.Decide(0, 1, Mix64(key), 1).kind;
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjectorTest, ProbabilityRoughlyMatchesConfig) {
  FaultInjector inj(TransientConfig(7, 0.25));
  uint64_t faults = 0;
  const uint64_t trials = 20000;
  for (uint64_t key = 0; key < trials; ++key) {
    faults += inj.Decide(0, 1, Mix64(key), 1).kind == FaultKind::kTransient;
  }
  const double rate = static_cast<double>(faults) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjectorTest, ScheduleFailsExactlyFirstAttempts) {
  FaultInjector inj(ScheduleConfig(3, /*w=*/1, FaultKind::kTimeout, 2));
  EXPECT_EQ(inj.Decide(0, 1, 99, 1).kind, FaultKind::kTimeout);
  EXPECT_EQ(inj.Decide(0, 1, 99, 2).kind, FaultKind::kTimeout);
  EXPECT_EQ(inj.Decide(0, 1, 99, 3).kind, FaultKind::kNone);
  // Other workers are untouched (no probabilities configured).
  EXPECT_EQ(inj.Decide(0, 2, 99, 1).kind, FaultKind::kNone);
}

TEST(FaultInjectorTest, TimeoutAndSlowCarryLatency) {
  FaultConfig cfg = ScheduleConfig(3, 0, FaultKind::kTimeout, 1);
  cfg.timeout_us = 777.0;
  FaultInjector inj(cfg);
  const FaultDecision d = inj.Decide(1, 0, 5, 1);
  EXPECT_FALSE(d.Succeeds());
  EXPECT_EQ(d.latency_us, 777.0);

  FaultConfig slow_cfg = ScheduleConfig(3, 0, FaultKind::kSlow, 1);
  slow_cfg.slow_latency_us = 333.0;
  FaultInjector slow(slow_cfg);
  const FaultDecision s = slow.Decide(1, 0, 5, 1);
  EXPECT_TRUE(s.Succeeds());  // slow still delivers
  EXPECT_EQ(s.latency_us, 333.0);
}

TEST(FaultInjectorTest, InactiveConfigInjectsNothing) {
  FaultInjector inj(FaultConfig{});
  EXPECT_FALSE(inj.enabled());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(inj.Decide(0, 1, key, 1).kind, FaultKind::kNone);
  }
  EXPECT_EQ(inj.injected(), 0u);
}

// ---------------------------------------------------------------------------
// RetryPolicy: decorrelated jitter stays in its envelope.

TEST(RetryPolicyTest, BackoffBoundedAndCapped) {
  RetryPolicy policy;
  policy.base_backoff_us = 100.0;
  policy.max_backoff_us = 1000.0;
  Rng rng(5);
  double prev = policy.base_backoff_us;
  for (int i = 0; i < 200; ++i) {
    const double next = policy.NextBackoffUs(prev, rng);
    EXPECT_GE(next, policy.base_backoff_us);
    EXPECT_LE(next, policy.max_backoff_us);
    prev = next;
  }
}

TEST(RetryPolicyTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  Rng a(11), b(11);
  double pa = policy.base_backoff_us, pb = policy.base_backoff_us;
  for (int i = 0; i < 50; ++i) {
    pa = policy.NextBackoffUs(pa, a);
    pb = policy.NextBackoffUs(pb, b);
    EXPECT_EQ(pa, pb);
  }
}

// ---------------------------------------------------------------------------
// Cluster retry layer.

TEST(ClusterFaultTest, RetryRecoversFromScheduledTransient) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  // Every request to worker 1 fails its first attempt; default policy has
  // 4 attempts, so the retry always recovers.
  cluster.InstallFaultInjection(
      ScheduleConfig(21, /*w=*/1, FaultKind::kTransient, 1));

  CommStats stats;
  size_t remote_tried = 0;
  for (VertexId v = 0; v < 300; ++v) {
    if (cluster.OwnerOf(v) != 1) continue;
    ++remote_tried;
    auto r = cluster.TryGetNeighbors(/*from=*/0, v, &stats);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(SameBytes(*r, g.OutNeighbors(v)));
  }
  ASSERT_GT(remote_tried, 0u);
  EXPECT_EQ(stats.failed_reads.load(), 0u);
  EXPECT_EQ(stats.faults_injected.load(), remote_tried);
  EXPECT_EQ(stats.retry_attempts.load(), remote_tried);
  EXPECT_GT(stats.retry_backoff_us.load(), 0u);
}

TEST(ClusterFaultTest, ExhaustedRetriesReturnUnavailable) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  // Worker 1 fails more attempts than the policy allows: permanent failure.
  RetryPolicy policy;
  policy.max_attempts = 3;
  cluster.InstallFaultInjection(
      ScheduleConfig(22, /*w=*/1, FaultKind::kTransient, 99), policy);

  CommStats stats;
  VertexId remote = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cluster.OwnerOf(v) == 1) {
      remote = v;
      break;
    }
  }
  ASSERT_NE(remote, kInvalidVertex);
  auto r = cluster.TryGetNeighbors(0, remote, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.failed_reads.load(), 1u);
  EXPECT_EQ(stats.retry_attempts.load(), policy.max_attempts - 1);
  // Local reads never fail even under a total-blackout schedule.
  VertexId local = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cluster.OwnerOf(v) == 0) {
      local = v;
      break;
    }
  }
  ASSERT_NE(local, kInvalidVertex);
  EXPECT_TRUE(cluster.TryGetNeighbors(0, local, &stats).ok());
}

TEST(ClusterFaultTest, DeadlineStopsRetriesEarly) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  // Timeouts burn 1000us each; a 1500us deadline admits the first attempt
  // and at most one retry even though the policy would allow 10.
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.deadline_us = 1500.0;
  FaultConfig cfg = ScheduleConfig(23, /*w=*/1, FaultKind::kTimeout, 99);
  cfg.timeout_us = 1000.0;
  cluster.InstallFaultInjection(cfg, policy);

  CommStats stats;
  VertexId remote = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cluster.OwnerOf(v) == 1) {
      remote = v;
      break;
    }
  }
  ASSERT_NE(remote, kInvalidVertex);
  EXPECT_FALSE(cluster.TryGetNeighbors(0, remote, &stats).ok());
  EXPECT_LT(stats.retry_attempts.load(), 2u);
}

TEST(ClusterFaultTest, TryAttrReadRetriesLikeNeighborRead) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallFaultInjection(
      ScheduleConfig(24, /*w=*/1, FaultKind::kTransient, 1));
  CommStats stats;
  for (VertexId v = 0; v < 100; ++v) {
    if (cluster.OwnerOf(v) != 1) continue;
    auto r = cluster.TryGetVertexAttr(0, v, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, g.vertex_attr(v));
  }
  EXPECT_GT(stats.retry_attempts.load(), 0u);
}

TEST(ClusterFaultTest, ClearFaultInjectionRestoresInfallibility) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallFaultInjection(
      ScheduleConfig(25, /*w=*/1, FaultKind::kTransient, 99));
  cluster.ClearFaultInjection();
  EXPECT_FALSE(cluster.fault_injection_enabled());
  CommStats stats;
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_TRUE(cluster.TryGetNeighbors(0, v, &stats).ok());
  }
  EXPECT_EQ(stats.faults_injected.load(), 0u);
  EXPECT_EQ(stats.retry_attempts.load(), 0u);
}

TEST(ClusterFaultTest, ModeledTimeGrowsWithRetryCharges) {
  CommModel model;
  CommStats plain;
  plain.remote_reads = 100;
  CommStats faulted;
  faulted.remote_reads = 100;
  faulted.retry_attempts = 30;       // 30 extra messages
  faulted.retry_backoff_us = 5000;   // plus 5ms of modeled backoff
  faulted.failed_reads = 2;
  EXPECT_GT(model.ModeledMillis(faulted), model.ModeledMillis(plain));
}

// ---------------------------------------------------------------------------
// Differential: with faults disabled, every read path and the samplers are
// bit-identical to a cluster that never saw an injector.

TEST(FaultDifferentialTest, InactiveInjectorIsBitIdenticalToBaseline) {
  const AttributedGraph g = MakeGraph();
  auto baseline =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  auto injected =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  // Installed but inactive: all probabilities zero, no schedule.
  injected.InstallFaultInjection(FaultConfig{});
  EXPECT_FALSE(injected.fault_injection_enabled());

  std::vector<VertexId> batch;
  for (VertexId v = 0; v < g.num_vertices(); v += 2) batch.push_back(v);

  CommStats base_stats, inj_stats;
  BatchResult base_out, inj_out;
  baseline.GetNeighborsBatch(0, batch, kAllEdgeTypes, &base_out, &base_stats);
  ASSERT_TRUE(injected
                  .TryGetNeighborsBatch(0, batch, kAllEdgeTypes, &inj_out,
                                        &inj_stats)
                  .ok());
  ASSERT_EQ(base_out.size(), inj_out.size());
  for (size_t i = 0; i < base_out.size(); ++i) {
    EXPECT_EQ(inj_out.ok[i], 1);
    EXPECT_TRUE(SameBytes(base_out[i], inj_out[i]));
  }
  // Identical accounting: no retry/fault counter may move.
  const CommStats::Snapshot a = base_stats.snapshot();
  const CommStats::Snapshot b = inj_stats.snapshot();
  EXPECT_EQ(a.remote_reads, b.remote_reads);
  EXPECT_EQ(a.remote_batches, b.remote_batches);
  EXPECT_EQ(b.faults_injected, 0u);
  EXPECT_EQ(b.retry_attempts, 0u);
  EXPECT_EQ(b.retry_backoff_us, 0u);
  EXPECT_EQ(b.failed_reads, 0u);
}

TEST(FaultDifferentialTest, SamplerOutputUnchangedWithFaultsDisabled) {
  const AttributedGraph g = MakeGraph();
  auto baseline =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  auto injected =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  injected.InstallFaultInjection(FaultConfig{});

  std::vector<VertexId> roots;
  for (VertexId v = 0; v < 64; ++v) roots.push_back(v * 7);
  const std::vector<uint32_t> fans = {5, 3};

  CommStats sa, sb;
  DistributedNeighborSource src_a(baseline, 0, &sa);
  DistributedNeighborSource src_b(injected, 0, &sb);
  NeighborhoodSampler sampler_a(NeighborStrategy::kUniform, /*seed=*/77);
  NeighborhoodSampler sampler_b(NeighborStrategy::kUniform, /*seed=*/77);
  const NeighborhoodSample a = sampler_a.Sample(src_a, roots, kAllEdgeTypes,
                                                fans);
  const NeighborhoodSample b = sampler_b.Sample(src_b, roots, kAllEdgeTypes,
                                                fans);
  ASSERT_EQ(a.hops.size(), b.hops.size());
  for (size_t h = 0; h < a.hops.size(); ++h) {
    EXPECT_EQ(a.hops[h], b.hops[h]) << "hop " << h;
  }
  EXPECT_FALSE(b.partial);
  EXPECT_EQ(b.degraded_draws, 0u);
  EXPECT_EQ(sa.snapshot().TotalReads(), sb.snapshot().TotalReads());
}

// Under every fault schedule, successful batch slots carry the same bytes
// as the infallible per-vertex read — retries must never corrupt payloads.
ALIGRAPH_PROP(FaultDifferentialProps, BatchPayloadsMatchPerVertex, 6) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const uint32_t workers = proptest::RandomWorkers(ctx);
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), workers)).value();

  std::vector<FaultConfig> schedules;
  schedules.push_back(FaultConfig{});  // none
  schedules.push_back(TransientConfig(ctx.rng.Next(), 0.3));
  FaultConfig timeout_heavy;  // every worker times out its first attempt
  timeout_heavy.seed = ctx.rng.Next();
  for (WorkerId w = 0; w < workers; ++w) {
    timeout_heavy.schedule.push_back({w, FaultKind::kTimeout, 1});
  }
  schedules.push_back(timeout_heavy);

  std::vector<VertexId> batch;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) batch.push_back(v);

  for (const FaultConfig& cfg : schedules) {
    if (cfg.Active()) {
      RetryPolicy policy;
      policy.max_attempts = 2;  // tight budget so some requests DO fail
      cluster.InstallFaultInjection(cfg, policy);
    } else {
      cluster.ClearFaultInjection();
    }
    BatchResult out;
    const Status st =
        cluster.TryGetNeighborsBatch(0, batch, kAllEdgeTypes, &out, nullptr);
    ASSERT_EQ(out.size(), batch.size());
    if (!cfg.Active()) {
      EXPECT_TRUE(st.ok());
      EXPECT_EQ(out.FailedSlots(), 0u);
    } else if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable);
      EXPECT_GT(out.FailedSlots(), 0u);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (out.ok[i] == 0) {
        EXPECT_TRUE(out[i].empty());
        continue;
      }
      EXPECT_TRUE(SameBytes(out[i], g.OutNeighbors(batch[i])))
          << "vertex " << batch[i];
    }
    // Per-vertex fallible reads obey the same payload contract.
    for (size_t i = 0; i < batch.size(); i += 17) {
      auto r = cluster.TryGetNeighbors(0, batch[i], nullptr);
      if (r.ok()) {
        EXPECT_TRUE(SameBytes(*r, g.OutNeighbors(batch[i])));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sampler degradation.

TEST(SamplerDegradationTest, KHopCompletesUnderBlackoutWorker) {
  const AttributedGraph g = MakeGraph();
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  // Worker 1 never answers; worker 2 fails once then recovers. Sampling
  // from worker 0 must still produce full-shaped hops with zero aborts.
  FaultConfig cfg;
  cfg.seed = 31;
  cfg.schedule.push_back({1, FaultKind::kTransient, 99});
  cfg.schedule.push_back({2, FaultKind::kTransient, 1});
  RetryPolicy policy;
  policy.max_attempts = 3;
  cluster.InstallFaultInjection(cfg, policy);

  std::vector<VertexId> roots;
  for (VertexId v = 0; v < 96; ++v) roots.push_back(v * 11);
  const std::vector<uint32_t> fans = {4, 3};

  CommStats stats;
  DistributedNeighborSource source(cluster, 0, &stats);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, /*seed=*/5);
  const NeighborhoodSample sample =
      sampler.Sample(source, roots, kAllEdgeTypes, fans);

  ASSERT_EQ(sample.hops.size(), 2u);
  EXPECT_EQ(sample.hops[0].size(), roots.size() * 4);
  EXPECT_EQ(sample.hops[1].size(), roots.size() * 4 * 3);
  EXPECT_TRUE(sample.partial);
  EXPECT_GT(sample.degraded_draws, 0u);
  EXPECT_GT(stats.retry_attempts.load(), 0u);
  EXPECT_GT(stats.failed_reads.load(), 0u);
}

TEST(SamplerDegradationTest, StaleCacheServesPreviouslyFetchedNeighbors) {
  const AttributedGraph g = MakeGraph();
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < 64; ++v) roots.push_back(v);
  const std::vector<uint32_t> fans = {4};

  CommStats stats;
  DistributedNeighborSource source(cluster, 0, &stats);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, /*seed=*/5);

  // First pass: faults active but recoverable, so every span is fetched
  // and admitted into the sampler's stale cache.
  cluster.InstallFaultInjection(
      ScheduleConfig(32, /*w=*/1, FaultKind::kTransient, 1));
  (void)sampler.Sample(source, roots, kAllEdgeTypes, fans);
  EXPECT_GT(sampler.stale_cache_size(), 0u);

  // Second pass: worker 1 blacks out entirely. Degraded slots now serve
  // the stale copies, so hop shapes and payload-bearing draws survive.
  cluster.InstallFaultInjection(
      ScheduleConfig(32, /*w=*/1, FaultKind::kTransient, 99));
  const NeighborhoodSample degraded =
      sampler.Sample(source, roots, kAllEdgeTypes, fans);
  EXPECT_TRUE(degraded.partial);
  EXPECT_GT(degraded.degraded_draws, 0u);
  EXPECT_EQ(degraded.hops[0].size(), roots.size() * 4);
}

TEST(SamplerDegradationTest, TraverseEdgesSurviveFaults) {
  const AttributedGraph g = MakeGraph();
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallFaultInjection(TransientConfig(33, 0.4));

  std::vector<VertexId> pool;
  for (VertexId v = 0; v < g.num_vertices(); ++v) pool.push_back(v);
  CommStats stats;
  DistributedNeighborSource source(cluster, 0, &stats);
  TraverseSampler traverse(pool, /*seed=*/6);
  const auto edges = traverse.SampleEdges(source, kAllEdgeTypes, 64);
  EXPECT_EQ(edges.size(), 64u);
  for (const auto& [src, nb] : edges) {
    bool found = false;
    for (const Neighbor& cand : g.OutNeighbors(src)) {
      found = found || (cand.dst == nb.dst && cand.weight == nb.weight);
    }
    EXPECT_TRUE(found) << "edge from " << src << " not in the graph";
  }
}

// ---------------------------------------------------------------------------
// Acceptance: a full k-hop run under a seeded schedule completes with zero
// aborts, moves the retry/degradation counters, and replays identically.

std::map<std::string, uint64_t> RunSeededFaultSweep(uint64_t seed,
                                                    obs::MetricsRegistry* reg) {
  obs::SetDefault(reg);
  const AttributedGraph g = MakeGraph(seed);
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.transient_prob = 0.2;
  cfg.timeout_prob = 0.1;
  cfg.schedule.push_back({1, FaultKind::kTransient, 99});  // blackout
  RetryPolicy policy;
  policy.max_attempts = 3;
  cluster.InstallFaultInjection(cfg, policy);

  std::vector<VertexId> roots;
  for (VertexId v = 0; v < 80; ++v) roots.push_back(v * 13);
  const std::vector<uint32_t> fans = {4, 3};
  CommStats stats;
  DistributedNeighborSource source(cluster, 0, &stats);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, seed);
  const NeighborhoodSample sample =
      sampler.Sample(source, roots, kAllEdgeTypes, fans);
  EXPECT_EQ(sample.hops[1].size(), roots.size() * 4 * 3);  // zero aborts
  EXPECT_TRUE(sample.partial);

  std::map<std::string, uint64_t> counters = reg->Snapshot().counters;
  obs::SetDefault(nullptr);
  return counters;
}

TEST(FaultAcceptanceTest, SeededRunMovesCountersAndReplaysExactly) {
  obs::MetricsRegistry reg1;
  const auto run1 = RunSeededFaultSweep(97, &reg1);
  ASSERT_GT(run1.at("fault.injected"), 0u);
  ASSERT_GT(run1.at("retry.attempts"), 0u);
  ASSERT_GT(run1.at("retry.backoff_us"), 0u);
  ASSERT_GT(run1.at("degraded.samples"), 0u);
  ASSERT_GT(run1.at("comm.failed_reads"), 0u);

  obs::MetricsRegistry reg2;
  const auto run2 = RunSeededFaultSweep(97, &reg2);
  EXPECT_EQ(run1, run2) << "same seed must replay the same counters";

  obs::MetricsRegistry reg3;
  const auto run3 = RunSeededFaultSweep(98, &reg3);
  EXPECT_NE(run1, run3)
      << "different seeds should not produce the exact same fault run";
}

}  // namespace
}  // namespace aligraph
