// Tests for the four built-in graph partitioners (parameterized over the
// plugin names) plus algorithm-specific properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "gen/powerlaw.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "proptest.h"

namespace aligraph {
namespace {

AttributedGraph MakeTestGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 2000;
  cfg.avg_degree = 8;
  cfg.seed = 5;
  auto g = gen::ChungLu(cfg);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// Two clear communities joined by one bridge; a good partitioner at p=2
// should cut few edges.
AttributedGraph MakeTwoCommunities() {
  GraphBuilder gb(GraphSchema(), /*undirected=*/true);
  const int half = 60;
  for (int i = 0; i < 2 * half; ++i) gb.AddVertex();
  Rng rng(77);
  auto dense = [&](int base) {
    for (int i = 0; i < half; ++i) {
      for (int e = 0; e < 5; ++e) {
        const int j = static_cast<int>(rng.Uniform(half));
        if (i != j) {
          EXPECT_TRUE(gb.AddEdge(base + i, base + j).ok());
        }
      }
    }
  };
  dense(0);
  dense(half);
  EXPECT_TRUE(gb.AddEdge(0, half).ok());  // single bridge
  return std::move(gb.Build()).value();
}

class PartitionerParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PartitionerParamTest, FactoryResolvesName) {
  auto p = MakePartitioner(GetParam());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->name(), GetParam());
}

TEST_P(PartitionerParamTest, AssignsEveryVertexWithinRange) {
  const AttributedGraph g = MakeTestGraph();
  auto p = std::move(MakePartitioner(GetParam())).value();
  for (uint32_t workers : {1u, 3u, 8u}) {
    auto plan = p->Partition(g, workers);
    ASSERT_TRUE(plan.ok()) << GetParam();
    ASSERT_EQ(plan->vertex_owner.size(), g.num_vertices());
    for (WorkerId w : plan->vertex_owner) EXPECT_LT(w, workers);
  }
}

TEST_P(PartitionerParamTest, SingleWorkerHasNoCut) {
  const AttributedGraph g = MakeTestGraph();
  auto p = std::move(MakePartitioner(GetParam())).value();
  auto plan = std::move(p->Partition(g, 1)).value();
  const PartitionStats stats = ComputePartitionStats(g, plan);
  EXPECT_DOUBLE_EQ(stats.edge_cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.vertex_balance, 1.0);
}

TEST_P(PartitionerParamTest, ReasonableVertexBalance) {
  const AttributedGraph g = MakeTestGraph();
  auto p = std::move(MakePartitioner(GetParam())).value();
  auto plan = std::move(p->Partition(g, 4)).value();
  const PartitionStats stats = ComputePartitionStats(g, plan);
  // No worker should hold more than 2.5x its fair share of vertices.
  EXPECT_LT(stats.vertex_balance, 2.5) << GetParam();
}

TEST_P(PartitionerParamTest, RejectsZeroWorkers) {
  const AttributedGraph g = MakeTestGraph();
  auto p = std::move(MakePartitioner(GetParam())).value();
  EXPECT_FALSE(p->Partition(g, 0).ok());
}

TEST_P(PartitionerParamTest, DeterministicAcrossRuns) {
  const AttributedGraph g = MakeTestGraph();
  auto p = std::move(MakePartitioner(GetParam())).value();
  auto a = std::move(p->Partition(g, 4)).value();
  auto b = std::move(p->Partition(g, 4)).value();
  EXPECT_EQ(a.vertex_owner, b.vertex_owner);
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PartitionerParamTest,
                         ::testing::Values("edge_cut", "vertex_cut", "grid2d",
                                           "streaming", "metis", "hybrid"));

TEST(PartitionerFactoryTest, UnknownNameFails) {
  EXPECT_FALSE(MakePartitioner("nope").ok());
}

TEST(PartitionerFactoryTest, UnknownNameErrorListsEveryValidName) {
  auto result = MakePartitioner("nope");
  ASSERT_FALSE(result.ok());
  const std::string msg = result.status().ToString();
  for (const std::string& name : KnownPartitionerNames()) {
    EXPECT_NE(msg.find(name), std::string::npos) << name;
  }
}

TEST(HybridSkewPartitionerTest, ReplicatesHubsOnSkewedGraph) {
  // Undirected, so the replicated hubs (chosen by out-degree) are the same
  // vertices the in-degree-proportional traffic model hammers.
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 2000;
  cfg.avg_degree = 8;
  cfg.gamma = 2.1;
  cfg.directed = false;
  cfg.seed = 5;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();
  auto plan = std::move(HybridSkewPartitioner().Partition(g, 4)).value();
  EXPECT_TRUE(plan.HasReplicas());
  const PartitionStats stats = ComputePartitionStats(g, plan);
  EXPECT_GT(stats.replication_factor, 1.0);
  EXPECT_LE(stats.replication_factor, 4.0);
  // Spreading hub reads over replicas flattens the modeled hot server.
  auto tail = std::move(EdgeCutPartitioner().Partition(g, 4)).value();
  const PartitionStats tail_stats = ComputePartitionStats(g, tail);
  EXPECT_LT(stats.hot_server_share, tail_stats.hot_server_share);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(HybridSkewPartitionerTest, RejectsHybridTail) {
  HybridSkewPartitioner::Options opts;
  opts.tail = "hybrid";
  const AttributedGraph g = MakeTestGraph();
  EXPECT_FALSE(HybridSkewPartitioner(opts).Partition(g, 4).ok());
}

// Properties of replica routing: the serving worker is always a holder of a
// copy (owner or replica), readers holding a copy serve themselves, and
// routing is deterministic.
ALIGRAPH_PROP(PlacementProps, ServingWorkerAlwaysHoldsACopy, 8) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const uint32_t workers = proptest::RandomWorkers(ctx);
  auto plan =
      std::move(HybridSkewPartitioner().Partition(g, workers)).value();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto replicas = plan.ReplicasOf(v);
    for (WorkerId from = 0; from < workers; ++from) {
      const WorkerId serving = plan.ServingWorker(v, from);
      ASSERT_LT(serving, workers);
      ASSERT_EQ(serving, plan.ServingWorker(v, from));  // deterministic
      if (plan.ServesLocally(v, from)) {
        ASSERT_EQ(serving, from);
      } else if (replicas.empty()) {
        ASSERT_EQ(serving, plan.OwnerOf(v));
      } else {
        const bool holder =
            serving == plan.OwnerOf(v) ||
            std::find(replicas.begin(), replicas.end(), serving) !=
                replicas.end();
        ASSERT_TRUE(holder);
      }
    }
  }
}

TEST(MetisPartitionerTest, BeatsHashOnCommunityGraph) {
  const AttributedGraph g = MakeTwoCommunities();
  auto metis_plan =
      std::move(MetisPartitioner().Partition(g, 2)).value();
  auto hash_plan =
      std::move(EdgeCutPartitioner().Partition(g, 2)).value();
  const double metis_cut =
      ComputePartitionStats(g, metis_plan).edge_cut_fraction;
  const double hash_cut =
      ComputePartitionStats(g, hash_plan).edge_cut_fraction;
  // Hash cuts ~50%; multilevel partitioning must do much better on a graph
  // with two planted communities.
  EXPECT_LT(metis_cut, hash_cut * 0.6);
}

TEST(StreamingPartitionerTest, BeatsHashOnCommunityGraph) {
  const AttributedGraph g = MakeTwoCommunities();
  auto stream_plan =
      std::move(StreamingPartitioner().Partition(g, 2)).value();
  auto hash_plan = std::move(EdgeCutPartitioner().Partition(g, 2)).value();
  EXPECT_LT(ComputePartitionStats(g, stream_plan).edge_cut_fraction,
            ComputePartitionStats(g, hash_plan).edge_cut_fraction);
}

TEST(VertexCutPartitionerTest, ReportsReplicationFactor) {
  const AttributedGraph g = MakeTestGraph();
  double replication = 0;
  auto plan = VertexCutPartitioner().PartitionWithReplication(g, 8,
                                                              &replication);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(replication, 1.0);
  EXPECT_LE(replication, 8.0);
}

TEST(Grid2DPartitionerTest, UsesAllWorkersOnLargeGraph) {
  const AttributedGraph g = MakeTestGraph();
  auto plan = std::move(Grid2DPartitioner().Partition(g, 6)).value();
  std::vector<int> used(6, 0);
  for (WorkerId w : plan.vertex_owner) used[w] = 1;
  EXPECT_EQ(std::count(used.begin(), used.end(), 1), 6);
}

TEST(PartitionPlanTest, EdgeAssignmentFollowsSource) {
  PartitionPlan plan;
  plan.num_workers = 2;
  plan.vertex_owner = {0, 1};
  EXPECT_EQ(plan.AssignEdge(0, 1), 0u);
  EXPECT_EQ(plan.AssignEdge(1, 0), 1u);
}

// Property: every partitioner, on arbitrary graphs and worker counts,
// (a) owns every vertex exactly once with a valid worker id, and
// (b) conserves edges — routing each edge by its source owner loses and
// duplicates nothing, so the per-worker counts sum back to m.
ALIGRAPH_PROP(PartitionerProps, OwnershipTotalAndEdgesConserved, 8) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const uint32_t workers = proptest::RandomWorkers(ctx);
  for (const char* name :
       {"edge_cut", "vertex_cut", "grid2d", "streaming", "metis", "hybrid"}) {
    auto p = std::move(MakePartitioner(name)).value();
    auto plan = p->Partition(g, workers);
    ASSERT_TRUE(plan.ok()) << name;

    // (a) The owner vector IS the ownership relation: one entry per
    // vertex, each naming a valid worker.
    ASSERT_EQ(plan->vertex_owner.size(), g.num_vertices()) << name;
    for (const WorkerId w : plan->vertex_owner) ASSERT_LT(w, workers);

    // (b) Edge conservation under source-owner routing.
    std::vector<size_t> per_worker(workers, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (const Neighbor& nb : g.OutNeighbors(v)) {
        ++per_worker[plan->AssignEdge(v, nb.dst)];
      }
    }
    size_t total = 0;
    for (const size_t c : per_worker) total += c;
    // Undirected graphs store each edge in both endpoints' adjacency but
    // count it once, so source-owner routing visits it twice.
    const size_t expected =
        g.undirected() ? 2 * g.num_edges() : g.num_edges();
    EXPECT_EQ(total, expected) << name;
  }
}

TEST(PartitionStatsTest, CrossEdgesCounted) {
  GraphBuilder gb;
  gb.AddVertex();
  gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  ASSERT_TRUE(gb.AddEdge(1, 0).ok());
  auto g = std::move(gb.Build()).value();
  PartitionPlan plan;
  plan.num_workers = 2;
  plan.vertex_owner = {0, 1};
  const PartitionStats stats = ComputePartitionStats(g, plan);
  EXPECT_DOUBLE_EQ(stats.edge_cut_fraction, 1.0);
}

}  // namespace
}  // namespace aligraph
