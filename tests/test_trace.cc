/// \file test_trace.cc
/// \brief Causal tracing: context minting/propagation, parentage across
/// BucketExecutor and ThreadPool handoffs, trace completeness under
/// parallel k-hop sampling (with and without fault injection), timeline
/// assembly, the critical-path analyzer, Chrome trace export, and the
/// bench_compare regression gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/request_bucket.h"
#include "common/threadpool.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"
#include "gen/powerlaw.h"
#include "obs/compare.h"
#include "obs/report.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

using obs::AssembleTraces;
using obs::ScopedSpan;
using obs::SpanEvent;
using obs::TraceContext;
using obs::TraceForest;
using obs::TraceTree;
using obs::Tracer;

AttributedGraph MakeGraph(uint64_t seed = 9) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 1200;
  cfg.avg_degree = 6;
  cfg.seed = seed;
  return std::move(gen::ChungLu(cfg)).value();
}

/// RAII attach/detach of a tracer as the process default.
class TracerSession {
 public:
  explicit TracerSession(Tracer* t) { obs::SetDefaultTracer(t); }
  ~TracerSession() { obs::SetDefaultTracer(nullptr); }
};

const SpanEvent* FindByName(const std::vector<SpanEvent>& events,
                            const std::string& name) {
  for (const SpanEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

size_t CountByName(const TraceTree& tree, const std::string& name) {
  size_t n = 0;
  for (const auto& node : tree.nodes) n += node.event.name == name;
  return n;
}

const TraceTree* TreeRootedAt(const TraceForest& forest,
                              const std::string& root_name) {
  for (const TraceTree& tree : forest.traces) {
    if (tree.root_event().name == root_name) return &tree;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Context minting and same-thread nesting.

TEST(TraceContextTest, NoTracerMeansNoContext) {
  ASSERT_EQ(obs::DefaultTracer(), nullptr);
  ScopedSpan span("detached");
  EXPECT_EQ(obs::CurrentTraceContext().trace_id, 0u);
}

TEST(TraceContextTest, RootSpanMintsItsOwnTrace) {
  Tracer tracer;
  TracerSession session(&tracer);
  TraceContext inside;
  {
    ScopedSpan span("root");
    inside = obs::CurrentTraceContext();
    EXPECT_NE(inside.span_id, 0u);
    EXPECT_EQ(inside.trace_id, inside.span_id);
  }
  EXPECT_EQ(obs::CurrentTraceContext().trace_id, 0u);

  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, inside.trace_id);
  EXPECT_EQ(events[0].span_id, inside.span_id);
  EXPECT_EQ(events[0].parent_span_id, 0u);
}

TEST(TraceContextTest, NestedSpanInheritsTraceAndParents) {
  Tracer tracer;
  TracerSession session(&tracer);
  {
    ScopedSpan outer("outer");
    const TraceContext outer_ctx = obs::CurrentTraceContext();
    ScopedSpan inner("inner");
    const TraceContext inner_ctx = obs::CurrentTraceContext();
    EXPECT_EQ(inner_ctx.trace_id, outer_ctx.trace_id);
    EXPECT_NE(inner_ctx.span_id, outer_ctx.span_id);
  }
  const auto events = tracer.Events();
  const SpanEvent* outer = FindByName(events, "outer");
  const SpanEvent* inner = FindByName(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->trace_id, outer->trace_id);
  EXPECT_EQ(inner->parent_span_id, outer->span_id);
  EXPECT_EQ(outer->parent_span_id, 0u);
  EXPECT_GT(inner->depth, outer->depth);
}

TEST(TraceContextTest, SiblingSpansShareParent) {
  Tracer tracer;
  TracerSession session(&tracer);
  {
    ScopedSpan outer("outer");
    { ScopedSpan a("a"); }
    { ScopedSpan b("b"); }
  }
  const auto events = tracer.Events();
  const SpanEvent* outer = FindByName(events, "outer");
  const SpanEvent* a = FindByName(events, "a");
  const SpanEvent* b = FindByName(events, "b");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a->parent_span_id, outer->span_id);
  EXPECT_EQ(b->parent_span_id, outer->span_id);
  EXPECT_NE(a->span_id, b->span_id);
}

TEST(TraceContextTest, ScopedTraceContextAdoptsAcrossThreads) {
  Tracer tracer;
  TracerSession session(&tracer);
  TraceContext captured;
  {
    ScopedSpan parent("parent");
    captured = obs::CurrentTraceContext();
    std::thread worker([captured] {
      obs::ScopedTraceContext adopt(captured);
      ScopedSpan child("child");
    });
    worker.join();
  }
  const auto events = tracer.Events();
  const SpanEvent* parent = FindByName(events, "parent");
  const SpanEvent* child = FindByName(events, "child");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, parent->trace_id);
  EXPECT_EQ(child->parent_span_id, parent->span_id);
  EXPECT_NE(child->thread, parent->thread);  // distinct ring buffers
}

TEST(TraceContextTest, LegacyRecordIsUntraced) {
  Tracer tracer;
  tracer.Record("legacy", 1, 1000);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  const TraceForest forest = AssembleTraces(events);
  EXPECT_TRUE(forest.traces.empty());
  EXPECT_EQ(forest.untraced_spans, 1u);
}

// ---------------------------------------------------------------------------
// Cross-thread handoffs through the executors.

TEST(BucketExecutorTraceTest, HandoffPreservesParentage) {
  Tracer tracer;
  TracerSession session(&tracer);
  uint64_t parent_span = 0;
  {
    ScopedSpan submit_span("submit");
    parent_span = obs::CurrentTraceContext().span_id;
    BucketExecutor exec(/*num_buckets=*/2);
    for (uint64_t g = 0; g < 8; ++g) {
      ASSERT_TRUE(exec.TrySubmit(g, [] { ScopedSpan op("op"); }).ok());
    }
    exec.Drain();
  }
  const auto events = tracer.Events();
  const SpanEvent* submit = FindByName(events, "submit");
  ASSERT_NE(submit, nullptr);
  size_t ops = 0;
  std::set<uint32_t> op_threads;
  for (const SpanEvent& e : events) {
    if (e.name != "op") continue;
    ++ops;
    EXPECT_EQ(e.trace_id, submit->trace_id);
    EXPECT_EQ(e.parent_span_id, parent_span);
    op_threads.insert(e.thread);
  }
  EXPECT_EQ(ops, 8u);
  // Two lanes, two consumer threads: ops recorded off the submitting ring.
  EXPECT_EQ(op_threads.size(), 2u);
  EXPECT_EQ(op_threads.count(submit->thread), 0u);
}

TEST(BucketExecutorTraceTest, SubmitOutsideTraceStaysUntraced) {
  Tracer tracer;
  TracerSession session(&tracer);
  {
    BucketExecutor exec(/*num_buckets=*/1);
    ASSERT_TRUE(exec.TrySubmit(0, [] { ScopedSpan op("op"); }).ok());
    exec.Drain();
  }
  const auto events = tracer.Events();
  const SpanEvent* op = FindByName(events, "op");
  ASSERT_NE(op, nullptr);
  // No submitter context to adopt: the op span minted its own trace.
  EXPECT_EQ(op->trace_id, op->span_id);
  EXPECT_EQ(op->parent_span_id, 0u);
}

TEST(ThreadPoolTraceTest, SubmitAndParallelForPropagateContext) {
  Tracer tracer;
  TracerSession session(&tracer);
  ThreadPool pool(3);
  uint64_t parent_span = 0;
  {
    ScopedSpan root("request");
    parent_span = obs::CurrentTraceContext().span_id;
    std::atomic<int> sum{0};
    pool.ParallelFor(64, [&sum](size_t i) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 64);
  }
  const auto events = tracer.Events();
  const SpanEvent* root = FindByName(events, "request");
  ASSERT_NE(root, nullptr);
  size_t workers = 0;
  for (const SpanEvent& e : events) {
    if (e.name != "pool/parallel_for") continue;
    ++workers;
    EXPECT_EQ(e.trace_id, root->trace_id);
    EXPECT_EQ(e.parent_span_id, parent_span);
  }
  EXPECT_GE(workers, 1u);
  EXPECT_LE(workers, 3u);
}

// ---------------------------------------------------------------------------
// End-to-end: parallel k-hop sampling through the cluster stays one tree.

TEST(SamplingTraceTest, ParallelKHopTraceIsCompleteAndSingleRooted) {
  const AttributedGraph graph = MakeGraph();
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  ThreadPool pool(4);

  // Attach AFTER the build so the only recorded request is the sample.
  Tracer tracer;
  TracerSession session(&tracer);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, /*seed=*/5);
  std::vector<VertexId> roots(64);
  for (size_t i = 0; i < roots.size(); ++i) {
    roots[i] = static_cast<VertexId>(i * 7 % graph.num_vertices());
  }
  const std::vector<uint32_t> fans{4, 3};
  const auto block = sampler.SampleBlock(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans, &pool);
  EXPECT_EQ(block.root_locals().size(), roots.size());

  const auto events = tracer.Events();
  const TraceForest forest = AssembleTraces(events);
  EXPECT_EQ(forest.orphan_spans, 0u);
  EXPECT_EQ(forest.untraced_spans, 0u);

  const TraceTree* tree = TreeRootedAt(forest, "sample/block");
  ASSERT_NE(tree, nullptr);
  // Every recorded event belongs to this one request: nothing leaked into a
  // second trace, and the request has exactly one parentless span.
  ASSERT_EQ(forest.traces.size(), 1u);
  EXPECT_EQ(tree->nodes.size(), events.size());
  size_t parentless = 0;
  for (const auto& node : tree->nodes) {
    parentless += node.event.parent_span_id == 0;
    EXPECT_EQ(node.event.trace_id, tree->trace_id);
  }
  EXPECT_EQ(parentless, 1u);

  // The layers the request crossed are all present in its tree.
  EXPECT_EQ(CountByName(*tree, "sample/neighborhood"), 1u);
  EXPECT_EQ(CountByName(*tree, "sample/hop0"), 1u);
  EXPECT_EQ(CountByName(*tree, "sample/hop1"), 1u);
  EXPECT_EQ(CountByName(*tree, "cluster/batch_read"), fans.size());
  EXPECT_GT(CountByName(*tree, "cluster/remote_serve"), 0u);
  EXPECT_GT(CountByName(*tree, "pool/parallel_for"), 0u);

  // Cross-thread handoffs happened: spans were recorded on >= 2 rings.
  std::set<uint32_t> threads;
  for (const auto& node : tree->nodes) threads.insert(node.event.thread);
  EXPECT_GE(threads.size(), 2u);
}

TEST(SamplingTraceTest, RetryAttemptsAreLinkedIntoTheRequestTrace) {
  const AttributedGraph graph = MakeGraph();
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  FaultConfig cfg;
  cfg.seed = 11;
  // Every request to worker 1 fails its first attempt, forcing a retry.
  cfg.schedule.push_back({1, FaultKind::kTransient, 1});
  cluster.InstallFaultInjection(cfg);

  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  Tracer tracer;
  TracerSession session(&tracer);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, /*seed=*/6);
  std::vector<VertexId> roots(48);
  for (size_t i = 0; i < roots.size(); ++i) {
    roots[i] = static_cast<VertexId>(i);
  }
  const std::vector<uint32_t> fans{4, 3};
  (void)sampler.SampleBlock(source, roots,
                            NeighborhoodSampler::kAllEdgeTypes, fans);

  const auto events = tracer.Events();
  const TraceForest forest = AssembleTraces(events);
  EXPECT_EQ(forest.orphan_spans, 0u);
  const TraceTree* tree = TreeRootedAt(forest, "sample/block");
  ASSERT_NE(tree, nullptr);
  // The degraded read's recovery is part of the request's causal tree, not
  // a disconnected side story.
  EXPECT_GT(CountByName(*tree, "cluster/retry"), 0u);
  EXPECT_GT(CountByName(*tree, "cluster/retry_attempt"), 0u);
  ASSERT_GT(stats.retry_attempts.load(), 0u);
}

// ---------------------------------------------------------------------------
// Timeline assembly + critical path on synthetic events.

SpanEvent MakeEvent(const char* name, uint64_t trace, uint64_t span,
                    uint64_t parent, uint32_t thread, int64_t start_us,
                    int64_t dur_us) {
  SpanEvent e;
  e.name = name;
  e.trace_id = trace;
  e.span_id = span;
  e.parent_span_id = parent;
  e.thread = thread;
  e.start_ns = start_us * 1000;
  e.duration_ns = dur_us * 1000;
  return e;
}

TEST(TimelineTest, AssembleLinksChildrenAndCountsOrphans) {
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("root", 1, 1, 0, 0, 0, 100));
  events.push_back(MakeEvent("child", 1, 2, 1, 1, 10, 20));
  events.push_back(MakeEvent("orphan", 1, 3, 999, 0, 50, 5));  // evicted parent
  events.push_back(MakeEvent("other_root", 7, 7, 0, 0, 0, 1));
  const TraceForest forest = AssembleTraces(events);
  ASSERT_EQ(forest.traces.size(), 2u);
  EXPECT_EQ(forest.orphan_spans, 1u);
  const TraceTree* tree = TreeRootedAt(forest, "root");
  ASSERT_NE(tree, nullptr);
  ASSERT_EQ(tree->nodes[tree->root].children.size(), 1u);
  EXPECT_EQ(tree->nodes[tree->nodes[tree->root].children[0]].event.name,
            "child");
}

TEST(TimelineTest, RootlessTraceContributesOnlyOrphans) {
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("a", 3, 10, 5, 0, 0, 10));  // parent 5 evicted
  events.push_back(MakeEvent("b", 3, 11, 10, 0, 2, 4));
  const TraceForest forest = AssembleTraces(events);
  EXPECT_TRUE(forest.traces.empty());
  EXPECT_EQ(forest.orphan_spans, 2u);
}

TEST(CriticalPathTest, DescendsIntoLastFinishingChild) {
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("root", 1, 1, 0, 0, 0, 100));
  events.push_back(MakeEvent("fast", 1, 2, 1, 1, 0, 30));
  events.push_back(MakeEvent("slow", 1, 3, 1, 1, 40, 55));   // ends at 95
  events.push_back(MakeEvent("inner", 1, 4, 3, 2, 50, 40));  // ends at 90
  const TraceForest forest = AssembleTraces(events);
  ASSERT_EQ(forest.traces.size(), 1u);
  const obs::CriticalPath path =
      obs::ComputeCriticalPath(forest.traces[0]);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].name, "root");
  EXPECT_EQ(path.steps[1].name, "slow");  // finished after "fast"
  EXPECT_EQ(path.steps[2].name, "inner");
  EXPECT_DOUBLE_EQ(path.total_us, 100.0);
  EXPECT_DOUBLE_EQ(path.steps[0].self_us, 45.0);  // 100 - 55
  EXPECT_DOUBLE_EQ(path.steps[1].self_us, 15.0);  // 55 - 40
  EXPECT_DOUBLE_EQ(path.steps[2].self_us, 40.0);  // leaf keeps everything
  ASSERT_NE(path.DominantStep(), nullptr);
  EXPECT_EQ(path.DominantStep()->name, "root");
  EXPECT_FALSE(path.ToString().empty());
}

// ---------------------------------------------------------------------------
// Chrome trace export.

TEST(ChromeTraceTest, ExportParsesAndCarriesCausalIds) {
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("root", 1, 1, 0, 0, 0, 100));
  events.push_back(MakeEvent("hop", 1, 2, 1, 1, 10, 50));  // cross-thread
  const std::string json = obs::ChromeTraceJson(events);
  auto parsed = obs::JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->IsArray());

  size_t complete = 0, flow_starts = 0, flow_ends = 0, meta = 0;
  for (const auto& e : trace_events->items) {
    const std::string ph = e.Find("ph")->string_value;
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.Find("args"), nullptr);
      EXPECT_NE(e.Find("args")->Find("span_id"), nullptr);
      EXPECT_NE(e.Find("args")->Find("trace_id"), nullptr);
    } else if (ph == "s") {
      ++flow_starts;
    } else if (ph == "f") {
      ++flow_ends;
    } else if (ph == "M") {
      ++meta;
    }
  }
  EXPECT_EQ(complete, 2u);
  // One cross-thread parent->child edge: one flow arrow (start + end).
  EXPECT_EQ(flow_starts, 1u);
  EXPECT_EQ(flow_ends, 1u);
  EXPECT_GE(meta, 3u);  // process name + two thread names
}

TEST(ChromeTraceTest, SameThreadEdgesGetNoFlowArrows) {
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("root", 1, 1, 0, 0, 0, 100));
  events.push_back(MakeEvent("child", 1, 2, 1, 0, 10, 50));
  const std::string json = obs::ChromeTraceJson(events);
  EXPECT_EQ(json.find("\"ph\":\"s\""), std::string::npos);
}

TEST(ChromeTraceTest, WriteCreatesParentDirectories) {
  const std::string path =
      ::testing::TempDir() + "/aligraph_trace_test/sub/out.trace.json";
  std::vector<SpanEvent> events;
  events.push_back(MakeEvent("root", 1, 1, 0, 0, 0, 10));
  const Status st = obs::WriteChromeTrace(events, path);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_TRUE(obs::JsonValue::Parse(content).ok());
}

// ---------------------------------------------------------------------------
// Run-report provenance + deterministic metric ordering.

TEST(ReportTest, BuildInfoAppearsInJson) {
  obs::RunReport report("r");
  report.SetBuildInfo("abc123", "testcc 1.0", "Debug");
  auto parsed = obs::JsonValue::Parse(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* build = parsed->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->Find("git_sha")->string_value, "abc123");
  EXPECT_EQ(build->Find("compiler")->string_value, "testcc 1.0");
  EXPECT_EQ(build->Find("build_type")->string_value, "Debug");
}

TEST(ReportTest, MetricsSerializeSorted) {
  obs::RunReport report("r");
  report.AddMetric("z.last", 3);
  report.AddMetric("a.first", 1);
  report.AddMetric("m.middle", 2);
  auto parsed = obs::JsonValue::Parse(report.ToJson());
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->members.size(), 3u);
  EXPECT_EQ(metrics->members[0].first, "a.first");
  EXPECT_EQ(metrics->members[1].first, "m.middle");
  EXPECT_EQ(metrics->members[2].first, "z.last");
}

// ---------------------------------------------------------------------------
// Regression gate.

std::string MetricsJson(const std::string& body) {
  return "{\"schema_version\":1,\"name\":\"t\",\"metrics\":{" + body + "}}";
}

TEST(CompareTest, RegressionBeyondToleranceFailsTheGate) {
  const auto result = obs::CompareReportJson(
      MetricsJson("\"a.ms\":10.0"), MetricsJson("\"a.ms\":12.0"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->regressed, 1u);
  ASSERT_EQ(result->metrics.size(), 1u);
  EXPECT_EQ(result->metrics[0].verdict, obs::MetricVerdict::kRegressed);
  EXPECT_NEAR(result->metrics[0].RelativeDelta(), 0.2, 1e-9);
}

TEST(CompareTest, WithinToleranceAndImprovementsPass) {
  const auto result = obs::CompareReportJson(
      MetricsJson("\"a.ms\":10.0,\"b.ms\":10.0,\"c.ms\":10.0"),
      MetricsJson("\"a.ms\":10.5,\"b.ms\":7.0,\"c.ms\":10.0"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->regressed, 0u);
  EXPECT_EQ(result->improved, 1u);
}

TEST(CompareTest, ExtraCandidateMetricsAreIgnored) {
  const auto result = obs::CompareReportJson(
      MetricsJson("\"a.ms\":10.0"),
      MetricsJson("\"a.ms\":10.0,\"wall.ms\":99999.0"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->metrics.size(), 1u);
}

TEST(CompareTest, MissingMetricFailsTheGate) {
  const auto result = obs::CompareReportJson(
      MetricsJson("\"a.ms\":10.0,\"gone.ms\":1.0"),
      MetricsJson("\"a.ms\":10.0"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(result->missing, 1u);
}

TEST(CompareTest, MalformedJsonIsAnError) {
  const auto bad_baseline =
      obs::CompareReportJson("{not json", MetricsJson("\"a\":1"));
  EXPECT_FALSE(bad_baseline.ok());
  const auto bad_candidate =
      obs::CompareReportJson(MetricsJson("\"a\":1"), "[1,2");
  EXPECT_FALSE(bad_candidate.ok());
  const auto no_metrics =
      obs::CompareReportJson("{\"name\":\"x\"}", MetricsJson("\"a\":1"));
  EXPECT_FALSE(no_metrics.ok());
  const auto non_numeric = obs::CompareReportJson(
      MetricsJson("\"a\":\"fast\""), MetricsJson("\"a\":1"));
  EXPECT_FALSE(non_numeric.ok());
}

TEST(CompareTest, PerMetricToleranceOverridesDefault) {
  obs::CompareOptions options;
  options.per_metric_tolerance["noisy.ms"] = 0.5;
  const auto result = obs::CompareReportJson(
      MetricsJson("\"noisy.ms\":10.0,\"tight.ms\":10.0"),
      MetricsJson("\"noisy.ms\":14.0,\"tight.ms\":14.0"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->regressed, 1u);  // only tight.ms, noisy.ms is within 50%
  for (const auto& m : result->metrics) {
    if (m.name == "noisy.ms") {
      EXPECT_EQ(m.verdict, obs::MetricVerdict::kPass);
    } else {
      EXPECT_EQ(m.verdict, obs::MetricVerdict::kRegressed);
    }
  }
}

TEST(CompareTest, ZeroBaselineUsesAbsoluteSlack) {
  const auto tiny = obs::CompareReportJson(MetricsJson("\"a\":0.0"),
                                           MetricsJson("\"a\":0.0000005"));
  ASSERT_TRUE(tiny.ok());
  EXPECT_TRUE(tiny->ok());  // within the 1e-6 absolute slack
  const auto real = obs::CompareReportJson(MetricsJson("\"a\":0.0"),
                                           MetricsJson("\"a\":0.1"));
  ASSERT_TRUE(real.ok());
  EXPECT_FALSE(real->ok());
}

}  // namespace
}  // namespace aligraph
