// Tests for replica-aware placement and epoch-consistent online updates:
// bit-identical serving from any replica, update visibility and pinned-epoch
// isolation, cache invalidation under updates, version reclamation, the
// no-replica/no-update differential against the legacy read paths, and a
// sanitizer stress interleaving ApplyUpdateBatch with pinned k-hop reads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "algo/gnn.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "gen/powerlaw.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

// Undirected power law: degree hubs exist, so the hybrid partitioner
// actually replicates a head.
AttributedGraph MakeSkewGraph(uint64_t seed = 11) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 900;
  cfg.avg_degree = 6;
  cfg.gamma = 2.1;
  cfg.directed = false;
  cfg.seed = seed;
  return std::move(gen::ChungLu(cfg)).value();
}

// Tiny deterministic graph for update semantics: 6 vertices, two edge
// types, known adjacency.
AttributedGraph MakeTinyGraph() {
  GraphSchema schema;
  schema.AddEdgeType("a");
  schema.AddEdgeType("b");
  GraphBuilder gb(std::move(schema));
  for (int i = 0; i < 6; ++i) gb.AddVertex();
  EXPECT_TRUE(gb.AddEdge(0, 1, 0, 1.0f).ok());
  EXPECT_TRUE(gb.AddEdge(0, 2, 0, 2.0f).ok());
  EXPECT_TRUE(gb.AddEdge(0, 3, 1, 3.0f).ok());
  EXPECT_TRUE(gb.AddEdge(1, 2, 0, 1.0f).ok());
  EXPECT_TRUE(gb.AddEdge(4, 5, 1, 1.0f).ok());
  return std::move(gb.Build()).value();
}

bool SameNeighbors(std::span<const Neighbor> a, std::span<const Neighbor> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dst != b[i].dst || a[i].weight != b[i].weight ||
        a[i].attr != b[i].attr) {
      return false;
    }
  }
  return true;
}

Cluster BuildWith(const AttributedGraph& g, const char* partitioner,
                  uint32_t workers) {
  auto p = std::move(MakePartitioner(partitioner)).value();
  return std::move(Cluster::Build(g, *p, workers)).value();
}

// ---------------------------------------------------------------------------
// Replica-aware serving

TEST(ReplicaServingTest, HybridPlanReplicatesHubs) {
  const AttributedGraph g = MakeSkewGraph();
  auto plan =
      std::move(HybridSkewPartitioner().Partition(g, 4)).value();
  EXPECT_TRUE(plan.HasReplicas());
  EXPECT_GT(plan.ReplicationFactor(), 1.0);
  EXPECT_LE(plan.ReplicationFactor(), 4.0);
}

TEST(ReplicaServingTest, EveryWorkerServesBitIdenticalReads) {
  const AttributedGraph g = MakeSkewGraph();
  Cluster cluster = BuildWith(g, "hybrid", 4);
  ASSERT_TRUE(cluster.plan().HasReplicas());
  CommStats stats;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto expected = g.OutNeighbors(v);
    for (WorkerId from = 0; from < 4; ++from) {
      EXPECT_TRUE(SameNeighbors(cluster.GetNeighbors(from, v, &stats),
                                expected))
          << "v=" << v << " from=" << from;
    }
  }
  // Replicated hubs were actually served from replica copies somewhere.
  EXPECT_GT(stats.replica_reads.load(), 0u);
}

TEST(ReplicaServingTest, BatchedReadsMatchScalarFromEveryWorker) {
  const AttributedGraph g = MakeSkewGraph();
  Cluster cluster = BuildWith(g, "hybrid", 4);
  std::vector<VertexId> batch;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) batch.push_back(v);
  for (WorkerId from = 0; from < 4; ++from) {
    CommStats stats;
    BatchResult out;
    cluster.GetNeighborsBatch(from, batch, kAllEdgeTypes, &out, &stats);
    ASSERT_EQ(out.spans.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(SameNeighbors(out.spans[i], g.OutNeighbors(batch[i])))
          << "v=" << batch[i] << " from=" << from;
    }
  }
}

TEST(ReplicaServingTest, ReplicaReadsSpreadServedLoad) {
  const AttributedGraph g = MakeSkewGraph();
  Cluster cluster = BuildWith(g, "hybrid", 4);
  // Find a replicated hub and read it from every worker: each read must be
  // served by the reading worker itself (owner or replica copy), never a
  // third party.
  VertexId hub = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!cluster.plan().ReplicasOf(v).empty()) {
      hub = v;
      break;
    }
  }
  ASSERT_NE(hub, kInvalidVertex);
  cluster.ResetServedReads();
  CommStats stats;
  for (WorkerId from = 0; from < 4; ++from) {
    cluster.GetNeighbors(from, hub, &stats);
  }
  const auto served = cluster.ServedReadsSnapshot();
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(served[w], 1u) << "worker " << w;
  }
  EXPECT_EQ(stats.remote_reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Online updates

TEST(UpdateTest, InsertAndRemoveBecomeVisibleAtNewEpoch) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);
  EXPECT_FALSE(cluster.versioned());
  EXPECT_EQ(cluster.current_epoch(), 0u);

  std::vector<EdgeUpdate> batch;
  batch.push_back({EdgeUpdate::Kind::kInsert, 0, 4, 0, 9.0f, kNoAttr});
  batch.push_back({EdgeUpdate::Kind::kRemove, 0, 1, 0, 0, kNoAttr});
  UpdateReport report;
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch, &report).ok());
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(cluster.versioned());
  EXPECT_EQ(cluster.current_epoch(), 1u);

  CommStats stats;
  for (WorkerId from = 0; from < 2; ++from) {
    const auto nbs = cluster.GetNeighbors(from, 0, &stats);
    // Type-0 edge 0->1 removed, 0->4 (w=9) appended; typed order preserved.
    std::vector<VertexId> dsts;
    for (const Neighbor& nb : nbs) dsts.push_back(nb.dst);
    EXPECT_EQ(dsts, (std::vector<VertexId>{2, 4, 3}));
    const auto typed = cluster.GetNeighbors(from, 0, EdgeType{0}, &stats);
    ASSERT_EQ(typed.size(), 2u);
    EXPECT_EQ(typed[1].dst, 4u);
    EXPECT_EQ(typed[1].weight, 9.0f);
  }
}

TEST(UpdateTest, PinnedReaderKeepsSeeingItsEpoch) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);
  EpochPin pin = cluster.PinEpoch();
  EXPECT_EQ(pin.epoch(), 0u);

  std::vector<EdgeUpdate> batch;
  batch.push_back({EdgeUpdate::Kind::kRemove, 0, 1, 0, 0, kNoAttr});
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch).ok());

  CommStats stats;
  // The pinned epoch still sees the pre-update adjacency on every path.
  for (WorkerId from = 0; from < 2; ++from) {
    EXPECT_TRUE(SameNeighbors(
        cluster.GetNeighbors(from, 0, &stats, pin.epoch()),
        g.OutNeighbors(0)));
    BatchResult out;
    const std::vector<VertexId> b{0};
    cluster.GetNeighborsBatch(from, b, kAllEdgeTypes, &out, &stats,
                              pin.epoch());
    EXPECT_TRUE(SameNeighbors(out.spans[0], g.OutNeighbors(0)));
  }
  // An unpinned (current) read sees the update.
  EXPECT_EQ(cluster.GetNeighbors(0, 0, &stats).size(),
            g.OutNeighbors(0).size() - 1);
  pin.Release();
}

TEST(UpdateTest, SkippedUpdatesDoNotBurnAnEpoch) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);

  std::vector<EdgeUpdate> batch;
  // Remove with no matching (dst, type) and an out-of-range source.
  batch.push_back({EdgeUpdate::Kind::kRemove, 0, 5, 0, 0, kNoAttr});
  batch.push_back({EdgeUpdate::Kind::kInsert, 99, 1, 0, 1.0f, kNoAttr});
  UpdateReport report;
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch, &report).ok());
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(cluster.current_epoch(), 0u);
  EXPECT_FALSE(cluster.versioned());

  // Empty batches are also free.
  ASSERT_TRUE(cluster.ApplyUpdateBatch({}, &report).ok());
  EXPECT_EQ(cluster.current_epoch(), 0u);
}

TEST(UpdateTest, UpdatesReachReplicaCopiesAtomically) {
  const AttributedGraph g = MakeSkewGraph();
  Cluster cluster = BuildWith(g, "hybrid", 4);
  VertexId hub = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!cluster.plan().ReplicasOf(v).empty() && g.OutDegree(v) > 0) {
      hub = v;
      break;
    }
  }
  ASSERT_NE(hub, kInvalidVertex);

  const VertexId new_dst = (hub + 1) % g.num_vertices();
  std::vector<EdgeUpdate> batch;
  batch.push_back({EdgeUpdate::Kind::kInsert, hub, new_dst, 0, 7.5f, kNoAttr});
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch).ok());

  // Every worker (owner, every replica holder, remote readers) serves the
  // same post-update bytes.
  CommStats stats;
  const auto reference = cluster.GetNeighbors(0, hub, &stats);
  EXPECT_EQ(reference.size(), g.OutDegree(hub) + 1);
  EXPECT_EQ(reference.back().dst, new_dst);
  EXPECT_EQ(reference.back().weight, 7.5f);
  for (WorkerId from = 1; from < 4; ++from) {
    EXPECT_TRUE(SameNeighbors(cluster.GetNeighbors(from, hub, &stats),
                              reference))
        << "from=" << from;
  }
}

TEST(UpdateTest, StaleVersionsArePrunedOnceUnpinned) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);
  std::vector<EdgeUpdate> flip_up{{EdgeUpdate::Kind::kInsert, 1, 3, 0, 1.0f,
                                   kNoAttr}};
  std::vector<EdgeUpdate> flip_down{{EdgeUpdate::Kind::kRemove, 1, 3, 0, 0,
                                     kNoAttr}};
  size_t pruned = 0;
  for (int i = 0; i < 10; ++i) {
    UpdateReport report;
    ASSERT_TRUE(
        cluster.ApplyUpdateBatch(i % 2 == 0 ? flip_up : flip_down, &report)
            .ok());
    pruned += report.versions_pruned;
  }
  // With no pinned readers, each batch reclaims the versions shadowed by
  // the previous one instead of growing the chain forever.
  EXPECT_GT(pruned, 0u);
  EXPECT_EQ(cluster.current_epoch(), 10u);
}

// ---------------------------------------------------------------------------
// Cache consistency under updates

TEST(UpdateCacheTest, LruCacheNeverServesStaleData) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);
  cluster.InstallLruCache(16);

  // Find a vertex with edges that worker `reader` does not own.
  const VertexId v = 0;
  const WorkerId owner = cluster.OwnerOf(v);
  const WorkerId reader = owner == 0 ? 1 : 0;

  CommStats stats;
  cluster.GetNeighbors(reader, v, &stats);  // remote fetch, admitted
  cluster.GetNeighbors(reader, v, &stats);  // cache hit
  EXPECT_GT(stats.cache_hits.load(), 0u);

  std::vector<EdgeUpdate> batch{{EdgeUpdate::Kind::kRemove, v, 1, 0, 0,
                                 kNoAttr}};
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch).ok());

  // Post-update reads bypass (and drop) the stale entry on every pass.
  for (int i = 0; i < 3; ++i) {
    const auto nbs = cluster.GetNeighbors(reader, v, &stats);
    EXPECT_EQ(nbs.size(), g.OutDegree(v) - 1);
    for (const Neighbor& nb : nbs) EXPECT_NE(nb.dst, 1u);
  }
}

TEST(UpdateCacheTest, StaticCacheNeverServesStaleData) {
  const AttributedGraph g = MakeTinyGraph();
  Cluster cluster = BuildWith(g, "edge_cut", 2);
  cluster.InstallRandomCache(1.0, 3);  // pin everything everywhere

  const VertexId v = 0;
  const WorkerId owner = cluster.OwnerOf(v);
  const WorkerId reader = owner == 0 ? 1 : 0;
  CommStats stats;
  cluster.GetNeighbors(reader, v, &stats);
  EXPECT_GT(stats.cache_hits.load(), 0u);

  std::vector<EdgeUpdate> batch{{EdgeUpdate::Kind::kInsert, v, 5, 0, 4.0f,
                                 kNoAttr}};
  ASSERT_TRUE(cluster.ApplyUpdateBatch(batch).ok());
  const auto nbs = cluster.GetNeighbors(reader, v, &stats);
  EXPECT_EQ(nbs.size(), g.OutDegree(v) + 1);
  // The insert appends within its type group (type 0), so check presence.
  const bool inserted =
      std::any_of(nbs.begin(), nbs.end(), [](const Neighbor& nb) {
        return nb.dst == 5 && nb.weight == 4.0f;
      });
  EXPECT_TRUE(inserted);

  // A pre-update pinned epoch would still be cache-eligible; epoch 0 reads
  // of untouched vertices keep hitting the cache.
  const uint64_t hits_before = stats.cache_hits.load();
  cluster.GetNeighbors(reader, 1, &stats);
  EXPECT_GT(stats.cache_hits.load(), hits_before);
}

// ---------------------------------------------------------------------------
// Differential: no replicas + no updates == legacy behavior, and replicas
// alone do not change any sampled draw, block, or GNN forward.

TEST(DifferentialTest, HybridOnUniformGraphDegeneratesToTailPlan) {
  // Ring: every degree equals the mean, so no vertex beats the hub
  // threshold and the hybrid plan must be exactly the tail plan.
  GraphBuilder gb;
  const int n = 64;
  for (int i = 0; i < n; ++i) gb.AddVertex();
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(gb.AddEdge(i, (i + 1) % n).ok());
  }
  const AttributedGraph g = std::move(gb.Build()).value();
  auto hybrid = std::move(HybridSkewPartitioner().Partition(g, 4)).value();
  auto tail = std::move(EdgeCutPartitioner().Partition(g, 4)).value();
  EXPECT_FALSE(hybrid.HasReplicas());
  EXPECT_EQ(hybrid.vertex_owner, tail.vertex_owner);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (WorkerId from = 0; from < 4; ++from) {
      EXPECT_EQ(hybrid.ServingWorker(v, from), hybrid.OwnerOf(v));
    }
  }
}

TEST(DifferentialTest, ReplicationChangesNoDrawBlockOrForward) {
  const AttributedGraph g = MakeSkewGraph(23);
  Cluster plain = BuildWith(g, "edge_cut", 4);
  Cluster replicated = BuildWith(g, "hybrid", 4);
  ASSERT_TRUE(replicated.plan().HasReplicas());

  // Same roots, same sampler seeds: draws must be bit-identical because
  // every read returns the same bytes regardless of which copy serves it.
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < g.num_vertices(); v += 17) roots.push_back(v);
  const std::vector<uint32_t> fans{4, 3};

  CommStats s1, s2;
  DistributedNeighborSource src_plain(plain, 0, &s1);
  DistributedNeighborSource src_repl(replicated, 0, &s2);
  NeighborhoodSampler samp_plain(NeighborStrategy::kUniform, 77);
  NeighborhoodSampler samp_repl(NeighborStrategy::kUniform, 77);
  const NeighborhoodSample draw_plain =
      samp_plain.Sample(src_plain, roots, kAllEdgeTypes, fans);
  const NeighborhoodSample draw_repl =
      samp_repl.Sample(src_repl, roots, kAllEdgeTypes, fans);
  EXPECT_EQ(draw_plain.roots, draw_repl.roots);
  EXPECT_EQ(draw_plain.hops, draw_repl.hops);

  // Blocks: relabeled CSR and gathered features are byte-equal too.
  nn::Matrix feats(g.num_vertices(), 8);
  Rng frng(5);
  for (size_t i = 0; i < g.num_vertices() * 8; ++i) {
    feats.data()[i] = static_cast<float>(frng.Uniform(1000)) / 1000.0f;
  }
  block::MatrixFeatureSource fsrc(feats);
  NeighborhoodSampler bs_plain(NeighborStrategy::kUniform, 78);
  NeighborhoodSampler bs_repl(NeighborStrategy::kUniform, 78);
  const block::SampledBlock blk_plain = bs_plain.SampleBlock(
      src_plain, roots, kAllEdgeTypes, fans, nullptr, &fsrc);
  const block::SampledBlock blk_repl = bs_repl.SampleBlock(
      src_repl, roots, kAllEdgeTypes, fans, nullptr, &fsrc);
  const auto globals_a = blk_plain.globals();
  const auto globals_b = blk_repl.globals();
  ASSERT_TRUE(std::equal(globals_a.begin(), globals_a.end(),
                         globals_b.begin(), globals_b.end()));
  ASSERT_EQ(blk_plain.hops().size(), blk_repl.hops().size());
  for (size_t h = 0; h < blk_plain.hops().size(); ++h) {
    EXPECT_EQ(blk_plain.hops()[h].dst, blk_repl.hops()[h].dst);
    EXPECT_EQ(blk_plain.hops()[h].src, blk_repl.hops()[h].src);
    EXPECT_EQ(blk_plain.hops()[h].offsets, blk_repl.hops()[h].offsets);
  }
  ASSERT_EQ(blk_plain.features().rows(), blk_repl.features().rows());
  EXPECT_EQ(std::memcmp(blk_plain.features().data(),
                        blk_repl.features().data(),
                        blk_plain.features().rows() *
                            blk_plain.features().cols() * sizeof(float)),
            0);

  // GNN forward over the deepest hop of each block.
  Rng wrng_a(9), wrng_b(9);
  algo::SageLayer layer_a(8, 4, /*maxpool=*/false, wrng_a);
  algo::SageLayer layer_b(8, 4, /*maxpool=*/false, wrng_b);
  algo::SageLayer::Cache cache_a, cache_b;
  const nn::Matrix out_a = layer_a.ForwardBlock(
      blk_plain.features(), blk_plain.hops().back(), &cache_a);
  const nn::Matrix out_b = layer_b.ForwardBlock(
      blk_repl.features(), blk_repl.hops().back(), &cache_b);
  ASSERT_EQ(out_a.rows(), out_b.rows());
  EXPECT_EQ(std::memcmp(out_a.data(), out_b.data(),
                        out_a.rows() * out_a.cols() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Concurrency stress (run under TSan in CI): one writer flipping every
// adjacency each batch, readers pinning epochs. The invariant is exact:
// batch k stamps every edge weight to float(k), so a read scope pinned at
// epoch e must see weight float(e) everywhere — any torn epoch shows up as
// a mixed weight, any reclamation bug as a (sanitizer-visible) dangling
// span.

TEST(UpdateStressTest, ConcurrentUpdatesAndPinnedReadsSeeOneEpoch) {
  GraphBuilder gb;
  const VertexId n = 48;
  for (VertexId i = 0; i < n; ++i) gb.AddVertex();
  for (VertexId i = 0; i < n; ++i) {
    EXPECT_TRUE(gb.AddEdge(i, (i + 1) % n, 0, 0.0f).ok());
  }
  const AttributedGraph g = std::move(gb.Build()).value();
  Cluster cluster = BuildWith(g, "edge_cut", 2);

  constexpr int kBatches = 60;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread writer([&] {
    for (int k = 1; k <= kBatches; ++k) {
      std::vector<EdgeUpdate> batch;
      batch.reserve(2 * n);
      for (VertexId v = 0; v < n; ++v) {
        const VertexId d = (v + 1) % n;
        batch.push_back({EdgeUpdate::Kind::kRemove, v, d, 0, 0, kNoAttr});
        batch.push_back({EdgeUpdate::Kind::kInsert, v, d, 0,
                         static_cast<float>(k), kNoAttr});
      }
      ASSERT_TRUE(cluster.ApplyUpdateBatch(batch).ok());
    }
    done.store(true, std::memory_order_release);
  });

  auto check_scope = [&](WorkerId from, bool batched) {
    EpochPin pin = cluster.PinEpoch();
    const float want = static_cast<float>(pin.epoch());
    CommStats stats;
    if (batched) {
      std::vector<VertexId> all(n);
      for (VertexId v = 0; v < n; ++v) all[v] = v;
      BatchResult out;
      cluster.GetNeighborsBatch(from, all, kAllEdgeTypes, &out, &stats,
                                pin.epoch());
      for (const auto& span : out.spans) {
        for (const Neighbor& nb : span) {
          if (nb.weight != want) violations.fetch_add(1);
        }
      }
    } else {
      for (VertexId v = 0; v < n; ++v) {
        for (const Neighbor& nb :
             cluster.GetNeighbors(from, v, &stats, pin.epoch())) {
          if (nb.weight != want) violations.fetch_add(1);
        }
      }
    }
    pin.Release();
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      const WorkerId from = static_cast<WorkerId>(r % 2);
      while (!done.load(std::memory_order_acquire)) {
        check_scope(from, /*batched=*/r == 1);
        // The sampler path: DrawHops brackets each call with an epoch pin;
        // here we only require it to be race-free and return valid draws.
        CommStats stats;
        DistributedNeighborSource source(cluster, from, &stats);
        NeighborhoodSampler hood(NeighborStrategy::kUniform, 100 + r);
        std::vector<VertexId> roots{0, 7, 13};
        const std::vector<uint32_t> fans{2, 2};
        const auto draw = hood.Sample(source, roots, kAllEdgeTypes, fans);
        if (draw.hops.size() != 2) violations.fetch_add(1);
      }
    });
  }

  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(cluster.current_epoch(), static_cast<uint64_t>(kBatches));

  // Quiescent state: one final flip reclaims everything older once no
  // reader pins remain.
  std::vector<EdgeUpdate> last{{EdgeUpdate::Kind::kInsert, 0, 2, 0, 1.0f,
                                kNoAttr}};
  UpdateReport report;
  ASSERT_TRUE(cluster.ApplyUpdateBatch(last, &report).ok());
  EXPECT_GT(report.versions_pruned, 0u);
}

}  // namespace
}  // namespace aligraph
