// Round-trip tests for the binary graph format.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "gen/taobao.h"
#include "graph/io.h"

namespace aligraph {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectGraphsEqual(const AttributedGraph& a, const AttributedGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_edge_types(), b.num_edge_types());
  ASSERT_EQ(a.undirected(), b.undirected());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_type(v), b.vertex_type(v));
    const auto fa = a.VertexFeatures(v);
    const auto fb = b.VertexFeatures(v);
    ASSERT_EQ(fa.size(), fb.size()) << "vertex " << v;
    for (size_t i = 0; i < fa.size(); ++i) EXPECT_FLOAT_EQ(fa[i], fb[i]);
    for (size_t t = 0; t < a.num_edge_types(); ++t) {
      const auto na = a.OutNeighbors(v, static_cast<EdgeType>(t));
      const auto nb = b.OutNeighbors(v, static_cast<EdgeType>(t));
      ASSERT_EQ(na.size(), nb.size()) << "vertex " << v << " type " << t;
      for (size_t i = 0; i < na.size(); ++i) {
        EXPECT_EQ(na[i].dst, nb[i].dst);
        EXPECT_FLOAT_EQ(na[i].weight, nb[i].weight);
      }
    }
  }
}

TEST(GraphIoTest, RoundTripDirectedWithAttributes) {
  GraphSchema schema;
  const VertexType user = schema.AddVertexType("user");
  const EdgeType click = schema.AddEdgeType("click");
  GraphBuilder gb(schema);
  gb.AddVertex(user, {1.0f, 2.0f});
  gb.AddVertex(user, {});
  gb.AddVertex(0, {3.5f});
  ASSERT_TRUE(gb.AddEdge(0, 1, click, 2.5f, {0.25f}).ok());
  ASSERT_TRUE(gb.AddEdge(1, 2, 0, 1.0f).ok());
  auto g = std::move(gb.Build()).value();

  const std::string path = TempPath("roundtrip_directed.algr");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectGraphsEqual(g, *loaded);
  // Schema names survive.
  EXPECT_TRUE(loaded->schema().VertexTypeId("user").ok());
  EXPECT_TRUE(loaded->schema().EdgeTypeId("click").ok());
  // Edge attributes survive.
  const auto nb = loaded->OutNeighbors(0, click);
  ASSERT_EQ(nb.size(), 1u);
  const auto edge_feats = loaded->EdgeFeatures(nb[0]);
  ASSERT_EQ(edge_feats.size(), 1u);
  EXPECT_FLOAT_EQ(edge_feats[0], 0.25f);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripUndirected) {
  GraphBuilder gb(GraphSchema(), /*undirected=*/true);
  for (int i = 0; i < 4; ++i) gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  ASSERT_TRUE(gb.AddEdge(2, 3, 0, 0.5f).ok());
  auto g = std::move(gb.Build()).value();

  const std::string path = TempPath("roundtrip_undirected.algr");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  ExpectGraphsEqual(g, *loaded);
  std::remove(path.c_str());
}

TEST(GraphIoTest, RoundTripSyntheticTaobao) {
  auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.02))).value();
  const std::string path = TempPath("roundtrip_taobao.algr");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  ExpectGraphsEqual(g, *loaded);
  // Attribute deduplication is re-established on load.
  EXPECT_EQ(loaded->vertex_attributes().num_records(),
            g.vertex_attributes().num_records());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_EQ(LoadGraph("/nonexistent/nope.algr").status().code(),
            StatusCode::kIoError);
}

TEST(GraphIoTest, CorruptMagicFails) {
  const std::string path = TempPath("corrupt.algr");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a graph", f);
  std::fclose(f);
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedFileFails) {
  auto g = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.02))).value();
  const std::string path = TempPath("truncated.algr");
  ASSERT_TRUE(SaveGraph(g, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  EXPECT_FALSE(LoadGraph(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aligraph
