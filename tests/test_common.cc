// Unit and property tests for the common utilities: RNG, alias table, LRU
// cache, thread pool, summaries and the power-law fitter.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "common/alias_table.h"
#include "common/histogram.h"
#include "common/lru_cache.h"
#include "common/random.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "proptest.h"

namespace aligraph {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedIndexBiased) {
  Rng rng(19);
  std::vector<double> w{1.0, 9.0};
  int ones = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.WeightedIndex(w) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 5000.0, 0.9, 0.03);
}

TEST(AliasTableTest, EmptyWeightsYieldEmptyTable) {
  AliasTable t{std::vector<double>{}};
  EXPECT_TRUE(t.empty());
  AliasTable zeros{std::vector<double>{0, 0, 0}};
  EXPECT_TRUE(zeros.empty());
}

TEST(AliasTableTest, SingleEntryAlwaysSampled) {
  AliasTable t{std::vector<double>{5.0}};
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTableTest, MatchesDistribution) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(23);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), w[i] / 10.0, 0.01)
        << "bucket " << i;
  }
}

TEST(AliasTableTest, UnnormalizedEqualWeightsUniform) {
  AliasTable t(std::vector<double>(8, 123.0));
  Rng rng(29);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[t.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 80000.0, 0.125, 0.01);
}

TEST(AliasTableTest, RebuildReplacesDistribution) {
  AliasTable t(std::vector<double>{1.0, 0.0});
  Rng rng(31);
  EXPECT_EQ(t.Sample(rng), 0u);
  t.Build({0.0, 1.0});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(t.Sample(rng), 1u);
}

// Property: for arbitrary weight vectors spanning orders of magnitude, the
// empirical sampling frequency of every bucket tracks its normalized
// weight. This is the alias method's whole contract; the seeded sweep
// covers weight shapes no hand-written case would.
ALIGRAPH_PROP(AliasTableProps, EmpiricalFrequencyTracksWeights, 12) {
  const size_t buckets = 2 + ctx.rng.Uniform(30);
  const std::vector<double> w = proptest::RandomWeights(ctx, buckets);
  double total = 0;
  for (const double x : w) total += x;

  AliasTable t(w);
  Rng draw(ctx.rng.Next());
  std::vector<uint64_t> counts(buckets, 0);
  const uint64_t n = 60000;
  for (uint64_t i = 0; i < n; ++i) ++counts[t.Sample(draw)];
  for (size_t i = 0; i < buckets; ++i) {
    const double expected = w[i] / total;
    const double got = static_cast<double>(counts[i]) / n;
    // Normal-approximation bound: ~6 sigma keeps false failures out of a
    // seeded sweep while still catching a biased table.
    const double sigma = std::sqrt(expected * (1 - expected) / n);
    EXPECT_NEAR(got, expected, 6 * sigma + 1e-4) << "bucket " << i;
  }
}

// Property: the two-pass batched draw is BIT-IDENTICAL to the scalar
// Sample loop on the same RNG stream, for arbitrary weight shapes and
// batch sizes — including batches larger than the table and a batch split
// across multiple SampleBatch calls (the stream must advance exactly two
// draws per sample either way).
ALIGRAPH_PROP(AliasTableProps, SampleBatchBitIdenticalToScalarLoop, 12) {
  const size_t buckets = 1 + ctx.rng.Uniform(40);
  const std::vector<double> w = proptest::RandomWeights(ctx, buckets);
  AliasTable t(w);
  const uint64_t seed = ctx.rng.Next();
  const size_t total = 1 + ctx.rng.Uniform(500);

  Rng scalar_rng(seed);
  std::vector<size_t> scalar(total);
  for (size_t& s : scalar) s = t.Sample(scalar_rng);

  Rng batch_rng(seed);
  std::vector<size_t> batched(total);
  AliasTable::BatchScratch scratch;
  // Split the batch at a random point: draws must not depend on batching
  // boundaries.
  const size_t split = ctx.rng.Uniform(total + 1);
  t.SampleBatch(batch_rng, std::span<size_t>(batched).first(split), &scratch);
  t.SampleBatch(batch_rng, std::span<size_t>(batched).subspan(split),
                &scratch);
  EXPECT_EQ(batched, scalar);
  // The streams are in lockstep afterwards too.
  EXPECT_EQ(batch_rng.Next(), scalar_rng.Next());
}

TEST(AliasTableTest, SampleBatchSingleEntryAndAllEqualWeights) {
  // Regression: degenerate tables where every draw accepts. The batch path
  // must still consume (Uniform, NextDouble) per draw and return the same
  // indices as the scalar loop.
  for (const std::vector<double> w :
       {std::vector<double>{7.0}, std::vector<double>(6, 123.0)}) {
    AliasTable t(w);
    Rng a(99), b(99);
    std::vector<size_t> batched(64);
    t.SampleBatch(a, batched);
    for (const size_t s : batched) EXPECT_LT(s, w.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_EQ(batched[i], t.Sample(b)) << "draw " << i;
    }
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(AliasTableTest, SampleBatchEmptyOutputIsANoop) {
  AliasTable t(std::vector<double>{1.0, 2.0});
  Rng rng(5);
  const uint64_t before = [&] { Rng copy = rng; return copy.Next(); }();
  t.SampleBatch(rng, {});
  EXPECT_EQ(rng.Next(), before) << "empty batch must not consume the stream";
  // An EMPTY TABLE with an empty request is also fine (no draw happens).
  AliasTable empty;
  empty.SampleBatch(rng, {});
}

TEST(AliasTableTest, SampleBatchMatchesDistributionChiSquared) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  AliasTable t(w);
  Rng rng(41);
  std::vector<size_t> draws(100000);
  AliasTable::BatchScratch scratch;
  t.SampleBatch(rng, draws, &scratch);
  std::vector<uint64_t> counts(w.size(), 0);
  for (const size_t d : draws) ++counts[d];
  // Pearson chi-squared against the normalized weights; 3 dof, the 99.9%
  // critical value is 16.27 — a biased batch path blows far past it.
  double chi2 = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    const double expected = static_cast<double>(draws.size()) * w[i] / 10.0;
    const double diff = static_cast<double>(counts[i]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 16.27);
}

TEST(AliasTableTest, TryBuildRejectsNanAndNegativeWeights) {
  AliasTable t;
  EXPECT_TRUE(t.TryBuild({1.0, 2.0}).ok());
  EXPECT_FALSE(t.empty());

  const Status nan_status =
      t.TryBuild({1.0, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(nan_status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.empty()) << "rejected build must leave the table empty";

  const Status neg_status = t.TryBuild({1.0, -0.5});
  EXPECT_EQ(neg_status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.empty());

  // Infinities are rejected too: they would produce a NaN normalization.
  EXPECT_FALSE(
      t.TryBuild({std::numeric_limits<double>::infinity()}).ok());

  // Zero and empty stay OK (empty table, not an error).
  EXPECT_TRUE(t.TryBuild({0.0, 0.0}).ok());
  EXPECT_TRUE(t.empty());
}

TEST(AliasTableDeathTest, BuildAbortsOnInvalidWeights) {
  EXPECT_DEATH(AliasTable(std::vector<double>{1.0, -2.0}), "negative");
  EXPECT_DEATH(
      AliasTable(std::vector<double>{
          std::numeric_limits<double>::quiet_NaN()}),
      "NaN");
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // 1 is now most recent
  cache.Put(3, 30);                       // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, OverwriteDoesNotEvict) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_TRUE(cache.Get(2).has_value());
}

TEST(LruCacheTest, TracksHitsMissesEvictions) {
  LruCache<int, int> cache(1);
  cache.Get(5);  // miss
  cache.Put(5, 1);
  cache.Get(5);  // hit
  cache.Put(6, 2);  // evicts 5
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NEAR(cache.HitRate(), 0.5, 1e-9);
}

TEST(LruCacheTest, EvictionCallbackFires) {
  LruCache<int, int> cache(1);
  int evicted_key = -1;
  cache.SetEvictionCallback([&](const int& k, int&) { evicted_key = k; });
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_EQ(evicted_key, 1);
}

TEST(LruCacheTest, ContainsDoesNotTouchRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_TRUE(cache.Contains(1));
  // 1 was NOT refreshed by Contains, so it is still the LRU victim.
  cache.Put(3, 30);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaits) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(pool.Submit([&count] { ++count; }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 32);  // queued work drains before the join
  const Status rejected = pool.Submit([&count] { ++count; });
  EXPECT_FALSE(rejected.ok());  // no silent drop, no enqueue-after-join race
  EXPECT_EQ(count.load(), 32);
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ShutdownRaceNeverLosesAcceptedTasks) {
  // Submitters race Shutdown from another thread: every Submit must either
  // return a failed Status or have its task run — accepted work is never
  // dropped. TSan covers the queue/flag ordering.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 64; ++i) {
          if (pool.Submit([&ran] { ++ran; }).ok()) ++accepted;
        }
      });
    }
    pool.Shutdown();
    for (auto& s : submitters) s.join();
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2.5);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 4.0);
}

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Percentile(99), 0.0);
}

TEST(SummaryTest, UsableThroughConstReference) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.Add(v);
  const Summary& cs = s;
  EXPECT_DOUBLE_EQ(cs.Percentile(50), 2.5);
  EXPECT_FALSE(cs.ToString().empty());
  // The lazy sort behind the const calls must not disturb the stats.
  EXPECT_DOUBLE_EQ(cs.mean(), 2.5);
  EXPECT_EQ(cs.count(), 4u);
}

TEST(PowerLawFitTest, RecoversSlopeOnSyntheticPowerLaw) {
  // Sample from Pr(X >= x) ~ x^{-(gamma-1)} via inverse transform.
  Rng rng(37);
  const double gamma = 2.5;
  std::vector<double> sample;
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.NextDouble();
    sample.push_back(std::pow(1.0 - u, -1.0 / (gamma - 1.0)));
  }
  const PowerLawFit fit = FitPowerLawSlope(sample);
  EXPECT_GT(fit.points, 5u);
  EXPECT_NEAR(fit.slope, -gamma, 0.35);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(PowerLawFitTest, UniformSampleIsNotPowerLaw) {
  Rng rng(41);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(1.0 + rng.NextDouble() * 99);
  const PowerLawFit fit = FitPowerLawSlope(sample);
  // Uniform density is flat in value, so the log-log slope is near 0
  // (clearly not a steep power law).
  EXPECT_GT(fit.slope, -1.0);
}

TEST(PowerLawFitTest, DegenerateInputs) {
  EXPECT_EQ(FitPowerLawSlope({}).points, 0u);
  EXPECT_EQ(FitPowerLawSlope({0.5, 0.2}).points, 0u);  // all below 1
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.ElapsedNanos(), 0);
  const double before = t.ElapsedMillis();
  t.Reset();
  EXPECT_LE(t.ElapsedMillis(), before + 1e3);
}

}  // namespace
}  // namespace aligraph
