// Tests for the observability subsystem: sharded metrics registry, scoped
// tracing with nested spans, JSON writer/parser, machine-readable run
// reports, and the consistency of the cluster's exported comm counters
// with CommStats snapshots.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/histogram.h"
#include "gen/powerlaw.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsTest, CounterStartsAtZeroAndAdds) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(MetricsTest, GetReturnsStableHandle) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("same");
  obs::Counter* b = registry.GetCounter("same");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("other"));
}

TEST(MetricsTest, ConcurrentIncrementsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kIncrements; ++i) c->Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), kThreads * kIncrements);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("g");
  g->Set(1.5);
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
}

TEST(MetricsTest, HistogramBucketsAndPercentiles) {
  obs::MetricsRegistry registry;
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::Histogram* h = registry.GetHistogram("h", bounds);
  for (int i = 0; i < 90; ++i) h->Record(5.0);    // bucket 0
  for (int i = 0; i < 9; ++i) h->Record(50.0);    // bucket 1
  h->Record(1e9);                                 // overflow bucket
  const obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 100u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 90u);
  EXPECT_EQ(snap.counts[1], 9u);
  EXPECT_EQ(snap.counts[3], 1u);
  // Interpolated within the containing bucket: rank 50 of 90 records in
  // [0, 10] sits at 10 * 50/90; rank 95 is 5 of the 9 records in (10, 100].
  EXPECT_DOUBLE_EQ(snap.Percentile(50.0), 10.0 * 50.0 / 90.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(95.0), 10.0 + 90.0 * 5.0 / 9.0);
  // Overflow bucket has no upper edge: reports the last finite bound.
  EXPECT_DOUBLE_EQ(snap.Percentile(99.9), 1000.0);
}

// Degenerate snapshots the attribution/window layers can legitimately
// produce (empty windows, single-phase mass, out-of-range p) must resolve
// to defined values, not UB or surprises.
TEST(MetricsTest, PercentileEdgeCases) {
  // Empty snapshot: any percentile is 0 by definition.
  obs::HistogramSnapshot empty;
  empty.bounds = {10.0, 100.0};
  empty.counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100.0), 0.0);

  // All mass in one interior bucket: p interpolates across [lo, hi] and
  // p0 / p100 clamp to the bucket edges.
  obs::HistogramSnapshot single;
  single.bounds = {10.0, 100.0};
  single.counts = {4, 0, 0};
  single.count = 4;
  EXPECT_DOUBLE_EQ(single.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(single.Percentile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(single.Percentile(100.0), 10.0);
  // Out-of-range p clamps instead of extrapolating: below 0 pins to the
  // bucket's lower edge, above 100 to the last finite bound.
  EXPECT_DOUBLE_EQ(single.Percentile(-10.0), 0.0);
  EXPECT_DOUBLE_EQ(single.Percentile(150.0), 100.0);

  // All mass in the overflow bucket: no upper edge to interpolate toward,
  // every percentile reports the last finite bound.
  obs::HistogramSnapshot overflow;
  overflow.bounds = {10.0, 100.0};
  overflow.counts = {0, 0, 7};
  overflow.count = 7;
  EXPECT_DOUBLE_EQ(overflow.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(overflow.Percentile(50.0), 100.0);
  EXPECT_DOUBLE_EQ(overflow.Percentile(100.0), 100.0);

  // A boundless snapshot (only the overflow bucket exists) degrades to 0.
  obs::HistogramSnapshot boundless;
  boundless.counts = {3};
  boundless.count = 3;
  EXPECT_DOUBLE_EQ(boundless.Percentile(50.0), 0.0);
}

// The tail percentiles the serving layer gates on: 1000 uniformly spread
// values in one bucket must resolve p99.9 by interpolation instead of
// snapping to the bucket bound.
TEST(MetricsTest, HistogramP999OnKnownDistribution) {
  obs::MetricsRegistry registry;
  const double bounds[] = {1000.0, 2000.0};
  obs::Histogram* h = registry.GetHistogram("h999", bounds);
  // 1..999: every value strictly inside the first bucket (a value equal to
  // a bound lands in the NEXT bucket — upper_bound semantics).
  for (int i = 1; i <= 999; ++i) h->Record(static_cast<double>(i));
  const obs::HistogramSnapshot snap = h->Snapshot();
  // Interpolation assumes values spread uniformly over [0, 1000]; for this
  // distribution that is accurate to about one value. Without
  // interpolation every one of these would snap to 1000.
  EXPECT_NEAR(snap.Percentile(50.0), 500.0, 1.5);
  EXPECT_NEAR(snap.Percentile(99.0), 990.0, 1.5);
  EXPECT_NEAR(snap.Percentile(99.9), 999.0, 1.5);
  // p99.9 resolves BELOW the bucket bound — the whole point.
  EXPECT_LT(snap.Percentile(99.9), 1000.0);
  EXPECT_GT(snap.Percentile(99.9), snap.Percentile(99.0));
  EXPECT_DOUBLE_EQ(snap.Percentile(100.0), 1000.0);
  // Percentiles are monotone in p.
  double prev = 0.0;
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 99.99, 100.0}) {
    const double v = snap.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  // The Summary sibling (exact, order-statistic based) agrees on the same
  // distribution to within two values.
  Summary s;
  for (int i = 1; i <= 999; ++i) s.Add(static_cast<double>(i));
  EXPECT_NEAR(s.Percentile(99.9), snap.Percentile(99.9), 2.0);
}

TEST(MetricsTest, HistogramConcurrentRecordsAreExact) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("hc", obs::LatencyBoundsUs());
  constexpr int kThreads = 4;
  constexpr uint64_t kRecords = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (uint64_t i = 0; i < kRecords; ++i) h->Record(3.0);
    });
  }
  for (auto& th : threads) th.join();
  const obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kRecords);
  EXPECT_DOUBLE_EQ(snap.sum, 3.0 * kThreads * kRecords);
}

TEST(MetricsTest, SnapshotCoversAllMetrics) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c1")->Add(7);
  registry.GetGauge("g1")->Set(0.25);
  registry.GetHistogram("h1")->Record(12.0);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c1"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g1"), 0.25);
  EXPECT_EQ(snap.histograms.at("h1").count, 1u);
}

TEST(MetricsTest, DefaultHandlesAreNullWhenDetached) {
  ASSERT_EQ(obs::Default(), nullptr);
  EXPECT_EQ(obs::DefaultCounter("x"), nullptr);
  EXPECT_EQ(obs::DefaultGauge("x"), nullptr);
  EXPECT_EQ(obs::DefaultHistogram("x"), nullptr);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, ScopedSpanIsNoOpWhenDetached) {
  ASSERT_EQ(obs::DefaultTracer(), nullptr);
  {
    obs::ScopedSpan span("detached/none");
  }
  EXPECT_EQ(obs::CurrentSpanDepth(), 0u);
}

TEST(TraceTest, NestedSpansAggregateWithDepths) {
  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);
  for (int i = 0; i < 3; ++i) {
    obs::ScopedSpan outer("test/outer");
    EXPECT_EQ(obs::CurrentSpanDepth(), 1u);
    {
      obs::ScopedSpan inner("test/inner");
      EXPECT_EQ(obs::CurrentSpanDepth(), 2u);
    }
    {
      obs::ScopedSpan inner("test/inner");
    }
  }
  obs::SetDefaultTracer(nullptr);

  const auto agg = tracer.Aggregate();
  ASSERT_EQ(agg.count("test/outer"), 1u);
  ASSERT_EQ(agg.count("test/inner"), 1u);
  const obs::SpanStats& outer = agg.at("test/outer");
  const obs::SpanStats& inner = agg.at("test/inner");
  EXPECT_EQ(outer.count, 3u);
  EXPECT_EQ(inner.count, 6u);
  EXPECT_EQ(outer.depth, 1u);
  EXPECT_EQ(inner.depth, 2u);
  // Children run inside their parent, so their total cannot exceed it.
  EXPECT_LE(inner.total_us, outer.total_us);
  EXPECT_LE(outer.min_us, outer.max_us);
  EXPECT_EQ(tracer.dropped_records(), 0u);
}

TEST(TraceTest, MultiThreadedSpansAllCounted) {
  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::ScopedSpan span("test/mt");
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::SetDefaultTracer(nullptr);
  EXPECT_EQ(tracer.Aggregate().at("test/mt").count,
            static_cast<uint64_t>(kThreads) * kSpans);
}

TEST(TraceTest, RingOverflowCountsDroppedRecords) {
  obs::Tracer tracer(/*ring_capacity=*/8);
  obs::SetDefaultTracer(&tracer);
  for (int i = 0; i < 20; ++i) {
    obs::ScopedSpan span("test/overflow");
  }
  obs::SetDefaultTracer(nullptr);
  EXPECT_EQ(tracer.Aggregate().at("test/overflow").count, 8u);
  EXPECT_EQ(tracer.dropped_records(), 12u);
}

// ---------------------------------------------------------------------------
// JSON writer / parser

TEST(JsonTest, WriterPlacesCommasAndEscapes) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(uint64_t{1});
  w.Key("b").BeginArray().Value("x\"y\n").Value(2.5).Null().EndArray();
  w.Key("c").Value(true);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[\"x\\\"y\\n\",2.5,null],\"c\":true}");
}

TEST(JsonTest, WriterDegradesNonFiniteToNull) {
  obs::JsonWriter w;
  w.BeginArray().Value(std::nan("")).Value(1e308).EndArray();
  EXPECT_EQ(w.str().find("nan"), std::string::npos);
  EXPECT_NE(w.str().find("null"), std::string::npos);
}

TEST(JsonTest, ParseRoundTrip) {
  const char* text =
      "{\"name\":\"run\",\"n\":3,\"neg\":-2.5e2,\"ok\":true,"
      "\"none\":null,\"arr\":[1,2,3],\"obj\":{\"k\":\"v\"}}";
  auto parsed = obs::JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue& v = parsed.value();
  ASSERT_TRUE(v.IsObject());
  EXPECT_EQ(v.Find("name")->string_value, "run");
  EXPECT_DOUBLE_EQ(v.Find("n")->number, 3.0);
  EXPECT_DOUBLE_EQ(v.Find("neg")->number, -250.0);
  EXPECT_TRUE(v.Find("ok")->bool_value);
  EXPECT_EQ(v.Find("none")->type, obs::JsonValue::Type::kNull);
  ASSERT_EQ(v.Find("arr")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(v.Find("arr")->items[2].number, 3.0);
  EXPECT_EQ(v.Find("obj")->Find("k")->string_value, "v");
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::Parse("").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("[1] trailing").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("'single'").ok());
}

TEST(JsonTest, ParseUnicodeEscapes) {
  auto parsed = obs::JsonValue::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_value, "A\xc3\xa9");
}

TEST(JsonTest, ParseEscapedStrings) {
  auto parsed = obs::JsonValue::Parse(
      "{\"k\\\"ey\": \"a\\\\b\\n\\t\\\"c\\\"\"}");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->IsObject());
  const obs::JsonValue* v = parsed->Find("k\"ey");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string_value, "a\\b\n\t\"c\"");
  // An escape cut off by end-of-input must error, not read past the end.
  EXPECT_FALSE(obs::JsonValue::Parse("\"dangling\\").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"bad escape \\q\"").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonTest, ParseNestedEmptyContainers) {
  auto parsed = obs::JsonValue::Parse("{\"a\":[],\"b\":{},\"c\":[[],[{}]]}");
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->IsArray());
  EXPECT_TRUE(a->items.empty());
  const obs::JsonValue* b = parsed->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->IsObject());
  EXPECT_TRUE(b->members.empty());
  const obs::JsonValue* c = parsed->Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->items.size(), 2u);
  EXPECT_TRUE(c->items[0].items.empty());
  ASSERT_EQ(c->items[1].items.size(), 1u);
  EXPECT_TRUE(c->items[1].items[0].IsObject());
}

TEST(JsonTest, ParseRejectsNumericOverflow) {
  // strtod saturates these to inf; the parser must reject them because the
  // writer never emits non-finite numbers.
  EXPECT_FALSE(obs::JsonValue::Parse("1e400").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("-1e400").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("[1, 2, 1e999]").ok());
  // Large-but-finite still parses.
  auto big = obs::JsonValue::Parse("1e308");
  ASSERT_TRUE(big.ok());
  EXPECT_DOUBLE_EQ(big->number, 1e308);
}

TEST(JsonTest, ParseTruncatedDocumentsErrorNotCrash) {
  // Every prefix of a valid document is either an error or (rarely) a
  // shorter valid document; it must never crash or hang.
  const std::string doc =
      "{\"name\":\"run\",\"metrics\":{\"a\":1.5,\"b\":[1,2,3]},"
      "\"flag\":true,\"none\":null,\"esc\":\"x\\ny\\u0041\"}";
  for (size_t len = 0; len < doc.size(); ++len) {
    auto parsed = obs::JsonValue::Parse(doc.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix length " << len;
  }
  EXPECT_TRUE(obs::JsonValue::Parse(doc).ok());
}

TEST(JsonTest, ParseSurvivesSeededMutations) {
  // Fuzz-style sweep: mutate a valid report-shaped document with seeded
  // byte edits (overwrite / insert / delete) and require the parser to
  // either accept or reject cleanly — ASan/UBSan turn any overread into a
  // hard failure here.
  const std::string doc =
      "{\"schema_version\":1,\"name\":\"bench\",\"meta\":{\"seed\":\"42\"},"
      "\"metrics\":{\"ms\":12.25,\"items\":[1,2.5e3,-4]},"
      "\"counters\":{\"fault.injected\":7},\"spans\":{},"
      "\"tables\":[{\"name\":\"t\",\"columns\":[\"a\"],\"rows\":[[\"1\"]]}]}";
  ASSERT_TRUE(obs::JsonValue::Parse(doc).ok());

  Rng rng(0xfa57'f00dULL);
  const char alphabet[] = "{}[]\",:.0123456789eE+-\\untrlfase \x01\x7f";
  size_t accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = doc;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      const char c = alphabet[rng.Uniform(sizeof(alphabet) - 1)];
      const size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = c;
          break;
        case 1:
          mutated.insert(mutated.begin() + pos, c);
          break;
        default:
          mutated.erase(mutated.begin() + pos);
          break;
      }
    }
    auto parsed = obs::JsonValue::Parse(mutated);
    accepted += parsed.ok();
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.status().message().empty());
    }
  }
  // Sanity: most random mutations break the document.
  EXPECT_LT(accepted, 2000u / 2);
}

// ---------------------------------------------------------------------------
// RunReport

TEST(RunReportTest, JsonFileRoundTrip) {
  obs::MetricsRegistry registry;
  registry.GetCounter("comm.remote_reads")->Add(123);
  registry.GetGauge("cluster.workers")->Set(4);
  registry.GetHistogram("lat", obs::LatencyBoundsUs())->Record(50.0);

  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);
  {
    obs::ScopedSpan span("report/phase");
  }
  obs::SetDefaultTracer(nullptr);

  obs::RunReport report("test_report");
  report.AddMeta("dataset", "synthetic");
  report.AddMeta("scale", 0.5);
  report.AddMetric("headline_ms", 12.25);
  report.AddTable("t", {"col_a", "col_b"});
  report.AddRow({"1", "x"});
  report.AddRow({"2", "y"});
  report.AttachMetrics(registry.Snapshot());
  report.AttachSpans(tracer.Aggregate());

  const std::string dir = ::testing::TempDir() + "/obs_report_test";
  std::string path;
  ASSERT_TRUE(report.WriteFile(dir, &path).ok());
  EXPECT_EQ(path, dir + "/test_report.json");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& v = parsed.value();

  EXPECT_DOUBLE_EQ(v.Find("schema_version")->number, 1.0);
  EXPECT_EQ(v.Find("name")->string_value, "test_report");
  EXPECT_EQ(v.Find("meta")->Find("dataset")->string_value, "synthetic");
  EXPECT_DOUBLE_EQ(v.Find("meta")->Find("scale")->number, 0.5);
  EXPECT_DOUBLE_EQ(v.Find("metrics")->Find("headline_ms")->number, 12.25);
  EXPECT_DOUBLE_EQ(v.Find("counters")->Find("comm.remote_reads")->number,
                   123.0);
  EXPECT_DOUBLE_EQ(v.Find("gauges")->Find("cluster.workers")->number, 4.0);

  const obs::JsonValue* hist = v.Find("histograms")->Find("lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number, 50.0);
  EXPECT_EQ(hist->Find("bounds")->items.size(),
            hist->Find("counts")->items.size() - 1);

  const obs::JsonValue* span = v.Find("spans")->Find("report/phase");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->Find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(span->Find("depth")->number, 1.0);

  const obs::JsonValue* tables = v.Find("tables");
  ASSERT_TRUE(tables->IsArray());
  ASSERT_EQ(tables->items.size(), 1u);
  EXPECT_EQ(tables->items[0].Find("name")->string_value, "t");
  EXPECT_EQ(tables->items[0].Find("columns")->items[1].string_value, "col_b");
  EXPECT_EQ(tables->items[0].Find("rows")->items[1].items[1].string_value,
            "y");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Cluster comm counters vs CommStats

TEST(ObsIntegrationTest, CommCountersMatchSnapshotDelta) {
  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);

  gen::ChungLuConfig cfg;
  cfg.num_vertices = 1200;
  cfg.avg_degree = 6;
  cfg.seed = 17;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  cluster.InstallTopImportanceCache(/*k=*/1, 0.1);

  CommStats stats;
  const CommStats::Snapshot before = stats.snapshot();

  // Per-vertex reads from every worker touch local, cached and remote paths.
  for (VertexId v = 0; v < g.num_vertices(); v += 7) {
    cluster.GetNeighbors(static_cast<WorkerId>(v % 3), v, &stats);
  }
  // Batched reads exercise the coalesced pipeline counters.
  {
    DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
    std::vector<VertexId> batch;
    for (VertexId v = 0; v < 200; ++v) batch.push_back(v);
    BatchResult out;
    source.NeighborsBatch(batch, NeighborhoodSampler::kAllEdgeTypes, &out);
    ASSERT_EQ(out.size(), batch.size());
  }

  obs::SetDefault(nullptr);

  const CommStats::Snapshot delta = stats.snapshot().Delta(before);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("comm.local_reads"), delta.local_reads);
  EXPECT_EQ(snap.counters.at("comm.cache_hits"), delta.cache_hits);
  EXPECT_EQ(snap.counters.at("comm.remote_reads"), delta.remote_reads);
  EXPECT_EQ(snap.counters.at("comm.remote_batches"), delta.remote_batches);
  EXPECT_EQ(snap.counters.at("comm.batched_remote_reads"),
            delta.batched_remote_reads);
  EXPECT_GT(delta.TotalReads(), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("cluster.workers"), 3.0);
}

TEST(ObsIntegrationTest, ExportToMirrorsSnapshotFields) {
  obs::MetricsRegistry registry;
  CommStats::Snapshot s;
  s.local_reads = 10;
  s.cache_hits = 20;
  s.remote_reads = 30;
  s.remote_batches = 4;
  s.batched_remote_reads = 25;
  s.ExportTo(registry, "phase1");
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("phase1.local_reads"), 10u);
  EXPECT_EQ(snap.counters.at("phase1.cache_hits"), 20u);
  EXPECT_EQ(snap.counters.at("phase1.remote_reads"), 30u);
  EXPECT_EQ(snap.counters.at("phase1.remote_batches"), 4u);
  EXPECT_EQ(snap.counters.at("phase1.batched_remote_reads"), 25u);
}

TEST(ObsIntegrationTest, SamplerRecordsHopHistogramsWhenAttached) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::SetDefault(&registry);
  obs::SetDefaultTracer(&tracer);

  gen::ChungLuConfig cfg;
  cfg.num_vertices = 800;
  cfg.avg_degree = 8;
  cfg.seed = 5;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  std::vector<VertexId> roots{1, 2, 3, 4};
  const std::vector<uint32_t> fans{4, 2};
  sampler.Sample(source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  obs::SetDefaultTracer(nullptr);
  obs::SetDefault(nullptr);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.histograms.at("sample.hop_latency_us").count, 2u);
  EXPECT_EQ(snap.histograms.at("sample.frontier_size").count, 2u);
  const auto agg = tracer.Aggregate();
  EXPECT_EQ(agg.at("sample/neighborhood").count, 1u);
  EXPECT_EQ(agg.at("sample/hop0").count, 1u);
  EXPECT_EQ(agg.at("sample/hop1").count, 1u);
  // Hop spans nest inside the whole-call span.
  EXPECT_EQ(agg.at("sample/hop0").depth, 2u);
}

}  // namespace
}  // namespace aligraph
