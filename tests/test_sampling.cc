// Tests for the sampling layer: TRAVERSE, NEIGHBORHOOD, NEGATIVE samplers
// and dynamic-weight sampling.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <unordered_map>
#include <vector>

#include "gen/taobao.h"
#include "graph/graph.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

// Star graph: 0 -> {1..4} with increasing weights, plus 5 isolated.
AttributedGraph MakeStar() {
  GraphBuilder gb;
  for (int i = 0; i < 6; ++i) gb.AddVertex();
  for (VertexId v = 1; v <= 4; ++v) {
    EXPECT_TRUE(gb.AddEdge(0, v, 0, static_cast<float>(v)).ok());
  }
  return std::move(gb.Build()).value();
}

TEST(TraverseSamplerTest, SamplesFromPoolOnly) {
  TraverseSampler sampler({10, 20, 30});
  const auto batch = sampler.Sample(100);
  ASSERT_EQ(batch.size(), 100u);
  for (VertexId v : batch) {
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(TraverseSamplerTest, EmptyPoolYieldsEmptyBatch) {
  TraverseSampler sampler({});
  EXPECT_TRUE(sampler.Sample(10).empty());
}

TEST(TraverseSamplerTest, RoughlyUniform) {
  TraverseSampler sampler({0, 1, 2, 3});
  std::unordered_map<VertexId, int> counts;
  for (VertexId v : sampler.Sample(40000)) ++counts[v];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
  }
}

TEST(TraverseSamplerTest, SampleEdgesReturnsRealEdges) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  std::vector<VertexId> pool(g.num_vertices());
  std::iota(pool.begin(), pool.end(), 0);
  TraverseSampler sampler(pool);
  const auto edges = sampler.SampleEdges(source, 0, 50);
  EXPECT_FALSE(edges.empty());
  for (const auto& [src, nb] : edges) {
    EXPECT_EQ(src, 0u);  // only vertex 0 has out-edges
    EXPECT_GE(nb.dst, 1u);
    EXPECT_LE(nb.dst, 4u);
  }
}

TEST(NeighborhoodSamplerTest, ShapesAreAligned) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{0, 0, 5};
  const std::vector<uint32_t> fans{3, 2};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  ASSERT_EQ(sample.hops.size(), 2u);
  EXPECT_EQ(sample.hops[0].size(), roots.size() * 3);
  EXPECT_EQ(sample.hops[1].size(), roots.size() * 3 * 2);
}

TEST(NeighborhoodSamplerTest, IsolatedVertexFallsBackToSelf) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{5};
  const std::vector<uint32_t> fans{4};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  for (VertexId v : sample.hops[0]) EXPECT_EQ(v, 5u);
}

TEST(NeighborhoodSamplerTest, SampledVerticesAreNeighbors) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{16};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  for (VertexId v : sample.hops[0]) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
  }
}

TEST(NeighborhoodSamplerTest, WeightedPrefersHeavyEdges) {
  const AttributedGraph g = MakeStar();  // weight of 0->4 is 4x that of 0->1
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler(NeighborStrategy::kWeighted);
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{4000};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  size_t heavy = 0, light = 0;
  for (VertexId v : sample.hops[0]) {
    if (v == 4) ++heavy;
    if (v == 1) ++light;
  }
  EXPECT_GT(heavy, light * 2);
}

TEST(NeighborhoodSamplerTest, TopKIsDeterministicHeaviest) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler(NeighborStrategy::kTopK);
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{2};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  // Ranks 0 and 1 of the weights {1,2,3,4} are vertices 4 and 3.
  std::multiset<VertexId> got(sample.hops[0].begin(), sample.hops[0].end());
  EXPECT_TRUE(got.count(4));
  EXPECT_TRUE(got.count(3));
}

TEST(NeighborhoodSamplerTest, TypeRestrictedSampling) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  LocalNeighborSource source(taobao);
  // Find a user with click edges.
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < taobao.num_vertices(); ++v) {
    if (!taobao.OutNeighbors(v, click).empty()) {
      root = v;
      break;
    }
  }
  ASSERT_NE(root, kInvalidVertex);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{root};
  const std::vector<uint32_t> fans{8};
  const auto sample = sampler.Sample(source, roots, click, fans);
  std::set<VertexId> click_targets;
  for (const Neighbor& nb : taobao.OutNeighbors(root, click)) {
    click_targets.insert(nb.dst);
  }
  for (VertexId v : sample.hops[0]) {
    EXPECT_TRUE(click_targets.count(v)) << v;
  }
}

TEST(NegativeSamplerTest, ExcludesPositive) {
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {1, 2, 3, 4});
  for (int i = 0; i < 50; ++i) {
    for (VertexId v : sampler.Sample(3, 2)) EXPECT_NE(v, 2u);
  }
}

TEST(NegativeSamplerTest, DegreeBiased) {
  // Vertex 0 of the star has degree 4 + in 0; vertices 1..4 have in-degree
  // 1. With power 0.75, 0 should be sampled most often.
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {0, 1, 2, 3, 4, 5});
  std::unordered_map<VertexId, int> counts;
  for (VertexId v : sampler.Sample(20000, kInvalidVertex)) ++counts[v];
  EXPECT_GT(counts[0], counts[5]);
}

TEST(NegativeSamplerTest, EmptyCandidatesSafe) {
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {});
  EXPECT_TRUE(sampler.Sample(5, 0).empty());
}

TEST(DynamicWeightedSamplerTest, InitialDistributionFollowsWeights) {
  DynamicWeightedSampler sampler({10, 11}, {1.0, 9.0}, 16);
  int heavy = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample() == 11) ++heavy;
  }
  EXPECT_NEAR(heavy / 10000.0, 0.9, 0.03);
}

TEST(DynamicWeightedSamplerTest, BackwardUpdateShiftsDistribution) {
  DynamicWeightedSampler sampler({10, 11}, {1.0, 1.0}, /*rebuild_every=*/1);
  sampler.Update(11, 9.0);  // w(11) = 10
  EXPECT_DOUBLE_EQ(sampler.WeightOf(11), 10.0);
  int heavy = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample() == 11) ++heavy;
  }
  EXPECT_GT(heavy, 8500);
}

TEST(DynamicWeightedSamplerTest, WeightsClampedAtZero) {
  DynamicWeightedSampler sampler({1, 2}, {1.0, 1.0}, 1);
  sampler.Update(1, -5.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(1), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(), 2u);
}

TEST(DynamicWeightedSamplerTest, LazyRebuildBatchesUpdates) {
  DynamicWeightedSampler sampler({1, 2}, {1.0, 1.0}, /*rebuild_every=*/10);
  for (int i = 0; i < 9; ++i) sampler.Update(2, 1.0);
  EXPECT_EQ(sampler.updates_since_rebuild(), 9u);
  sampler.Update(2, 1.0);  // triggers rebuild
  EXPECT_EQ(sampler.updates_since_rebuild(), 0u);
}

TEST(DynamicWeightedSamplerTest, UnknownVertexUpdateIgnored) {
  DynamicWeightedSampler sampler({1}, {1.0}, 1);
  sampler.Update(99, 5.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(99), 0.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(1), 1.0);
}

}  // namespace
}  // namespace aligraph
