// Tests for the sampling layer: TRAVERSE, NEIGHBORHOOD, NEGATIVE samplers
// and dynamic-weight sampling.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/threadpool.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "graph/graph.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

// Star graph: 0 -> {1..4} with increasing weights, plus 5 isolated.
AttributedGraph MakeStar() {
  GraphBuilder gb;
  for (int i = 0; i < 6; ++i) gb.AddVertex();
  for (VertexId v = 1; v <= 4; ++v) {
    EXPECT_TRUE(gb.AddEdge(0, v, 0, static_cast<float>(v)).ok());
  }
  return std::move(gb.Build()).value();
}

TEST(TraverseSamplerTest, SamplesFromPoolOnly) {
  TraverseSampler sampler({10, 20, 30});
  const auto batch = sampler.Sample(100);
  ASSERT_EQ(batch.size(), 100u);
  for (VertexId v : batch) {
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(TraverseSamplerTest, EmptyPoolYieldsEmptyBatch) {
  TraverseSampler sampler({});
  EXPECT_TRUE(sampler.Sample(10).empty());
}

TEST(TraverseSamplerTest, RoughlyUniform) {
  TraverseSampler sampler({0, 1, 2, 3});
  std::unordered_map<VertexId, int> counts;
  for (VertexId v : sampler.Sample(40000)) ++counts[v];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
  }
}

TEST(TraverseSamplerTest, SampleEdgesReturnsRealEdges) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  std::vector<VertexId> pool(g.num_vertices());
  std::iota(pool.begin(), pool.end(), 0);
  TraverseSampler sampler(pool);
  const auto edges = sampler.SampleEdges(source, 0, 50);
  EXPECT_FALSE(edges.empty());
  for (const auto& [src, nb] : edges) {
    EXPECT_EQ(src, 0u);  // only vertex 0 has out-edges
    EXPECT_GE(nb.dst, 1u);
    EXPECT_LE(nb.dst, 4u);
  }
}

TEST(NeighborhoodSamplerTest, ShapesAreAligned) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{0, 0, 5};
  const std::vector<uint32_t> fans{3, 2};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  ASSERT_EQ(sample.hops.size(), 2u);
  EXPECT_EQ(sample.hops[0].size(), roots.size() * 3);
  EXPECT_EQ(sample.hops[1].size(), roots.size() * 3 * 2);
}

TEST(NeighborhoodSamplerTest, IsolatedVertexFallsBackToSelf) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{5};
  const std::vector<uint32_t> fans{4};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  for (VertexId v : sample.hops[0]) EXPECT_EQ(v, 5u);
}

TEST(NeighborhoodSamplerTest, SampledVerticesAreNeighbors) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{16};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  for (VertexId v : sample.hops[0]) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u);
  }
}

TEST(NeighborhoodSamplerTest, WeightedPrefersHeavyEdges) {
  const AttributedGraph g = MakeStar();  // weight of 0->4 is 4x that of 0->1
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler(NeighborStrategy::kWeighted);
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{4000};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  size_t heavy = 0, light = 0;
  for (VertexId v : sample.hops[0]) {
    if (v == 4) ++heavy;
    if (v == 1) ++light;
  }
  EXPECT_GT(heavy, light * 2);
}

TEST(NeighborhoodSamplerTest, TopKIsDeterministicHeaviest) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  NeighborhoodSampler sampler(NeighborStrategy::kTopK);
  const std::vector<VertexId> roots{0};
  const std::vector<uint32_t> fans{2};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  // Ranks 0 and 1 of the weights {1,2,3,4} are vertices 4 and 3.
  std::multiset<VertexId> got(sample.hops[0].begin(), sample.hops[0].end());
  EXPECT_TRUE(got.count(4));
  EXPECT_TRUE(got.count(3));
}

TEST(NeighborhoodSamplerTest, TypeRestrictedSampling) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  LocalNeighborSource source(taobao);
  // Find a user with click edges.
  VertexId root = kInvalidVertex;
  for (VertexId v = 0; v < taobao.num_vertices(); ++v) {
    if (!taobao.OutNeighbors(v, click).empty()) {
      root = v;
      break;
    }
  }
  ASSERT_NE(root, kInvalidVertex);
  NeighborhoodSampler sampler;
  const std::vector<VertexId> roots{root};
  const std::vector<uint32_t> fans{8};
  const auto sample = sampler.Sample(source, roots, click, fans);
  std::set<VertexId> click_targets;
  for (const Neighbor& nb : taobao.OutNeighbors(root, click)) {
    click_targets.insert(nb.dst);
  }
  for (VertexId v : sample.hops[0]) {
    EXPECT_TRUE(click_targets.count(v)) << v;
  }
}

TEST(NegativeSamplerTest, ExcludesPositive) {
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {1, 2, 3, 4});
  for (int i = 0; i < 50; ++i) {
    for (VertexId v : sampler.Sample(3, 2)) EXPECT_NE(v, 2u);
  }
}

TEST(NegativeSamplerTest, DegreeBiased) {
  // Vertex 0 of the star has degree 4 + in 0; vertices 1..4 have in-degree
  // 1. With power 0.75, 0 should be sampled most often.
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {0, 1, 2, 3, 4, 5});
  std::unordered_map<VertexId, int> counts;
  for (VertexId v : sampler.Sample(20000, kInvalidVertex)) ++counts[v];
  EXPECT_GT(counts[0], counts[5]);
}

TEST(NegativeSamplerTest, EmptyCandidatesSafe) {
  const AttributedGraph g = MakeStar();
  NegativeSampler sampler(g, {});
  EXPECT_TRUE(sampler.Sample(5, 0).empty());
}

TEST(DynamicWeightedSamplerTest, InitialDistributionFollowsWeights) {
  DynamicWeightedSampler sampler({10, 11}, {1.0, 9.0}, 16);
  int heavy = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample() == 11) ++heavy;
  }
  EXPECT_NEAR(heavy / 10000.0, 0.9, 0.03);
}

TEST(DynamicWeightedSamplerTest, BackwardUpdateShiftsDistribution) {
  DynamicWeightedSampler sampler({10, 11}, {1.0, 1.0}, /*rebuild_every=*/1);
  sampler.Update(11, 9.0);  // w(11) = 10
  EXPECT_DOUBLE_EQ(sampler.WeightOf(11), 10.0);
  int heavy = 0;
  for (int i = 0; i < 10000; ++i) {
    if (sampler.Sample() == 11) ++heavy;
  }
  EXPECT_GT(heavy, 8500);
}

TEST(DynamicWeightedSamplerTest, WeightsClampedAtZero) {
  DynamicWeightedSampler sampler({1, 2}, {1.0, 1.0}, 1);
  sampler.Update(1, -5.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(1), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(), 2u);
}

TEST(DynamicWeightedSamplerTest, LazyRebuildBatchesUpdates) {
  DynamicWeightedSampler sampler({1, 2}, {1.0, 1.0}, /*rebuild_every=*/10);
  for (int i = 0; i < 9; ++i) sampler.Update(2, 1.0);
  EXPECT_EQ(sampler.updates_since_rebuild(), 9u);
  sampler.Update(2, 1.0);  // triggers rebuild
  EXPECT_EQ(sampler.updates_since_rebuild(), 0u);
}

TEST(DynamicWeightedSamplerTest, UnknownVertexUpdateIgnored) {
  DynamicWeightedSampler sampler({1}, {1.0}, 1);
  sampler.Update(99, 5.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(99), 0.0);
  EXPECT_DOUBLE_EQ(sampler.WeightOf(1), 1.0);
}

// ---------------------------------------------------------------------------
// Batched neighbor access through the sampling layer.

AttributedGraph MakeClusterGraph(VertexId n) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = n;
  cfg.avg_degree = 8;
  cfg.seed = 21;
  return std::move(gen::ChungLu(cfg)).value();
}

TEST(NeighborSourceTest, LocalBatchMatchesPerVertex) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource source(g);
  const std::vector<VertexId> vertices{0, 5, 0, 3};
  BatchResult batch;
  source.NeighborsBatch(vertices, kAllEdgeTypes, &batch);
  ASSERT_EQ(batch.size(), vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    const auto want = source.Neighbors(vertices[i]);
    ASSERT_EQ(batch[i].size(), want.size());
    EXPECT_TRUE(batch[i].empty() ||
                std::memcmp(batch[i].data(), want.data(),
                            want.size() * sizeof(Neighbor)) == 0);
  }
}

TEST(NeighborSourceTest, PerVertexAdapterFallsBackToDefaultBatch) {
  const AttributedGraph g = MakeStar();
  LocalNeighborSource local(g);
  PerVertexNeighborSource adapter(local);
  const std::vector<VertexId> vertices{0, 1, 5};
  BatchResult batch;
  adapter.NeighborsBatch(vertices, kAllEdgeTypes, &batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].size(), 4u);
  EXPECT_EQ(batch[1].size(), 0u);
  EXPECT_EQ(batch[2].size(), 0u);
}

TEST(NeighborhoodSamplerTest, ThreadPoolPathKeepsShapesAndValidity) {
  const AttributedGraph g = MakeClusterGraph(800);
  LocalNeighborSource source(g);
  ThreadPool pool(4);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, 42);
  std::vector<VertexId> roots(64);
  std::iota(roots.begin(), roots.end(), 0);
  const std::vector<uint32_t> fans{6, 3};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans, &pool);
  ASSERT_EQ(sample.hops.size(), 2u);
  ASSERT_EQ(sample.hops[0].size(), roots.size() * 6);
  ASSERT_EQ(sample.hops[1].size(), roots.size() * 6 * 3);
  // Every hop-1 draw is a real neighbor of its root (or the fallback self).
  for (size_t i = 0; i < roots.size(); ++i) {
    std::set<VertexId> nbrs;
    for (const Neighbor& nb : g.OutNeighbors(roots[i])) nbrs.insert(nb.dst);
    for (uint32_t j = 0; j < 6; ++j) {
      const VertexId u = sample.hops[0][i * 6 + j];
      EXPECT_TRUE(u == roots[i] || nbrs.count(u)) << "root " << roots[i];
    }
  }
}

TEST(NeighborhoodSamplerTest, ThreadPoolPathIsDeterministicPerSeed) {
  const AttributedGraph g = MakeClusterGraph(500);
  LocalNeighborSource source(g);
  ThreadPool pool(4);
  std::vector<VertexId> roots(32);
  std::iota(roots.begin(), roots.end(), 0);
  const std::vector<uint32_t> fans{5, 4};
  NeighborhoodSampler a(NeighborStrategy::kUniform, 7);
  NeighborhoodSampler b(NeighborStrategy::kUniform, 7);
  const auto sa = a.Sample(source, roots, NeighborhoodSampler::kAllEdgeTypes,
                           fans, &pool);
  const auto sb = b.Sample(source, roots, NeighborhoodSampler::kAllEdgeTypes,
                           fans, &pool);
  EXPECT_EQ(sa.hops[0], sb.hops[0]);
  EXPECT_EQ(sa.hops[1], sb.hops[1]);
}

TEST(NeighborhoodSamplerTest, DistributedBatchedMatchesGraphData) {
  const AttributedGraph g = MakeClusterGraph(1200);
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, 13);
  std::vector<VertexId> roots(100);
  std::iota(roots.begin(), roots.end(), 0);
  const std::vector<uint32_t> fans{4};
  const auto sample = sampler.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  for (size_t i = 0; i < roots.size(); ++i) {
    std::set<VertexId> nbrs;
    for (const Neighbor& nb : g.OutNeighbors(roots[i])) nbrs.insert(nb.dst);
    for (uint32_t j = 0; j < 4; ++j) {
      const VertexId u = sample.hops[0][i * 4 + j];
      EXPECT_TRUE(u == roots[i] || nbrs.count(u));
    }
  }
  // One NeighborsBatch per hop: the remote residue coalesced to at most
  // num_workers - 1 requests.
  EXPECT_LE(stats.remote_batches.load(), 2u);
  EXPECT_GT(stats.remote_reads.load(), 0u);
}

// Acceptance criteria of the batched-pipeline refactor: a 2-hop
// NEIGHBORHOOD sample (batch 512, fan-out 10x10) on a 4-worker cluster with
// no cache must coalesce remote reads into >= 50x fewer messages, and the
// modeled time must beat the per-vertex path by >= 5x at default latencies.
TEST(BatchedPipelineTest, CoalescingBeatsPerVertexByModeledTime) {
  const AttributedGraph g = MakeClusterGraph(4000);
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();

  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  TraverseSampler traverse(all, 3);
  const auto seeds = traverse.Sample(512);
  const std::vector<uint32_t> fans{10, 10};

  CommStats batched_stats;
  {
    DistributedNeighborSource source(cluster, 0, &batched_stats);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, 5);
    hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  }
  CommStats pv_stats;
  {
    DistributedNeighborSource inner(cluster, 0, &pv_stats);
    PerVertexNeighborSource source(inner);
    NeighborhoodSampler hood(NeighborStrategy::kUniform, 5);
    hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  }

  // The batched path coalesced: 2 hops x <= 3 non-local workers, against
  // thousands of remote reads.
  const uint64_t batches = batched_stats.remote_batches.load();
  const uint64_t remote = batched_stats.remote_reads.load();
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, 2u * 3u);
  EXPECT_GE(remote, 50u * batches);
  EXPECT_EQ(batched_stats.batched_remote_reads.load(), remote);
  // The per-vertex path batched nothing.
  EXPECT_EQ(pv_stats.remote_batches.load(), 0u);
  EXPECT_EQ(pv_stats.batched_remote_reads.load(), 0u);

  const CommModel model;  // default latencies
  const double batched_ms = model.ModeledMillis(batched_stats);
  const double pv_ms = model.ModeledMillis(pv_stats);
  EXPECT_GE(pv_ms, 5.0 * batched_ms)
      << "batched=" << batched_ms << "ms per-vertex=" << pv_ms << "ms";
}

}  // namespace
}  // namespace aligraph
