// Tests for the 3-stage block pipeline: BoundedQueue handoff semantics,
// bit-identity of pipelined execution against the sequential block path
// (direct BlockPipeline differential and end-to-end GraphSAGE training
// across depths and batch counts), a slow-stage stress run that forces the
// queue-full and queue-empty edges (the TSan target), and the exported
// metrics / per-batch causal trace trees.

#include <gtest/gtest.h>

#include <any>
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "algo/gnn.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "gen/taobao.h"
#include "graph/graph.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "ops/hop_cache.h"
#include "pipeline/block_pipeline.h"
#include "pipeline/bounded_queue.h"
#include "proptest.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

::testing::AssertionResult BitEqual(const nn::Matrix& a,
                                    const nn::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (a.empty()) return ::testing::AssertionSuccess();
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure() << "matrices differ bitwise";
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// BoundedQueue semantics.

TEST(BoundedQueueTest, FifoOrderAndCloseDrains) {
  pipeline::BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  q.Close();
  EXPECT_FALSE(q.Push(4));  // rejected after Close
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);  // queued items stay poppable after Close...
  EXPECT_FALSE(q.Pop(&v));  // ...then the queue reports drained
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPop) {
  pipeline::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(3));  // must block: queue is at capacity
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // still blocked
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 3);
}

TEST(BoundedQueueTest, CloseWakesBlockedWaiters) {
  pipeline::BoundedQueue<int> q(1);
  std::thread consumer([&] {
    int v = 0;
    EXPECT_FALSE(q.Pop(&v));  // blocked on empty, then woken by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// Direct BlockPipeline differential: the pipelined run must produce the
// exact blocks and gathered feature matrices of the sequential stage
// sequence — across queue depths and batch counts, including an
// empty-roots batch (which the compute stage must see untouched).

struct BatchCapture {
  std::vector<VertexId> globals;
  nn::Matrix features;
};

std::vector<BatchCapture> RunSequential(
    const AttributedGraph& graph, const nn::Matrix& features,
    uint64_t draw_seed, const std::vector<std::vector<VertexId>>& roots,
    std::span<const uint32_t> fans, bool use_row_cache) {
  LocalNeighborSource source(graph);
  block::MatrixFeatureSource feature_source(features);
  ops::HopEmbeddingCache cache(features.cols());
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
  std::vector<BatchCapture> out(roots.size());
  for (size_t b = 0; b < roots.size(); ++b) {
    const block::SampledBlock blk = sampler.SampleBlock(
        source, roots[b], NeighborhoodSampler::kAllEdgeTypes, fans);
    out[b].globals.assign(blk.globals().begin(), blk.globals().end());
    out[b].features = block::GatherBlockFeatures(
        blk, feature_source, use_row_cache ? &cache : nullptr);
  }
  return out;
}

std::vector<BatchCapture> RunPipelined(
    const AttributedGraph& graph, const nn::Matrix& features,
    uint64_t draw_seed, const std::vector<std::vector<VertexId>>& roots,
    std::span<const uint32_t> fans, bool use_row_cache, size_t depth) {
  LocalNeighborSource source(graph);
  block::MatrixFeatureSource feature_source(features);
  ops::HopEmbeddingCache cache(features.cols());
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
  std::vector<BatchCapture> out(roots.size());
  pipeline::BlockPipeline pipe({depth});
  const Status run = pipe.Run(
      sampler, source, NeighborhoodSampler::kAllEdgeTypes, fans, roots.size(),
      [&](size_t b, std::any*) { return roots[b]; },
      [&](const block::SampledBlock& blk) {
        return block::GatherBlockFeatures(blk, feature_source,
                                          use_row_cache ? &cache : nullptr);
      },
      [&](size_t b, const block::SampledBlock& blk, const nn::Matrix& x,
          std::any&) {
        out[b].globals.assign(blk.globals().begin(), blk.globals().end());
        out[b].features = x;
      });
  EXPECT_TRUE(run.ok()) << run.ToString();
  return out;
}

ALIGRAPH_PROP(BlockPipelineProps, MatchesSequentialAcrossDepths, 6) {
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  const size_t d = 1 + ctx.rng.Uniform(16);
  nn::Matrix features(graph.num_vertices(), d);
  for (size_t i = 0; i < features.size(); ++i) {
    features.data()[i] = ctx.rng.NextFloat();
  }
  const std::vector<uint32_t> fans{
      static_cast<uint32_t>(1 + ctx.rng.Uniform(4)),
      static_cast<uint32_t>(1 + ctx.rng.Uniform(3))};
  const size_t num_batches = 1 + ctx.rng.Uniform(9);
  std::vector<std::vector<VertexId>> roots(num_batches);
  for (auto& r : roots) {
    r.resize(1 + ctx.rng.Uniform(12));
    for (auto& v : r) {
      v = static_cast<VertexId>(ctx.rng.Uniform(graph.num_vertices()));
    }
  }
  // One batch with no roots: the sequential loop's `continue` case.
  if (num_batches > 2) roots[num_batches / 2].clear();

  const uint64_t draw_seed = ctx.rng.Next();
  const bool use_row_cache = ctx.rng.Uniform(2) == 0;
  const auto seq = RunSequential(graph, features, draw_seed, roots, fans,
                                 use_row_cache);
  for (const size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    const auto piped = RunPipelined(graph, features, draw_seed, roots, fans,
                                    use_row_cache, depth);
    ASSERT_EQ(piped.size(), seq.size());
    for (size_t b = 0; b < seq.size(); ++b) {
      EXPECT_EQ(piped[b].globals, seq[b].globals) << "batch " << b;
      EXPECT_TRUE(BitEqual(piped[b].features, seq[b].features))
          << "batch " << b << " depth " << depth;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end GraphSAGE: pipeline_depth toggles the pipelined trainer +
// inference; embeddings must stay bit-identical to the sequential block
// path for every depth, with weight updates and the feature-row cache in
// the loop.

TEST(BlockPipelineTest, GraphSageBitIdenticalAcrossPipelineDepths) {
  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  algo::GnnConfig config;
  config.dim = 8;
  config.feature_dim = 8;
  config.fanout1 = 3;
  config.fanout2 = 2;
  config.epochs = 1;
  config.batch_size = 8;
  config.batches_per_epoch = 3;
  config.seed = 77;
  config.use_blocks = true;

  config.pipeline_depth = 0;
  const nn::Matrix sequential =
      std::move(algo::GraphSage(config).Embed(graph)).value();
  for (const size_t depth : {size_t{1}, size_t{2}, size_t{3}}) {
    config.pipeline_depth = depth;
    // A live registry proves the depth knob really dispatches to the
    // pipelined trainer/inference (the differential would pass vacuously
    // if both sides took the sequential loop).
    obs::MetricsRegistry registry;
    obs::SetDefault(&registry);
    const nn::Matrix piped =
        std::move(algo::GraphSage(config).Embed(graph)).value();
    obs::SetDefault(nullptr);
    EXPECT_TRUE(BitEqual(sequential, piped)) << "pipeline_depth " << depth;
    EXPECT_GE(registry.GetCounter("pipeline.batches")->Value(),
              config.epochs * config.batches_per_epoch)
        << "pipeline_depth " << depth << " did not take the pipelined path";
  }
}

TEST(BlockPipelineTest, GraphSageMaxpoolPipelined) {
  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  algo::GnnConfig config;
  config.dim = 8;
  config.feature_dim = 8;
  config.fanout1 = 3;
  config.fanout2 = 2;
  config.epochs = 1;
  config.batch_size = 8;
  config.batches_per_epoch = 2;
  config.seed = 13;
  config.aggregator = "maxpool";
  config.use_blocks = true;

  config.pipeline_depth = 0;
  const nn::Matrix sequential =
      std::move(algo::GraphSage(config).Embed(graph)).value();
  config.pipeline_depth = 2;
  const nn::Matrix piped = std::move(algo::GraphSage(config).Embed(graph)).value();
  EXPECT_TRUE(BitEqual(sequential, piped));
}

// ---------------------------------------------------------------------------
// Stress: a feature source that alternates between slow and instant
// gathers drives both backpressure edges — slow gathers fill the sampled
// queue until the sample stage blocks on Push, fast stretches drain the
// gathered queue until the compute stage blocks on Pop. Run under TSan in
// CI; the differential still demands bit-identity at the end.

class SlowFeatureSource : public block::FeatureSource {
 public:
  SlowFeatureSource(const nn::Matrix& matrix, int slow_every)
      : inner_(matrix), slow_every_(slow_every) {}

  size_t dim() const override { return inner_.dim(); }
  Status Gather(std::span<const VertexId> vertices, nn::Matrix* out,
                std::vector<uint8_t>* ok = nullptr) override {
    if (slow_every_ > 0 && ++calls_ % slow_every_ == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    return inner_.Gather(vertices, out, ok);
  }

 private:
  block::MatrixFeatureSource inner_;
  const int slow_every_;
  int calls_ = 0;  // gather-lane only: single-threaded by construction
};

TEST(BlockPipelineTest, StressSlowGatherForcesQueueEdges) {
  proptest::PropContext ctx(/*seed=*/1234);
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  const size_t d = 8;
  nn::Matrix features(graph.num_vertices(), d);
  for (size_t i = 0; i < features.size(); ++i) {
    features.data()[i] = ctx.rng.NextFloat();
  }
  const std::vector<uint32_t> fans{3, 2};
  const size_t num_batches = 16;
  std::vector<std::vector<VertexId>> roots(num_batches);
  for (auto& r : roots) {
    r.resize(8);
    for (auto& v : r) {
      v = static_cast<VertexId>(ctx.rng.Uniform(graph.num_vertices()));
    }
  }
  const uint64_t draw_seed = 99;

  const auto seq =
      RunSequential(graph, features, draw_seed, roots, fans, false);

  LocalNeighborSource source(graph);
  SlowFeatureSource slow(features, /*slow_every=*/2);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, draw_seed);
  std::vector<BatchCapture> out(num_batches);
  // Depth 1 narrows the queues so both edges hit constantly; an
  // occasionally-sleeping compute stage pushes back on the gathered queue
  // from the other side.
  pipeline::BlockPipeline pipe({/*depth=*/1});
  const Status run = pipe.Run(
      sampler, source, NeighborhoodSampler::kAllEdgeTypes, fans, num_batches,
      [&](size_t b, std::any*) { return roots[b]; },
      [&](const block::SampledBlock& blk) {
        return block::GatherBlockFeatures(blk, slow, nullptr);
      },
      [&](size_t b, const block::SampledBlock& blk, const nn::Matrix& x,
          std::any&) {
        if (b % 5 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        out[b].globals.assign(blk.globals().begin(), blk.globals().end());
        out[b].features = x;
      });
  ASSERT_TRUE(run.ok()) << run.ToString();
  for (size_t b = 0; b < num_batches; ++b) {
    EXPECT_EQ(out[b].globals, seq[b].globals) << "batch " << b;
    EXPECT_TRUE(BitEqual(out[b].features, seq[b].features)) << "batch " << b;
  }
}

// ---------------------------------------------------------------------------
// Observability: stage busy counters, queue-depth gauges and the per-batch
// causal trace tree (one parentless "pipeline/batch" root whose sample /
// gather / compute children live on three different threads).

TEST(BlockPipelineTest, ExportsMetricsAndPerBatchTraceTrees) {
  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);
  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);

  proptest::PropContext ctx(/*seed=*/4321);
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  const size_t d = 4;
  nn::Matrix features(graph.num_vertices(), d);
  for (size_t i = 0; i < features.size(); ++i) {
    features.data()[i] = ctx.rng.NextFloat();
  }
  const std::vector<uint32_t> fans{2, 2};
  const size_t num_batches = 5;
  std::vector<std::vector<VertexId>> roots(num_batches);
  for (auto& r : roots) {
    r.resize(4);
    for (auto& v : r) {
      v = static_cast<VertexId>(ctx.rng.Uniform(graph.num_vertices()));
    }
  }
  RunPipelined(graph, features, /*draw_seed=*/7, roots, fans,
               /*use_row_cache=*/false, /*depth=*/2);

  obs::SetDefaultTracer(nullptr);
  obs::SetDefault(nullptr);

  EXPECT_EQ(registry.GetCounter("pipeline.batches")->Value(), num_batches);
  EXPECT_GT(registry.GetCounter("pipeline.stage_busy_us.sample")->Value(), 0u);
  // Gather/compute on tiny batches can round to 0us, but the handles must
  // exist; the queue gauges must have drained back to empty.
  (void)registry.GetCounter("pipeline.stage_busy_us.gather");
  (void)registry.GetCounter("pipeline.stall_us.compute");
  EXPECT_EQ(registry.GetGauge("pipeline.queue_depth.sampled")->Value(), 0.0);
  EXPECT_EQ(registry.GetGauge("pipeline.queue_depth.gathered")->Value(), 0.0);
  EXPECT_EQ(registry.GetGauge("pool.pipeline.sample.queue_depth")->Value(),
            0.0);
  EXPECT_EQ(registry.GetGauge("pool.pipeline.gather.queue_depth")->Value(),
            0.0);

  const obs::TraceForest forest = obs::AssembleTraces(tracer.Events());
  size_t batch_trees = 0;
  for (const obs::TraceTree& tree : forest.traces) {
    if (tree.root_event().name != "pipeline/batch") continue;
    ++batch_trees;
    EXPECT_EQ(tree.root_event().parent_span_id, 0u);
    // The three stage spans parent directly under the batch root and were
    // recorded by three different threads (sample lane, gather lane, the
    // caller) — one causal tree spanning the whole handoff chain.
    std::multiset<std::string> names;
    std::set<uint32_t> threads;
    for (const size_t child : tree.nodes[tree.root].children) {
      names.insert(tree.nodes[child].event.name);
      threads.insert(tree.nodes[child].event.thread);
    }
    EXPECT_EQ(names.count("pipeline/sample"), 1u);
    EXPECT_EQ(names.count("pipeline/gather"), 1u);
    EXPECT_EQ(names.count("pipeline/compute"), 1u);
    EXPECT_EQ(threads.size(), 3u);
  }
  EXPECT_EQ(batch_trees, num_batches);
}

}  // namespace
}  // namespace aligraph
