// Unit tests for Status / Result error handling.

#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace aligraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok = 7;
  Result<int> err = Status::Internal("boom");
  EXPECT_EQ(ok.value_or(0), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

Status Chain(int x) {
  ALIGRAPH_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

Result<int> ChainAssign(int x) {
  ALIGRAPH_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnBindsValue) {
  Result<int> r = helpers::ChainAssign(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  Result<int> r = helpers::ChainAssign(-5);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace aligraph
