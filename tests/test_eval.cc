// Tests for the evaluation module: metrics with hand-computed values and
// the link-prediction split harness.

#include <gtest/gtest.h>

#include <vector>

#include "eval/link_prediction.h"
#include "eval/metrics.h"
#include "gen/taobao.h"
#include "nn/matrix.h"

namespace aligraph {
namespace eval {
namespace {

TEST(RocAucTest, PerfectSeparation) {
  std::vector<double> pos{0.9, 0.8};
  std::vector<double> neg{0.1, 0.2};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 1.0);
}

TEST(RocAucTest, PerfectlyWrong) {
  std::vector<double> pos{0.1};
  std::vector<double> neg{0.9};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 0.0);
}

TEST(RocAucTest, AllTiesGiveHalf) {
  std::vector<double> pos{0.5, 0.5};
  std::vector<double> neg{0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // pos = {3, 1}, neg = {2}. Pairs: (3 > 2) = 1, (1 < 2) = 0 -> AUC 0.5.
  std::vector<double> pos{3, 1};
  std::vector<double> neg{2};
  EXPECT_DOUBLE_EQ(RocAuc(pos, neg), 0.5);
}

TEST(RocAucTest, EmptyInputsGiveHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({}, {}), 0.5);
}

TEST(PrAucTest, PerfectRankingIsOne) {
  std::vector<double> pos{0.9, 0.8};
  std::vector<double> neg{0.2};
  EXPECT_DOUBLE_EQ(PrAuc(pos, neg), 1.0);
}

TEST(PrAucTest, HandComputed) {
  // Order: pos(0.9), neg(0.8), pos(0.7).
  // AP = (1/1 + 2/3) / 2 = 5/6.
  std::vector<double> pos{0.9, 0.7};
  std::vector<double> neg{0.8};
  EXPECT_NEAR(PrAuc(pos, neg), 5.0 / 6.0, 1e-9);
}

TEST(BestF1Test, PerfectIsOne) {
  std::vector<double> pos{0.9};
  std::vector<double> neg{0.1};
  EXPECT_DOUBLE_EQ(BestF1(pos, neg), 1.0);
}

TEST(BestF1Test, HandComputed) {
  // pos = {0.9, 0.2}, neg = {0.5}. Thresholds:
  //  top1: P=1, R=0.5 -> F1 = 2/3
  //  top2: P=0.5, R=0.5 -> 0.5
  //  top3: P=2/3, R=1 -> 0.8  <- best
  std::vector<double> pos{0.9, 0.2};
  std::vector<double> neg{0.5};
  EXPECT_NEAR(BestF1(pos, neg), 0.8, 1e-9);
}

TEST(HitRateTest, CountsRanksBelowK) {
  std::vector<size_t> ranks{0, 4, 9, 10, 50};
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 10), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 100), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranks, 1), 1.0 / 5.0);
}

TEST(MultiClassF1Test, PerfectPredictions) {
  std::vector<uint32_t> labels{0, 1, 2, 1};
  const MultiClassF1 f1 = ComputeMultiClassF1(labels, labels, 3);
  EXPECT_DOUBLE_EQ(f1.micro, 1.0);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
}

TEST(MultiClassF1Test, HandComputed) {
  // labels: 0,0,1,1 preds: 0,1,1,1
  // class0: tp=1 fp=0 fn=1 -> F1 = 2/3
  // class1: tp=2 fp=1 fn=0 -> F1 = 4/5
  // micro: tp=3 fp=1 fn=1 -> 6/8 = 0.75 ; macro = (2/3 + 4/5)/2
  std::vector<uint32_t> labels{0, 0, 1, 1};
  std::vector<uint32_t> preds{0, 1, 1, 1};
  const MultiClassF1 f1 = ComputeMultiClassF1(labels, preds, 2);
  EXPECT_NEAR(f1.micro, 0.75, 1e-9);
  EXPECT_NEAR(f1.macro, (2.0 / 3.0 + 0.8) / 2, 1e-9);
}

TEST(MultiClassF1Test, AbsentClassesSkippedInMacro) {
  std::vector<uint32_t> labels{0, 0};
  std::vector<uint32_t> preds{0, 0};
  const MultiClassF1 f1 = ComputeMultiClassF1(labels, preds, 5);
  EXPECT_DOUBLE_EQ(f1.macro, 1.0);
}

TEST(BinaryMetricsTest, AllThreeComputed) {
  std::vector<double> pos{0.9, 0.7};
  std::vector<double> neg{0.3, 0.1};
  const BinaryMetrics m = ComputeBinaryMetrics(pos, neg);
  EXPECT_DOUBLE_EQ(m.roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(m.pr_auc, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

class SplitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
    auto split = SplitLinkPrediction(graph_, 0.2, 99);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
  }

  AttributedGraph graph_;
  LinkPredictionSplit split_;
};

TEST_F(SplitTest, EdgeCountsConserved) {
  EXPECT_EQ(split_.train.num_edges() + split_.test_positive.size(),
            graph_.num_edges());
  EXPECT_NEAR(static_cast<double>(split_.test_positive.size()) /
                  graph_.num_edges(),
              0.2, 0.05);
}

TEST_F(SplitTest, NegativesAreNotEdges) {
  for (const RawEdge& e : split_.test_negative) {
    for (const Neighbor& nb : graph_.OutNeighbors(e.src, e.type)) {
      EXPECT_NE(nb.dst, e.dst);
    }
  }
}

TEST_F(SplitTest, NegativesMatchDestinationType) {
  for (size_t i = 0; i < split_.test_negative.size(); ++i) {
    const RawEdge& neg = split_.test_negative[i];
    const RawEdge& pos = split_.test_positive[i];
    EXPECT_EQ(graph_.vertex_type(neg.dst), graph_.vertex_type(pos.dst));
    EXPECT_EQ(neg.src, pos.src);
    EXPECT_EQ(neg.type, pos.type);
  }
}

TEST_F(SplitTest, TrainGraphKeepsVertices) {
  EXPECT_EQ(split_.train.num_vertices(), graph_.num_vertices());
}

TEST_F(SplitTest, RejectsBadFraction) {
  EXPECT_FALSE(SplitLinkPrediction(graph_, 0.0, 1).ok());
  EXPECT_FALSE(SplitLinkPrediction(graph_, 1.0, 1).ok());
}

TEST(ScorePairTest, DotAndCosine) {
  nn::Matrix emb(2, 2);
  emb.At(0, 0) = 3;
  emb.At(1, 0) = 4;
  EXPECT_DOUBLE_EQ(ScorePair(emb, 0, 1, PairScorer::kDot), 12.0);
  EXPECT_NEAR(ScorePair(emb, 0, 1, PairScorer::kCosine), 1.0, 1e-6);
}

TEST(EvaluateLinkPredictionTest, OracleEmbeddingsScoreHigh) {
  // Build a tiny graph and an embedding where connected pairs share a
  // direction.
  GraphBuilder gb;
  for (int i = 0; i < 4; ++i) gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  ASSERT_TRUE(gb.AddEdge(2, 3).ok());
  auto g = std::move(gb.Build()).value();

  LinkPredictionSplit split;
  split.test_positive = {RawEdge{0, 1, 0, 1.0f, kNoAttr}};
  split.test_negative = {RawEdge{0, 3, 0, 1.0f, kNoAttr}};
  nn::Matrix emb(4, 2);
  emb.At(0, 0) = 1;
  emb.At(1, 0) = 1;   // same direction as 0
  emb.At(3, 1) = 1;   // orthogonal to 0
  const BinaryMetrics m = EvaluateLinkPrediction(emb, split);
  EXPECT_DOUBLE_EQ(m.roc_auc, 1.0);
}

TEST(RecommendationRanksTest, PerfectEmbeddingRanksPositiveFirst) {
  nn::Matrix emb(3, 2);
  emb.At(0, 0) = 1;           // user
  emb.At(1, 0) = 1;           // positive item, aligned
  emb.At(2, 0) = -1;          // distractor item
  LinkPredictionSplit split;
  split.test_positive = {RawEdge{0, 1, 0, 1.0f, kNoAttr}};
  std::vector<VertexId> pool{1, 2};
  const auto ranks = RecommendationRanks(emb, split, pool, 50, 5);
  ASSERT_EQ(ranks.size(), 1u);
  EXPECT_EQ(ranks[0], 0u);
}

}  // namespace
}  // namespace eval
}  // namespace aligraph
