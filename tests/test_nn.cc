// Tests for the neural substrate: matrix ops, layers with finite-difference
// gradient checks, optimizers, embeddings, walks and skip-gram training.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "nn/layers.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "nn/skipgram.h"
#include "nn/walks.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace nn {
namespace {

TEST(MatrixTest, MatMulHandValues) {
  Matrix a(2, 3), b(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  Matrix c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154);
}

TEST(MatrixTest, TransposedMatMulsConsistent) {
  Rng rng(1);
  Matrix a = Matrix::Gaussian(4, 3, 1.0f, rng);
  Matrix b = Matrix::Gaussian(3, 5, 1.0f, rng);
  Matrix c = MatMul(a, b);
  // A*B == (A^T)^T * B via MatMulTransA with A^T stored.
  Matrix at(3, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 3; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix c2 = MatMulTransA(at, b);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], c2.data()[i], 1e-4);
  }
  // A*B == A * (B^T)^T via MatMulTransB with B^T stored.
  Matrix bt(5, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) bt.At(j, i) = b.At(i, j);
  }
  Matrix c3 = MatMulTransB(a, bt);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], c3.data()[i], 1e-4);
  }
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a(1, 3);
  a.At(0, 0) = -1;
  a.At(0, 1) = 0;
  a.At(0, 2) = 2;
  Matrix r = a;
  ReluInPlace(r);
  EXPECT_FLOAT_EQ(r.At(0, 0), 0);
  EXPECT_FLOAT_EQ(r.At(0, 2), 2);
  Matrix t = a;
  TanhInPlace(t);
  EXPECT_NEAR(t.At(0, 0), std::tanh(-1.0f), 1e-6);
  Matrix s = a;
  SigmoidInPlace(s);
  EXPECT_NEAR(s.At(0, 1), 0.5f, 1e-6);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Matrix m = Matrix::Gaussian(5, 7, 2.0f, rng);
  SoftmaxRows(m);
  for (size_t i = 0; i < 5; ++i) {
    float sum = 0;
    for (float v : m.Row(i)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(MatrixTest, L2NormalizeRows) {
  Matrix m(2, 2);
  m.At(0, 0) = 3;
  m.At(0, 1) = 4;
  // Row 1 stays zero (no NaN).
  L2NormalizeRows(m);
  EXPECT_NEAR(m.At(0, 0), 0.6f, 1e-6);
  EXPECT_NEAR(m.At(0, 1), 0.8f, 1e-6);
  EXPECT_FLOAT_EQ(m.At(1, 0), 0.0f);
}

TEST(MatrixTest, ConcatCols) {
  Matrix a(1, 2), b(1, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  b.At(0, 0) = 3;
  b.At(0, 2) = 5;
  Matrix c = ConcatCols(a, b);
  ASSERT_EQ(c.cols(), 5u);
  EXPECT_FLOAT_EQ(c.At(0, 1), 2);
  EXPECT_FLOAT_EQ(c.At(0, 2), 3);
  EXPECT_FLOAT_EQ(c.At(0, 4), 5);
}

// Finite-difference gradient check of Linear through a scalar loss
// L = sum(Y). dL/dW and dL/dX must match numerical derivatives.
TEST(LinearTest, GradientCheck) {
  Rng rng(5);
  Linear layer(3, 2, rng);
  Matrix x = Matrix::Gaussian(4, 3, 1.0f, rng);
  Matrix y = layer.Forward(x);
  Matrix ones(y.rows(), y.cols());
  ones.Fill(1.0f);
  Matrix dx = layer.Backward(ones);

  const float eps = 1e-3f;
  auto loss = [&](const Matrix& input) {
    Matrix out = layer.ForwardAt(input);
    float acc = 0;
    for (size_t i = 0; i < out.size(); ++i) acc += out.data()[i];
    return acc;
  };
  for (size_t i = 0; i < x.size(); ++i) {
    Matrix xp = x;
    xp.data()[i] += eps;
    Matrix xm = x;
    xm.data()[i] -= eps;
    const float num = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], num, 5e-2) << "dX[" << i << "]";
  }
  // Weight gradient: analytic vs numerical on a few entries.
  Param& w = layer.weight();
  for (size_t i = 0; i < 3; ++i) {
    const float analytic = w.grad.data()[i];
    const float orig = w.value.data()[i];
    w.value.data()[i] = orig + eps;
    const float lp = loss(x);
    w.value.data()[i] = orig - eps;
    const float lm = loss(x);
    w.value.data()[i] = orig;
    EXPECT_NEAR(analytic, (lp - lm) / (2 * eps), 5e-2) << "dW[" << i << "]";
  }
}

TEST(BceTest, PerfectPredictionsHaveLowLoss) {
  std::vector<float> logits{10.0f, -10.0f};
  std::vector<float> labels{1.0f, 0.0f};
  std::vector<float> grad(2);
  const float loss = BceWithLogits(logits, labels, grad);
  EXPECT_LT(loss, 1e-3f);
  EXPECT_NEAR(grad[0], 0.0f, 1e-3f);
}

TEST(BceTest, GradientSignPushesTowardLabel) {
  std::vector<float> logits{0.0f};
  std::vector<float> grad(1);
  std::vector<float> pos{1.0f};
  BceWithLogits(logits, pos, grad);
  EXPECT_LT(grad[0], 0.0f);  // increase logit for positive label
  std::vector<float> neg{0.0f};
  BceWithLogits(logits, neg, grad);
  EXPECT_GT(grad[0], 0.0f);
}

TEST(SoftmaxXentTest, UniformLogitsGiveLogC) {
  Matrix logits(2, 4);  // zeros
  std::vector<uint32_t> labels{0, 3};
  Matrix grad;
  const float loss = SoftmaxXent(logits, labels, &grad);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-4);
  // Gradient at the label entry is (p - 1)/n, elsewhere p/n.
  EXPECT_NEAR(grad.At(0, 0), (0.25f - 1.0f) / 2, 1e-5);
  EXPECT_NEAR(grad.At(0, 1), 0.25f / 2, 1e-5);
}

template <typename Opt>
float MinimizeQuadratic(int steps) {
  // Minimize ||w||^2 from w = (3, -2): grad = 2w. Initial loss is 13.
  Rng rng(7);
  Param p(Matrix(1, 2));
  p.value.At(0, 0) = 3.0f;
  p.value.At(0, 1) = -2.0f;
  Opt opt;
  for (int i = 0; i < steps; ++i) {
    p.grad = p.value;
    p.grad *= 2.0f;
    opt.Step(p);
  }
  return p.value.SquaredNorm();
}

TEST(OptimizerTest, SgdConverges) {
  EXPECT_LT(MinimizeQuadratic<Sgd>(400), 1e-4f);
}
TEST(OptimizerTest, AdaGradConverges) {
  // AdaGrad's effective step decays ~1/sqrt(t); it converges slowly but the
  // loss must drop far below the initial 13.
  EXPECT_LT(MinimizeQuadratic<AdaGrad>(4000), 1.0f);
}
TEST(OptimizerTest, AdamConverges) {
  EXPECT_LT(MinimizeQuadratic<Adam>(3000), 1e-3f);
}

TEST(OptimizerTest, StepClearsGradients) {
  Param p(Matrix(1, 2));
  p.grad.Fill(1.0f);
  Sgd opt;
  opt.Step(p);
  EXPECT_FLOAT_EQ(p.grad.At(0, 0), 0.0f);
}

TEST(EmbeddingTableTest, LookupGathersRows) {
  Rng rng(9);
  EmbeddingTable table(10, 4, rng);
  std::vector<uint32_t> ids{3, 3, 7};
  Matrix out = table.Lookup(ids);
  ASSERT_EQ(out.rows(), 3u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.At(0, j), table.Row(3)[j]);
    EXPECT_FLOAT_EQ(out.At(1, j), table.Row(3)[j]);
    EXPECT_FLOAT_EQ(out.At(2, j), table.Row(7)[j]);
  }
}

TEST(EmbeddingTableTest, SgdUpdateMovesRow) {
  Rng rng(11);
  EmbeddingTable table(4, 2, rng);
  const float before = table.Row(1)[0];
  std::vector<float> grad{1.0f, 0.0f};
  table.SgdUpdate(1, grad, 0.5f);
  EXPECT_FLOAT_EQ(table.Row(1)[0], before - 0.5f);
}

AttributedGraph WalkGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 300;
  cfg.avg_degree = 6;
  cfg.seed = 15;
  return std::move(gen::ChungLu(cfg)).value();
}

TEST(WalksTest, UniformWalksFollowEdges) {
  const AttributedGraph g = WalkGraph();
  WalkConfig wc;
  wc.walks_per_vertex = 1;
  wc.walk_length = 6;
  const auto walks = UniformWalks(g, wc);
  ASSERT_FALSE(walks.empty());
  for (const auto& walk : walks) {
    EXPECT_GE(walk.size(), 2u);
    EXPECT_LE(walk.size(), 6u);
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      bool found = false;
      for (const Neighbor& nb : g.OutNeighbors(walk[i])) {
        if (nb.dst == walk[i + 1]) found = true;
      }
      EXPECT_TRUE(found) << "walk step not an edge";
    }
  }
}

TEST(WalksTest, Node2VecWalksValid) {
  const AttributedGraph g = WalkGraph();
  WalkConfig wc;
  wc.walks_per_vertex = 1;
  wc.walk_length = 5;
  const auto walks = Node2VecWalks(g, wc, 0.5, 2.0);
  ASSERT_FALSE(walks.empty());
  for (const auto& walk : walks) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      bool found = false;
      for (const Neighbor& nb : g.OutNeighbors(walk[i])) {
        if (nb.dst == walk[i + 1]) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(WalksTest, MetapathWalksRespectTypes) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  const EdgeType co = taobao.schema().EdgeTypeId("co_occur").value();
  std::vector<VertexId> starts;
  for (VertexId v = 0; v < taobao.num_vertices(); ++v) {
    if (!taobao.OutNeighbors(v, click).empty()) starts.push_back(v);
    if (starts.size() > 50) break;
  }
  ASSERT_FALSE(starts.empty());
  WalkConfig wc;
  wc.walks_per_vertex = 1;
  wc.walk_length = 4;
  const auto walks = MetapathWalks(taobao, wc, {click, co}, starts);
  for (const auto& walk : walks) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      const EdgeType expect_type = (i % 2 == 0) ? click : co;
      bool found = false;
      for (const Neighbor& nb : taobao.OutNeighbors(walk[i], expect_type)) {
        if (nb.dst == walk[i + 1]) found = true;
      }
      EXPECT_TRUE(found) << "metapath violated at step " << i;
    }
  }
}

TEST(WalksTest, LayerWalksStayInLayer) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  const EdgeType buy = taobao.schema().EdgeTypeId("buy").value();
  WalkConfig wc;
  wc.walks_per_vertex = 1;
  wc.walk_length = 4;
  const auto walks = LayerWalks(taobao, wc, buy);
  for (const auto& walk : walks) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      bool found = false;
      for (const Neighbor& nb : taobao.OutNeighbors(walk[i], buy)) {
        if (nb.dst == walk[i + 1]) found = true;
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(SkipGramTest, TrainingReducesLoss) {
  const AttributedGraph g = WalkGraph();
  WalkConfig wc;
  wc.walks_per_vertex = 2;
  wc.walk_length = 8;
  const auto walks = UniformWalks(g, wc);

  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  NegativeSampler negs(g, all);

  SkipGramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 1;
  SkipGramModel model(g.num_vertices(), cfg);
  const float first = model.TrainWalks(walks, negs);
  SkipGramConfig cfg5 = cfg;
  cfg5.epochs = 5;
  SkipGramModel model5(g.num_vertices(), cfg5);
  const float fifth = model5.TrainWalks(walks, negs);
  EXPECT_LT(fifth, first);
}

TEST(SkipGramTest, ConnectedPairScoresAboveRandomPair) {
  const AttributedGraph g = WalkGraph();
  WalkConfig wc;
  wc.walks_per_vertex = 4;
  wc.walk_length = 10;
  const auto walks = UniformWalks(g, wc);
  std::vector<VertexId> all(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
  NegativeSampler negs(g, all);
  SkipGramConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 3;
  SkipGramModel model(g.num_vertices(), cfg);
  model.TrainWalks(walks, negs);

  // Average score over edges vs over random pairs.
  Rng rng(21);
  double edge_score = 0, rand_score = 0;
  int edges = 0;
  for (VertexId v = 0; v < g.num_vertices() && edges < 500; ++v) {
    for (const Neighbor& nb : g.OutNeighbors(v)) {
      edge_score += Dot(model.embeddings().Row(v),
                        model.embeddings().Row(nb.dst));
      ++edges;
      if (edges >= 500) break;
    }
  }
  for (int i = 0; i < 500; ++i) {
    const VertexId a = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    const VertexId b = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
    rand_score += Dot(model.embeddings().Row(a), model.embeddings().Row(b));
  }
  EXPECT_GT(edge_score / edges, rand_score / 500 + 0.01);
}

}  // namespace
}  // namespace nn
}  // namespace aligraph
