// Tests for the subgraph-block execution path: SampledBlock relabeling
// invariants, block-vs-flat draw equivalence, bit-identity of block-based
// AGGREGATE / COMBINE and of the end-to-end block training path against
// the legacy map-based path, feature gathering through every source, and
// full-shape degradation under fault injection.

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_set>
#include <vector>

#include "algo/gnn.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"
#include "gen/taobao.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"
#include "partition/partitioner.h"
#include "proptest.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

std::vector<VertexId> RandomRoots(proptest::PropContext& ctx,
                                  const AttributedGraph& graph,
                                  size_t count) {
  std::vector<VertexId> roots(count);
  for (VertexId& r : roots) {
    r = static_cast<VertexId>(ctx.rng.Uniform(graph.num_vertices()));
  }
  return roots;
}

::testing::AssertionResult BitEqual(const nn::Matrix& a,
                                    const nn::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  if (a.empty()) return ::testing::AssertionSuccess();
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    for (size_t r = 0; r < a.rows(); ++r) {
      for (size_t c = 0; c < a.cols(); ++c) {
        const float av = a.At(r, c);
        const float bv = b.At(r, c);
        if (std::memcmp(&av, &bv, sizeof(float)) != 0) {
          return ::testing::AssertionFailure()
                 << "first differing element at (" << r << ", " << c
                 << "): " << av << " vs " << bv;
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Relabeling invariants.

ALIGRAPH_PROP(BlockProps, RelabelIsBijection, 12) {
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  LocalNeighborSource source(graph);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, ctx.rng.Next());
  const auto roots = RandomRoots(ctx, graph, 4 + ctx.rng.Uniform(12));
  const std::vector<uint32_t> fans{
      static_cast<uint32_t>(1 + ctx.rng.Uniform(5)),
      static_cast<uint32_t>(1 + ctx.rng.Uniform(4))};
  const block::SampledBlock blk = sampler.SampleBlock(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  const size_t n = blk.num_vertices();
  ASSERT_GT(n, 0u);
  ASSERT_LE(n, blk.total_slots());
  EXPECT_GE(blk.dedup_ratio(), 1.0);

  // globals() carries each vertex exactly once and the local <-> global
  // maps are mutually inverse on [0, n).
  std::unordered_set<VertexId> seen;
  for (uint32_t local = 0; local < n; ++local) {
    const VertexId g = blk.global_of(local);
    EXPECT_TRUE(seen.insert(g).second) << "duplicate global " << g;
    EXPECT_EQ(blk.local_of(g), local);
  }
  EXPECT_EQ(blk.local_of(graph.num_vertices() + 1000),
            block::SampledBlock::kInvalidLocal);

  // Every slot (roots, CSR dst and src) refers to a valid local id.
  for (const uint32_t l : blk.root_locals()) EXPECT_LT(l, n);
  for (const block::BlockHop& hop : blk.hops()) {
    ASSERT_EQ(hop.offsets.size(), hop.dst.size() + 1);
    for (size_t r = 0; r + 1 < hop.offsets.size(); ++r) {
      EXPECT_EQ(hop.offsets[r + 1] - hop.offsets[r], hop.fan);
    }
    for (const uint32_t l : hop.dst) EXPECT_LT(l, n);
    for (const uint32_t l : hop.src) EXPECT_LT(l, n);
  }
}

ALIGRAPH_PROP(BlockProps, CsrEdgesExistInGraph, 12) {
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  LocalNeighborSource source(graph);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, ctx.rng.Next());
  const auto roots = RandomRoots(ctx, graph, 4 + ctx.rng.Uniform(12));
  const std::vector<uint32_t> fans{
      static_cast<uint32_t>(1 + ctx.rng.Uniform(5)),
      static_cast<uint32_t>(1 + ctx.rng.Uniform(4))};
  const block::SampledBlock blk = sampler.SampleBlock(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  // Each CSR edge (dst slot r -> src e) must be a real out-edge of the
  // vertex occupying the slot; vertices with no suitable neighbor repeat
  // themselves (the shape-preserving fallback), so src == dst is also
  // legal — but only when it actually is the fallback or a real self-loop.
  for (const block::BlockHop& hop : blk.hops()) {
    for (size_t r = 0; r < hop.num_dst(); ++r) {
      const VertexId from = blk.global_of(hop.dst[r]);
      std::unordered_set<VertexId> adjacency;
      for (const Neighbor& nb : graph.OutNeighbors(from)) {
        adjacency.insert(nb.dst);
      }
      for (uint32_t e = hop.offsets[r]; e < hop.offsets[r + 1]; ++e) {
        const VertexId to = blk.global_of(hop.src[e]);
        EXPECT_TRUE(adjacency.count(to) > 0 ||
                    (to == from && adjacency.empty()))
            << "edge " << from << " -> " << to
            << " is neither a graph edge nor the empty-adjacency fallback";
      }
    }
  }
}

ALIGRAPH_PROP(BlockProps, BlockMatchesFlatDraws, 12) {
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  LocalNeighborSource source_a(graph);
  LocalNeighborSource source_b(graph);
  const uint64_t seed = ctx.rng.Next();
  NeighborhoodSampler flat_sampler(NeighborStrategy::kUniform, seed);
  NeighborhoodSampler block_sampler(NeighborStrategy::kUniform, seed);
  const auto roots = RandomRoots(ctx, graph, 4 + ctx.rng.Uniform(12));
  const std::vector<uint32_t> fans{
      static_cast<uint32_t>(1 + ctx.rng.Uniform(5)),
      static_cast<uint32_t>(1 + ctx.rng.Uniform(4))};

  const NeighborhoodSample flat = flat_sampler.Sample(
      source_a, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  const block::SampledBlock blk = block_sampler.SampleBlock(
      source_b, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  // Same seed, same draws: the block is the flat sample relabeled.
  ASSERT_EQ(blk.root_locals().size(), roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(blk.global_of(blk.root_locals()[i]), roots[i]);
  }
  ASSERT_EQ(blk.hops().size(), flat.hops.size());
  for (size_t k = 0; k < flat.hops.size(); ++k) {
    const block::BlockHop& hop = blk.hops()[k];
    ASSERT_EQ(hop.src.size(), flat.hops[k].size());
    for (size_t s = 0; s < hop.src.size(); ++s) {
      EXPECT_EQ(blk.global_of(hop.src[s]), flat.hops[k][s]);
    }
    // Level k's destinations are level k-1's slots, in slot order.
    const std::vector<uint32_t>& prev =
        k == 0 ? std::vector<uint32_t>(blk.root_locals().begin(),
                                       blk.root_locals().end())
               : blk.hops()[k - 1].src;
    ASSERT_EQ(hop.dst.size(), prev.size());
    for (size_t s = 0; s < prev.size(); ++s) {
      EXPECT_EQ(hop.dst[s], prev[s]);
    }
  }
}

// ---------------------------------------------------------------------------
// Operator bit-identity: block CSR-indexed AGGREGATE / COMBINE against the
// legacy per-slot materialized path, forward and backward.

ALIGRAPH_PROP(BlockProps, AggregatorsBitIdenticalToLegacy, 8) {
  const AttributedGraph graph = proptest::RandomGraph(ctx);
  LocalNeighborSource source(graph);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, ctx.rng.Next());
  const auto roots = RandomRoots(ctx, graph, 4 + ctx.rng.Uniform(8));
  const std::vector<uint32_t> fans{
      static_cast<uint32_t>(1 + ctx.rng.Uniform(4)),
      static_cast<uint32_t>(1 + ctx.rng.Uniform(3))};
  const block::SampledBlock blk = sampler.SampleBlock(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  const size_t d = 8;
  Rng mrng(ctx.rng.Next());
  const nn::Matrix rows =
      nn::Matrix::Gaussian(blk.num_vertices(), d, 1.0f, mrng);

  for (const char* name : {"mean", "sum", "maxpool"}) {
    for (const block::BlockHop& hop : blk.hops()) {
      auto legacy = ops::MakeAggregator(name);
      auto blocked = ops::MakeAggregator(name);

      // Legacy path: materialize one row per slot, then aggregate.
      const nn::Matrix neighbors = block::GatherRows(rows, hop.src);
      const nn::Matrix out_legacy = legacy->Forward(neighbors, hop.fan);
      const nn::Matrix out_block = blocked->ForwardBlock(rows, hop);
      EXPECT_TRUE(BitEqual(out_legacy, out_block)) << name << " forward";

      const nn::Matrix grad_out =
          nn::Matrix::Gaussian(hop.num_dst(), d, 1.0f, mrng);
      const nn::Matrix grad_legacy = legacy->Backward(grad_out);
      const nn::Matrix grad_block =
          blocked->BackwardBlock(grad_out, blk.num_vertices());

      // The block backward is the legacy per-slot gradient accumulated per
      // unique vertex in slot order.
      nn::Matrix accumulated(blk.num_vertices(), d);
      for (size_t e = 0; e < hop.src.size(); ++e) {
        for (size_t j = 0; j < d; ++j) {
          accumulated.At(hop.src[e], j) += grad_legacy.At(e, j);
        }
      }
      EXPECT_TRUE(BitEqual(accumulated, grad_block)) << name << " backward";
    }
  }

  // COMBINE: the block entry point gathers self rows from dst slots and
  // must match the legacy call on the materialized self matrix.
  Rng crng(42);
  ops::ConcatCombiner combiner(d, d, crng);
  const block::BlockHop& hop = blk.hops()[0];
  ops::MeanAggregator agg;
  const nn::Matrix aggregated = agg.ForwardBlock(rows, hop);
  const nn::Matrix self = block::GatherRows(rows, hop.dst);
  Rng crng2(42);
  ops::ConcatCombiner combiner2(d, d, crng2);
  EXPECT_TRUE(BitEqual(combiner.Forward(self, aggregated),
                       combiner2.ForwardBlock(rows, hop, aggregated)));
}

// ---------------------------------------------------------------------------
// End-to-end differentials: the block execution path must reproduce the
// legacy map-based path bit for bit on the same RNG seed.

algo::GnnConfig SmallConfig(const std::string& aggregator) {
  algo::GnnConfig config;
  config.dim = 8;
  config.feature_dim = 8;
  config.fanout1 = 3;
  config.fanout2 = 2;
  config.epochs = 1;
  config.batch_size = 8;
  config.batches_per_epoch = 6;
  config.aggregator = aggregator;
  config.seed = 77;
  return config;
}

AttributedGraph SmallTaobao() {
  auto graph = gen::Taobao(gen::TaobaoSmallConfig(0.05));
  ALIGRAPH_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

TEST(BlockDifferentialTest, GraphSageMeanBitIdenticalToLegacy) {
  const AttributedGraph graph = SmallTaobao();
  algo::GnnConfig block_config = SmallConfig("mean");
  block_config.use_blocks = true;
  algo::GnnConfig legacy_config = SmallConfig("mean");
  legacy_config.use_blocks = false;

  auto with_blocks = algo::GraphSage(block_config).Embed(graph);
  auto legacy = algo::GraphSage(legacy_config).Embed(graph);
  ASSERT_TRUE(with_blocks.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(BitEqual(*with_blocks, *legacy));
}

TEST(BlockDifferentialTest, GraphSageMaxPoolBitIdenticalToLegacy) {
  const AttributedGraph graph = SmallTaobao();
  algo::GnnConfig block_config = SmallConfig("maxpool");
  block_config.use_blocks = true;
  algo::GnnConfig legacy_config = SmallConfig("maxpool");
  legacy_config.use_blocks = false;

  auto with_blocks = algo::GraphSage(block_config).Embed(graph);
  auto legacy = algo::GraphSage(legacy_config).Embed(graph);
  ASSERT_TRUE(with_blocks.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(BitEqual(*with_blocks, *legacy));
}

TEST(BlockDifferentialTest, GcnFullBitIdenticalToLegacy) {
  const AttributedGraph graph = SmallTaobao();
  algo::Gcn::Config config;
  config.base = SmallConfig("mean");
  config.mode = algo::GcnMode::kFull;

  config.base.use_blocks = true;
  auto with_blocks = algo::Gcn(config).Embed(graph);
  config.base.use_blocks = false;
  auto legacy = algo::Gcn(config).Embed(graph);
  ASSERT_TRUE(with_blocks.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(BitEqual(*with_blocks, *legacy));
}

TEST(BlockDifferentialTest, FastGcnBitIdenticalToLegacy) {
  const AttributedGraph graph = SmallTaobao();
  algo::Gcn::Config config;
  config.base = SmallConfig("mean");
  config.mode = algo::GcnMode::kFastGcn;
  config.layer_samples = 64;

  config.base.use_blocks = true;
  auto with_blocks = algo::Gcn(config).Embed(graph);
  config.base.use_blocks = false;
  auto legacy = algo::Gcn(config).Embed(graph);
  ASSERT_TRUE(with_blocks.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_TRUE(BitEqual(*with_blocks, *legacy));
}

// ---------------------------------------------------------------------------
// Feature sources.

TEST(BlockFeatureSourceTest, ClusterGatherMatchesPerVertexPayloads) {
  const AttributedGraph graph = SmallTaobao();
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 3)).value();
  const size_t dim = 12;
  CommStats stats;
  block::ClusterFeatureSource source(cluster, /*worker=*/0, dim, &stats);

  std::vector<VertexId> vertices;
  for (VertexId v = 0; v < graph.num_vertices() && vertices.size() < 64;
       v += 7) {
    vertices.push_back(v);
  }
  nn::Matrix out(vertices.size(), dim);
  ASSERT_TRUE(source.Gather(vertices, &out).ok());

  // Row i is vertex i's raw attribute payload, zero-padded / truncated.
  for (size_t i = 0; i < vertices.size(); ++i) {
    const auto payload = graph.VertexFeatures(vertices[i]);
    for (size_t j = 0; j < dim; ++j) {
      const float expected = j < payload.size() ? payload[j] : 0.0f;
      EXPECT_EQ(out.At(i, j), expected) << "vertex " << vertices[i];
    }
  }

  // The gather coalesced: at most one message per destination worker, and
  // the remote residue traveled batched rather than as per-vertex RPCs.
  EXPECT_LE(stats.remote_batches.load(), 2u);
  EXPECT_GT(stats.batched_remote_reads.load(), 0u);
  EXPECT_EQ(stats.batched_remote_reads.load(), stats.remote_reads.load());
}

TEST(BlockFeatureSourceTest, GraphAndMatrixSourcesAgree) {
  const AttributedGraph graph = SmallTaobao();
  const size_t dim = 8;
  block::GraphFeatureSource graph_source(graph, dim);

  nn::Matrix table(graph.num_vertices(), dim);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto payload = graph.VertexFeatures(v);
    for (size_t j = 0; j < dim && j < payload.size(); ++j) {
      table.At(v, j) = payload[j];
    }
  }
  block::MatrixFeatureSource matrix_source(table);

  std::vector<VertexId> vertices{0, 5, 9, 5, 33};
  nn::Matrix a(vertices.size(), dim);
  nn::Matrix b(vertices.size(), dim);
  ASSERT_TRUE(graph_source.Gather(vertices, &a).ok());
  ASSERT_TRUE(matrix_source.Gather(vertices, &b).ok());
  EXPECT_TRUE(BitEqual(a, b));
}

// ---------------------------------------------------------------------------
// Fault degradation: failed reads must never change the block's shape.

TEST(BlockFaultTest, DegradedSampleKeepsFullShape) {
  const AttributedGraph graph = SmallTaobao();
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 2)).value();

  // Every request to worker 1 fails more attempts than the policy allows:
  // all remote reads to it degrade permanently.
  FaultConfig fault;
  fault.seed = 13;
  fault.schedule.push_back(
      {/*worker=*/1, FaultKind::kTransient, /*fail_first_attempts=*/99});
  RetryPolicy policy;
  policy.max_attempts = 2;
  cluster.InstallFaultInjection(fault, policy);

  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  block::ClusterFeatureSource features(cluster, /*worker=*/0, /*dim=*/8,
                                       &stats);

  std::vector<VertexId> roots;
  for (VertexId v = 0; v < graph.num_vertices() && roots.size() < 16; ++v) {
    if (cluster.OwnerOf(v) == 0) roots.push_back(v);
  }
  ASSERT_EQ(roots.size(), 16u);

  NeighborhoodSampler sampler(NeighborStrategy::kUniform, 5);
  const std::vector<uint32_t> fans{4, 3};
  const block::SampledBlock blk =
      sampler.SampleBlock(source, roots, NeighborhoodSampler::kAllEdgeTypes,
                          fans, /*pool=*/nullptr, &features);

  // Shapes are exactly what an un-faulted run would produce.
  ASSERT_EQ(blk.hops().size(), 2u);
  EXPECT_EQ(blk.hops()[0].src.size(), roots.size() * 4);
  EXPECT_EQ(blk.hops()[1].src.size(), roots.size() * 4 * 3);
  EXPECT_EQ(blk.hops()[1].dst.size(), roots.size() * 4);
  EXPECT_EQ(blk.features().rows(), blk.num_vertices());
  EXPECT_EQ(blk.features().cols(), 8u);

  // And the degradation was recorded rather than hidden.
  EXPECT_TRUE(blk.partial());
  EXPECT_GT(blk.degraded_draws(), 0u);
  EXPECT_GT(stats.failed_reads.load(), 0u);
}

// ---------------------------------------------------------------------------
// Observability: duplicate-ratio histogram, dedup gauge, gather counter,
// cross-batch row reuse.

TEST(BlockObsTest, SamplerAndBlockMetricsRecorded) {
  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);

  const AttributedGraph graph = SmallTaobao();
  LocalNeighborSource source(graph);
  NeighborhoodSampler sampler(NeighborStrategy::kUniform, 3);
  // Duplicate-heavy roots so the duplicate ratio is well above 1.
  const std::vector<VertexId> roots{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<uint32_t> fans{4, 2};
  block::GraphFeatureSource features(graph, /*dim=*/8);
  const block::SampledBlock blk =
      sampler.SampleBlock(source, roots, NeighborhoodSampler::kAllEdgeTypes,
                          fans, /*pool=*/nullptr, &features);

  EXPECT_GT(
      registry.GetHistogram("sample.frontier_dup_ratio", obs::SizeBounds())
          ->Count(),
      0u);
  EXPECT_GT(registry.GetHistogram("block.build_us", obs::LatencyBoundsUs())
                ->Count(),
            0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("block.dedup_ratio")->Value(),
                   blk.dedup_ratio());
  EXPECT_EQ(registry.GetCounter("block.gather_bytes")->Value(),
            blk.num_vertices() * 8 * sizeof(float));

  obs::SetDefault(nullptr);
}

TEST(BlockObsTest, HopCacheReusesRowsAcrossBatches) {
  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);

  const size_t dim = 4;
  ops::HopEmbeddingCache cache(dim);
  const std::vector<VertexId> first{10, 20, 30};
  nn::Matrix rows(first.size(), dim);
  for (size_t i = 0; i < first.size(); ++i) rows.Row(i)[0] = float(i + 1);
  cache.InsertRows(/*hop=*/0, first, rows);

  // Second batch overlaps the first on {20, 30}: those rows come back from
  // the cache and are counted as reused.
  const std::vector<VertexId> second{20, 30, 40};
  nn::Matrix out(second.size(), dim);
  std::vector<uint8_t> present;
  const size_t found = cache.LookupRows(0, second, &out, &present);
  EXPECT_EQ(found, 2u);
  EXPECT_EQ(present, (std::vector<uint8_t>{1, 1, 0}));
  EXPECT_EQ(out.At(0, 0), 2.0f);
  EXPECT_EQ(out.At(1, 0), 3.0f);
  EXPECT_EQ(out.At(2, 0), 0.0f);
  EXPECT_EQ(registry.GetCounter("block.reused_rows")->Value(), 2u);

  // InsertRows with the present mask only admits the missing slot.
  out.At(2, 0) = 7.0f;
  cache.InsertRows(0, second, out, &present);
  nn::Matrix again(1, dim);
  std::vector<uint8_t> p2;
  EXPECT_EQ(cache.LookupRows(0, std::vector<VertexId>{40}, &again, &p2), 1u);
  EXPECT_EQ(again.At(0, 0), 7.0f);

  obs::SetDefault(nullptr);
}

}  // namespace
}  // namespace aligraph
