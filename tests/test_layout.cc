// Tests for the layout subsystem: every reordering must be OBSERVATIONALLY
// INVISIBLE. The suite proves it differentially — permutation validity and
// per-vertex isomorphism of the reordered storage, bit-identity of k-hop
// draws across layouts x partitioners x cache configurations, bit-identity
// of relabeled blocks and GNN forward passes, and the cache-line cost model
// that turns a layout into a gateable number.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "algo/gnn.h"
#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/random.h"
#include "gen/zipf.h"
#include "graph/graph.h"
#include "layout/layout.h"
#include "nn/matrix.h"
#include "partition/partitioner.h"
#include "proptest.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace layout {
namespace {

using proptest::PropContext;

// Seeded shuffle of all vertex ids: a traffic ranking uncorrelated with
// the graph's structure, as item popularity is in production.
std::vector<VertexId> ShuffledIds(Rng& rng, VertexId n) {
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), VertexId{0});
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.Uniform(i)]);
  }
  return ids;
}

// Every non-identity layout the differential suites sweep: the two
// structural policies plus a hot-first layout over a random traffic
// ranking drawn from the property context.
std::vector<VertexLayout> NontrivialLayouts(PropContext& ctx,
                                            const AttributedGraph& g) {
  std::vector<VertexLayout> layouts;
  layouts.push_back(ComputeLayout(g, LayoutPolicy::kDegreeDescending));
  layouts.push_back(ComputeLayout(g, LayoutPolicy::kBfsCluster));
  const std::vector<VertexId> activity =
      ShuffledIds(ctx.rng, g.num_vertices());
  layouts.push_back(ComputeHotFirstLayout(g, activity));
  return layouts;
}

size_t HubDegree(const AttributedGraph& g, VertexId v) {
  return g.OutDegree(v) + g.InDegree(v);
}

std::vector<VertexId> RandomRoots(PropContext& ctx, const AttributedGraph& g,
                                  size_t count) {
  std::vector<VertexId> roots(count);
  for (VertexId& r : roots) {
    r = static_cast<VertexId>(ctx.rng.Uniform(g.num_vertices()));
  }
  return roots;
}

bool MatricesBitEqual(const nn::Matrix& a, const nn::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.rows(); ++i) {
    const auto ra = a.Row(i);
    const auto rb = b.Row(i);
    if (std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Permutation validity and policy shape.

ALIGRAPH_PROP(LayoutProps, AllPoliciesProduceValidPermutations, 10) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  for (const LayoutPolicy policy :
       {LayoutPolicy::kIdentity, LayoutPolicy::kDegreeDescending,
        LayoutPolicy::kBfsCluster}) {
    const VertexLayout layout = ComputeLayout(g, policy);
    EXPECT_TRUE(IsValidPermutation(layout, g.num_vertices()))
        << PolicyName(policy);
    EXPECT_EQ(layout.policy, policy);
    // Recomputing is deterministic: same graph, same permutation.
    const VertexLayout again = ComputeLayout(g, policy);
    EXPECT_EQ(layout.new_of_old, again.new_of_old) << PolicyName(policy);
  }
  EXPECT_TRUE(ComputeLayout(g, LayoutPolicy::kIdentity).IsIdentity());
}

ALIGRAPH_PROP(LayoutProps, DegreeDescendingRanksHubsFirst, 10) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const VertexLayout layout =
      ComputeLayout(g, LayoutPolicy::kDegreeDescending);
  for (VertexId nv = 1; nv < g.num_vertices(); ++nv) {
    EXPECT_GE(HubDegree(g, layout.ToOld(nv - 1)), HubDegree(g, layout.ToOld(nv)))
        << "rank " << nv;
  }
}

ALIGRAPH_PROP(LayoutProps, HotFirstPacksTrafficRankingThenOldIdOrder, 10) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const VertexId n = g.num_vertices();
  // A partial ranking with duplicates: first occurrence must win.
  std::vector<VertexId> ranking = ShuffledIds(ctx.rng, n);
  ranking.resize(1 + ctx.rng.Uniform(n));
  const size_t unique = ranking.size();
  for (size_t i = 0; i + 1 < unique && i < 3; ++i) {
    ranking.push_back(ranking[i]);  // repeats of already-ranked ids
  }

  const VertexLayout layout = ComputeHotFirstLayout(g, ranking);
  EXPECT_EQ(layout.policy, LayoutPolicy::kHotFirst);
  ASSERT_TRUE(IsValidPermutation(layout, n));
  // Ranked prefix in ranking order...
  for (size_t rank = 0; rank < unique; ++rank) {
    EXPECT_EQ(layout.ToOld(static_cast<VertexId>(rank)), ranking[rank])
        << "rank " << rank;
  }
  // ...then every unranked vertex in ascending old id.
  for (size_t rank = unique + 1; rank < n; ++rank) {
    EXPECT_LT(layout.ToOld(static_cast<VertexId>(rank - 1)),
              layout.ToOld(static_cast<VertexId>(rank)));
  }
}

TEST(LayoutTest, ApplyLayoutRejectsNonPermutations) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 50;
  cfg.avg_degree = 4;
  cfg.seed = 3;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();

  VertexLayout bad = VertexLayout::Identity(g.num_vertices());
  bad.new_of_old[0] = bad.new_of_old[1];  // not a bijection
  EXPECT_FALSE(IsValidPermutation(bad, g.num_vertices()));
  EXPECT_FALSE(ApplyLayout(g, bad).ok());

  VertexLayout short_map = VertexLayout::Identity(g.num_vertices() - 1);
  EXPECT_FALSE(ApplyLayout(g, short_map).ok());

  VertexLayout stale_inverse = VertexLayout::Identity(g.num_vertices());
  std::swap(stale_inverse.new_of_old[0], stale_inverse.new_of_old[1]);
  // old_of_new was not updated to match: inconsistent inverse.
  EXPECT_FALSE(IsValidPermutation(stale_inverse, g.num_vertices()));
}

// ---------------------------------------------------------------------------
// Reordered storage is the same graph, vertex for vertex: degrees, types,
// weights, attrs and — critically for RNG-positional samplers — per-vertex
// NEIGHBOR ORDER are all preserved under the id map.

ALIGRAPH_PROP(LayoutProps, ReorderedGraphIsIsomorphicPerVertex, 8) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  for (const VertexLayout& layout : NontrivialLayouts(ctx, g)) {
    auto reordered = ApplyLayout(g, layout);
    ASSERT_TRUE(reordered.ok()) << reordered.status().ToString();
    const AttributedGraph& r = *reordered;

    ASSERT_EQ(r.num_vertices(), g.num_vertices());
    EXPECT_EQ(r.num_edges(), g.num_edges());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const VertexId nv = layout.ToNew(v);
      EXPECT_EQ(r.vertex_type(nv), g.vertex_type(v));
      ASSERT_EQ(r.OutDegree(nv), g.OutDegree(v)) << "vertex " << v;
      ASSERT_EQ(r.InDegree(nv), g.InDegree(v)) << "vertex " << v;
      const auto old_nbs = g.OutNeighbors(v);
      const auto new_nbs = r.OutNeighbors(nv);
      for (size_t i = 0; i < old_nbs.size(); ++i) {
        EXPECT_EQ(new_nbs[i].dst, layout.ToNew(old_nbs[i].dst));
        EXPECT_EQ(new_nbs[i].weight, old_nbs[i].weight);
        EXPECT_EQ(new_nbs[i].attr, old_nbs[i].attr);
      }
      // Typed adjacency preserves order too (type 0 is ChungLu's only one).
      const auto old_typed = g.OutNeighbors(v, EdgeType{0});
      const auto new_typed = r.OutNeighbors(nv, EdgeType{0});
      ASSERT_EQ(new_typed.size(), old_typed.size());
      for (size_t i = 0; i < old_typed.size(); ++i) {
        EXPECT_EQ(new_typed[i].dst, layout.ToNew(old_typed[i].dst));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential k-hop sampling: same seed, same roots (mapped), same draws
// (mapped back) — no matter the layout, the neighbor strategy, the
// partitioner the cluster was built with, or whether a cache is installed.

ALIGRAPH_PROP(LayoutDifferential, LocalDrawsInvariantAcrossStrategies, 8) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const std::vector<VertexId> roots = RandomRoots(ctx, g, 8);
  const std::vector<uint32_t> fans{3, 2};
  const uint64_t seed = ctx.rng.Next();
  const std::vector<VertexLayout> layouts = NontrivialLayouts(ctx, g);

  for (const NeighborStrategy strategy :
       {NeighborStrategy::kUniform, NeighborStrategy::kWeighted,
        NeighborStrategy::kTopK}) {
    LocalNeighborSource base_source(g);
    NeighborhoodSampler base_sampler(strategy, seed);
    const NeighborhoodSample base = base_sampler.Sample(
        base_source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

    for (const VertexLayout& layout : layouts) {
      const AttributedGraph r = std::move(ApplyLayout(g, layout)).value();
      LocalNeighborSource source(r);
      NeighborhoodSampler sampler(strategy, seed);
      const NeighborhoodSample got = sampler.Sample(
          source, MapToNew(layout, roots),
          NeighborhoodSampler::kAllEdgeTypes, fans);

      ASSERT_EQ(got.hops.size(), base.hops.size());
      for (size_t h = 0; h < base.hops.size(); ++h) {
        EXPECT_EQ(MapToOld(layout, got.hops[h]), base.hops[h])
            << PolicyName(layout.policy) << " strategy "
            << static_cast<int>(strategy) << " hop " << h;
      }
    }
  }
}

ALIGRAPH_PROP(LayoutDifferential, DrawsInvariantAcrossPartitionersAndCaches,
              4) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const std::vector<VertexId> roots = RandomRoots(ctx, g, 6);
  const std::vector<uint32_t> fans{3, 2};
  const uint64_t seed = ctx.rng.Next();
  const uint32_t workers = proptest::RandomWorkers(ctx);

  LocalNeighborSource base_source(g);
  NeighborhoodSampler base_sampler(NeighborStrategy::kUniform, seed);
  const NeighborhoodSample base = base_sampler.Sample(
      base_source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  const EdgeCutPartitioner edge_cut;
  const VertexCutPartitioner vertex_cut;
  const Grid2DPartitioner grid;
  const StreamingPartitioner streaming;
  const MetisPartitioner metis;
  const Partitioner* partitioners[] = {&edge_cut, &vertex_cut, &grid,
                                       &streaming, &metis};

  for (const VertexLayout& layout : NontrivialLayouts(ctx, g)) {
    const AttributedGraph r = std::move(ApplyLayout(g, layout)).value();
    const std::vector<VertexId> mapped_roots = MapToNew(layout, roots);

    for (const Partitioner* part : partitioners) {
      auto cluster = Cluster::Build(r, *part, workers);
      ASSERT_TRUE(cluster.ok())
          << part->name() << ": " << cluster.status().ToString();
      for (const bool cached : {false, true}) {
        if (cached) cluster->InstallTopImportanceCache(2, 0.1);
        CommStats stats;
        DistributedNeighborSource source(*cluster, /*worker=*/0, &stats);
        NeighborhoodSampler sampler(NeighborStrategy::kUniform, seed);
        const NeighborhoodSample got = sampler.Sample(
            source, mapped_roots, NeighborhoodSampler::kAllEdgeTypes, fans);

        ASSERT_EQ(got.hops.size(), base.hops.size());
        for (size_t h = 0; h < base.hops.size(); ++h) {
          EXPECT_EQ(MapToOld(layout, got.hops[h]), base.hops[h])
              << PolicyName(layout.policy) << " partitioner " << part->name()
              << (cached ? " cached" : " uncached") << " hop " << h;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocks and forward passes: relabeling assigns local ids in
// first-appearance order, so a reordered sample produces the SAME block
// structure (root slots, hop CSRs) with globals mapped through the layout —
// and with PermuteRows'd features, bit-identical embeddings.

ALIGRAPH_PROP(LayoutDifferential, BlocksAndForwardBitIdentical, 6) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const std::vector<VertexId> roots = RandomRoots(ctx, g, 6);
  const std::vector<uint32_t> fans{4, 3};
  const uint64_t sampler_seed = ctx.rng.Next();
  const uint64_t weight_seed = ctx.rng.Next();
  constexpr size_t kDim = 8;
  const nn::Matrix features = algo::BuildFeatureMatrix(g, kDim);

  LocalNeighborSource base_source(g);
  block::MatrixFeatureSource base_features(features);
  NeighborhoodSampler base_sampler(NeighborStrategy::kUniform, sampler_seed);
  const block::SampledBlock base = base_sampler.SampleBlock(
      base_source, roots, NeighborhoodSampler::kAllEdgeTypes, fans,
      /*pool=*/nullptr, &base_features);

  Rng base_rng(weight_seed);
  algo::SageLayer base_l1(kDim, kDim, /*maxpool=*/false, base_rng);
  algo::SageLayer base_l2(kDim, kDim, /*maxpool=*/false, base_rng,
                          /*relu=*/false);
  algo::SageLayer::Cache c0, c1, c2;
  const nn::Matrix base_h1r =
      base_l1.ForwardBlock(base.features(), base.hops()[0], &c0);
  const nn::Matrix base_h1n =
      base_l1.ForwardBlock(base.features(), base.hops()[1], &c1);
  const nn::Matrix base_out = base_l2.Forward(base_h1r, base_h1n, fans[0], &c2);

  for (const VertexLayout& layout : NontrivialLayouts(ctx, g)) {
    const AttributedGraph r = std::move(ApplyLayout(g, layout)).value();
    const nn::Matrix permuted = PermuteRows(features, layout);
    LocalNeighborSource source(r);
    block::MatrixFeatureSource feature_source(permuted);
    NeighborhoodSampler sampler(NeighborStrategy::kUniform, sampler_seed);
    const block::SampledBlock blk = sampler.SampleBlock(
        source, MapToNew(layout, roots),
        NeighborhoodSampler::kAllEdgeTypes, fans, /*pool=*/nullptr,
        &feature_source);

    // Identical structure: local ids, per-slot roots, per-hop CSRs.
    ASSERT_EQ(blk.num_vertices(), base.num_vertices());
    EXPECT_TRUE(std::equal(blk.root_locals().begin(), blk.root_locals().end(),
                           base.root_locals().begin()));
    ASSERT_EQ(blk.hops().size(), base.hops().size());
    for (size_t h = 0; h < base.hops().size(); ++h) {
      EXPECT_EQ(blk.hops()[h].dst, base.hops()[h].dst) << "hop " << h;
      EXPECT_EQ(blk.hops()[h].offsets, base.hops()[h].offsets) << "hop " << h;
      EXPECT_EQ(blk.hops()[h].src, base.hops()[h].src) << "hop " << h;
    }
    // Globals are the same vertices, spoken in the layout's id space.
    for (size_t local = 0; local < base.num_vertices(); ++local) {
      EXPECT_EQ(layout.ToOld(blk.global_of(static_cast<uint32_t>(local))),
                base.global_of(static_cast<uint32_t>(local)));
    }
    // Features per local id are bit-identical, hence so is the forward pass.
    EXPECT_TRUE(MatricesBitEqual(blk.features(), base.features()));

    Rng rng(weight_seed);
    algo::SageLayer l1(kDim, kDim, /*maxpool=*/false, rng);
    algo::SageLayer l2(kDim, kDim, /*maxpool=*/false, rng, /*relu=*/false);
    algo::SageLayer::Cache d0, d1, d2;
    const nn::Matrix h1r = l1.ForwardBlock(blk.features(), blk.hops()[0], &d0);
    const nn::Matrix h1n = l1.ForwardBlock(blk.features(), blk.hops()[1], &d1);
    const nn::Matrix out = l2.Forward(h1r, h1n, fans[0], &d2);
    EXPECT_TRUE(MatricesBitEqual(out, base_out)) << PolicyName(layout.policy);
  }
}

// ---------------------------------------------------------------------------
// The cost model: deterministic, conservation-checked, and actually
// sensitive to layout — a trace over a hot set scattered through the CSR
// costs more than the same trace after the hot set is packed contiguously.

TEST(ScanCostTest, RecordingSourceCapturesVisitsInOrder) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 100;
  cfg.avg_degree = 4;
  cfg.seed = 17;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();
  LocalNeighborSource inner(g);
  RecordingNeighborSource recorder(inner);

  (void)recorder.Neighbors(5);
  (void)recorder.Neighbors(3, EdgeType{0});
  BatchResult batch;
  const std::vector<VertexId> frontier{7, 5, 9};
  recorder.NeighborsBatch(frontier, kAllEdgeTypes, &batch);
  // Scalar reads record in call order; the batch records in ascending id —
  // the coalesced order the local batch walk actually touches memory in.
  EXPECT_EQ(recorder.trace(),
            (std::vector<VertexId>{5, 3, 5, 7, 9}));
  // The decorator forwards the actual reads.
  EXPECT_EQ(batch.spans[0].size(), g.OutDegree(7));
  recorder.ClearTrace();
  EXPECT_TRUE(recorder.trace().empty());
}

TEST(ScanCostTest, ConservationAndDeterminism) {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 500;
  cfg.avg_degree = 6;
  cfg.seed = 23;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();

  Rng rng(7);
  std::vector<VertexId> trace(2000);
  for (VertexId& v : trace) {
    v = static_cast<VertexId>(rng.Uniform(g.num_vertices()));
  }
  CacheModelConfig model;
  model.cache_lines = 64;
  const ScanCost a = ModeledScanCost(g, trace, model);
  const ScanCost b = ModeledScanCost(g, trace, model);
  EXPECT_EQ(a.line_accesses, b.line_accesses);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_DOUBLE_EQ(a.modeled_us, b.modeled_us);
  EXPECT_EQ(a.hits + a.misses, a.line_accesses);
  EXPECT_GT(a.line_accesses, 0u);
  EXPECT_GE(a.HitRate(), 0.0);
  EXPECT_LE(a.HitRate(), 1.0);
  // Prefetched lines are a subset of misses, charged at hit cost.
  EXPECT_LE(a.prefetched, a.misses);
  EXPECT_DOUBLE_EQ(
      a.modeled_us,
      static_cast<double>(a.hits + a.prefetched) * model.hit_us +
          static_cast<double>(a.misses - a.prefetched) * model.miss_us);

  // With the stream prefetcher modeled off, every miss pays full cost.
  CacheModelConfig nopf = model;
  nopf.stream_prefetch = false;
  const ScanCost c = ModeledScanCost(g, trace, nopf);
  EXPECT_EQ(c.prefetched, 0u);
  EXPECT_EQ(c.misses, a.misses);
  EXPECT_DOUBLE_EQ(c.modeled_us,
                   static_cast<double>(c.hits) * model.hit_us +
                       static_cast<double>(c.misses) * model.miss_us);
  EXPECT_GE(c.modeled_us, a.modeled_us);
}

TEST(ScanCostTest, PackingTheHotSetReducesModeledCost) {
  // 512 vertices, one out-edge each; the hot set is every 8th vertex, so
  // under identity its adjacency records land on 64 distinct cache lines
  // (one hot record per line), while packing them puts the whole hot
  // adjacency on a dozen lines.
  GraphBuilder builder(GraphSchema(), /*undirected=*/false);
  constexpr VertexId kN = 512;
  for (VertexId v = 0; v < kN; ++v) builder.AddVertex(0, {});
  for (VertexId v = 0; v < kN; ++v) {
    ASSERT_TRUE(builder.AddEdge(v, (v + 1) % kN, 0, 1.0f).ok());
  }
  const AttributedGraph g = std::move(builder.Build()).value();

  std::vector<VertexId> hot;
  for (VertexId v = 0; v < kN; v += 8) hot.push_back(v);
  // Layout that packs the hot set into the first |hot| slots.
  VertexLayout packed;
  packed.policy = LayoutPolicy::kDegreeDescending;
  packed.old_of_new = hot;
  for (VertexId v = 0; v < kN; ++v) {
    if (v % 8 != 0) packed.old_of_new.push_back(v);
  }
  packed.new_of_old.resize(kN);
  for (VertexId nv = 0; nv < kN; ++nv) {
    packed.new_of_old[packed.old_of_new[nv]] = nv;
  }
  ASSERT_TRUE(IsValidPermutation(packed, kN));
  const AttributedGraph r = std::move(ApplyLayout(g, packed)).value();

  // Trace: many rounds over the hot set, shuffled each round. The cache is
  // big enough to hold the PACKED hot adjacency (16 lines) but not the 64
  // scattered lines the identity layout needs.
  std::vector<VertexId> trace;
  Rng rng(11);
  std::vector<VertexId> round = hot;
  for (int rep = 0; rep < 50; ++rep) {
    for (size_t i = round.size(); i > 1; --i) {
      std::swap(round[i - 1], round[rng.Uniform(i)]);
    }
    trace.insert(trace.end(), round.begin(), round.end());
  }
  CacheModelConfig model;
  model.cache_lines = 32;

  const ScanCost identity_cost = ModeledScanCost(g, trace, model);
  const ScanCost packed_cost =
      ModeledScanCost(r, MapToNew(packed, trace), model);
  // Line counts are NOT conserved exactly — a 12-byte Neighbor record can
  // straddle a line boundary under one layout and not the other — but each
  // visit reads the same bytes, so the counts differ by at most one line
  // per visit.
  const uint64_t hi = std::max(packed_cost.line_accesses,
                               identity_cost.line_accesses);
  const uint64_t lo = std::min(packed_cost.line_accesses,
                               identity_cost.line_accesses);
  EXPECT_LE(hi - lo, trace.size());
  EXPECT_LT(packed_cost.misses, identity_cost.misses);
  EXPECT_LT(packed_cost.modeled_us, identity_cost.modeled_us);
  // The packed hot set fits: after the first sweep, everything hits.
  EXPECT_GT(packed_cost.HitRate(), 0.9);
}

ALIGRAPH_PROP(ScanCostProps, DegreeLayoutNeverSlowsAZipfHotTrace, 6) {
  const AttributedGraph g = proptest::RandomGraph(ctx);
  const VertexLayout layout =
      ComputeLayout(g, LayoutPolicy::kDegreeDescending);
  const AttributedGraph r = std::move(ApplyLayout(g, layout)).value();

  // Zipf-hot trace over degree rank: rank k is the k-th hottest vertex,
  // which is exactly new id k under the degree layout.
  gen::ZipfConfig zcfg;
  zcfg.num_ranks = g.num_vertices();
  zcfg.exponent = 1.1;
  zcfg.seed = ctx.rng.Next();
  gen::ZipfSampler zipf(zcfg);
  std::vector<VertexId> trace(4000);
  for (VertexId& v : trace) {
    v = layout.ToOld(static_cast<VertexId>(zipf.Next()));
  }

  CacheModelConfig model;
  // Size the cache to ~10% of the adjacency footprint so locality matters.
  model.cache_lines = std::max<size_t>(
      16, g.num_edges() * sizeof(Neighbor) / model.line_bytes / 10);
  const ScanCost identity_cost = ModeledScanCost(g, trace, model);
  const ScanCost reordered_cost =
      ModeledScanCost(r, MapToNew(layout, trace), model);
  // Same bytes read per visit, so line counts differ by at most one line
  // per visit (boundary straddling is alignment-dependent).
  const uint64_t hi = std::max(reordered_cost.line_accesses,
                               identity_cost.line_accesses);
  const uint64_t lo = std::min(reordered_cost.line_accesses,
                               identity_cost.line_accesses);
  EXPECT_LE(hi - lo, trace.size());
  // Packing hubs first can only help a hub-hot trace under this model; a
  // 2% allowance absorbs alignment noise at the line-straddle margin.
  EXPECT_LE(reordered_cost.modeled_us, identity_cost.modeled_us * 1.02);
}

}  // namespace
}  // namespace layout
}  // namespace aligraph
