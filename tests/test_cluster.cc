// Tests for the simulated cluster: distributed build, cache-aware neighbor
// access with communication accounting, and the lock-free request buckets.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/request_bucket.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "partition/partitioner.h"

namespace aligraph {
namespace {

AttributedGraph MakeGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 1500;
  cfg.avg_degree = 6;
  cfg.seed = 9;
  return std::move(gen::ChungLu(cfg)).value();
}

TEST(ClusterBuildTest, PreservesEveryEdge) {
  const AttributedGraph g = MakeGraph();
  EdgeCutPartitioner part;
  ClusterBuildReport report;
  auto cluster = Cluster::Build(g, part, 4, &report);
  ASSERT_TRUE(cluster.ok());
  size_t total_edges = 0;
  size_t total_vertices = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    total_edges += cluster->server(w).num_edges();
    total_vertices += cluster->server(w).num_vertices();
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_EQ(total_vertices, g.num_vertices());
}

TEST(ClusterBuildTest, ServersHoldOwnedAdjacency) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  for (VertexId v = 0; v < g.num_vertices(); v += 37) {
    const WorkerId owner = cluster.OwnerOf(v);
    EXPECT_TRUE(cluster.server(owner).Owns(v));
    const auto local = cluster.server(owner).Neighbors(v);
    EXPECT_EQ(local.size(), g.OutDegree(v));
  }
}

TEST(ClusterBuildTest, TypedNeighborsMatchGraph) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  auto cluster =
      std::move(Cluster::Build(taobao, EdgeCutPartitioner(), 3)).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  for (VertexId v = 0; v < taobao.num_vertices(); v += 101) {
    const WorkerId owner = cluster.OwnerOf(v);
    EXPECT_EQ(cluster.server(owner).Neighbors(v, click).size(),
              taobao.OutDegree(v, click));
  }
}

TEST(ClusterBuildTest, ReportTimingsPopulated) {
  const AttributedGraph g = MakeGraph();
  ClusterBuildReport report;
  auto cluster = Cluster::Build(g, EdgeCutPartitioner(), 8, &report);
  ASSERT_TRUE(cluster.ok());
  EXPECT_GT(report.distribute_ms, 0.0);
  EXPECT_GT(report.serial_ms, 0.0);
  EXPECT_LE(report.simulated_parallel_ms, report.serial_ms + 1.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ClusterBuildTest, RejectsZeroWorkers) {
  const AttributedGraph g = MakeGraph();
  EXPECT_FALSE(Cluster::Build(g, EdgeCutPartitioner(), 0).ok());
}

TEST(ClusterAccessTest, LocalVsRemoteCounting) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  CommStats stats;
  for (VertexId v = 0; v < 200; ++v) {
    const auto nbs = cluster.GetNeighbors(/*from=*/0, v, &stats);
    EXPECT_EQ(nbs.size(), g.OutDegree(v));
  }
  EXPECT_EQ(stats.TotalReads(), 200u);
  EXPECT_GT(stats.local_reads.load(), 0u);
  EXPECT_GT(stats.remote_reads.load(), 0u);
  EXPECT_EQ(stats.cache_hits.load(), 0u);  // no cache installed
}

TEST(ClusterAccessTest, ImportanceCacheTurnsRemoteIntoHits) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();

  CommStats before;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    cluster.GetNeighbors(0, v, &before);
  }

  cluster.InstallTopImportanceCache(/*k=*/1, /*fraction=*/0.3);
  CommStats after;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    cluster.GetNeighbors(0, v, &after);
  }
  EXPECT_LT(after.remote_reads.load(), before.remote_reads.load());
  EXPECT_GT(after.cache_hits.load(), 0u);
}

TEST(ClusterAccessTest, CachedDataMatchesOwnerData) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();
  cluster.InstallRandomCache(0.5, 11);
  for (VertexId v = 0; v < 300; ++v) {
    const auto got = cluster.GetNeighbors(1, v, nullptr);
    ASSERT_EQ(got.size(), g.OutDegree(v));
    const auto want = g.OutNeighbors(v);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].dst, want[i].dst);
    }
  }
}

TEST(ClusterAccessTest, LruCacheAdmitsOnRemoteFetch) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallLruCache(1000);
  // Find a remote vertex from worker 0's perspective.
  VertexId remote = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cluster.OwnerOf(v) != 0) {
      remote = v;
      break;
    }
  }
  ASSERT_NE(remote, kInvalidVertex);
  CommStats stats;
  cluster.GetNeighbors(0, remote, &stats);  // miss -> remote + admit
  cluster.GetNeighbors(0, remote, &stats);  // hit
  EXPECT_EQ(stats.remote_reads.load(), 1u);
  EXPECT_EQ(stats.cache_hits.load(), 1u);
}

TEST(ClusterAccessTest, TypedAccessCountsOnce) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  auto cluster =
      std::move(Cluster::Build(taobao, EdgeCutPartitioner(), 2)).value();
  const EdgeType buy = taobao.schema().EdgeTypeId("buy").value();
  CommStats stats;
  for (VertexId v = 0; v < 100; ++v) {
    cluster.GetNeighbors(0, v, buy, &stats);
  }
  EXPECT_EQ(stats.TotalReads(), 100u);
}

TEST(ClusterAccessTest, ClearCachesRestoresRemoteCounting) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallRandomCache(1.0, 3);
  cluster.ClearCaches();
  CommStats stats;
  for (VertexId v = 0; v < 100; ++v) cluster.GetNeighbors(0, v, &stats);
  EXPECT_EQ(stats.cache_hits.load(), 0u);
}

TEST(CommModelTest, ModeledTimeScalesWithRemote) {
  CommModel model;
  model.remote_latency_us = 100.0;
  model.local_latency_us = 0.0;
  CommStats stats;
  stats.remote_reads = 50;
  EXPECT_NEAR(model.ModeledMillis(stats), 5.0, 1e-9);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(NaiveBuildTest, SlowerOrEqualToMeasuredParallelCriticalPath) {
  const AttributedGraph g = MakeGraph();
  const double naive_ms = NaiveLockedBuildMillis(g);
  EXPECT_GT(naive_ms, 0.0);
}

TEST(MpscRingTest, SingleThreadFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, FullRingRejectsPush) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(MpscRingTest, ConcurrentProducersLoseNothing) {
  MpscRing<int> ring(1024);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    int v;
    while (popped.load() < kPerProducer * kProducers) {
      if (ring.TryPop(&v)) {
        sum += v;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!ring.TryPush(i)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  const long expected =
      static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(BucketExecutorTest, ExecutesEverythingOnDrain) {
  BucketExecutor exec(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    exec.Submit(i, [&count] { ++count; });
  }
  exec.Drain();
  EXPECT_EQ(count.load(), 500);
}

TEST(BucketExecutorTest, SameGroupIsSequential) {
  // All ops on one group must execute in submission order (single consumer,
  // no locking): record the order and verify.
  BucketExecutor exec(4);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    exec.Submit(7, [&order, i] { order.push_back(i); });
  }
  exec.Drain();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(BucketExecutorTest, GroupsRouteStably) {
  BucketExecutor exec(3);
  // Two ops on the same group from different "threads of submission" still
  // serialize; different groups may interleave but each sees its own order.
  std::vector<int> a, b;
  for (int i = 0; i < 100; ++i) {
    exec.Submit(0, [&a, i] { a.push_back(i); });
    exec.Submit(1, [&b, i] { b.push_back(i); });
  }
  exec.Drain();
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], i);
  }
}

}  // namespace
}  // namespace aligraph
