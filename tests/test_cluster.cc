// Tests for the simulated cluster: distributed build, cache-aware neighbor
// access with communication accounting, and the lock-free request buckets.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/request_bucket.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"
#include "obs/metrics.h"
#include "partition/partitioner.h"

namespace aligraph {
namespace {

AttributedGraph MakeGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 1500;
  cfg.avg_degree = 6;
  cfg.seed = 9;
  return std::move(gen::ChungLu(cfg)).value();
}

TEST(ClusterBuildTest, PreservesEveryEdge) {
  const AttributedGraph g = MakeGraph();
  EdgeCutPartitioner part;
  ClusterBuildReport report;
  auto cluster = Cluster::Build(g, part, 4, &report);
  ASSERT_TRUE(cluster.ok());
  size_t total_edges = 0;
  size_t total_vertices = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    total_edges += cluster->server(w).num_edges();
    total_vertices += cluster->server(w).num_vertices();
  }
  EXPECT_EQ(total_edges, g.num_edges());
  EXPECT_EQ(total_vertices, g.num_vertices());
}

TEST(ClusterBuildTest, ServersHoldOwnedAdjacency) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 3)).value();
  for (VertexId v = 0; v < g.num_vertices(); v += 37) {
    const WorkerId owner = cluster.OwnerOf(v);
    EXPECT_TRUE(cluster.server(owner).Owns(v));
    const auto local = cluster.server(owner).Neighbors(v);
    EXPECT_EQ(local.size(), g.OutDegree(v));
  }
}

TEST(ClusterBuildTest, TypedNeighborsMatchGraph) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  auto cluster =
      std::move(Cluster::Build(taobao, EdgeCutPartitioner(), 3)).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  for (VertexId v = 0; v < taobao.num_vertices(); v += 101) {
    const WorkerId owner = cluster.OwnerOf(v);
    EXPECT_EQ(cluster.server(owner).Neighbors(v, click).size(),
              taobao.OutDegree(v, click));
  }
}

TEST(ClusterBuildTest, ReportTimingsPopulated) {
  const AttributedGraph g = MakeGraph();
  ClusterBuildReport report;
  auto cluster = Cluster::Build(g, EdgeCutPartitioner(), 8, &report);
  ASSERT_TRUE(cluster.ok());
  EXPECT_GT(report.distribute_ms, 0.0);
  EXPECT_GT(report.serial_ms, 0.0);
  EXPECT_LE(report.simulated_parallel_ms, report.serial_ms + 1.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(ClusterBuildTest, RejectsZeroWorkers) {
  const AttributedGraph g = MakeGraph();
  EXPECT_FALSE(Cluster::Build(g, EdgeCutPartitioner(), 0).ok());
}

TEST(ClusterAccessTest, LocalVsRemoteCounting) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  CommStats stats;
  for (VertexId v = 0; v < 200; ++v) {
    const auto nbs = cluster.GetNeighbors(/*from=*/0, v, &stats);
    EXPECT_EQ(nbs.size(), g.OutDegree(v));
  }
  EXPECT_EQ(stats.TotalReads(), 200u);
  EXPECT_GT(stats.local_reads.load(), 0u);
  EXPECT_GT(stats.remote_reads.load(), 0u);
  EXPECT_EQ(stats.cache_hits.load(), 0u);  // no cache installed
}

TEST(ClusterAccessTest, ImportanceCacheTurnsRemoteIntoHits) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();

  CommStats before;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    cluster.GetNeighbors(0, v, &before);
  }

  cluster.InstallTopImportanceCache(/*k=*/1, /*fraction=*/0.3);
  CommStats after;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) {
    cluster.GetNeighbors(0, v, &after);
  }
  EXPECT_LT(after.remote_reads.load(), before.remote_reads.load());
  EXPECT_GT(after.cache_hits.load(), 0u);
}

TEST(ClusterAccessTest, CachedDataMatchesOwnerData) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();
  cluster.InstallRandomCache(0.5, 11);
  for (VertexId v = 0; v < 300; ++v) {
    const auto got = cluster.GetNeighbors(1, v, nullptr);
    ASSERT_EQ(got.size(), g.OutDegree(v));
    const auto want = g.OutNeighbors(v);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].dst, want[i].dst);
    }
  }
}

TEST(ClusterAccessTest, LruCacheAdmitsOnRemoteFetch) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallLruCache(1000);
  // Find a remote vertex from worker 0's perspective.
  VertexId remote = kInvalidVertex;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cluster.OwnerOf(v) != 0) {
      remote = v;
      break;
    }
  }
  ASSERT_NE(remote, kInvalidVertex);
  CommStats stats;
  cluster.GetNeighbors(0, remote, &stats);  // miss -> remote + admit
  cluster.GetNeighbors(0, remote, &stats);  // hit
  EXPECT_EQ(stats.remote_reads.load(), 1u);
  EXPECT_EQ(stats.cache_hits.load(), 1u);
}

TEST(ClusterAccessTest, TypedAccessCountsOnce) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  auto cluster =
      std::move(Cluster::Build(taobao, EdgeCutPartitioner(), 2)).value();
  const EdgeType buy = taobao.schema().EdgeTypeId("buy").value();
  CommStats stats;
  for (VertexId v = 0; v < 100; ++v) {
    cluster.GetNeighbors(0, v, buy, &stats);
  }
  EXPECT_EQ(stats.TotalReads(), 100u);
}

TEST(ClusterAccessTest, ClearCachesRestoresRemoteCounting) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallRandomCache(1.0, 3);
  cluster.ClearCaches();
  CommStats stats;
  for (VertexId v = 0; v < 100; ++v) cluster.GetNeighbors(0, v, &stats);
  EXPECT_EQ(stats.cache_hits.load(), 0u);
}

TEST(CommModelTest, ModeledTimeScalesWithRemote) {
  CommModel model;
  model.remote_rpc_us = 100.0;
  model.remote_item_us = 0.0;
  model.local_latency_us = 0.0;
  CommStats stats;
  stats.remote_reads = 50;  // 50 individual reads = 50 messages
  EXPECT_NEAR(model.ModeledMillis(stats), 5.0, 1e-9);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(CommModelTest, BatchedReadsAmortizeTheMessageCost) {
  CommModel model;
  model.remote_rpc_us = 100.0;
  model.remote_item_us = 1.0;
  model.local_latency_us = 0.0;
  // 1000 reads as individual RPCs: 1000 messages + 1000 items.
  CommStats individual;
  individual.remote_reads = 1000;
  EXPECT_NEAR(model.ModeledMillis(individual), (1000 * 100.0 + 1000) * 1e-3,
              1e-9);
  // The same 1000 reads coalesced into 3 batches: 3 messages + 1000 items.
  CommStats batched;
  batched.remote_reads = 1000;
  batched.batched_remote_reads = 1000;
  batched.remote_batches = 3;
  EXPECT_NEAR(model.ModeledMillis(batched), (3 * 100.0 + 1000) * 1e-3, 1e-9);
  EXPECT_GT(model.ModeledMillis(individual),
            50 * model.ModeledMillis(batched));
}

TEST(CommStatsTest, SnapshotAndDelta) {
  CommStats stats;
  stats.local_reads = 5;
  stats.remote_reads = 7;
  const CommStats::Snapshot before = stats.snapshot();
  EXPECT_EQ(before.TotalReads(), 12u);
  stats.local_reads += 10;
  stats.cache_hits += 2;
  stats.remote_reads += 3;
  stats.remote_batches += 1;
  stats.batched_remote_reads += 3;
  const CommStats::Snapshot delta = stats.snapshot().Delta(before);
  EXPECT_EQ(delta.local_reads, 10u);
  EXPECT_EQ(delta.cache_hits, 2u);
  EXPECT_EQ(delta.remote_reads, 3u);
  EXPECT_EQ(delta.remote_batches, 1u);
  EXPECT_EQ(delta.batched_remote_reads, 3u);
  EXPECT_FALSE(delta.ToString().empty());
}

TEST(NaiveBuildTest, SlowerOrEqualToMeasuredParallelCriticalPath) {
  const AttributedGraph g = MakeGraph();
  const double naive_ms = NaiveLockedBuildMillis(g);
  EXPECT_GT(naive_ms, 0.0);
}

TEST(MpscRingTest, SingleThreadFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(MpscRingTest, FullRingRejectsPush) {
  MpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));
  int out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPush(99));  // slot freed
}

TEST(MpscRingTest, ConcurrentProducersLoseNothing) {
  MpscRing<int> ring(1024);
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    int v;
    while (popped.load() < kPerProducer * kProducers) {
      if (ring.TryPop(&v)) {
        sum += v;
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring] {
      for (int i = 1; i <= kPerProducer; ++i) {
        while (!ring.TryPush(i)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  const long expected =
      static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum.load(), expected);
}

TEST(BucketExecutorTest, ExecutesEverythingOnDrain) {
  BucketExecutor exec(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(exec.Submit(i, [&count] { ++count; }));
  }
  exec.Drain();
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(exec.dropped_after_spin(), 0u);
}

TEST(BucketExecutorTest, SameGroupIsSequential) {
  // All ops on one group must execute in submission order (single consumer,
  // no locking): record the order and verify.
  BucketExecutor exec(4);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(exec.Submit(7, [&order, i] { order.push_back(i); }));
  }
  exec.Drain();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(BucketExecutorTest, GroupsRouteStably) {
  BucketExecutor exec(3);
  // Two ops on the same group from different "threads of submission" still
  // serialize; different groups may interleave but each sees its own order.
  std::vector<int> a, b;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(exec.Submit(0, [&a, i] { a.push_back(i); }));
    ASSERT_TRUE(exec.Submit(1, [&b, i] { b.push_back(i); }));
  }
  exec.Drain();
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], i);
  }
}

TEST(BucketExecutorTest, FullRingDropsAfterSpinBudgetInsteadOfHanging) {
  // Stall the single consumer of bucket 0 with a blocking op, fill the
  // ring, and submit one more with a tiny spin budget: Submit must give up,
  // report false, and count the drop — not spin forever.
  BucketExecutor exec(/*num_buckets=*/1, /*ring_capacity=*/4,
                      /*submit_spin_limit=*/16);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(exec.Submit(0, [&] {
    while (!release.load()) std::this_thread::yield();
    ++ran;
  }));
  // Wait until the consumer has picked up the blocker so the ring is free.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(exec.Submit(0, [&ran] { ++ran; }));
  }
  int inline_runs = 0;
  for (int i = 0; i < 3; ++i) {
    if (!exec.Submit(0, [&ran] { ++ran; })) {
      ++inline_runs;  // caller's responsibility now
      ++ran;
    }
  }
  EXPECT_GT(inline_runs, 0);
  EXPECT_EQ(exec.dropped_after_spin(),
            static_cast<uint64_t>(inline_runs));
  release.store(true);
  exec.Drain();
  EXPECT_EQ(ran.load(), 1 + 4 + 3);
}

TEST(BucketExecutorTest, TrySubmitReportsBackpressureAsResourceExhausted) {
  // Same setup as the drop test, but through the Status-returning API: a
  // successful enqueue is OK, a spin-budget exhaustion is ResourceExhausted
  // (local backpressure — distinct from kUnavailable, a dead remote), and
  // the rejected op must not run.
  BucketExecutor exec(/*num_buckets=*/1, /*ring_capacity=*/4,
                      /*submit_spin_limit=*/16);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(exec.TrySubmit(0, [&] {
    while (!release.load()) std::this_thread::yield();
    ++ran;
  }).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(exec.TrySubmit(0, [&ran] { ++ran; }).ok());
  }
  // Ring is now full and its consumer blocked: the submit must give up
  // with the backpressure code, leaving the op unexecuted.
  const Status st = exec.TrySubmit(0, [&ran] { ++ran; });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(st.message().empty());
  EXPECT_EQ(exec.dropped_after_spin(), 1u);
  release.store(true);
  exec.Drain();
  EXPECT_EQ(ran.load(), 1 + 4);  // the rejected op never ran
}

TEST(BucketExecutorTest, ExportsQueueDepthGauge) {
  // The executor resolves "bucket.queue_depth" from the default registry at
  // construction; with the single consumer stalled every accepted op stays
  // in flight, so the gauge (last set on the submit path) reads exactly the
  // number of accepted ops. After Drain the accessor must be back to zero.
  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);
  {
    BucketExecutor exec(/*num_buckets=*/1, /*ring_capacity=*/8,
                        /*submit_spin_limit=*/16);
    std::atomic<bool> release{false};
    ASSERT_TRUE(exec.TrySubmit(0, [&] {
      while (!release.load()) std::this_thread::yield();
    }).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(exec.TrySubmit(0, [] {}).ok());
    }
    EXPECT_EQ(exec.queue_depth(), 5u);
    EXPECT_EQ(registry.GetGauge("bucket.queue_depth")->Value(), 5.0);
    release.store(true);
    exec.Drain();
    EXPECT_EQ(exec.queue_depth(), 0u);
  }
  obs::SetDefault(nullptr);
}

TEST(MpscRingTest, MultiProducerStressNoLossNoDuplication) {
  // N producers push disjoint tagged ranges; the consumer must see every
  // value exactly once (no loss, no duplication, any interleaving).
  MpscRing<uint64_t> ring(256);
  constexpr uint64_t kPerProducer = 5000;
  constexpr uint64_t kProducers = 6;
  std::vector<uint64_t> seen;
  seen.reserve(kPerProducer * kProducers);
  std::thread consumer([&] {
    uint64_t v;
    while (seen.size() < kPerProducer * kProducers) {
      if (ring.TryPop(&v)) {
        seen.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t tagged = p * 1'000'000ull + i;
        while (!ring.TryPush(tagged)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  ASSERT_EQ(seen.size(), kPerProducer * kProducers);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "duplicate value popped";
  for (uint64_t p = 0; p < kProducers; ++p) {
    for (uint64_t i : {uint64_t{0}, kPerProducer - 1}) {
      EXPECT_TRUE(std::binary_search(seen.begin(), seen.end(),
                                     p * 1'000'000ull + i));
    }
  }
}

TEST(MpscRingTest, FullRingBackpressureRecovers) {
  // Producers outpace a deliberately slow consumer on a tiny ring: pushes
  // must fail (backpressure) rather than overwrite, and every item must
  // still arrive once the consumer catches up.
  MpscRing<int> ring(8);
  constexpr int kItems = 2000;
  std::atomic<long> pushed_sum{0};
  std::atomic<bool> saw_full{false};
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) {
      if (!ring.TryPush(i)) {
        saw_full.store(true);
        while (!ring.TryPush(i)) std::this_thread::yield();
      }
      pushed_sum += i;
    }
  });
  long consumed_sum = 0;
  int consumed = 0;
  int v;
  while (consumed < kItems) {
    if (ring.TryPop(&v)) {
      consumed_sum += v;
      ++consumed;
      if (consumed % 64 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  producer.join();
  EXPECT_TRUE(saw_full.load()) << "ring never filled; backpressure untested";
  EXPECT_EQ(consumed_sum, pushed_sum.load());
  EXPECT_FALSE(ring.TryPop(&v));
}

// ---------------------------------------------------------------------------
// Batched neighbor reads: GetNeighborsBatch must return byte-identical data
// to per-vertex GetNeighbors on every path and coalesce its remote residue.

bool SameBytes(std::span<const Neighbor> a, std::span<const Neighbor> b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(Neighbor)) == 0;
}

TEST(ClusterBatchTest, MatchesPerVertexAcrossOwnedCachedRemote) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 4)).value();
  // Random pinned cache so the batch hits all three partitions.
  cluster.InstallRandomCache(0.4, 17);
  std::vector<VertexId> batch;
  for (VertexId v = 0; v < g.num_vertices(); v += 3) batch.push_back(v);
  batch.push_back(batch.front());  // duplicate slots must resolve too

  BatchResult result;
  cluster.GetNeighborsBatch(/*from=*/1, batch, kAllEdgeTypes, &result,
                            nullptr);
  ASSERT_EQ(result.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto want = cluster.GetNeighbors(1, batch[i], nullptr);
    EXPECT_TRUE(SameBytes(result[i], want)) << "vertex " << batch[i];
  }
}

TEST(ClusterBatchTest, TypedMatchesPerVertex) {
  auto taobao = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value();
  auto cluster =
      std::move(Cluster::Build(taobao, EdgeCutPartitioner(), 3)).value();
  const EdgeType click = taobao.schema().EdgeTypeId("click").value();
  std::vector<VertexId> batch;
  for (VertexId v = 0; v < taobao.num_vertices(); v += 7) batch.push_back(v);
  BatchResult result;
  cluster.GetNeighborsBatch(0, batch, click, &result, nullptr);
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto want = cluster.GetNeighbors(0, batch[i], click, nullptr);
    EXPECT_TRUE(SameBytes(result[i], want)) << "vertex " << batch[i];
  }
}

TEST(ClusterBatchTest, CoalescesRemoteResidueToOneRequestPerWorker) {
  const AttributedGraph g = MakeGraph();
  const uint32_t workers = 4;
  auto cluster =
      std::move(Cluster::Build(g, EdgeCutPartitioner(), workers)).value();
  std::vector<VertexId> batch(g.num_vertices());
  std::iota(batch.begin(), batch.end(), 0);

  CommStats stats;
  BatchResult result;
  cluster.GetNeighborsBatch(/*from=*/0, batch, kAllEdgeTypes, &result,
                            &stats);
  // At most one coalesced request per non-local worker, regardless of how
  // many vertices each one owns.
  EXPECT_LE(stats.remote_batches.load(), workers - 1);
  EXPECT_GT(stats.remote_batches.load(), 0u);
  // Every remote read traveled inside a batch, and the batch count is far
  // below the read count.
  EXPECT_EQ(stats.batched_remote_reads.load(), stats.remote_reads.load());
  EXPECT_GT(stats.remote_reads.load(), 50 * stats.remote_batches.load());
  EXPECT_GT(stats.local_reads.load(), 0u);
  EXPECT_EQ(stats.cache_hits.load(), 0u);
}

TEST(ClusterBatchTest, CacheHitsShortCircuitTheRemotePath) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallRandomCache(1.0, 5);  // everything cached
  std::vector<VertexId> batch;
  for (VertexId v = 0; v < 300; ++v) batch.push_back(v);
  CommStats stats;
  BatchResult result;
  cluster.GetNeighborsBatch(0, batch, kAllEdgeTypes, &result, &stats);
  EXPECT_EQ(stats.remote_reads.load(), 0u);
  EXPECT_EQ(stats.remote_batches.load(), 0u);
  EXPECT_GT(stats.cache_hits.load(), 0u);
}

TEST(ClusterBatchTest, LruAdmitsBatchFetchedVertices) {
  const AttributedGraph g = MakeGraph();
  auto cluster = std::move(Cluster::Build(g, EdgeCutPartitioner(), 2)).value();
  cluster.InstallLruCache(4096);
  std::vector<VertexId> batch;
  for (VertexId v = 0; v < 200; ++v) batch.push_back(v);
  CommStats stats;
  BatchResult result;
  cluster.GetNeighborsBatch(0, batch, kAllEdgeTypes, &result, &stats);
  const uint64_t first_remote = stats.remote_reads.load();
  EXPECT_GT(first_remote, 0u);
  // Second pass over the same batch: everything remote is now cached.
  cluster.GetNeighborsBatch(0, batch, kAllEdgeTypes, &result, &stats);
  EXPECT_EQ(stats.remote_reads.load(), first_remote);
  EXPECT_EQ(stats.cache_hits.load(), first_remote);
}

}  // namespace
}  // namespace aligraph
