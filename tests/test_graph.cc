// Tests for the graph data model: schema, attribute store, builder / CSR,
// k-hop counts and dynamic graphs.

#include <gtest/gtest.h>

#include <vector>

#include "common/threadpool.h"
#include "graph/attributes.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "graph/khop.h"
#include "graph/schema.h"

namespace aligraph {
namespace {

TEST(SchemaTest, DefaultSchemaIsHomogeneous) {
  GraphSchema s;
  EXPECT_EQ(s.num_vertex_types(), 1u);
  EXPECT_EQ(s.num_edge_types(), 1u);
  EXPECT_FALSE(s.IsHeterogeneous());
}

TEST(SchemaTest, RegistrationIsIdempotent) {
  GraphSchema s;
  const VertexType user = s.AddVertexType("user");
  EXPECT_EQ(s.AddVertexType("user"), user);
  EXPECT_EQ(s.num_vertex_types(), 2u);
  EXPECT_TRUE(s.IsHeterogeneous());
}

TEST(SchemaTest, LookupByName) {
  GraphSchema s;
  const EdgeType click = s.AddEdgeType("click");
  auto found = s.EdgeTypeId("click");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), click);
  EXPECT_EQ(s.EdgeTypeName(click), "click");
  EXPECT_FALSE(s.EdgeTypeId("nope").ok());
  EXPECT_FALSE(s.VertexTypeId("nope").ok());
}

TEST(AttributeStoreTest, InterningDeduplicates) {
  AttributeStore store;
  const AttrId a = store.Intern({1.0f, 2.0f});
  const AttrId b = store.Intern({1.0f, 2.0f});
  const AttrId c = store.Intern({1.0f, 2.5f});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(store.num_records(), 2u);
  EXPECT_EQ(store.num_references(), 3u);
}

TEST(AttributeStoreTest, GetReturnsStoredValues) {
  AttributeStore store;
  const AttrId id = store.Intern({3.0f, 4.0f, 5.0f});
  auto span = store.Get(id);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_FLOAT_EQ(span[0], 3.0f);
  EXPECT_FLOAT_EQ(span[2], 5.0f);
}

TEST(AttributeStoreTest, SeparateStorageSavesSpace) {
  // The paper's argument: many duplicated attribute payloads. 1000 refs to
  // 4 distinct records must use far less than inlined storage.
  AttributeStore store;
  for (int i = 0; i < 1000; ++i) {
    store.Intern({static_cast<float>(i % 4), 1.0f, 2.0f, 3.0f});
  }
  EXPECT_EQ(store.num_records(), 4u);
  EXPECT_LT(store.DedupBytes(), store.InlinedBytes() / 10);
}

TEST(AttributeStoreTest, EmptyRecordSupported) {
  AttributeStore store;
  const AttrId id = store.Intern({});
  EXPECT_EQ(store.Get(id).size(), 0u);
}

class SmallGraphTest : public ::testing::Test {
 protected:
  // user0 -click-> item2, user0 -buy-> item3, user1 -click-> item2,
  // item2 -co-> item3.
  void SetUp() override {
    GraphSchema schema;
    user_ = schema.AddVertexType("user");
    item_ = schema.AddVertexType("item");
    click_ = schema.AddEdgeType("click");
    buy_ = schema.AddEdgeType("buy");
    co_ = schema.AddEdgeType("co");
    GraphBuilder gb(schema);
    gb.AddVertex(user_, {1.0f});
    gb.AddVertex(user_, {1.0f});
    gb.AddVertex(item_, {2.0f, 3.0f});
    gb.AddVertex(item_, {2.0f, 3.0f});
    ASSERT_TRUE(gb.AddEdge(0, 2, click_, 1.0f).ok());
    ASSERT_TRUE(gb.AddEdge(0, 3, buy_, 2.0f).ok());
    ASSERT_TRUE(gb.AddEdge(1, 2, click_, 1.0f).ok());
    ASSERT_TRUE(gb.AddEdge(2, 3, co_, 0.5f).ok());
    auto built = gb.Build();
    ASSERT_TRUE(built.ok());
    graph_ = std::move(built).value();
  }

  VertexType user_, item_;
  EdgeType click_, buy_, co_;
  AttributedGraph graph_;
};

TEST_F(SmallGraphTest, Counts) {
  EXPECT_EQ(graph_.num_vertices(), 4u);
  EXPECT_EQ(graph_.num_edges(), 4u);
  EXPECT_EQ(graph_.num_edge_types(), 4u);  // default "edge" + 3 registered
}

TEST_F(SmallGraphTest, MergedAdjacency) {
  EXPECT_EQ(graph_.OutDegree(0), 2u);
  EXPECT_EQ(graph_.OutDegree(1), 1u);
  EXPECT_EQ(graph_.InDegree(2), 2u);
  EXPECT_EQ(graph_.InDegree(3), 2u);
  EXPECT_EQ(graph_.OutDegree(3), 0u);
}

TEST_F(SmallGraphTest, TypedAdjacency) {
  EXPECT_EQ(graph_.OutDegree(0, click_), 1u);
  EXPECT_EQ(graph_.OutDegree(0, buy_), 1u);
  EXPECT_EQ(graph_.OutDegree(0, co_), 0u);
  auto clicks = graph_.OutNeighbors(0, click_);
  ASSERT_EQ(clicks.size(), 1u);
  EXPECT_EQ(clicks[0].dst, 2u);
  auto buys = graph_.OutNeighbors(0, buy_);
  ASSERT_EQ(buys.size(), 1u);
  EXPECT_EQ(buys[0].dst, 3u);
  EXPECT_FLOAT_EQ(buys[0].weight, 2.0f);
}

TEST_F(SmallGraphTest, TypedInAdjacency) {
  EXPECT_EQ(graph_.InDegree(2, click_), 2u);
  EXPECT_EQ(graph_.InDegree(3, buy_), 1u);
  EXPECT_EQ(graph_.InDegree(3, co_), 1u);
}

TEST_F(SmallGraphTest, VertexTypesAndFeatures) {
  EXPECT_EQ(graph_.vertex_type(0), user_);
  EXPECT_EQ(graph_.vertex_type(2), item_);
  EXPECT_EQ(graph_.VertexFeatures(0).size(), 1u);
  EXPECT_EQ(graph_.VertexFeatures(2).size(), 2u);
  // Duplicate attributes were interned once.
  EXPECT_EQ(graph_.vertex_attributes().num_records(), 2u);
}

TEST_F(SmallGraphTest, VerticesOfType) {
  auto users = graph_.VerticesOfType(user_);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 0u);
  EXPECT_EQ(users[1], 1u);
  EXPECT_EQ(graph_.VerticesOfType(item_).size(), 2u);
}

TEST_F(SmallGraphTest, MemoryAccountingPositive) {
  EXPECT_GT(graph_.MemoryBytes(), 0u);
  EXPECT_FALSE(graph_.ToString().empty());
}

TEST(GraphBuilderTest, RejectsInvalidEdges) {
  GraphBuilder gb;
  gb.AddVertex();
  EXPECT_FALSE(gb.AddEdge(0, 5).ok());          // endpoint out of range
  EXPECT_FALSE(gb.AddEdge(0, 0, 9).ok());       // unregistered type
  EXPECT_FALSE(gb.AddEdge(0, 0, 0, -1.0f).ok());  // negative weight
}

TEST(GraphBuilderTest, UndirectedMirrorsEdges) {
  GraphBuilder gb(GraphSchema(), /*undirected=*/true);
  gb.AddVertex();
  gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  auto g = gb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutDegree(0), 1u);
  EXPECT_EQ(g->OutDegree(1), 1u);
  EXPECT_EQ(g->InDegree(0), 1u);
  EXPECT_EQ(g->InDegree(1), 1u);
}

TEST(GraphBuilderTest, SelfLoopNotMirroredTwice) {
  GraphBuilder gb(GraphSchema(), /*undirected=*/true);
  gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 0).ok());
  auto g = gb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutDegree(0), 1u);
}

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder gb;
  auto g = gb.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 0u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(KHopTest, OneHopEqualsDegree) {
  // Path 0 -> 1 -> 2.
  GraphBuilder gb;
  for (int i = 0; i < 3; ++i) gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  ASSERT_TRUE(gb.AddEdge(1, 2).ok());
  auto g = std::move(gb.Build()).value();
  const auto out1 = KHopOutCounts(g, 1);
  EXPECT_DOUBLE_EQ(out1[0], 1.0);
  EXPECT_DOUBLE_EQ(out1[1], 1.0);
  EXPECT_DOUBLE_EQ(out1[2], 0.0);
  const auto in1 = KHopInCounts(g, 1);
  EXPECT_DOUBLE_EQ(in1[0], 0.0);
  EXPECT_DOUBLE_EQ(in1[2], 1.0);
}

TEST(KHopTest, TwoHopPathCounts) {
  // Diamond: 0->1, 0->2, 1->3, 2->3 — two 2-hop paths from 0 to 3.
  GraphBuilder gb;
  for (int i = 0; i < 4; ++i) gb.AddVertex();
  ASSERT_TRUE(gb.AddEdge(0, 1).ok());
  ASSERT_TRUE(gb.AddEdge(0, 2).ok());
  ASSERT_TRUE(gb.AddEdge(1, 3).ok());
  ASSERT_TRUE(gb.AddEdge(2, 3).ok());
  auto g = std::move(gb.Build()).value();
  const auto out2 = KHopOutCounts(g, 2);
  EXPECT_DOUBLE_EQ(out2[0], 2.0);  // both paths reach 3
  EXPECT_DOUBLE_EQ(out2[1], 0.0);  // 3 has no out-edges
  const auto in2 = KHopInCounts(g, 2);
  EXPECT_DOUBLE_EQ(in2[3], 2.0);
}

TEST(KHopTest, ImportanceRatio) {
  // Hub with many in-edges and one out-edge has high importance.
  GraphBuilder gb;
  for (int i = 0; i < 5; ++i) gb.AddVertex();
  for (VertexId v = 1; v <= 3; ++v) ASSERT_TRUE(gb.AddEdge(v, 0).ok());
  ASSERT_TRUE(gb.AddEdge(0, 4).ok());
  auto g = std::move(gb.Build()).value();
  const auto imp = ImportanceScores(g, 1);
  EXPECT_DOUBLE_EQ(imp[0], 3.0);  // D_i=3, D_o=1
  EXPECT_DOUBLE_EQ(imp[4], 0.0);  // no out-edges -> 0 by convention
}

TEST(KHopTest, ThreadPoolResultsAreBitIdentical) {
  // The recurrence parallelizes over rows; each row keeps its sequential
  // accumulation order, so pooled results must equal the serial ones
  // exactly, not just approximately.
  GraphBuilder gb;
  constexpr VertexId kN = 400;
  for (VertexId i = 0; i < kN; ++i) gb.AddVertex();
  for (VertexId v = 0; v < kN; ++v) {
    for (VertexId d = 1; d <= 5; ++d) {
      ASSERT_TRUE(gb.AddEdge(v, (v * 7 + d * 13) % kN).ok());
    }
  }
  auto g = std::move(gb.Build()).value();
  ThreadPool pool(4);
  for (int k : {1, 2, 3}) {
    EXPECT_EQ(KHopOutCounts(g, k), KHopOutCounts(g, k, &pool)) << "k=" << k;
    EXPECT_EQ(KHopInCounts(g, k), KHopInCounts(g, k, &pool)) << "k=" << k;
    EXPECT_EQ(ImportanceScores(g, k), ImportanceScores(g, k, &pool));
  }
}

TEST(DynamicGraphTest, SnapshotsAccumulateEdges) {
  DynamicGraphBuilder dgb;
  for (int i = 0; i < 3; ++i) dgb.AddVertex();
  ASSERT_TRUE(dgb.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(dgb.AddEdge(1, 2, 2).ok());
  ASSERT_TRUE(dgb.AddEdge(0, 2, 3, 0, 1.0f, EvolutionKind::kBurst).ok());
  auto dg = std::move(dgb.Build()).value();
  ASSERT_EQ(dg.num_timestamps(), 3u);
  EXPECT_EQ(dg.Snapshot(1).num_edges(), 1u);
  EXPECT_EQ(dg.Snapshot(2).num_edges(), 2u);
  EXPECT_EQ(dg.Snapshot(3).num_edges(), 3u);
}

TEST(DynamicGraphTest, DeltasCarryKind) {
  DynamicGraphBuilder dgb;
  dgb.AddVertex();
  dgb.AddVertex();
  ASSERT_TRUE(dgb.AddEdge(0, 1, 2, 0, 1.0f, EvolutionKind::kBurst).ok());
  auto dg = std::move(dgb.Build()).value();
  EXPECT_TRUE(dg.DeltaAt(1).empty());
  ASSERT_EQ(dg.DeltaAt(2).size(), 1u);
  EXPECT_EQ(dg.DeltaAt(2)[0].kind, EvolutionKind::kBurst);
}

TEST(DynamicGraphTest, RejectsBadInput) {
  DynamicGraphBuilder dgb;
  dgb.AddVertex();
  EXPECT_FALSE(dgb.AddEdge(0, 7, 1).ok());
  EXPECT_FALSE(dgb.AddEdge(0, 0, 0).ok());  // timestamps start at 1
}

}  // namespace
}  // namespace aligraph
