// Tests for the algorithm layer: every baseline and in-house model runs on
// small graphs, produces well-formed embeddings, and where the paper makes
// a comparative claim at small scale we check the direction of the effect.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "algo/bayesian.h"
#include "algo/classic.h"
#include "algo/evolving.h"
#include "algo/gatne.h"
#include "algo/gnn.h"
#include "algo/hep.h"
#include "algo/heterogeneous.h"
#include "algo/hierarchical.h"
#include "algo/mixture.h"
#include "eval/link_prediction.h"
#include "gen/dynamic_gen.h"
#include "gen/powerlaw.h"
#include "gen/taobao.h"

namespace aligraph {
namespace algo {
namespace {

// Small but non-trivial test graphs, built once per suite.
const AttributedGraph& SmallGraph() {
  static const AttributedGraph* g = [] {
    gen::ChungLuConfig cfg;
    cfg.num_vertices = 400;
    cfg.avg_degree = 8;
    cfg.directed = false;
    cfg.seed = 3;
    return new AttributedGraph(std::move(gen::ChungLu(cfg)).value());
  }();
  return *g;
}

// Stochastic-block-model graph: 20 communities of 20 vertices. Link
// prediction is only meaningful on graphs with structure (a pure Chung-Lu
// graph carries no signal beyond degree), so quality tests use this.
const AttributedGraph& CommunityGraph() {
  static const AttributedGraph* g = [] {
    GraphBuilder gb(GraphSchema(), /*undirected=*/true);
    const int comms = 20, per = 20;
    for (int i = 0; i < comms * per; ++i) gb.AddVertex();
    Rng rng(31);
    for (int v = 0; v < comms * per; ++v) {
      const int c = v / per;
      for (int e = 0; e < 6; ++e) {
        const int u = c * per + static_cast<int>(rng.Uniform(per));
        if (u != v) (void)gb.AddEdge(v, u);
      }
      const int u = static_cast<int>(rng.Uniform(comms * per));
      if (u != v) (void)gb.AddEdge(v, u);
    }
    return new AttributedGraph(std::move(gb.Build()).value());
  }();
  return *g;
}

const AttributedGraph& SmallTaobao() {
  static const AttributedGraph* g = [] {
    return new AttributedGraph(
        std::move(gen::Taobao(gen::TaobaoSmallConfig(0.03))).value());
  }();
  return *g;
}

bool IsFinite(const nn::Matrix& m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

// Every embedding algorithm must run and produce a finite [n, *] matrix.
class AlgorithmSmokeTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<EmbeddingAlgorithm> Make(const std::string& name) {
    nn::WalkConfig fast_walks;
    fast_walks.walks_per_vertex = 1;
    fast_walks.walk_length = 6;
    nn::SkipGramConfig fast_sgns;
    fast_sgns.dim = 8;
    fast_sgns.epochs = 1;

    if (name == "deepwalk") {
      DeepWalk::Config c;
      c.walks = fast_walks;
      c.sgns = fast_sgns;
      return std::make_unique<DeepWalk>(c);
    }
    if (name == "node2vec") {
      Node2Vec::Config c;
      c.walks = fast_walks;
      c.sgns = fast_sgns;
      return std::make_unique<Node2Vec>(c);
    }
    if (name == "line") {
      Line::Config c;
      c.dim = 8;
      c.epochs = 1;
      return std::make_unique<Line>(c);
    }
    if (name == "metapath2vec") {
      Metapath2Vec::Config c;
      c.walks = fast_walks;
      c.sgns = fast_sgns;
      return std::make_unique<Metapath2Vec>(c);
    }
    if (name == "pmne-n" || name == "pmne-r" || name == "pmne-c") {
      Pmne::Config c;
      c.walks = fast_walks;
      c.sgns = fast_sgns;
      c.variant = name == "pmne-n" ? PmneVariant::kNetwork
                  : name == "pmne-r" ? PmneVariant::kResults
                                     : PmneVariant::kCoAnalysis;
      return std::make_unique<Pmne>(c);
    }
    if (name == "mve") {
      Mve::Config c;
      c.walks = fast_walks;
      c.sgns = fast_sgns;
      c.attention_rounds = 50;
      return std::make_unique<Mve>(c);
    }
    if (name == "mne") {
      Mne::Config c;
      c.walks = fast_walks;
      c.dim = 8;
      c.extra_dim = 4;
      c.epochs = 1;
      return std::make_unique<Mne>(c);
    }
    if (name == "anrl") {
      Anrl::Config c;
      c.dim = 8;
      c.feature_dim = 8;
      c.walks = fast_walks;
      c.epochs = 1;
      return std::make_unique<Anrl>(c);
    }
    if (name == "graphsage") {
      GnnConfig c;
      c.dim = 8;
      c.feature_dim = 8;
      c.batches_per_epoch = 8;
      return std::make_unique<GraphSage>(c);
    }
    if (name == "graphsage-maxpool") {
      GnnConfig c;
      c.dim = 8;
      c.feature_dim = 8;
      c.batches_per_epoch = 8;
      c.aggregator = "maxpool";
      return std::make_unique<GraphSage>(c);
    }
    if (name == "gcn" || name == "fastgcn" || name == "as-gcn") {
      Gcn::Config c;
      c.base.dim = 8;
      c.base.feature_dim = 8;
      c.base.batches_per_epoch = 8;
      c.mode = name == "gcn" ? GcnMode::kFull
               : name == "fastgcn" ? GcnMode::kFastGcn
                                   : GcnMode::kAsGcn;
      return std::make_unique<Gcn>(c);
    }
    if (name == "struc2vec") {
      Struc2Vec::Config c;
      c.sgns = fast_sgns;
      c.walks = fast_walks;
      c.candidates = 64;
      return std::make_unique<Struc2Vec>(c);
    }
    if (name == "hep" || name == "ahep") {
      Hep::Config c;
      c.dim = 8;
      c.epochs = 1;
      c.sample_size = name == "ahep" ? 3 : 0;
      return std::make_unique<Hep>(c);
    }
    if (name == "gatne") {
      Gatne::Config c;
      c.dim = 8;
      c.spec_dim = 4;
      c.att_dim = 4;
      c.walks = fast_walks;
      c.epochs = 1;
      return std::make_unique<Gatne>(c);
    }
    if (name == "mixture_gnn") {
      MixtureGnn::Config c;
      c.senses = 2;
      c.sense_dim = 4;
      c.walks = fast_walks;
      c.epochs = 1;
      return std::make_unique<MixtureGnn>(c);
    }
    if (name == "hierarchical_gnn") {
      HierarchicalGnn::Config c;
      c.base.dim = 8;
      c.base.feature_dim = 8;
      c.base.batches_per_epoch = 4;
      c.clusters = 16;
      return std::make_unique<HierarchicalGnn>(c);
    }
    ADD_FAILURE() << "unknown algorithm " << name;
    return nullptr;
  }
};

TEST_P(AlgorithmSmokeTest, ProducesFiniteEmbeddings) {
  auto algorithm = Make(GetParam());
  ASSERT_NE(algorithm, nullptr);
  const AttributedGraph& g = SmallGraph();
  auto emb = algorithm->Embed(g);
  ASSERT_TRUE(emb.ok()) << GetParam() << ": " << emb.status().ToString();
  EXPECT_EQ(emb->rows(), g.num_vertices()) << GetParam();
  EXPECT_GT(emb->cols(), 0u) << GetParam();
  EXPECT_TRUE(IsFinite(*emb)) << GetParam();
}

TEST_P(AlgorithmSmokeTest, WorksOnHeterogeneousGraph) {
  auto algorithm = Make(GetParam());
  ASSERT_NE(algorithm, nullptr);
  const AttributedGraph& g = SmallTaobao();
  auto emb = algorithm->Embed(g);
  ASSERT_TRUE(emb.ok()) << GetParam() << ": " << emb.status().ToString();
  EXPECT_EQ(emb->rows(), g.num_vertices()) << GetParam();
  EXPECT_TRUE(IsFinite(*emb)) << GetParam();
}

TEST_P(AlgorithmSmokeTest, FailsCleanlyOnEmptyGraph) {
  auto algorithm = Make(GetParam());
  ASSERT_NE(algorithm, nullptr);
  GraphBuilder gb;
  auto empty = std::move(gb.Build()).value();
  EXPECT_FALSE(algorithm->Embed(empty).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSmokeTest,
    ::testing::Values("deepwalk", "node2vec", "line", "metapath2vec",
                      "pmne-n", "pmne-r", "pmne-c", "mve", "mne", "anrl",
                      "graphsage", "graphsage-maxpool", "gcn", "fastgcn",
                      "as-gcn", "struc2vec", "hep", "ahep", "gatne",
                      "mixture_gnn", "hierarchical_gnn"));

TEST(DeepWalkQualityTest, BeatsRandomEmbeddingsOnLinkPrediction) {
  const AttributedGraph& g = CommunityGraph();
  auto split = std::move(eval::SplitLinkPrediction(g, 0.2, 42)).value();

  DeepWalk::Config cfg;
  cfg.walks.walks_per_vertex = 4;
  cfg.walks.walk_length = 10;
  cfg.sgns.dim = 16;
  cfg.sgns.epochs = 3;
  cfg.sgns.learning_rate = 0.025f;
  DeepWalk dw(cfg);
  auto emb = std::move(dw.Embed(split.train)).value();
  const auto trained = eval::EvaluateLinkPrediction(emb, split);

  Rng rng(5);
  nn::Matrix random = nn::Matrix::Gaussian(g.num_vertices(), 16, 1.0f, rng);
  const auto untrained = eval::EvaluateLinkPrediction(random, split);
  EXPECT_GT(trained.roc_auc, untrained.roc_auc + 0.1);
  EXPECT_GT(trained.roc_auc, 0.6);
}

TEST(HepCostTest, AhepTouchesFewerRows) {
  const AttributedGraph& g = SmallTaobao();
  Hep::Config full;
  full.dim = 8;
  full.epochs = 1;
  Hep hep(full);
  ASSERT_TRUE(hep.Embed(g).ok());

  Hep::Config sampled = full;
  sampled.sample_size = 2;
  Hep ahep(sampled);
  ASSERT_TRUE(ahep.Embed(g).ok());

  EXPECT_EQ(hep.name(), "hep");
  EXPECT_EQ(ahep.name(), "ahep");
  EXPECT_LT(ahep.propagation_terms(), hep.propagation_terms());
}

TEST(GatneTest, PerTypeEmbeddingsMaterialized) {
  const AttributedGraph& g = SmallTaobao();
  Gatne::Config cfg;
  cfg.dim = 8;
  cfg.spec_dim = 4;
  cfg.att_dim = 4;
  cfg.walks.walks_per_vertex = 1;
  cfg.walks.walk_length = 5;
  cfg.epochs = 1;
  Gatne gatne(cfg);
  ASSERT_TRUE(gatne.Embed(g).ok());
  EXPECT_EQ(gatne.per_type_embeddings().size(), g.num_edge_types());
  for (const auto& emb : gatne.per_type_embeddings()) {
    EXPECT_EQ(emb.rows(), g.num_vertices());
    EXPECT_TRUE(IsFinite(emb));
  }
}

TEST(MneTest, PerLayerEmbeddingsDifferFromCommon) {
  const AttributedGraph& g = SmallTaobao();
  Mne::Config cfg;
  cfg.dim = 8;
  cfg.extra_dim = 4;
  cfg.walks.walks_per_vertex = 1;
  cfg.walks.walk_length = 5;
  cfg.epochs = 1;
  Mne mne(cfg);
  auto common = std::move(mne.Embed(g)).value();
  ASSERT_EQ(mne.per_layer_embeddings().size(), g.num_edge_types());
  // Per-layer embedding = common + layer-specific part: not identical.
  double diff = 0;
  const auto& layer0 = mne.per_layer_embeddings()[1];
  for (size_t i = 0; i < std::min<size_t>(common.size(), 1000); ++i) {
    diff += std::abs(common.data()[i] - layer0.data()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(HierarchicalTest, OutputConcatenatesLevels) {
  const AttributedGraph& g = SmallGraph();
  HierarchicalGnn::Config cfg;
  cfg.base.dim = 8;
  cfg.base.feature_dim = 8;
  cfg.base.batches_per_epoch = 4;
  cfg.clusters = 8;
  HierarchicalGnn h(cfg);
  auto emb = std::move(h.Embed(g)).value();
  EXPECT_EQ(emb.cols(), 16u);  // 2 * dim
}

TEST(EvolvingTest, RunsAndReturnsScoresInRange) {
  gen::DynamicConfig dcfg;
  dcfg.num_vertices = 300;
  dcfg.num_timestamps = 4;
  dcfg.base_edges = 1500;
  dcfg.normal_edges_per_step = 400;
  dcfg.burst_size = 100;
  auto dg = std::move(gen::GenerateDynamic(dcfg)).value();

  for (auto embedder :
       {DynamicEmbedder::kEvolvingGnn, DynamicEmbedder::kStaticGraphSage,
        DynamicEmbedder::kTne}) {
    EvolvingGnn::Config cfg;
    cfg.gnn.dim = 8;
    cfg.gnn.feature_dim = 8;
    cfg.gnn.batches_per_epoch = 4;
    cfg.embedder = embedder;
    EvolvingGnn model(cfg);
    auto scores = model.Run(dg);
    ASSERT_TRUE(scores.ok()) << model.name();
    EXPECT_GE(scores->normal.micro, 0.0);
    EXPECT_LE(scores->normal.micro, 1.0);
    EXPECT_GE(scores->burst.macro, 0.0);
    EXPECT_LE(scores->burst.macro, 1.0);
  }
}

TEST(EvolvingTest, RejectsTooFewTimestamps) {
  gen::DynamicConfig dcfg;
  dcfg.num_vertices = 50;
  dcfg.num_timestamps = 2;
  dcfg.base_edges = 100;
  dcfg.normal_edges_per_step = 20;
  dcfg.burst_size = 5;
  auto dg = std::move(gen::GenerateDynamic(dcfg)).value();
  EvolvingGnn model;
  EXPECT_FALSE(model.Run(dg).ok());
}

TEST(BayesianTest, CorrectionPullsRelatedEntitiesTogether) {
  Rng rng(9);
  const size_t n = 60;
  const size_t d = 8;
  nn::Matrix base = nn::Matrix::Gaussian(n, d, 1.0f, rng);
  // Two knowledge groups: vertices 0..29 and 30..59.
  std::vector<VertexId> vertices(n);
  std::iota(vertices.begin(), vertices.end(), 0);
  std::vector<uint32_t> groups(n);
  for (size_t i = 0; i < n; ++i) groups[i] = i < 30 ? 0 : 1;

  BayesianCorrection::Config cfg;
  cfg.epochs = 2;
  cfg.pairs_per_epoch = 4000;
  BayesianCorrection model(cfg);
  auto corrected = std::move(model.Correct(base, vertices, groups)).value();

  auto mean_dist = [&](const nn::Matrix& emb, bool same_group) {
    double acc = 0;
    int count = 0;
    for (size_t i = 0; i < n; i += 3) {
      for (size_t j = i + 1; j < n; j += 3) {
        if ((groups[i] == groups[j]) != same_group) continue;
        double dist = 0;
        for (size_t k = 0; k < d; ++k) {
          const double diff = emb.At(i, k) - emb.At(j, k);
          dist += diff * diff;
        }
        acc += std::sqrt(dist);
        ++count;
      }
    }
    return acc / count;
  };
  const double within_before = mean_dist(base, true);
  const double within_after = mean_dist(corrected, true);
  const double across_after = mean_dist(corrected, false);
  EXPECT_LT(within_after, within_before);
  EXPECT_LT(within_after, across_after);
}

TEST(BayesianTest, MismatchedInputRejected) {
  nn::Matrix base(4, 2);
  BayesianCorrection model;
  EXPECT_FALSE(model.Correct(base, {0, 1}, {0}).ok());
}

TEST(AutoencoderTest, DaeAndVaeScoreInteractedItemsHigher) {
  // 40 users over 30 items with block structure: users < 20 like items
  // < 15, the rest like the others.
  const size_t num_items = 30;
  std::vector<std::vector<uint32_t>> interactions;
  Rng rng(13);
  for (int u = 0; u < 40; ++u) {
    std::vector<uint32_t> items;
    const uint32_t base = u < 20 ? 0 : 15;
    for (int k = 0; k < 6; ++k) {
      items.push_back(base + static_cast<uint32_t>(rng.Uniform(15)));
    }
    interactions.push_back(items);
  }
  for (bool variational : {false, true}) {
    InteractionAutoencoder::Config cfg;
    cfg.hidden = 16;
    cfg.epochs = 30;
    cfg.variational = variational;
    InteractionAutoencoder model(num_items, cfg);
    model.Train(interactions);
    // A block-0 user should score block-0 items above block-1 items.
    const auto scores = model.Score(interactions[0]);
    double block0 = 0, block1 = 0;
    for (size_t i = 0; i < 15; ++i) block0 += scores[i];
    for (size_t i = 15; i < 30; ++i) block1 += scores[i];
    EXPECT_GT(block0, block1) << model.name();
  }
}

TEST(FeatureMatrixTest, ShapeAndStandardization) {
  const AttributedGraph& g = SmallTaobao();
  nn::Matrix x = BuildFeatureMatrix(g, 8);
  EXPECT_EQ(x.rows(), g.num_vertices());
  EXPECT_EQ(x.cols(), 8u);
  // Columns are standardized: mean ~0, variance ~1 (or exactly 0 for
  // constant columns).
  for (size_t j = 0; j < 8; ++j) {
    double mean = 0, var = 0;
    for (size_t i = 0; i < x.rows(); ++i) mean += x.At(i, j);
    mean /= x.rows();
    for (size_t i = 0; i < x.rows(); ++i) {
      const double d = x.At(i, j) - mean;
      var += d * d;
    }
    var /= x.rows();
    EXPECT_NEAR(mean, 0.0, 1e-3) << "col " << j;
    EXPECT_TRUE(std::abs(var - 1.0) < 0.05 || var < 1e-6) << "col " << j;
  }
  // Vertices with different attributes get different rows.
  bool any_diff = false;
  for (size_t j = 0; j < 8 && !any_diff; ++j) {
    if (x.At(0, j) != x.At(x.rows() - 1, j)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace algo
}  // namespace aligraph
