// Tests for the online serving layer: LoadGenerator determinism and skew,
// admission control (in-flight never exceeds the bound, shed requests are
// counted and never served), modeled deadlines (abandoned requests never
// occupy a lane), bit-identity of every accepted request against the
// sequential offline replay, determinism of the whole modeled timeline
// across runs and pipeline depths, closed-loop population bounds, and the
// per-request "serve/request" trace roots.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "gen/powerlaw.h"
#include "graph/graph.h"
#include "layout/layout.h"
#include "nn/matrix.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"

namespace aligraph {
namespace serve {
namespace {

AttributedGraph TestGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 2000;
  cfg.avg_degree = 8;
  cfg.seed = 11;
  return std::move(gen::ChungLu(cfg)).value();
}

ServeConfig SmallServeConfig() {
  ServeConfig cfg;
  cfg.fanout1 = 4;
  cfg.fanout2 = 3;
  cfg.dim = 8;
  cfg.max_in_flight = 8;
  cfg.lanes = 2;
  cfg.deadline_us = 100000.0;
  cfg.pipeline_depth = 2;
  cfg.seed = 29;
  return cfg;
}

// ---------------------------------------------------------------------------
// LoadGenerator.

TEST(LoadGeneratorTest, RequestsArePureFunctionsOfId) {
  const AttributedGraph graph = TestGraph();
  LoadConfig load;
  load.num_requests = 64;
  load.roots_per_request = 3;
  load.seed = 7;
  const LoadGenerator a(graph, load);
  const LoadGenerator b(graph, load);

  // Same config => same stream, and querying ids in reverse order changes
  // nothing: every request is a pure function of (seed, id).
  for (uint64_t id = load.num_requests; id-- > 0;) {
    EXPECT_EQ(a.RootsFor(id), b.RootsFor(id)) << "id " << id;
    EXPECT_EQ(a.RootsFor(id), a.RootsFor(id)) << "id " << id;
    EXPECT_EQ(a.RequestSeed(id), b.RequestSeed(id)) << "id " << id;
    EXPECT_DOUBLE_EQ(a.OpenArrivalUs(id), b.OpenArrivalUs(id)) << "id " << id;
  }
  // Distinct ids get distinct sampler seeds (the independence that makes
  // shedding one request invisible to every other).
  EXPECT_NE(a.RequestSeed(0), a.RequestSeed(1));

  // A different seed produces a different stream.
  load.seed = 8;
  const LoadGenerator c(graph, load);
  bool any_diff = false;
  for (uint64_t id = 0; id < load.num_requests; ++id) {
    any_diff = any_diff || c.RootsFor(id) != a.RootsFor(id);
  }
  EXPECT_TRUE(any_diff);
}

TEST(LoadGeneratorTest, OpenArrivalsAreMonotoneAtTheConfiguredRate) {
  const AttributedGraph graph = TestGraph();
  LoadConfig load;
  load.num_requests = 2000;
  load.arrival_rate_rps = 5000.0;
  load.seed = 3;
  const LoadGenerator gen(graph, load);

  double prev = 0.0;
  for (uint64_t id = 0; id < load.num_requests; ++id) {
    const double t = gen.OpenArrivalUs(id);
    EXPECT_GT(t, prev) << "id " << id;
    prev = t;
  }
  // Mean gap of a Poisson stream at 5000 rps is 200us; 2000 samples put
  // the empirical mean well within 15%.
  const double mean_gap = prev / static_cast<double>(load.num_requests);
  EXPECT_NEAR(mean_gap, 200.0, 30.0);
}

TEST(LoadGeneratorTest, ZipfSkewConcentratesOnHighDegreeVertices) {
  const AttributedGraph graph = TestGraph();
  LoadConfig load;
  load.num_requests = 1000;
  load.roots_per_request = 4;
  load.zipf_exponent = 1.0;
  load.seed = 5;
  const LoadGenerator gen(graph, load);

  std::map<VertexId, size_t> freq;
  for (uint64_t id = 0; id < load.num_requests; ++id) {
    for (const VertexId v : gen.RootsFor(id)) ++freq[v];
  }
  const size_t hottest = freq[gen.VertexAtRank(0)];
  const size_t mid = freq.count(gen.VertexAtRank(1000))
                         ? freq[gen.VertexAtRank(1000)]
                         : 0;
  // Rank 0 carries ~1/H(2000) ~ 12% of 4000 draws; a mid-rank vertex
  // carries ~0.006%. Any reasonable stream separates them by an order of
  // magnitude.
  EXPECT_GT(hottest, 200u);
  EXPECT_GT(hottest, 10 * (mid + 1));
}

// ---------------------------------------------------------------------------
// Admission control and accounting.

TEST(ServeEngineTest, AdmissionBoundHoldsUnderOverload) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);
  ServeConfig cfg = SmallServeConfig();
  cfg.max_in_flight = 4;

  obs::MetricsRegistry registry;
  obs::SetDefault(&registry);
  ServeEngine engine(graph, features, cfg);

  LoadConfig load;
  load.num_requests = 400;
  load.roots_per_request = 4;
  // ~50k rps against ~17k rps of modeled capacity: overload, queues build,
  // admission control must engage.
  load.arrival_rate_rps = 50000.0;
  load.seed = 21;
  const LoadGenerator gen(graph, load);
  const LatencyReport report = engine.Run(gen);
  obs::SetDefault(nullptr);

  // The bound is a hard invariant, not a target.
  EXPECT_LE(report.max_in_flight_observed, cfg.max_in_flight);
  EXPECT_GT(report.shed, 0u) << "overload must shed";
  // Accounting identity: nothing silently dropped.
  EXPECT_EQ(report.offered,
            report.completed + report.shed + report.deadline_missed);
  EXPECT_EQ(report.offered, load.num_requests);
  // Counters agree with the report.
  EXPECT_EQ(registry.GetCounter("serve.offered")->Value(), report.offered);
  EXPECT_EQ(registry.GetCounter("serve.shed")->Value(), report.shed);
  EXPECT_EQ(registry.GetCounter("serve.deadline_missed")->Value(),
            report.deadline_missed);
  EXPECT_EQ(registry.GetCounter("serve.completed")->Value(),
            report.completed);
  // Shed requests are never served: no fingerprint, outcome recorded.
  for (const RequestResult& r : engine.results()) {
    if (r.outcome == RequestOutcome::kShed) {
      EXPECT_EQ(r.fingerprint, 0u);
      EXPECT_EQ(r.latency_us, 0.0);
    }
  }
  // Percentiles are ordered whenever anything completed.
  ASSERT_GT(report.completed, 0u);
  EXPECT_LE(report.p50_us, report.p95_us);
  EXPECT_LE(report.p95_us, report.p99_us);
  EXPECT_LE(report.p99_us, report.p999_us);
  EXPECT_LE(report.p999_us, report.max_us);
}

TEST(ServeEngineTest, DeadlineMissesAreAbandonedNotServed) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);
  ServeConfig cfg = SmallServeConfig();
  cfg.max_in_flight = 64;   // admission never binds here
  cfg.deadline_us = 250.0;  // ~2x one service time: queueing causes misses
  ServeEngine engine(graph, features, cfg);

  LoadConfig load;
  load.num_requests = 300;
  load.roots_per_request = 4;
  load.arrival_rate_rps = 30000.0;
  load.seed = 9;
  const LoadGenerator gen(graph, load);
  const LatencyReport report = engine.Run(gen);

  EXPECT_GT(report.deadline_missed, 0u);
  for (const RequestResult& r : engine.results()) {
    if (r.outcome == RequestOutcome::kDeadlineMissed) {
      // Abandoned before service: no embedding was ever computed.
      EXPECT_EQ(r.fingerprint, 0u);
    } else if (r.outcome == RequestOutcome::kCompleted) {
      // A served request always made its deadline.
      EXPECT_LE(r.latency_us, cfg.deadline_us);
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-identity and determinism.

TEST(ServeEngineTest, AcceptedRequestsBitIdenticalToOfflineReplay) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);
  ServeConfig cfg = SmallServeConfig();
  ServeEngine engine(graph, features, cfg);

  LoadConfig load;
  load.num_requests = 200;
  load.roots_per_request = 4;
  load.arrival_rate_rps = 20000.0;  // mild overload: mixed outcomes
  load.seed = 33;
  const LoadGenerator gen(graph, load);
  const LatencyReport report = engine.Run(gen);
  ASSERT_GT(report.completed, 0u);

  size_t checked = 0;
  for (uint64_t id = 0; id < load.num_requests; ++id) {
    const RequestResult& r = engine.results()[id];
    if (r.outcome != RequestOutcome::kCompleted) continue;
    EXPECT_EQ(r.fingerprint, engine.ExecuteOffline(gen, id)) << "id " << id;
    ++checked;
  }
  EXPECT_EQ(checked, report.completed);
}

TEST(ServeEngineTest, ModeledTimelineDeterministicAcrossRunsAndDepths) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);

  LoadConfig load;
  load.num_requests = 250;
  load.roots_per_request = 4;
  load.arrival_rate_rps = 25000.0;
  load.seed = 41;
  const LoadGenerator gen(graph, load);

  ServeConfig cfg = SmallServeConfig();
  cfg.pipeline_depth = 1;
  ServeEngine first(graph, features, cfg);
  const LatencyReport base = first.Run(gen);
  const std::vector<RequestResult> base_results = first.results();

  // Same engine re-run, a fresh engine, and a fresh engine at a different
  // pipeline depth must all reproduce the modeled timeline and the
  // embeddings exactly: the simulation lives on the in-order sample stage,
  // so real-thread interleaving cannot leak in.
  const LatencyReport rerun = first.Run(gen);
  cfg.pipeline_depth = 3;
  ServeEngine other(graph, features, cfg);
  const LatencyReport deep = other.Run(gen);

  for (const LatencyReport* rep : {&rerun, &deep}) {
    EXPECT_EQ(rep->completed, base.completed);
    EXPECT_EQ(rep->shed, base.shed);
    EXPECT_EQ(rep->deadline_missed, base.deadline_missed);
    EXPECT_DOUBLE_EQ(rep->p99_us, base.p99_us);
    EXPECT_DOUBLE_EQ(rep->p999_us, base.p999_us);
    EXPECT_DOUBLE_EQ(rep->goodput_rps, base.goodput_rps);
    EXPECT_EQ(rep->max_in_flight_observed, base.max_in_flight_observed);
  }
  ASSERT_EQ(first.results().size(), base_results.size());
  ASSERT_EQ(other.results().size(), base_results.size());
  for (size_t id = 0; id < base_results.size(); ++id) {
    const RequestResult& b = base_results[id];
    for (const auto* results : {&first.results(), &other.results()}) {
      const RequestResult& r = (*results)[id];
      EXPECT_EQ(static_cast<int>(r.outcome), static_cast<int>(b.outcome))
          << "id " << id;
      EXPECT_DOUBLE_EQ(r.latency_us, b.latency_us) << "id " << id;
      EXPECT_EQ(r.fingerprint, b.fingerprint) << "id " << id;
    }
  }
}

// ---------------------------------------------------------------------------
// Layout invariance: a vertex reordering is observationally invisible to
// the serving layer. The LoadGenerator keeps speaking original ids, the
// engine translates roots at the boundary, and every modeled number and
// embedding fingerprint is bit-equal to the identity-layout engine's —
// across layout policies and pipeline depths.

TEST(ServeEngineTest, ReorderingIsInvisibleAcrossPoliciesAndDepths) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);

  LoadConfig load;
  load.num_requests = 150;
  load.roots_per_request = 4;
  load.arrival_rate_rps = 20000.0;  // mild overload: mixed outcomes
  load.seed = 61;
  const LoadGenerator gen(graph, load);

  ServeConfig cfg = SmallServeConfig();
  ServeEngine base_engine(graph, features, cfg);
  const LatencyReport base = base_engine.Run(gen);
  const std::vector<RequestResult> base_results = base_engine.results();
  ASSERT_GT(base.completed, 0u);

  for (const layout::LayoutPolicy policy :
       {layout::LayoutPolicy::kDegreeDescending,
        layout::LayoutPolicy::kBfsCluster}) {
    const layout::VertexLayout lay = layout::ComputeLayout(graph, policy);
    const AttributedGraph reordered =
        std::move(layout::ApplyLayout(graph, lay)).value();
    const nn::Matrix permuted = layout::PermuteRows(features, lay);

    for (const size_t depth : {size_t{1}, size_t{3}}) {
      ServeConfig rcfg = cfg;
      rcfg.pipeline_depth = depth;
      ServeEngine engine(reordered, permuted, rcfg, &lay);
      const LatencyReport report = engine.Run(gen);

      EXPECT_EQ(report.completed, base.completed);
      EXPECT_EQ(report.shed, base.shed);
      EXPECT_EQ(report.deadline_missed, base.deadline_missed);
      EXPECT_DOUBLE_EQ(report.p50_us, base.p50_us);
      EXPECT_DOUBLE_EQ(report.p99_us, base.p99_us);
      EXPECT_DOUBLE_EQ(report.goodput_rps, base.goodput_rps);
      ASSERT_EQ(engine.results().size(), base_results.size());
      for (size_t id = 0; id < base_results.size(); ++id) {
        const RequestResult& b = base_results[id];
        const RequestResult& r = engine.results()[id];
        EXPECT_EQ(static_cast<int>(r.outcome), static_cast<int>(b.outcome))
            << "id " << id;
        EXPECT_DOUBLE_EQ(r.latency_us, b.latency_us) << "id " << id;
        EXPECT_EQ(r.fingerprint, b.fingerprint)
            << layout::PolicyName(policy) << " depth " << depth << " id "
            << id;
      }
      // The offline replay contract survives reordering too.
      for (uint64_t id = 0; id < 20; ++id) {
        EXPECT_EQ(engine.ExecuteOffline(gen, id),
                  base_engine.ExecuteOffline(gen, id))
            << "id " << id;
      }
    }
  }
}

TEST(ServeEngineTest, LoadGeneratorRootsUntouchedByReordering) {
  // The generator is constructed over the ORIGINAL graph and its roots are
  // original ids; nothing about building or serving a reordered engine may
  // perturb them (they are compared against a second, untouched generator).
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);
  LoadConfig load;
  load.num_requests = 40;
  load.roots_per_request = 5;
  load.seed = 77;
  const LoadGenerator gen(graph, load);
  const LoadGenerator untouched(graph, load);

  const layout::VertexLayout lay =
      layout::ComputeLayout(graph, layout::LayoutPolicy::kDegreeDescending);
  const AttributedGraph reordered =
      std::move(layout::ApplyLayout(graph, lay)).value();
  const nn::Matrix permuted = layout::PermuteRows(features, lay);
  ServeEngine engine(reordered, permuted, SmallServeConfig(), &lay);
  (void)engine.Run(gen);

  for (uint64_t id = 0; id < load.num_requests; ++id) {
    const std::vector<VertexId> roots = gen.RootsFor(id);
    EXPECT_EQ(roots, untouched.RootsFor(id)) << "id " << id;
    for (const VertexId v : roots) EXPECT_LT(v, graph.num_vertices());
  }
}

// ---------------------------------------------------------------------------
// Closed loop.

TEST(ServeEngineTest, ClosedLoopBoundedByUserPopulation) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);
  ServeConfig cfg = SmallServeConfig();
  cfg.max_in_flight = 16;  // larger than the population: never binds
  ServeEngine engine(graph, features, cfg);

  LoadConfig load;
  load.mode = LoadConfig::Mode::kClosed;
  load.num_requests = 150;
  load.roots_per_request = 3;
  load.num_users = 3;
  load.think_time_us = 100.0;
  load.seed = 13;
  const LoadGenerator gen(graph, load);
  const LatencyReport report = engine.Run(gen);

  // A user waits for its own completion before reissuing, so concurrency
  // can never exceed the population.
  EXPECT_LE(report.max_in_flight_observed, load.num_users);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.offered,
            report.completed + report.shed + report.deadline_missed);
  // Each user's request sequence is strictly ordered in modeled time.
  std::map<size_t, double> last_arrival;
  for (const RequestResult& r : engine.results()) {
    EXPECT_LT(r.user, load.num_users);
    auto it = last_arrival.find(r.user);
    if (it != last_arrival.end()) {
      EXPECT_GT(r.arrival_us, it->second);
    }
    last_arrival[r.user] = r.arrival_us;
  }
}

// ---------------------------------------------------------------------------
// Tracing: every offered request — served, shed or abandoned — gets a
// "serve/request" root span, so the trace timeline shows the whole offered
// stream, not just the survivors.

TEST(ServeEngineTest, EveryOfferedRequestGetsATraceRoot) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 8);

  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);
  ServeConfig cfg = SmallServeConfig();
  cfg.max_in_flight = 2;  // force some sheds into the trace
  ServeEngine engine(graph, features, cfg);

  LoadConfig load;
  load.num_requests = 60;
  load.roots_per_request = 4;
  load.arrival_rate_rps = 50000.0;
  load.seed = 55;
  const LoadGenerator gen(graph, load);
  const LatencyReport report = engine.Run(gen);
  obs::SetDefaultTracer(nullptr);
  EXPECT_GT(report.shed, 0u);

  const obs::TraceForest forest = obs::AssembleTraces(tracer.Events());
  size_t roots = 0;
  size_t with_compute = 0;
  for (const obs::TraceTree& tree : forest.traces) {
    if (tree.root_event().name != "serve/request") continue;
    ++roots;
    for (const size_t child : tree.nodes[tree.root].children) {
      if (tree.nodes[child].event.name == "serve/compute") ++with_compute;
    }
  }
  EXPECT_EQ(roots, report.offered);
  // Only completed requests reach the compute stage.
  EXPECT_EQ(with_compute, report.completed);
}

}  // namespace
}  // namespace serve
}  // namespace aligraph
