/// \file proptest.h
/// \brief Minimal property-based testing harness on top of googletest.
///
/// A property is an ordinary test body that receives a seeded PropContext
/// and asserts an invariant; the harness reruns it across N derived seeds
/// and, when a seed fails, prints it with a one-line rerun recipe. Pin a
/// single seed with the ALIGRAPH_PROP_SEED environment variable to debug a
/// failure found in CI without rerunning the whole sweep.
///
///   ALIGRAPH_PROP(PartitionProps, EveryVertexOwnedOnce, 20) {
///     auto graph = proptest::RandomGraph(ctx);
///     ... EXPECT_*/ASSERT_* on the invariant ...
///   }
///
/// Generators (RandomGraph, RandomWorkers, RandomWeights) draw every
/// parameter from ctx.rng, so the whole case is a pure function of the
/// seed — the reproducibility contract is the same one the fault injector
/// makes: same seed, same bytes.

#ifndef ALIGRAPH_TESTS_PROPTEST_H_
#define ALIGRAPH_TESTS_PROPTEST_H_

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "gen/powerlaw.h"
#include "graph/graph.h"

namespace aligraph {
namespace proptest {

/// \brief Per-case state handed to a property body: the case seed (for
/// diagnostics and for seeding components under test) and an Rng derived
/// from it (for drawing inputs).
struct PropContext {
  uint64_t seed = 0;
  Rng rng{0};

  explicit PropContext(uint64_t s) : seed(s), rng(Mix64(s)) {}
};

/// Derives the i-th case seed from a property's base seed. Mix64 keeps
/// neighboring cases statistically unrelated.
inline uint64_t DeriveSeed(uint64_t base, uint64_t index) {
  return Mix64(base ^ Mix64(index + 0x9e37'79b9'7f4a'7c15ULL));
}

/// Runs `body` across `num_seeds` cases derived from `base_seed`, stopping
/// at the first failing seed and printing how to rerun just that one. When
/// ALIGRAPH_PROP_SEED is set, runs only that seed.
template <typename Body>
void RunSeeds(const char* property_name, uint64_t base_seed,
              uint64_t num_seeds, Body&& body) {
  if (const char* pinned = std::getenv("ALIGRAPH_PROP_SEED")) {
    const uint64_t seed = std::strtoull(pinned, nullptr, 0);
    SCOPED_TRACE(std::string(property_name) +
                 ": pinned seed ALIGRAPH_PROP_SEED=" + std::to_string(seed));
    PropContext ctx(seed);
    body(ctx);
    return;
  }
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = DeriveSeed(base_seed, i);
    {
      SCOPED_TRACE(std::string(property_name) + ": case " +
                   std::to_string(i) + " seed " + std::to_string(seed));
      PropContext ctx(seed);
      body(ctx);
    }
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << property_name << " failed at case " << i
                    << "; rerun just this case with ALIGRAPH_PROP_SEED="
                    << seed;
      return;
    }
  }
}

/// Defines a googletest TEST that sweeps a property body over `num_seeds`
/// seeded cases. The body sees `proptest::PropContext& ctx`.
#define ALIGRAPH_PROP(suite, name, num_seeds)                               \
  struct AligraphProp_##suite##_##name {                                    \
    static void Run(::aligraph::proptest::PropContext& ctx);                \
  };                                                                        \
  TEST(suite, name) {                                                       \
    ::aligraph::proptest::RunSeeds(                                         \
        #suite "." #name,                                                   \
        ::aligraph::Mix64(::std::hash<::std::string>{}(#suite "." #name)),  \
        num_seeds, AligraphProp_##suite##_##name::Run);                     \
  }                                                                         \
  void AligraphProp_##suite##_##name::Run(                                  \
      ::aligraph::proptest::PropContext& ctx)

/// Draws a small Chung-Lu graph whose size, density and topology seed all
/// come from the case seed.
inline AttributedGraph RandomGraph(PropContext& ctx) {
  gen::ChungLuConfig config;
  config.num_vertices = 200 + static_cast<VertexId>(ctx.rng.Uniform(1000));
  config.avg_degree = 2.0 + static_cast<double>(ctx.rng.Uniform(9));
  config.gamma = 2.1 + ctx.rng.NextDouble() * 0.8;
  config.directed = ctx.rng.Bernoulli(0.5);
  config.seed = ctx.rng.Next();
  auto graph = gen::ChungLu(config);
  ALIGRAPH_CHECK(graph.ok()) << graph.status().ToString();
  return std::move(*graph);
}

/// Draws a worker count in [2, 8].
inline uint32_t RandomWorkers(PropContext& ctx) {
  return 2 + static_cast<uint32_t>(ctx.rng.Uniform(7));
}

/// Draws `count` positive weights spanning several orders of magnitude
/// (the regime where naive weighted sampling goes wrong).
inline std::vector<double> RandomWeights(PropContext& ctx, size_t count) {
  std::vector<double> weights(count);
  for (double& w : weights) {
    w = std::pow(10.0, ctx.rng.NextDouble() * 4.0 - 2.0);
  }
  return weights;
}

}  // namespace proptest
}  // namespace aligraph

#endif  // ALIGRAPH_TESTS_PROPTEST_H_
