// Tests for the storage layer: importance-based cache selection (Algorithm
// 2) and the neighbor-cache policies of Figure 9.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/powerlaw.h"
#include "graph/graph.h"
#include "graph/khop.h"
#include "storage/importance.h"
#include "storage/neighbor_cache.h"

namespace aligraph {
namespace {

AttributedGraph MakeGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 3000;
  cfg.avg_degree = 8;
  cfg.seed = 13;
  return std::move(gen::ChungLu(cfg)).value();
}

TEST(ImportanceSelectionTest, HigherThresholdSelectsFewer) {
  const AttributedGraph g = MakeGraph();
  double prev = 1.1;
  for (double tau : {0.05, 0.15, 0.3, 0.45}) {
    const double rate = CacheRateAtThreshold(g, 2, tau);
    EXPECT_LE(rate, prev) << "tau=" << tau;
    prev = rate;
  }
}

TEST(ImportanceSelectionTest, ZeroThresholdSelectsVerticesWithOutEdges) {
  const AttributedGraph g = MakeGraph();
  const double rate = CacheRateAtThreshold(g, 1, 0.0);
  // Every vertex with at least one out-edge has importance >= 0; those with
  // no out-paths have importance 0, which still passes tau = 0.
  EXPECT_GT(rate, 0.5);
}

TEST(ImportanceSelectionTest, SelectionMatchesThresholdSemantics) {
  const AttributedGraph g = MakeGraph();
  const double tau = 0.2;
  const ImportanceSelection sel = SelectImportantVertices(g, 1, {tau});
  const auto imp = ImportanceScores(g, 1);
  for (VertexId v : sel.vertices) EXPECT_GE(imp[v], tau);
  size_t expected = 0;
  for (double i : imp) {
    if (i >= tau) ++expected;
  }
  EXPECT_EQ(sel.vertices.size(), expected);
}

TEST(ImportanceSelectionTest, MultiDepthUnion) {
  const AttributedGraph g = MakeGraph();
  const auto only1 = SelectImportantVertices(g, 1, {0.3, 1e18});
  const auto both = SelectImportantVertices(g, 2, {0.3, 0.3});
  EXPECT_GE(both.vertices.size(), only1.vertices.size());
}

TEST(ImportanceSelectionTest, TopFractionHasHighestScores) {
  const AttributedGraph g = MakeGraph();
  const auto top = SelectTopImportance(g, 1, 0.1);
  const auto imp = ImportanceScores(g, 1);
  ASSERT_FALSE(top.empty());
  double min_selected = 1e30;
  for (VertexId v : top) min_selected = std::min(min_selected, imp[v]);
  // Count vertices strictly above the weakest selected one; must not exceed
  // the selection size (otherwise something better was skipped).
  size_t better = 0;
  for (double i : imp) {
    if (i > min_selected) ++better;
  }
  EXPECT_LE(better, top.size());
}

TEST(RandomSelectionTest, FractionRoughlyHonored) {
  const AttributedGraph g = MakeGraph();
  const auto sel = SelectRandomVertices(g, 0.25, 7);
  const double got =
      static_cast<double>(sel.size()) / g.num_vertices();
  EXPECT_NEAR(got, 0.25, 0.05);
}

TEST(StaticNeighborCacheTest, ServesPinnedVertices) {
  const AttributedGraph g = MakeGraph();
  std::vector<VertexId> pinned{0, 5, 10};
  StaticNeighborCache cache("importance", g, pinned);
  EXPECT_EQ(cache.size(), 3u);
  auto hit = cache.Lookup(5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), g.OutDegree(5));
  EXPECT_FALSE(cache.Lookup(6).has_value());
  // Static caches ignore remote-fetch admissions.
  cache.OnRemoteFetch(6, g.OutNeighbors(6));
  EXPECT_FALSE(cache.Lookup(6).has_value());
}

TEST(StaticNeighborCacheTest, EntryCountMatchesDegreeSum) {
  const AttributedGraph g = MakeGraph();
  std::vector<VertexId> pinned{1, 2, 3};
  StaticNeighborCache cache("x", g, pinned);
  size_t expected = 0;
  for (VertexId v : pinned) expected += g.OutDegree(v);
  EXPECT_EQ(cache.entry_count(), expected);
}

TEST(LruNeighborCacheTest, AdmitsAndEvicts) {
  const AttributedGraph g = MakeGraph();
  LruNeighborCache cache(2);
  cache.OnRemoteFetch(1, g.OutNeighbors(1));
  cache.OnRemoteFetch(2, g.OutNeighbors(2));
  EXPECT_TRUE(cache.Lookup(1).has_value());
  cache.OnRemoteFetch(3, g.OutNeighbors(3));  // evicts 2 (1 was refreshed)
  EXPECT_FALSE(cache.Lookup(2).has_value());
  EXPECT_TRUE(cache.Lookup(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruNeighborCacheTest, EntryAccountingTracksEvictions) {
  const AttributedGraph g = MakeGraph();
  LruNeighborCache cache(1);
  cache.OnRemoteFetch(1, g.OutNeighbors(1));
  const size_t first = cache.entry_count();
  EXPECT_EQ(first, g.OutDegree(1));
  cache.OnRemoteFetch(2, g.OutNeighbors(2));
  EXPECT_EQ(cache.entry_count(), g.OutDegree(2));
}

TEST(LruNeighborCacheTest, LookupDataSurvivesEviction) {
  const AttributedGraph g = MakeGraph();
  LruNeighborCache cache(1);
  cache.OnRemoteFetch(1, g.OutNeighbors(1));
  auto hit = cache.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  cache.OnRemoteFetch(2, g.OutNeighbors(2));  // evicts 1
  // The span from the last lookup is still pinned and readable.
  EXPECT_EQ(hit->size(), g.OutDegree(1));
}

TEST(LruNeighborCacheTest, DuplicateFetchNotDoubleCounted) {
  const AttributedGraph g = MakeGraph();
  LruNeighborCache cache(4);
  cache.OnRemoteFetch(1, g.OutNeighbors(1));
  cache.OnRemoteFetch(1, g.OutNeighbors(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.entry_count(), g.OutDegree(1));
}

}  // namespace
}  // namespace aligraph
