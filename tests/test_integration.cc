// End-to-end integration tests across layers: the sampling stage of the
// paper's Figure 5 pseudocode executed against a distributed cluster built
// with every partitioner and cache policy, feeding the operator layer, and
// a full mini training pipeline.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "algo/gnn.h"
#include "cluster/cluster.h"
#include "eval/link_prediction.h"
#include "gen/taobao.h"
#include "nn/layers.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"
#include "partition/partitioner.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace {

const AttributedGraph& Graph() {
  static const AttributedGraph* g = [] {
    return new AttributedGraph(
        std::move(gen::Taobao(gen::TaobaoSmallConfig(0.05))).value());
  }();
  return *g;
}

// (partitioner name, cache policy name)
using PipelineParam = std::tuple<std::string, std::string>;

class PipelineTest : public ::testing::TestWithParam<PipelineParam> {
 protected:
  void InstallCache(Cluster& cluster, const std::string& policy) {
    if (policy == "none") return;
    if (policy == "importance") {
      cluster.InstallTopImportanceCache(1, 0.2);
    } else if (policy == "random") {
      cluster.InstallRandomCache(0.2, 11);
    } else if (policy == "lru") {
      cluster.InstallLruCache(Graph().num_vertices() / 5);
    }
  }
};

// The sampling stage of Figure 5: TRAVERSE seeds, NEIGHBORHOOD context,
// NEGATIVE noise — executed through the distributed cluster; every piece
// of returned data must be consistent with the source graph.
TEST_P(PipelineTest, Figure5SamplingStage) {
  const auto& [partitioner_name, cache_policy] = GetParam();
  const AttributedGraph& graph = Graph();
  auto partitioner = std::move(MakePartitioner(partitioner_name)).value();
  auto cluster = std::move(Cluster::Build(graph, *partitioner, 3)).value();
  InstallCache(cluster, cache_policy);

  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);

  // s1: TRAVERSE — a batch of seed vertices from worker 0's partition.
  TraverseSampler s1(
      std::vector<VertexId>(cluster.server(0).owned_vertices()), 3);
  const auto vertex = s1.Sample(32);
  ASSERT_EQ(vertex.size(), 32u);
  for (VertexId v : vertex) EXPECT_EQ(cluster.OwnerOf(v), 0u);

  // s2: NEIGHBORHOOD — hop_nums context per seed.
  NeighborhoodSampler s2(NeighborStrategy::kUniform, 5);
  const std::vector<uint32_t> hop_nums{4, 2};
  const auto context = s2.Sample(
      source, vertex, NeighborhoodSampler::kAllEdgeTypes, hop_nums);
  ASSERT_EQ(context.hops.size(), 2u);
  EXPECT_EQ(context.hops[0].size(), 32u * 4);
  EXPECT_EQ(context.hops[1].size(), 32u * 4 * 2);
  // Every sampled hop-1 vertex is a real neighbor (or the fallback self).
  for (size_t i = 0; i < vertex.size(); ++i) {
    const auto nbs = graph.OutNeighbors(vertex[i]);
    for (uint32_t j = 0; j < 4; ++j) {
      const VertexId u = context.hops[0][i * 4 + j];
      if (u == vertex[i]) continue;  // isolated-vertex fallback
      bool found = false;
      for (const Neighbor& nb : nbs) {
        if (nb.dst == u) found = true;
      }
      EXPECT_TRUE(found) << partitioner_name << "/" << cache_policy;
    }
  }

  // s3: NEGATIVE — noise vertices, none equal to the positives.
  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler s3(graph, all, 0.75, 7);
  for (VertexId v : vertex) {
    for (VertexId neg : s3.Sample(4, v)) EXPECT_NE(neg, v);
  }

  // Communication accounting is consistent.
  EXPECT_EQ(stats.TotalReads(),
            stats.local_reads.load() + stats.cache_hits.load() +
                stats.remote_reads.load());
  if (cache_policy == "none") EXPECT_EQ(stats.cache_hits.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PipelineTest,
    ::testing::Combine(::testing::Values("edge_cut", "vertex_cut", "grid2d",
                                         "streaming", "metis"),
                       ::testing::Values("none", "importance", "random",
                                         "lru")));

// The operator stage consuming sampled context: gather features, AGGREGATE,
// COMBINE, with the hop cache avoiding recomputation; verifies the cached
// and uncached paths produce identical embeddings.
TEST(OperatorPipelineTest, CachedAndUncachedAgree) {
  const AttributedGraph& graph = Graph();
  Rng rng(3);
  const size_t d = 16;
  nn::Matrix x(graph.num_vertices(), d);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.NextFloat();

  ops::MeanAggregator agg;
  ops::ConcatCombiner combine(d, d, rng);

  LocalNeighborSource source(graph);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, 7);
  const std::vector<VertexId> roots{1, 2, 3};
  const std::vector<uint32_t> fans{3};
  const auto tree = hood.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);

  auto compute = [&](VertexId v, std::span<const VertexId> nbs) {
    nn::Matrix self(1, d);
    std::copy(x.Row(v).begin(), x.Row(v).end(), self.Row(0).begin());
    nn::Matrix neigh(nbs.size(), d);
    for (size_t f = 0; f < nbs.size(); ++f) {
      std::copy(x.Row(nbs[f]).begin(), x.Row(nbs[f]).end(),
                neigh.Row(f).begin());
    }
    const nn::Matrix a = agg.Forward(neigh, nbs.size());
    return combine.Forward(self, a);
  };

  // Two passes over the same sampled tree: pass 1 computes and fills the
  // cache, pass 2 must be served entirely from it with identical rows.
  ops::HopEmbeddingCache cache(d);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < roots.size(); ++i) {
      std::span<const VertexId> nbs(tree.hops[0].data() + i * 3, 3);
      const nn::Matrix direct = compute(roots[i], nbs);
      auto hit = cache.Lookup(1, roots[i]);
      if (hit.empty()) {
        cache.Insert(1, roots[i], direct.Row(0));
        hit = cache.Lookup(1, roots[i]);
      }
      for (size_t j = 0; j < d; ++j) {
        EXPECT_FLOAT_EQ(hit[j], direct.At(0, j))
            << "pass " << pass << " root " << i;
      }
    }
  }
  EXPECT_EQ(cache.size(), 3u);  // three distinct roots
  EXPECT_EQ(cache.hits(), 3u + 3u);  // re-lookups + pass-2 lookups
}

// Full training pipeline sanity: split -> train GraphSAGE -> evaluate;
// must beat random embeddings on the community-structured AHG.
TEST(TrainingPipelineTest, EndToEndBeatsRandom) {
  const AttributedGraph& graph = Graph();
  auto split = std::move(eval::SplitLinkPrediction(graph, 0.2, 13)).value();

  algo::GnnConfig cfg;
  cfg.dim = 16;
  cfg.feature_dim = 16;
  cfg.epochs = 1;
  cfg.batches_per_epoch = 48;
  algo::GraphSage sage(cfg);
  auto emb = std::move(sage.Embed(split.train)).value();
  const auto trained = eval::EvaluateLinkPrediction(emb, split);

  Rng rng(29);
  nn::Matrix random =
      nn::Matrix::Gaussian(graph.num_vertices(), 16, 1.0f, rng);
  const auto baseline = eval::EvaluateLinkPrediction(random, split);
  EXPECT_GT(trained.roc_auc, baseline.roc_auc + 0.05);
}

// The same duplicated-sampling invariant NeighborhoodSample guarantees:
// identical roots within a batch get identical subtrees only when the
// sampler is deterministic per position — verify shape invariants instead.
TEST(SamplerShapeTest, ThreeHopShapes) {
  const AttributedGraph& graph = Graph();
  LocalNeighborSource source(graph);
  NeighborhoodSampler hood(NeighborStrategy::kWeighted, 11);
  std::vector<VertexId> roots(7, 0);
  const std::vector<uint32_t> fans{2, 3, 2};
  const auto tree = hood.Sample(
      source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
  ASSERT_EQ(tree.hops.size(), 3u);
  EXPECT_EQ(tree.hops[0].size(), 14u);
  EXPECT_EQ(tree.hops[1].size(), 42u);
  EXPECT_EQ(tree.hops[2].size(), 84u);
}

}  // namespace
}  // namespace aligraph
