// Property tests for the paper's Theorems 1 and 2: on power-law graphs the
// k-hop in/out neighborhood counts and the importance metric
// Imp_k(v) = D_i^k / D_o^k are themselves power-law distributed.
//
// We verify empirically on Chung-Lu graphs: the log-log histogram of each
// quantity is strongly linear (r^2 high) with a negative slope, and only a
// small fraction of vertices have large importance — the fact that makes
// importance-based caching cheap (Section 3.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/histogram.h"
#include "gen/powerlaw.h"
#include "graph/khop.h"
#include "storage/importance.h"

namespace aligraph {
namespace {

class TheoremTest : public ::testing::TestWithParam<int> {
 protected:
  static AttributedGraph MakeGraph() {
    gen::ChungLuConfig cfg;
    cfg.num_vertices = 30000;
    cfg.avg_degree = 10;
    cfg.gamma = 2.3;
    cfg.seed = 1234;
    return std::move(gen::ChungLu(cfg)).value();
  }
};

TEST_P(TheoremTest, Theorem1KHopOutCountsArePowerLaw) {
  const AttributedGraph g = MakeGraph();
  const int k = GetParam();
  const auto counts = KHopOutCounts(g, k);
  const PowerLawFit fit = FitPowerLawSlope(counts);
  EXPECT_GT(fit.points, 5u);
  EXPECT_LT(fit.slope, -0.8) << "k=" << k;
  EXPECT_GT(fit.r_squared, 0.7) << "k=" << k;
}

TEST_P(TheoremTest, Theorem1KHopInCountsArePowerLaw) {
  const AttributedGraph g = MakeGraph();
  const int k = GetParam();
  const auto counts = KHopInCounts(g, k);
  const PowerLawFit fit = FitPowerLawSlope(counts);
  EXPECT_GT(fit.points, 5u);
  EXPECT_LT(fit.slope, -0.8) << "k=" << k;
  EXPECT_GT(fit.r_squared, 0.7) << "k=" << k;
}

TEST_P(TheoremTest, Theorem2ImportanceIsPowerLaw) {
  const AttributedGraph g = MakeGraph();
  const int k = GetParam();
  const auto imp = ImportanceScores(g, k);
  // Scale up so the fitter's >= 1 domain captures the distribution body.
  std::vector<double> scaled;
  scaled.reserve(imp.size());
  for (double v : imp) scaled.push_back(v * 10.0);
  const PowerLawFit fit = FitPowerLawSlope(scaled);
  EXPECT_GT(fit.points, 5u);
  EXPECT_LT(fit.slope, -0.8) << "k=" << k;
  EXPECT_GT(fit.r_squared, 0.6) << "k=" << k;
}

TEST_P(TheoremTest, OnlyFewVerticesAreImportant) {
  // The consequence the paper draws from Theorem 2: because importance is
  // power-law, the qualifying fraction shrinks rapidly as the threshold
  // grows, so caching needs only a small vertex fraction.
  const AttributedGraph g = MakeGraph();
  const int k = GetParam();
  const double at2 = CacheRateAtThreshold(g, k, 2.0);
  const double at20 = CacheRateAtThreshold(g, k, 20.0);
  EXPECT_LT(at20, 0.1) << "k=" << k;
  EXPECT_GT(at20, 0.0) << "k=" << k;
  EXPECT_LT(at20, at2 / 3.0) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Hops, TheoremTest, ::testing::Values(1, 2, 3));

TEST(TheoremConsequenceTest, CacheRateDropsSharplyThenFlattens) {
  // Figure 8's shape: the cache-rate curve is convex — the per-unit-tau
  // decline at small thresholds far exceeds the decline in the tail.
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 20000;
  cfg.avg_degree = 8;
  cfg.seed = 77;
  const AttributedGraph g = std::move(gen::ChungLu(cfg)).value();
  const double early_slope =
      (CacheRateAtThreshold(g, 2, 0.05) - CacheRateAtThreshold(g, 2, 0.45)) /
      0.4;
  const double tail_slope =
      (CacheRateAtThreshold(g, 2, 1.5) - CacheRateAtThreshold(g, 2, 3.0)) /
      1.5;
  EXPECT_GT(early_slope, 2.0 * tail_slope);
}

}  // namespace
}  // namespace aligraph
