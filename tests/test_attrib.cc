// Tests for the tail-latency attribution stack: per-request budget
// accounting identities against a real serving run, p50-vs-p99 cohort
// separation on a synthetic slow-gather workload, CommModel delta folding
// that bills exactly what ModeledMillis bills, windowed time-series delta
// conservation (including eviction and far jumps), flight-recorder
// reservoir bounds / determinism / JSON round-trip, wall budgets recovered
// from trace trees, and bit-identical budgets across pipeline depths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "gen/powerlaw.h"
#include "graph/graph.h"
#include "obs/attrib.h"
#include "obs/recorder.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/load_generator.h"
#include "serve/serve_engine.h"

namespace aligraph {
namespace {

AttributedGraph TestGraph() {
  gen::ChungLuConfig cfg;
  cfg.num_vertices = 2000;
  cfg.avg_degree = 8;
  cfg.seed = 11;
  return std::move(gen::ChungLu(cfg)).value();
}

serve::ServeConfig SmallServeConfig() {
  serve::ServeConfig cfg;
  cfg.fanout1 = 4;
  cfg.fanout2 = 3;
  cfg.dim = 8;
  cfg.max_in_flight = 8;
  cfg.lanes = 2;
  cfg.deadline_us = 100000.0;
  cfg.pipeline_depth = 2;
  cfg.seed = 29;
  return cfg;
}

serve::LoadConfig OpenLoad(uint64_t n, double rate) {
  serve::LoadConfig load;
  load.mode = serve::LoadConfig::Mode::kOpen;
  load.num_requests = n;
  load.roots_per_request = 3;
  load.arrival_rate_rps = rate;
  load.seed = 7;
  return load;
}

/// A synthetic completed budget: `gather` slow-phase plus fixed
/// sample/compute, total derived so coverage is exact.
obs::RequestBudget MakeBudget(uint64_t id, double queue_us, double gather_us) {
  obs::RequestBudget b;
  b.request_id = id;
  b.outcome = obs::RequestBudget::Outcome::kCompleted;
  b.at(obs::BudgetComponent::kQueueWait) = queue_us;
  b.at(obs::BudgetComponent::kSample) = 30.0;
  b.at(obs::BudgetComponent::kGather) = gather_us;
  b.at(obs::BudgetComponent::kCompute) = 20.0;
  b.total_us = b.attributed_us();
  return b;
}

// ---------------------------------------------------------------------------
// RequestBudget accounting against a real serving run.

TEST(AttribTest, ServeBudgetsAccountForModeledLatency) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 12);
  // Overloaded enough that the run has queueing, sheds and (thanks to the
  // tight deadline) abandonments — all three outcomes must account.
  serve::ServeConfig scfg = SmallServeConfig();
  scfg.max_in_flight = 4;
  // Service is ~90-100us here; a 150us deadline abandons queued requests
  // while un-queued ones still complete, so all three outcomes appear.
  scfg.deadline_us = 150.0;
  serve::ServeEngine engine(graph, features, scfg);
  const serve::LoadGenerator gen(graph, OpenLoad(300, 12000.0));
  const serve::LatencyReport report = engine.Run(gen);

  const std::vector<obs::RequestBudget>& budgets = engine.budgets();
  ASSERT_EQ(budgets.size(), 300u);
  uint64_t completed = 0, shed = 0, abandoned = 0;
  for (uint64_t id = 0; id < budgets.size(); ++id) {
    const obs::RequestBudget& b = budgets[id];
    const serve::RequestResult& r = engine.results()[id];
    EXPECT_EQ(b.request_id, id);
    switch (b.outcome) {
      case obs::RequestBudget::Outcome::kCompleted: {
        ++completed;
        EXPECT_EQ(r.outcome, serve::RequestOutcome::kCompleted);
        // The accounting identity: components sum to the independently
        // derived total up to floating-point association.
        EXPECT_NEAR(b.attributed_us(), b.total_us,
                    1e-9 * std::max(1.0, b.total_us));
        EXPECT_DOUBLE_EQ(b.total_us, r.latency_us);
        EXPECT_DOUBLE_EQ(b.at(obs::BudgetComponent::kQueueWait),
                         r.queue_wait_us);
        EXPECT_GT(b.at(obs::BudgetComponent::kCompute), 0.0);
        EXPECT_GE(b.coverage(), 0.999);
        break;
      }
      case obs::RequestBudget::Outcome::kShed:
        ++shed;
        EXPECT_EQ(r.outcome, serve::RequestOutcome::kShed);
        EXPECT_DOUBLE_EQ(b.total_us, 0.0);
        EXPECT_DOUBLE_EQ(b.attributed_us(), 0.0);
        EXPECT_DOUBLE_EQ(b.coverage(), 1.0);
        break;
      case obs::RequestBudget::Outcome::kAbandoned:
        ++abandoned;
        EXPECT_EQ(r.outcome, serve::RequestOutcome::kDeadlineMissed);
        EXPECT_DOUBLE_EQ(b.total_us, scfg.deadline_us);
        EXPECT_DOUBLE_EQ(b.at(obs::BudgetComponent::kAbandoned),
                         scfg.deadline_us);
        break;
    }
  }
  EXPECT_EQ(completed, report.completed);
  EXPECT_EQ(shed, report.shed);
  EXPECT_EQ(abandoned, report.deadline_missed);
  EXPECT_GT(shed, 0u) << "workload did not exercise shedding";
  EXPECT_GT(abandoned, 0u) << "workload did not exercise abandonment";
  // The gated aggregate: the sim declares a component for (essentially)
  // every modeled microsecond.
  EXPECT_GE(report.attrib_coverage, 0.999);
}

TEST(AttribTest, CohortReportSeparatesSlowGatherTail) {
  // 95 fast requests (tiny gather, no queueing) + 5 tail requests whose
  // latency is dominated by gather: the p99 cohort's gather share must
  // exceed the p50 cohort's, and the deltas must point at gather.
  std::vector<obs::RequestBudget> budgets;
  for (uint64_t id = 0; id < 95; ++id) {
    budgets.push_back(MakeBudget(id, 1.0, 10.0));
  }
  for (uint64_t id = 95; id < 100; ++id) {
    budgets.push_back(MakeBudget(id, 1.0, 900.0));
  }
  const obs::AttributionReport report =
      obs::BuildAttributionReport(budgets);
  EXPECT_EQ(report.requests, 100u);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_DOUBLE_EQ(report.min_coverage, 1.0);
  ASSERT_GT(report.low.requests, 0u);
  ASSERT_GT(report.high.requests, 0u);
  EXPECT_LT(report.low.threshold_us, report.high.threshold_us);
  const size_t gather = static_cast<size_t>(obs::BudgetComponent::kGather);
  const size_t sample = static_cast<size_t>(obs::BudgetComponent::kSample);
  EXPECT_GT(report.high.share[gather], report.low.share[gather]);
  EXPECT_LT(report.high.share[sample], report.low.share[sample]);
  // The slow cohort really is the 900us-gather population.
  EXPECT_NEAR(report.high.mean_us[gather], 900.0, 1e-9);
  // Storage order must not matter: reversed budgets, identical report.
  std::vector<obs::RequestBudget> reversed(budgets.rbegin(), budgets.rend());
  const obs::AttributionReport again =
      obs::BuildAttributionReport(reversed);
  EXPECT_EQ(again.low.requests, report.low.requests);
  EXPECT_EQ(again.high.requests, report.high.requests);
  for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
    EXPECT_DOUBLE_EQ(again.high.share[c], report.high.share[c]);
    EXPECT_DOUBLE_EQ(again.low.mean_us[c], report.low.mean_us[c]);
  }
}

TEST(AttribTest, EmptyAndShedOnlyPopulations) {
  const obs::AttributionReport empty = obs::BuildAttributionReport({});
  EXPECT_EQ(empty.requests, 0u);
  EXPECT_DOUBLE_EQ(empty.coverage, 1.0);

  std::vector<obs::RequestBudget> sheds(4);
  for (auto& b : sheds) b.outcome = obs::RequestBudget::Outcome::kShed;
  const obs::AttributionReport report = obs::BuildAttributionReport(sheds);
  EXPECT_EQ(report.requests, 0u) << "shed requests are not a latency cohort";
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
}

TEST(AttribTest, ComponentAndOutcomeNamesRoundTrip) {
  for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
    const auto component = static_cast<obs::BudgetComponent>(c);
    const auto parsed =
        obs::BudgetComponentFromName(obs::BudgetComponentName(component));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, component);
  }
  EXPECT_FALSE(obs::BudgetComponentFromName("bogus").ok());
  for (const auto outcome : {obs::RequestBudget::Outcome::kCompleted,
                             obs::RequestBudget::Outcome::kShed,
                             obs::RequestBudget::Outcome::kAbandoned}) {
    const auto parsed =
        obs::BudgetOutcomeFromName(obs::BudgetOutcomeName(outcome));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, outcome);
  }
  EXPECT_FALSE(obs::BudgetOutcomeFromName("bogus").ok());
}

// ---------------------------------------------------------------------------
// ApplyCommDelta vs. the CommModel's own bill.

TEST(AttribTest, CommDeltaBillsExactlyWhatModeledMillisBills) {
  CommStats::Snapshot delta;
  delta.local_reads = 1234;
  delta.replica_reads = 321;
  delta.cache_hits = 77;
  delta.remote_reads = 500;
  delta.remote_batches = 12;
  delta.batched_remote_reads = 480;
  delta.retry_attempts = 9;
  delta.retry_backoff_us = 450;
  delta.failed_reads = 3;
  const CommModel model;  // default charge terms

  obs::RequestBudget budget;
  obs::ApplyCommDelta(delta, model, &budget);
  EXPECT_NEAR(budget.attributed_us(), model.ModeledMillis(delta) * 1000.0,
              1e-6);
  // Each cause lands in its own component.
  EXPECT_DOUBLE_EQ(budget.at(obs::BudgetComponent::kSample),
                   1234 * model.local_latency_us);
  EXPECT_DOUBLE_EQ(budget.at(obs::BudgetComponent::kReplicaRead),
                   321 * model.local_latency_us);
  EXPECT_DOUBLE_EQ(budget.at(obs::BudgetComponent::kCacheRead),
                   77 * model.local_latency_us);
  EXPECT_DOUBLE_EQ(budget.at(obs::BudgetComponent::kRemoteRead),
                   (20 + 12) * model.remote_rpc_us + 500 * model.remote_item_us);
  EXPECT_DOUBLE_EQ(budget.at(obs::BudgetComponent::kRetryBackoff),
                   (9 + 3) * model.remote_rpc_us + 450.0);
}

// ---------------------------------------------------------------------------
// WindowedSeries: conservation, rates, percentiles.

TEST(WindowTest, DeltaConservationAcrossEviction) {
  // Tiny ring (4 windows) so advancing time evicts; every recorded count
  // must land either in a retained window or in the eviction tallies.
  obs::WindowedSeries series(100.0, 4);
  uint64_t expected = 0;
  for (int i = 0; i < 40; ++i) {
    series.Count(static_cast<double>(i) * 37.0, 3);
    expected += 3;
  }
  EXPECT_EQ(series.total_count(), expected);
  EXPECT_EQ(series.retained_count() + series.evicted_count(), expected);
  EXPECT_GT(series.evicted_count(), 0u) << "ring never evicted";
  // Retained range is contiguous and bounded by capacity.
  EXPECT_LE(series.windows().size(), 4u);
  for (size_t i = 1; i < series.windows().size(); ++i) {
    EXPECT_EQ(series.windows()[i].index, series.windows()[i - 1].index + 1);
  }
  // A late observation for a window that already fell off the ring is
  // folded into the eviction tally, not dropped.
  series.Count(0.0, 5);
  expected += 5;
  EXPECT_EQ(series.total_count(), expected);
  EXPECT_EQ(series.retained_count() + series.evicted_count(), expected);
}

TEST(WindowTest, FarJumpFoldsRingNotOOM) {
  obs::WindowedSeries series(1.0, 8);
  series.Count(0.0, 2);
  series.Record(3.0, 7.0);
  // A jump 10^9 windows ahead must not materialize 10^9 empty windows.
  series.Count(1e9, 1);
  EXPECT_LE(series.windows().size(), 8u);
  EXPECT_EQ(series.total_count(), 4u);
  EXPECT_EQ(series.retained_count() + series.evicted_count(), 4u);
  EXPECT_DOUBLE_EQ(series.total_sum(), 7.0);
  EXPECT_DOUBLE_EQ(series.evicted_sum(), 7.0);
}

TEST(WindowTest, SampleCumulativeStoresDeltas) {
  obs::WindowedSeries series(100.0, 16);
  const uint64_t samples[] = {100, 140, 140, 240, 1000};
  double t = 0.0;
  for (const uint64_t s : samples) {
    series.SampleCumulative(t, s);
    t += 100.0;
  }
  // Deltas sum to last - first (the base sample stores nothing).
  EXPECT_EQ(series.total_count(), samples[4] - samples[0]);
  EXPECT_EQ(series.retained_count(), samples[4] - samples[0]);
  EXPECT_EQ(series.At(1).count, 40u);
  EXPECT_EQ(series.At(2).count, 0u);
  EXPECT_EQ(series.At(3).count, 100u);
  EXPECT_EQ(series.At(4).count, 760u);
}

TEST(WindowTest, RateAndPercentilePerWindow) {
  const double bounds[] = {10.0, 100.0, 1000.0};
  obs::WindowedSeries series(1000.0, 8, bounds);  // 1ms windows
  // Window 0: 10 fast observations; window 2: 4 slow ones.
  for (int i = 0; i < 10; ++i) series.Record(500.0, 5.0);
  for (int i = 0; i < 4; ++i) series.Record(2500.0, 500.0);
  EXPECT_DOUBLE_EQ(series.RatePerSec(0), 10.0 / 1e-3);
  EXPECT_DOUBLE_EQ(series.RatePerSec(1), 0.0);
  EXPECT_DOUBLE_EQ(series.RatePerSec(2), 4.0 / 1e-3);
  EXPECT_LE(series.Percentile(0, 99.0), 10.0);
  EXPECT_GT(series.Percentile(2, 99.0), 100.0);
  // Outside the retained range: zero-filled, not UB.
  EXPECT_DOUBLE_EQ(series.RatePerSec(-5), 0.0);
  EXPECT_DOUBLE_EQ(series.Percentile(7, 50.0), 0.0);
  // Quiet window 1 is materialized (a data point, not a gap).
  EXPECT_EQ(series.first_index(), 0);
  EXPECT_EQ(series.last_index(), 2);
  EXPECT_EQ(series.windows().size(), 3u);
}

// ---------------------------------------------------------------------------
// FlightRecorder: bounds, determinism, round trip, trace capture.

TEST(RecorderTest, ReservoirBoundsAndSlowestSelection) {
  obs::FlightRecorderConfig cfg;
  cfg.slowest_k = 4;
  cfg.sample_k = 3;
  cfg.seed = 5;
  obs::FlightRecorder recorder(cfg);
  // 200 completed requests with distinct latencies 1..200.
  for (uint64_t id = 0; id < 200; ++id) {
    recorder.Offer(MakeBudget(id, static_cast<double>(id), 10.0));
  }
  EXPECT_EQ(recorder.offered(), 200u);
  const std::vector<obs::Exemplar> exemplars = recorder.Exemplars();
  EXPECT_LE(exemplars.size(), cfg.slowest_k + cfg.sample_k);
  // The slow flag marks exactly the 4 largest totals, slowest first.
  std::vector<uint64_t> slow_ids;
  for (const obs::Exemplar& ex : exemplars) {
    if (ex.slow) slow_ids.push_back(ex.budget.request_id);
  }
  EXPECT_EQ(slow_ids, (std::vector<uint64_t>{199, 198, 197, 196}));
  // No duplicate requests even when both reservoirs retained one.
  std::set<uint64_t> ids;
  for (const obs::Exemplar& ex : exemplars) {
    EXPECT_TRUE(ids.insert(ex.budget.request_id).second);
  }
}

TEST(RecorderTest, ReservoirIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    obs::FlightRecorderConfig cfg;
    cfg.slowest_k = 2;
    cfg.sample_k = 4;
    cfg.seed = seed;
    obs::FlightRecorder recorder(cfg);
    for (uint64_t id = 0; id < 500; ++id) {
      recorder.Offer(MakeBudget(id, static_cast<double>(id % 91), 10.0));
    }
    std::vector<uint64_t> ids;
    for (const obs::Exemplar& ex : recorder.Exemplars()) {
      ids.push_back(ex.budget.request_id);
    }
    return ids;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6)) << "seed does not steer the reservoir";
}

TEST(RecorderTest, DumpJsonRoundTrips) {
  obs::FlightRecorderConfig cfg;
  cfg.slowest_k = 2;
  cfg.sample_k = 2;
  obs::FlightRecorder recorder(cfg);
  std::vector<obs::RequestBudget> budgets;
  for (uint64_t id = 0; id < 20; ++id) {
    obs::RequestBudget b = MakeBudget(id, static_cast<double>(id), 10.0);
    b.trace_id = 1000 + id;
    budgets.push_back(b);
    recorder.Offer(b, {{"sampled_edges", 40 + id}});
  }
  recorder.SetAttribution(obs::BuildAttributionReport(budgets));
  const std::string json = recorder.ToJson("roundtrip");

  const auto dump = obs::ParseRecorderDump(json);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  EXPECT_EQ(dump->name, "roundtrip");
  EXPECT_EQ(dump->offered, 20u);
  EXPECT_EQ(dump->config.slowest_k, 2u);
  EXPECT_EQ(dump->config.sample_k, 2u);
  ASSERT_TRUE(dump->has_attribution);
  EXPECT_EQ(dump->attribution.requests, 20u);
  EXPECT_DOUBLE_EQ(dump->attribution.coverage, 1.0);

  const std::vector<obs::Exemplar> original = recorder.Exemplars();
  ASSERT_EQ(dump->exemplars.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const obs::Exemplar& a = original[i];
    const obs::Exemplar& b = dump->exemplars[i];
    EXPECT_EQ(a.budget.request_id, b.budget.request_id);
    EXPECT_EQ(a.budget.trace_id, b.budget.trace_id);
    EXPECT_EQ(a.budget.outcome, b.budget.outcome);
    EXPECT_EQ(a.slow, b.slow);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_DOUBLE_EQ(a.budget.total_us, b.budget.total_us);
    for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
      EXPECT_DOUBLE_EQ(a.budget.components[c], b.budget.components[c]);
    }
    EXPECT_EQ(a.counters, b.counters);
  }
  EXPECT_FALSE(obs::ParseRecorderDump("{\"nope\": 1}").ok());
  EXPECT_FALSE(obs::ParseRecorderDump("not json").ok());
}

TEST(RecorderTest, CaptureTracesAttachesServeRequestTrees) {
  obs::Tracer tracer;
  obs::SetDefaultTracer(&tracer);
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 12);
  serve::ServeEngine engine(graph, features, SmallServeConfig());
  obs::FlightRecorder recorder;
  engine.set_recorder(&recorder);
  const serve::LoadGenerator gen(graph, OpenLoad(64, 4000.0));
  engine.Run(gen);
  obs::SetDefaultTracer(nullptr);

  const size_t captured = recorder.CaptureTraces(tracer.Events());
  EXPECT_GT(captured, 0u);
  size_t with_spans = 0;
  for (const obs::Exemplar& ex : recorder.Exemplars()) {
    if (ex.spans.empty()) continue;
    ++with_spans;
    const obs::TraceForest forest = obs::AssembleTraces(ex.spans);
    ASSERT_EQ(forest.traces.size(), 1u);
    EXPECT_EQ(forest.traces[0].trace_id, ex.budget.trace_id);
    EXPECT_EQ(forest.traces[0].root_event().name, "serve/request");
  }
  EXPECT_EQ(with_spans, captured);
}

// ---------------------------------------------------------------------------
// Wall budgets from trace trees.

TEST(AttribTest, BudgetFromTraceTreeMapsDirectChildren) {
  // root (1000ns) -> sample(300) + gather(200) + compute(400) + misc(50),
  // with a nested sub-span under sample that must NOT be double-counted.
  std::vector<obs::SpanEvent> events;
  auto add = [&](const char* name, uint64_t span, uint64_t parent,
                 int64_t start, int64_t dur) {
    obs::SpanEvent ev;
    ev.name = name;
    ev.trace_id = 42;
    ev.span_id = span;
    ev.parent_span_id = parent;
    ev.start_ns = start;
    ev.duration_ns = dur;
    events.push_back(ev);
  };
  add("serve/request", 1, 0, 0, 1000);
  add("serve/sample", 2, 1, 0, 300);
  add("sample/hop", 5, 2, 10, 100);  // nested: ignored
  add("serve/gather", 3, 1, 300, 200);
  add("serve/compute", 4, 1, 500, 400);
  add("misc", 6, 1, 900, 50);  // unattributed child
  const obs::TraceForest forest = obs::AssembleTraces(events);
  ASSERT_EQ(forest.traces.size(), 1u);

  const obs::RequestBudget wall =
      obs::BudgetFromTraceTree(forest.traces[0]);
  EXPECT_EQ(wall.trace_id, 42u);
  EXPECT_DOUBLE_EQ(wall.total_us, 1.0);
  EXPECT_DOUBLE_EQ(wall.at(obs::BudgetComponent::kSample), 0.3);
  EXPECT_DOUBLE_EQ(wall.at(obs::BudgetComponent::kGather), 0.2);
  EXPECT_DOUBLE_EQ(wall.at(obs::BudgetComponent::kCompute), 0.4);
  // misc's 50ns stays unattributed and shows up as a coverage gap.
  EXPECT_NEAR(wall.coverage(), 0.9, 1e-9);
}

// ---------------------------------------------------------------------------
// Determinism across pipeline depths.

TEST(AttribTest, BudgetsAndTimelineBitIdenticalAcrossDepths) {
  const AttributedGraph graph = TestGraph();
  const nn::Matrix features = algo::BuildFeatureMatrix(graph, 12);
  const serve::LoadConfig load = OpenLoad(200, 9000.0);

  auto run = [&](size_t depth) {
    serve::ServeConfig cfg = SmallServeConfig();
    cfg.pipeline_depth = depth;
    cfg.max_in_flight = 4;
    cfg.timeline_interval_us = 1000.0;
    serve::ServeEngine engine(graph, features, cfg);
    const serve::LoadGenerator gen(graph, load);
    engine.Run(gen);
    return std::make_pair(engine.budgets(),
                          [&engine] {
                            std::vector<uint64_t> counts;
                            const serve::ServeTimeline* tl = engine.timeline();
                            for (int64_t w = tl->first_index();
                                 w <= tl->last_index(); ++w) {
                              counts.push_back(tl->offered.At(w).count);
                              counts.push_back(tl->completed.At(w).count);
                              counts.push_back(tl->shed.At(w).count);
                              counts.push_back(tl->missed.At(w).count);
                            }
                            return counts;
                          }());
  };
  const auto [budgets1, timeline1] = run(1);
  const auto [budgets3, timeline3] = run(3);
  ASSERT_EQ(budgets1.size(), budgets3.size());
  for (size_t i = 0; i < budgets1.size(); ++i) {
    EXPECT_EQ(budgets1[i].outcome, budgets3[i].outcome) << "request " << i;
    // Bit-equal, not approximately equal: the modeled decomposition is a
    // pure function of (graph, config, load), pipeline depth included out.
    EXPECT_EQ(budgets1[i].total_us, budgets3[i].total_us) << "request " << i;
    for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
      EXPECT_EQ(budgets1[i].components[c], budgets3[i].components[c])
          << "request " << i << " component " << c;
    }
  }
  EXPECT_EQ(timeline1, timeline3);

  // And the cohort report built from them is bit-identical too.
  const obs::AttributionReport r1 = obs::BuildAttributionReport(budgets1);
  const obs::AttributionReport r3 = obs::BuildAttributionReport(budgets3);
  EXPECT_EQ(r1.coverage, r3.coverage);
  for (size_t c = 0; c < obs::kNumBudgetComponents; ++c) {
    EXPECT_EQ(r1.high.share[c], r3.high.share[c]);
    EXPECT_EQ(r1.low.share[c], r3.low.share[c]);
  }
}

}  // namespace
}  // namespace aligraph
