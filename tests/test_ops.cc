// Tests for the operator layer: AGGREGATE / COMBINE forward + backward and
// the per-mini-batch hop-embedding materialization cache of Table 5.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "ops/hop_cache.h"
#include "ops/operators.h"

namespace aligraph {
namespace ops {
namespace {

using nn::Matrix;

Matrix MakeNeighbors() {
  // batch=2, fan=2, d=2: rows are neighbors of root0 then root1.
  Matrix m(4, 2);
  float vals[] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::copy(vals, vals + 8, m.data());
  return m;
}

TEST(MeanAggregatorTest, ForwardAverages) {
  MeanAggregator agg;
  Matrix out = agg.Forward(MakeNeighbors(), 2);
  ASSERT_EQ(out.rows(), 2u);
  EXPECT_FLOAT_EQ(out.At(0, 0), 2.0f);  // (1+3)/2
  EXPECT_FLOAT_EQ(out.At(0, 1), 3.0f);  // (2+4)/2
  EXPECT_FLOAT_EQ(out.At(1, 0), 6.0f);
}

TEST(MeanAggregatorTest, BackwardDistributesEvenly) {
  MeanAggregator agg;
  agg.Forward(MakeNeighbors(), 2);
  Matrix grad(2, 2);
  grad.Fill(1.0f);
  Matrix din = agg.Backward(grad);
  ASSERT_EQ(din.rows(), 4u);
  for (size_t i = 0; i < din.size(); ++i) {
    EXPECT_FLOAT_EQ(din.data()[i], 0.5f);
  }
}

TEST(SumAggregatorTest, ForwardSums) {
  SumAggregator agg;
  Matrix out = agg.Forward(MakeNeighbors(), 2);
  EXPECT_FLOAT_EQ(out.At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 14.0f);
}

TEST(SumAggregatorTest, BackwardCopies) {
  SumAggregator agg;
  agg.Forward(MakeNeighbors(), 2);
  Matrix grad(2, 2);
  grad.At(0, 0) = 2.0f;
  Matrix din = agg.Backward(grad);
  EXPECT_FLOAT_EQ(din.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(din.At(1, 0), 2.0f);  // both fan slots get it
}

TEST(MaxPoolAggregatorTest, ForwardTakesMax) {
  MaxPoolAggregator agg;
  Matrix out = agg.Forward(MakeNeighbors(), 2);
  EXPECT_FLOAT_EQ(out.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.At(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out.At(1, 0), 7.0f);
}

TEST(MaxPoolAggregatorTest, BackwardRoutesToArgmax) {
  MaxPoolAggregator agg;
  agg.Forward(MakeNeighbors(), 2);
  Matrix grad(2, 2);
  grad.Fill(1.0f);
  Matrix din = agg.Backward(grad);
  // Winners were the second neighbor of each root.
  EXPECT_FLOAT_EQ(din.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(din.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(din.At(2, 0), 0.0f);
  EXPECT_FLOAT_EQ(din.At(3, 0), 1.0f);
}

TEST(AggregatorFactoryTest, ResolvesNames) {
  for (const char* name : {"mean", "sum", "maxpool"}) {
    auto agg = MakeAggregator(name);
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->name(), name);
  }
}

class CombinerParamTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Combiner> Make(size_t in, size_t out, Rng& rng) {
    if (GetParam() == "concat") {
      return std::make_unique<ConcatCombiner>(in, out, rng);
    }
    return std::make_unique<AddCombiner>(in, out, rng);
  }
};

TEST_P(CombinerParamTest, ForwardShapeAndNonNegativity) {
  Rng rng(3);
  auto comb = Make(4, 3, rng);
  Matrix self = Matrix::Gaussian(5, 4, 1.0f, rng);
  Matrix agg = Matrix::Gaussian(5, 4, 1.0f, rng);
  Matrix out = comb->Forward(self, agg);
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out.data()[i], 0.0f);  // ReLU output
  }
}

TEST_P(CombinerParamTest, BackwardShapes) {
  Rng rng(5);
  auto comb = Make(4, 3, rng);
  Matrix self = Matrix::Gaussian(2, 4, 1.0f, rng);
  Matrix agg = Matrix::Gaussian(2, 4, 1.0f, rng);
  comb->Forward(self, agg);
  Matrix grad(2, 3);
  grad.Fill(1.0f);
  auto [dself, dagg] = comb->Backward(grad);
  EXPECT_EQ(dself.rows(), 2u);
  EXPECT_EQ(dself.cols(), 4u);
  EXPECT_EQ(dagg.cols(), 4u);
}

TEST_P(CombinerParamTest, TrainingReducesLoss) {
  // Fit target = first column of self through the combiner.
  Rng rng(7);
  auto comb = Make(3, 1, rng);
  nn::Adam opt(0.05f);
  Matrix self = Matrix::Gaussian(16, 3, 1.0f, rng);
  // AddCombiner sees only self + agg, so give both branches the same
  // signal; the test checks trainability, not separability.
  Matrix agg = self;
  Matrix target(16, 1);
  for (size_t i = 0; i < 16; ++i) {
    target.At(i, 0) = std::abs(self.At(i, 0));
  }
  float first_loss = -1;
  float last_loss = 0;
  for (int step = 0; step < 300; ++step) {
    Matrix out = comb->Forward(self, agg);
    Matrix grad(16, 1);
    float loss = 0;
    for (size_t i = 0; i < 16; ++i) {
      const float diff = out.At(i, 0) - target.At(i, 0);
      loss += diff * diff;
      grad.At(i, 0) = 2 * diff / 16;
    }
    if (first_loss < 0) first_loss = loss;
    last_loss = loss;
    comb->Backward(grad);
    comb->Apply(opt);
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

INSTANTIATE_TEST_SUITE_P(Combiners, CombinerParamTest,
                         ::testing::Values("concat", "add"));

TEST(HopCacheTest, MissThenHit) {
  HopEmbeddingCache cache(3);
  EXPECT_TRUE(cache.Lookup(1, 42).empty());
  const float row[] = {1, 2, 3};
  cache.Insert(1, 42, row);
  auto hit = cache.Lookup(1, 42);
  ASSERT_EQ(hit.size(), 3u);
  EXPECT_FLOAT_EQ(hit[1], 2.0f);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(HopCacheTest, HopsAreDistinctKeys) {
  HopEmbeddingCache cache(1);
  const float a[] = {1.0f};
  const float b[] = {2.0f};
  cache.Insert(1, 7, a);
  cache.Insert(2, 7, b);
  EXPECT_FLOAT_EQ(cache.Lookup(1, 7)[0], 1.0f);
  EXPECT_FLOAT_EQ(cache.Lookup(2, 7)[0], 2.0f);
}

TEST(HopCacheTest, InsertOverwrites) {
  HopEmbeddingCache cache(1);
  const float a[] = {1.0f};
  const float b[] = {9.0f};
  cache.Insert(0, 3, a);
  cache.Insert(0, 3, b);
  EXPECT_FLOAT_EQ(cache.Lookup(0, 3)[0], 9.0f);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(HopCacheTest, ResetClearsEverything) {
  HopEmbeddingCache cache(1);
  const float a[] = {1.0f};
  cache.Insert(0, 3, a);
  cache.Lookup(0, 3);
  cache.Reset();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_TRUE(cache.Lookup(0, 3).empty());
}

TEST(HopCacheTest, HitRateReflectsSharing) {
  // Simulating a mini-batch where each vertex appears 10 times: 1 miss and
  // 9 hits per vertex -> 90% hit rate, the effect behind Table 5.
  HopEmbeddingCache cache(2);
  const float row[] = {1, 2};
  for (VertexId v = 0; v < 20; ++v) {
    for (int rep = 0; rep < 10; ++rep) {
      if (cache.Lookup(1, v).empty()) cache.Insert(1, v, row);
    }
  }
  EXPECT_NEAR(cache.HitRate(), 0.9, 1e-9);
}

}  // namespace
}  // namespace ops
}  // namespace aligraph
