file(REMOVE_RECURSE
  "libaligraph.a"
)
