
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/bayesian.cc" "src/CMakeFiles/aligraph.dir/algo/bayesian.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/bayesian.cc.o.d"
  "/root/repo/src/algo/classic.cc" "src/CMakeFiles/aligraph.dir/algo/classic.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/classic.cc.o.d"
  "/root/repo/src/algo/embedding_algorithm.cc" "src/CMakeFiles/aligraph.dir/algo/embedding_algorithm.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/embedding_algorithm.cc.o.d"
  "/root/repo/src/algo/evolving.cc" "src/CMakeFiles/aligraph.dir/algo/evolving.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/evolving.cc.o.d"
  "/root/repo/src/algo/gatne.cc" "src/CMakeFiles/aligraph.dir/algo/gatne.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/gatne.cc.o.d"
  "/root/repo/src/algo/gnn.cc" "src/CMakeFiles/aligraph.dir/algo/gnn.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/gnn.cc.o.d"
  "/root/repo/src/algo/hep.cc" "src/CMakeFiles/aligraph.dir/algo/hep.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/hep.cc.o.d"
  "/root/repo/src/algo/heterogeneous.cc" "src/CMakeFiles/aligraph.dir/algo/heterogeneous.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/heterogeneous.cc.o.d"
  "/root/repo/src/algo/hierarchical.cc" "src/CMakeFiles/aligraph.dir/algo/hierarchical.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/hierarchical.cc.o.d"
  "/root/repo/src/algo/mixture.cc" "src/CMakeFiles/aligraph.dir/algo/mixture.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/algo/mixture.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/aligraph.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/comm_model.cc" "src/CMakeFiles/aligraph.dir/cluster/comm_model.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/cluster/comm_model.cc.o.d"
  "/root/repo/src/cluster/graph_server.cc" "src/CMakeFiles/aligraph.dir/cluster/graph_server.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/cluster/graph_server.cc.o.d"
  "/root/repo/src/cluster/request_bucket.cc" "src/CMakeFiles/aligraph.dir/cluster/request_bucket.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/cluster/request_bucket.cc.o.d"
  "/root/repo/src/common/alias_table.cc" "src/CMakeFiles/aligraph.dir/common/alias_table.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/common/alias_table.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/aligraph.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/aligraph.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/aligraph.dir/common/status.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/common/status.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/aligraph.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/common/threadpool.cc.o.d"
  "/root/repo/src/eval/link_prediction.cc" "src/CMakeFiles/aligraph.dir/eval/link_prediction.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/eval/link_prediction.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/aligraph.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/eval/metrics.cc.o.d"
  "/root/repo/src/gen/dynamic_gen.cc" "src/CMakeFiles/aligraph.dir/gen/dynamic_gen.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/gen/dynamic_gen.cc.o.d"
  "/root/repo/src/gen/powerlaw.cc" "src/CMakeFiles/aligraph.dir/gen/powerlaw.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/gen/powerlaw.cc.o.d"
  "/root/repo/src/gen/taobao.cc" "src/CMakeFiles/aligraph.dir/gen/taobao.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/gen/taobao.cc.o.d"
  "/root/repo/src/graph/attributes.cc" "src/CMakeFiles/aligraph.dir/graph/attributes.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/attributes.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/CMakeFiles/aligraph.dir/graph/dynamic_graph.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/aligraph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/aligraph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/khop.cc" "src/CMakeFiles/aligraph.dir/graph/khop.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/khop.cc.o.d"
  "/root/repo/src/graph/schema.cc" "src/CMakeFiles/aligraph.dir/graph/schema.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/graph/schema.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/aligraph.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/CMakeFiles/aligraph.dir/nn/matrix.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/nn/matrix.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/aligraph.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/skipgram.cc" "src/CMakeFiles/aligraph.dir/nn/skipgram.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/nn/skipgram.cc.o.d"
  "/root/repo/src/nn/walks.cc" "src/CMakeFiles/aligraph.dir/nn/walks.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/nn/walks.cc.o.d"
  "/root/repo/src/ops/hop_cache.cc" "src/CMakeFiles/aligraph.dir/ops/hop_cache.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/ops/hop_cache.cc.o.d"
  "/root/repo/src/ops/operators.cc" "src/CMakeFiles/aligraph.dir/ops/operators.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/ops/operators.cc.o.d"
  "/root/repo/src/partition/metis.cc" "src/CMakeFiles/aligraph.dir/partition/metis.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/partition/metis.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/CMakeFiles/aligraph.dir/partition/partitioner.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/partition/partitioner.cc.o.d"
  "/root/repo/src/sampling/sampler.cc" "src/CMakeFiles/aligraph.dir/sampling/sampler.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/sampling/sampler.cc.o.d"
  "/root/repo/src/storage/importance.cc" "src/CMakeFiles/aligraph.dir/storage/importance.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/storage/importance.cc.o.d"
  "/root/repo/src/storage/neighbor_cache.cc" "src/CMakeFiles/aligraph.dir/storage/neighbor_cache.cc.o" "gcc" "src/CMakeFiles/aligraph.dir/storage/neighbor_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
