# Empty compiler generated dependencies file for aligraph.
# This may be replaced when dependencies are built.
