file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_storage.dir/distributed_storage.cpp.o"
  "CMakeFiles/example_distributed_storage.dir/distributed_storage.cpp.o.d"
  "example_distributed_storage"
  "example_distributed_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
