# Empty compiler generated dependencies file for example_distributed_storage.
# This may be replaced when dependencies are built.
