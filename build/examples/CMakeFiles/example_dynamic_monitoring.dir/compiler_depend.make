# Empty compiler generated dependencies file for example_dynamic_monitoring.
# This may be replaced when dependencies are built.
