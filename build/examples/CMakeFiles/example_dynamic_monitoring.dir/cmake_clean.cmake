file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_monitoring.dir/dynamic_monitoring.cpp.o"
  "CMakeFiles/example_dynamic_monitoring.dir/dynamic_monitoring.cpp.o.d"
  "example_dynamic_monitoring"
  "example_dynamic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
