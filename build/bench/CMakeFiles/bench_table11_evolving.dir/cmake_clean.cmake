file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_evolving.dir/bench_table11_evolving.cc.o"
  "CMakeFiles/bench_table11_evolving.dir/bench_table11_evolving.cc.o.d"
  "bench_table11_evolving"
  "bench_table11_evolving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_evolving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
