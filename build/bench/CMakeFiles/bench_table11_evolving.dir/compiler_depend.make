# Empty compiler generated dependencies file for bench_table11_evolving.
# This may be replaced when dependencies are built.
