file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_operators.dir/bench_table5_operators.cc.o"
  "CMakeFiles/bench_table5_operators.dir/bench_table5_operators.cc.o.d"
  "bench_table5_operators"
  "bench_table5_operators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_operators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
