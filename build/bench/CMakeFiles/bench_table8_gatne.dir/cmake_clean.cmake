file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_gatne.dir/bench_table8_gatne.cc.o"
  "CMakeFiles/bench_table8_gatne.dir/bench_table8_gatne.cc.o.d"
  "bench_table8_gatne"
  "bench_table8_gatne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_gatne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
