# Empty dependencies file for bench_table8_gatne.
# This may be replaced when dependencies are built.
