# Empty dependencies file for bench_table4_sampling.
# This may be replaced when dependencies are built.
