file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_mixture.dir/bench_table9_mixture.cc.o"
  "CMakeFiles/bench_table9_mixture.dir/bench_table9_mixture.cc.o.d"
  "bench_table9_mixture"
  "bench_table9_mixture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_mixture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
