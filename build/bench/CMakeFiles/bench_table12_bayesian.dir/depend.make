# Empty dependencies file for bench_table12_bayesian.
# This may be replaced when dependencies are built.
