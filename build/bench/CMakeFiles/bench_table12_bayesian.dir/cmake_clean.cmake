file(REMOVE_RECURSE
  "CMakeFiles/bench_table12_bayesian.dir/bench_table12_bayesian.cc.o"
  "CMakeFiles/bench_table12_bayesian.dir/bench_table12_bayesian.cc.o.d"
  "bench_table12_bayesian"
  "bench_table12_bayesian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table12_bayesian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
