file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_ahep.dir/bench_table7_ahep.cc.o"
  "CMakeFiles/bench_table7_ahep.dir/bench_table7_ahep.cc.o.d"
  "bench_table7_ahep"
  "bench_table7_ahep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_ahep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
