# Empty dependencies file for bench_table7_ahep.
# This may be replaced when dependencies are built.
