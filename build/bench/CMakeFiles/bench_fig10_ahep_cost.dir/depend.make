# Empty dependencies file for bench_fig10_ahep_cost.
# This may be replaced when dependencies are built.
