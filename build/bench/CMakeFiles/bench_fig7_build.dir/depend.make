# Empty dependencies file for bench_fig7_build.
# This may be replaced when dependencies are built.
