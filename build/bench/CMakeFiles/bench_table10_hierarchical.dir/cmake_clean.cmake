file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_hierarchical.dir/bench_table10_hierarchical.cc.o"
  "CMakeFiles/bench_table10_hierarchical.dir/bench_table10_hierarchical.cc.o.d"
  "bench_table10_hierarchical"
  "bench_table10_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
