/// \file distributed_storage.cpp
/// \brief A tour of the storage layer: compare partitioners, watch the
/// communication counters during sampling, and see how importance caching
/// turns remote reads into local hits.

#include <cstdio>
#include <vector>

#include "aligraph.h"

using namespace aligraph;

namespace {

// Runs a 2-hop NEIGHBORHOOD workload from every worker. With
// `per_vertex` false the samplers issue one coalesced NeighborsBatch per
// hop (one remote request per destination worker); with true every read is
// an individual RPC, the pre-batching behaviour.
void RunSamplingWorkload(Cluster& cluster, CommStats& stats,
                         bool per_vertex = false) {
  NeighborhoodSampler hood;
  const std::vector<uint32_t> fans{8, 4};
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    DistributedNeighborSource source(cluster, w, &stats);
    PerVertexNeighborSource unbatched(source);
    NeighborSource& reads =
        per_vertex ? static_cast<NeighborSource&>(unbatched) : source;
    TraverseSampler traverse(
        std::vector<VertexId>(cluster.server(w).owned_vertices()),
        /*seed=*/w + 1);
    auto seeds = traverse.Sample(64);
    if (seeds.empty()) continue;
    hood.Sample(reads, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  }
}

}  // namespace

int main() {
  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.2))).value();
  std::printf("graph: %s\n\n", graph.ToString().c_str());

  // Attribute storage: the separate-index design in numbers.
  const AttributeStore& attrs = graph.vertex_attributes();
  std::printf("attribute store: %zu references -> %zu distinct records "
              "(%.1fx dedup)\n\n",
              attrs.num_references(), attrs.num_records(),
              static_cast<double>(attrs.InlinedBytes()) /
                  static_cast<double>(attrs.DedupBytes()));

  // Partitioner comparison on the same graph.
  for (const char* name : {"edge_cut", "streaming", "metis"}) {
    auto partitioner = std::move(MakePartitioner(name)).value();
    ClusterBuildReport report;
    auto cluster = std::move(Cluster::Build(graph, *partitioner, 4, &report))
                       .value();
    CommStats cold;
    RunSamplingWorkload(cluster, cold);
    std::printf("%-10s cut=%.3f | sampling: %s\n", name,
                report.partition_stats.edge_cut_fraction,
                cold.ToString().c_str());
  }

  // Importance caching on the hash-partitioned cluster.
  auto cluster =
      std::move(Cluster::Build(graph, EdgeCutPartitioner(), 4)).value();
  std::printf("\nimportance caching (threshold sweep, k = 2):\n");
  CommModel model;
  for (double tau : {0.45, 0.2, 0.05}) {
    const double rate = cluster.InstallImportanceCache(2, {tau, tau});
    // Snapshot deltas separate the batched pass from the per-vertex one on
    // the same shared counters.
    CommStats stats;
    CommStats::Snapshot mark = stats.snapshot();
    RunSamplingWorkload(cluster, stats, /*per_vertex=*/false);
    const CommStats::Snapshot batched = stats.snapshot().Delta(mark);
    mark = stats.snapshot();
    RunSamplingWorkload(cluster, stats, /*per_vertex=*/true);
    const CommStats::Snapshot unbatched = stats.snapshot().Delta(mark);
    std::printf("  tau=%.2f: cached %5.1f%% of vertices, %s, modeled "
                "comm %.2f ms batched vs %.2f ms per-vertex\n",
                tau, rate * 100, batched.ToString().c_str(),
                model.ModeledMillis(batched),
                model.ModeledMillis(unbatched));
  }
  return 0;
}
