/// \file recommendation.cpp
/// \brief Product recommendation — the application the paper's introduction
/// motivates. Trains GATNE on a synthetic Taobao AHG (multiplex behaviour
/// edges + attributes), then recommends items per user by embedding score
/// and reports hit-recall on held-out purchases.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "aligraph.h"

using namespace aligraph;

int main() {
  auto graph = std::move(gen::Taobao(gen::TaobaoSmallConfig(0.08))).value();
  std::printf("graph: %s\n", graph.ToString().c_str());

  auto split = std::move(eval::SplitLinkPrediction(graph, 0.2, 7)).value();

  // GATNE: base + edge-type-specific + attribute embeddings with
  // self-attention over behaviour types.
  algo::Gatne::Config config;
  config.dim = 32;
  config.spec_dim = 8;
  config.att_dim = 8;
  config.feature_dim = 24;
  config.walks.walks_per_vertex = 3;
  config.walks.walk_length = 10;
  config.epochs = 2;
  algo::Gatne gatne(config);
  auto embeddings = std::move(gatne.Embed(split.train)).value();
  std::printf("trained GATNE: %zu per-type embeddings of dim %zu\n",
              gatne.per_type_embeddings().size(), embeddings.cols());

  // Recommend: rank items for each test user by dot score under the "buy"
  // type-specific embedding.
  const EdgeType buy = graph.schema().EdgeTypeId("buy").value();
  const nn::Matrix& buy_emb = gatne.per_type_embeddings()[buy];
  const VertexType item_t = graph.schema().VertexTypeId("item").value();
  const auto item_span = graph.VerticesOfType(item_t);
  std::vector<VertexId> items(item_span.begin(), item_span.end());

  std::vector<size_t> ranks;
  for (const RawEdge& e : split.test_positive) {
    const double positive =
        eval::ScorePair(buy_emb, e.src, e.dst, eval::PairScorer::kDot);
    size_t rank = 0;
    for (VertexId item : items) {
      if (item == e.dst) continue;
      if (eval::ScorePair(buy_emb, e.src, item, eval::PairScorer::kDot) >
          positive) {
        ++rank;
      }
    }
    ranks.push_back(rank);
  }
  for (size_t k : {10u, 20u, 50u}) {
    std::printf("HR@%-3zu = %.4f\n", k, eval::HitRateAtK(ranks, k));
  }

  // Show a concrete recommendation list for one user.
  const VertexId user = split.test_positive.empty()
                            ? 0
                            : split.test_positive.front().src;
  std::vector<std::pair<double, VertexId>> scored;
  for (VertexId item : items) {
    scored.emplace_back(
        eval::ScorePair(buy_emb, user, item, eval::PairScorer::kDot), item);
  }
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("top-5 items for user %u:", user);
  for (int i = 0; i < 5; ++i) std::printf(" %u", scored[i].second);
  std::printf("\n");
  return 0;
}
