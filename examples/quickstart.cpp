/// \file quickstart.cpp
/// \brief AliGraph in five minutes: build an attributed heterogeneous
/// graph, partition it across simulated workers, sample neighborhoods
/// through the cache-aware storage layer, train a GraphSAGE embedding and
/// evaluate it on link prediction.

#include <cstdio>

#include "aligraph.h"

using namespace aligraph;

int main() {
  // 1. Build a graph. Real deployments load from storage; here we generate
  //    a small e-commerce style AHG: users and items, four behaviour edge
  //    types, categorical attributes.
  auto graph_or = gen::Taobao(gen::TaobaoSmallConfig(0.1));
  if (!graph_or.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  AttributedGraph graph = std::move(graph_or).value();
  std::printf("graph: %s\n", graph.ToString().c_str());

  // 2. Partition it across 4 simulated workers with the streaming
  //    partitioner and build the distributed storage layer.
  StreamingPartitioner partitioner;
  ClusterBuildReport report;
  auto cluster_or = Cluster::Build(graph, partitioner, 4, &report);
  if (!cluster_or.ok()) return 1;
  Cluster cluster = std::move(cluster_or).value();
  std::printf("cluster: %s\n", report.ToString().c_str());

  // 3. Cache the out-neighbors of important vertices (Imp_k >= tau) on
  //    every worker; Theorem 2 says this is a small fraction.
  const double cache_rate = cluster.InstallImportanceCache(2, {0.2, 0.2});
  std::printf("importance cache: %.1f%% of vertices pinned\n",
              cache_rate * 100);

  // 4. Sample through the cluster: TRAVERSE seeds, NEIGHBORHOOD contexts,
  //    NEGATIVE noise — the three sampler classes of the sampling layer.
  CommStats stats;
  DistributedNeighborSource source(cluster, /*worker=*/0, &stats);
  TraverseSampler traverse(
      std::vector<VertexId>(cluster.server(0).owned_vertices()));
  auto seeds = traverse.Sample(8);
  NeighborhoodSampler hood;
  const std::vector<uint32_t> fans{5, 3};
  auto context =
      hood.Sample(source, seeds, NeighborhoodSampler::kAllEdgeTypes, fans);
  std::printf("sampled %zu seeds -> %zu hop-1 + %zu hop-2 context vertices "
              "(%s)\n",
              seeds.size(), context.hops[0].size(), context.hops[1].size(),
              stats.ToString().c_str());

  // 5. Or sample straight into a relabeled subgraph block: the frontier is
  //    deduplicated to dense local ids, each hop becomes a local-id CSR,
  //    and one coalesced pass gathers every unique vertex's attributes
  //    through the cluster — operators then index dense rows, no hash maps.
  block::ClusterFeatureSource features(cluster, /*worker=*/0, /*dim=*/16,
                                       &stats);
  const block::SampledBlock blk =
      hood.SampleBlock(source, seeds, NeighborhoodSampler::kAllEdgeTypes,
                       fans, /*pool=*/nullptr, &features);
  std::printf("block: %zu slots -> %zu unique vertices (dedup %.2fx), "
              "feature matrix %zux%zu\n",
              blk.total_slots(), blk.num_vertices(), blk.dedup_ratio(),
              blk.features().rows(), blk.features().cols());

  // 6. Train a GraphSAGE embedding and evaluate link prediction.
  auto split_or = eval::SplitLinkPrediction(graph, 0.15, /*seed=*/42);
  if (!split_or.ok()) return 1;
  auto split = std::move(split_or).value();

  algo::GnnConfig config;
  config.dim = 32;
  config.feature_dim = 32;
  config.epochs = 1;
  config.batches_per_epoch = 48;
  algo::GraphSage sage(config);
  auto embeddings_or = sage.Embed(split.train);
  if (!embeddings_or.ok()) return 1;

  const auto metrics =
      eval::EvaluateLinkPrediction(*embeddings_or, split);
  std::printf("GraphSAGE link prediction: ROC-AUC %.3f, PR-AUC %.3f, "
              "F1 %.3f\n",
              metrics.roc_auc, metrics.pr_auc, metrics.f1);
  return 0;
}
