/// \file dynamic_monitoring.cpp
/// \brief Evolving-graph monitoring: watch a dynamic interaction graph,
/// distinguish normal growth from abnormal burst links (fraud-like
/// behaviour), and predict next-step evolution with the Evolving GNN.

#include <cstdio>

#include "aligraph.h"

using namespace aligraph;

int main() {
  // A graph that grows normally by preferential attachment, plus rare
  // bursts where one vertex suddenly floods the graph with edges.
  gen::DynamicConfig config;
  config.num_vertices = 2000;
  config.num_timestamps = 5;
  config.base_edges = 8000;
  config.normal_edges_per_step = 1500;
  config.bursts_per_step = 2;
  config.burst_size = 250;
  auto dynamic = std::move(gen::GenerateDynamic(config)).value();

  for (Timestamp t = 1; t <= dynamic.num_timestamps(); ++t) {
    size_t normal = 0, burst = 0;
    for (const DynamicEdge& e : dynamic.DeltaAt(t)) {
      (e.kind == EvolutionKind::kBurst ? burst : normal) += 1;
    }
    std::printf("t=%u: %zu edges total (+%zu normal, +%zu burst)\n", t,
                dynamic.Snapshot(t).num_edges(), normal, burst);
  }

  // Evolving GNN: persistent GraphSAGE across snapshots + temporal
  // recurrence; classifies candidate pairs into {no-edge, normal, burst}.
  algo::EvolvingGnn::Config cfg;
  cfg.gnn.dim = 32;
  cfg.gnn.feature_dim = 16;
  cfg.gnn.batches_per_epoch = 48;
  algo::EvolvingGnn model(cfg);
  auto scores = std::move(model.Run(dynamic)).value();

  std::printf("\nnext-step evolution prediction (final transition):\n");
  std::printf("  normal evolution: micro-F1 %.3f macro-F1 %.3f\n",
              scores.normal.micro, scores.normal.macro);
  std::printf("  burst change:     micro-F1 %.3f macro-F1 %.3f\n",
              scores.burst.micro, scores.burst.macro);

  // Compare against a static GraphSAGE that ignores the time dimension.
  algo::EvolvingGnn::Config static_cfg = cfg;
  static_cfg.embedder = algo::DynamicEmbedder::kStaticGraphSage;
  algo::EvolvingGnn static_model(static_cfg);
  auto static_scores = std::move(static_model.Run(dynamic)).value();
  std::printf("\nstatic GraphSAGE baseline:\n");
  std::printf("  normal evolution: micro-F1 %.3f macro-F1 %.3f\n",
              static_scores.normal.micro, static_scores.normal.macro);
  std::printf("  burst change:     micro-F1 %.3f macro-F1 %.3f\n",
              static_scores.burst.micro, static_scores.burst.macro);
  return 0;
}
