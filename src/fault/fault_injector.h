/// \file fault_injector.h
/// \brief Deterministic fault injection for the simulated cluster's remote
/// read paths.
///
/// Real graph servers under Taobao-scale traffic stall and fail; our
/// in-process cluster never does, which would leave every recovery path
/// untested. The FaultInjector makes failure a first-class, *reproducible*
/// input: each remote request attempt is judged by a pure function of
/// (config seed, source worker, destination worker, request key, attempt
/// number) — no shared mutable state, no wall clock — so two runs with the
/// same seed inject byte-identical fault sequences regardless of thread
/// interleaving, and a failing schedule found in CI replays exactly.
///
/// Two modes compose:
///  - a probability config (per-attempt transient / timeout / slow rates,
///    hashed from the seed), and
///  - an explicit schedule (ScheduledFault): "every request to worker w
///    fails its first n attempts with kind k", which tests use to force a
///    specific recovery path deterministically.
/// Schedule entries take precedence for their worker; other workers fall
/// back to the probability draw.

#ifndef ALIGRAPH_FAULT_FAULT_INJECTOR_H_
#define ALIGRAPH_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "graph/types.h"

namespace aligraph {

namespace obs {
class Counter;
}  // namespace obs

/// \brief What the injector did to one request attempt.
enum class FaultKind : uint8_t {
  kNone = 0,    ///< attempt proceeds normally
  kTransient,   ///< attempt fails immediately (connection reset, worker busy)
  kTimeout,     ///< attempt fails after burning its timeout budget
  kSlow,        ///< attempt succeeds but with inflated latency
};

const char* FaultKindName(FaultKind kind);

/// \brief Outcome of judging one attempt: the kind plus the modeled
/// microseconds the attempt cost on top of the normal RPC charge.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double latency_us = 0.0;

  /// True when the attempt delivers data (possibly late).
  bool Succeeds() const {
    return kind == FaultKind::kNone || kind == FaultKind::kSlow;
  }
};

/// \brief Deterministic per-worker schedule entry: every request whose
/// destination is `worker` fails its first `fail_first_attempts` attempts
/// with `kind`; later attempts succeed.
struct ScheduledFault {
  WorkerId worker = 0;
  FaultKind kind = FaultKind::kTransient;
  uint32_t fail_first_attempts = 1;
};

/// \brief Fault model configuration. Probabilities are per attempt and must
/// sum to <= 1; the remainder is the no-fault probability.
struct FaultConfig {
  uint64_t seed = 0;
  double transient_prob = 0.0;
  double timeout_prob = 0.0;
  double slow_prob = 0.0;
  /// Modeled latency inflation of one kSlow attempt, microseconds.
  double slow_latency_us = 500.0;
  /// Modeled cost of one timed-out attempt, microseconds (the caller waits
  /// this long before concluding the worker is gone).
  double timeout_us = 1000.0;
  /// Explicit per-worker schedule; takes precedence over the probabilities
  /// for the listed workers.
  std::vector<ScheduledFault> schedule;

  /// An all-zero config injects nothing and leaves read paths untouched.
  bool Active() const {
    return transient_prob > 0 || timeout_prob > 0 || slow_prob > 0 ||
           !schedule.empty();
  }

  std::string ToString() const;
};

/// \brief Judges request attempts against a FaultConfig. Thread-safe: the
/// decision is a pure hash of its arguments; only the injected-fault
/// counter is (relaxed) shared state.
class FaultInjector {
 public:
  /// Resolves the "fault.injected" counter from the default metrics
  /// registry at construction (null when observability is detached).
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  bool enabled() const { return config_.Active(); }

  /// Judges attempt `attempt` (1-based) of the request identified by
  /// `request_key` from worker `from` to worker `to`. Pure in its
  /// arguments: the same tuple always yields the same decision.
  FaultDecision Decide(WorkerId from, WorkerId to, uint64_t request_key,
                       uint32_t attempt) const;

  /// Total faults injected (transient + timeout + slow) since construction.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultConfig config_;
  mutable std::atomic<uint64_t> injected_{0};
  obs::Counter* obs_injected_ = nullptr;
};

}  // namespace aligraph

#endif  // ALIGRAPH_FAULT_FAULT_INJECTOR_H_
