#include "fault/retry_policy.h"

#include <algorithm>
#include <sstream>

namespace aligraph {

double RetryPolicy::NextBackoffUs(double prev_us, Rng& rng) const {
  const double lo = base_backoff_us;
  const double hi = std::max(lo, prev_us * 3.0);
  const double draw = lo + rng.NextDouble() * (hi - lo);
  return std::min(max_backoff_us, draw);
}

std::string RetryPolicy::ToString() const {
  std::ostringstream os;
  os << "max_attempts=" << max_attempts << " base_backoff=" << base_backoff_us
     << "us max_backoff=" << max_backoff_us << "us deadline=" << deadline_us
     << "us";
  return os.str();
}

}  // namespace aligraph
