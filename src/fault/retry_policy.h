/// \file retry_policy.h
/// \brief Retry policy for remote reads in the simulated cluster: bounded
/// attempts, exponential backoff with decorrelated jitter, and a modeled
/// per-request deadline.
///
/// The policy mirrors what BGL-style systems use to bound tail latency on
/// flaky graph servers: a request gets max_attempts tries; between tries
/// the caller backs off for a jittered, geometrically growing interval; a
/// request whose accumulated modeled time (attempt latencies + backoffs)
/// exceeds deadline_us is abandoned even if attempts remain. All times are
/// *modeled* — charged to CommStats::retry_backoff_us and reflected in
/// CommModel::ModeledMillis — never actually slept, so fault tests stay
/// fast and exactly reproducible.

#ifndef ALIGRAPH_FAULT_RETRY_POLICY_H_
#define ALIGRAPH_FAULT_RETRY_POLICY_H_

#include <cstdint>
#include <string>

#include "common/random.h"

namespace aligraph {

/// \brief Bounded-retry configuration applied to fallible cluster reads.
struct RetryPolicy {
  /// Total tries per request, including the first (>= 1).
  uint32_t max_attempts = 4;
  /// First backoff interval, microseconds (modeled).
  double base_backoff_us = 50.0;
  /// Backoff cap, microseconds (modeled).
  double max_backoff_us = 4000.0;
  /// Per-request budget over attempt latencies + backoffs, microseconds
  /// (modeled). A request past its deadline fails without further retries.
  double deadline_us = 100000.0;

  /// Next backoff after a backoff of `prev_us`, using AWS-style
  /// decorrelated jitter: uniform in [base, 3 * prev], capped. The jitter
  /// stream comes from `rng`, which callers seed per request so the
  /// schedule is a pure function of (config seed, request key).
  double NextBackoffUs(double prev_us, Rng& rng) const;

  std::string ToString() const;
};

}  // namespace aligraph

#endif  // ALIGRAPH_FAULT_RETRY_POLICY_H_
