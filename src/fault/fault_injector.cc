#include "fault/fault_injector.h"

#include <sstream>

#include "obs/metrics.h"

namespace aligraph {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kSlow:
      return "slow";
  }
  return "unknown";
}

std::string FaultConfig::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed << " transient=" << transient_prob
     << " timeout=" << timeout_prob << " slow=" << slow_prob
     << " schedule_entries=" << schedule.size();
  return os.str();
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)),
      obs_injected_(obs::DefaultCounter("fault.injected")) {}

FaultDecision FaultInjector::Decide(WorkerId from, WorkerId to,
                                    uint64_t request_key,
                                    uint32_t attempt) const {
  FaultDecision d;
  // Schedule entries first: deterministic "fail the first n attempts".
  for (const ScheduledFault& s : config_.schedule) {
    if (s.worker != to) continue;
    if (attempt <= s.fail_first_attempts) {
      d.kind = s.kind;
      d.latency_us = s.kind == FaultKind::kTimeout ? config_.timeout_us
                     : s.kind == FaultKind::kSlow  ? config_.slow_latency_us
                                                   : 0.0;
    }
    // A scheduled worker never also draws from the probability model.
    if (d.kind != FaultKind::kNone) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      if (obs_injected_ != nullptr) obs_injected_->Add(1);
    }
    return d;
  }

  // Probability mode: one uniform draw hashed purely from the identity of
  // this attempt, so the judgement is order- and thread-independent.
  uint64_t h = Mix64(config_.seed ^ 0x7fa0'17c4'5eed'f001ULL);
  h = Mix64(h ^ (static_cast<uint64_t>(from) << 32) ^ to);
  h = Mix64(h ^ request_key);
  h = Mix64(h ^ attempt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;

  if (u < config_.transient_prob) {
    d.kind = FaultKind::kTransient;
  } else if (u < config_.transient_prob + config_.timeout_prob) {
    d.kind = FaultKind::kTimeout;
    d.latency_us = config_.timeout_us;
  } else if (u <
             config_.transient_prob + config_.timeout_prob + config_.slow_prob) {
    d.kind = FaultKind::kSlow;
    d.latency_us = config_.slow_latency_us;
  }
  if (d.kind != FaultKind::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
    if (obs_injected_ != nullptr) obs_injected_->Add(1);
  }
  return d;
}

}  // namespace aligraph
