#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace aligraph {
namespace eval {
namespace {

// Merges scores into (score, is_positive) sorted descending by score.
std::vector<std::pair<double, bool>> MergeSorted(
    std::span<const double> pos, std::span<const double> neg) {
  std::vector<std::pair<double, bool>> all;
  all.reserve(pos.size() + neg.size());
  for (double s : pos) all.emplace_back(s, true);
  for (double s : neg) all.emplace_back(s, false);
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return all;
}

}  // namespace

double RocAuc(std::span<const double> pos, std::span<const double> neg) {
  if (pos.empty() || neg.empty()) return 0.5;
  // Rank-sum (Mann-Whitney U) with tie correction via average ranks.
  auto all = MergeSorted(pos, neg);
  const size_t n = all.size();
  double pos_rank_sum = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && all[j].first == all[i].first) ++j;
    // ranks i+1 .. j (1-based); average rank for the tie group.
    const double avg_rank = (static_cast<double>(i) + 1.0 +
                             static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (all[k].second) pos_rank_sum += avg_rank;
    }
    i = j;
  }
  const double np = static_cast<double>(pos.size());
  const double nn = static_cast<double>(neg.size());
  // Descending sort: smaller rank = higher score, so invert.
  const double u = pos_rank_sum - np * (np + 1) / 2.0;
  return 1.0 - u / (np * nn);
}

double PrAuc(std::span<const double> pos, std::span<const double> neg) {
  if (pos.empty()) return 0;
  auto all = MergeSorted(pos, neg);
  // Average precision: mean of precision at each positive hit.
  double ap = 0;
  size_t tp = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].second) {
      ++tp;
      ap += static_cast<double>(tp) / static_cast<double>(i + 1);
    }
  }
  return ap / static_cast<double>(pos.size());
}

double BestF1(std::span<const double> pos, std::span<const double> neg) {
  if (pos.empty()) return 0;
  auto all = MergeSorted(pos, neg);
  double best = 0;
  size_t tp = 0;
  const double total_pos = static_cast<double>(pos.size());
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].second) ++tp;
    // Threshold after element i: predicted positives = i+1.
    const double precision = static_cast<double>(tp) / static_cast<double>(i + 1);
    const double recall = static_cast<double>(tp) / total_pos;
    if (precision + recall > 0) {
      best = std::max(best, 2 * precision * recall / (precision + recall));
    }
  }
  return best;
}

BinaryMetrics ComputeBinaryMetrics(std::span<const double> pos,
                                   std::span<const double> neg) {
  BinaryMetrics m;
  m.roc_auc = RocAuc(pos, neg);
  m.pr_auc = PrAuc(pos, neg);
  m.f1 = BestF1(pos, neg);
  return m;
}

double HitRateAtK(std::span<const size_t> ranks, size_t k) {
  if (ranks.empty()) return 0;
  size_t hits = 0;
  for (size_t r : ranks) {
    if (r < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(ranks.size());
}

MultiClassF1 ComputeMultiClassF1(std::span<const uint32_t> labels,
                                 std::span<const uint32_t> predictions,
                                 uint32_t num_classes) {
  MultiClassF1 out;
  if (labels.empty() || labels.size() != predictions.size()) return out;
  std::vector<size_t> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == predictions[i]) {
      ++tp[labels[i]];
    } else {
      ++fp[predictions[i]];
      ++fn[labels[i]];
    }
  }
  size_t tp_all = 0, fp_all = 0, fn_all = 0;
  double macro_sum = 0;
  uint32_t macro_classes = 0;
  for (uint32_t c = 0; c < num_classes; ++c) {
    tp_all += tp[c];
    fp_all += fp[c];
    fn_all += fn[c];
    const double denom = 2.0 * tp[c] + fp[c] + fn[c];
    if (tp[c] + fn[c] == 0) continue;  // class absent from labels
    macro_sum += denom == 0 ? 0.0 : 2.0 * tp[c] / denom;
    ++macro_classes;
  }
  const double micro_denom = 2.0 * tp_all + fp_all + fn_all;
  out.micro = micro_denom == 0 ? 0.0 : 2.0 * tp_all / micro_denom;
  out.macro = macro_classes == 0 ? 0.0 : macro_sum / macro_classes;
  return out;
}

}  // namespace eval
}  // namespace aligraph
