/// \file metrics.h
/// \brief Evaluation metrics used across the paper's Tables 7-12: ROC-AUC,
/// PR-AUC, F1, hit-recall@K and micro/macro F1.

#ifndef ALIGRAPH_EVAL_METRICS_H_
#define ALIGRAPH_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace aligraph {
namespace eval {

/// Area under the ROC curve for binary scores (probability that a random
/// positive outranks a random negative; ties count half).
double RocAuc(std::span<const double> positive_scores,
              std::span<const double> negative_scores);

/// Area under the precision-recall curve (average precision).
double PrAuc(std::span<const double> positive_scores,
             std::span<const double> negative_scores);

/// Maximum F1 over all score thresholds.
double BestF1(std::span<const double> positive_scores,
              std::span<const double> negative_scores);

/// \brief The binary-classification triple reported by Tables 7, 8, 10.
struct BinaryMetrics {
  double roc_auc = 0;
  double pr_auc = 0;
  double f1 = 0;
};

/// Computes all three binary metrics at once.
BinaryMetrics ComputeBinaryMetrics(std::span<const double> positive_scores,
                                   std::span<const double> negative_scores);

/// Hit-recall@K: fraction of test queries whose held-out positive appears
/// in the query's top-K ranked candidates. `ranks` holds the (0-based) rank
/// the positive achieved per query.
double HitRateAtK(std::span<const size_t> ranks, size_t k);

/// \brief Micro/macro F1 for multi-class predictions (Table 11).
struct MultiClassF1 {
  double micro = 0;
  double macro = 0;
};

/// Labels and predictions are class ids in [0, num_classes).
MultiClassF1 ComputeMultiClassF1(std::span<const uint32_t> labels,
                                 std::span<const uint32_t> predictions,
                                 uint32_t num_classes);

}  // namespace eval
}  // namespace aligraph

#endif  // ALIGRAPH_EVAL_METRICS_H_
