/// \file link_prediction.h
/// \brief The link-prediction evaluation harness of Section 5.2: hold out a
/// fraction of edges, train embeddings on the rest, score held-out edges
/// against sampled non-edges, and average metrics across edge types.

#ifndef ALIGRAPH_EVAL_LINK_PREDICTION_H_
#define ALIGRAPH_EVAL_LINK_PREDICTION_H_

#include <vector>

#include "common/status.h"
#include "eval/metrics.h"
#include "graph/graph.h"
#include "nn/matrix.h"

namespace aligraph {
namespace eval {

/// \brief A train graph plus held-out positive and sampled negative edges.
struct LinkPredictionSplit {
  AttributedGraph train;
  std::vector<RawEdge> test_positive;
  std::vector<RawEdge> test_negative;  ///< same size and type mix as positive
};

/// Splits `graph` for link prediction: each edge lands in the test set with
/// probability `test_fraction`; one non-edge with the same source and edge
/// type is sampled per held-out edge.
Result<LinkPredictionSplit> SplitLinkPrediction(const AttributedGraph& graph,
                                                double test_fraction,
                                                uint64_t seed);

/// \brief How an edge (u, v) is scored from vertex embeddings.
enum class PairScorer {
  kDot,     ///< <h_u, h_v>
  kCosine,  ///< normalized dot
};

double ScorePair(const nn::Matrix& embeddings, VertexId u, VertexId v,
                 PairScorer scorer);

/// Scores the split with one embedding matrix (row v = embedding of v) and
/// averages the binary metrics across edge types, as the paper does
/// ("each metric is averaged among different types of edges").
BinaryMetrics EvaluateLinkPrediction(const nn::Matrix& embeddings,
                                     const LinkPredictionSplit& split,
                                     PairScorer scorer = PairScorer::kDot);

/// Same but with a per-edge-type embedding (GATNE-style h_{v,c}):
/// `per_type_embeddings[t]` scores edges of type t.
BinaryMetrics EvaluateLinkPredictionPerType(
    const std::vector<nn::Matrix>& per_type_embeddings,
    const LinkPredictionSplit& split, PairScorer scorer = PairScorer::kDot);

/// Recommendation hit-recall: for each held-out (user, item) edge, rank the
/// positive item among `candidates` random items by embedding score and
/// report the positive's rank. Feed the ranks to HitRateAtK.
std::vector<size_t> RecommendationRanks(const nn::Matrix& embeddings,
                                        const LinkPredictionSplit& split,
                                        std::span<const VertexId> item_pool,
                                        size_t candidates, uint64_t seed,
                                        PairScorer scorer = PairScorer::kDot);

}  // namespace eval
}  // namespace aligraph

#endif  // ALIGRAPH_EVAL_LINK_PREDICTION_H_
