#include "eval/link_prediction.h"

#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace aligraph {
namespace eval {
namespace {

uint64_t EdgeKey(VertexId u, VertexId v, EdgeType t) {
  return (static_cast<uint64_t>(t) << 48) ^
         (static_cast<uint64_t>(u) << 24) ^ v;
}

}  // namespace

Result<LinkPredictionSplit> SplitLinkPrediction(const AttributedGraph& graph,
                                                double test_fraction,
                                                uint64_t seed) {
  if (test_fraction <= 0 || test_fraction >= 1) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  LinkPredictionSplit split;

  // Rebuild the schema and vertices; route each edge to train or test.
  GraphSchema schema = graph.schema();
  GraphBuilder gb(schema, graph.undirected());
  std::unordered_set<uint64_t> edge_set;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto feats = graph.VertexFeatures(v);
    gb.AddVertex(graph.vertex_type(v),
                 std::vector<float>(feats.begin(), feats.end()));
  }
  const size_t num_types = graph.num_edge_types();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb :
           graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        if (graph.undirected() && nb.dst < v) continue;  // visit once
        edge_set.insert(EdgeKey(v, nb.dst, static_cast<EdgeType>(t)));
        RawEdge e{v, nb.dst, static_cast<EdgeType>(t), nb.weight, kNoAttr};
        if (rng.Bernoulli(test_fraction)) {
          split.test_positive.push_back(e);
        } else {
          ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(v, nb.dst, e.type, e.weight));
        }
      }
    }
  }

  // One negative per positive (index-aligned): same source and type, random
  // non-neighbor destination drawn from the pool of vertices with the same
  // type as the true destination. If rejection sampling fails (tiny or
  // near-complete graphs), fall back to the last candidate so alignment
  // holds.
  for (const RawEdge& pos : split.test_positive) {
    const VertexType want = graph.vertex_type(pos.dst);
    const auto pool = graph.VerticesOfType(want);
    VertexId chosen = pos.dst;
    for (int tries = 0; tries < 128 && !pool.empty(); ++tries) {
      const VertexId cand = pool[rng.Uniform(pool.size())];
      if (cand == pos.src) continue;
      chosen = cand;
      if (edge_set.count(EdgeKey(pos.src, cand, pos.type)) == 0) break;
    }
    split.test_negative.push_back(
        RawEdge{pos.src, chosen, pos.type, 1.0f, kNoAttr});
  }

  ALIGRAPH_ASSIGN_OR_RETURN(split.train, gb.Build());
  return split;
}

double ScorePair(const nn::Matrix& embeddings, VertexId u, VertexId v,
                 PairScorer scorer) {
  auto hu = embeddings.Row(u);
  auto hv = embeddings.Row(v);
  const double dot = nn::Dot(hu, hv);
  if (scorer == PairScorer::kDot) return dot;
  double nu = 0, nv = 0;
  for (float x : hu) nu += x * x;
  for (float x : hv) nv += x * x;
  const double denom = std::sqrt(nu * nv);
  return denom < 1e-12 ? 0.0 : dot / denom;
}

namespace {

BinaryMetrics AverageOverTypes(
    const LinkPredictionSplit& split,
    const std::function<double(const RawEdge&)>& score) {
  // Bucket scores per edge type, compute metrics per type, average the
  // types that have test data.
  std::unordered_map<EdgeType, std::vector<double>> pos, neg;
  for (const RawEdge& e : split.test_positive) pos[e.type].push_back(score(e));
  for (const RawEdge& e : split.test_negative) neg[e.type].push_back(score(e));

  BinaryMetrics avg;
  size_t counted = 0;
  for (const auto& [t, p] : pos) {
    auto it = neg.find(t);
    if (it == neg.end() || p.empty() || it->second.empty()) continue;
    const BinaryMetrics m = ComputeBinaryMetrics(p, it->second);
    avg.roc_auc += m.roc_auc;
    avg.pr_auc += m.pr_auc;
    avg.f1 += m.f1;
    ++counted;
  }
  if (counted > 0) {
    avg.roc_auc /= counted;
    avg.pr_auc /= counted;
    avg.f1 /= counted;
  }
  return avg;
}

}  // namespace

BinaryMetrics EvaluateLinkPrediction(const nn::Matrix& embeddings,
                                     const LinkPredictionSplit& split,
                                     PairScorer scorer) {
  return AverageOverTypes(split, [&](const RawEdge& e) {
    return ScorePair(embeddings, e.src, e.dst, scorer);
  });
}

BinaryMetrics EvaluateLinkPredictionPerType(
    const std::vector<nn::Matrix>& per_type_embeddings,
    const LinkPredictionSplit& split, PairScorer scorer) {
  return AverageOverTypes(split, [&](const RawEdge& e) {
    const nn::Matrix& emb = per_type_embeddings[e.type];
    return ScorePair(emb, e.src, e.dst, scorer);
  });
}

std::vector<size_t> RecommendationRanks(const nn::Matrix& embeddings,
                                        const LinkPredictionSplit& split,
                                        std::span<const VertexId> item_pool,
                                        size_t candidates, uint64_t seed,
                                        PairScorer scorer) {
  Rng rng(seed);
  std::vector<size_t> ranks;
  ranks.reserve(split.test_positive.size());
  for (const RawEdge& pos : split.test_positive) {
    const double pos_score =
        ScorePair(embeddings, pos.src, pos.dst, scorer);
    size_t rank = 0;
    for (size_t c = 0; c < candidates; ++c) {
      const VertexId item = item_pool[rng.Uniform(item_pool.size())];
      if (item == pos.dst) continue;
      if (ScorePair(embeddings, pos.src, item, scorer) > pos_score) ++rank;
    }
    ranks.push_back(rank);
  }
  return ranks;
}

}  // namespace eval
}  // namespace aligraph
