#include "sampling/sampler.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/logging.h"
#include "common/threadpool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aligraph {

namespace {

/// Stable literal span names for hop stages ("sample/hop0", ...); hops past
/// the table share the last name rather than allocating.
const char* HopSpanName(size_t hop) {
  static constexpr const char* kNames[] = {
      "sample/hop0", "sample/hop1", "sample/hop2", "sample/hop3",
      "sample/hop4", "sample/hop5", "sample/hop6", "sample/hop7+"};
  constexpr size_t kLast = sizeof(kNames) / sizeof(kNames[0]) - 1;
  return kNames[hop < kLast ? hop : kLast];
}

/// Bounds for the slots-per-unique-vertex duplicate ratio (>= 1; a hop of
/// all-distinct vertices records 1, heavy hub resampling records >> 1).
std::span<const double> RatioBounds() {
  static constexpr double kBounds[] = {1,  1.25, 1.5, 2,  3,  4,  6, 8,
                                       12, 16,   24,  32, 48, 64, 96, 128};
  return kBounds;
}

/// slots / unique over one flat hop frontier.
double FrontierDupRatio(std::span<const VertexId> frontier) {
  if (frontier.empty()) return 1.0;
  std::unordered_set<VertexId> unique(frontier.begin(), frontier.end());
  return static_cast<double>(frontier.size()) /
         static_cast<double>(unique.size());
}

}  // namespace

std::vector<VertexId> TraverseSampler::Sample(size_t batch_size) {
  obs::ScopedSpan span("sample/traverse");
  std::vector<VertexId> batch;
  if (pool_.empty()) return batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(pool_[rng_.Uniform(pool_.size())]);
  }
  return batch;
}

std::vector<std::pair<VertexId, Neighbor>> TraverseSampler::SampleEdges(
    NeighborSource& source, EdgeType type, size_t batch_size) {
  obs::ScopedSpan span("sample/traverse_edges");
  std::vector<std::pair<VertexId, Neighbor>> batch;
  if (pool_.empty()) return batch;
  batch.reserve(batch_size);
  // Draw a whole round of candidate seeds, fetch their typed adjacency in
  // ONE batched read, then fill from the non-empty spans; seeds without
  // such edges are re-drawn in the next round, a bounded number of times.
  const size_t max_tries = batch_size * 16 + 64;
  size_t tries = 0;
  std::vector<VertexId> seeds;
  BatchResult adj;
  while (batch.size() < batch_size && tries < max_tries) {
    const size_t want =
        std::min(batch_size - batch.size(), max_tries - tries);
    seeds.resize(want);
    for (VertexId& s : seeds) s = pool_[rng_.Uniform(pool_.size())];
    tries += want;
    // Checked read: on an infallible source this is exactly NeighborsBatch.
    // Failed slots (ok == 0) have empty spans and fall through the empty
    // check below, so the sampler degrades by re-drawing those seeds in the
    // next round instead of aborting the batch.
    const Status st = source.NeighborsBatchChecked(seeds, type, &adj);
    if (!st.ok()) {
      const uint64_t failed = static_cast<uint64_t>(adj.FailedSlots());
      if (obs::Counter* degraded = obs::DefaultCounter("degraded.samples")) {
        degraded->Add(failed);
      }
    }
    for (size_t i = 0; i < seeds.size() && batch.size() < batch_size; ++i) {
      const auto nbs = adj.spans[i];
      if (nbs.empty()) continue;
      batch.emplace_back(seeds[i], nbs[rng_.Uniform(nbs.size())]);
    }
  }
  return batch;
}

VertexId NeighborhoodSampler::SampleOne(std::span<const Neighbor> nbs,
                                        VertexId fallback, size_t rank,
                                        Rng& rng) {
  if (nbs.empty()) return fallback;
  switch (strategy_) {
    case NeighborStrategy::kUniform:
      return nbs[rng.Uniform(nbs.size())].dst;
    case NeighborStrategy::kWeighted: {
      double total = 0;
      for (const Neighbor& nb : nbs) total += nb.weight;
      double r = rng.NextDouble() * total;
      for (const Neighbor& nb : nbs) {
        r -= nb.weight;
        if (r <= 0) return nb.dst;
      }
      return nbs.back().dst;
    }
    case NeighborStrategy::kTopK: {
      // Deterministic: the rank-th heaviest edge (rank wraps around).
      size_t best = 0;
      // For small fan-outs a selection scan per rank is cheap and avoids
      // allocating a sorted copy per vertex per hop.
      std::vector<std::pair<float, size_t>> order(nbs.size());
      for (size_t i = 0; i < nbs.size(); ++i) order[i] = {-nbs[i].weight, i};
      const size_t k = rank % nbs.size();
      std::nth_element(order.begin(), order.begin() + k, order.end());
      best = order[k].second;
      return nbs[best].dst;
    }
  }
  return fallback;
}

void NeighborhoodSampler::DrawFan(std::span<const Neighbor> nbs,
                                  VertexId fallback, uint32_t fan, Rng& rng,
                                  VertexId* out) {
  if (strategy_ != NeighborStrategy::kUniform || nbs.empty()) {
    for (uint32_t j = 0; j < fan; ++j) {
      out[j] = SampleOne(nbs, fallback, j, rng);
    }
    return;
  }
  // Uniform fast path: batch the index draws, then resolve the span reads
  // in a second pass (dst fields of a hub's adjacency are prefetched by the
  // batched frontier read). Stack chunking keeps the scratch register-/
  // L1-sized for any fan-out.
  constexpr uint32_t kChunk = 64;
  uint32_t idx[kChunk];
  for (uint32_t base = 0; base < fan; base += kChunk) {
    const uint32_t take = std::min(kChunk, fan - base);
    for (uint32_t j = 0; j < take; ++j) {
      idx[j] = static_cast<uint32_t>(rng.Uniform(nbs.size()));
    }
    for (uint32_t j = 0; j < take; ++j) {
      out[base + j] = nbs[idx[j]].dst;
    }
  }
}

void NeighborhoodSampler::RefreshObsHandles() {
  obs::MetricsRegistry* reg = obs::Default();
  if (reg == obs_registry_) return;
  obs_registry_ = reg;
  if (reg == nullptr) {
    hop_latency_ = frontier_sizes_ = fan_outs_ = dup_ratio_ = nullptr;
    degraded_samples_ = nullptr;
    return;
  }
  hop_latency_ =
      reg->GetHistogram("sample.hop_latency_us", obs::LatencyBoundsUs());
  frontier_sizes_ = reg->GetHistogram("sample.frontier_size",
                                      obs::SizeBounds());
  fan_outs_ = reg->GetHistogram("sample.fan_out", obs::SizeBounds());
  dup_ratio_ = reg->GetHistogram("sample.frontier_dup_ratio", RatioBounds());
  degraded_samples_ = reg->GetCounter("degraded.samples");
}

void NeighborhoodSampler::AdmitStale(std::span<const VertexId> frontier,
                                     const BatchResult& adj) {
  for (size_t i = 0; i < frontier.size(); ++i) {
    if (adj.ok[i] == 0) continue;
    if (stale_cache_.size() >= kStaleCacheCap) return;
    auto [it, inserted] = stale_cache_.try_emplace(frontier[i]);
    if (inserted || !adj.spans[i].empty()) {
      it->second.assign(adj.spans[i].begin(), adj.spans[i].end());
    }
  }
}

void NeighborhoodSampler::DegradeFailedSlots(std::span<const VertexId> frontier,
                                             BatchResult* adj,
                                             NeighborhoodSample* sample) {
  uint64_t degraded = 0;
  for (size_t i = 0; i < frontier.size(); ++i) {
    if (adj->ok[i] != 0) continue;
    ++degraded;
    auto it = stale_cache_.find(frontier[i]);
    if (it != stale_cache_.end()) {
      // Serve the last successfully fetched adjacency of this vertex. Stale
      // data beats no data for a sampler: the draw stays unbiased w.r.t.
      // the cached snapshot.
      adj->spans[i] = it->second;
    }
    // No cached copy: leave the span empty — SampleOne's empty-span
    // fallback repeats the root, i.e. the slot degenerates to a resample
    // of itself, keeping hop shapes aligned with zero aborts.
  }
  if (degraded == 0) return;
  sample->partial = true;
  sample->degraded_draws += degraded;
  if (degraded_samples_ != nullptr) degraded_samples_->Add(degraded);
}

NeighborhoodSample NeighborhoodSampler::Sample(
    NeighborSource& source, std::span<const VertexId> roots, EdgeType type,
    std::span<const uint32_t> hop_nums, ThreadPool* pool) {
  return DrawHops(source, roots, type, hop_nums, pool);
}

block::SampledBlock NeighborhoodSampler::SampleBlock(
    NeighborSource& source, std::span<const VertexId> roots, EdgeType type,
    std::span<const uint32_t> hop_nums, ThreadPool* pool,
    block::FeatureSource* features) {
  // Request root when called outside any span: draw, relabel, and gather
  // all land in one trace.
  obs::ScopedSpan span("sample/block");
  const NeighborhoodSample sample =
      DrawHops(source, roots, type, hop_nums, pool);
  block::SampledBlock out =
      block::SampledBlock::Build(sample.roots, sample.hops, hop_nums);
  out.set_partial(sample.partial);
  out.add_degraded_draws(sample.degraded_draws);
  if (features != nullptr) (void)out.GatherFeatures(*features);
  return out;
}

NeighborhoodSample NeighborhoodSampler::DrawHops(
    NeighborSource& source, std::span<const VertexId> roots, EdgeType type,
    std::span<const uint32_t> hop_nums, ThreadPool* pool) {
  obs::ScopedSpan whole("sample/neighborhood");
  // Pin the source for the whole k-hop: concurrent update batches become
  // visible between hops of two samples, never inside one.
  struct EpochScope {
    NeighborSource& src;
    explicit EpochScope(NeighborSource& s) : src(s) { s.PinEpoch(); }
    ~EpochScope() { src.UnpinEpoch(); }
  } epoch_scope(source);
  // Per-hop instrumentation: latency histogram plus frontier / fan-out
  // size distributions. Handles are cached across Sample calls; all null
  // (and skipped) when observability is detached.
  RefreshObsHandles();

  NeighborhoodSample sample;
  sample.roots.assign(roots.begin(), roots.end());

  std::span<const VertexId> frontier(sample.roots);
  BatchResult adj;
  size_t hop_index = 0;
  for (uint32_t fan : hop_nums) {
    // The hop span doubles as the latency-histogram timer.
    obs::ScopedSpan hop_span(HopSpanName(hop_index), hop_latency_);
    if (frontier_sizes_ != nullptr) {
      frontier_sizes_->Record(static_cast<double>(frontier.size()));
      fan_outs_->Record(static_cast<double>(fan));
    }
    // One coalesced read for the whole frontier: the source sees the full
    // hop and can turn its remote residue into one request per worker. On
    // an infallible source the checked read IS NeighborsBatch (same bytes,
    // same accounting); only fallible sources take the degradation branch.
    (void)source.NeighborsBatchChecked(frontier, type, &adj);
    if (source.fallible()) {
      AdmitStale(frontier, adj);
      // Resolve failures BEFORE the draw loop so the (possibly parallel)
      // draw below never sees a failed slot — degradation is sequential
      // and deterministic regardless of the thread pool.
      DegradeFailedSlots(frontier, &adj, &sample);
    }
    std::vector<VertexId> next(frontier.size() * fan);
    if (pool == nullptr) {
      for (size_t i = 0; i < frontier.size(); ++i) {
        DrawFan(adj.spans[i], frontier[i], fan, rng_, &next[i * fan]);
      }
    } else {
      // Parallel draw over the fetched spans: each root gets its own RNG
      // stream derived from one draw of the sampler RNG, so results are
      // deterministic for a fixed seed and roots write disjoint ranges.
      const uint64_t base = rng_.Next();
      pool->ParallelFor(frontier.size(), [&](size_t i) {
        Rng local(Mix64(base ^ (static_cast<uint64_t>(i) + 1)));
        DrawFan(adj.spans[i], frontier[i], fan, local, &next[i * fan]);
      });
    }
    sample.hops.push_back(std::move(next));
    frontier = std::span<const VertexId>(sample.hops.back());
    if (dup_ratio_ != nullptr) dup_ratio_->Record(FrontierDupRatio(frontier));
    ++hop_index;
  }
  return sample;
}

NegativeSampler::NegativeSampler(const AttributedGraph& graph,
                                 std::vector<VertexId> candidates,
                                 double power, uint64_t seed)
    : candidates_(std::move(candidates)), rng_(seed) {
  std::vector<double> weights(candidates_.size());
  for (size_t i = 0; i < candidates_.size(); ++i) {
    const double deg = static_cast<double>(graph.InDegree(candidates_[i])) +
                       static_cast<double>(graph.OutDegree(candidates_[i]));
    weights[i] = std::pow(deg + 1.0, power);
  }
  table_.Build(weights);
}

std::vector<VertexId> NegativeSampler::Sample(size_t count,
                                              VertexId positive) {
  obs::ScopedSpan span("sample/negative");
  std::vector<VertexId> out;
  if (candidates_.empty() || table_.empty()) return out;
  out.reserve(count);
  // Round-based batched draws: each round asks the alias table for exactly
  // the number of negatives still missing (collisions with `positive` are
  // rare, so the first round almost always suffices), bounded by the same
  // total-tries guard as the old per-draw loop. SampleBatch consumes the
  // RNG stream draw-for-draw like scalar Sample, so the output is
  // bit-identical to the historical sequential path.
  const size_t max_tries = count * 16 + 64;
  size_t tries = 0;
  while (out.size() < count && tries < max_tries) {
    const size_t want = std::min(count - out.size(), max_tries - tries);
    draws_.resize(want);
    table_.SampleBatch(rng_, draws_, &scratch_);
    tries += want;
    for (const size_t d : draws_) {
      const VertexId v = candidates_[d];
      if (v == positive) continue;
      out.push_back(v);
    }
  }
  return out;
}

DynamicWeightedSampler::DynamicWeightedSampler(
    std::vector<VertexId> vertices, std::vector<double> initial_weights,
    size_t rebuild_every, uint64_t seed)
    : vertices_(std::move(vertices)),
      weights_(std::move(initial_weights)),
      rebuild_every_(rebuild_every == 0 ? 1 : rebuild_every),
      rng_(seed) {
  ALIGRAPH_CHECK_EQ(vertices_.size(), weights_.size());
  index_of_.reserve(vertices_.size());
  for (size_t i = 0; i < vertices_.size(); ++i) index_of_[vertices_[i]] = i;
  MaybeRebuild(/*force=*/true);
}

VertexId DynamicWeightedSampler::Sample() {
  ALIGRAPH_CHECK(!vertices_.empty());
  if (table_.empty()) return vertices_[rng_.Uniform(vertices_.size())];
  return vertices_[table_.Sample(rng_)];
}

void DynamicWeightedSampler::Update(VertexId v, double delta) {
  auto it = index_of_.find(v);
  if (it == index_of_.end()) return;
  weights_[it->second] = std::max(0.0, weights_[it->second] + delta);
  ++pending_updates_;
  MaybeRebuild(/*force=*/false);
}

double DynamicWeightedSampler::WeightOf(VertexId v) const {
  auto it = index_of_.find(v);
  return it == index_of_.end() ? 0.0 : weights_[it->second];
}

void DynamicWeightedSampler::MaybeRebuild(bool force) {
  if (!force && pending_updates_ < rebuild_every_) return;
  table_.Build(weights_);
  pending_updates_ = 0;
}

}  // namespace aligraph
