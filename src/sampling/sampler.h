/// \file sampler.h
/// \brief The sampling layer (Section 3.3): TRAVERSE, NEIGHBORHOOD and
/// NEGATIVE samplers as plugins, plus dynamic-weight sampling whose weights
/// are updated in a backward pass like any other operator.
///
/// Samplers read adjacency through a NeighborSource so the same code runs
/// against a local AttributedGraph or against the simulated distributed
/// Cluster (where reads are cache-aware and communication-counted).

#ifndef ALIGRAPH_SAMPLING_SAMPLER_H_
#define ALIGRAPH_SAMPLING_SAMPLER_H_

#include <algorithm>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/feature_source.h"
#include "block/sampled_block.h"
#include "cluster/cluster.h"
#include "common/alias_table.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {

class ThreadPool;

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// \brief Adjacency access abstraction shared by all samplers.
///
/// Besides per-vertex reads, sources expose a batched read so callers that
/// know a whole frontier up front (hop expansion, edge sampling) can let
/// the source coalesce data movement. The base implementation falls back to
/// one per-vertex read per slot; distributed sources override it with one
/// coalesced request per destination worker.
class NeighborSource {
 public:
  virtual ~NeighborSource() = default;
  /// All out-neighbors of v.
  virtual std::span<const Neighbor> Neighbors(VertexId v) = 0;
  /// Out-neighbors of v restricted to one edge type.
  virtual std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) = 0;

  /// Batched read: out->spans[i] = adjacency of vertices[i], restricted to
  /// `type` unless it is kAllEdgeTypes. Default: per-vertex fallback.
  virtual void NeighborsBatch(std::span<const VertexId> vertices,
                              EdgeType type, BatchResult* out) {
    out->Reset(vertices.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      out->spans[i] = type == kAllEdgeTypes ? Neighbors(vertices[i])
                                            : Neighbors(vertices[i], type);
    }
  }

  /// True when reads through this source can fail (fault injection on a
  /// distributed source). Samplers only engage their degradation paths —
  /// stale-cache admission, partial-result bookkeeping — on fallible
  /// sources, keeping the infallible hot path byte-identical.
  virtual bool fallible() const { return false; }

  /// Pins the backing store at its current epoch for a multi-read scope:
  /// every read until UnpinEpoch resolves against that one epoch, so a
  /// whole k-hop can never observe a mix of two epochs even while update
  /// batches land concurrently. No-ops for immutable sources. The sampler
  /// brackets each DrawHops with this pair.
  virtual void PinEpoch() {}
  virtual void UnpinEpoch() {}

  /// Fallible batched read: like NeighborsBatch but slots whose read
  /// exhausted its retry budget get out->ok[i] = 0 (span left empty) and
  /// the call returns Unavailable. Infallible sources (the default) always
  /// succeed with every flag at 1.
  virtual Status NeighborsBatchChecked(std::span<const VertexId> vertices,
                                       EdgeType type, BatchResult* out) {
    NeighborsBatch(vertices, type, out);
    return Status::OK();
  }
};

/// \brief Reads a local AttributedGraph directly.
class LocalNeighborSource : public NeighborSource {
 public:
  explicit LocalNeighborSource(const AttributedGraph& graph) : graph_(graph) {}
  std::span<const Neighbor> Neighbors(VertexId v) override {
    return graph_.OutNeighbors(v);
  }
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) override {
    return graph_.OutNeighbors(v, type);
  }
  // Native batch: straight-line loop over the graph, no virtual dispatch
  // per vertex (local reads have no RPC to amortize). The walk is
  // COALESCED — slots are visited in ascending vertex id, so the CSR is
  // touched as a monotone sweep (duplicate and id-adjacent slots land on
  // the same or consecutive cache lines, and under a hot-packed layout the
  // hot prefix streams). The adjacency kPrefetchAhead positions down the
  // sorted walk is software-prefetched. Slot ASSIGNMENT order is
  // observationally irrelevant: spans[i] is a pure function of
  // vertices[i], so outputs are bit-identical to the slot-order loop.
  void NeighborsBatch(std::span<const VertexId> vertices, EdgeType type,
                      BatchResult* out) override {
    constexpr size_t kPrefetchAhead = 8;
    out->Reset(vertices.size());
    order_.resize(vertices.size());
    std::iota(order_.begin(), order_.end(), uint32_t{0});
    std::sort(order_.begin(), order_.end(),
              [&vertices](uint32_t a, uint32_t b) {
                return vertices[a] < vertices[b];
              });
    for (size_t i = 0; i < order_.size(); ++i) {
      if (i + kPrefetchAhead < order_.size()) {
        if (type == kAllEdgeTypes) {
          graph_.PrefetchOutNeighbors(vertices[order_[i + kPrefetchAhead]]);
        } else {
          graph_.PrefetchOutNeighbors(vertices[order_[i + kPrefetchAhead]],
                                      type);
        }
      }
      const uint32_t slot = order_[i];
      out->spans[slot] = type == kAllEdgeTypes
                             ? graph_.OutNeighbors(vertices[slot])
                             : graph_.OutNeighbors(vertices[slot], type);
    }
  }

 private:
  const AttributedGraph& graph_;
  std::vector<uint32_t> order_;  ///< reusable sorted-walk permutation
};

/// \brief Reads through the cluster from the perspective of one worker,
/// recording local/cache/remote access counts. Batched reads coalesce the
/// remote residue into one request per destination worker.
class DistributedNeighborSource : public NeighborSource {
 public:
  DistributedNeighborSource(Cluster& cluster, WorkerId worker,
                            CommStats* stats)
      : cluster_(cluster), worker_(worker), stats_(stats) {}
  std::span<const Neighbor> Neighbors(VertexId v) override {
    return cluster_.GetNeighbors(worker_, v, stats_, epoch_);
  }
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) override {
    return cluster_.GetNeighbors(worker_, v, type, stats_, epoch_);
  }
  void NeighborsBatch(std::span<const VertexId> vertices, EdgeType type,
                      BatchResult* out) override {
    cluster_.GetNeighborsBatch(worker_, vertices, type, out, stats_, epoch_);
  }

  bool fallible() const override {
    return cluster_.fault_injection_enabled();
  }

  Status NeighborsBatchChecked(std::span<const VertexId> vertices,
                               EdgeType type, BatchResult* out) override {
    return cluster_.TryGetNeighborsBatch(worker_, vertices, type, out, stats_,
                                         epoch_);
  }

  /// Registers this reader with the cluster's epoch manager; the pin both
  /// freezes the resolve epoch and blocks reclamation of the versions the
  /// scope may still read.
  void PinEpoch() override {
    pin_ = cluster_.PinEpoch();
    epoch_ = pin_.epoch();
  }
  void UnpinEpoch() override {
    pin_.Release();
    epoch_ = kEpochCurrent;
  }

  /// Epoch reads currently resolve against (kEpochCurrent when unpinned).
  uint64_t read_epoch() const { return epoch_; }

 private:
  Cluster& cluster_;
  WorkerId worker_;
  CommStats* stats_;
  EpochPin pin_;
  uint64_t epoch_ = kEpochCurrent;
};

/// \brief Ablation / comparison adapter: forwards per-vertex reads to an
/// inner source but deliberately inherits the per-vertex NeighborsBatch
/// fallback, so every read is charged as an individual RPC. Benches and
/// tests use it to quantify what batching saves.
class PerVertexNeighborSource : public NeighborSource {
 public:
  explicit PerVertexNeighborSource(NeighborSource& inner) : inner_(inner) {}
  std::span<const Neighbor> Neighbors(VertexId v) override {
    return inner_.Neighbors(v);
  }
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) override {
    return inner_.Neighbors(v, type);
  }

 private:
  NeighborSource& inner_;
};

/// \brief TRAVERSE: samples a batch of seed vertices (or edges) from the
/// (partitioned sub)graph, optionally restricted to sources that carry
/// edges of a given type.
class TraverseSampler {
 public:
  /// \param vertices candidate seed pool (e.g. a worker's owned vertices or
  ///        all vertices of one vertex type).
  TraverseSampler(std::vector<VertexId> vertices, uint64_t seed = 1)
      : pool_(std::move(vertices)), rng_(seed) {}

  /// Uniformly samples batch_size seeds with replacement.
  std::vector<VertexId> Sample(size_t batch_size);

  /// Samples batch_size edges of the given type: pairs (src, neighbor).
  /// Seeds without such edges are re-drawn a bounded number of times.
  std::vector<std::pair<VertexId, Neighbor>> SampleEdges(
      NeighborSource& source, EdgeType type, size_t batch_size);

 private:
  std::vector<VertexId> pool_;
  Rng rng_;
};

/// \brief Per-hop sampling strategy of the NEIGHBORHOOD sampler.
enum class NeighborStrategy {
  kUniform,   ///< uniform with replacement (GraphSAGE default)
  kWeighted,  ///< proportional to edge weight
  kTopK,      ///< the k heaviest edges, deterministic
};

/// \brief Legacy flat result of the NEIGHBORHOOD sampler: hop k is a flat
/// vector of size batch * hop_nums[0] * ... * hop_nums[k]; vertices with
/// no suitable neighbor repeat themselves so shapes stay aligned.
///
/// New code should prefer NeighborhoodSampler::SampleBlock, which returns
/// the same draws as a relabeled block::SampledBlock; this struct is kept
/// as the thin flat-vector adapter for existing callers.
struct NeighborhoodSample {
  std::vector<VertexId> roots;
  std::vector<std::vector<VertexId>> hops;  ///< hops[k]: flattened hop-k ids
  /// True when at least one frontier read exhausted its retry budget and
  /// the sampler degraded (stale cached neighbors or root-repeat resample)
  /// instead of aborting. Always false on infallible sources.
  bool partial = false;
  /// Failed frontier slots that were served degraded (stale or resampled).
  uint64_t degraded_draws = 0;
};

class NeighborhoodSampler {
 public:
  NeighborhoodSampler(NeighborStrategy strategy = NeighborStrategy::kUniform,
                      uint64_t seed = 2)
      : strategy_(strategy), rng_(seed) {}

  /// Samples the context of `roots` along edges of `type` (pass
  /// kAllEdgeTypes for type-agnostic neighborhoods) and relabels it into a
  /// block::SampledBlock: deduplicated frontier with dense local ids plus
  /// one local-id CSR per hop. Each hop issues ONE NeighborsBatch over the
  /// whole frontier instead of per-vertex reads. When `pool` is non-null,
  /// alias/weighted sampling over the fetched spans is parallelized across
  /// the pool with per-root RNG streams derived from the sampler seed
  /// (deterministic for a fixed seed, but a different — equally valid —
  /// draw than the pool-less sequential path). When `features` is non-null
  /// the block's feature matrix is gathered (once per unique vertex)
  /// before returning; gather failures under fault injection leave zero
  /// rows and mark the block partial instead of aborting. The draws are
  /// identical to Sample's for the same sampler state: both entry points
  /// share one draw loop.
  block::SampledBlock SampleBlock(NeighborSource& source,
                                  std::span<const VertexId> roots,
                                  EdgeType type,
                                  std::span<const uint32_t> hop_nums,
                                  ThreadPool* pool = nullptr,
                                  block::FeatureSource* features = nullptr);

  /// Legacy flat-vector adapter around the same draw loop as SampleBlock.
  NeighborhoodSample Sample(NeighborSource& source,
                            std::span<const VertexId> roots, EdgeType type,
                            std::span<const uint32_t> hop_nums,
                            ThreadPool* pool = nullptr);

  static constexpr EdgeType kAllEdgeTypes = aligraph::kAllEdgeTypes;

  /// Vertices currently held in the stale-neighbor fallback cache (only
  /// populated while sampling through a fallible source).
  size_t stale_cache_size() const { return stale_cache_.size(); }

 private:
  /// The shared draw loop: one checked batched read + fan draws per hop,
  /// recording per-hop latency / frontier / fan-out / duplicate-ratio
  /// observations. Sample returns its result verbatim; SampleBlock
  /// relabels it.
  NeighborhoodSample DrawHops(NeighborSource& source,
                              std::span<const VertexId> roots, EdgeType type,
                              std::span<const uint32_t> hop_nums,
                              ThreadPool* pool);

  VertexId SampleOne(std::span<const Neighbor> nbs, VertexId fallback,
                     size_t rank, Rng& rng);

  /// Draws one slot's whole fan into out[0, fan). For kUniform the index
  /// draws are batched two-pass (all RNG draws first, then the span
  /// resolutions) — consuming the RNG stream exactly as the per-draw loop
  /// would, so results are bit-identical; other strategies take the scalar
  /// SampleOne path.
  void DrawFan(std::span<const Neighbor> nbs, VertexId fallback, uint32_t fan,
               Rng& rng, VertexId* out);

  /// Graceful degradation: for every failed slot of a fallible frontier
  /// read, substitute the stale cached adjacency when one is held, else
  /// leave the span empty so SampleOne's fallback repeats the root (a
  /// resample). Counts degraded slots into the sample and "degraded.samples".
  void DegradeFailedSlots(std::span<const VertexId> frontier, BatchResult* adj,
                          NeighborhoodSample* sample);

  /// Admits successful slots of a fallible read into the stale cache
  /// (copies; capped) so later hops can survive the same vertex failing.
  void AdmitStale(std::span<const VertexId> frontier, const BatchResult& adj);

  /// Re-resolves the cached histogram handles when the process default
  /// registry changed since the last Sample call (one pointer compare per
  /// call in steady state; all handles null when detached).
  void RefreshObsHandles();

  /// Stale-cache capacity in vertices; admission stops when full (simple
  /// and deterministic — no eviction, faults are rare and runs bounded).
  static constexpr size_t kStaleCacheCap = size_t{1} << 16;

  NeighborStrategy strategy_;
  Rng rng_;
  std::unordered_map<VertexId, std::vector<Neighbor>> stale_cache_;
  obs::MetricsRegistry* obs_registry_ = nullptr;
  obs::Histogram* hop_latency_ = nullptr;
  obs::Histogram* frontier_sizes_ = nullptr;
  obs::Histogram* fan_outs_ = nullptr;
  obs::Histogram* dup_ratio_ = nullptr;
  obs::Counter* degraded_samples_ = nullptr;
};

/// \brief NEGATIVE: samples noise vertices from a static unigram^power
/// distribution, optionally restricted to one vertex type, excluding the
/// positive vertex.
class NegativeSampler {
 public:
  /// Builds the noise distribution from in-degrees^power over `candidates`.
  NegativeSampler(const AttributedGraph& graph,
                  std::vector<VertexId> candidates, double power = 0.75,
                  uint64_t seed = 3);

  /// Draws `count` negatives, none equal to `positive`. Draws are issued in
  /// batched rounds through AliasTable::SampleBatch — the RNG stream is
  /// consumed exactly as the per-draw loop would, so results are
  /// bit-identical to the scalar path for the same sampler state.
  std::vector<VertexId> Sample(size_t count, VertexId positive);

 private:
  std::vector<VertexId> candidates_;
  AliasTable table_;
  AliasTable::BatchScratch scratch_;
  std::vector<size_t> draws_;
  Rng rng_;
};

/// \brief Dynamic-weight vertex sampler: weights are adjusted by a
/// registered "gradient" in a backward call, mirroring how the paper folds
/// sampler updates into backpropagation. The alias table is rebuilt lazily
/// after a configurable number of updates.
class DynamicWeightedSampler {
 public:
  DynamicWeightedSampler(std::vector<VertexId> vertices,
                         std::vector<double> initial_weights,
                         size_t rebuild_every = 1024, uint64_t seed = 4);

  /// Forward: draw one vertex proportionally to the current weights.
  VertexId Sample();

  /// Backward: apply a weight delta to a vertex (clamped at >= 0).
  void Update(VertexId v, double delta);

  double WeightOf(VertexId v) const;
  size_t updates_since_rebuild() const { return pending_updates_; }

 private:
  void MaybeRebuild(bool force);

  std::vector<VertexId> vertices_;
  std::unordered_map<VertexId, size_t> index_of_;
  std::vector<double> weights_;
  AliasTable table_;
  size_t rebuild_every_;
  size_t pending_updates_ = 0;
  Rng rng_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_SAMPLING_SAMPLER_H_
