#include "gen/zipf.h"

#include <cmath>

#include "common/logging.h"

namespace aligraph {
namespace gen {

ZipfSampler::ZipfSampler(const ZipfConfig& config)
    : config_(config), rng_(config.seed) {
  ALIGRAPH_CHECK_GT(config.num_ranks, 0u);
  ALIGRAPH_CHECK_GE(config.exponent, 0.0);
  std::vector<double> weights(config.num_ranks);
  double total = 0;
  for (size_t r = 0; r < config.num_ranks; ++r) {
    weights[r] = std::pow(static_cast<double>(r + 1), -config.exponent);
    total += weights[r];
  }
  table_.Build(weights);
  pmf_.resize(weights.size());
  for (size_t r = 0; r < weights.size(); ++r) pmf_[r] = weights[r] / total;
}

}  // namespace gen
}  // namespace aligraph
