/// \file powerlaw.h
/// \brief Synthetic power-law graph generators.
///
/// Real-world e-commerce graphs have power-law in/out-degree distributions
/// (Section 3.2, Theorems 1-2 build on this), so every synthetic substitute
/// in this repository is generated with power-law degrees. Chung-Lu gives
/// controllable exponents; Barabasi-Albert gives a classic preferential-
/// attachment topology.

#ifndef ALIGRAPH_GEN_POWERLAW_H_
#define ALIGRAPH_GEN_POWERLAW_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {
namespace gen {

/// \brief Parameters of a Chung-Lu random graph.
struct ChungLuConfig {
  VertexId num_vertices = 10000;
  double avg_degree = 10.0;
  double gamma = 2.3;        ///< target power-law exponent (> 2)
  bool directed = true;      ///< directed graphs draw independent in/out weights
  uint64_t seed = 1;
};

/// Generates a Chung-Lu graph: endpoints of each of n*avg_degree edges are
/// drawn proportionally to per-vertex weights w_v ~ v^{-1/(gamma-1)}, which
/// yields Pr(deg = q) ~ q^{-gamma}. Self-loops are skipped.
Result<AttributedGraph> ChungLu(const ChungLuConfig& config);

/// Generates an undirected Barabasi-Albert graph: each new vertex attaches
/// `edges_per_vertex` edges preferentially to high-degree vertices.
Result<AttributedGraph> BarabasiAlbert(VertexId num_vertices,
                                       uint32_t edges_per_vertex,
                                       uint64_t seed);

}  // namespace gen
}  // namespace aligraph

#endif  // ALIGRAPH_GEN_POWERLAW_H_
