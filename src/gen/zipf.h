/// \file zipf.h
/// \brief Seeded Zipf(s) rank sampler, alias-table backed.
///
/// Production GNN serving traffic is dominated by hub vertices: GLISP
/// (PAPERS.md, arXiv:2401.03114) measures power-law access frequencies over
/// the vertex set, so a realistic load generator must draw its seed
/// vertices Zipf-distributed over degree rank rather than uniformly. This
/// sampler is the reusable primitive: P(rank = r) ~ (r + 1)^{-s} over ranks
/// [0, n), built once into an AliasTable so every draw is O(1), and fully
/// deterministic for a fixed seed — the same contract every other seeded
/// component in the repo makes. The serving layer maps ranks onto vertices
/// sorted by degree; benches can reuse it for any skewed index draw.

#ifndef ALIGRAPH_GEN_ZIPF_H_
#define ALIGRAPH_GEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/alias_table.h"
#include "common/random.h"

namespace aligraph {
namespace gen {

/// \brief Parameters of a Zipf rank distribution.
struct ZipfConfig {
  /// Number of ranks n; draws are in [0, n). Must be >= 1.
  size_t num_ranks = 1;
  /// Skew exponent s >= 0. 0 degenerates to uniform; ~0.9-1.1 matches
  /// measured e-commerce access skew.
  double exponent = 1.0;
  /// Seed of the internal stream used by Next().
  uint64_t seed = 1;
};

/// \brief O(1) sampler from P(rank = r) ~ (r + 1)^{-s}.
class ZipfSampler {
 public:
  explicit ZipfSampler(const ZipfConfig& config);

  /// Draws one rank from the internal seeded stream.
  size_t Next() { return Sample(rng_); }

  /// Draws one rank from a caller-supplied stream; does not touch internal
  /// state, so callers with per-request RNGs get draws that are a pure
  /// function of their own stream.
  size_t Sample(Rng& rng) const { return table_.Sample(rng); }

  /// Batched variant of Sample: fills `out` with |out| ranks via the alias
  /// table's two-pass batch path. Consumes `rng` exactly as |out| scalar
  /// Sample calls would, so the draws are bit-identical to the per-draw
  /// loop — callers can batch without perturbing any seeded stream.
  void SampleBatch(Rng& rng, std::span<size_t> out,
                   AliasTable::BatchScratch* scratch = nullptr) const {
    table_.SampleBatch(rng, out, scratch);
  }

  /// Normalized probability of one rank.
  double Probability(size_t rank) const { return pmf_[rank]; }

  size_t num_ranks() const { return pmf_.size(); }
  const ZipfConfig& config() const { return config_; }

 private:
  ZipfConfig config_;
  AliasTable table_;
  std::vector<double> pmf_;
  Rng rng_;
};

}  // namespace gen
}  // namespace aligraph

#endif  // ALIGRAPH_GEN_ZIPF_H_
