#include "gen/taobao.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/alias_table.h"
#include "common/random.h"

namespace aligraph {
namespace gen {
namespace {

// Draws one categorical attribute profile: dim quantized values derived from
// the profile id, so equal profile ids produce bitwise-identical vectors
// (which the AttributeStore then deduplicates).
std::vector<float> ProfileAttributes(uint32_t profile, uint32_t dim) {
  std::vector<float> attrs(dim);
  uint64_t state = 0x9d2c5680u ^ (static_cast<uint64_t>(profile) << 17);
  for (uint32_t i = 0; i < dim; ++i) {
    attrs[i] = static_cast<float>(SplitMix64(state) % 16) / 15.0f;
  }
  return attrs;
}

// Power-law rank sample in [0, num_profiles): Zipf(1) via inverse CDF.
uint32_t SampleZipf(uint32_t bound, Rng& rng) {
  const double u = rng.NextDouble();
  const double h = std::log1p(static_cast<double>(bound));
  const uint32_t rank = static_cast<uint32_t>(std::expm1(u * h));
  return std::min(rank, bound - 1);
}

std::vector<double> PowerLawWeights(VertexId n, double gamma, Rng& rng) {
  const double alpha = 1.0 / (gamma - 1.0);
  std::vector<double> w(n);
  for (VertexId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, -alpha);
  }
  for (VertexId i = n; i > 1; --i) std::swap(w[i - 1], w[rng.Uniform(i)]);
  return w;
}

// Group-structured endpoint sampler: global alias table plus one alias
// table per community over that community's members.
class CommunitySampler {
 public:
  CommunitySampler(const std::vector<double>& weights,
                   const std::vector<uint32_t>& group_of,
                   uint32_t num_groups) {
    global_.Build(weights);
    members_.resize(num_groups);
    std::vector<std::vector<double>> gw(num_groups);
    for (size_t i = 0; i < weights.size(); ++i) {
      members_[group_of[i]].push_back(static_cast<VertexId>(i));
      gw[group_of[i]].push_back(weights[i]);
    }
    tables_.resize(num_groups);
    for (uint32_t g = 0; g < num_groups; ++g) tables_[g].Build(gw[g]);
  }

  /// Samples a member of `group` (falls back to global when empty).
  VertexId SampleInGroup(uint32_t group, Rng& rng) const {
    if (tables_[group].empty()) return SampleGlobal(rng);
    return members_[group][tables_[group].Sample(rng)];
  }

  VertexId SampleGlobal(Rng& rng) const {
    return static_cast<VertexId>(global_.Sample(rng));
  }

 private:
  AliasTable global_;
  std::vector<std::vector<VertexId>> members_;
  std::vector<AliasTable> tables_;
};

}  // namespace

TaobaoConfig TaobaoSmallConfig(double scale) {
  // Paper ratios (Table 3): 148M users : 9M items : 442M u-i : 224M i-i,
  // shrunk ~7400x at scale 1.
  TaobaoConfig cfg;
  cfg.num_users = static_cast<VertexId>(20000 * scale);
  cfg.num_items = static_cast<VertexId>(1200 * scale);
  cfg.user_item_edges = static_cast<size_t>(60000 * scale);
  cfg.item_item_edges = static_cast<size_t>(30000 * scale);
  cfg.seed = 7;
  return cfg;
}

TaobaoConfig TaobaoLargeConfig(double scale) {
  // Paper ratios (Table 3): 483M users, 9.7M items, 6.59B u-i, 231M i-i —
  // about 6x the storage of Taobao-small, dominated by user-item edges.
  TaobaoConfig cfg;
  cfg.num_users = static_cast<VertexId>(65000 * scale);
  cfg.num_items = static_cast<VertexId>(1300 * scale);
  cfg.user_item_edges = static_cast<size_t>(890000 * scale);
  cfg.item_item_edges = static_cast<size_t>(31000 * scale);
  cfg.seed = 11;
  return cfg;
}

Result<AttributedGraph> Taobao(const TaobaoConfig& config) {
  if (config.num_users == 0 || config.num_items == 0) {
    return Status::InvalidArgument("Taobao graph needs users and items");
  }
  if (config.communities == 0) {
    return Status::InvalidArgument("communities must be positive");
  }
  Rng rng(config.seed);

  GraphSchema schema;
  const VertexType user_t = schema.AddVertexType("user");
  const VertexType item_t = schema.AddVertexType("item");
  const EdgeType click = schema.AddEdgeType("click");
  const EdgeType collect = schema.AddEdgeType("collect");
  const EdgeType cart = schema.AddEdgeType("cart");
  const EdgeType buy = schema.AddEdgeType("buy");
  EdgeType co_occur = 0;
  if (config.item_item_edges > 0) co_occur = schema.AddEdgeType("co_occur");

  // Latent interest communities; attribute profiles correlate with the
  // community so attributed models can exploit them.
  const uint32_t C = config.communities;
  std::vector<uint32_t> user_group(config.num_users);
  std::vector<uint32_t> item_group(config.num_items);
  for (auto& g : user_group) g = static_cast<uint32_t>(rng.Uniform(C));
  for (auto& g : item_group) g = static_cast<uint32_t>(rng.Uniform(C));

  auto group_profile = [&](uint32_t group) {
    const uint32_t local =
        SampleZipf(std::max<uint32_t>(config.attr_profiles / 8, 2), rng);
    return (group * 7 + local) % config.attr_profiles;
  };
  // Community fingerprint written into dims [2, 10) of BOTH user and item
  // attributes (fixed positions so the signal aligns across vertex types):
  // the cross-type attribute correlation (user demographics <-> item
  // segments) that attributed models exploit. Dims 0-1 stay free for the
  // item brand/category metadata.
  auto stamp_fingerprint = [&](std::vector<float>& attrs, uint32_t group) {
    const std::vector<float> fp = ProfileAttributes(100000 + group, 8);
    for (size_t i = 0; i < fp.size() && 2 + i < attrs.size(); ++i) {
      attrs[2 + i] = fp[i];
    }
  };

  GraphBuilder gb(schema);
  for (VertexId u = 0; u < config.num_users; ++u) {
    std::vector<float> attrs = ProfileAttributes(
        group_profile(user_group[u]), config.user_attr_dim);
    stamp_fingerprint(attrs, user_group[u]);
    gb.AddVertex(user_t, attrs);
  }
  for (VertexId i = 0; i < config.num_items; ++i) {
    const uint32_t profile =
        config.attr_profiles + group_profile(item_group[i]);
    std::vector<float> attrs =
        ProfileAttributes(profile, config.item_attr_dim);
    // Brand / category metadata in the first two dims (see taobao.h).
    // Both derive from the item's interest community, mirroring real
    // catalogs where brand and category segment the same demand structure
    // that drives purchases — the correlation the Bayesian GNN exploits.
    const uint32_t brands_per_group = std::max(1u, kNumBrands / C);
    const uint32_t brand =
        (item_group[i] * brands_per_group + profile % brands_per_group) %
        kNumBrands;
    const uint32_t category = item_group[i] % kNumCategories;
    if (attrs.size() >= 2) {
      attrs[0] = static_cast<float>(brand) / (kNumBrands - 1);
      attrs[1] = static_cast<float>(category) / (kNumCategories - 1);
    }
    stamp_fingerprint(attrs, item_group[i]);
    gb.AddVertex(item_t, attrs);
  }

  const std::vector<double> user_w =
      PowerLawWeights(config.num_users, config.gamma, rng);
  const std::vector<double> item_w =
      PowerLawWeights(config.num_items, config.gamma, rng);
  CommunitySampler users(user_w, user_group, C);
  CommunitySampler items(item_w, item_group, C);

  // Behaviour mix: clicks dominate, purchases are rare — matching the
  // qualitative shape of e-commerce interaction data.
  const EdgeType behaviours[4] = {click, collect, cart, buy};
  const double behaviour_cdf[4] = {0.70, 0.80, 0.90, 1.00};

  for (size_t e = 0; e < config.user_item_edges; ++e) {
    const VertexId u = users.SampleGlobal(rng);
    const bool in_group = rng.Bernoulli(config.community_affinity);
    const VertexId i =
        config.num_users + (in_group ? items.SampleInGroup(user_group[u], rng)
                                     : items.SampleGlobal(rng));
    const double r = rng.NextDouble();
    EdgeType et = buy;
    for (int b = 0; b < 4; ++b) {
      if (r < behaviour_cdf[b]) {
        et = behaviours[b];
        break;
      }
    }
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(u, i, et, 1.0f));
    if (rng.Bernoulli(config.reverse_edge_prob)) {
      ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(i, u, et, 1.0f));
    }
  }

  for (size_t e = 0; e < config.item_item_edges; ++e) {
    const VertexId a = items.SampleGlobal(rng);
    const bool in_group = rng.Bernoulli(config.community_affinity);
    const VertexId b = in_group ? items.SampleInGroup(item_group[a], rng)
                                : items.SampleGlobal(rng);
    if (a == b) continue;
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(config.num_users + a,
                                      config.num_users + b, co_occur, 1.0f));
    if (rng.Bernoulli(config.reverse_edge_prob)) {
      ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(config.num_users + b,
                                        config.num_users + a, co_occur,
                                        1.0f));
    }
  }
  return gb.Build();
}

Result<AttributedGraph> Amazon(const AmazonConfig& config) {
  if (config.num_products == 0) {
    return Status::InvalidArgument("Amazon graph needs products");
  }
  if (config.communities == 0) {
    return Status::InvalidArgument("communities must be positive");
  }
  Rng rng(config.seed);

  GraphSchema schema;
  const VertexType product_t = schema.AddVertexType("product");
  const EdgeType co_view = schema.AddEdgeType("co_view");
  const EdgeType co_buy = schema.AddEdgeType("co_buy");

  const uint32_t C = config.communities;
  std::vector<uint32_t> group(config.num_products);
  for (auto& g : group) g = static_cast<uint32_t>(rng.Uniform(C));

  GraphBuilder gb(schema, /*undirected=*/true);
  for (VertexId v = 0; v < config.num_products; ++v) {
    const uint32_t local =
        SampleZipf(std::max<uint32_t>(config.attr_profiles / 8, 2), rng);
    const uint32_t profile = (group[v] * 7 + local) % config.attr_profiles;
    gb.AddVertex(product_t, ProfileAttributes(profile, config.attr_dim));
  }

  CommunitySampler products(
      PowerLawWeights(config.num_products, config.gamma, rng), group, C);
  for (size_t e = 0; e < config.num_edges; ++e) {
    const VertexId a = products.SampleGlobal(rng);
    const bool in_group = rng.Bernoulli(config.community_affinity);
    const VertexId b = in_group ? products.SampleInGroup(group[a], rng)
                                : products.SampleGlobal(rng);
    if (a == b) continue;
    const EdgeType et = rng.Bernoulli(0.6) ? co_view : co_buy;
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(a, b, et, 1.0f));
  }
  return gb.Build();
}

uint32_t ItemBrand(const AttributedGraph& graph, VertexId item) {
  const auto attrs = graph.VertexFeatures(item);
  if (attrs.size() < 1) return 0;
  return static_cast<uint32_t>(attrs[0] * (kNumBrands - 1) + 0.5f);
}

uint32_t ItemCategory(const AttributedGraph& graph, VertexId item) {
  const auto attrs = graph.VertexFeatures(item);
  if (attrs.size() < 2) return 0;
  return static_cast<uint32_t>(attrs[1] * (kNumCategories - 1) + 0.5f);
}

}  // namespace gen
}  // namespace aligraph
