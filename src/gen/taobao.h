/// \file taobao.h
/// \brief Synthetic stand-in for the paper's Taobao e-commerce graphs
/// (Table 3 / Table 6): a bipartite-plus-item-item attributed heterogeneous
/// graph with two vertex types (user, item), four user-item behaviour edge
/// types (click, collect, cart, buy), optional item-item co-occurrence
/// edges, power-law degrees, and categorical attribute profiles (27 user /
/// 32 item dimensions) drawn from small pools so attribute deduplication is
/// exercised exactly as on the real data.
///
/// Substitution note (see DESIGN.md): the real Taobao-small/large datasets
/// have 1.5e8 / 4.8e8 vertices; the presets below preserve the paper's
/// user:item:edge ratios and the ~6x storage ratio between the two datasets
/// at a laptop-friendly scale, adjustable via the scale factor.

#ifndef ALIGRAPH_GEN_TAOBAO_H_
#define ALIGRAPH_GEN_TAOBAO_H_

#include <cstdint>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {
namespace gen {

/// \brief Parameters of the synthetic Taobao AHG.
struct TaobaoConfig {
  VertexId num_users = 20000;
  VertexId num_items = 1200;
  size_t user_item_edges = 60000;
  size_t item_item_edges = 30000;
  uint32_t user_attr_dim = 27;
  uint32_t item_attr_dim = 32;
  /// Distinct attribute profiles per vertex type; small pools mirror the
  /// heavy attribute overlap of real data ("many vertices share tag 'man'").
  uint32_t attr_profiles = 64;
  /// Latent interest communities. Users interact mostly with items of their
  /// own community (affinity below), giving the graph the community
  /// structure real e-commerce data has; without it link prediction would
  /// be information-free and every model would score ~0.5 ROC-AUC.
  uint32_t communities = 16;
  double community_affinity = 0.8;  ///< probability an edge stays in-group
  /// Probability of also storing the reverse (item -> user) edge of a
  /// behaviour interaction. Real deployments traverse interactions in both
  /// directions (item -> user exposure); partial reversal also keeps the
  /// in/out-degree ratio — the importance metric — smoothly distributed
  /// instead of bimodal, which Figure 8's threshold sweep relies on.
  double reverse_edge_prob = 0.3;
  double gamma = 2.3;  ///< degree power-law exponent
  uint64_t seed = 7;
};

/// Taobao-small synthetic preset scaled by `scale` (>= 0.01).
TaobaoConfig TaobaoSmallConfig(double scale = 1.0);

/// Taobao-large synthetic preset: ~6x the storage of Taobao-small, matching
/// the paper's ratio (dominated by the 15x user-item edge count).
TaobaoConfig TaobaoLargeConfig(double scale = 1.0);

/// Generates the graph. Vertex ids: users occupy [0, num_users), items
/// occupy [num_users, num_users + num_items). Edge types are registered as
/// "click", "collect", "cart", "buy" and (when item_item_edges > 0)
/// "co_occur".
Result<AttributedGraph> Taobao(const TaobaoConfig& config);

/// \brief Parameters of the synthetic Amazon electronics co-view graph used
/// by Table 8 (10166 vertices, 148865 edges, 1 vertex type, 2 edge types).
struct AmazonConfig {
  VertexId num_products = 10166;
  size_t num_edges = 148865;
  uint32_t attr_dim = 16;
  uint32_t attr_profiles = 48;
  uint32_t communities = 24;
  double community_affinity = 0.8;
  double gamma = 2.5;
  uint64_t seed = 13;
};

/// Generates the Amazon-like product graph with edge types "co_view" and
/// "co_buy".
Result<AttributedGraph> Amazon(const AmazonConfig& config);

/// Item knowledge metadata encoded in the first two attribute dimensions of
/// Taobao items: attrs[0] quantizes the brand id, attrs[1] the category id.
/// The Bayesian GNN experiment (Table 12) reads these to build its
/// knowledge-graph relations at brand / category granularity.
inline constexpr uint32_t kNumBrands = 40;
inline constexpr uint32_t kNumCategories = 12;

/// Brand id of an item vertex (0 when the vertex has no attributes).
uint32_t ItemBrand(const AttributedGraph& graph, VertexId item);
/// Category id of an item vertex (0 when the vertex has no attributes).
uint32_t ItemCategory(const AttributedGraph& graph, VertexId item);

}  // namespace gen
}  // namespace aligraph

#endif  // ALIGRAPH_GEN_TAOBAO_H_
