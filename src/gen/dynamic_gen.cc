#include "gen/dynamic_gen.h"

#include <vector>

#include "common/random.h"

namespace aligraph {
namespace gen {

Result<DynamicGraph> GenerateDynamic(const DynamicConfig& config) {
  if (config.num_vertices < 2) {
    return Status::InvalidArgument("need at least 2 vertices");
  }
  if (config.num_timestamps < 1) {
    return Status::InvalidArgument("need at least 1 timestamp");
  }
  Rng rng(config.seed);
  DynamicGraphBuilder dgb(GraphSchema(), /*undirected=*/true);

  // Small random feature so GNN models have an input signal.
  for (VertexId v = 0; v < config.num_vertices; ++v) {
    std::vector<float> feat(8);
    for (float& f : feat) f = rng.NextFloat();
    dgb.AddVertex(0, feat);
  }

  // Endpoint pool for preferential attachment: one entry per prior endpoint.
  std::vector<VertexId> pool;
  pool.reserve(config.base_edges * 2);
  auto pick_pref = [&]() -> VertexId {
    if (pool.empty() || rng.Bernoulli(0.2)) {
      return static_cast<VertexId>(rng.Uniform(config.num_vertices));
    }
    return pool[rng.Uniform(pool.size())];
  };
  auto add = [&](VertexId a, VertexId b, Timestamp t,
                 EvolutionKind kind) -> Status {
    ALIGRAPH_RETURN_NOT_OK(dgb.AddEdge(a, b, t, 0, 1.0f, kind));
    pool.push_back(a);
    pool.push_back(b);
    return Status::OK();
  };

  for (size_t e = 0; e < config.base_edges; ++e) {
    const VertexId a = pick_pref();
    const VertexId b = pick_pref();
    if (a == b) continue;
    ALIGRAPH_RETURN_NOT_OK(add(a, b, 1, EvolutionKind::kNormal));
  }

  for (Timestamp t = 2; t <= config.num_timestamps; ++t) {
    for (size_t e = 0; e < config.normal_edges_per_step; ++e) {
      const VertexId a = pick_pref();
      const VertexId b = pick_pref();
      if (a == b) continue;
      ALIGRAPH_RETURN_NOT_OK(add(a, b, t, EvolutionKind::kNormal));
    }
    for (size_t burst = 0; burst < config.bursts_per_step; ++burst) {
      // A burst floods one random (typically low-degree) hub with edges to
      // uniformly random vertices — abnormal relative to preferential
      // attachment.
      const VertexId hub =
          static_cast<VertexId>(rng.Uniform(config.num_vertices));
      for (size_t e = 0; e < config.burst_size; ++e) {
        const VertexId b =
            static_cast<VertexId>(rng.Uniform(config.num_vertices));
        if (b == hub) continue;
        ALIGRAPH_RETURN_NOT_OK(add(hub, b, t, EvolutionKind::kBurst));
      }
    }
  }
  return dgb.Build();
}

}  // namespace gen
}  // namespace aligraph
