#include "gen/powerlaw.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/alias_table.h"
#include "common/random.h"

namespace aligraph {
namespace gen {
namespace {

// Power-law endpoint weights w_i ~ (i+1)^{-1/(gamma-1)}, shuffled so vertex
// id carries no degree information.
std::vector<double> EndpointWeights(VertexId n, double gamma, Rng& rng) {
  const double alpha = 1.0 / (gamma - 1.0);
  std::vector<double> w(n);
  for (VertexId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, -alpha);
  }
  for (VertexId i = n; i > 1; --i) {
    std::swap(w[i - 1], w[rng.Uniform(i)]);
  }
  return w;
}

}  // namespace

Result<AttributedGraph> ChungLu(const ChungLuConfig& config) {
  if (config.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices == 0");
  }
  if (config.gamma <= 2.0) {
    return Status::InvalidArgument("gamma must exceed 2");
  }
  Rng rng(config.seed);
  const VertexId n = config.num_vertices;

  const std::vector<double> out_w = EndpointWeights(n, config.gamma, rng);
  const std::vector<double> in_w =
      config.directed ? EndpointWeights(n, config.gamma, rng) : out_w;
  AliasTable out_table(out_w);
  AliasTable in_table(in_w);

  GraphBuilder gb(GraphSchema(), /*undirected=*/!config.directed);
  for (VertexId v = 0; v < n; ++v) gb.AddVertex();

  const size_t target_edges = static_cast<size_t>(
      static_cast<double>(n) * config.avg_degree + 0.5);
  size_t added = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_edges * 4 + 64;
  while (added < target_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId src = static_cast<VertexId>(out_table.Sample(rng));
    const VertexId dst = static_cast<VertexId>(in_table.Sample(rng));
    if (src == dst) continue;
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(src, dst));
    ++added;
  }
  return gb.Build();
}

Result<AttributedGraph> BarabasiAlbert(VertexId num_vertices,
                                       uint32_t edges_per_vertex,
                                       uint64_t seed) {
  if (num_vertices < edges_per_vertex + 1) {
    return Status::InvalidArgument("graph too small for edges_per_vertex");
  }
  Rng rng(seed);
  GraphBuilder gb(GraphSchema(), /*undirected=*/true);
  for (VertexId v = 0; v < num_vertices; ++v) gb.AddVertex();

  // `targets` holds one entry per edge endpoint, so uniform draws from it
  // implement preferential attachment.
  std::vector<VertexId> targets;
  targets.reserve(static_cast<size_t>(num_vertices) * edges_per_vertex * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId v = 0; v <= edges_per_vertex; ++v) {
    for (VertexId u = v + 1; u <= edges_per_vertex; ++u) {
      ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(v, u));
      targets.push_back(v);
      targets.push_back(u);
    }
  }

  for (VertexId v = edges_per_vertex + 1; v < num_vertices; ++v) {
    for (uint32_t e = 0; e < edges_per_vertex; ++e) {
      const VertexId u = targets[rng.Uniform(targets.size())];
      if (u == v) {
        --e;  // retry; cannot self-attach
        continue;
      }
      ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(v, u));
      targets.push_back(v);
      targets.push_back(u);
    }
  }
  return gb.Build();
}

}  // namespace gen
}  // namespace aligraph
