/// \file dynamic_gen.h
/// \brief Synthetic dynamic graphs with *normal* and *burst* evolution, the
/// two edge-evolution classes the Evolving GNN distinguishes (Section 4.2).
///
/// Normal evolution adds edges by preferential attachment each timestamp —
/// the "majority of reasonable changes". Bursts pick a random hub and attach
/// a batch of edges to it within one timestamp — "rare and abnormal
/// evolving edges".

#ifndef ALIGRAPH_GEN_DYNAMIC_GEN_H_
#define ALIGRAPH_GEN_DYNAMIC_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "graph/dynamic_graph.h"

namespace aligraph {
namespace gen {

/// \brief Parameters of the synthetic dynamic graph.
struct DynamicConfig {
  VertexId num_vertices = 4000;
  Timestamp num_timestamps = 6;
  size_t base_edges = 16000;          ///< edges present at t = 1
  size_t normal_edges_per_step = 2000;
  size_t bursts_per_step = 1;         ///< number of burst events per step
  size_t burst_size = 400;            ///< edges per burst event
  uint64_t seed = 17;
};

/// Generates the dynamic graph. Every edge added after t = 1 carries its
/// EvolutionKind label so evaluation can score normal and burst link
/// prediction separately (Table 11).
Result<DynamicGraph> GenerateDynamic(const DynamicConfig& config);

}  // namespace gen
}  // namespace aligraph

#endif  // ALIGRAPH_GEN_DYNAMIC_GEN_H_
