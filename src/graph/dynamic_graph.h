/// \file dynamic_graph.h
/// \brief Dynamic graphs: a sequence of snapshots G(1)..G(T) (Section 2)
/// with per-timestamp edge deltas labeled *normal* or *burst*, the two
/// evolution classes the Evolving GNN model distinguishes (Section 4.2).

#ifndef ALIGRAPH_GRAPH_DYNAMIC_GRAPH_H_
#define ALIGRAPH_GRAPH_DYNAMIC_GRAPH_H_

#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {

/// \brief Whether a dynamic edge belongs to the normal evolution of the
/// graph or to a rare, abnormal burst.
enum class EvolutionKind : uint8_t { kNormal = 0, kBurst = 1 };

/// \brief An edge added at a specific timestamp.
struct DynamicEdge {
  RawEdge edge;
  Timestamp time = 1;
  EvolutionKind kind = EvolutionKind::kNormal;
};

/// \brief A fixed vertex set whose edge set grows over T timestamps.
///
/// Snapshot t contains every edge with time <= t. Snapshots are materialized
/// eagerly at Build() so algorithms can treat each as a plain
/// AttributedGraph.
class DynamicGraph {
 public:
  Timestamp num_timestamps() const {
    return static_cast<Timestamp>(snapshots_.size());
  }

  /// Snapshot at timestamp t in [1, T].
  const AttributedGraph& Snapshot(Timestamp t) const;

  /// Edges that appeared exactly at timestamp t.
  const std::vector<DynamicEdge>& DeltaAt(Timestamp t) const;

 private:
  friend class DynamicGraphBuilder;
  std::vector<AttributedGraph> snapshots_;            // index t-1
  std::vector<std::vector<DynamicEdge>> deltas_;      // index t-1
};

/// \brief Builder: declare the vertex universe, then add timestamped edges.
class DynamicGraphBuilder {
 public:
  explicit DynamicGraphBuilder(GraphSchema schema = GraphSchema(),
                               bool undirected = false)
      : schema_(schema), undirected_(undirected) {}

  VertexId AddVertex(VertexType type = 0,
                     const std::vector<float>& attributes = {});

  Status AddEdge(VertexId src, VertexId dst, Timestamp time,
                 EdgeType type = 0, float weight = 1.0f,
                 EvolutionKind kind = EvolutionKind::kNormal);

  /// Materializes T snapshots, T = max timestamp seen (at least 1).
  Result<DynamicGraph> Build();

 private:
  struct VertexDecl {
    VertexType type;
    std::vector<float> attributes;
  };

  GraphSchema schema_;
  bool undirected_;
  std::vector<VertexDecl> vertices_;
  std::vector<DynamicEdge> edges_;
  Timestamp max_time_ = 1;
};

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_DYNAMIC_GRAPH_H_
