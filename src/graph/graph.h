/// \file graph.h
/// \brief The in-memory attributed heterogeneous graph (AHG) and its builder.
///
/// Storage follows the paper's Section 3.2: an adjacency table (CSR) per
/// edge type keeps only (dst, weight, AttrId); attribute payloads live in
/// separate deduplicated AttributeStores (IV for vertices, IE for edges).
/// Both out- and in-adjacency are materialized because the importance metric
/// Imp_k(v) = D_i^k / D_o^k needs in-degrees.

#ifndef ALIGRAPH_GRAPH_GRAPH_H_
#define ALIGRAPH_GRAPH_GRAPH_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/prefetch.h"
#include "common/status.h"
#include "graph/attributes.h"
#include "graph/schema.h"
#include "graph/types.h"

namespace aligraph {

/// \brief One adjacency-table entry: target vertex, edge weight, and the id
/// of the edge's attribute record in IE (kNoAttr when absent).
struct Neighbor {
  VertexId dst;
  float weight;
  AttrId attr;
};

/// \brief Result of a batched neighbor read: spans[i] views the adjacency
/// of the i-th requested vertex. Spans point into storage owned by the
/// graph / graph server (or its cache) and stay valid as long as that
/// storage does; the container is reusable across calls to amortize
/// allocation.
struct BatchResult {
  std::vector<std::span<const Neighbor>> spans;
  /// Per-slot success flags for fallible (retry-aware) read paths:
  /// ok[i] == 0 means slot i exhausted its retry budget and spans[i] is
  /// empty — distinguishable from a genuinely empty adjacency, which has
  /// ok[i] == 1. Infallible paths leave every flag at 1.
  std::vector<uint8_t> ok;

  void Reset(size_t n) {
    spans.assign(n, {});
    ok.assign(n, 1);
  }
  size_t size() const { return spans.size(); }
  std::span<const Neighbor> operator[](size_t i) const { return spans[i]; }

  /// Number of slots whose read failed (0 on infallible paths).
  size_t FailedSlots() const {
    size_t failed = 0;
    for (const uint8_t f : ok) failed += f == 0;
    return failed;
  }
};

/// \brief Compressed sparse row adjacency over a fixed vertex count.
class Csr {
 public:
  Csr() = default;

  /// Builds from (src, Neighbor) pairs using a counting sort; O(n + m).
  Csr(VertexId num_vertices,
      const std::vector<std::pair<VertexId, Neighbor>>& edges);

  std::span<const Neighbor> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  size_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Position of v's adjacency in the flat neighbor array. Exposed so the
  /// layout subsystem can model cache behaviour of a walk from the CSR's
  /// actual storage geometry.
  uint64_t OffsetOf(VertexId v) const { return offsets_[v]; }

  /// Software-prefetches the first cache lines of v's adjacency (capped, so
  /// a hub vertex does not flood the prefetch queue). Used by batched
  /// readers that know the frontier a few slots ahead of the scan.
  void PrefetchNeighbors(VertexId v) const {
    const uint64_t begin = offsets_[v];
    const uint64_t end = offsets_[v + 1];
    constexpr uint64_t kMaxLines = 4;
    const char* p = reinterpret_cast<const char*>(neighbors_.data() + begin);
    const char* stop = reinterpret_cast<const char*>(neighbors_.data() + end);
    for (uint64_t line = 0; line < kMaxLines && p < stop;
         ++line, p += kCacheLineBytes) {
      ALIGRAPH_PREFETCH(p);
    }
  }

  /// Copy of this CSR re-indexed under a vertex permutation: the new
  /// vertex new_of_old[v] gets v's adjacency with every destination mapped
  /// through new_of_old, per-vertex neighbor ORDER preserved. Order
  /// preservation is what makes reorderings observationally invisible to
  /// samplers: the i-th neighbor of a vertex stays the i-th neighbor.
  Csr Permuted(std::span<const VertexId> new_of_old,
               std::span<const VertexId> old_of_new) const;

  size_t num_edges() const { return neighbors_.size(); }
  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  size_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(Neighbor);
  }

 private:
  std::vector<uint64_t> offsets_;   // size n+1
  std::vector<Neighbor> neighbors_;
};

/// \brief Immutable attributed heterogeneous graph.
///
/// Construct via GraphBuilder. Exposes per-edge-type adjacency (for
/// heterogeneous algorithms like GATNE / Metapath2Vec) and merged adjacency
/// across all types (for homogeneous algorithms like DeepWalk).
class AttributedGraph {
 public:
  VertexId num_vertices() const { return static_cast<VertexId>(vertex_type_.size()); }
  size_t num_edges() const { return num_edges_; }
  const GraphSchema& schema() const { return schema_; }
  size_t num_edge_types() const { return out_by_type_.size(); }
  bool undirected() const { return undirected_; }

  VertexType vertex_type(VertexId v) const { return vertex_type_[v]; }
  AttrId vertex_attr(VertexId v) const { return vertex_attr_[v]; }

  /// Attribute payload of a vertex; empty when the vertex has no attribute.
  std::span<const float> VertexFeatures(VertexId v) const {
    const AttrId a = vertex_attr_[v];
    if (a == kNoAttr) return {};
    return vertex_store_.Get(a);
  }

  /// All vertices of a given type, in ascending id order.
  std::span<const VertexId> VerticesOfType(VertexType t) const;

  /// Merged adjacency across every edge type.
  std::span<const Neighbor> OutNeighbors(VertexId v) const {
    return out_all_.Neighbors(v);
  }
  std::span<const Neighbor> InNeighbors(VertexId v) const {
    return in_all_.Neighbors(v);
  }
  size_t OutDegree(VertexId v) const { return out_all_.Degree(v); }
  size_t InDegree(VertexId v) const { return in_all_.Degree(v); }

  /// Prefetch hint for an upcoming OutNeighbors(v) read (merged adjacency).
  void PrefetchOutNeighbors(VertexId v) const {
    out_all_.PrefetchNeighbors(v);
  }
  /// Prefetch hint for an upcoming typed OutNeighbors(v, t) read.
  void PrefetchOutNeighbors(VertexId v, EdgeType t) const {
    out_by_type_[t].PrefetchNeighbors(v);
  }

  /// Storage position of v's merged out-adjacency (units of Neighbor
  /// entries); feeds the layout subsystem's modeled cache cost.
  uint64_t OutAdjacencyOffset(VertexId v) const { return out_all_.OffsetOf(v); }

  /// Copy of this graph with vertices relabeled under a permutation:
  /// vertex v becomes new_of_old[v]. Adjacency (merged and per-type, both
  /// directions), vertex types, and attribute references are carried over
  /// with per-vertex neighbor order preserved; attribute payload stores are
  /// shared byte-for-byte (AttrIds are not renumbered). The permutation
  /// must be a bijection over [0, n); old_of_new must be its inverse.
  /// Used by layout::ApplyLayout — see src/layout/layout.h for the policy
  /// that picks the permutation.
  AttributedGraph Reordered(std::span<const VertexId> new_of_old,
                            std::span<const VertexId> old_of_new) const;

  /// Per-edge-type adjacency.
  std::span<const Neighbor> OutNeighbors(VertexId v, EdgeType t) const {
    return out_by_type_[t].Neighbors(v);
  }
  std::span<const Neighbor> InNeighbors(VertexId v, EdgeType t) const {
    return in_by_type_[t].Neighbors(v);
  }
  size_t OutDegree(VertexId v, EdgeType t) const {
    return out_by_type_[t].Degree(v);
  }
  size_t InDegree(VertexId v, EdgeType t) const {
    return in_by_type_[t].Degree(v);
  }

  const AttributeStore& vertex_attributes() const { return vertex_store_; }
  const AttributeStore& edge_attributes() const { return edge_store_; }

  /// Edge attribute payload; empty when the edge carries none.
  std::span<const float> EdgeFeatures(const Neighbor& nb) const {
    if (nb.attr == kNoAttr) return {};
    return edge_store_.Get(nb.attr);
  }

  /// Total resident bytes of adjacency plus attribute stores.
  size_t MemoryBytes() const;

  /// One-line size description for logs.
  std::string ToString() const;

 private:
  friend class GraphBuilder;

  GraphSchema schema_;
  bool undirected_ = false;
  size_t num_edges_ = 0;
  std::vector<VertexType> vertex_type_;
  std::vector<AttrId> vertex_attr_;
  std::vector<std::vector<VertexId>> vertices_by_type_;
  Csr out_all_;
  Csr in_all_;
  std::vector<Csr> out_by_type_;
  std::vector<Csr> in_by_type_;
  AttributeStore vertex_store_;
  AttributeStore edge_store_;
};

/// \brief Accumulates vertices and edges, then freezes them into an
/// AttributedGraph.
///
/// Vertices get dense sequential ids in insertion order. For undirected
/// graphs every added edge is stored in both directions with equal weight.
class GraphBuilder {
 public:
  explicit GraphBuilder(GraphSchema schema = GraphSchema(),
                        bool undirected = false)
      : schema_(std::move(schema)), undirected_(undirected) {}

  /// Adds one vertex; returns its id. An empty attribute vector means "no
  /// attribute record".
  VertexId AddVertex(VertexType type = 0,
                     const std::vector<float>& attributes = {});

  /// Adds an edge. Endpoints must already exist and the type be registered.
  Status AddEdge(VertexId src, VertexId dst, EdgeType type = 0,
                 float weight = 1.0f,
                 const std::vector<float>& attributes = {});

  VertexId num_vertices() const { return static_cast<VertexId>(vertex_type_.size()); }
  size_t num_edges() const { return edges_.size(); }

  /// Freezes into an immutable graph; the builder is consumed.
  Result<AttributedGraph> Build();

 private:
  GraphSchema schema_;
  bool undirected_;
  std::vector<VertexType> vertex_type_;
  std::vector<AttrId> vertex_attr_;
  std::vector<RawEdge> edges_;
  AttributeStore vertex_store_;
  AttributeStore edge_store_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_GRAPH_H_
