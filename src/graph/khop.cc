#include "graph/khop.h"

#include "common/logging.h"

namespace aligraph {
namespace {

// One step of the path-count recurrence: next[v] = sum over the chosen
// adjacency of prev[u]. For out-counts we push along out-edges; a vertex's
// k-hop out-count is the sum of its out-neighbors' (k-1)-hop out-counts.
std::vector<double> Recurrence(const AttributedGraph& graph, int k, bool out) {
  const VertexId n = graph.num_vertices();
  std::vector<double> counts(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    counts[v] = static_cast<double>(out ? graph.OutDegree(v)
                                        : graph.InDegree(v));
  }
  std::vector<double> next(n, 0.0);
  for (int hop = 2; hop <= k; ++hop) {
    for (VertexId v = 0; v < n; ++v) {
      double acc = 0;
      const auto nbs = out ? graph.OutNeighbors(v) : graph.InNeighbors(v);
      for (const Neighbor& nb : nbs) acc += counts[nb.dst];
      next[v] = acc;
    }
    counts.swap(next);
  }
  return counts;
}

}  // namespace

std::vector<double> KHopOutCounts(const AttributedGraph& graph, int k) {
  ALIGRAPH_CHECK_GE(k, 1);
  return Recurrence(graph, k, /*out=*/true);
}

std::vector<double> KHopInCounts(const AttributedGraph& graph, int k) {
  ALIGRAPH_CHECK_GE(k, 1);
  return Recurrence(graph, k, /*out=*/false);
}

std::vector<double> ImportanceScores(const AttributedGraph& graph, int k) {
  const std::vector<double> din = KHopInCounts(graph, k);
  const std::vector<double> dout = KHopOutCounts(graph, k);
  std::vector<double> imp(din.size(), 0.0);
  for (size_t v = 0; v < din.size(); ++v) {
    if (dout[v] > 0) imp[v] = din[v] / dout[v];
  }
  return imp;
}

}  // namespace aligraph
