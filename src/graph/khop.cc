#include "graph/khop.h"

#include "common/logging.h"
#include "common/threadpool.h"
#include "obs/trace.h"

namespace aligraph {
namespace {

// One step of the path-count recurrence: next[v] = sum over the chosen
// adjacency of prev[u]. For out-counts we push along out-edges; a vertex's
// k-hop out-count is the sum of its out-neighbors' (k-1)-hop out-counts.
// Rows are independent, so a pool splits the vertex range; each row still
// accumulates its neighbors in order, keeping results bit-identical.
std::vector<double> Recurrence(const AttributedGraph& graph, int k, bool out,
                               ThreadPool* pool) {
  const VertexId n = graph.num_vertices();
  std::vector<double> counts(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    counts[v] = static_cast<double>(out ? graph.OutDegree(v)
                                        : graph.InDegree(v));
  }
  std::vector<double> next(n, 0.0);
  for (int hop = 2; hop <= k; ++hop) {
    const auto row = [&](size_t v) {
      double acc = 0;
      const auto nbs = out ? graph.OutNeighbors(static_cast<VertexId>(v))
                           : graph.InNeighbors(static_cast<VertexId>(v));
      for (const Neighbor& nb : nbs) acc += counts[nb.dst];
      next[v] = acc;
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, row);
    } else {
      for (VertexId v = 0; v < n; ++v) row(v);
    }
    counts.swap(next);
  }
  return counts;
}

}  // namespace

std::vector<double> KHopOutCounts(const AttributedGraph& graph, int k,
                                  ThreadPool* pool) {
  ALIGRAPH_CHECK_GE(k, 1);
  obs::ScopedSpan span("khop/out_counts");
  return Recurrence(graph, k, /*out=*/true, pool);
}

std::vector<double> KHopInCounts(const AttributedGraph& graph, int k,
                                 ThreadPool* pool) {
  ALIGRAPH_CHECK_GE(k, 1);
  obs::ScopedSpan span("khop/in_counts");
  return Recurrence(graph, k, /*out=*/false, pool);
}

std::vector<double> ImportanceScores(const AttributedGraph& graph, int k,
                                     ThreadPool* pool) {
  obs::ScopedSpan span("khop/importance");
  const std::vector<double> din = KHopInCounts(graph, k, pool);
  const std::vector<double> dout = KHopOutCounts(graph, k, pool);
  std::vector<double> imp(din.size(), 0.0);
  for (size_t v = 0; v < din.size(); ++v) {
    if (dout[v] > 0) imp[v] = din[v] / dout[v];
  }
  return imp;
}

}  // namespace aligraph
