/// \file io.h
/// \brief Binary serialization of AttributedGraphs, so built graphs (and
/// the synthetic benchmark datasets) can be saved once and reloaded by
/// every worker — the "various kinds of raw data from different file
/// systems" entry point of the paper's build pipeline, reduced to one
/// self-describing binary format.
///
/// Format (little-endian): magic "ALGR", version u32, flags u32
/// (bit 0 = undirected), vertex/edge-type name tables, vertex records
/// (type + attribute vector) and edge records (src, dst, type, weight).
/// Edge attributes are round-tripped through the deduplicating
/// AttributeStore on load.

#ifndef ALIGRAPH_GRAPH_IO_H_
#define ALIGRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace aligraph {

/// Writes the graph to `path`. Overwrites any existing file.
Status SaveGraph(const AttributedGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraph.
Result<AttributedGraph> LoadGraph(const std::string& path);

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_IO_H_
