#include "graph/io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace aligraph {
namespace {

constexpr uint32_t kMagic = 0x52474c41u;  // "ALGR"
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Floats(std::span<const float> v) {
    U32(static_cast<uint32_t>(v.size()));
    Raw(v.data(), v.size() * sizeof(float));
  }
  bool ok() const { return ok_; }

 private:
  void Raw(const void* p, size_t n) {
    if (n > 0 && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}

  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  float F32() {
    float v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (!ok_ || n > (1u << 20)) {
      ok_ = false;
      return {};
    }
    std::string s(n, '\0');
    Raw(s.data(), n);
    return s;
  }
  std::vector<float> Floats() {
    const uint32_t n = U32();
    if (!ok_ || n > (1u << 24)) {
      ok_ = false;
      return {};
    }
    std::vector<float> v(n);
    Raw(v.data(), n * sizeof(float));
    return v;
  }
  bool ok() const { return ok_; }

 private:
  void Raw(void* p, size_t n) {
    if (n > 0 && std::fread(p, 1, n, f_) != n) ok_ = false;
  }
  std::FILE* f_;
  bool ok_ = true;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

Status SaveGraph(const AttributedGraph& graph, const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for writing: " + path);
  Writer w(f.get());

  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(graph.undirected() ? 1u : 0u);

  const GraphSchema& schema = graph.schema();
  w.U32(static_cast<uint32_t>(schema.num_vertex_types()));
  for (size_t t = 0; t < schema.num_vertex_types(); ++t) {
    w.Str(schema.VertexTypeName(static_cast<VertexType>(t)));
  }
  w.U32(static_cast<uint32_t>(schema.num_edge_types()));
  for (size_t t = 0; t < schema.num_edge_types(); ++t) {
    w.Str(schema.EdgeTypeName(static_cast<EdgeType>(t)));
  }

  const VertexId n = graph.num_vertices();
  w.U32(n);
  for (VertexId v = 0; v < n; ++v) {
    w.U32(graph.vertex_type(v));
    w.Floats(graph.VertexFeatures(v));
  }

  // Count the stored (forward) edges; undirected graphs store each edge
  // once with src <= dst's first occurrence convention used at build time,
  // but the builder mirrored them, so dump src<=dst half only.
  uint64_t edge_count = 0;
  const size_t num_types = graph.num_edge_types();
  for (VertexId v = 0; v < n; ++v) {
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb : graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        if (graph.undirected() && nb.dst < v) continue;
        ++edge_count;
      }
    }
  }
  w.U64(edge_count);
  for (VertexId v = 0; v < n; ++v) {
    for (size_t t = 0; t < num_types; ++t) {
      for (const Neighbor& nb : graph.OutNeighbors(v, static_cast<EdgeType>(t))) {
        if (graph.undirected() && nb.dst < v) continue;
        w.U32(v);
        w.U32(nb.dst);
        w.U32(static_cast<uint32_t>(t));
        w.F32(nb.weight);
        const auto edge_feats = graph.EdgeFeatures(nb);
        w.Floats(edge_feats);
      }
    }
  }
  if (!w.ok()) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<AttributedGraph> LoadGraph(const std::string& path) {
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open for reading: " + path);
  Reader r(f.get());

  if (r.U32() != kMagic) return Status::InvalidArgument("bad magic");
  const uint32_t version = r.U32();
  if (version != kVersion) {
    return Status::NotSupported("unsupported version " +
                                std::to_string(version));
  }
  const bool undirected = (r.U32() & 1u) != 0;

  GraphSchema schema;
  const uint32_t num_vtypes = r.U32();
  if (!r.ok() || num_vtypes == 0 || num_vtypes > 65535) {
    return Status::InvalidArgument("corrupt vertex type table");
  }
  for (uint32_t t = 0; t < num_vtypes; ++t) schema.AddVertexType(r.Str());
  const uint32_t num_etypes = r.U32();
  if (!r.ok() || num_etypes == 0 || num_etypes > 65535) {
    return Status::InvalidArgument("corrupt edge type table");
  }
  for (uint32_t t = 0; t < num_etypes; ++t) schema.AddEdgeType(r.Str());

  GraphBuilder gb(schema, undirected);
  const uint32_t n = r.U32();
  for (uint32_t v = 0; v < n && r.ok(); ++v) {
    const uint32_t type = r.U32();
    const std::vector<float> attrs = r.Floats();
    if (type >= num_vtypes) {
      return Status::InvalidArgument("corrupt vertex record");
    }
    gb.AddVertex(static_cast<VertexType>(type), attrs);
  }

  const uint64_t m = r.U64();
  for (uint64_t e = 0; e < m && r.ok(); ++e) {
    const uint32_t src = r.U32();
    const uint32_t dst = r.U32();
    const uint32_t type = r.U32();
    const float weight = r.F32();
    const std::vector<float> attrs = r.Floats();
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(src, dst,
                                      static_cast<EdgeType>(type), weight,
                                      attrs));
  }
  if (!r.ok()) return Status::IoError("short read / corrupt file: " + path);
  return gb.Build();
}

}  // namespace aligraph
