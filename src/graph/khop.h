/// \file khop.h
/// \brief k-hop neighborhood counts D_i^k / D_o^k and the importance metric
/// Imp_k(v) = D_i^k(v) / D_o^k(v) (Equation 1 of the paper).
///
/// Counts are path counts (neighbors counted with multiplicity), computed by
/// k sparse matrix-vector products in O(k*m). The paper's proofs of Theorems
/// 1-2 use exactly this recurrence (D^k as a product over hop degrees), so
/// path counts are the faithful — and scalable — interpretation.
///
/// Each hop of the recurrence is embarrassingly parallel over rows; all
/// entry points take an optional ThreadPool to spread the rows across
/// cores. Results are bit-identical with and without a pool (each row's
/// accumulation order is unchanged).

#ifndef ALIGRAPH_GRAPH_KHOP_H_
#define ALIGRAPH_GRAPH_KHOP_H_

#include <vector>

#include "graph/graph.h"

namespace aligraph {

class ThreadPool;

/// Number of k-hop out-paths starting at each vertex (k >= 1).
std::vector<double> KHopOutCounts(const AttributedGraph& graph, int k,
                                  ThreadPool* pool = nullptr);

/// Number of k-hop in-paths ending at each vertex (k >= 1).
std::vector<double> KHopInCounts(const AttributedGraph& graph, int k,
                                 ThreadPool* pool = nullptr);

/// Imp_k(v) = D_i^k(v) / D_o^k(v). Vertices with D_o^k = 0 get importance 0
/// (caching their out-neighbors would be free but also useless).
std::vector<double> ImportanceScores(const AttributedGraph& graph, int k,
                                     ThreadPool* pool = nullptr);

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_KHOP_H_
