/// \file types.h
/// \brief Fundamental identifier types of the AliGraph data model
/// (Section 2 of the paper: attributed heterogeneous graphs).

#ifndef ALIGRAPH_GRAPH_TYPES_H_
#define ALIGRAPH_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace aligraph {

/// Dense vertex identifier in [0, n). 32 bits bounds a single graph at ~4.2
/// billion vertices, comfortably above the paper's 493M-vertex Taobao-large.
using VertexId = uint32_t;

/// Identifier of a vertex type (e.g. "user", "item"); FV in the paper.
using VertexType = uint16_t;

/// Identifier of an edge type (e.g. "click", "buy"); FE in the paper.
using EdgeType = uint16_t;

/// Index into an AttributeStore: one deduplicated attribute record.
using AttrId = uint32_t;

/// Identifier of a worker / graph server in the (simulated) cluster.
using WorkerId = uint32_t;

/// Discrete timestamp of a dynamic-graph snapshot (1..T in the paper).
using Timestamp = uint32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr AttrId kNoAttr = std::numeric_limits<AttrId>::max();

/// Sentinel edge type meaning "all edge types" in neighbor-access APIs
/// (NeighborSource::NeighborsBatch, Cluster::GetNeighborsBatch, samplers).
inline constexpr EdgeType kAllEdgeTypes = std::numeric_limits<EdgeType>::max();

/// \brief One raw edge as fed to the graph builder.
struct RawEdge {
  VertexId src = 0;
  VertexId dst = 0;
  EdgeType type = 0;
  float weight = 1.0f;
  AttrId attr = kNoAttr;
};

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_TYPES_H_
