#include "graph/dynamic_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace aligraph {

const AttributedGraph& DynamicGraph::Snapshot(Timestamp t) const {
  ALIGRAPH_CHECK_GE(t, 1u);
  ALIGRAPH_CHECK_LE(t, snapshots_.size());
  return snapshots_[t - 1];
}

const std::vector<DynamicEdge>& DynamicGraph::DeltaAt(Timestamp t) const {
  ALIGRAPH_CHECK_GE(t, 1u);
  ALIGRAPH_CHECK_LE(t, deltas_.size());
  return deltas_[t - 1];
}

VertexId DynamicGraphBuilder::AddVertex(VertexType type,
                                        const std::vector<float>& attributes) {
  vertices_.push_back({type, attributes});
  return static_cast<VertexId>(vertices_.size() - 1);
}

Status DynamicGraphBuilder::AddEdge(VertexId src, VertexId dst, Timestamp time,
                                    EdgeType type, float weight,
                                    EvolutionKind kind) {
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (time < 1) return Status::InvalidArgument("timestamps start at 1");
  DynamicEdge de;
  de.edge = RawEdge{src, dst, type, weight, kNoAttr};
  de.time = time;
  de.kind = kind;
  edges_.push_back(de);
  max_time_ = std::max(max_time_, time);
  return Status::OK();
}

Result<DynamicGraph> DynamicGraphBuilder::Build() {
  DynamicGraph dg;
  dg.deltas_.resize(max_time_);
  for (const DynamicEdge& e : edges_) {
    dg.deltas_[e.time - 1].push_back(e);
  }

  // Snapshot t accumulates every delta with time <= t. Each snapshot is an
  // independent AttributedGraph built from scratch; O(T*m) total, fine for
  // the handful of snapshots the evolving experiments use.
  for (Timestamp t = 1; t <= max_time_; ++t) {
    GraphBuilder gb(schema_, undirected_);
    for (const auto& vd : vertices_) gb.AddVertex(vd.type, vd.attributes);
    for (Timestamp s = 1; s <= t; ++s) {
      for (const DynamicEdge& e : dg.deltas_[s - 1]) {
        ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(e.edge.src, e.edge.dst, e.edge.type,
                                          e.edge.weight));
      }
    }
    ALIGRAPH_ASSIGN_OR_RETURN(AttributedGraph snap, gb.Build());
    dg.snapshots_.push_back(std::move(snap));
  }
  return dg;
}

}  // namespace aligraph
