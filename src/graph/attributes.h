/// \file attributes.h
/// \brief Deduplicated attribute storage — the paper's "separate storage of
/// attributes" (Section 3.2).
///
/// Instead of inlining attribute payloads into the adjacency table, AliGraph
/// stores every distinct attribute record once in an index (IV for vertices,
/// IE for edges) and keeps only a small AttrId in the adjacency table. With
/// ND the average degree, NL the average attribute length and NA the number
/// of distinct attributes, this reduces space from O(n*ND*NL) to
/// O(n*ND + NA*NL).

#ifndef ALIGRAPH_GRAPH_ATTRIBUTES_H_
#define ALIGRAPH_GRAPH_ATTRIBUTES_H_

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace aligraph {

/// \brief Append-only interning store for float-vector attribute records.
///
/// Identical records (bitwise-equal float vectors) share one AttrId. The
/// store tracks both its deduplicated footprint and the footprint a naive
/// inlined layout would have had, so the storage benchmarks can report the
/// savings of the separate-storage design.
class AttributeStore {
 public:
  AttributeStore() = default;

  /// Interns a record, returning the id of the canonical copy.
  AttrId Intern(const std::vector<float>& values);

  /// Returns the record for an id. id must be valid and not kNoAttr.
  std::span<const float> Get(AttrId id) const;

  /// Number of distinct records (NA).
  size_t num_records() const { return offsets_.size(); }

  /// Total references interned, including duplicates.
  size_t num_references() const { return num_references_; }

  /// Bytes held by the deduplicated store (payload + offsets).
  size_t DedupBytes() const;

  /// Bytes a naive inlined layout would use (every reference stores its own
  /// copy of the payload).
  size_t InlinedBytes() const { return inlined_bytes_; }

 private:
  // Payloads are concatenated in `data_`; record i spans
  // [offsets_[i], offsets_[i] + lengths_[i]).
  std::vector<float> data_;
  std::vector<uint64_t> offsets_;
  std::vector<uint32_t> lengths_;
  std::unordered_map<uint64_t, std::vector<AttrId>> hash_index_;
  size_t num_references_ = 0;
  size_t inlined_bytes_ = 0;
};

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_ATTRIBUTES_H_
