#include "graph/graph.h"

#include <sstream>
#include <utility>

#include "common/logging.h"

namespace aligraph {

Csr::Csr(VertexId num_vertices,
         const std::vector<std::pair<VertexId, Neighbor>>& edges) {
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const auto& [src, nb] : edges) {
    ALIGRAPH_CHECK_LT(src, num_vertices);
    ++offsets_[src + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  neighbors_.resize(edges.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [src, nb] : edges) {
    neighbors_[cursor[src]++] = nb;
  }
}

Csr Csr::Permuted(std::span<const VertexId> new_of_old,
                  std::span<const VertexId> old_of_new) const {
  const VertexId n = num_vertices();
  ALIGRAPH_CHECK_EQ(new_of_old.size(), static_cast<size_t>(n));
  ALIGRAPH_CHECK_EQ(old_of_new.size(), static_cast<size_t>(n));
  Csr out;
  out.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (VertexId nv = 0; nv < n; ++nv) {
    out.offsets_[nv + 1] =
        out.offsets_[nv] + static_cast<uint64_t>(Degree(old_of_new[nv]));
  }
  out.neighbors_.resize(neighbors_.size());
  for (VertexId nv = 0; nv < n; ++nv) {
    const std::span<const Neighbor> src = Neighbors(old_of_new[nv]);
    Neighbor* dst = out.neighbors_.data() + out.offsets_[nv];
    for (size_t i = 0; i < src.size(); ++i) {
      dst[i] = src[i];
      dst[i].dst = new_of_old[src[i].dst];
    }
  }
  return out;
}

AttributedGraph AttributedGraph::Reordered(
    std::span<const VertexId> new_of_old,
    std::span<const VertexId> old_of_new) const {
  const VertexId n = num_vertices();
  ALIGRAPH_CHECK_EQ(new_of_old.size(), static_cast<size_t>(n));
  ALIGRAPH_CHECK_EQ(old_of_new.size(), static_cast<size_t>(n));

  AttributedGraph g;
  g.schema_ = schema_;
  g.undirected_ = undirected_;
  g.num_edges_ = num_edges_;
  g.vertex_store_ = vertex_store_;
  g.edge_store_ = edge_store_;

  g.vertex_type_.resize(n);
  g.vertex_attr_.resize(n);
  for (VertexId nv = 0; nv < n; ++nv) {
    const VertexId ov = old_of_new[nv];
    g.vertex_type_[nv] = vertex_type_[ov];
    g.vertex_attr_[nv] = vertex_attr_[ov];
  }
  // Per-type listings keep the "ascending id" contract in the NEW space.
  g.vertices_by_type_.resize(schema_.num_vertex_types());
  for (VertexId nv = 0; nv < n; ++nv) {
    g.vertices_by_type_[g.vertex_type_[nv]].push_back(nv);
  }

  g.out_all_ = out_all_.Permuted(new_of_old, old_of_new);
  g.in_all_ = in_all_.Permuted(new_of_old, old_of_new);
  g.out_by_type_.reserve(out_by_type_.size());
  g.in_by_type_.reserve(in_by_type_.size());
  for (const Csr& c : out_by_type_) {
    g.out_by_type_.push_back(c.Permuted(new_of_old, old_of_new));
  }
  for (const Csr& c : in_by_type_) {
    g.in_by_type_.push_back(c.Permuted(new_of_old, old_of_new));
  }
  return g;
}

std::span<const VertexId> AttributedGraph::VerticesOfType(VertexType t) const {
  ALIGRAPH_CHECK_LT(t, vertices_by_type_.size());
  return vertices_by_type_[t];
}

size_t AttributedGraph::MemoryBytes() const {
  size_t bytes = out_all_.MemoryBytes() + in_all_.MemoryBytes();
  for (const auto& c : out_by_type_) bytes += c.MemoryBytes();
  for (const auto& c : in_by_type_) bytes += c.MemoryBytes();
  bytes += vertex_type_.size() * sizeof(VertexType);
  bytes += vertex_attr_.size() * sizeof(AttrId);
  bytes += vertex_store_.DedupBytes() + edge_store_.DedupBytes();
  return bytes;
}

std::string AttributedGraph::ToString() const {
  std::ostringstream os;
  os << "AttributedGraph{n=" << num_vertices() << " m=" << num_edges_
     << " vtypes=" << schema_.num_vertex_types()
     << " etypes=" << schema_.num_edge_types()
     << " bytes=" << MemoryBytes() << "}";
  return os.str();
}

VertexId GraphBuilder::AddVertex(VertexType type,
                                 const std::vector<float>& attributes) {
  ALIGRAPH_CHECK_LT(type, schema_.num_vertex_types());
  const VertexId id = static_cast<VertexId>(vertex_type_.size());
  vertex_type_.push_back(type);
  vertex_attr_.push_back(attributes.empty() ? kNoAttr
                                            : vertex_store_.Intern(attributes));
  return id;
}

Status GraphBuilder::AddEdge(VertexId src, VertexId dst, EdgeType type,
                             float weight,
                             const std::vector<float>& attributes) {
  if (src >= vertex_type_.size() || dst >= vertex_type_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (type >= schema_.num_edge_types()) {
    return Status::InvalidArgument("unregistered edge type");
  }
  if (weight < 0) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }
  RawEdge e;
  e.src = src;
  e.dst = dst;
  e.type = type;
  e.weight = weight;
  e.attr = attributes.empty() ? kNoAttr : edge_store_.Intern(attributes);
  edges_.push_back(e);
  return Status::OK();
}

Result<AttributedGraph> GraphBuilder::Build() {
  AttributedGraph g;
  g.schema_ = std::move(schema_);
  g.undirected_ = undirected_;
  g.vertex_type_ = std::move(vertex_type_);
  g.vertex_attr_ = std::move(vertex_attr_);
  g.vertex_store_ = std::move(vertex_store_);
  g.edge_store_ = std::move(edge_store_);
  g.num_edges_ = edges_.size();

  const VertexId n = static_cast<VertexId>(g.vertex_type_.size());
  const size_t num_types = g.schema_.num_edge_types();

  g.vertices_by_type_.resize(g.schema_.num_vertex_types());
  for (VertexId v = 0; v < n; ++v) {
    g.vertices_by_type_[g.vertex_type_[v]].push_back(v);
  }

  // Assemble (src, Neighbor) pair lists, one per direction and per type,
  // plus the merged lists. Undirected graphs mirror every edge.
  std::vector<std::pair<VertexId, Neighbor>> out_pairs, in_pairs;
  std::vector<std::vector<std::pair<VertexId, Neighbor>>> out_t(num_types),
      in_t(num_types);
  const size_t mult = undirected_ ? 2 : 1;
  out_pairs.reserve(edges_.size() * mult);
  in_pairs.reserve(edges_.size() * mult);

  auto add_one = [&](VertexId src, VertexId dst, const RawEdge& e) {
    const Neighbor fwd{dst, e.weight, e.attr};
    out_pairs.emplace_back(src, fwd);
    out_t[e.type].emplace_back(src, fwd);
    const Neighbor bwd{src, e.weight, e.attr};
    in_pairs.emplace_back(dst, bwd);
    in_t[e.type].emplace_back(dst, bwd);
  };

  for (const RawEdge& e : edges_) {
    add_one(e.src, e.dst, e);
    if (undirected_ && e.src != e.dst) {
      RawEdge rev = e;
      add_one(e.dst, e.src, rev);
    }
  }
  edges_.clear();
  edges_.shrink_to_fit();

  g.out_all_ = Csr(n, out_pairs);
  g.in_all_ = Csr(n, in_pairs);
  g.out_by_type_.reserve(num_types);
  g.in_by_type_.reserve(num_types);
  for (size_t t = 0; t < num_types; ++t) {
    g.out_by_type_.emplace_back(n, out_t[t]);
    g.in_by_type_.emplace_back(n, in_t[t]);
  }
  return g;
}

}  // namespace aligraph
