/// \file schema.h
/// \brief Named registry of vertex and edge types (the TV / TE mapping
/// functions' codomains FV and FE of an attributed heterogeneous graph).

#ifndef ALIGRAPH_GRAPH_SCHEMA_H_
#define ALIGRAPH_GRAPH_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace aligraph {

/// \brief Bidirectional name <-> id registry for vertex and edge types.
///
/// A simple homogeneous graph uses the default schema with one vertex type
/// ("vertex") and one edge type ("edge"). An AHG per the paper's definition
/// has |FV| >= 2 and/or |FE| >= 2.
class GraphSchema {
 public:
  /// Creates a schema with the default single vertex/edge type.
  GraphSchema();

  /// Registers a vertex type name; returns the existing id if present.
  VertexType AddVertexType(const std::string& name);
  /// Registers an edge type name; returns the existing id if present.
  EdgeType AddEdgeType(const std::string& name);

  /// Lookup by name; NotFound when unregistered.
  Result<VertexType> VertexTypeId(const std::string& name) const;
  Result<EdgeType> EdgeTypeId(const std::string& name) const;

  const std::string& VertexTypeName(VertexType t) const;
  const std::string& EdgeTypeName(EdgeType t) const;

  size_t num_vertex_types() const { return vertex_names_.size(); }
  size_t num_edge_types() const { return edge_names_.size(); }

  /// True iff the schema is heterogeneous per the paper's definition.
  bool IsHeterogeneous() const {
    return num_vertex_types() >= 2 || num_edge_types() >= 2;
  }

 private:
  std::vector<std::string> vertex_names_;
  std::vector<std::string> edge_names_;
  std::unordered_map<std::string, VertexType> vertex_ids_;
  std::unordered_map<std::string, EdgeType> edge_ids_;
};

}  // namespace aligraph

#endif  // ALIGRAPH_GRAPH_SCHEMA_H_
