#include "graph/schema.h"

#include "common/logging.h"

namespace aligraph {

GraphSchema::GraphSchema() {
  AddVertexType("vertex");
  AddEdgeType("edge");
}

VertexType GraphSchema::AddVertexType(const std::string& name) {
  auto it = vertex_ids_.find(name);
  if (it != vertex_ids_.end()) return it->second;
  const VertexType id = static_cast<VertexType>(vertex_names_.size());
  vertex_names_.push_back(name);
  vertex_ids_[name] = id;
  return id;
}

EdgeType GraphSchema::AddEdgeType(const std::string& name) {
  auto it = edge_ids_.find(name);
  if (it != edge_ids_.end()) return it->second;
  const EdgeType id = static_cast<EdgeType>(edge_names_.size());
  edge_names_.push_back(name);
  edge_ids_[name] = id;
  return id;
}

Result<VertexType> GraphSchema::VertexTypeId(const std::string& name) const {
  auto it = vertex_ids_.find(name);
  if (it == vertex_ids_.end()) {
    return Status::NotFound("vertex type: " + name);
  }
  return it->second;
}

Result<EdgeType> GraphSchema::EdgeTypeId(const std::string& name) const {
  auto it = edge_ids_.find(name);
  if (it == edge_ids_.end()) {
    return Status::NotFound("edge type: " + name);
  }
  return it->second;
}

const std::string& GraphSchema::VertexTypeName(VertexType t) const {
  ALIGRAPH_CHECK_LT(t, vertex_names_.size());
  return vertex_names_[t];
}

const std::string& GraphSchema::EdgeTypeName(EdgeType t) const {
  ALIGRAPH_CHECK_LT(t, edge_names_.size());
  return edge_names_[t];
}

}  // namespace aligraph
