#include "graph/attributes.h"

#include <cstring>

#include "common/logging.h"
#include "common/random.h"

namespace aligraph {
namespace {

uint64_t HashFloats(const std::vector<float>& values) {
  uint64_t h = 0x243f6a8885a308d3ULL ^ values.size();
  for (float f : values) {
    uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    h = Mix64(h ^ bits);
  }
  return h;
}

}  // namespace

AttrId AttributeStore::Intern(const std::vector<float>& values) {
  ++num_references_;
  inlined_bytes_ += values.size() * sizeof(float);

  const uint64_t h = HashFloats(values);
  auto& bucket = hash_index_[h];
  for (AttrId id : bucket) {
    std::span<const float> existing = Get(id);
    if (existing.size() == values.size() &&
        std::memcmp(existing.data(), values.data(),
                    values.size() * sizeof(float)) == 0) {
      return id;
    }
  }

  const AttrId id = static_cast<AttrId>(offsets_.size());
  offsets_.push_back(data_.size());
  lengths_.push_back(static_cast<uint32_t>(values.size()));
  data_.insert(data_.end(), values.begin(), values.end());
  bucket.push_back(id);
  return id;
}

std::span<const float> AttributeStore::Get(AttrId id) const {
  ALIGRAPH_CHECK_LT(id, offsets_.size());
  return {data_.data() + offsets_[id], lengths_[id]};
}

size_t AttributeStore::DedupBytes() const {
  return data_.size() * sizeof(float) + offsets_.size() * sizeof(uint64_t) +
         lengths_.size() * sizeof(uint32_t);
}

}  // namespace aligraph
