#include "pipeline/block_pipeline.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/bounded_queue.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace pipeline {

namespace {

/// One batch in flight between stages. unique_ptr'd through the queues so a
/// handoff moves a pointer, not the block's CSRs and feature matrix.
struct Batch {
  size_t index = 0;
  std::any user;
  block::SampledBlock block;
  nn::Matrix features;
  /// The batch's trace identity, minted on the sample lane; every stage
  /// adopts it so its span parents under the same "pipeline/batch" root.
  obs::TraceContext trace;
  std::chrono::steady_clock::time_point start;
};

void Charge(obs::Counter* counter, const Timer& timer) {
  if (counter != nullptr) {
    counter->Add(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
}

}  // namespace

BlockPipeline::BlockPipeline(PipelineConfig config)
    : config_(config),
      sample_lane_(1, "pipeline.sample"),
      gather_lane_(1, "pipeline.gather"),
      busy_sample_(obs::DefaultCounter("pipeline.stage_busy_us.sample")),
      busy_gather_(obs::DefaultCounter("pipeline.stage_busy_us.gather")),
      busy_compute_(obs::DefaultCounter("pipeline.stage_busy_us.compute")),
      stall_sample_(obs::DefaultCounter("pipeline.stall_us.sample")),
      stall_gather_(obs::DefaultCounter("pipeline.stall_us.gather")),
      stall_compute_(obs::DefaultCounter("pipeline.stall_us.compute")),
      batches_(obs::DefaultCounter("pipeline.batches")),
      depth_sampled_(obs::DefaultGauge("pipeline.queue_depth.sampled")),
      depth_gathered_(obs::DefaultGauge("pipeline.queue_depth.gathered")) {
  if (config_.depth == 0) config_.depth = 1;
}

Status BlockPipeline::Run(NeighborhoodSampler& sampler,
                          NeighborSource& source, EdgeType type,
                          std::span<const uint32_t> fans, size_t num_batches,
                          const RootsFn& roots, const GatherFn& gather,
                          const ComputeFn& compute) {
  // sample -> gather and gather -> compute handoffs. Producer-side waits
  // (queue full) are charged to the producing stage, consumer-side waits
  // (queue empty) to the consuming stage.
  BoundedQueue<std::unique_ptr<Batch>> sampled(config_.depth, depth_sampled_,
                                               stall_sample_, stall_gather_);
  BoundedQueue<std::unique_ptr<Batch>> gathered(config_.depth, depth_gathered_,
                                                stall_gather_, stall_compute_);

  // Stage 1 — sample lane. One long-lived task per Run keeps batch order
  // trivial and avoids a Submit per batch: the loop itself is the stage.
  const Status sample_submitted = sample_lane_.Submit([&] {
    for (size_t b = 0; b < num_batches; ++b) {
      auto batch = std::make_unique<Batch>();
      batch->index = b;
      // Mint the batch's trace root here, at first touch: all three stage
      // spans adopt this context, so the batch stays one causal tree even
      // though its stages run on three threads.
      const uint64_t root_id = obs::NextSpanId();
      batch->trace = obs::TraceContext{root_id, root_id};
      batch->start = std::chrono::steady_clock::now();
      obs::ScopedTraceContext adopt(batch->trace);
      {
        obs::ScopedSpan span("pipeline/sample");
        Timer busy;
        const std::vector<VertexId> batch_roots = roots(b, &batch->user);
        // Gather deliberately NOT passed: it is the next stage.
        batch->block = sampler.SampleBlock(source, batch_roots, type, fans,
                                           /*pool=*/nullptr,
                                           /*features=*/nullptr);
        Charge(busy_sample_, busy);
      }
      if (!sampled.Push(std::move(batch))) return;  // downstream closed
    }
    sampled.Close();
  });
  if (!sample_submitted.ok()) {
    sampled.Close();
    return sample_submitted;
  }

  // Stage 2 — gather lane.
  const Status gather_submitted = gather_lane_.Submit([&] {
    std::unique_ptr<Batch> batch;
    while (sampled.Pop(&batch)) {
      obs::ScopedTraceContext adopt(batch->trace);
      {
        obs::ScopedSpan span("pipeline/gather");
        Timer busy;
        batch->features = gather(batch->block);
        Charge(busy_gather_, busy);
      }
      if (!gathered.Push(std::move(batch))) return;  // downstream closed
    }
    gathered.Close();
  });
  if (!gather_submitted.ok()) {
    // Unblock and retire the sample task before reporting: the stage loops
    // only reference this frame, so they must not outlive it.
    sampled.Close();
    gathered.Close();
    sample_lane_.Wait();
    return gather_submitted;
  }

  // Stage 3 — compute, on the caller's thread, in batch order.
  obs::Tracer* tracer = obs::DefaultTracer();
  std::unique_ptr<Batch> batch;
  while (gathered.Pop(&batch)) {
    obs::ScopedTraceContext adopt(batch->trace);
    {
      obs::ScopedSpan span("pipeline/compute");
      Timer busy;
      compute(batch->index, batch->block, batch->features, batch->user);
      Charge(busy_compute_, busy);
    }
    if (batches_ != nullptr) batches_->Add(1);
    if (tracer != nullptr) {
      // Synthetic root covering the batch end to end. Recorded last (its
      // children are already in the rings) with the ids minted on the
      // sample lane, so timeline assembly sees one parentless span per
      // batch whose children live on three different threads.
      const auto duration_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - batch->start)
              .count();
      tracer->Record("pipeline/batch", /*depth=*/1, batch->trace,
                     /*parent_span_id=*/0, batch->start, duration_ns);
    }
  }
  sample_lane_.Wait();
  gather_lane_.Wait();
  return Status::OK();
}

}  // namespace pipeline
}  // namespace aligraph
