#include "pipeline/block_pipeline.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/bounded_queue.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace pipeline {

namespace {

/// One batch in flight between stages. unique_ptr'd through the queues so a
/// handoff moves a pointer, not the block's CSRs and feature matrix.
struct Batch {
  size_t index = 0;
  std::any user;
  block::SampledBlock block;
  nn::Matrix features;
  /// The batch's trace identity, minted on the sample lane; every stage
  /// adopts it so its span parents under the same "pipeline/batch" root.
  obs::TraceContext trace;
  std::chrono::steady_clock::time_point start;
};

void Charge(obs::Counter* counter, const Timer& timer) {
  if (counter != nullptr) {
    counter->Add(static_cast<uint64_t>(timer.ElapsedMicros()));
  }
}

/// Emits the synthetic per-batch root span: parentless, covering the batch
/// from first touch on the sample lane to now. Recorded after its children
/// are already in the rings, with the ids minted at first touch, so
/// timeline assembly sees exactly one root per batch regardless of which
/// thread closes the batch out (compute for completed batches, the sample
/// lane for dropped ones).
void RecordBatchRoot(obs::Tracer* tracer, const char* name,
                     const Batch& batch) {
  if (tracer == nullptr) return;
  const auto duration_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - batch.start)
          .count();
  tracer->Record(name, /*depth=*/1, batch.trace,
                 /*parent_span_id=*/0, batch.start, duration_ns);
}

}  // namespace

BlockPipeline::BlockPipeline(PipelineConfig config)
    : config_(config),
      sample_lane_(1, "pipeline.sample"),
      gather_lane_(1, "pipeline.gather"),
      busy_sample_(obs::DefaultCounter("pipeline.stage_busy_us.sample")),
      busy_gather_(obs::DefaultCounter("pipeline.stage_busy_us.gather")),
      busy_compute_(obs::DefaultCounter("pipeline.stage_busy_us.compute")),
      stall_sample_(obs::DefaultCounter("pipeline.stall_us.sample")),
      stall_gather_(obs::DefaultCounter("pipeline.stall_us.gather")),
      stall_compute_(obs::DefaultCounter("pipeline.stall_us.compute")),
      batches_(obs::DefaultCounter("pipeline.batches")),
      depth_sampled_(obs::DefaultGauge("pipeline.queue_depth.sampled")),
      depth_gathered_(obs::DefaultGauge("pipeline.queue_depth.gathered")) {
  if (config_.depth == 0) config_.depth = 1;
}

Status BlockPipeline::Run(NeighborhoodSampler& sampler,
                          NeighborSource& source, EdgeType type,
                          std::span<const uint32_t> fans, size_t num_batches,
                          const RootsFn& roots, const GatherFn& gather,
                          const ComputeFn& compute) {
  return RunStages(
      num_batches,
      [&](size_t b, block::SampledBlock* block, std::any* user) {
        const std::vector<VertexId> batch_roots = roots(b, user);
        // Gather deliberately NOT passed: it is the next stage. No draw
        // pool either — per-stage threading comes from the lanes, keeping
        // draws bit-identical to the pool-less sequential path.
        *block = sampler.SampleBlock(source, batch_roots, type, fans,
                                     /*pool=*/nullptr,
                                     /*features=*/nullptr);
        return true;
      },
      gather, compute);
}

Status BlockPipeline::RunStages(size_t num_batches, const SampleFn& sample,
                                const GatherFn& gather,
                                const ComputeFn& compute) {
  // sample -> gather and gather -> compute handoffs. Producer-side waits
  // (queue full) are charged to the producing stage, consumer-side waits
  // (queue empty) to the consuming stage.
  BoundedQueue<std::unique_ptr<Batch>> sampled(config_.depth, depth_sampled_,
                                               stall_sample_, stall_gather_);
  BoundedQueue<std::unique_ptr<Batch>> gathered(config_.depth, depth_gathered_,
                                                stall_gather_, stall_compute_);

  obs::Tracer* tracer = obs::DefaultTracer();

  // Stage 1 — sample lane. One long-lived task per Run keeps batch order
  // trivial and avoids a Submit per batch: the loop itself is the stage.
  const Status sample_submitted = sample_lane_.Submit([&] {
    for (size_t b = 0; b < num_batches; ++b) {
      auto batch = std::make_unique<Batch>();
      batch->index = b;
      // Mint the batch's trace root here, at first touch: all three stage
      // spans adopt this context, so the batch stays one causal tree even
      // though its stages run on three threads.
      const uint64_t root_id = obs::NextSpanId();
      batch->trace = obs::TraceContext{root_id, root_id};
      batch->start = std::chrono::steady_clock::now();
      obs::ScopedTraceContext adopt(batch->trace);
      bool admitted = false;
      {
        obs::ScopedSpan span(config_.sample_span);
        Timer busy;
        admitted = sample(b, &batch->block, &batch->user);
        Charge(busy_sample_, busy);
      }
      if (!admitted) {
        // Dropped at the source (shed / deadline abandoned): downstream
        // stages never see it, but the batch still gets its root span so
        // the trace timeline shows every offered batch, served or not.
        RecordBatchRoot(tracer, config_.batch_span, *batch);
        continue;
      }
      if (!sampled.Push(std::move(batch))) return;  // downstream closed
    }
    sampled.Close();
  });
  if (!sample_submitted.ok()) {
    sampled.Close();
    return sample_submitted;
  }

  // Stage 2 — gather lane.
  const Status gather_submitted = gather_lane_.Submit([&] {
    std::unique_ptr<Batch> batch;
    while (sampled.Pop(&batch)) {
      obs::ScopedTraceContext adopt(batch->trace);
      {
        obs::ScopedSpan span(config_.gather_span);
        Timer busy;
        batch->features = gather(batch->block);
        Charge(busy_gather_, busy);
      }
      if (!gathered.Push(std::move(batch))) return;  // downstream closed
    }
    gathered.Close();
  });
  if (!gather_submitted.ok()) {
    // Unblock and retire the sample task before reporting: the stage loops
    // only reference this frame, so they must not outlive it.
    sampled.Close();
    gathered.Close();
    sample_lane_.Wait();
    return gather_submitted;
  }

  // Stage 3 — compute, on the caller's thread, in batch order.
  std::unique_ptr<Batch> batch;
  while (gathered.Pop(&batch)) {
    obs::ScopedTraceContext adopt(batch->trace);
    {
      obs::ScopedSpan span(config_.compute_span);
      Timer busy;
      compute(batch->index, batch->block, batch->features, batch->user);
      Charge(busy_compute_, busy);
    }
    if (batches_ != nullptr) batches_->Add(1);
    RecordBatchRoot(tracer, config_.batch_span, *batch);
  }
  sample_lane_.Wait();
  gather_lane_.Wait();
  return Status::OK();
}

}  // namespace pipeline
}  // namespace aligraph
