/// \file bounded_queue.h
/// \brief Bounded MPMC handoff queue between pipeline stages.
///
/// The stage queues are what turn three sequential phases into a pipeline:
/// a producer stage pushes finished batches and blocks only when `capacity`
/// batches are already in flight (that bound IS the double-buffering memory
/// cap — at most `capacity` SampledBlocks live between any two stages), and
/// a consumer stage pops in FIFO order, blocking only when the producer has
/// fallen behind. Both directions of blocking are stalls the pipeline wants
/// to see: the queue charges producer wait time and consumer wait time to
/// separate "pipeline.stall_us.*" counters and keeps a depth gauge current,
/// so a trace showing bubbles can be cross-checked against which queue ran
/// full (downstream too slow) or empty (upstream too slow).
///
/// A plain mutex + two condvars is deliberate: handoffs happen per BATCH
/// (hundreds per second), not per vertex, so lock cost is noise, and the
/// blocking semantics stay trivially correct under TSan. The lock-free
/// MpscRing in cluster/ covers the per-operation hot path instead.

#ifndef ALIGRAPH_PIPELINE_BOUNDED_QUEUE_H_
#define ALIGRAPH_PIPELINE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "common/logging.h"
#include "obs/metrics.h"

namespace aligraph {
namespace pipeline {

/// \brief Bounded blocking FIFO. Push blocks while full, Pop while empty;
/// Close() wakes every waiter — pushes after Close are rejected, pops drain
/// the remaining items and then return false.
template <typename T>
class BoundedQueue {
 public:
  /// \param capacity max items in flight (>= 1).
  /// \param depth gauge updated with the queue size on every transition.
  /// \param push_stall_us counter charged with producer-side blocked time.
  /// \param pop_stall_us counter charged with consumer-side blocked time.
  /// Any observability handle may be null (detached).
  explicit BoundedQueue(size_t capacity, obs::Gauge* depth = nullptr,
                        obs::Counter* push_stall_us = nullptr,
                        obs::Counter* pop_stall_us = nullptr)
      : capacity_(capacity), depth_(depth), push_stall_us_(push_stall_us),
        pop_stall_us_(pop_stall_us) {
    ALIGRAPH_CHECK_GT(capacity, 0u);
  }

  /// Blocks until a slot frees up, then enqueues. Returns false (dropping
  /// `value`) when the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto blocked = std::chrono::steady_clock::now();
      cv_not_full_.wait(
          lock, [this] { return items_.size() < capacity_ || closed_; });
      Charge(push_stall_us_, blocked);
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    if (depth_ != nullptr) depth_->Set(static_cast<double>(items_.size()));
    lock.unlock();
    cv_not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available, pops it in FIFO order. Returns
  /// false when the queue is closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      const auto blocked = std::chrono::steady_clock::now();
      cv_not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      Charge(pop_stall_us_, blocked);
    }
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    if (depth_ != nullptr) depth_->Set(static_cast<double>(items_.size()));
    lock.unlock();
    cv_not_full_.notify_one();
    return true;
  }

  /// Rejects future pushes and wakes all waiters; already-queued items stay
  /// poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_not_full_.notify_all();
    cv_not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  static void Charge(obs::Counter* counter,
                     std::chrono::steady_clock::time_point since) {
    if (counter == nullptr) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - since);
    counter->Add(static_cast<uint64_t>(us.count()));
  }

  const size_t capacity_;
  obs::Gauge* depth_;
  obs::Counter* push_stall_us_;
  obs::Counter* pop_stall_us_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pipeline
}  // namespace aligraph

#endif  // ALIGRAPH_PIPELINE_BOUNDED_QUEUE_H_
