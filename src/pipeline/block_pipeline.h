/// \file block_pipeline.h
/// \brief 3-stage batch pipeline over the subgraph-block execution path:
/// hop sampling for batch N+1 overlaps feature gathering for batch N and
/// block compute for batch N-1.
///
/// The sequential block path (PR 4) runs SampleBlock -> gather -> forward
/// strictly back to back per batch, so the PR 5 trace timelines show each
/// stage idle two thirds of the time. BGL (PAPERS.md, arXiv:2112.08541)
/// shows that overlapping graph-data I/O with compute is the dominant lever
/// for end-to-end GNN throughput; this subsystem is that overlap, built
/// from parts the repo already has:
///
///   sample lane (ThreadPool "pipeline.sample", 1 thread)
///     batch b: roots(b) -> NeighborhoodSampler::SampleBlock (no gather)
///        | BoundedQueue "sampled"  (capacity = depth)
///   gather lane (ThreadPool "pipeline.gather", 1 thread)
///     batch b: FeatureSource gather, one row per unique vertex
///        | BoundedQueue "gathered" (capacity = depth)
///   compute (the CALLER's thread)
///     batch b: forward / backward / apply, in batch order
///
/// Each stage is single-threaded and processes batches in submission order,
/// so every stateful participant keeps the exact call sequence of the
/// sequential path: the sampler's RNG advances batch by batch on the sample
/// lane, a row cache sees gathers in batch order on the gather lane, and
/// model weights update in batch order on the caller thread. That is what
/// makes pipelined results BIT-IDENTICAL to sequential execution — the
/// overlap reorders work across *stages*, never within a stage.
///
/// The bounded queues double-buffer SampledBlocks: at most `depth` batches
/// wait between adjacent stages (2 * depth + 3 alive in the worst case),
/// capping peak memory regardless of how far the sampler could run ahead.
///
/// Tracing: the pipeline mints one TraceContext per batch on the sample
/// lane and re-adopts it in every stage, so "pipeline/sample|gather|
/// compute" spans from three different threads stay one causal tree under
/// a synthetic "pipeline/batch" root; the Chrome trace export then shows
/// adjacent batches' stage spans overlapping in time — the bubbles closing.

#ifndef ALIGRAPH_PIPELINE_BLOCK_PIPELINE_H_
#define ALIGRAPH_PIPELINE_BLOCK_PIPELINE_H_

#include <any>
#include <functional>
#include <span>
#include <vector>

#include "block/sampled_block.h"
#include "common/status.h"
#include "common/threadpool.h"
#include "graph/types.h"
#include "nn/matrix.h"

namespace aligraph {

class NeighborhoodSampler;
class NeighborSource;

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace pipeline {

/// \brief Pipeline shape knobs.
struct PipelineConfig {
  /// Capacity of each stage queue — how many batches may sit between two
  /// adjacent stages. 1 already overlaps (classic double buffering per
  /// handoff); 2-3 absorbs stage-time jitter. Peak in-flight batches is
  /// bounded by 2 * depth + 3 (one resident per stage plus the queues).
  size_t depth = 2;
  /// Span names recorded per batch (string literals only — spans keep the
  /// pointer). The serving layer renames the root to "serve/request" so the
  /// Chrome trace export and critical-path analyzer read as request
  /// lifecycles; training keeps the defaults.
  const char* batch_span = "pipeline/batch";
  const char* sample_span = "pipeline/sample";
  const char* gather_span = "pipeline/gather";
  const char* compute_span = "pipeline/compute";
};

/// \brief Runs batches through sample -> gather -> compute with bounded
/// overlap. Reusable: construct once, Run() any number of batch streams.
class BlockPipeline {
 public:
  /// Produces batch b's roots; runs on the SAMPLE lane, strictly in batch
  /// order. `user` may be filled with per-batch payload (e.g. the training
  /// pairs drawn alongside the roots) and is handed to the compute stage
  /// with the batch — it rides the stage queues, so no extra locking.
  using RootsFn = std::function<std::vector<VertexId>(size_t batch,
                                                      std::any* user)>;

  /// Gathers the block's [num_vertices, dim] feature rows; runs on the
  /// GATHER lane, strictly in batch order.
  using GatherFn = std::function<nn::Matrix(const block::SampledBlock&)>;

  /// Consumes the finished batch; runs on the CALLER's thread, strictly in
  /// batch order.
  using ComputeFn = std::function<void(size_t batch,
                                       const block::SampledBlock& blk,
                                       const nn::Matrix& features,
                                       std::any& user)>;

  /// Generalized first stage: produces batch b's block (and optional user
  /// payload) on the SAMPLE lane, strictly in batch order. Returning false
  /// DROPS the batch — the gather and compute stages never see it, only its
  /// root + sample spans are recorded. The serving layer uses the drop to
  /// shed or abandon requests at admission time without occupying the
  /// downstream lanes.
  using SampleFn = std::function<bool(size_t batch,
                                      block::SampledBlock* block,
                                      std::any* user)>;

  explicit BlockPipeline(PipelineConfig config = {});

  BlockPipeline(const BlockPipeline&) = delete;
  BlockPipeline& operator=(const BlockPipeline&) = delete;

  /// Streams `num_batches` batches through the three stages. Blocks until
  /// every batch has been computed. Returns FailedPrecondition when a stage
  /// lane was shut down underneath the pipeline; OK otherwise.
  ///
  /// The sampler is driven WITHOUT its inline feature gather (that is the
  /// whole point: gather is a separately scheduled stage) and without a
  /// draw pool — per-stage threading comes from the lanes, keeping draws
  /// bit-identical to the pool-less sequential path.
  Status Run(NeighborhoodSampler& sampler, NeighborSource& source,
             EdgeType type, std::span<const uint32_t> fans,
             size_t num_batches, const RootsFn& roots, const GatherFn& gather,
             const ComputeFn& compute);

  /// Generalized entry point Run() delegates to: the caller owns the whole
  /// first stage (its sampler, its RNG discipline, its per-batch admission
  /// decisions) instead of handing the pipeline a NeighborhoodSampler to
  /// drive. Stage ordering, queue bounds, metrics and per-batch trace trees
  /// are identical to Run().
  Status RunStages(size_t num_batches, const SampleFn& sample,
                   const GatherFn& gather, const ComputeFn& compute);

  const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
  ThreadPool sample_lane_;
  ThreadPool gather_lane_;
  // Handles resolved from the default metrics registry at construction
  // (all null when observability is detached).
  obs::Counter* busy_sample_ = nullptr;
  obs::Counter* busy_gather_ = nullptr;
  obs::Counter* busy_compute_ = nullptr;
  obs::Counter* stall_sample_ = nullptr;
  obs::Counter* stall_gather_ = nullptr;
  obs::Counter* stall_compute_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Gauge* depth_sampled_ = nullptr;
  obs::Gauge* depth_gathered_ = nullptr;
};

}  // namespace pipeline
}  // namespace aligraph

#endif  // ALIGRAPH_PIPELINE_BLOCK_PIPELINE_H_
