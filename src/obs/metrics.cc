#include "obs/metrics.h"

#include <algorithm>
#include <array>

namespace aligraph {
namespace obs {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return slot;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper edge to interpolate toward.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double frac = std::clamp(
          (rank - below) / static_cast<double>(counts[i]), 0.0, 1.0);
      return lo + (bounds[i] - lo) * frac;
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)), bounds_(bounds.begin(), bounds.end()) {
  shards_.reserve(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

void Histogram::Record(double v) {
  Shard& s = *shards_[ThreadShard()];
  const size_t b = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  // atomic<double>::fetch_add is C++20; relaxed is fine, reports only need
  // the eventual total.
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] += s->buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += s->count.load(std::memory_order_relaxed);
    snap.sum += s->sum.load(std::memory_order_relaxed);
  }
  return snap;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->count.load(std::memory_order_relaxed);
  }
  return total;
}

std::span<const double> LatencyBoundsUs() {
  static const std::array<double, 20> kBounds = {
      1,    2,    5,    10,   20,    50,    100,   200,   500,   1000,
      2000, 5000, 1e4,  2e4,  5e4,   1e5,   2e5,   5e5,   1e6,   1e7};
  return kBounds;
}

std::span<const double> SizeBounds() {
  static const std::array<double, 11> kBounds = {
      1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576};
  return kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = LatencyBoundsUs();
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

namespace {
std::atomic<MetricsRegistry*> g_default{nullptr};
}  // namespace

void SetDefault(MetricsRegistry* registry) {
  g_default.store(registry, std::memory_order_release);
}

MetricsRegistry* Default() {
  return g_default.load(std::memory_order_acquire);
}

Counter* DefaultCounter(const std::string& name) {
  MetricsRegistry* r = Default();
  return r == nullptr ? nullptr : r->GetCounter(name);
}

Gauge* DefaultGauge(const std::string& name) {
  MetricsRegistry* r = Default();
  return r == nullptr ? nullptr : r->GetGauge(name);
}

Histogram* DefaultHistogram(const std::string& name,
                            std::span<const double> bounds) {
  MetricsRegistry* r = Default();
  return r == nullptr ? nullptr : r->GetHistogram(name, bounds);
}

}  // namespace obs
}  // namespace aligraph
