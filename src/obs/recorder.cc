#include "obs/recorder.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "common/random.h"
#include "obs/report.h"
#include "obs/timeline.h"

namespace aligraph {
namespace obs {

namespace {

/// Deterministic slow-first order: larger total first, request id breaks
/// ties so equal-latency requests keep a stable order.
bool SlowerThan(const RequestBudget& a, const RequestBudget& b) {
  if (a.total_us != b.total_us) return a.total_us > b.total_us;
  return a.request_id < b.request_id;
}

void WriteBudgetComponents(JsonWriter& w, const RequestBudget& budget) {
  w.BeginObject();
  for (size_t c = 0; c < kNumBudgetComponents; ++c) {
    if (budget.components[c] == 0.0) continue;  // sparse: zeros are implied
    w.Key(BudgetComponentName(static_cast<BudgetComponent>(c)))
        .Value(budget.components[c]);
  }
  w.EndObject();
}

void WriteComponentArray(JsonWriter& w,
                         const std::array<double, kNumBudgetComponents>& v) {
  w.BeginObject();
  for (size_t c = 0; c < kNumBudgetComponents; ++c) {
    if (v[c] == 0.0) continue;
    w.Key(BudgetComponentName(static_cast<BudgetComponent>(c))).Value(v[c]);
  }
  w.EndObject();
}

void WriteCohort(JsonWriter& w, const CohortAttribution& cohort) {
  w.BeginObject();
  w.Key("requests").Value(static_cast<uint64_t>(cohort.requests));
  w.Key("threshold_us").Value(cohort.threshold_us);
  w.Key("total_us").Value(cohort.total_us);
  w.Key("mean_total_us").Value(cohort.mean_total_us);
  w.Key("mean_us");
  WriteComponentArray(w, cohort.mean_us);
  w.Key("share");
  WriteComponentArray(w, cohort.share);
  w.EndObject();
}

double NumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->IsNumber() ? v->number : fallback;
}

Status ParseComponents(const JsonValue& obj,
                       std::array<double, kNumBudgetComponents>* out) {
  if (!obj.IsObject()) {
    return Status::InvalidArgument("components must be an object");
  }
  for (const auto& [key, value] : obj.members) {
    auto component = BudgetComponentFromName(key);
    if (!component.ok()) return component.status();
    if (!value.IsNumber()) {
      return Status::InvalidArgument("component " + key + " is not a number");
    }
    (*out)[static_cast<size_t>(*component)] = value.number;
  }
  return Status::OK();
}

Status ParseCohort(const JsonValue& obj, CohortAttribution* out) {
  if (!obj.IsObject()) {
    return Status::InvalidArgument("cohort must be an object");
  }
  out->requests = static_cast<uint64_t>(NumberOr(obj.Find("requests"), 0));
  out->threshold_us = NumberOr(obj.Find("threshold_us"), 0);
  out->total_us = NumberOr(obj.Find("total_us"), 0);
  out->mean_total_us = NumberOr(obj.Find("mean_total_us"), 0);
  if (const JsonValue* mean = obj.Find("mean_us")) {
    auto st = ParseComponents(*mean, &out->mean_us);
    if (!st.ok()) return st;
  }
  if (const JsonValue* share = obj.Find("share")) {
    auto st = ParseComponents(*share, &out->share);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(config) {}

void FlightRecorder::Offer(const RequestBudget& budget,
                           std::map<std::string, uint64_t> counters) {
  const uint64_t n = offered_++;

  // Slowest-K over completed requests (shed requests have zero latency and
  // abandoned ones all share the deadline; the uniform reservoir covers
  // their population instead).
  if (config_.slowest_k > 0 &&
      budget.outcome == RequestBudget::Outcome::kCompleted) {
    const bool full = slowest_.size() >= config_.slowest_k;
    if (!full || SlowerThan(budget, slowest_.back().budget)) {
      auto pos = std::upper_bound(
          slowest_.begin(), slowest_.end(), budget,
          [](const RequestBudget& b, const Entry& e) {
            return SlowerThan(b, e.budget);
          });
      slowest_.insert(pos, Entry{budget, counters, {}});
      if (slowest_.size() > config_.slowest_k) slowest_.pop_back();
    }
  }

  // Uniform reservoir over every offered request. Replacement draws are a
  // pure hash of (seed, offer index), so the retained set is a function of
  // the offer stream alone — same run, same exemplars, every machine.
  if (config_.sample_k > 0) {
    if (sample_.size() < config_.sample_k) {
      sample_.push_back(Entry{budget, std::move(counters), {}});
    } else {
      const uint64_t j = Mix64(config_.seed ^ Mix64(n + 1)) % (n + 1);
      if (j < config_.sample_k) {
        sample_[static_cast<size_t>(j)] = Entry{budget, std::move(counters), {}};
      }
    }
  }
}

size_t FlightRecorder::CaptureTraces(const std::vector<SpanEvent>& events) {
  const TraceForest forest = AssembleTraces(events);
  std::unordered_map<uint64_t, const TraceTree*> by_id;
  by_id.reserve(forest.traces.size());
  for (const TraceTree& tree : forest.traces) by_id[tree.trace_id] = &tree;

  size_t matched = 0;
  const auto attach = [&](Entry& entry) {
    if (entry.budget.trace_id == 0 || !entry.spans.empty()) return;
    auto it = by_id.find(entry.budget.trace_id);
    if (it == by_id.end()) return;
    entry.spans.reserve(it->second->nodes.size());
    for (const TraceNode& node : it->second->nodes) {
      entry.spans.push_back(node.event);
    }
    ++matched;
  };
  for (Entry& e : slowest_) attach(e);
  for (Entry& e : sample_) attach(e);
  return matched;
}

void FlightRecorder::SetAttribution(const AttributionReport& report) {
  attribution_ = report;
  has_attribution_ = true;
}

std::vector<Exemplar> FlightRecorder::Exemplars() const {
  std::vector<Exemplar> out;
  out.reserve(slowest_.size() + sample_.size());
  for (const Entry& e : slowest_) {
    Exemplar ex;
    ex.budget = e.budget;
    ex.slow = true;
    ex.counters = e.counters;
    ex.spans = e.spans;
    out.push_back(std::move(ex));
  }
  std::vector<const Entry*> extra;
  for (const Entry& e : sample_) {
    bool dup = false;
    for (Exemplar& ex : out) {
      if (ex.budget.request_id == e.budget.request_id) {
        ex.sampled = true;
        dup = true;
        break;
      }
    }
    if (!dup) extra.push_back(&e);
  }
  std::sort(extra.begin(), extra.end(), [](const Entry* a, const Entry* b) {
    return a->budget.request_id < b->budget.request_id;
  });
  for (const Entry* e : extra) {
    Exemplar ex;
    ex.budget = e->budget;
    ex.sampled = true;
    ex.counters = e->counters;
    ex.spans = e->spans;
    out.push_back(std::move(ex));
  }
  return out;
}

std::string FlightRecorder::ToJson(const std::string& name) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(static_cast<uint64_t>(1));
  w.Key("name").Value(name);
  w.Key("offered").Value(offered_);
  w.Key("config").BeginObject();
  w.Key("slowest_k").Value(static_cast<uint64_t>(config_.slowest_k));
  w.Key("sample_k").Value(static_cast<uint64_t>(config_.sample_k));
  w.Key("seed").Value(config_.seed);
  w.EndObject();
  if (has_attribution_) {
    w.Key("attribution").BeginObject();
    w.Key("requests").Value(attribution_.requests);
    w.Key("p_low").Value(attribution_.p_low);
    w.Key("p_high").Value(attribution_.p_high);
    w.Key("coverage").Value(attribution_.coverage);
    w.Key("min_coverage").Value(attribution_.min_coverage);
    w.Key("low");
    WriteCohort(w, attribution_.low);
    w.Key("high");
    WriteCohort(w, attribution_.high);
    w.EndObject();
  }
  w.Key("exemplars").BeginArray();
  for (const Exemplar& ex : Exemplars()) {
    w.BeginObject();
    w.Key("request_id").Value(ex.budget.request_id);
    w.Key("trace_id").Value(ex.budget.trace_id);
    w.Key("outcome").Value(BudgetOutcomeName(ex.budget.outcome));
    w.Key("slow").Value(ex.slow);
    w.Key("sampled").Value(ex.sampled);
    w.Key("total_us").Value(ex.budget.total_us);
    w.Key("components");
    WriteBudgetComponents(w, ex.budget);
    w.Key("counters").BeginObject();
    for (const auto& [key, value] : ex.counters) w.Key(key).Value(value);
    w.EndObject();
    w.Key("spans").BeginArray();
    for (const SpanEvent& span : ex.spans) {
      w.BeginObject();
      w.Key("name").Value(span.name);
      w.Key("trace_id").Value(span.trace_id);
      w.Key("span_id").Value(span.span_id);
      w.Key("parent_span_id").Value(span.parent_span_id);
      w.Key("depth").Value(static_cast<uint64_t>(span.depth));
      w.Key("thread").Value(static_cast<uint64_t>(span.thread));
      w.Key("start_ns").Value(span.start_ns);
      w.Key("duration_ns").Value(span.duration_ns);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status FlightRecorder::WriteJson(const std::string& path,
                                 const std::string& name) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create " + p.parent_path().string() +
                             ": " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ToJson(name) << "\n";
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status FlightRecorder::WriteChromeTrace(const std::string& path) const {
  std::vector<SpanEvent> events;
  for (const Exemplar& ex : Exemplars()) {
    events.insert(events.end(), ex.spans.begin(), ex.spans.end());
  }
  return ::aligraph::obs::WriteChromeTrace(events, path);
}

Result<RecorderDump> ParseRecorderDump(std::string_view json) {
  auto parsed = JsonValue::Parse(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = *parsed;
  if (!doc.IsObject()) {
    return Status::InvalidArgument("recorder dump is not an object");
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->IsNumber()) {
    return Status::InvalidArgument(
        "recorder dump has no schema_version — not a flight-recorder dump");
  }
  if (version->number != 1.0) {
    return Status::InvalidArgument("unsupported recorder dump schema_version");
  }
  RecorderDump dump;
  if (const JsonValue* name = doc.Find("name"); name && name->IsString()) {
    dump.name = name->string_value;
  }
  dump.offered = static_cast<uint64_t>(NumberOr(doc.Find("offered"), 0));
  if (const JsonValue* cfg = doc.Find("config"); cfg && cfg->IsObject()) {
    dump.config.slowest_k =
        static_cast<size_t>(NumberOr(cfg->Find("slowest_k"), 0));
    dump.config.sample_k =
        static_cast<size_t>(NumberOr(cfg->Find("sample_k"), 0));
    dump.config.seed = static_cast<uint64_t>(NumberOr(cfg->Find("seed"), 0));
  }
  if (const JsonValue* attr = doc.Find("attribution")) {
    if (!attr->IsObject()) {
      return Status::InvalidArgument("attribution must be an object");
    }
    dump.has_attribution = true;
    dump.attribution.requests =
        static_cast<uint64_t>(NumberOr(attr->Find("requests"), 0));
    dump.attribution.p_low = NumberOr(attr->Find("p_low"), 50.0);
    dump.attribution.p_high = NumberOr(attr->Find("p_high"), 99.0);
    dump.attribution.coverage = NumberOr(attr->Find("coverage"), 1.0);
    dump.attribution.min_coverage = NumberOr(attr->Find("min_coverage"), 1.0);
    if (const JsonValue* low = attr->Find("low")) {
      auto st = ParseCohort(*low, &dump.attribution.low);
      if (!st.ok()) return st;
    }
    if (const JsonValue* high = attr->Find("high")) {
      auto st = ParseCohort(*high, &dump.attribution.high);
      if (!st.ok()) return st;
    }
  }
  const JsonValue* exemplars = doc.Find("exemplars");
  if (exemplars != nullptr) {
    if (!exemplars->IsArray()) {
      return Status::InvalidArgument("exemplars must be an array");
    }
    for (const JsonValue& item : exemplars->items) {
      if (!item.IsObject()) {
        return Status::InvalidArgument("exemplar must be an object");
      }
      Exemplar ex;
      ex.budget.request_id =
          static_cast<uint64_t>(NumberOr(item.Find("request_id"), 0));
      ex.budget.trace_id =
          static_cast<uint64_t>(NumberOr(item.Find("trace_id"), 0));
      if (const JsonValue* outcome = item.Find("outcome");
          outcome && outcome->IsString()) {
        auto parsed_outcome = BudgetOutcomeFromName(outcome->string_value);
        if (!parsed_outcome.ok()) return parsed_outcome.status();
        ex.budget.outcome = *parsed_outcome;
      }
      if (const JsonValue* slow = item.Find("slow")) {
        ex.slow = slow->bool_value;
      }
      if (const JsonValue* sampled = item.Find("sampled")) {
        ex.sampled = sampled->bool_value;
      }
      ex.budget.total_us = NumberOr(item.Find("total_us"), 0);
      if (const JsonValue* comps = item.Find("components")) {
        auto st = ParseComponents(*comps, &ex.budget.components);
        if (!st.ok()) return st;
      }
      if (const JsonValue* counters = item.Find("counters");
          counters && counters->IsObject()) {
        for (const auto& [key, value] : counters->members) {
          if (!value.IsNumber()) {
            return Status::InvalidArgument("counter " + key +
                                           " is not a number");
          }
          ex.counters[key] = static_cast<uint64_t>(value.number);
        }
      }
      if (const JsonValue* spans = item.Find("spans");
          spans && spans->IsArray()) {
        for (const JsonValue& sv : spans->items) {
          if (!sv.IsObject()) {
            return Status::InvalidArgument("span must be an object");
          }
          SpanEvent span;
          if (const JsonValue* name = sv.Find("name");
              name && name->IsString()) {
            span.name = name->string_value;
          }
          span.trace_id =
              static_cast<uint64_t>(NumberOr(sv.Find("trace_id"), 0));
          span.span_id =
              static_cast<uint64_t>(NumberOr(sv.Find("span_id"), 0));
          span.parent_span_id =
              static_cast<uint64_t>(NumberOr(sv.Find("parent_span_id"), 0));
          span.depth = static_cast<uint32_t>(NumberOr(sv.Find("depth"), 0));
          span.thread = static_cast<uint32_t>(NumberOr(sv.Find("thread"), 0));
          span.start_ns =
              static_cast<int64_t>(NumberOr(sv.Find("start_ns"), 0));
          span.duration_ns =
              static_cast<int64_t>(NumberOr(sv.Find("duration_ns"), 0));
          ex.spans.push_back(std::move(span));
        }
      }
      dump.exemplars.push_back(std::move(ex));
    }
  }
  return dump;
}

}  // namespace obs
}  // namespace aligraph
