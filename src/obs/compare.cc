#include "obs/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace aligraph {
namespace obs {

double MetricResult::RelativeDelta() const {
  if (baseline == 0) return 0;
  return candidate / baseline - 1.0;
}

namespace {

const char* VerdictLabel(MetricVerdict v) {
  switch (v) {
    case MetricVerdict::kPass: return "ok";
    case MetricVerdict::kImproved: return "improved";
    case MetricVerdict::kRegressed: return "REGRESSED";
    case MetricVerdict::kMissing: return "MISSING";
  }
  return "?";
}

}  // namespace

std::string CompareResult::ToString() const {
  // Failures first, then the largest movers, so the gate's one-screen
  // output leads with what broke.
  std::vector<const MetricResult*> order;
  order.reserve(metrics.size());
  for (const MetricResult& m : metrics) order.push_back(&m);
  std::sort(order.begin(), order.end(),
            [](const MetricResult* a, const MetricResult* b) {
              const bool a_bad = a->verdict == MetricVerdict::kRegressed ||
                                 a->verdict == MetricVerdict::kMissing;
              const bool b_bad = b->verdict == MetricVerdict::kRegressed ||
                                 b->verdict == MetricVerdict::kMissing;
              if (a_bad != b_bad) return a_bad;
              return std::abs(a->RelativeDelta()) >
                     std::abs(b->RelativeDelta());
            });
  std::ostringstream os;
  char buf[160];
  for (const MetricResult* m : order) {
    if (m->verdict == MetricVerdict::kMissing) {
      std::snprintf(buf, sizeof(buf),
                    "%-48s baseline=%-12.6g absent from candidate  %s",
                    m->name.c_str(), m->baseline, VerdictLabel(m->verdict));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-48s baseline=%-12.6g candidate=%-12.6g %+7.2f%% "
                    "(tol %.0f%%)  %s",
                    m->name.c_str(), m->baseline, m->candidate,
                    100.0 * m->RelativeDelta(), 100.0 * m->tolerance,
                    VerdictLabel(m->verdict));
    }
    os << buf << "\n";
  }
  std::snprintf(buf, sizeof(buf),
                "%zu metric(s): %zu regressed, %zu missing, %zu improved",
                metrics.size(), regressed, missing, improved);
  os << buf;
  return os.str();
}

Result<CompareResult> CompareReports(const JsonValue& baseline,
                                     const JsonValue& candidate,
                                     const CompareOptions& options) {
  return CompareReports(baseline, std::vector<const JsonValue*>{&candidate},
                        options);
}

Result<CompareResult> CompareReports(
    const JsonValue& baseline, const std::vector<const JsonValue*>& candidates,
    const CompareOptions& options) {
  const JsonValue* base_metrics = baseline.Find("metrics");
  if (base_metrics == nullptr || !base_metrics->IsObject()) {
    return Status::InvalidArgument("baseline has no \"metrics\" object");
  }
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate reports");
  }
  std::vector<const JsonValue*> cand_metrics;
  cand_metrics.reserve(candidates.size());
  for (const JsonValue* candidate : candidates) {
    const JsonValue* metrics = candidate->Find("metrics");
    if (metrics == nullptr || !metrics->IsObject()) {
      return Status::InvalidArgument("candidate has no \"metrics\" object");
    }
    cand_metrics.push_back(metrics);
  }

  CompareResult result;
  for (const auto& [name, value] : base_metrics->members) {
    if (!value.IsNumber()) {
      return Status::InvalidArgument("baseline metric \"" + name +
                                     "\" is not a number");
    }
    MetricResult m;
    m.name = name;
    m.baseline = value.number;
    auto tol = options.per_metric_tolerance.find(name);
    m.tolerance = tol == options.per_metric_tolerance.end()
                      ? options.default_tolerance
                      : tol->second;
    auto slack_it = options.per_metric_slack.find(name);
    const double slack = slack_it == options.per_metric_slack.end()
                             ? options.absolute_slack
                             : slack_it->second;

    // Last candidate report carrying the metric wins.
    const JsonValue* cand = nullptr;
    for (auto it = cand_metrics.rbegin(); it != cand_metrics.rend(); ++it) {
      const JsonValue* found = (*it)->Find(name);
      if (found != nullptr && found->IsNumber()) {
        cand = found;
        break;
      }
    }
    if (cand == nullptr) {
      m.verdict = MetricVerdict::kMissing;
      ++result.missing;
      result.metrics.push_back(std::move(m));
      continue;
    }
    m.candidate = cand->number;
    if (options.higher_is_better.count(name) != 0) {
      const double bound = m.baseline * (1.0 - m.tolerance) - slack;
      if (m.candidate < bound) {
        m.verdict = MetricVerdict::kRegressed;
        ++result.regressed;
      } else if (m.candidate > m.baseline) {
        m.verdict = MetricVerdict::kImproved;
        ++result.improved;
      }
    } else {
      const double bound = m.baseline * (1.0 + m.tolerance) + slack;
      if (m.candidate > bound) {
        m.verdict = MetricVerdict::kRegressed;
        ++result.regressed;
      } else if (m.candidate < m.baseline) {
        m.verdict = MetricVerdict::kImproved;
        ++result.improved;
      }
    }
    result.metrics.push_back(std::move(m));
  }
  return result;
}

Result<CompareResult> CompareReportJson(const std::string& baseline_json,
                                        const std::string& candidate_json,
                                        const CompareOptions& options) {
  auto base = JsonValue::Parse(baseline_json);
  if (!base.ok()) {
    return Status::InvalidArgument("baseline: " +
                                   base.status().ToString());
  }
  auto cand = JsonValue::Parse(candidate_json);
  if (!cand.ok()) {
    return Status::InvalidArgument("candidate: " +
                                   cand.status().ToString());
  }
  return CompareReports(*base, *cand, options);
}

}  // namespace obs
}  // namespace aligraph
