#include "obs/window.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aligraph {
namespace obs {

WindowedSeries::WindowedSeries(double interval_us, size_t capacity,
                               std::span<const double> bounds)
    : interval_us_(interval_us),
      capacity_(capacity == 0 ? 1 : capacity),
      bounds_(bounds.begin(), bounds.end()) {
  ALIGRAPH_CHECK_GT(interval_us_, 0.0);
}

SeriesWindow* WindowedSeries::WindowFor(int64_t w) {
  if (windows_.empty()) {
    windows_.push_back(SeriesWindow{});
    windows_.back().index = w;
    if (!bounds_.empty()) windows_.back().buckets.assign(bounds_.size() + 1, 0);
    return &windows_.back();
  }
  // A jump past the whole ring makes every retained window stale: fold
  // them into the eviction tallies and restart at `w` instead of
  // materializing an unbounded run of empty windows.
  if (w - windows_.back().index > static_cast<int64_t>(capacity_)) {
    for (const SeriesWindow& old : windows_) {
      evicted_count_ += old.count;
      evicted_sum_ += old.sum;
    }
    windows_.clear();
    windows_.push_back(SeriesWindow{});
    windows_.back().index = w;
    if (!bounds_.empty()) windows_.back().buckets.assign(bounds_.size() + 1, 0);
    return &windows_.back();
  }
  // Materialize forward so the retained range stays contiguous (a quiet
  // window is a data point, not a gap), evicting from the front once the
  // ring is full.
  while (w > windows_.back().index) {
    SeriesWindow next;
    next.index = windows_.back().index + 1;
    if (!bounds_.empty()) next.buckets.assign(bounds_.size() + 1, 0);
    windows_.push_back(std::move(next));
    while (windows_.size() > capacity_) {
      evicted_count_ += windows_.front().count;
      evicted_sum_ += windows_.front().sum;
      windows_.pop_front();
    }
  }
  if (w < windows_.front().index) return nullptr;  // fell off the ring
  return &windows_[static_cast<size_t>(w - windows_.front().index)];
}

void WindowedSeries::Record(double t_us, double value) {
  total_count_ += 1;
  total_sum_ += value;
  SeriesWindow* win =
      WindowFor(static_cast<int64_t>(std::floor(t_us / interval_us_)));
  if (win == nullptr) {
    evicted_count_ += 1;
    evicted_sum_ += value;
    return;
  }
  win->count += 1;
  win->sum += value;
  if (!bounds_.empty()) {
    const size_t b = static_cast<size_t>(
        std::upper_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    win->buckets[b] += 1;
  }
}

void WindowedSeries::Count(double t_us, uint64_t n) {
  if (n == 0) return;
  total_count_ += n;
  SeriesWindow* win =
      WindowFor(static_cast<int64_t>(std::floor(t_us / interval_us_)));
  if (win == nullptr) {
    evicted_count_ += n;
    return;
  }
  win->count += n;
}

void WindowedSeries::SampleCumulative(double t_us, uint64_t cumulative) {
  if (!have_cumulative_base_) {
    have_cumulative_base_ = true;
    cumulative_base_ = cumulative;
    return;
  }
  ALIGRAPH_CHECK_GE(cumulative, cumulative_base_)
      << "SampleCumulative requires a monotone source";
  const uint64_t delta = cumulative - cumulative_base_;
  cumulative_base_ = cumulative;
  Count(t_us, delta);
}

int64_t WindowedSeries::first_index() const {
  return windows_.empty() ? 0 : windows_.front().index;
}

int64_t WindowedSeries::last_index() const {
  return windows_.empty() ? -1 : windows_.back().index;
}

SeriesWindow WindowedSeries::At(int64_t index) const {
  SeriesWindow out;
  out.index = index;
  if (windows_.empty() || index < windows_.front().index ||
      index > windows_.back().index) {
    if (!bounds_.empty()) out.buckets.assign(bounds_.size() + 1, 0);
    return out;
  }
  return windows_[static_cast<size_t>(index - windows_.front().index)];
}

double WindowedSeries::RatePerSec(int64_t index) const {
  return static_cast<double>(At(index).count) / (interval_us_ * 1e-6);
}

double WindowedSeries::Percentile(int64_t index, double p) const {
  if (bounds_.empty()) return 0.0;
  const SeriesWindow win = At(index);
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts = win.buckets;
  snap.sum = win.sum;
  // Bucketed observations only: Count()-style events carry no value and
  // must not dilute the percentile rank.
  for (const uint64_t c : win.buckets) snap.count += c;
  return snap.Percentile(p);
}

uint64_t WindowedSeries::retained_count() const {
  uint64_t total = 0;
  for (const SeriesWindow& w : windows_) total += w.count;
  return total;
}

}  // namespace obs
}  // namespace aligraph
