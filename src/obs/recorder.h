/// \file recorder.h
/// \brief Slow-request flight recorder: a bounded reservoir of request
/// exemplars — the K slowest plus a deterministic uniform sample — each
/// carrying its latency budget, per-request counters, and (captured
/// retroactively from the span rings) its full causal trace tree.
///
/// Aggregates answer "how slow is p99"; the flight recorder answers "show
/// me one". The serving sim offers every request's RequestBudget as it
/// retires; the recorder keeps
///   - the `slowest_k` COMPLETED requests by modeled latency (the p99
///     exemplars a tail investigation starts from), and
///   - a `sample_k` uniform reservoir over ALL offered requests (so shed
///     and abandoned requests appear in proportion, giving the baseline
///     cohort to contrast against),
/// both bounded, both deterministic: the reservoir's replacement draws are
/// a pure hash of (seed, offer index), so the same run keeps the same
/// exemplars on every machine.
///
/// Trace trees are attached AFTER the run: budgets carry their root span's
/// trace id, and CaptureTraces() walks the tracer's retained events once,
/// assembling trees only for retained exemplars. Nothing is paid per
/// request beyond the budget copy — the span rings already hold the data,
/// the recorder just stops it from being overwritten anonymously.
///
/// Dumps: WriteJson() emits a self-contained dump (budgets, counters,
/// spans, plus the run's AttributionReport) that tools/trace_attrib reads
/// back via ParseRecorderDump; WriteChromeTrace() exports the union of the
/// exemplars' spans for chrome://tracing / Perfetto.

#ifndef ALIGRAPH_OBS_RECORDER_H_
#define ALIGRAPH_OBS_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/attrib.h"
#include "obs/trace.h"

namespace aligraph {
namespace obs {

/// \brief Reservoir shape.
struct FlightRecorderConfig {
  size_t slowest_k = 8;  ///< completed requests retained by latency
  size_t sample_k = 8;   ///< uniform reservoir over all offered requests
  uint64_t seed = 1;     ///< reservoir replacement hash seed
};

/// \brief One retained request.
struct Exemplar {
  RequestBudget budget;
  bool slow = false;     ///< retained among the K slowest
  bool sampled = false;  ///< retained by the uniform reservoir
  /// Per-request counter deltas (sampled edges, gathered rows, per-phase
  /// CommStats fields, ...), free-form.
  std::map<std::string, uint64_t> counters;
  /// The request's causal spans (empty until CaptureTraces, or when the
  /// request was recorded with tracing detached).
  std::vector<SpanEvent> spans;
};

/// \brief Bounded exemplar reservoir. Offer() from ONE logical stream (the
/// sim's single-threaded sample stage); capture/dump at quiescent points.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  const FlightRecorderConfig& config() const { return config_; }

  /// Considers one retired request. Budgets with Outcome::kCompleted
  /// compete for the slowest-K; every offer feeds the uniform reservoir.
  void Offer(const RequestBudget& budget,
             std::map<std::string, uint64_t> counters = {});

  /// Requests offered so far.
  uint64_t offered() const { return offered_; }

  /// Attaches each retained exemplar's trace tree from `events` (matched
  /// by the budget's trace id). Returns how many exemplars got a tree.
  size_t CaptureTraces(const std::vector<SpanEvent>& events);

  /// Stores the run's cohort attribution so the dump is self-contained.
  void SetAttribution(const AttributionReport& report);

  /// Retained exemplars: slowest first (descending total), then the
  /// remaining uniform samples in request-id order. A request retained by
  /// both reservoirs appears once with both flags.
  std::vector<Exemplar> Exemplars() const;

  /// Self-contained JSON dump (schema_version 1; see ParseRecorderDump).
  std::string ToJson(const std::string& name) const;
  Status WriteJson(const std::string& path, const std::string& name) const;

  /// Chrome trace_event export of the union of the exemplars' spans.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Entry {
    RequestBudget budget;
    std::map<std::string, uint64_t> counters;
    std::vector<SpanEvent> spans;
  };

  FlightRecorderConfig config_;
  uint64_t offered_ = 0;
  std::vector<Entry> slowest_;  ///< descending total_us, <= slowest_k
  std::vector<Entry> sample_;   ///< reservoir slots, <= sample_k
  AttributionReport attribution_;
  bool has_attribution_ = false;
};

/// \brief Parsed flight-recorder dump (for tools/trace_attrib).
struct RecorderDump {
  std::string name;
  uint64_t offered = 0;
  FlightRecorderConfig config;
  bool has_attribution = false;
  AttributionReport attribution;
  std::vector<Exemplar> exemplars;
};

/// Parses a dump produced by FlightRecorder::ToJson. InvalidArgument on
/// malformed documents or unknown component/outcome names.
Result<RecorderDump> ParseRecorderDump(std::string_view json);

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_RECORDER_H_
