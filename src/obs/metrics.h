/// \file metrics.h
/// \brief Process-wide metrics registry: named counters, gauges and
/// fixed-bucket histograms with per-thread sharding.
///
/// Every headline number of the paper's evaluation is a measurement, so the
/// system layers export their counters through one substrate instead of
/// ad-hoc per-class fields. Hot-path increments follow the same discipline
/// as the lock-free request buckets: a counter is an array of cache-line
/// padded atomic cells, each thread hashes to its own cell, and increments
/// are relaxed fetch-adds — no shared cache line, no lock, no contention.
/// Reads (Value / Snapshot) sum the cells; they are monotonic but not a
/// consistent cut across metrics, which is all benches and reports need.
///
/// Attachment model: instrumented components look up their handles from the
/// process-wide default registry (SetDefault) at construction time and keep
/// raw pointers; when no registry is attached the handles are null and the
/// instrumented paths reduce to one branch. Handles stay valid for the
/// lifetime of the registry — metrics are never removed.

#ifndef ALIGRAPH_OBS_METRICS_H_
#define ALIGRAPH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace aligraph {
namespace obs {

/// Number of per-thread shards per metric. Threads are assigned shards
/// round-robin; with up to kNumShards concurrent writers every increment
/// lands on a private cache line.
inline constexpr size_t kNumShards = 16;

/// Round-robin shard index of the calling thread (stable per thread).
size_t ThreadShard();

/// \brief Monotonic counter with per-thread sharded cells.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : shards_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };

  std::string name_;
  Cell shards_[kNumShards];
};

/// \brief Last-write-wins floating point gauge (no sharding: gauges are
/// set from bookkeeping paths, not hot loops).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// \brief Plain (copyable) histogram state for reports and tests.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< bucket upper bounds, ascending
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 buckets (last = overflow)
  uint64_t count = 0;
  double sum = 0;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Approximate percentile for p in [0, 100]: locates the bucket containing
  /// the rank and interpolates linearly within it (assuming values spread
  /// uniformly across the bucket), so fine tail percentiles — p99.9 for a
  /// serving latency SLO — resolve below the bucket's upper bound instead of
  /// snapping to it. The overflow bucket has no upper edge and degrades to
  /// the last finite bound.
  double Percentile(double p) const;
};

/// \brief Fixed-bucket histogram with per-thread sharded bucket counts.
///
/// Bucket i counts values <= bounds[i]; values above the last bound land in
/// an overflow bucket. Record is lock-free: one binary search plus three
/// relaxed atomic adds on the caller's shard.
class Histogram {
 public:
  void Record(double v);

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::span<const double> bounds);

  struct alignas(64) Shard {
    explicit Shard(size_t num_buckets) : buckets(num_buckets) {}
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Exponential microsecond latency bounds: 1us .. 10s.
std::span<const double> LatencyBoundsUs();

/// Power-of-4 size bounds for frontier / fan-out / batch sizes: 1 .. ~1M.
std::span<const double> SizeBounds();

/// \brief Consistent-enough copy of a whole registry for report writing.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief Named metric registry. Get* creates on first use and returns a
/// stable handle; lookups take a mutex (do them at setup time, not per
/// increment), increments through the handles are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used on first creation only (defaults to LatencyBoundsUs).
  Histogram* GetHistogram(const std::string& name,
                          std::span<const double> bounds = {});

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide default registry (null = observability detached).
void SetDefault(MetricsRegistry* registry);
MetricsRegistry* Default();

/// Handle from the default registry, or null when detached.
Counter* DefaultCounter(const std::string& name);
Gauge* DefaultGauge(const std::string& name);
Histogram* DefaultHistogram(const std::string& name,
                            std::span<const double> bounds = {});

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_METRICS_H_
