/// \file trace.h
/// \brief Scoped tracing: RAII spans recorded into per-thread ring buffers
/// and aggregated into per-stage wall-time breakdowns.
///
/// A ScopedSpan times one stage of a pipeline ("sample/hop0",
/// "aggregate/fwd", ...). Spans nest: a thread-local depth counter tracks
/// the nesting level so aggregation can tell stages from their sub-stages.
/// Completed spans are appended to a per-thread ring buffer owned by the
/// active Tracer — recording is wait-free for the owning thread (one index
/// publish with release ordering, no locks) and costs two clock reads plus
/// one ring write. When no tracer is attached a span is a single relaxed
/// atomic load and nothing else, which is what lets instrumentation stay on
/// in production code paths.
///
/// Aggregate() folds every thread's ring into a name -> {count, total,
/// min, max} map. It is meant to be called at quiescent points (end of a
/// bench phase / test); spans recorded concurrently with Aggregate may be
/// partially missed but never corrupt the aggregate's memory. If a thread
/// records more spans than the ring holds, the oldest records are
/// overwritten and counted in dropped_records().

#ifndef ALIGRAPH_OBS_TRACE_H_
#define ALIGRAPH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aligraph {
namespace obs {

/// \brief Aggregated statistics of one span name.
struct SpanStats {
  uint64_t count = 0;
  double total_us = 0;
  double min_us = 0;
  double max_us = 0;
  uint32_t depth = 0;  ///< nesting level observed for this name (1 = root)

  double mean_us() const {
    return count == 0 ? 0.0 : total_us / static_cast<double>(count);
  }
};

/// \brief Owner of the per-thread span rings. Attach with SetDefaultTracer;
/// ScopedSpan picks the attached tracer up automatically.
class Tracer {
 public:
  /// \param ring_capacity completed spans retained per thread (power of two
  ///        not required).
  explicit Tracer(size_t ring_capacity = 1 << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Per-name wall-time breakdown over all threads' retained records.
  std::map<std::string, SpanStats> Aggregate() const;

  /// Records that fell out of a ring before aggregation (0 in well-sized
  /// runs; reported so truncation is never silent).
  uint64_t dropped_records() const;

  /// Appends a completed span (called by ScopedSpan; public for tests).
  /// `name` must outlive the tracer — pass string literals.
  void Record(const char* name, uint32_t depth, int64_t duration_ns);

 private:
  struct SpanRecord {
    const char* name = nullptr;
    uint32_t depth = 0;
    int64_t duration_ns = 0;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity) : records(capacity) {}
    std::vector<SpanRecord> records;
    /// Monotonic count of records ever written; slot = head % capacity.
    std::atomic<uint64_t> head{0};
  };

  ThreadBuffer* BufferForThisThread();

  const size_t ring_capacity_;
  const uint64_t generation_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Process-wide default tracer (null = tracing detached).
void SetDefaultTracer(Tracer* tracer);
Tracer* DefaultTracer();

/// Current span nesting depth of the calling thread (0 outside any span).
uint32_t CurrentSpanDepth();

/// \brief RAII span: starts timing on construction, records into the
/// default tracer on destruction. No-op (one atomic load) when detached.
///
/// The optional `latency_us` histogram receives the same duration in
/// microseconds, reusing the span's clock reads — cheaper than timing the
/// scope twice when a stage wants both a span and a latency distribution.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency_us = nullptr)
      : tracer_(DefaultTracer()), latency_us_(latency_us) {
    if (tracer_ == nullptr && latency_us_ == nullptr) return;
    name_ = name;
    if (tracer_ != nullptr) depth_ = EnterSpan();
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr && latency_us_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const int64_t duration_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
    if (latency_us_ != nullptr) {
      latency_us_->Record(static_cast<double>(duration_ns) * 1e-3);
    }
    if (tracer_ == nullptr) return;
    LeaveSpan();
    tracer_->Record(name_, depth_, duration_ns);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static uint32_t EnterSpan();  ///< ++depth, returns the new depth
  static void LeaveSpan();      ///< --depth

  Tracer* tracer_;
  Histogram* latency_us_;
  const char* name_ = nullptr;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_TRACE_H_
