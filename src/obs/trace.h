/// \file trace.h
/// \brief Scoped tracing: RAII spans recorded into per-thread ring buffers,
/// aggregated into per-stage wall-time breakdowns AND causally linked into
/// per-request trace trees.
///
/// A ScopedSpan times one stage of a pipeline ("sample/hop0",
/// "aggregate/fwd", ...). Spans nest: a thread-local depth counter tracks
/// the nesting level so aggregation can tell stages from their sub-stages.
/// Completed spans are appended to a per-thread ring buffer owned by the
/// active Tracer — recording is wait-free for the owning thread (one index
/// publish with release ordering, no locks) and costs two clock reads plus
/// one ring write. When no tracer is attached a span is a single relaxed
/// atomic load and nothing else, which is what lets instrumentation stay on
/// in production code paths.
///
/// Causal model (Dapper-style): every span carries a TraceContext — a
/// process-unique trace id plus its own span id — and records the span id
/// of its parent. A span opened while no trace is active MINTS a new trace
/// (trace_id == its span id, parent 0), so each top-level request span is
/// automatically the single root of its trace. A span opened inside another
/// span inherits the trace and parents under it. Cross-thread handoffs
/// (BucketExecutor submissions, ThreadPool tasks) capture the submitter's
/// CurrentTraceContext() and adopt it on the worker thread with a
/// ScopedTraceContext, so consumer-side spans stay children of the
/// submitting span instead of starting disconnected roots.
///
/// Aggregate() folds every thread's ring into a name -> {count, total,
/// min, max} map; Events() returns the raw causally-linked records for
/// timeline export and critical-path analysis (see timeline.h). Both are
/// meant to be called at quiescent points (end of a bench phase / test);
/// records landing concurrently may be partially missed but never corrupt
/// memory. If a thread records more spans than the ring holds, the oldest
/// records are overwritten and counted in dropped_records().

#ifndef ALIGRAPH_OBS_TRACE_H_
#define ALIGRAPH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace aligraph {
namespace obs {

/// \brief Aggregated statistics of one span name.
struct SpanStats {
  uint64_t count = 0;
  double total_us = 0;
  double min_us = 0;
  double max_us = 0;
  uint32_t depth = 0;  ///< nesting level observed for this name (1 = root)

  double mean_us() const {
    return count == 0 ? 0.0 : total_us / static_cast<double>(count);
  }
};

/// \brief The causal position of the calling thread: which trace it is in
/// and which span id new child spans should parent under. trace_id == 0
/// means "no active trace" — the next span mints a fresh one.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// Thread-local context of the calling thread.
TraceContext CurrentTraceContext();

/// Process-unique span/trace id, never 0. Threads draw from block-allocated
/// ranges so the hot path is one thread-local increment.
uint64_t NextSpanId();

/// \brief RAII adoption of a captured TraceContext on another thread: spans
/// opened while this is alive parent under ctx.span_id in ctx.trace_id.
/// Executors wrap handed-off closures in one of these so parentage survives
/// the thread hop; restores the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

/// \brief One completed, causally-linked span record (see Tracer::Events).
struct SpanEvent {
  std::string name;
  uint64_t trace_id = 0;        ///< 0 = recorded outside any trace
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  ///< 0 = root of its trace
  uint32_t depth = 0;
  uint32_t thread = 0;    ///< recording thread's ring index (stable)
  int64_t start_ns = 0;   ///< relative to the tracer's epoch
  int64_t duration_ns = 0;

  int64_t end_ns() const { return start_ns + duration_ns; }
};

/// \brief Owner of the per-thread span rings. Attach with SetDefaultTracer;
/// ScopedSpan picks the attached tracer up automatically.
class Tracer {
 public:
  /// \param ring_capacity completed spans retained per thread (power of two
  ///        not required).
  explicit Tracer(size_t ring_capacity = 1 << 15);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Per-name wall-time breakdown over all threads' retained records.
  std::map<std::string, SpanStats> Aggregate() const;

  /// Every retained record with its causal links, across all threads,
  /// ordered by (thread, recording order). Call at quiescent points.
  std::vector<SpanEvent> Events() const;

  /// Records that fell out of a ring before aggregation (0 in well-sized
  /// runs; reported so truncation is never silent).
  uint64_t dropped_records() const;

  /// Appends a completed span (called by ScopedSpan; public for tests).
  /// `name` must outlive the tracer — pass string literals. `start` is the
  /// span's steady-clock start; Events() rebases it onto the tracer epoch.
  void Record(const char* name, uint32_t depth, TraceContext ctx,
              uint64_t parent_span_id,
              std::chrono::steady_clock::time_point start,
              int64_t duration_ns);

  /// Legacy aggregate-only record: no causal links, no timestamp. Kept for
  /// tests that only exercise Aggregate().
  void Record(const char* name, uint32_t depth, int64_t duration_ns) {
    Record(name, depth, TraceContext{}, 0, epoch_, duration_ns);
  }

 private:
  struct SpanRecord {
    const char* name = nullptr;
    uint32_t depth = 0;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    int64_t start_ns = 0;  ///< already rebased onto the tracer epoch
    int64_t duration_ns = 0;
  };

  struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity) : records(capacity) {}
    std::vector<SpanRecord> records;
    /// Monotonic count of records ever written; slot = head % capacity.
    std::atomic<uint64_t> head{0};
  };

  ThreadBuffer* BufferForThisThread();

  const size_t ring_capacity_;
  const uint64_t generation_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// Process-wide default tracer (null = tracing detached).
void SetDefaultTracer(Tracer* tracer);
Tracer* DefaultTracer();

/// Current span nesting depth of the calling thread (0 outside any span).
uint32_t CurrentSpanDepth();

/// \brief RAII span: starts timing on construction, records into the
/// default tracer on destruction. No-op (one atomic load) when detached.
///
/// The optional `latency_us` histogram receives the same duration in
/// microseconds, reusing the span's clock reads — cheaper than timing the
/// scope twice when a stage wants both a span and a latency distribution.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency_us = nullptr)
      : tracer_(DefaultTracer()), latency_us_(latency_us) {
    if (tracer_ == nullptr && latency_us_ == nullptr) return;
    name_ = name;
    if (tracer_ != nullptr) {
      depth_ = EnterSpan();
      prev_ = PushContext();
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr && latency_us_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    const int64_t duration_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
    if (latency_us_ != nullptr) {
      latency_us_->Record(static_cast<double>(duration_ns) * 1e-3);
    }
    if (tracer_ == nullptr) return;
    const TraceContext self = CurrentTraceContext();
    PopContext(prev_);
    LeaveSpan();
    tracer_->Record(name_, depth_, self, prev_.span_id, start_, duration_ns);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static uint32_t EnterSpan();  ///< ++depth, returns the new depth
  static void LeaveSpan();      ///< --depth

  /// Mints this span's ids (inheriting or starting a trace), installs them
  /// as the thread context, and returns the PREVIOUS context.
  static TraceContext PushContext();
  static void PopContext(TraceContext prev);

  Tracer* tracer_;
  Histogram* latency_us_;
  const char* name_ = nullptr;
  uint32_t depth_ = 0;
  TraceContext prev_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_TRACE_H_
