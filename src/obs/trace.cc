#include "obs/trace.h"

#include <algorithm>

namespace aligraph {
namespace obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<uint64_t> g_tracer_generation{0};

thread_local uint32_t tl_depth = 0;
// Cached (tracer generation, buffer) so a thread registers with a tracer
// once; a stale cache from a destroyed tracer fails the generation check
// and is never dereferenced.
thread_local uint64_t tl_buffer_generation = 0;
thread_local void* tl_buffer = nullptr;

}  // namespace

Tracer::Tracer(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      generation_(g_tracer_generation.fetch_add(1,
                                                std::memory_order_relaxed) +
                  1) {}

Tracer::~Tracer() {
  if (DefaultTracer() == this) SetDefaultTracer(nullptr);
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tl_buffer_generation == generation_) {
    return static_cast<ThreadBuffer*>(tl_buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(ring_capacity_));
  tl_buffer = buffers_.back().get();
  tl_buffer_generation = generation_;
  return buffers_.back().get();
}

void Tracer::Record(const char* name, uint32_t depth, int64_t duration_ns) {
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t h = buf->head.load(std::memory_order_relaxed);
  SpanRecord& rec = buf->records[h % buf->records.size()];
  rec.name = name;
  rec.depth = depth;
  rec.duration_ns = duration_ns;
  buf->head.store(h + 1, std::memory_order_release);
}

std::map<std::string, SpanStats> Tracer::Aggregate() const {
  std::map<std::string, SpanStats> agg;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const uint64_t n = buf->head.load(std::memory_order_acquire);
    const uint64_t cap = buf->records.size();
    const uint64_t first = n > cap ? n - cap : 0;
    for (uint64_t i = first; i < n; ++i) {
      const SpanRecord& rec = buf->records[i % cap];
      SpanStats& s = agg[rec.name];
      const double us = static_cast<double>(rec.duration_ns) * 1e-3;
      if (s.count == 0) {
        s.min_us = us;
        s.max_us = us;
      } else {
        s.min_us = std::min(s.min_us, us);
        s.max_us = std::max(s.max_us, us);
      }
      ++s.count;
      s.total_us += us;
      s.depth = rec.depth;
    }
  }
  return agg;
}

uint64_t Tracer::dropped_records() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const uint64_t n = buf->head.load(std::memory_order_acquire);
    const uint64_t cap = buf->records.size();
    if (n > cap) dropped += n - cap;
  }
  return dropped;
}

void SetDefaultTracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* DefaultTracer() {
  return g_tracer.load(std::memory_order_acquire);
}

uint32_t CurrentSpanDepth() { return tl_depth; }

uint32_t ScopedSpan::EnterSpan() { return ++tl_depth; }

void ScopedSpan::LeaveSpan() { --tl_depth; }

}  // namespace obs
}  // namespace aligraph
