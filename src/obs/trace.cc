#include "obs/trace.h"

#include <algorithm>

namespace aligraph {
namespace obs {

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<uint64_t> g_tracer_generation{0};

thread_local uint32_t tl_depth = 0;
thread_local TraceContext tl_context;
// Cached (tracer generation, buffer) so a thread registers with a tracer
// once; a stale cache from a destroyed tracer fails the generation check
// and is never dereferenced.
thread_local uint64_t tl_buffer_generation = 0;
thread_local void* tl_buffer = nullptr;

/// Span ids are drawn from per-thread blocks carved off one global counter:
/// the hot path is a thread-local increment; the shared fetch-add happens
/// once per kSpanIdBlock spans per thread. Ids start at 1 — 0 is reserved
/// for "no span / no trace".
constexpr uint64_t kSpanIdBlock = 1024;
std::atomic<uint64_t> g_next_span_id{1};
thread_local uint64_t tl_span_id_cursor = 0;
thread_local uint64_t tl_span_id_limit = 0;

}  // namespace

TraceContext CurrentTraceContext() { return tl_context; }

uint64_t NextSpanId() {
  if (tl_span_id_cursor == tl_span_id_limit) {
    tl_span_id_cursor =
        g_next_span_id.fetch_add(kSpanIdBlock, std::memory_order_relaxed);
    tl_span_id_limit = tl_span_id_cursor + kSpanIdBlock;
  }
  return tl_span_id_cursor++;
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : prev_(tl_context) {
  tl_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { tl_context = prev_; }

Tracer::Tracer(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      generation_(g_tracer_generation.fetch_add(1,
                                                std::memory_order_relaxed) +
                  1),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  if (DefaultTracer() == this) SetDefaultTracer(nullptr);
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tl_buffer_generation == generation_) {
    return static_cast<ThreadBuffer*>(tl_buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(ring_capacity_));
  tl_buffer = buffers_.back().get();
  tl_buffer_generation = generation_;
  return buffers_.back().get();
}

void Tracer::Record(const char* name, uint32_t depth, TraceContext ctx,
                    uint64_t parent_span_id,
                    std::chrono::steady_clock::time_point start,
                    int64_t duration_ns) {
  ThreadBuffer* buf = BufferForThisThread();
  const uint64_t h = buf->head.load(std::memory_order_relaxed);
  SpanRecord& rec = buf->records[h % buf->records.size()];
  rec.name = name;
  rec.depth = depth;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span_id = parent_span_id;
  rec.start_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - epoch_)
          .count();
  rec.duration_ns = duration_ns;
  buf->head.store(h + 1, std::memory_order_release);
}

std::map<std::string, SpanStats> Tracer::Aggregate() const {
  std::map<std::string, SpanStats> agg;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const uint64_t n = buf->head.load(std::memory_order_acquire);
    const uint64_t cap = buf->records.size();
    const uint64_t first = n > cap ? n - cap : 0;
    for (uint64_t i = first; i < n; ++i) {
      const SpanRecord& rec = buf->records[i % cap];
      SpanStats& s = agg[rec.name];
      const double us = static_cast<double>(rec.duration_ns) * 1e-3;
      if (s.count == 0) {
        s.min_us = us;
        s.max_us = us;
      } else {
        s.min_us = std::min(s.min_us, us);
        s.max_us = std::max(s.max_us, us);
      }
      ++s.count;
      s.total_us += us;
      s.depth = rec.depth;
    }
  }
  return agg;
}

std::vector<SpanEvent> Tracer::Events() const {
  std::vector<SpanEvent> events;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t t = 0; t < buffers_.size(); ++t) {
    const auto& buf = buffers_[t];
    const uint64_t n = buf->head.load(std::memory_order_acquire);
    const uint64_t cap = buf->records.size();
    const uint64_t first = n > cap ? n - cap : 0;
    for (uint64_t i = first; i < n; ++i) {
      const SpanRecord& rec = buf->records[i % cap];
      SpanEvent e;
      e.name = rec.name;
      e.trace_id = rec.trace_id;
      e.span_id = rec.span_id;
      e.parent_span_id = rec.parent_span_id;
      e.depth = rec.depth;
      e.thread = static_cast<uint32_t>(t);
      e.start_ns = rec.start_ns;
      e.duration_ns = rec.duration_ns;
      events.push_back(std::move(e));
    }
  }
  return events;
}

uint64_t Tracer::dropped_records() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    const uint64_t n = buf->head.load(std::memory_order_acquire);
    const uint64_t cap = buf->records.size();
    if (n > cap) dropped += n - cap;
  }
  return dropped;
}

void SetDefaultTracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* DefaultTracer() {
  return g_tracer.load(std::memory_order_acquire);
}

uint32_t CurrentSpanDepth() { return tl_depth; }

uint32_t ScopedSpan::EnterSpan() { return ++tl_depth; }

void ScopedSpan::LeaveSpan() { --tl_depth; }

TraceContext ScopedSpan::PushContext() {
  const TraceContext prev = tl_context;
  const uint64_t id = NextSpanId();
  // No active trace: this span is a request root and mints the trace id
  // from its own span id, so every trace has exactly one root by
  // construction. Inside a trace: inherit it.
  tl_context.trace_id = prev.trace_id == 0 ? id : prev.trace_id;
  tl_context.span_id = id;
  return prev;
}

void ScopedSpan::PopContext(TraceContext prev) { tl_context = prev; }

}  // namespace obs
}  // namespace aligraph
