#include "obs/timeline.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/report.h"

namespace aligraph {
namespace obs {

TraceForest AssembleTraces(const std::vector<SpanEvent>& events) {
  TraceForest forest;
  // trace id -> indices into `events`, preserving recording order.
  std::map<uint64_t, std::vector<size_t>> by_trace;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].trace_id == 0 || events[i].span_id == 0) {
      ++forest.untraced_spans;
      continue;
    }
    by_trace[events[i].trace_id].push_back(i);
  }

  for (const auto& [trace_id, indices] : by_trace) {
    TraceTree tree;
    tree.trace_id = trace_id;
    tree.nodes.reserve(indices.size());
    std::unordered_map<uint64_t, size_t> node_of;  // span id -> node index
    node_of.reserve(indices.size());
    for (const size_t i : indices) {
      node_of.emplace(events[i].span_id, tree.nodes.size());
      tree.nodes.push_back(TraceNode{events[i], {}});
    }
    size_t root = tree.nodes.size();
    uint64_t orphans = 0;
    for (size_t n = 0; n < tree.nodes.size(); ++n) {
      const uint64_t parent = tree.nodes[n].event.parent_span_id;
      if (parent == 0) {
        if (root == tree.nodes.size()) {
          root = n;
        } else {
          ++orphans;  // second parentless span in one trace: must not happen
        }
        continue;
      }
      auto it = node_of.find(parent);
      if (it == node_of.end()) {
        ++orphans;  // parent evicted from its ring before collection
        continue;
      }
      tree.nodes[it->second].children.push_back(n);
    }
    forest.orphan_spans += orphans;
    if (root == tree.nodes.size()) {
      // Root evicted: nothing to hang the tree on; every linked span of the
      // trace is unreachable, so report them all as orphans.
      forest.orphan_spans += tree.nodes.size() - orphans;
      continue;
    }
    tree.root = root;
    for (TraceNode& node : tree.nodes) {
      std::sort(node.children.begin(), node.children.end(),
                [&tree](size_t a, size_t b) {
                  return tree.nodes[a].event.start_ns <
                         tree.nodes[b].event.start_ns;
                });
    }
    forest.traces.push_back(std::move(tree));
  }
  return forest;
}

const CriticalPathStep* CriticalPath::DominantStep() const {
  const CriticalPathStep* best = nullptr;
  for (const CriticalPathStep& s : steps) {
    if (best == nullptr || s.self_us > best->self_us) best = &s;
  }
  return best;
}

std::string CriticalPath::ToString() const {
  std::ostringstream os;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", total_us);
  os << "critical path (" << buf << " us):";
  for (const CriticalPathStep& s : steps) {
    const double pct =
        total_us <= 0 ? 0.0 : 100.0 * s.self_us / total_us;
    std::snprintf(buf, sizeof(buf), " %.1f%%", pct);
    os << "\n  " << s.name << buf << " self";
  }
  if (const CriticalPathStep* top = DominantStep()) {
    const double pct =
        total_us <= 0 ? 0.0 : 100.0 * top->self_us / total_us;
    std::snprintf(buf, sizeof(buf), "%.1f%% (%.1f us)", pct, top->self_us);
    os << "\nlongest blocking step: " << top->name << " — " << buf
       << " of the request on thread " << top->thread;
  }
  return os.str();
}

CriticalPath ComputeCriticalPath(const TraceTree& tree) {
  CriticalPath path;
  if (tree.nodes.empty()) return path;
  path.total_us = tree.duration_us();
  size_t at = tree.root;
  while (true) {
    const TraceNode& node = tree.nodes[at];
    CriticalPathStep step;
    step.name = node.event.name;
    step.span_id = node.event.span_id;
    step.thread = node.event.thread;
    step.total_us = static_cast<double>(node.event.duration_ns) * 1e-3;
    if (node.children.empty()) {
      step.self_us = step.total_us;
      path.steps.push_back(std::move(step));
      break;
    }
    // The child the parent blocked on is the one that finished last; the
    // parent's self share is whatever that child does not cover.
    size_t blocking = node.children.front();
    for (const size_t c : node.children) {
      if (tree.nodes[c].event.end_ns() > tree.nodes[blocking].event.end_ns()) {
        blocking = c;
      }
    }
    const double child_us =
        static_cast<double>(tree.nodes[blocking].event.duration_ns) * 1e-3;
    step.self_us = std::max(0.0, step.total_us - child_us);
    path.steps.push_back(std::move(step));
    at = blocking;
  }
  return path;
}

std::string ChromeTraceJson(const std::vector<SpanEvent>& events) {
  // Span id -> recording thread, to detect cross-thread parent edges and
  // anchor their flow arrows.
  std::unordered_map<uint64_t, const SpanEvent*> by_id;
  by_id.reserve(events.size());
  uint32_t max_thread = 0;
  for (const SpanEvent& e : events) {
    if (e.span_id != 0) by_id.emplace(e.span_id, &e);
    max_thread = std::max(max_thread, e.thread);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();

  w.BeginObject();
  w.Key("ph").Value("M");
  w.Key("pid").Value(static_cast<uint64_t>(1));
  w.Key("name").Value("process_name");
  w.Key("args").BeginObject().Key("name").Value("aligraph").EndObject();
  w.EndObject();
  for (uint32_t t = 0; t <= max_thread && !events.empty(); ++t) {
    w.BeginObject();
    w.Key("ph").Value("M");
    w.Key("pid").Value(static_cast<uint64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(t));
    w.Key("name").Value("thread_name");
    w.Key("args").BeginObject().Key("name").Value("ring-" + std::to_string(t));
    w.EndObject();
    w.EndObject();
  }

  for (const SpanEvent& e : events) {
    const double ts_us = static_cast<double>(e.start_ns) * 1e-3;
    const double dur_us = static_cast<double>(e.duration_ns) * 1e-3;
    w.BeginObject();
    w.Key("ph").Value("X");
    w.Key("name").Value(e.name);
    w.Key("cat").Value("span");
    w.Key("pid").Value(static_cast<uint64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(e.thread));
    w.Key("ts").Value(ts_us);
    w.Key("dur").Value(dur_us);
    w.Key("args").BeginObject();
    w.Key("trace_id").Value(e.trace_id);
    w.Key("span_id").Value(e.span_id);
    w.Key("parent_span_id").Value(e.parent_span_id);
    w.EndObject();
    w.EndObject();

    // Cross-thread handoff: draw a flow arrow from the parent's timeline to
    // this span's start. The flow id is the child span id (unique).
    if (e.parent_span_id == 0) continue;
    auto it = by_id.find(e.parent_span_id);
    if (it == by_id.end() || it->second->thread == e.thread) continue;
    const SpanEvent& parent = *it->second;
    w.BeginObject();
    w.Key("ph").Value("s");
    w.Key("id").Value(e.span_id);
    w.Key("name").Value("handoff");
    w.Key("cat").Value("handoff");
    w.Key("pid").Value(static_cast<uint64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(parent.thread));
    w.Key("ts").Value(static_cast<double>(parent.start_ns) * 1e-3);
    w.EndObject();
    w.BeginObject();
    w.Key("ph").Value("f");
    w.Key("bp").Value("e");
    w.Key("id").Value(e.span_id);
    w.Key("name").Value("handoff");
    w.Key("cat").Value("handoff");
    w.Key("pid").Value(static_cast<uint64_t>(1));
    w.Key("tid").Value(static_cast<uint64_t>(e.thread));
    w.Key("ts").Value(ts_us);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status WriteChromeTrace(const std::vector<SpanEvent>& events,
                        const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create " + p.parent_path().string() +
                             ": " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ChromeTraceJson(events) << "\n";
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace aligraph
