/// \file attrib.h
/// \brief Tail-latency attribution: decompose each serve request's modeled
/// latency into named budget components and contrast the p50 cohort against
/// the p99 cohort per component.
///
/// When the serving gate (DESIGN.md §13) reports a p99 regression, the only
/// follow-up question that matters is *where the time went*: queueing,
/// sampling, gathering, compute, or communication. The serving sim already
/// knows — every modeled microsecond it charges comes from an explicit term
/// (lane wait, per-edge sample cost, per-row gather cost, fixed forward
/// cost, CommModel charges) — so attribution is bookkeeping, not guesswork:
/// each request carries a RequestBudget whose components are the sim's own
/// charge terms, recorded as they are charged. Because everything lives on
/// the modeled clock, budgets are bit-deterministic across runs, machines
/// and pipeline depths, which lets bench_serve gate the attribution
/// coverage fraction (attributed / total latency) in bench/baseline.json:
/// a new latency source that forgets to declare its component makes the
/// gate fail instead of silently rotting the breakdown.
///
/// The cohort report answers the actual question: per component, the mean
/// microseconds and the share of cohort latency in the p50 cohort (requests
/// at or below the p50 total) versus the p99 cohort (requests at or above
/// the p99 total). A component whose share GROWS from p50 to p99 is what
/// makes the tail the tail — the stage-level bottleneck profile BGL
/// (PAPERS.md, arXiv:2112.08541) builds its optimization loop around.
///
/// Two sources feed the same taxonomy:
///   - MODELED budgets from the serving sim (deterministic, gateable), with
///     per-phase CommStats deltas folded in via ApplyCommDelta using the
///     cluster's CommModel charge terms.
///   - WALL budgets from a request's causal trace tree (BudgetFromTraceTree)
///     for eyeballing flight-recorder exemplars; never gated.

#ifndef ALIGRAPH_OBS_ATTRIB_H_
#define ALIGRAPH_OBS_ATTRIB_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "cluster/comm_model.h"
#include "common/status.h"

namespace aligraph {
namespace obs {

struct TraceTree;

/// \brief Where one modeled microsecond of a request's latency went.
enum class BudgetComponent : uint8_t {
  kQueueWait = 0,   ///< admitted but waiting for a free service lane
  kSample,          ///< k-hop neighbor sampling (per-edge cost + local reads)
  kGather,          ///< feature-row gathering (per-row cost)
  kCompute,         ///< GNN forward (fixed per-request cost)
  kRemoteRead,      ///< cross-server messages + payload items (CommModel)
  kReplicaRead,     ///< reads served from a local replica copy
  kCacheRead,       ///< reads served from a local cache copy
  kRetryBackoff,    ///< fault-retry messages, backoff and injected latency
  kShed,            ///< rejected at admission (always 0 us: instant)
  kAbandoned,       ///< client wait until it gave up on a missed deadline
};

inline constexpr size_t kNumBudgetComponents = 10;

/// Stable lower_snake_case name ("queue_wait", "sample", ...), used as the
/// JSON key in flight-recorder dumps and the row label in reports.
const char* BudgetComponentName(BudgetComponent c);

/// Inverse of BudgetComponentName; NotFound for unknown names.
Result<BudgetComponent> BudgetComponentFromName(std::string_view name);

/// \brief One request's latency decomposition. total_us is the request's
/// modeled latency measured independently of the components (finish minus
/// arrival on the sim clock); the components are the sim's individual
/// charge terms. attributed_us() == total_us up to floating-point
/// association, and the GAP between them is exactly the latency the sim
/// charged without declaring a component — the quantity the coverage gate
/// watches.
struct RequestBudget {
  enum class Outcome : uint8_t {
    kCompleted = 0,  ///< served within deadline
    kShed,           ///< rejected at admission; total_us == 0
    kAbandoned,      ///< deadline missed; total charged to kAbandoned
  };

  uint64_t request_id = 0;
  /// Trace id of the request's root span (0 when tracing was detached);
  /// the flight recorder uses it to retroactively attach the trace tree.
  uint64_t trace_id = 0;
  Outcome outcome = Outcome::kCompleted;
  double total_us = 0;
  std::array<double, kNumBudgetComponents> components{};

  double& at(BudgetComponent c) {
    return components[static_cast<size_t>(c)];
  }
  double at(BudgetComponent c) const {
    return components[static_cast<size_t>(c)];
  }

  /// Sum of all components.
  double attributed_us() const;
  /// attributed / total, clamped to [0, 1]; 1 when total_us <= 0 (an
  /// instantly-shed request has nothing left to attribute).
  double coverage() const;
};

const char* BudgetOutcomeName(RequestBudget::Outcome outcome);
Result<RequestBudget::Outcome> BudgetOutcomeFromName(std::string_view name);

/// Folds one phase's CommStats delta into `budget` using the CommModel's
/// own charge terms, so attribution agrees with what ModeledMillis bills:
/// owned local reads land in kSample (they are the sampler's local scans),
/// replica / cache copies in their own read components, remote messages and
/// payload items in kRemoteRead, and all fault-induced traffic (retry and
/// failed-request messages, backoff, injected latency) in kRetryBackoff.
/// The component increments sum to ModeledMillis(delta) * 1000 up to
/// floating-point association.
void ApplyCommDelta(const CommStats::Snapshot& delta, const CommModel& model,
                    RequestBudget* budget);

/// \brief Per-component statistics of one latency cohort.
struct CohortAttribution {
  uint64_t requests = 0;
  double threshold_us = 0;  ///< the nearest-rank percentile defining it
  double total_us = 0;      ///< sum of member totals
  double mean_total_us = 0;
  std::array<double, kNumBudgetComponents> mean_us{};
  /// Component sum / cohort total sum — "the p99 cohort spends 61% of its
  /// latency waiting for a lane".
  std::array<double, kNumBudgetComponents> share{};
};

/// \brief The p50-vs-p99 contrast over one run's budgets, plus the
/// attribution-coverage fraction the bench gate pins.
struct AttributionReport {
  uint64_t requests = 0;  ///< budgets with total_us > 0 (cohort population)
  double p_low = 50.0;
  double p_high = 99.0;
  CohortAttribution low;   ///< requests with total <= the p_low threshold
  CohortAttribution high;  ///< requests with total >= the p_high threshold
  /// Aggregate sum(attributed) / sum(total) over the population; 1 when
  /// the population is empty.
  double coverage = 1.0;
  /// Worst single-request coverage — a lone unattributed spike hides in
  /// the aggregate but not here.
  double min_coverage = 1.0;

  /// The per-component p50 / p99 / delta-share table.
  std::string ToString() const;
};

/// Builds the cohort contrast over `budgets`. Population: every budget with
/// total_us > 0, so completed and abandoned requests are attributed (an
/// all-abandoned tail is itself the answer to "why is p99 slow") while
/// instantly-shed requests are excluded. Cohort thresholds are
/// nearest-rank percentiles of the population's totals; ties keep both
/// cohorts non-empty whenever the population is. Deterministic: same
/// budgets (any storage order) -> bit-identical report.
AttributionReport BuildAttributionReport(std::span<const RequestBudget> budgets,
                                         double p_low = 50.0,
                                         double p_high = 99.0);

/// Wall-clock budget of one assembled trace tree: total is the root span's
/// duration; the root's DIRECT children are mapped onto components by span
/// name (…"sample" -> kSample, …"gather" -> kGather, …"compute" ->
/// kCompute; anything else stays unattributed). Nested sub-spans are
/// deliberately not summed — they would double-count their parents.
RequestBudget BudgetFromTraceTree(const TraceTree& tree);

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_ATTRIB_H_
