/// \file window.h
/// \brief Fixed-interval windowed time-series over the metrics substrate: a
/// bounded ring of per-interval aggregates (count, sum, optional fixed
/// buckets) supporting rate and percentile-over-window queries.
///
/// The registry's counters and histograms are cumulative: a run report
/// shows WHERE a run ended, never how it got there. A tail regression that
/// only appears after the lanes saturate, a goodput sag in the middle of an
/// overload burst — both are invisible in end-of-run totals. WindowedSeries
/// buckets observations by a fixed interval of the MODELED clock (the same
/// clock the serving sim gates), so bench_serve can emit a latency/goodput
/// timeline instead of a single end-of-run point, deterministically.
///
/// Two feeding styles share one ring:
///   - Record / Count: per-event observations stamped with their modeled
///     time (a completion at t with latency v; an arrival at t).
///   - SampleCumulative: periodic samples of an existing monotonic counter
///     (obs::Counter::Value(), a CommStats field); each sample stores the
///     DELTA since the previous sample in the window of the sample time —
///     the classic interval-delta view of a cumulative series.
///
/// The ring holds the most recent `capacity` windows. Observations for
/// windows that already fell off the ring (and old windows evicted when
/// time advances) are folded into evicted_count/evicted_sum rather than
/// dropped, so conservation holds by construction:
///   retained_count() + evicted_count() == total_count()
/// and tests can assert that no delta was ever lost. Not thread-safe: feed
/// it from one logical stream (the serving sim's single-threaded sample
/// stage, a bench main loop).

#ifndef ALIGRAPH_OBS_WINDOW_H_
#define ALIGRAPH_OBS_WINDOW_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "obs/metrics.h"

namespace aligraph {
namespace obs {

/// \brief One retained interval of a WindowedSeries.
struct SeriesWindow {
  int64_t index = 0;  ///< absolute window number: floor(t / interval)
  uint64_t count = 0;
  double sum = 0;
  /// Per-bucket counts when the series was built with bounds (same layout
  /// as HistogramSnapshot: bounds.size() + 1, last = overflow); empty
  /// otherwise.
  std::vector<uint64_t> buckets;

  double start_us(double interval_us) const {
    return static_cast<double>(index) * interval_us;
  }
};

/// \brief Bounded ring of fixed-interval aggregates.
class WindowedSeries {
 public:
  /// \param interval_us width of one window on the feeding clock.
  /// \param capacity most recent windows retained (older ones are evicted
  ///        into the conservation tallies).
  /// \param bounds optional histogram bucket upper bounds for
  ///        percentile-over-window queries (empty = counts/sums only).
  WindowedSeries(double interval_us, size_t capacity,
                 std::span<const double> bounds = {});

  /// Records one observation of `value` at modeled time `t_us`.
  void Record(double t_us, double value);

  /// Counts `n` events at modeled time `t_us` (no value, no buckets).
  void Count(double t_us, uint64_t n = 1);

  /// Interval-delta sampling of a cumulative counter: stores
  /// `cumulative - previous sample` as a count in t_us's window. The first
  /// sample establishes the base and stores nothing. `cumulative` must be
  /// monotone over calls.
  void SampleCumulative(double t_us, uint64_t cumulative);

  double interval_us() const { return interval_us_; }
  size_t capacity() const { return capacity_; }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Retained windows, oldest first. Windows with no observations between
  /// two active ones are materialized (zero-filled) so the timeline has no
  /// silent gaps.
  const std::deque<SeriesWindow>& windows() const { return windows_; }

  /// Absolute index range of retained windows; first > last when empty.
  int64_t first_index() const;
  int64_t last_index() const;

  /// Window `index`'s aggregates, zero-filled when outside the retained
  /// range — callers can walk a shared index range across several series.
  SeriesWindow At(int64_t index) const;

  /// Events per second of window `index`: count / interval.
  double RatePerSec(int64_t index) const;

  /// Percentile over window `index`'s bucketed values (requires bounds;
  /// 0 when the window is empty or the series has no buckets).
  double Percentile(int64_t index, double p) const;

  // --- Conservation tallies.
  uint64_t total_count() const { return total_count_; }
  double total_sum() const { return total_sum_; }
  uint64_t evicted_count() const { return evicted_count_; }
  double evicted_sum() const { return evicted_sum_; }
  /// Sum of retained window counts (== total_count - evicted_count).
  uint64_t retained_count() const;

 private:
  /// The retained window for absolute index `w`, advancing/evicting as
  /// needed; null when `w` predates the ring (observation -> evicted).
  SeriesWindow* WindowFor(int64_t w);

  const double interval_us_;
  const size_t capacity_;
  std::vector<double> bounds_;
  std::deque<SeriesWindow> windows_;  ///< contiguous indices, oldest first
  uint64_t total_count_ = 0;
  double total_sum_ = 0;
  uint64_t evicted_count_ = 0;
  double evicted_sum_ = 0;
  bool have_cumulative_base_ = false;
  uint64_t cumulative_base_ = 0;
};

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_WINDOW_H_
