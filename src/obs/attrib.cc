#include "obs/attrib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <vector>

#include "obs/timeline.h"

namespace aligraph {
namespace obs {

namespace {

constexpr const char* kComponentNames[kNumBudgetComponents] = {
    "queue_wait",   "sample",     "gather",     "compute",
    "remote_read",  "replica_read", "cache_read", "retry_backoff",
    "shed",         "abandoned",
};

constexpr const char* kOutcomeNames[] = {"completed", "shed", "abandoned"};

/// Nearest-rank percentile over an ascending-sorted vector.
double NearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = std::ceil(clamped / 100.0 *
                                static_cast<double>(sorted.size()));
  const size_t index = rank <= 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

void AccumulateCohort(const RequestBudget& b, CohortAttribution* cohort) {
  ++cohort->requests;
  cohort->total_us += b.total_us;
  for (size_t c = 0; c < kNumBudgetComponents; ++c) {
    cohort->mean_us[c] += b.components[c];  // sums for now; divided below
  }
}

void FinalizeCohort(CohortAttribution* cohort) {
  if (cohort->requests == 0) return;
  const double n = static_cast<double>(cohort->requests);
  cohort->mean_total_us = cohort->total_us / n;
  for (size_t c = 0; c < kNumBudgetComponents; ++c) {
    const double sum = cohort->mean_us[c];
    cohort->mean_us[c] = sum / n;
    cohort->share[c] = cohort->total_us > 0.0 ? sum / cohort->total_us : 0.0;
  }
}

}  // namespace

const char* BudgetComponentName(BudgetComponent c) {
  return kComponentNames[static_cast<size_t>(c)];
}

Result<BudgetComponent> BudgetComponentFromName(std::string_view name) {
  for (size_t i = 0; i < kNumBudgetComponents; ++i) {
    if (name == kComponentNames[i]) return static_cast<BudgetComponent>(i);
  }
  return Status::NotFound("unknown budget component: " + std::string(name));
}

const char* BudgetOutcomeName(RequestBudget::Outcome outcome) {
  return kOutcomeNames[static_cast<size_t>(outcome)];
}

Result<RequestBudget::Outcome> BudgetOutcomeFromName(std::string_view name) {
  for (size_t i = 0; i < 3; ++i) {
    if (name == kOutcomeNames[i]) {
      return static_cast<RequestBudget::Outcome>(i);
    }
  }
  return Status::NotFound("unknown budget outcome: " + std::string(name));
}

double RequestBudget::attributed_us() const {
  double sum = 0;
  for (const double c : components) sum += c;
  return sum;
}

double RequestBudget::coverage() const {
  if (total_us <= 0.0) return 1.0;
  return std::clamp(attributed_us() / total_us, 0.0, 1.0);
}

void ApplyCommDelta(const CommStats::Snapshot& delta, const CommModel& model,
                    RequestBudget* budget) {
  // Mirror CommModel::ModeledMillis term by term, regrouped by cause: the
  // attribution must bill exactly what the model bills, or the coverage
  // gate would flag phantom (or missing) microseconds.
  budget->at(BudgetComponent::kSample) +=
      static_cast<double>(delta.local_reads) * model.local_latency_us;
  budget->at(BudgetComponent::kReplicaRead) +=
      static_cast<double>(delta.replica_reads) * model.local_latency_us;
  budget->at(BudgetComponent::kCacheRead) +=
      static_cast<double>(delta.cache_hits) * model.local_latency_us;
  const uint64_t individual = delta.remote_reads - delta.batched_remote_reads;
  budget->at(BudgetComponent::kRemoteRead) +=
      static_cast<double>(individual + delta.remote_batches) *
          model.remote_rpc_us +
      static_cast<double>(delta.remote_reads) * model.remote_item_us;
  budget->at(BudgetComponent::kRetryBackoff) +=
      static_cast<double>(delta.retry_attempts + delta.failed_reads) *
          model.remote_rpc_us +
      static_cast<double>(delta.retry_backoff_us);
}

AttributionReport BuildAttributionReport(
    std::span<const RequestBudget> budgets, double p_low, double p_high) {
  AttributionReport report;
  report.p_low = p_low;
  report.p_high = p_high;

  std::vector<double> totals;
  totals.reserve(budgets.size());
  double attributed_sum = 0;
  double total_sum = 0;
  for (const RequestBudget& b : budgets) {
    if (b.total_us <= 0.0) continue;
    totals.push_back(b.total_us);
    attributed_sum += b.attributed_us();
    total_sum += b.total_us;
    report.min_coverage = std::min(report.min_coverage, b.coverage());
  }
  report.requests = totals.size();
  if (totals.empty()) return report;
  std::sort(totals.begin(), totals.end());
  report.coverage =
      total_sum > 0.0 ? std::clamp(attributed_sum / total_sum, 0.0, 1.0) : 1.0;
  report.low.threshold_us = NearestRank(totals, p_low);
  report.high.threshold_us = NearestRank(totals, p_high);

  for (const RequestBudget& b : budgets) {
    if (b.total_us <= 0.0) continue;
    if (b.total_us <= report.low.threshold_us) {
      AccumulateCohort(b, &report.low);
    }
    if (b.total_us >= report.high.threshold_us) {
      AccumulateCohort(b, &report.high);
    }
  }
  FinalizeCohort(&report.low);
  FinalizeCohort(&report.high);
  return report;
}

std::string AttributionReport::ToString() const {
  std::ostringstream os;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "attribution over %llu requests | coverage %.4f%% "
                "(min %.4f%%) | p%.0f cohort: %llu reqs <= %.1f us | "
                "p%.0f cohort: %llu reqs >= %.1f us",
                static_cast<unsigned long long>(requests), 100.0 * coverage,
                100.0 * min_coverage, p_low,
                static_cast<unsigned long long>(low.requests),
                low.threshold_us, p_high,
                static_cast<unsigned long long>(high.requests),
                high.threshold_us);
  os << buf << "\n";
  std::snprintf(buf, sizeof(buf), "%-14s %12s %8s %12s %8s %9s",
                "component", "p50 us", "p50 %", "p99 us", "p99 %",
                "d(share)");
  os << buf << "\n";
  for (size_t c = 0; c < kNumBudgetComponents; ++c) {
    // Skip rows that are zero in both cohorts so the table leads with the
    // components that actually carry latency.
    if (low.mean_us[c] == 0.0 && high.mean_us[c] == 0.0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-14s %12.2f %8.2f %12.2f %8.2f %+8.2f%%",
                  BudgetComponentName(static_cast<BudgetComponent>(c)),
                  low.mean_us[c], 100.0 * low.share[c], high.mean_us[c],
                  100.0 * high.share[c],
                  100.0 * (high.share[c] - low.share[c]));
    os << buf << "\n";
  }
  const double low_unattr = 1.0 - std::accumulate(low.share.begin(),
                                                  low.share.end(), 0.0);
  const double high_unattr = 1.0 - std::accumulate(high.share.begin(),
                                                   high.share.end(), 0.0);
  std::snprintf(buf, sizeof(buf), "%-14s %12s %8.2f %12s %8.2f %+8.2f%%",
                "unattributed", "-", 100.0 * low_unattr, "-",
                100.0 * high_unattr, 100.0 * (high_unattr - low_unattr));
  os << buf << "\n";
  return os.str();
}

RequestBudget BudgetFromTraceTree(const TraceTree& tree) {
  RequestBudget budget;
  budget.trace_id = tree.trace_id;
  budget.total_us = tree.duration_us();
  for (const size_t child : tree.nodes[tree.root].children) {
    const SpanEvent& ev = tree.nodes[child].event;
    const double us = static_cast<double>(ev.duration_ns) * 1e-3;
    if (ev.name.find("sample") != std::string::npos) {
      budget.at(BudgetComponent::kSample) += us;
    } else if (ev.name.find("gather") != std::string::npos) {
      budget.at(BudgetComponent::kGather) += us;
    } else if (ev.name.find("compute") != std::string::npos) {
      budget.at(BudgetComponent::kCompute) += us;
    }
    // Other children stay unattributed: the gap is visible in coverage().
  }
  return budget;
}

}  // namespace obs
}  // namespace aligraph
