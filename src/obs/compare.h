/// \file compare.h
/// \brief Bench regression gate: diff a candidate run report against a
/// committed baseline with per-metric tolerance thresholds.
///
/// The gate walks the BASELINE's "metrics" object — the baseline defines
/// the contract; extra candidate metrics (wall-clock numbers, new
/// experiments) are ignored so only the deterministic modeled-time metrics
/// need committing. Metrics default to lower-is-better: a candidate value
/// above baseline * (1 + tolerance) + slack is a regression, below is an
/// improvement (reported, never fatal). Metrics named in
/// CompareOptions::higher_is_better flip the direction (speedups, hit
/// rates): below baseline * (1 - tolerance) - slack regresses, above
/// baseline improves. A metric present in the baseline but missing from
/// every candidate fails the gate — silently dropping a guarded number must
/// not pass CI.

#ifndef ALIGRAPH_OBS_COMPARE_H_
#define ALIGRAPH_OBS_COMPARE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/report.h"

namespace aligraph {
namespace obs {

/// \brief Gate thresholds.
struct CompareOptions {
  /// Allowed relative increase over baseline (0.10 = +10%).
  double default_tolerance = 0.10;
  /// Absolute slack added on top of the relative bound, so near-zero
  /// baselines do not fail on sub-measurement-noise deltas.
  double absolute_slack = 1e-6;
  /// Per-metric overrides of default_tolerance, keyed by metric name.
  std::map<std::string, double> per_metric_tolerance;
  /// Per-metric overrides of absolute_slack, keyed by metric name. Latency
  /// percentile keys want this: a tail percentile sits on one observation,
  /// so a few microseconds of absolute headroom is the right units for the
  /// bound, not a relative fraction of an arbitrary baseline.
  std::map<std::string, double> per_metric_slack;
  /// Metrics where LARGER is better (speedups, cache hit rates): the gate
  /// fails when the candidate falls below baseline * (1 - tolerance) -
  /// slack instead of rising above the upper bound.
  std::set<std::string> higher_is_better;
};

enum class MetricVerdict { kPass, kImproved, kRegressed, kMissing };

/// \brief One metric's comparison.
struct MetricResult {
  std::string name;
  double baseline = 0;
  double candidate = 0;     ///< undefined when verdict == kMissing
  double tolerance = 0;     ///< the bound applied to this metric
  MetricVerdict verdict = MetricVerdict::kPass;

  /// Signed relative change, candidate/baseline - 1 (0 for zero baseline).
  double RelativeDelta() const;
};

/// \brief Full gate outcome over every baseline metric.
struct CompareResult {
  std::vector<MetricResult> metrics;  ///< baseline order (sorted names)
  size_t regressed = 0;
  size_t missing = 0;
  size_t improved = 0;

  /// True when nothing regressed and nothing was missing.
  bool ok() const { return regressed == 0 && missing == 0; }

  /// Human-readable table of every metric with verdicts, worst first.
  std::string ToString() const;
};

/// Compares the "metrics" objects of two parsed run reports. Returns
/// InvalidArgument when either document lacks a "metrics" object or a
/// baseline metric is not a number — a malformed baseline must fail loudly,
/// not pass vacuously.
Result<CompareResult> CompareReports(const JsonValue& baseline,
                                     const JsonValue& candidate,
                                     const CompareOptions& options = {});

/// Multi-candidate variant: one baseline may be covered by SEVERAL run
/// reports (e.g. the table4 and table5 smoke runs each produce part of
/// bench/baseline.json's contract). Candidates are searched back to front,
/// so the last report containing a metric wins; a metric absent from every
/// candidate is missing. Every candidate must still carry a "metrics"
/// object, and the list must be non-empty.
Result<CompareResult> CompareReports(
    const JsonValue& baseline, const std::vector<const JsonValue*>& candidates,
    const CompareOptions& options = {});

/// Convenience: parse both JSON documents, then CompareReports.
Result<CompareResult> CompareReportJson(const std::string& baseline_json,
                                        const std::string& candidate_json,
                                        const CompareOptions& options = {});

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_COMPARE_H_
