/// \file report.h
/// \brief Machine-readable run reports: a minimal JSON writer/parser and a
/// RunReport that serializes metrics, span aggregates and bench tables to
/// bench/out/<name>.json.
///
/// The bench harness prints human tables; the trajectory tooling needs the
/// same numbers machine-readable. One RunReport per bench run holds:
///   - meta: free-form run parameters (scale, seed, dataset, ...)
///   - metrics: the bench's headline numbers (flat name -> double)
///   - counters/gauges/histograms: a MetricsSnapshot of the attached
///     registry (comm counters, bucket drops, cache hit/miss, ...)
///   - spans: per-stage wall-time breakdowns from the attached Tracer
///   - tables: the printed text tables, cell-for-cell
///
/// Schema (stable, versioned by "schema_version"):
/// {
///   "schema_version": 1, "name": "...",
///   "build": {"git_sha":"...","compiler":"...","build_type":"..."},
///   "meta": {...}, "metrics": {...},
///   "counters": {...}, "gauges": {...},
///   "histograms": {"h": {"count":N,"sum":S,"bounds":[...],"counts":[...]}},
///   "spans": {"s": {"count":N,"total_us":T,"min_us":m,"max_us":M,"depth":d}},
///   "tables": [{"name":"...","columns":[...],"rows":[[...],...]}]
/// }
/// "metrics" keys are emitted sorted by name so two reports of the same run
/// diff cleanly and the regression gate's walk order is stable.

#ifndef ALIGRAPH_OBS_REPORT_H_
#define ALIGRAPH_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aligraph {
namespace obs {

/// \brief Streaming JSON writer with automatic comma placement. Doubles are
/// written with enough digits to round-trip; NaN/Inf degrade to null.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<bool> needs_comma_;  // one flag per open scope
};

/// \brief Parsed JSON document (recursive value). Good enough to read the
/// reports this module writes back: objects, arrays, strings, doubles,
/// bools, null, with standard escapes.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> items;                            ///< kArray

  /// Object member by key, or null when absent / not an object.
  const JsonValue* Find(std::string_view key) const;

  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);
};

/// \brief One bench run's machine-readable output.
class RunReport {
 public:
  explicit RunReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void AddMeta(const std::string& key, const std::string& value);
  void AddMeta(const std::string& key, double value);

  /// Records which build produced the run (see common/build_info.h); the
  /// report's "build" object stays empty until this is called.
  void SetBuildInfo(const std::string& git_sha, const std::string& compiler,
                    const std::string& build_type);

  /// Headline number, e.g. "taobao_small.neighborhood_ms".
  void AddMetric(const std::string& name, double value);

  /// Starts a new table; subsequent AddRow calls append to it.
  void AddTable(const std::string& table_name,
                std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);

  /// Copies the registry / tracer state into the report (call at the end
  /// of the run, before writing).
  void AttachMetrics(const MetricsSnapshot& snapshot);
  void AttachSpans(const std::map<std::string, SpanStats>& spans);

  std::string ToJson() const;

  /// Writes <dir>/<name>.json (creating <dir> if needed). Returns the path
  /// written through `out_path` when non-null.
  Status WriteFile(const std::string& dir = "bench/out",
                   std::string* out_path = nullptr) const;

 private:
  struct Table {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::vector<std::pair<std::string, std::string>> build_info_;
  std::vector<std::pair<std::string, std::string>> meta_strings_;
  std::vector<std::pair<std::string, double>> meta_numbers_;
  std::vector<std::pair<std::string, double>> metrics_;
  MetricsSnapshot snapshot_;
  std::map<std::string, SpanStats> spans_;
  std::vector<Table> tables_;
};

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_REPORT_H_
