#include "obs/report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace aligraph {
namespace obs {

// ---------------------------------------------------------------------------
// JsonWriter

void JsonWriter::MaybeComma() {
  if (needs_comma_.empty()) return;
  if (needs_comma_.back()) {
    out_.push_back(',');
  } else {
    needs_comma_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  // The value that follows must not emit another comma.
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  MaybeComma();
  AppendEscaped(v);
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  if (!std::isfinite(v)) return Null();
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue parser

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view with a cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, /*depth=*/0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Status::InvalidArgument("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') return Err("expected object key");
      std::string key;
      ALIGRAPH_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (Peek() != ':') return Err("expected ':'");
      ++pos_;
      JsonValue value;
      ALIGRAPH_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue item;
      ALIGRAPH_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      out->items.push_back(std::move(item));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Err("bad hex digit in \\u escape");
          }
          // Reports only emit \u00XX control escapes; encode as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseKeyword(JsonValue* out) {
    const std::string_view rest = text_.substr(pos_);
    if (rest.starts_with("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (rest.starts_with("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    if (rest.starts_with("null")) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Err("unknown keyword");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Err("malformed number");
    // strtod saturates values past DBL_MAX to +/-inf; the writer never
    // emits non-finite numbers, so treat overflow as a parse error instead
    // of letting inf/nan leak into report consumers.
    if (!std::isfinite(v)) return Err("number out of range");
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::OK();
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

// ---------------------------------------------------------------------------
// RunReport

void RunReport::AddMeta(const std::string& key, const std::string& value) {
  meta_strings_.emplace_back(key, value);
}

void RunReport::AddMeta(const std::string& key, double value) {
  meta_numbers_.emplace_back(key, value);
}

void RunReport::SetBuildInfo(const std::string& git_sha,
                             const std::string& compiler,
                             const std::string& build_type) {
  build_info_.clear();
  build_info_.emplace_back("git_sha", git_sha);
  build_info_.emplace_back("compiler", compiler);
  build_info_.emplace_back("build_type", build_type);
}

void RunReport::AddMetric(const std::string& name, double value) {
  metrics_.emplace_back(name, value);
}

void RunReport::AddTable(const std::string& table_name,
                         std::vector<std::string> columns) {
  tables_.push_back(Table{table_name, std::move(columns), {}});
}

void RunReport::AddRow(std::vector<std::string> cells) {
  if (tables_.empty()) AddTable("default", {});
  tables_.back().rows.push_back(std::move(cells));
}

void RunReport::AttachMetrics(const MetricsSnapshot& snapshot) {
  snapshot_ = snapshot;
}

void RunReport::AttachSpans(const std::map<std::string, SpanStats>& spans) {
  spans_ = spans;
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Value(static_cast<uint64_t>(1));
  w.Key("name").Value(name_);

  w.Key("build").BeginObject();
  for (const auto& [k, v] : build_info_) w.Key(k).Value(v);
  w.EndObject();

  w.Key("meta").BeginObject();
  for (const auto& [k, v] : meta_strings_) w.Key(k).Value(v);
  for (const auto& [k, v] : meta_numbers_) w.Key(k).Value(v);
  w.EndObject();

  // Sorted so identical runs serialize byte-identically regardless of the
  // order the bench recorded its headline numbers in.
  std::vector<std::pair<std::string, double>> metrics = metrics_;
  std::sort(metrics.begin(), metrics.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.Key("metrics").BeginObject();
  for (const auto& [k, v] : metrics) w.Key(k).Value(v);
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [k, v] : snapshot_.counters) w.Key(k).Value(v);
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [k, v] : snapshot_.gauges) w.Key(k).Value(v);
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [k, h] : snapshot_.histograms) {
    w.Key(k).BeginObject();
    w.Key("count").Value(h.count);
    w.Key("sum").Value(h.sum);
    w.Key("mean").Value(h.mean());
    w.Key("p50").Value(h.Percentile(50));
    w.Key("p95").Value(h.Percentile(95));
    w.Key("p99").Value(h.Percentile(99));
    w.Key("p999").Value(h.Percentile(99.9));
    w.Key("bounds").BeginArray();
    for (const double b : h.bounds) w.Value(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (const uint64_t c : h.counts) w.Value(c);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.Key("spans").BeginObject();
  for (const auto& [k, s] : spans_) {
    w.Key(k).BeginObject();
    w.Key("count").Value(s.count);
    w.Key("total_us").Value(s.total_us);
    w.Key("mean_us").Value(s.mean_us());
    w.Key("min_us").Value(s.min_us);
    w.Key("max_us").Value(s.max_us);
    w.Key("depth").Value(static_cast<uint64_t>(s.depth));
    w.EndObject();
  }
  w.EndObject();

  w.Key("tables").BeginArray();
  for (const Table& t : tables_) {
    w.BeginObject();
    w.Key("name").Value(t.name);
    w.Key("columns").BeginArray();
    for (const auto& c : t.columns) w.Value(c);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : t.rows) {
      w.BeginArray();
      for (const auto& cell : row) w.Value(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str();
}

Status RunReport::WriteFile(const std::string& dir,
                            std::string* out_path) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  const std::string path = dir + "/" + name_ + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ToJson() << "\n";
  out.close();
  if (!out) return Status::IoError("write failed: " + path);
  if (out_path != nullptr) *out_path = path;
  return Status::OK();
}

}  // namespace obs
}  // namespace aligraph
