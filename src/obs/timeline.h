/// \file timeline.h
/// \brief Request-timeline tooling over Tracer::Events(): assembles the
/// causally-linked span records into per-request trace trees, exports them
/// as Chrome trace_event / Perfetto-compatible JSON, and walks a tree's
/// longest blocking chain (the critical path).
///
/// The bench harness wires this behind --trace-out: one run writes
/// bench/out/<name>.trace.json loadable in chrome://tracing or
/// https://ui.perfetto.dev, and prints the critical path of the slowest
/// request so "where does the time go" has a one-line answer.

#ifndef ALIGRAPH_OBS_TIMELINE_H_
#define ALIGRAPH_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace aligraph {
namespace obs {

/// \brief One span in an assembled trace tree; children are indices into
/// TraceTree::nodes, sorted by start time.
struct TraceNode {
  SpanEvent event;
  std::vector<size_t> children;
};

/// \brief One request's tree: nodes[root] is the unique parentless span.
struct TraceTree {
  uint64_t trace_id = 0;
  size_t root = 0;
  std::vector<TraceNode> nodes;

  const SpanEvent& root_event() const { return nodes[root].event; }
  double duration_us() const {
    return static_cast<double>(root_event().duration_ns) * 1e-3;
  }
};

/// \brief Every trace found in a batch of events, plus what could not be
/// linked: orphans carry a parent span id that is absent from their trace
/// (evicted from a ring, or recorded through the legacy id-less Record);
/// untraced events carry no ids at all.
struct TraceForest {
  std::vector<TraceTree> traces;  ///< sorted by trace id
  uint64_t orphan_spans = 0;
  uint64_t untraced_spans = 0;
};

/// Groups events by trace id and links children to parents. A trace whose
/// root span was evicted contributes all its events to orphan_spans and no
/// tree.
TraceForest AssembleTraces(const std::vector<SpanEvent>& events);

/// \brief One step of a critical path: the span, its wall time, and the
/// share of it not covered by the next step down (self_us).
struct CriticalPathStep {
  std::string name;
  uint64_t span_id = 0;
  uint32_t thread = 0;
  double total_us = 0;
  double self_us = 0;
};

/// \brief The longest blocking chain of one request, root to leaf.
struct CriticalPath {
  double total_us = 0;  ///< root span duration
  std::vector<CriticalPathStep> steps;

  /// The step with the largest self time — "74% of the request sits here".
  const CriticalPathStep* DominantStep() const;
  std::string ToString() const;
};

/// Walks the tree from the root, at each span descending into the child
/// that finished last (the one the parent blocked on); a span's self time
/// is its duration minus the chosen child's. Parallel children that finish
/// earlier overlap the chain and are charged to nobody — the chain is the
/// lower bound on the request's latency.
CriticalPath ComputeCriticalPath(const TraceTree& tree);

/// Chrome trace_event JSON (the {"traceEvents": [...]} envelope): one "X"
/// complete event per span (ts/dur in microseconds, tid = recording ring
/// index, args carrying trace/span/parent ids) plus "s"/"f" flow events for
/// every cross-thread parent->child edge so Perfetto draws the handoff
/// arrows, and "M" metadata naming the process and rings.
std::string ChromeTraceJson(const std::vector<SpanEvent>& events);

/// Writes ChromeTraceJson(events) to `path` (creating parent directories).
Status WriteChromeTrace(const std::vector<SpanEvent>& events,
                        const std::string& path);

}  // namespace obs
}  // namespace aligraph

#endif  // ALIGRAPH_OBS_TIMELINE_H_
