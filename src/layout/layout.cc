#include "layout/layout.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"
#include "common/lru_cache.h"

namespace aligraph {
namespace layout {

const char* PolicyName(LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kIdentity:
      return "identity";
    case LayoutPolicy::kDegreeDescending:
      return "degree_desc";
    case LayoutPolicy::kBfsCluster:
      return "bfs_cluster";
    case LayoutPolicy::kHotFirst:
      return "hot_first";
  }
  return "unknown";
}

VertexLayout VertexLayout::Identity(VertexId n) {
  VertexLayout layout;
  layout.policy = LayoutPolicy::kIdentity;
  layout.new_of_old.resize(n);
  layout.old_of_new.resize(n);
  std::iota(layout.new_of_old.begin(), layout.new_of_old.end(), VertexId{0});
  std::iota(layout.old_of_new.begin(), layout.old_of_new.end(), VertexId{0});
  return layout;
}

bool IsValidPermutation(const VertexLayout& layout, VertexId n) {
  if (layout.new_of_old.size() != static_cast<size_t>(n) ||
      layout.old_of_new.size() != static_cast<size_t>(n)) {
    return false;
  }
  std::vector<uint8_t> seen(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId nv = layout.new_of_old[v];
    if (nv >= n || seen[nv]) return false;
    seen[nv] = 1;
    if (layout.old_of_new[nv] != v) return false;
  }
  return true;
}

namespace {

/// Combined degree used for hub ranking; in-degree matters because the
/// NEGATIVE sampler and Imp_k both read it, and a hub by either metric is
/// hot in somebody's walk.
size_t HubDegree(const AttributedGraph& g, VertexId v) {
  return g.OutDegree(v) + g.InDegree(v);
}

/// rank -> old vertex, descending hub degree, ties toward the smaller id.
std::vector<VertexId> HubOrder(const AttributedGraph& g) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&g](VertexId a, VertexId b) {
                     return HubDegree(g, a) > HubDegree(g, b);
                   });
  return order;
}

VertexLayout DegreeDescendingLayout(const AttributedGraph& g) {
  VertexLayout layout;
  layout.policy = LayoutPolicy::kDegreeDescending;
  layout.old_of_new = HubOrder(g);
  layout.new_of_old.resize(layout.old_of_new.size());
  for (size_t rank = 0; rank < layout.old_of_new.size(); ++rank) {
    layout.new_of_old[layout.old_of_new[rank]] = static_cast<VertexId>(rank);
  }
  return layout;
}

/// Hub-seeded BFS: repeatedly seed at the highest-degree unvisited vertex
/// and lay its reachable component out in breadth-first order, so each
/// neighborhood community occupies a contiguous stretch of the CSR. The
/// frontier expands over OUT-neighbors in adjacency order (the order the
/// samplers themselves walk).
VertexLayout BfsClusterLayout(const AttributedGraph& g) {
  const VertexId n = g.num_vertices();
  VertexLayout layout;
  layout.policy = LayoutPolicy::kBfsCluster;
  layout.new_of_old.assign(n, kInvalidVertex);
  layout.old_of_new.reserve(n);

  std::vector<uint8_t> visited(n, 0);
  std::queue<VertexId> frontier;
  for (const VertexId seed : HubOrder(g)) {
    if (visited[seed]) continue;
    visited[seed] = 1;
    frontier.push(seed);
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop();
      layout.new_of_old[v] =
          static_cast<VertexId>(layout.old_of_new.size());
      layout.old_of_new.push_back(v);
      for (const Neighbor& nb : g.OutNeighbors(v)) {
        if (visited[nb.dst]) continue;
        visited[nb.dst] = 1;
        frontier.push(nb.dst);
      }
    }
  }
  return layout;
}

}  // namespace

VertexLayout ComputeLayout(const AttributedGraph& graph, LayoutPolicy policy) {
  switch (policy) {
    case LayoutPolicy::kIdentity:
      return VertexLayout::Identity(graph.num_vertices());
    case LayoutPolicy::kDegreeDescending:
      return DegreeDescendingLayout(graph);
    case LayoutPolicy::kBfsCluster:
      return BfsClusterLayout(graph);
    case LayoutPolicy::kHotFirst:
      ALIGRAPH_CHECK(false)
          << "kHotFirst needs a traffic ranking; use ComputeHotFirstLayout";
      break;
  }
  ALIGRAPH_CHECK(false) << "unknown layout policy";
  return VertexLayout::Identity(graph.num_vertices());
}

VertexLayout ComputeHotFirstLayout(const AttributedGraph& graph,
                                   std::span<const VertexId> hot_order) {
  const VertexId n = graph.num_vertices();
  VertexLayout layout;
  layout.policy = LayoutPolicy::kHotFirst;
  layout.new_of_old.assign(n, kInvalidVertex);
  layout.old_of_new.reserve(n);
  for (const VertexId v : hot_order) {
    ALIGRAPH_CHECK_LT(v, n) << "hot_order entry out of range";
    if (layout.new_of_old[v] != kInvalidVertex) continue;  // first wins
    layout.new_of_old[v] = static_cast<VertexId>(layout.old_of_new.size());
    layout.old_of_new.push_back(v);
  }
  for (VertexId v = 0; v < n; ++v) {
    if (layout.new_of_old[v] != kInvalidVertex) continue;
    layout.new_of_old[v] = static_cast<VertexId>(layout.old_of_new.size());
    layout.old_of_new.push_back(v);
  }
  return layout;
}

Result<AttributedGraph> ApplyLayout(const AttributedGraph& graph,
                                    const VertexLayout& layout) {
  if (!IsValidPermutation(layout, graph.num_vertices())) {
    return Status::InvalidArgument(
        "layout is not a permutation of the graph's vertex set");
  }
  return graph.Reordered(layout.new_of_old, layout.old_of_new);
}

std::vector<VertexId> MapToNew(const VertexLayout& layout,
                               std::span<const VertexId> old_ids) {
  std::vector<VertexId> out(old_ids.size());
  for (size_t i = 0; i < old_ids.size(); ++i) {
    out[i] = layout.ToNew(old_ids[i]);
  }
  return out;
}

std::vector<VertexId> MapToOld(const VertexLayout& layout,
                               std::span<const VertexId> new_ids) {
  std::vector<VertexId> out(new_ids.size());
  for (size_t i = 0; i < new_ids.size(); ++i) {
    out[i] = layout.ToOld(new_ids[i]);
  }
  return out;
}

nn::Matrix PermuteRows(const nn::Matrix& rows, const VertexLayout& layout) {
  ALIGRAPH_CHECK_EQ(rows.rows(), layout.num_vertices());
  nn::Matrix out(rows.rows(), rows.cols());
  for (size_t v = 0; v < rows.rows(); ++v) {
    const std::span<const float> src = rows.Row(v);
    std::copy(src.begin(), src.end(),
              out.Row(layout.ToNew(static_cast<VertexId>(v))).begin());
  }
  return out;
}

ScanCost ModeledScanCost(const AttributedGraph& graph,
                         std::span<const VertexId> visits,
                         const CacheModelConfig& config) {
  ALIGRAPH_CHECK_GT(config.line_bytes, 0u);
  ALIGRAPH_CHECK_GT(config.cache_lines, 0u);
  LruCache<uint64_t, uint8_t> lines(config.cache_lines);
  ScanCost cost;
  uint64_t prev_line = ~uint64_t{0};
  for (const VertexId v : visits) {
    const size_t degree = graph.OutDegree(v);
    if (degree == 0) continue;
    const uint64_t begin_byte =
        graph.OutAdjacencyOffset(v) * sizeof(Neighbor);
    const uint64_t end_byte = begin_byte + degree * sizeof(Neighbor);
    const uint64_t first = begin_byte / config.line_bytes;
    const uint64_t last = (end_byte - 1) / config.line_bytes;
    for (uint64_t line = first; line <= last; ++line) {
      ++cost.line_accesses;
      if (lines.Get(line).has_value()) {
        ++cost.hits;
      } else {
        ++cost.misses;
        // The stream prefetcher has the NEXT line in flight by the time a
        // monotone walk reaches it, so only non-sequential misses pay the
        // full DRAM fetch.
        if (config.stream_prefetch && line == prev_line + 1) {
          ++cost.prefetched;
        }
        lines.Put(line, 1);
      }
      prev_line = line;
    }
  }
  cost.modeled_us =
      static_cast<double>(cost.hits + cost.prefetched) * config.hit_us +
      static_cast<double>(cost.misses - cost.prefetched) * config.miss_us;
  return cost;
}

}  // namespace layout
}  // namespace aligraph
