/// \file layout.h
/// \brief Locality-preserving vertex reordering for the sampling hot path.
///
/// GNNSampler (PAPERS.md, arXiv:2108.11571) measures that where a graph's
/// vertices sit in memory is the dominant lever for sampling throughput:
/// k-hop expansion touches adjacency lists in frontier order, and on a
/// power-law graph (GLISP, arXiv:2401.03114) a handful of hub vertices
/// absorb most of those touches. A layout that packs the hot vertices'
/// adjacency together turns a DRAM-latency walk into an L2-resident one.
///
/// This subsystem computes a vertex permutation (LayoutPolicy), rebuilds
/// graph storage under it (ApplyLayout -> AttributedGraph::Reordered), and
/// keeps the old<->new id maps so everything OUTSIDE the walk — partition
/// plans, cache configs, serve roots, reports — continues to speak
/// original ids. The contract, enforced by tests/test_layout.cc rather
/// than argued: a reordering is OBSERVATIONALLY INVISIBLE. Sampling,
/// block building and GNN forward on the reordered graph are bit-identical
/// (after mapping ids back through the layout) to the identity layout,
/// because Reordered preserves per-vertex neighbor order and samplers
/// consume their RNG streams positionally.
///
/// The payoff is modeled, not just measured: ModeledScanCost replays a
/// recorded access trace through an LRU cache-line model over the CSR's
/// actual storage geometry, so bench_table4's reorder-on/off variants gate
/// a deterministic `sampling.reorder_speedup` in CI.

#ifndef ALIGRAPH_LAYOUT_LAYOUT_H_
#define ALIGRAPH_LAYOUT_LAYOUT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "nn/matrix.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace layout {

/// \brief How the permutation is chosen.
enum class LayoutPolicy {
  kIdentity,          ///< no-op layout (the differential baseline)
  kDegreeDescending,  ///< hub-first: new id = rank by descending out+in degree
  kBfsCluster,        ///< hub-seeded BFS: communities land contiguously
  kHotFirst,  ///< traffic-first: caller-supplied access ranking leads; see
              ///< ComputeHotFirstLayout
};

const char* PolicyName(LayoutPolicy policy);

/// \brief A vertex permutation with both directions materialized.
///
/// new_of_old[v] is where old vertex v lives in the reordered graph;
/// old_of_new is the inverse. Identity layouts keep both maps (uniform
/// code paths beat special cases in differential tests).
struct VertexLayout {
  LayoutPolicy policy = LayoutPolicy::kIdentity;
  std::vector<VertexId> new_of_old;
  std::vector<VertexId> old_of_new;

  VertexId ToNew(VertexId old_id) const { return new_of_old[old_id]; }
  VertexId ToOld(VertexId new_id) const { return old_of_new[new_id]; }
  size_t num_vertices() const { return new_of_old.size(); }

  bool IsIdentity() const {
    for (size_t v = 0; v < new_of_old.size(); ++v) {
      if (new_of_old[v] != static_cast<VertexId>(v)) return false;
    }
    return true;
  }

  static VertexLayout Identity(VertexId n);
};

/// True iff `layout` holds a bijection over [0, n) with a consistent
/// inverse — the precondition ApplyLayout enforces.
bool IsValidPermutation(const VertexLayout& layout, VertexId n);

/// Computes the permutation for a policy. Deterministic for a fixed graph:
/// all ties break toward the smaller old id. kHotFirst needs a traffic
/// ranking and must go through ComputeHotFirstLayout instead (CHECK-fails
/// here).
VertexLayout ComputeLayout(const AttributedGraph& graph, LayoutPolicy policy);

/// Traffic-aware layout: vertices take new ids in `hot_order` rank order
/// (descending expected access frequency — e.g. item popularity from serve
/// logs, which on real traffic correlates only loosely with degree).
/// `hot_order` may be partial and may repeat ids; the first occurrence
/// wins and every unranked vertex follows in ascending old id. The result
/// packs the traffic-hot working set into a contiguous CSR prefix, which
/// is what the coalesced batch gather turns into a near-monotone walk.
VertexLayout ComputeHotFirstLayout(const AttributedGraph& graph,
                                   std::span<const VertexId> hot_order);

/// Rebuilds graph storage under `layout` (per-vertex neighbor order
/// preserved; attribute stores shared). InvalidArgument when the layout is
/// not a size-matching permutation of the graph's vertex set.
Result<AttributedGraph> ApplyLayout(const AttributedGraph& graph,
                                    const VertexLayout& layout);

/// Maps ids elementwise into the reordered space (for roots entering a
/// reordered walk) ...
std::vector<VertexId> MapToNew(const VertexLayout& layout,
                               std::span<const VertexId> old_ids);
/// ... and back into original space (for sampled ids leaving it).
std::vector<VertexId> MapToOld(const VertexLayout& layout,
                               std::span<const VertexId> new_ids);

/// Permutes a per-vertex row matrix into the reordered space: output row
/// layout.ToNew(v) is input row v. Feature tables fed to a reordered graph
/// must go through this so vertex payloads follow their ids.
nn::Matrix PermuteRows(const nn::Matrix& rows, const VertexLayout& layout);

/// \brief NeighborSource decorator that records every vertex whose
/// adjacency is read, in read order. The trace (in the inner source's id
/// space) is what ModeledScanCost replays under different layouts.
class RecordingNeighborSource : public NeighborSource {
 public:
  explicit RecordingNeighborSource(NeighborSource& inner) : inner_(inner) {}

  std::span<const Neighbor> Neighbors(VertexId v) override {
    trace_.push_back(v);
    return inner_.Neighbors(v);
  }
  std::span<const Neighbor> Neighbors(VertexId v, EdgeType type) override {
    trace_.push_back(v);
    return inner_.Neighbors(v, type);
  }
  // Batched reads are recorded in ascending-id order — mirroring the
  // COALESCED walk LocalNeighborSource::NeighborsBatch actually performs —
  // so a replay of the trace models the memory-touch order, not the slot
  // order.
  void NeighborsBatch(std::span<const VertexId> vertices, EdgeType type,
                      BatchResult* out) override {
    const size_t start = trace_.size();
    trace_.insert(trace_.end(), vertices.begin(), vertices.end());
    std::sort(trace_.begin() + static_cast<ptrdiff_t>(start), trace_.end());
    inner_.NeighborsBatch(vertices, type, out);
  }

  const std::vector<VertexId>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

 private:
  NeighborSource& inner_;
  std::vector<VertexId> trace_;
};

/// \brief Modeled memory hierarchy for the CSR walk: a fully associative
/// LRU over cache lines of the merged out-neighbor array. Deliberately
/// simple — the model only has to rank layouts, and LRU over lines is the
/// standard locality proxy (GNNSampler evaluates layouts the same way).
struct CacheModelConfig {
  size_t line_bytes = 64;
  /// Lines the modeled cache holds. The default (4096 lines = 256 KiB of
  /// adjacency) is an L2-ish budget; benches size it relative to the graph
  /// so the model stays scale-independent.
  size_t cache_lines = 4096;
  double hit_us = 0.001;   ///< modeled cost per line on hit
  double miss_us = 0.020;  ///< modeled cost per line on miss (DRAM fetch)
  /// Model the hardware stream prefetcher: a miss on the line immediately
  /// after the previously accessed line is charged hit_us (the fetch was
  /// already in flight). This is what rewards layouts that turn a hot
  /// batch gather into a monotone walk over a packed prefix.
  bool stream_prefetch = true;
};

/// \brief Outcome of replaying one access trace through the cache model.
struct ScanCost {
  uint64_t line_accesses = 0;  ///< total cache-line touches
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Misses hidden by the modeled stream prefetcher (a subset of
  /// `misses`); each is charged hit_us instead of miss_us.
  uint64_t prefetched = 0;
  double modeled_us = 0;  ///< (hits + prefetched) * hit_us + rest * miss_us

  double HitRate() const {
    return line_accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(line_accesses);
  }
};

/// Replays `visits` (ids in the graph's OWN space, in access order) as
/// whole-adjacency scans through the LRU line model over the graph's
/// merged out-CSR geometry. Pure function of (graph layout, trace, config)
/// — bit-stable across machines, which is what lets CI gate the
/// identity-vs-reordered cost ratio.
ScanCost ModeledScanCost(const AttributedGraph& graph,
                         std::span<const VertexId> visits,
                         const CacheModelConfig& config = {});

}  // namespace layout
}  // namespace aligraph

#endif  // ALIGRAPH_LAYOUT_LAYOUT_H_
