/// \file walks.h
/// \brief Random-walk corpus generators: uniform (DeepWalk), biased
/// (Node2Vec p/q) and metapath-constrained (Metapath2Vec) walks.

#ifndef ALIGRAPH_NN_WALKS_H_
#define ALIGRAPH_NN_WALKS_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace aligraph {
namespace nn {

/// \brief Walk-corpus options.
struct WalkConfig {
  uint32_t walks_per_vertex = 4;
  uint32_t walk_length = 10;
  uint64_t seed = 5;
};

/// Uniform random walks over the merged adjacency (DeepWalk).
std::vector<std::vector<VertexId>> UniformWalks(const AttributedGraph& graph,
                                                const WalkConfig& config);

/// Node2Vec second-order walks: return weight 1/p, in-neighborhood weight 1,
/// outward weight 1/q.
std::vector<std::vector<VertexId>> Node2VecWalks(const AttributedGraph& graph,
                                                 const WalkConfig& config,
                                                 double p, double q);

/// Metapath-constrained walks: step i follows an edge of type
/// metapath[i % metapath.size()]; walks stop early when no such edge exists.
std::vector<std::vector<VertexId>> MetapathWalks(
    const AttributedGraph& graph, const WalkConfig& config,
    const std::vector<EdgeType>& metapath,
    const std::vector<VertexId>& start_vertices);

/// Walks restricted to edges of a single type (one layer of a multiplex
/// network, as used by PMNE / MNE / GATNE).
std::vector<std::vector<VertexId>> LayerWalks(const AttributedGraph& graph,
                                              const WalkConfig& config,
                                              EdgeType layer);

}  // namespace nn
}  // namespace aligraph

#endif  // ALIGRAPH_NN_WALKS_H_
