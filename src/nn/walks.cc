#include "nn/walks.h"

#include <algorithm>
#include <unordered_set>

namespace aligraph {
namespace nn {
namespace {

// Appends `count` walks from each start vertex using `step` to pick the
// next vertex (returning kInvalidVertex to stop the walk early).
template <typename StepFn>
std::vector<std::vector<VertexId>> GenerateWalks(
    std::span<const VertexId> starts, const WalkConfig& config, StepFn step) {
  std::vector<std::vector<VertexId>> walks;
  walks.reserve(starts.size() * config.walks_per_vertex);
  Rng rng(config.seed);
  for (uint32_t w = 0; w < config.walks_per_vertex; ++w) {
    for (VertexId start : starts) {
      std::vector<VertexId> walk;
      walk.reserve(config.walk_length);
      walk.push_back(start);
      while (walk.size() < config.walk_length) {
        const VertexId next = step(walk, rng);
        if (next == kInvalidVertex) break;
        walk.push_back(next);
      }
      if (walk.size() >= 2) walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::vector<VertexId> AllVertices(const AttributedGraph& graph) {
  std::vector<VertexId> vs(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) vs[v] = v;
  return vs;
}

}  // namespace

std::vector<std::vector<VertexId>> UniformWalks(const AttributedGraph& graph,
                                                const WalkConfig& config) {
  const std::vector<VertexId> starts = AllVertices(graph);
  return GenerateWalks(
      std::span<const VertexId>(starts), config,
      [&graph](const std::vector<VertexId>& walk, Rng& rng) -> VertexId {
        const auto nbs = graph.OutNeighbors(walk.back());
        if (nbs.empty()) return kInvalidVertex;
        return nbs[rng.Uniform(nbs.size())].dst;
      });
}

std::vector<std::vector<VertexId>> Node2VecWalks(const AttributedGraph& graph,
                                                 const WalkConfig& config,
                                                 double p, double q) {
  const std::vector<VertexId> starts = AllVertices(graph);
  return GenerateWalks(
      std::span<const VertexId>(starts), config,
      [&graph, p, q](const std::vector<VertexId>& walk, Rng& rng) -> VertexId {
        const VertexId cur = walk.back();
        const auto nbs = graph.OutNeighbors(cur);
        if (nbs.empty()) return kInvalidVertex;
        if (walk.size() < 2) return nbs[rng.Uniform(nbs.size())].dst;
        const VertexId prev = walk[walk.size() - 2];
        // Second-order bias: 1/p to return, 1 to stay in prev's
        // neighborhood, 1/q to move outward.
        std::unordered_set<VertexId> prev_nbs;
        for (const Neighbor& nb : graph.OutNeighbors(prev)) {
          prev_nbs.insert(nb.dst);
        }
        double total = 0;
        for (const Neighbor& nb : nbs) {
          total += nb.dst == prev ? 1.0 / p
                                  : (prev_nbs.count(nb.dst) ? 1.0 : 1.0 / q);
        }
        double r = rng.NextDouble() * total;
        for (const Neighbor& nb : nbs) {
          r -= nb.dst == prev ? 1.0 / p
                              : (prev_nbs.count(nb.dst) ? 1.0 : 1.0 / q);
          if (r <= 0) return nb.dst;
        }
        return nbs.back().dst;
      });
}

std::vector<std::vector<VertexId>> MetapathWalks(
    const AttributedGraph& graph, const WalkConfig& config,
    const std::vector<EdgeType>& metapath,
    const std::vector<VertexId>& start_vertices) {
  if (metapath.empty()) return {};
  return GenerateWalks(
      std::span<const VertexId>(start_vertices), config,
      [&graph, &metapath](const std::vector<VertexId>& walk,
                          Rng& rng) -> VertexId {
        const EdgeType et = metapath[(walk.size() - 1) % metapath.size()];
        const auto nbs = graph.OutNeighbors(walk.back(), et);
        if (nbs.empty()) return kInvalidVertex;
        return nbs[rng.Uniform(nbs.size())].dst;
      });
}

std::vector<std::vector<VertexId>> LayerWalks(const AttributedGraph& graph,
                                              const WalkConfig& config,
                                              EdgeType layer) {
  // Start only from vertices that carry edges of this layer.
  std::vector<VertexId> starts;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (!graph.OutNeighbors(v, layer).empty()) starts.push_back(v);
  }
  return GenerateWalks(
      std::span<const VertexId>(starts), config,
      [&graph, layer](const std::vector<VertexId>& walk, Rng& rng) -> VertexId {
        const auto nbs = graph.OutNeighbors(walk.back(), layer);
        if (nbs.empty()) return kInvalidVertex;
        return nbs[rng.Uniform(nbs.size())].dst;
      });
}

}  // namespace nn
}  // namespace aligraph
