/// \file optimizer.h
/// \brief Trainable parameters and the SGD / AdaGrad / Adam update rules
/// used by every model in the algorithm layer.

#ifndef ALIGRAPH_NN_OPTIMIZER_H_
#define ALIGRAPH_NN_OPTIMIZER_H_

#include <memory>
#include <string>

#include "nn/matrix.h"

namespace aligraph {
namespace nn {

/// \brief A dense parameter with its gradient accumulator and (lazily
/// allocated) optimizer state.
struct Param {
  Matrix value;
  Matrix grad;
  Matrix m;  ///< first-moment / accumulator state
  Matrix v;  ///< second-moment state (Adam only)

  explicit Param(Matrix initial)
      : value(std::move(initial)), grad(value.rows(), value.cols()) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

/// \brief Update-rule interface. Implementations consume and clear the
/// accumulated gradient.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual void Step(Param& param) = 0;

  void set_learning_rate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }

 protected:
  float lr_ = 0.05f;
};

/// \brief Plain SGD: w -= lr * g.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr = 0.05f) { lr_ = lr; }
  std::string name() const override { return "sgd"; }
  void Step(Param& param) override;
};

/// \brief AdaGrad: per-weight learning-rate decay by accumulated squared
/// gradients.
class AdaGrad : public Optimizer {
 public:
  explicit AdaGrad(float lr = 0.05f, float eps = 1e-8f) : eps_(eps) {
    lr_ = lr;
  }
  std::string name() const override { return "adagrad"; }
  void Step(Param& param) override;

 private:
  float eps_;
};

/// \brief Adam with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr = 0.01f, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : beta1_(beta1), beta2_(beta2), eps_(eps) {
    lr_ = lr;
  }
  std::string name() const override { return "adam"; }
  void Step(Param& param) override;

 private:
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
};

}  // namespace nn
}  // namespace aligraph

#endif  // ALIGRAPH_NN_OPTIMIZER_H_
