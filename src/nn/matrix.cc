#include "nn/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace aligraph {
namespace nn {

Matrix Matrix::Xavier(size_t rows, size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (float& v : m.data_) v = (rng.NextFloat() * 2.0f - 1.0f) * bound;
  return m;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, float stddev, Rng& rng) {
  Matrix m(rows, cols);
  for (float& v : m.data_) {
    v = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ALIGRAPH_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ALIGRAPH_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

float Matrix::SquaredNorm() const {
  float acc = 0;
  for (float v : data_) acc += v * v;
  return acc;
}

std::string Matrix::ShapeString() const {
  std::ostringstream os;
  os << "[" << rows_ << "x" << cols_ << "]";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  ALIGRAPH_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  // ikj loop order: streams through b and c rows, cache friendly.
  for (size_t i = 0; i < a.rows(); ++i) {
    float* crow = c.Row(i).data();
    for (size_t k = 0; k < a.cols(); ++k) {
      const float aik = a.At(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.Row(k).data();
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  ALIGRAPH_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      c.At(i, j) = Dot(a.Row(i), b.Row(j));
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  ALIGRAPH_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  for (size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.Row(k).data();
    const float* brow = b.Row(k).data();
    for (size_t i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.Row(i).data();
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

void AddBiasRow(Matrix& a, const Matrix& bias) {
  ALIGRAPH_CHECK_EQ(bias.rows(), 1u);
  ALIGRAPH_CHECK_EQ(bias.cols(), a.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    float* row = a.Row(i).data();
    const float* b = bias.Row(0).data();
    for (size_t j = 0; j < a.cols(); ++j) row[j] += b[j];
  }
}

void ReluInPlace(Matrix& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    for (float& v : a.Row(i)) v = std::max(v, 0.0f);
  }
}

Matrix ReluBackward(const Matrix& output, const Matrix& grad) {
  Matrix g = grad;
  for (size_t i = 0; i < g.rows(); ++i) {
    auto out = output.Row(i);
    auto row = g.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (out[j] <= 0.0f) row[j] = 0.0f;
    }
  }
  return g;
}

void TanhInPlace(Matrix& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    for (float& v : a.Row(i)) v = std::tanh(v);
  }
}

Matrix TanhBackward(const Matrix& output, const Matrix& grad) {
  Matrix g = grad;
  for (size_t i = 0; i < g.rows(); ++i) {
    auto out = output.Row(i);
    auto row = g.Row(i);
    for (size_t j = 0; j < row.size(); ++j) row[j] *= 1.0f - out[j] * out[j];
  }
  return g;
}

void SigmoidInPlace(Matrix& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    for (float& v : a.Row(i)) v = 1.0f / (1.0f + std::exp(-v));
  }
}

void L2NormalizeRows(Matrix& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    auto row = a.Row(i);
    float norm = 0;
    for (float v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-12f) continue;
    for (float& v : row) v /= norm;
  }
}

void SoftmaxRows(Matrix& a) {
  for (size_t i = 0; i < a.rows(); ++i) {
    auto row = a.Row(i);
    float mx = row[0];
    for (float v : row) mx = std::max(mx, v);
    float sum = 0;
    for (float& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    for (float& v : row) v /= sum;
  }
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  ALIGRAPH_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    auto out = c.Row(i);
    auto ra = a.Row(i);
    auto rb = b.Row(i);
    std::copy(ra.begin(), ra.end(), out.begin());
    std::copy(rb.begin(), rb.end(), out.begin() + ra.size());
  }
  return c;
}

float Dot(std::span<const float> a, std::span<const float> b) {
  ALIGRAPH_CHECK_EQ(a.size(), b.size());
  float acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  ALIGRAPH_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace nn
}  // namespace aligraph
