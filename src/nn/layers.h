/// \file layers.h
/// \brief Trainable layers with explicit forward/backward passes — the
/// building blocks models in the algorithm layer compose by hand (the
/// paper's operators are likewise "made up of forward and backward
/// computations").

#ifndef ALIGRAPH_NN_LAYERS_H_
#define ALIGRAPH_NN_LAYERS_H_

#include <vector>

#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace aligraph {
namespace nn {

/// \brief Fully connected layer Y = X W + b.
class Linear {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng& rng)
      : w_(Matrix::Xavier(in_dim, out_dim, rng)),
        b_(Matrix(1, out_dim)) {}

  /// Forward; caches the input for the next Backward call.
  Matrix Forward(const Matrix& x);

  /// Backward: accumulates dW, db from dY and returns dX.
  Matrix Backward(const Matrix& grad_out);

  /// Stateless variants for layers used at several sites in one step: the
  /// caller keeps the input and passes it back at backward time.
  Matrix ForwardAt(const Matrix& x) const;
  Matrix BackwardAt(const Matrix& x, const Matrix& grad_out);

  /// Applies the optimizer to both parameters and clears gradients.
  void Apply(Optimizer& opt) {
    opt.Step(w_);
    opt.Step(b_);
  }

  size_t in_dim() const { return w_.value.rows(); }
  size_t out_dim() const { return w_.value.cols(); }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  Param w_;
  Param b_;
  Matrix last_input_;
};

/// \brief Embedding table with sparse SGD updates, the dominant parameter
/// store of every random-walk model.
class EmbeddingTable {
 public:
  EmbeddingTable(size_t num_rows, size_t dim, Rng& rng, float scale = 0.01f);

  size_t num_rows() const { return table_.rows(); }
  size_t dim() const { return table_.cols(); }

  std::span<float> Row(size_t id) { return table_.Row(id); }
  std::span<const float> Row(size_t id) const { return table_.Row(id); }

  /// Gathers rows into a [ids.size(), dim] matrix.
  Matrix Lookup(std::span<const uint32_t> ids) const;

  /// row[id] -= lr * grad (sparse SGD step on one row).
  void SgdUpdate(size_t id, std::span<const float> grad, float lr);

  /// Adds grad into the row of id scaled by alpha (for custom schedules).
  void Accumulate(size_t id, std::span<const float> grad, float alpha);

  const Matrix& matrix() const { return table_; }
  Matrix& mutable_matrix() { return table_; }

 private:
  Matrix table_;
};

/// \brief Binary cross-entropy with logits on a score vector.
/// Returns the mean loss; fills grad with dLoss/dlogit (same length).
float BceWithLogits(std::span<const float> logits,
                    std::span<const float> labels, std::span<float> grad);

/// \brief Softmax cross-entropy over rows of `logits` against integer
/// labels. Returns mean loss; grad gets dLoss/dlogits.
float SoftmaxXent(const Matrix& logits, std::span<const uint32_t> labels,
                  Matrix* grad);

}  // namespace nn
}  // namespace aligraph

#endif  // ALIGRAPH_NN_LAYERS_H_
