#include "nn/layers.h"

#include <cmath>

#include "common/logging.h"

namespace aligraph {
namespace nn {

Matrix Linear::Forward(const Matrix& x) {
  last_input_ = x;
  Matrix y = MatMul(x, w_.value);
  AddBiasRow(y, b_.value);
  return y;
}

Matrix Linear::Backward(const Matrix& grad_out) {
  return BackwardAt(last_input_, grad_out);
}

Matrix Linear::ForwardAt(const Matrix& x) const {
  Matrix y = MatMul(x, w_.value);
  AddBiasRow(y, b_.value);
  return y;
}

Matrix Linear::BackwardAt(const Matrix& x, const Matrix& grad_out) {
  ALIGRAPH_CHECK_EQ(grad_out.rows(), x.rows());
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T
  w_.grad += MatMulTransA(x, grad_out);
  for (size_t i = 0; i < grad_out.rows(); ++i) {
    auto g = grad_out.Row(i);
    auto b = b_.grad.Row(0);
    for (size_t j = 0; j < g.size(); ++j) b[j] += g[j];
  }
  return MatMulTransB(grad_out, w_.value);
}

EmbeddingTable::EmbeddingTable(size_t num_rows, size_t dim, Rng& rng,
                               float scale)
    : table_(Matrix::Gaussian(num_rows, dim, scale, rng)) {}

Matrix EmbeddingTable::Lookup(std::span<const uint32_t> ids) const {
  Matrix out(ids.size(), dim());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto src = Row(ids[i]);
    auto dst = out.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

void EmbeddingTable::SgdUpdate(size_t id, std::span<const float> grad,
                               float lr) {
  Axpy(-lr, grad, Row(id));
}

void EmbeddingTable::Accumulate(size_t id, std::span<const float> grad,
                                float alpha) {
  Axpy(alpha, grad, Row(id));
}

float BceWithLogits(std::span<const float> logits,
                    std::span<const float> labels, std::span<float> grad) {
  ALIGRAPH_CHECK_EQ(logits.size(), labels.size());
  ALIGRAPH_CHECK_EQ(logits.size(), grad.size());
  float loss = 0;
  const float n = static_cast<float>(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    const float x = logits[i];
    const float y = labels[i];
    // Numerically stable: log(1+exp(-|x|)) + max(x,0) - x*y
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) - x * y;
    const float p = 1.0f / (1.0f + std::exp(-x));
    grad[i] = (p - y) / n;
  }
  return loss / n;
}

float SoftmaxXent(const Matrix& logits, std::span<const uint32_t> labels,
                  Matrix* grad) {
  ALIGRAPH_CHECK_EQ(logits.rows(), labels.size());
  Matrix probs = logits;
  SoftmaxRows(probs);
  float loss = 0;
  const float n = static_cast<float>(logits.rows());
  if (grad != nullptr) *grad = probs;
  for (size_t i = 0; i < logits.rows(); ++i) {
    const float p = std::max(probs.At(i, labels[i]), 1e-12f);
    loss -= std::log(p);
    if (grad != nullptr) {
      grad->At(i, labels[i]) -= 1.0f;
      for (float& g : grad->Row(i)) g /= n;
    }
  }
  return loss / n;
}

}  // namespace nn
}  // namespace aligraph
