/// \file matrix.h
/// \brief Dense row-major float32 matrix — the tensor type of AliGraph's
/// training substrate. Covers exactly the operations the paper's models
/// need: GEMM, bias, elementwise activations and reductions.

#ifndef ALIGRAPH_NN_MATRIX_H_
#define ALIGRAPH_NN_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/random.h"

namespace aligraph {
namespace nn {

/// \brief Row-major dense matrix of float. A 1 x n matrix doubles as a
/// vector.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  /// Xavier/Glorot-uniform initialization.
  static Matrix Xavier(size_t rows, size_t cols, Rng& rng);

  /// Gaussian initialization with the given standard deviation.
  static Matrix Gaussian(size_t rows, size_t cols, float stddev, Rng& rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> Row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> Row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Elementwise in-place helpers.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);

  /// Frobenius norm squared.
  float SquaredNorm() const;

  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. A is [n,k], B is [k,m], C is [n,m].
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A * B^T. A is [n,k], B is [m,k], C is [n,m].
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// C = A^T * B. A is [k,n], B is [k,m], C is [n,m].
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// Adds a 1 x m bias row to every row of a.
void AddBiasRow(Matrix& a, const Matrix& bias);

/// Elementwise activations with their derivative-given-output forms.
void ReluInPlace(Matrix& a);
Matrix ReluBackward(const Matrix& output, const Matrix& grad);
void TanhInPlace(Matrix& a);
Matrix TanhBackward(const Matrix& output, const Matrix& grad);
void SigmoidInPlace(Matrix& a);

/// Row-wise L2 normalization (the per-hop normalize step of Algorithm 1).
void L2NormalizeRows(Matrix& a);

/// Row-wise softmax in place.
void SoftmaxRows(Matrix& a);

/// Horizontal concatenation [a | b].
Matrix ConcatCols(const Matrix& a, const Matrix& b);

float Dot(std::span<const float> a, std::span<const float> b);
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

}  // namespace nn
}  // namespace aligraph

#endif  // ALIGRAPH_NN_MATRIX_H_
