#include "nn/skipgram.h"

#include <algorithm>
#include <cmath>

namespace aligraph {
namespace nn {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

SkipGramModel::SkipGramModel(size_t num_vertices,
                             const SkipGramConfig& config)
    : config_(config),
      rng_(config.seed),
      in_(num_vertices, config.dim, rng_),
      out_(num_vertices, config.dim, rng_),
      center_grad_(config.dim, 0.0f) {}

float SkipGramModel::SgnsUpdate(VertexId center, VertexId context,
                                std::span<const VertexId> negatives) {
  auto h = in_.Row(center);
  std::fill(center_grad_.begin(), center_grad_.end(), 0.0f);
  float loss = 0;
  const float lr = config_.learning_rate;

  auto update_one = [&](VertexId target, float label) {
    auto ctx = out_.Row(target);
    const float score = Dot(h, ctx);
    const float p = SigmoidF(score);
    loss += label > 0.5f ? -std::log(std::max(p, 1e-7f))
                         : -std::log(std::max(1.0f - p, 1e-7f));
    const float g = p - label;  // dLoss/dscore
    // Defer the center update until all targets are processed.
    Axpy(g, ctx, center_grad_);
    out_.SgdUpdate(target, h, lr * g);
  };

  update_one(context, 1.0f);
  for (VertexId neg : negatives) update_one(neg, 0.0f);
  in_.SgdUpdate(center, center_grad_, lr);
  return loss / static_cast<float>(1 + negatives.size());
}

float SkipGramModel::TrainPair(VertexId center, VertexId context,
                               NegativeSampler& negative_sampler) {
  const std::vector<VertexId> negs =
      negative_sampler.Sample(config_.negatives, context);
  return SgnsUpdate(center, context, negs);
}

float SkipGramModel::TrainWalks(
    const std::vector<std::vector<VertexId>>& walks,
    NegativeSampler& negative_sampler) {
  float last_epoch_loss = 0;
  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    double loss = 0;
    size_t pairs = 0;
    for (const auto& walk : walks) {
      for (size_t i = 0; i < walk.size(); ++i) {
        const size_t lo = i > config_.window ? i - config_.window : 0;
        const size_t hi = std::min(walk.size(), i + config_.window + 1);
        for (size_t j = lo; j < hi; ++j) {
          if (j == i) continue;
          loss += TrainPair(walk[i], walk[j], negative_sampler);
          ++pairs;
        }
      }
    }
    last_epoch_loss =
        pairs == 0 ? 0.0f : static_cast<float>(loss / static_cast<double>(pairs));
  }
  return last_epoch_loss;
}

float SkipGramModel::TrainEdges(
    const std::vector<std::pair<VertexId, VertexId>>& edges,
    NegativeSampler& negative_sampler, uint32_t epochs) {
  float last = 0;
  for (uint32_t e = 0; e < epochs; ++e) {
    double loss = 0;
    for (const auto& [u, v] : edges) {
      loss += TrainPair(u, v, negative_sampler);
    }
    last = edges.empty()
               ? 0.0f
               : static_cast<float>(loss / static_cast<double>(edges.size()));
  }
  return last;
}

}  // namespace nn
}  // namespace aligraph
