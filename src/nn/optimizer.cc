#include "nn/optimizer.h"

#include <cmath>

namespace aligraph {
namespace nn {

void Sgd::Step(Param& param) {
  float* w = param.value.data();
  float* g = param.grad.data();
  for (size_t i = 0; i < param.value.size(); ++i) {
    w[i] -= lr_ * g[i];
  }
  param.ZeroGrad();
}

void AdaGrad::Step(Param& param) {
  if (param.m.empty()) {
    param.m = Matrix(param.value.rows(), param.value.cols());
  }
  float* w = param.value.data();
  float* g = param.grad.data();
  float* acc = param.m.data();
  for (size_t i = 0; i < param.value.size(); ++i) {
    acc[i] += g[i] * g[i];
    w[i] -= lr_ * g[i] / (std::sqrt(acc[i]) + eps_);
  }
  param.ZeroGrad();
}

void Adam::Step(Param& param) {
  if (param.m.empty()) {
    param.m = Matrix(param.value.rows(), param.value.cols());
    param.v = Matrix(param.value.rows(), param.value.cols());
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  float* w = param.value.data();
  float* g = param.grad.data();
  float* m = param.m.data();
  float* v = param.v.data();
  for (size_t i = 0; i < param.value.size(); ++i) {
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
  param.ZeroGrad();
}

}  // namespace nn
}  // namespace aligraph
