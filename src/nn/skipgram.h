/// \file skipgram.h
/// \brief Skip-gram with negative sampling (SGNS) — the training engine
/// behind DeepWalk, Node2Vec, LINE, Metapath2Vec, PMNE, MVE, MNE and the
/// random-walk part of GATNE.

#ifndef ALIGRAPH_NN_SKIPGRAM_H_
#define ALIGRAPH_NN_SKIPGRAM_H_

#include <vector>

#include "nn/layers.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace nn {

/// \brief SGNS options.
struct SkipGramConfig {
  size_t dim = 32;
  uint32_t window = 2;
  uint32_t negatives = 4;
  float learning_rate = 0.05f;
  uint32_t epochs = 2;
  uint64_t seed = 6;
};

/// \brief Two-table SGNS model: "in" embeddings are the output
/// representation, "out" embeddings are the context table.
class SkipGramModel {
 public:
  SkipGramModel(size_t num_vertices, const SkipGramConfig& config);

  /// One (center, context) update with negative samples drawn from
  /// `negative_sampler`. Returns the pair's loss.
  float TrainPair(VertexId center, VertexId context,
                  NegativeSampler& negative_sampler);

  /// Trains over a walk corpus with the configured window. Returns the
  /// average loss of the final epoch.
  float TrainWalks(const std::vector<std::vector<VertexId>>& walks,
                   NegativeSampler& negative_sampler);

  /// Trains directly on an edge list (LINE first-order style).
  float TrainEdges(const std::vector<std::pair<VertexId, VertexId>>& edges,
                   NegativeSampler& negative_sampler, uint32_t epochs);

  const EmbeddingTable& embeddings() const { return in_; }
  EmbeddingTable& mutable_embeddings() { return in_; }
  const EmbeddingTable& context_embeddings() const { return out_; }
  EmbeddingTable& mutable_context_embeddings() { return out_; }

 private:
  float SgnsUpdate(VertexId center, VertexId context,
                   std::span<const VertexId> negatives);

  SkipGramConfig config_;
  Rng rng_;
  EmbeddingTable in_;
  EmbeddingTable out_;
  std::vector<float> center_grad_;  // scratch, avoids per-pair allocation
};

}  // namespace nn
}  // namespace aligraph

#endif  // ALIGRAPH_NN_SKIPGRAM_H_
