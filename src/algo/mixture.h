/// \file mixture.h
/// \brief Mixture GNN (Section 4.2) — a multi-sense skip-gram for
/// polysemous vertices on heterogeneous graphs — plus the two
/// recommendation baselines it is compared against in Table 9: a denoising
/// autoencoder (DAE) and a beta-VAE over user-item interaction vectors.
///
/// Mixture GNN keeps S sense embeddings per vertex with a sense prior P;
/// each training pair is attributed softly to senses by posterior
/// responsibility and every sense is updated with its responsibility weight,
/// which maximizes the paper's lower bound L_low of the polysemous
/// likelihood (Equation 6) via negative sampling.

#ifndef ALIGRAPH_ALGO_MIXTURE_H_
#define ALIGRAPH_ALGO_MIXTURE_H_

#include <vector>

#include "algo/embedding_algorithm.h"
#include "nn/layers.h"
#include "nn/walks.h"

namespace aligraph {
namespace algo {

/// \brief The multi-sense Mixture GNN.
class MixtureGnn : public EmbeddingAlgorithm {
 public:
  struct Config {
    size_t senses = 3;
    size_t sense_dim = 12;  ///< output dim = senses * sense_dim
    nn::WalkConfig walks;
    uint32_t negatives = 4;
    uint32_t epochs = 2;
    float learning_rate = 0.05f;
    uint64_t seed = 47;
  };

  MixtureGnn() = default;
  explicit MixtureGnn(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "mixture_gnn"; }

  /// Returns the concatenation of all sense embeddings.
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief User-item recommendation baselines for Table 9. Both consume the
/// user-item edges of an AHG (edge types whose source is a user vertex) and
/// score items per user by reconstruction.
class InteractionAutoencoder {
 public:
  struct Config {
    size_t hidden = 64;
    uint32_t epochs = 5;
    float learning_rate = 0.01f;
    float corruption = 0.5f;  ///< DAE input dropout rate
    bool variational = false;
    float beta = 0.2f;        ///< KL weight (beta-VAE only)
    uint64_t seed = 53;
  };

  /// \param num_items size of the item vocabulary.
  InteractionAutoencoder(size_t num_items, Config config);

  std::string name() const { return config_.variational ? "beta_vae" : "dae"; }

  /// Trains on users' interaction vectors (item index lists).
  void Train(const std::vector<std::vector<uint32_t>>& user_items);

  /// Reconstruction scores over all items for one user's interactions.
  std::vector<float> Score(const std::vector<uint32_t>& user_items);

 private:
  Config config_;
  size_t num_items_;
  Rng rng_;
  nn::Linear encoder_;
  nn::Linear enc_logvar_;  // VAE only
  nn::Linear decoder_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_MIXTURE_H_
