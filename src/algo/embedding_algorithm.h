/// \file embedding_algorithm.h
/// \brief Common interface of the algorithm layer: every model consumes an
/// AttributedGraph and produces one d-dimensional embedding per vertex
/// (vertex-level embedding, the paper's problem definition in Section 2).

#ifndef ALIGRAPH_ALGO_EMBEDDING_ALGORITHM_H_
#define ALIGRAPH_ALGO_EMBEDDING_ALGORITHM_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "nn/matrix.h"

namespace aligraph {
namespace algo {

/// \brief Interface implemented by every embedding model in this layer,
/// baseline or in-house. Models with richer outputs (per-type embeddings,
/// per-timestamp embeddings) expose extra accessors on their concrete
/// classes; Embed() returns their primary vertex embedding.
class EmbeddingAlgorithm {
 public:
  virtual ~EmbeddingAlgorithm() = default;
  virtual std::string name() const = 0;

  /// Trains on the graph and returns an [n, d] embedding matrix.
  virtual Result<nn::Matrix> Embed(const AttributedGraph& graph) = 0;
};

/// Builds a feature matrix for GNN input: the vertex attribute vector
/// truncated / zero-padded to `dim`; vertices without attributes get
/// degree-derived features so every model has a usable signal.
nn::Matrix BuildFeatureMatrix(const AttributedGraph& graph, size_t dim);

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_EMBEDDING_ALGORITHM_H_
