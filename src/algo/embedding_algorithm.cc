#include "algo/embedding_algorithm.h"

#include <algorithm>
#include <cmath>

namespace aligraph {
namespace algo {

nn::Matrix BuildFeatureMatrix(const AttributedGraph& graph, size_t dim) {
  nn::Matrix x(graph.num_vertices(), dim);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto feats = graph.VertexFeatures(v);
    auto row = x.Row(v);
    if (!feats.empty()) {
      const size_t take = std::min(dim, feats.size());
      std::copy(feats.begin(), feats.begin() + take, row.begin());
    }
    if (feats.size() < dim) {
      // Degree-derived tail: log-degree plus a type indicator keeps
      // structurally different vertices separable without attributes.
      const size_t base = feats.size();
      row[base] = std::log1p(static_cast<float>(graph.OutDegree(v))) * 0.1f;
      if (base + 1 < dim) {
        row[base + 1] =
            std::log1p(static_cast<float>(graph.InDegree(v))) * 0.1f;
      }
      if (base + 2 < dim) {
        row[base + 2] = static_cast<float>(graph.vertex_type(v)) * 0.5f;
      }
    }
  }

  // Standardize columns (mean 0, unit variance). Raw attribute vectors
  // share a large common component; without centering, every embedding
  // collapses toward that common direction and pair scores carry no signal.
  const size_t n = x.rows();
  if (n > 1) {
    for (size_t j = 0; j < dim; ++j) {
      double mean = 0;
      for (size_t i = 0; i < n; ++i) mean += x.At(i, j);
      mean /= static_cast<double>(n);
      double var = 0;
      for (size_t i = 0; i < n; ++i) {
        const double d = x.At(i, j) - mean;
        var += d * d;
      }
      var /= static_cast<double>(n);
      const float inv_std =
          var > 1e-8 ? static_cast<float>(1.0 / std::sqrt(var)) : 0.0f;
      for (size_t i = 0; i < n; ++i) {
        x.At(i, j) = (x.At(i, j) - static_cast<float>(mean)) * inv_std;
      }
    }
  }
  return x;
}

}  // namespace algo
}  // namespace aligraph
