/// \file classic.h
/// \brief Classic homogeneous graph-embedding baselines (Table 1, category
/// C1): DeepWalk, Node2Vec and LINE. All three ignore vertex/edge types and
/// attributes, exactly as the paper's comparison does.

#ifndef ALIGRAPH_ALGO_CLASSIC_H_
#define ALIGRAPH_ALGO_CLASSIC_H_

#include "algo/embedding_algorithm.h"
#include "nn/skipgram.h"
#include "nn/walks.h"

namespace aligraph {
namespace algo {

/// \brief DeepWalk: uniform random walks + skip-gram with negative sampling.
class DeepWalk : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    nn::SkipGramConfig sgns;
  };

  DeepWalk() = default;
  explicit DeepWalk(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "deepwalk"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief Node2Vec: second-order biased walks (return parameter p, in-out
/// parameter q) + skip-gram.
class Node2Vec : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    nn::SkipGramConfig sgns;
    double p = 1.0;
    double q = 0.5;
  };

  Node2Vec() = default;
  explicit Node2Vec(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "node2vec"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief LINE: first-order proximity (SGNS on observed edges) plus
/// second-order proximity (SGNS with a separate context table), embeddings
/// concatenated as in the original paper.
class Line : public EmbeddingAlgorithm {
 public:
  struct Config {
    size_t dim = 32;          ///< total dimension (split across both orders)
    uint32_t epochs = 2;
    uint32_t negatives = 4;
    float learning_rate = 0.05f;
    uint64_t seed = 21;
  };

  Line() = default;
  explicit Line(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "line"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_CLASSIC_H_
