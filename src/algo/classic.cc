#include "algo/classic.h"

#include <numeric>

namespace aligraph {
namespace algo {
namespace {

std::vector<VertexId> AllVertices(const AttributedGraph& graph) {
  std::vector<VertexId> vs(graph.num_vertices());
  std::iota(vs.begin(), vs.end(), 0);
  return vs;
}

std::vector<std::pair<VertexId, VertexId>> AllEdges(
    const AttributedGraph& graph) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      edges.emplace_back(v, nb.dst);
    }
  }
  return edges;
}

}  // namespace

Result<nn::Matrix> DeepWalk::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const auto walks = nn::UniformWalks(graph, config_.walks);
  nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.sgns.seed);
  model.TrainWalks(walks, negs);
  return model.embeddings().matrix();
}

Result<nn::Matrix> Node2Vec::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const auto walks =
      nn::Node2VecWalks(graph, config_.walks, config_.p, config_.q);
  nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.sgns.seed);
  model.TrainWalks(walks, negs);
  return model.embeddings().matrix();
}

Result<nn::Matrix> Line::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const auto edges = AllEdges(graph);
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.seed);

  // First-order: symmetric SGNS directly on edges.
  nn::SkipGramConfig first;
  first.dim = config_.dim / 2;
  first.negatives = config_.negatives;
  first.learning_rate = config_.learning_rate;
  first.seed = config_.seed;
  nn::SkipGramModel order1(graph.num_vertices(), first);
  order1.TrainEdges(edges, negs, config_.epochs);

  // Second-order: the context table plays the role of LINE's "context"
  // vectors; training is the same SGNS but we keep a separate model so the
  // two proximities stay independent, then concatenate.
  nn::SkipGramConfig second = first;
  second.seed = config_.seed + 1;
  nn::SkipGramModel order2(graph.num_vertices(), second);
  // LINE-2nd samples edges proportionally to weight; our edges are
  // unweighted duplicates, so direct epochs over the list are equivalent.
  order2.TrainEdges(edges, negs, config_.epochs);

  return nn::ConcatCols(order1.embeddings().matrix(),
                        order2.context_embeddings().matrix());
}

}  // namespace algo
}  // namespace aligraph
