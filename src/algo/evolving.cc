#include "algo/evolving.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"
#include "nn/skipgram.h"
#include "nn/walks.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace algo {
namespace {

uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

// One labeled example of the evolution-prediction task.
struct Example {
  VertexId u;
  VertexId v;
  uint32_t label;  // EvolutionClass
};

// Builds the labeled transition t -> t+1: positives from the delta at t+1,
// negatives sampled among pairs with no edge at t+1.
std::vector<Example> BuildExamples(const DynamicGraph& dynamic, Timestamp t,
                                   size_t negatives_per_positive, Rng& rng) {
  std::vector<Example> examples;
  const auto& delta = dynamic.DeltaAt(t + 1);
  const AttributedGraph& next = dynamic.Snapshot(t + 1);
  std::unordered_set<uint64_t> edge_keys;
  for (VertexId v = 0; v < next.num_vertices(); ++v) {
    for (const Neighbor& nb : next.OutNeighbors(v)) {
      edge_keys.insert(PairKey(v, nb.dst));
    }
  }
  for (const DynamicEdge& de : delta) {
    examples.push_back(
        {de.edge.src, de.edge.dst,
         static_cast<uint32_t>(de.kind == EvolutionKind::kBurst
                                   ? EvolutionClass::kBurst
                                   : EvolutionClass::kNormal)});
    for (size_t k = 0; k < negatives_per_positive; ++k) {
      for (int tries = 0; tries < 32; ++tries) {
        const VertexId a =
            static_cast<VertexId>(rng.Uniform(next.num_vertices()));
        const VertexId b =
            static_cast<VertexId>(rng.Uniform(next.num_vertices()));
        if (a == b || edge_keys.count(PairKey(a, b)) > 0) continue;
        examples.push_back(
            {a, b, static_cast<uint32_t>(EvolutionClass::kNoEdge)});
        break;
      }
    }
  }
  return examples;
}

}  // namespace

std::string EvolvingGnn::name() const {
  switch (config_.embedder) {
    case DynamicEmbedder::kEvolvingGnn:
      return "evolving_gnn";
    case DynamicEmbedder::kStaticGraphSage:
      return "graphsage_static";
    case DynamicEmbedder::kTne:
      return "tne";
  }
  return "evolving";
}

Result<EvolvingScores> EvolvingGnn::Run(const DynamicGraph& dynamic) {
  const Timestamp T = dynamic.num_timestamps();
  if (T < 3) {
    return Status::InvalidArgument("need at least 3 timestamps");
  }
  const VertexId n = dynamic.Snapshot(1).num_vertices();
  const size_t d = config_.gnn.dim;
  Rng rng(config_.seed);

  // Per-snapshot embeddings h(t), t = 1..T-1 (the last snapshot is only
  // used as prediction target).
  std::vector<nn::Matrix> h(T);  // index t-1; h[T-1] unused
  switch (config_.embedder) {
    case DynamicEmbedder::kEvolvingGnn: {
      // Weights persist across snapshots: interleaved training.
      const nn::Matrix features =
          BuildFeatureMatrix(dynamic.Snapshot(1), config_.gnn.feature_dim);
      SageTrainer trainer(config_.gnn, features.cols());
      for (Timestamp t = 1; t < T; ++t) {
        trainer.TrainEpochs(dynamic.Snapshot(t), features,
                            config_.gnn.epochs);
      }
      // Re-infer every snapshot with the final weights so the classifier's
      // training and test features come from the same representation space.
      for (Timestamp t = 1; t < T; ++t) {
        h[t - 1] = trainer.Infer(dynamic.Snapshot(t), features);
      }
      break;
    }
    case DynamicEmbedder::kStaticGraphSage: {
      // A static model sees only the last training snapshot.
      GraphSage sage(config_.gnn);
      ALIGRAPH_ASSIGN_OR_RETURN(nn::Matrix last,
                                sage.Embed(dynamic.Snapshot(T - 1)));
      for (Timestamp t = 1; t < T; ++t) h[t - 1] = last;
      break;
    }
    case DynamicEmbedder::kTne: {
      // Per-snapshot DeepWalk warm-started from the previous snapshot:
      // temporally smoothed embeddings in one consistent space.
      nn::SkipGramConfig sg;
      sg.dim = d;
      sg.seed = config_.seed;
      nn::SkipGramModel model(n, sg);
      nn::WalkConfig wc;
      wc.walks_per_vertex = 2;
      wc.walk_length = 8;
      wc.seed = config_.seed + 3;
      for (Timestamp t = 1; t < T; ++t) {
        const AttributedGraph& snap = dynamic.Snapshot(t);
        std::vector<VertexId> all(n);
        std::iota(all.begin(), all.end(), 0);
        NegativeSampler negs(snap, all, 0.75, config_.seed + t);
        model.TrainWalks(nn::UniformWalks(snap, wc), negs);
        h[t - 1] = model.embeddings().matrix();
      }
      break;
    }
  }

  // Temporal state: gated recurrence over snapshots.
  std::vector<nn::Matrix> temporal(T);
  temporal[0] = h[0];
  const float gate = config_.temporal_gate;
  for (Timestamp t = 2; t < T; ++t) {
    temporal[t - 1] = temporal[t - 2];
    temporal[t - 1] *= (1.0f - gate);
    nn::Matrix scaled = h[t - 1];
    scaled *= gate;
    temporal[t - 1] += scaled;
  }

  const bool use_temporal =
      config_.embedder != DynamicEmbedder::kStaticGraphSage;

  // Pair features: [h_u ⊙ h_v || h̃_u ⊙ h̃_v].
  const size_t feat_dim = 2 * d;
  auto pair_features = [&](Timestamp t, VertexId u, VertexId v,
                           nn::Matrix* row_out, size_t row) {
    auto hu = h[t - 1].Row(u);
    auto hv = h[t - 1].Row(v);
    auto dst = row_out->Row(row);
    for (size_t j = 0; j < d; ++j) dst[j] = hu[j] * hv[j];
    const nn::Matrix& temp = use_temporal ? temporal[t - 1] : h[t - 1];
    auto tu = temp.Row(u);
    auto tv = temp.Row(v);
    for (size_t j = 0; j < d; ++j) dst[d + j] = tu[j] * tv[j];
  };

  // Classifier over 3 evolution classes.
  Rng crng(config_.seed + 11);
  nn::Linear classifier(feat_dim, 3, crng);
  nn::Adam opt(config_.classifier_lr);

  std::vector<std::vector<Example>> train_sets;
  for (Timestamp t = 1; t + 1 < T; ++t) {
    train_sets.push_back(
        BuildExamples(dynamic, t, config_.negatives_per_positive, rng));
  }
  const std::vector<Example> test =
      BuildExamples(dynamic, T - 1, config_.negatives_per_positive, rng);

  for (uint32_t epoch = 0; epoch < config_.classifier_epochs; ++epoch) {
    for (size_t si = 0; si + 1 < static_cast<size_t>(T - 1); ++si) {
      const auto& examples = train_sets[si];
      if (examples.empty()) continue;
      nn::Matrix x(examples.size(), feat_dim);
      std::vector<uint32_t> labels(examples.size());
      for (size_t i = 0; i < examples.size(); ++i) {
        pair_features(static_cast<Timestamp>(si + 1), examples[i].u,
                      examples[i].v, &x, i);
        labels[i] = examples[i].label;
      }
      nn::Matrix logits = classifier.Forward(x);
      nn::Matrix grad;
      nn::SoftmaxXent(logits, labels, &grad);
      classifier.Backward(grad);
      classifier.Apply(opt);
    }
  }

  // Test on the final transition; report the two scenarios separately.
  EvolvingScores scores;
  std::vector<uint32_t> labels_normal, preds_normal, labels_burst,
      preds_burst;
  nn::Matrix x(1, feat_dim);
  for (const Example& ex : test) {
    pair_features(T - 1, ex.u, ex.v, &x, 0);
    nn::Matrix logits = classifier.ForwardAt(x);
    uint32_t pred = 0;
    for (uint32_t c = 1; c < 3; ++c) {
      if (logits.At(0, c) > logits.At(0, pred)) pred = c;
    }
    if (ex.label != static_cast<uint32_t>(EvolutionClass::kBurst)) {
      labels_normal.push_back(ex.label);
      preds_normal.push_back(pred);
    }
    if (ex.label != static_cast<uint32_t>(EvolutionClass::kNormal)) {
      labels_burst.push_back(ex.label);
      preds_burst.push_back(pred);
    }
  }
  scores.normal = eval::ComputeMultiClassF1(labels_normal, preds_normal, 3);
  scores.burst = eval::ComputeMultiClassF1(labels_burst, preds_burst, 3);
  return scores;
}

}  // namespace algo
}  // namespace aligraph
