#include "algo/gatne.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sampling/sampler.h"

namespace aligraph {
namespace algo {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Result<nn::Matrix> Gatne::Embed(const AttributedGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  const size_t T = graph.num_edge_types();
  const size_t d = config_.dim;
  const size_t s = config_.spec_dim;
  const size_t a_dim = config_.att_dim;
  Rng rng(config_.seed);

  const nn::Matrix x = BuildFeatureMatrix(graph, config_.feature_dim);

  nn::EmbeddingTable base(n, d, rng, 0.05f);
  nn::EmbeddingTable context(n, d, rng, 0.05f);
  std::vector<nn::EmbeddingTable> spec;  // per type, n x s
  std::vector<nn::Matrix> m;             // per type, s x d
  std::vector<nn::Matrix> w_att;         // per type, s x a
  std::vector<nn::Matrix> v_att;         // per type, 1 x a
  for (size_t t = 0; t < T; ++t) {
    spec.emplace_back(n, s, rng, 0.05f);
    m.push_back(nn::Matrix::Xavier(s, d, rng));
    w_att.push_back(nn::Matrix::Xavier(s, a_dim, rng));
    v_att.push_back(nn::Matrix::Xavier(1, a_dim, rng));
  }
  // Start the attribute projection small: standardized feature vectors have
  // norm ~sqrt(feature_dim), and a full-scale Xavier projection would let
  // the (community-level) attribute term drown the per-vertex base
  // embedding's gradient signal early in training.
  nn::Matrix attr_proj = nn::Matrix::Xavier(config_.feature_dim, d, rng);
  attr_proj *= 0.1f;

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negs(graph, all, 0.75, config_.seed + 1);
  const float lr = config_.learning_rate;

  // Scratch buffers reused across pairs.
  std::vector<float> h(d), dh(d), g(s), dg(s);
  std::vector<std::vector<float>> e(T, std::vector<float>(a_dim));
  std::vector<float> scores(T), att(T), datt(T);
  // GATNE-T: the effective specific embedding of v for type t is the mean
  // of the type-t neighbors' u (including v's own), which makes U_v
  // structure-aware. agg_members[t] records whose rows contributed so the
  // backward pass can distribute du among them.
  std::vector<std::vector<float>> u_eff(T, std::vector<float>(s));
  std::vector<std::vector<VertexId>> agg_members(T);
  const size_t kAggFan = 3;
  // A walk position serves several (center, context) pairs in a row, so the
  // aggregated U_v is memoized per center (slightly stale within a window
  // after spec updates, which SGD tolerates).
  VertexId u_eff_cached_for = kInvalidVertex;

  auto build_u_eff = [&](VertexId v) {
    if (v == u_eff_cached_for) return;
    u_eff_cached_for = v;
    for (size_t t = 0; t < T; ++t) {
      auto& members = agg_members[t];
      members.clear();
      members.push_back(v);
      if (config_.aggregate_specific) {
        const auto nbs = graph.OutNeighbors(v, static_cast<EdgeType>(t));
        for (size_t f = 0; f < kAggFan && !nbs.empty(); ++f) {
          members.push_back(nbs[rng.Uniform(nbs.size())].dst);
        }
      }
      auto& ue = u_eff[t];
      std::fill(ue.begin(), ue.end(), 0.0f);
      const float inv = 1.0f / static_cast<float>(members.size());
      for (VertexId w : members) nn::Axpy(inv, spec[t].Row(w), ue);
    }
  };

  // Forward pass for center v under target type c; fills h, g, e, att and
  // the aggregated u_eff / agg_members state.
  auto forward = [&](VertexId v, size_t c) {
    build_u_eff(v);
    // Attention over the per-type aggregated specific embeddings.
    float mx = -1e30f;
    for (size_t t = 0; t < T; ++t) {
      const auto& u = u_eff[t];
      auto& et = e[t];
      for (size_t j = 0; j < a_dim; ++j) {
        float acc = 0;
        for (size_t i = 0; i < s; ++i) acc += u[i] * w_att[c].At(i, j);
        et[j] = std::tanh(acc);
      }
      scores[t] = nn::Dot(et, v_att[c].Row(0));
      mx = std::max(mx, scores[t]);
    }
    float sum = 0;
    for (size_t t = 0; t < T; ++t) {
      att[t] = std::exp(scores[t] - mx);
      sum += att[t];
    }
    for (size_t t = 0; t < T; ++t) att[t] /= sum;

    std::fill(g.begin(), g.end(), 0.0f);
    for (size_t t = 0; t < T; ++t) {
      nn::Axpy(att[t], u_eff[t], g);
    }
    // h = b + alpha * g M_c + beta * x D
    auto b = base.Row(v);
    std::copy(b.begin(), b.end(), h.begin());
    for (size_t i = 0; i < s; ++i) {
      nn::Axpy(config_.alpha * g[i], m[c].Row(i), h);
    }
    auto xv = x.Row(v);
    for (size_t i = 0; i < config_.feature_dim; ++i) {
      nn::Axpy(config_.beta * xv[i], attr_proj.Row(i), h);
    }
  };

  // Backward from dh into every trainable component.
  auto backward = [&](VertexId v, size_t c) {
    base.SgdUpdate(v, dh, lr);
    auto xv = x.Row(v);
    for (size_t i = 0; i < config_.feature_dim; ++i) {
      nn::Axpy(-lr * config_.beta * xv[i], dh, attr_proj.Row(i));
    }
    // dg = alpha * dh M_c^T ; dM_c = alpha * g^T dh
    for (size_t i = 0; i < s; ++i) {
      dg[i] = config_.alpha * nn::Dot(dh, m[c].Row(i));
      nn::Axpy(-lr * config_.alpha * g[i], dh, m[c].Row(i));
    }
    // Through the attention-weighted sum and softmax.
    for (size_t t = 0; t < T; ++t) {
      datt[t] = nn::Dot(dg, u_eff[t]);
    }
    float avg = 0;
    for (size_t t = 0; t < T; ++t) avg += att[t] * datt[t];
    std::vector<float> du(s);
    for (size_t t = 0; t < T; ++t) {
      const float dscore = att[t] * (datt[t] - avg);
      const auto& u = u_eff[t];
      auto& et = e[t];
      // du accumulates both the attention path and the weighted-sum path,
      // applied once at the end so the dW computation sees unmodified u.
      for (size_t i = 0; i < s; ++i) du[i] = att[t] * dg[i];
      // dv_att += dscore * e_t ; dpre = dscore * v_att ∘ (1 - e²)
      for (size_t j = 0; j < a_dim; ++j) {
        const float dpre =
            dscore * v_att[c].At(0, j) * (1.0f - et[j] * et[j]);
        v_att[c].At(0, j) -= lr * dscore * et[j];
        for (size_t i = 0; i < s; ++i) {
          // dW += u^T dpre ; du += dpre W
          const float w = w_att[c].At(i, j);
          w_att[c].At(i, j) -= lr * u[i] * dpre;
          du[i] += dpre * w;
        }
      }
      // u_eff was the mean over agg_members, so the gradient splits evenly
      // across the contributing rows.
      const float share = 1.0f / static_cast<float>(agg_members[t].size());
      for (VertexId w : agg_members[t]) {
        auto row = spec[t].Row(w);
        for (size_t i = 0; i < s; ++i) row[i] -= lr * share * du[i];
      }
    }
  };

  // Phase 0: warm-start the base embedding with plain skip-gram over
  // merged-graph walks (as the reference GATNE implementation initializes
  // its base embeddings), so the per-type phase refines a solid structural
  // embedding instead of training everything from noise.
  {
    const auto walks = nn::UniformWalks(graph, config_.walks);
    std::vector<float> db(d);
    for (const auto& walk : walks) {
      for (size_t i = 0; i + 1 < walk.size(); ++i) {
        const VertexId center = walk[i];
        auto b = base.Row(center);
        std::fill(db.begin(), db.end(), 0.0f);
        auto sgns = [&](VertexId target, float label) {
          auto ctx = context.Row(target);
          const float grad = SigmoidF(nn::Dot(b, ctx)) - label;
          nn::Axpy(grad, ctx, db);
          context.SgdUpdate(target, b, lr * grad);
        };
        sgns(walk[i + 1], 1.0f);
        for (VertexId ng : negs.Sample(config_.negatives, walk[i + 1])) {
          sgns(ng, 0.0f);
        }
        nn::Axpy(-lr, db, b);
      }
    }
  }

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t c = 0; c < T; ++c) {
      const auto walks =
          nn::LayerWalks(graph, config_.walks, static_cast<EdgeType>(c));
      for (const auto& walk : walks) {
        for (size_t i = 0; i < walk.size(); ++i) {
          const size_t lo = i > 2 ? i - 2 : 0;
          const size_t hi = std::min(walk.size(), i + 3);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i) continue;
            const VertexId center = walk[i];
            forward(center, c);
            std::fill(dh.begin(), dh.end(), 0.0f);
            auto sgns = [&](VertexId target, float label) {
              auto ctx = context.Row(target);
              const float grad = SigmoidF(nn::Dot(h, ctx)) - label;
              nn::Axpy(grad, ctx, dh);
              context.SgdUpdate(target, h, lr * grad);
            };
            sgns(walk[j], 1.0f);
            for (VertexId ng : negs.Sample(config_.negatives, walk[j])) {
              sgns(ng, 0.0f);
            }
            backward(center, c);
          }
        }
      }
    }
  }

  // Materialize per-type embeddings and their mean.
  per_type_.assign(T, nn::Matrix(n, d));
  nn::Matrix mean(n, d);
  const float inv = 1.0f / static_cast<float>(T);
  for (size_t c = 0; c < T; ++c) {
    for (VertexId v = 0; v < n; ++v) {
      forward(v, c);
      auto dst = per_type_[c].Row(v);
      std::copy(h.begin(), h.end(), dst.begin());
      nn::Axpy(inv, dst, mean.Row(v));
    }
  }
  return mean;
}

}  // namespace algo
}  // namespace aligraph
