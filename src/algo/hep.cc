#include "algo/hep.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/random.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace algo {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Result<nn::Matrix> Hep::Embed(const AttributedGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  Rng rng(config_.seed);
  rows_touched_ = 0;
  propagation_terms_ = 0;

  nn::EmbeddingTable emb(n, config_.dim, rng, 0.05f);
  const size_t num_vtypes = graph.schema().num_vertex_types();
  std::vector<nn::Linear> transforms;  // one per neighbor node type
  transforms.reserve(num_vtypes);
  for (size_t c = 0; c < num_vtypes; ++c) {
    transforms.emplace_back(config_.dim, config_.dim, rng);
    // Near-identity initialization: reconstruction starts as the plain
    // neighbor mean, which converges much faster than a random projection.
    nn::Matrix& w = transforms.back().weight().value;
    for (size_t i = 0; i < config_.dim; ++i) {
      for (size_t j = 0; j < config_.dim; ++j) {
        w.At(i, j) = (i == j) ? 1.0f : w.At(i, j) * 0.1f;
      }
    }
  }
  nn::Sgd opt(config_.learning_rate);

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negs(graph, all, 0.75, config_.seed + 1);

  // AHEP importance per vertex: degree-proportional sampling minimizes the
  // variance of the mean estimator on power-law neighborhoods.
  std::vector<double> importance(n);
  for (VertexId v = 0; v < n; ++v) {
    importance[v] = static_cast<double>(graph.OutDegree(v) + 1);
  }

  const float lr = config_.learning_rate;
  std::vector<std::vector<VertexId>> by_type(num_vtypes);
  std::vector<VertexId> type_nbs;
  nn::Matrix mean_row(1, config_.dim);
  std::vector<float> dh(config_.dim);

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (VertexId v = 0; v < n; ++v) {
      const auto nbs = graph.OutNeighbors(v);
      if (nbs.empty()) continue;
      // Bucket neighbors by node type in one pass.
      for (auto& bucket : by_type) bucket.clear();
      for (const Neighbor& nb : nbs) {
        by_type[graph.vertex_type(nb.dst)].push_back(nb.dst);
      }
      for (size_t c = 0; c < num_vtypes; ++c) {
        const std::vector<VertexId>& candidates = by_type[c];
        if (candidates.empty()) continue;
        if (config_.sample_size == 0) {
          // HEP: propagate from every neighbor of this type.
          type_nbs = candidates;
        } else {
          // AHEP: importance-weighted sampling with replacement.
          type_nbs.clear();
          double total = 0;
          for (VertexId u : candidates) total += importance[u];
          for (size_t s = 0; s < config_.sample_size; ++s) {
            double r = rng.NextDouble() * total;
            for (VertexId u : candidates) {
              r -= importance[u];
              if (r <= 0) {
                type_nbs.push_back(u);
                break;
              }
            }
          }
        }
        if (type_nbs.empty()) continue;
        propagation_terms_ += type_nbs.size();
        rows_touched_ += type_nbs.size() + 1;

        // Reconstruction h'_{v,c} = W_c(mean of neighbor embeddings).
        mean_row.Fill(0.0f);
        const float inv = 1.0f / static_cast<float>(type_nbs.size());
        for (VertexId u : type_nbs) {
          nn::Axpy(inv, emb.Row(u), mean_row.Row(0));
        }
        nn::Matrix h_prime = transforms[c].ForwardAt(mean_row);

        // EP loss: pull h' toward h_v, push from negatives.
        std::fill(dh.begin(), dh.end(), 0.0f);
        auto push = [&](VertexId target, float label) {
          auto ht = emb.Row(target);
          const float g =
              config_.alpha *
              (SigmoidF(nn::Dot(h_prime.Row(0), ht)) - label);
          nn::Axpy(g, ht, dh);
          emb.SgdUpdate(target, h_prime.Row(0), lr * g);
        };
        push(v, 1.0f);
        for (VertexId ng : negs.Sample(config_.negatives, v)) {
          push(ng, 0.0f);
        }

        // Backprop into the transform and the neighbor mean.
        nn::Matrix dhm(1, config_.dim);
        std::copy(dh.begin(), dh.end(), dhm.Row(0).begin());
        nn::Matrix dmean = transforms[c].BackwardAt(mean_row, dhm);
        for (VertexId u : type_nbs) {
          emb.SgdUpdate(u, dmean.Row(0), lr * inv);
        }
        transforms[c].Apply(opt);
      }
      // L2 regularization on the touched embedding (Equation 2's Omega).
      if (config_.beta > 0) {
        auto row = emb.Row(v);
        for (float& x : row) x *= 1.0f - lr * config_.beta;
      }
    }
  }
  return emb.matrix();
}

}  // namespace algo
}  // namespace aligraph
