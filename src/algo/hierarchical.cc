#include "algo/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace aligraph {
namespace algo {
namespace {

// Plain k-means over embedding rows; returns cluster id per row.
std::vector<uint32_t> KMeans(const nn::Matrix& z, size_t k, uint32_t iters,
                             uint64_t seed) {
  const size_t n = z.rows();
  const size_t d = z.cols();
  k = std::min(k, n);
  Rng rng(seed);
  nn::Matrix centers(k, d);
  for (size_t c = 0; c < k; ++c) {
    auto src = z.Row(rng.Uniform(n));
    auto dst = centers.Row(c);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  std::vector<uint32_t> assign(n, 0);
  std::vector<size_t> counts(k);
  for (uint32_t it = 0; it < iters; ++it) {
    for (size_t i = 0; i < n; ++i) {
      float best = std::numeric_limits<float>::max();
      uint32_t arg = 0;
      auto row = z.Row(i);
      for (size_t c = 0; c < k; ++c) {
        auto ctr = centers.Row(c);
        float dist = 0;
        for (size_t j = 0; j < d; ++j) {
          const float diff = row[j] - ctr[j];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          arg = static_cast<uint32_t>(c);
        }
      }
      assign[i] = arg;
    }
    centers.Fill(0.0f);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < n; ++i) {
      nn::Axpy(1.0f, z.Row(i), centers.Row(assign[i]));
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (float& v : centers.Row(c)) v *= inv;
    }
  }
  return assign;
}

}  // namespace

Result<nn::Matrix> HierarchicalGnn::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const VertexId n = graph.num_vertices();

  // Level 1: base GNN on the original graph.
  GraphSage level1(config_.base);
  ALIGRAPH_ASSIGN_OR_RETURN(nn::Matrix z1, level1.Embed(graph));

  // Pooling: hard assignment S from k-means on Z(1).
  const std::vector<uint32_t> assign =
      KMeans(z1, config_.clusters, config_.kmeans_iters, config_.base.seed);
  const size_t k =
      1 + *std::max_element(assign.begin(), assign.end());

  // Coarsened graph A(2) = S^T A S with summed multi-edges as weights, and
  // coarse features X(2) = S^T Z(1) (cluster means).
  GraphBuilder gb;
  std::vector<std::vector<float>> coarse_feat(
      k, std::vector<float>(z1.cols(), 0.0f));
  std::vector<size_t> counts(k, 0);
  for (VertexId v = 0; v < n; ++v) {
    auto src = z1.Row(v);
    auto& dst = coarse_feat[assign[v]];
    for (size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    ++counts[assign[v]];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] > 0) {
      for (float& f : coarse_feat[c]) f /= static_cast<float>(counts[c]);
    }
    // Empty clusters keep zero features so coarse ids stay aligned.
    (void)gb.AddVertex(0, coarse_feat[c]);
  }

  std::unordered_map<uint64_t, float> coarse_edges;
  for (VertexId v = 0; v < n; ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) {
      const uint32_t a = assign[v];
      const uint32_t b = assign[nb.dst];
      if (a == b) continue;
      coarse_edges[(static_cast<uint64_t>(a) << 32) | b] += nb.weight;
    }
  }
  for (const auto& [key, w] : coarse_edges) {
    ALIGRAPH_RETURN_NOT_OK(gb.AddEdge(static_cast<VertexId>(key >> 32),
                                      static_cast<VertexId>(key & 0xffffffff),
                                      0, w));
  }
  ALIGRAPH_ASSIGN_OR_RETURN(AttributedGraph coarse, gb.Build());

  // Level 2: GNN on the coarse graph, fed the pooled features.
  GnnConfig coarse_cfg = config_.base;
  coarse_cfg.feature_dim = z1.cols();
  coarse_cfg.seed = config_.base.seed + 17;
  GraphSage level2(coarse_cfg);
  nn::Matrix coarse_features(coarse.num_vertices(), z1.cols());
  for (VertexId c = 0; c < coarse.num_vertices(); ++c) {
    auto feats = coarse.VertexFeatures(c);
    auto dst = coarse_features.Row(c);
    std::copy(feats.begin(), feats.end(),
              dst.begin());
  }
  ALIGRAPH_ASSIGN_OR_RETURN(
      nn::Matrix z2, level2.EmbedWithFeatures(coarse, coarse_features));

  // Final representation: fine embedding || scaled coarse embedding of the
  // vertex's cluster.
  nn::Matrix out(n, z1.cols() + z2.cols());
  for (VertexId v = 0; v < n; ++v) {
    auto dst = out.Row(v);
    auto f = z1.Row(v);
    auto c = z2.Row(assign[v]);
    std::copy(f.begin(), f.end(), dst.begin());
    for (size_t j = 0; j < c.size(); ++j) {
      dst[f.size() + j] = config_.coarse_weight * c[j];
    }
  }
  return out;
}

}  // namespace algo
}  // namespace aligraph
