/// \file heterogeneous.h
/// \brief Heterogeneous / multiplex embedding baselines of Table 8:
/// Metapath2Vec, PMNE (three variants), MVE and MNE, plus the attributed
/// baseline ANRL.

#ifndef ALIGRAPH_ALGO_HETEROGENEOUS_H_
#define ALIGRAPH_ALGO_HETEROGENEOUS_H_

#include <vector>

#include "algo/embedding_algorithm.h"
#include "nn/layers.h"
#include "nn/skipgram.h"
#include "nn/walks.h"

namespace aligraph {
namespace algo {

/// \brief Metapath2Vec: metapath-constrained walks + skip-gram. The default
/// metapath alternates over all edge types in order.
class Metapath2Vec : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    nn::SkipGramConfig sgns;
    std::vector<EdgeType> metapath;  ///< empty = cycle over all edge types
  };

  Metapath2Vec() = default;
  explicit Metapath2Vec(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "metapath2vec"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief PMNE's three projections of a multiplex network (Liu et al.):
/// kNetwork merges all layers and runs one embedding; kResults embeds each
/// layer and concatenates; kCoAnalysis walks with random layer switching.
enum class PmneVariant { kNetwork, kResults, kCoAnalysis };

class Pmne : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    nn::SkipGramConfig sgns;
    PmneVariant variant = PmneVariant::kNetwork;
    double switch_prob = 0.5;  ///< co-analysis layer-switch probability
  };

  Pmne() = default;
  explicit Pmne(Config config) : config_(std::move(config)) {}
  std::string name() const override;
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief MVE: multi-view embedding — per-view (per-edge-type) embeddings
/// collaborating into a single representation via learned attention over
/// views.
class Mve : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    nn::SkipGramConfig sgns;
    uint32_t attention_rounds = 200;
    float attention_lr = 0.5f;
  };

  Mve() = default;
  explicit Mve(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "mve"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief MNE: one common embedding b_v plus a low-dimensional per-layer
/// additional embedding u_{v,t}; both trained jointly by layer-wise SGNS
/// where the center representation of v in layer t is b_v + u_{v,t}.
class Mne : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::WalkConfig walks;
    size_t dim = 32;           ///< common embedding dimension
    size_t extra_dim = 8;      ///< per-layer additional dimension (projected)
    uint32_t negatives = 4;
    uint32_t epochs = 2;
    float learning_rate = 0.05f;
    uint64_t seed = 23;
  };

  Mne() = default;
  explicit Mne(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "mne"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

  /// Per-layer embedding h_{v,t} = b_v + P_t u_{v,t} of the last Embed run.
  const std::vector<nn::Matrix>& per_layer_embeddings() const {
    return per_layer_;
  }

 private:
  Config config_;
  std::vector<nn::Matrix> per_layer_;
};

/// \brief ANRL: attributed network representation learning — a neighbor-
/// enhancement autoencoder (reconstruct the mean of neighbors' attributes)
/// whose encoder output doubles as the skip-gram center embedding.
class Anrl : public EmbeddingAlgorithm {
 public:
  struct Config {
    size_t dim = 32;
    size_t feature_dim = 32;
    nn::WalkConfig walks;
    uint32_t negatives = 4;
    uint32_t epochs = 2;
    float learning_rate = 0.02f;
    float reconstruction_weight = 1.0f;
    uint64_t seed = 29;
  };

  Anrl() = default;
  explicit Anrl(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "anrl"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_HETEROGENEOUS_H_
