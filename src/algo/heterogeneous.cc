#include "algo/heterogeneous.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace algo {
namespace {

std::vector<VertexId> AllVertices(const AttributedGraph& graph) {
  std::vector<VertexId> vs(graph.num_vertices());
  std::iota(vs.begin(), vs.end(), 0);
  return vs;
}

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Result<nn::Matrix> Metapath2Vec::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  std::vector<EdgeType> metapath = config_.metapath;
  if (metapath.empty()) {
    // Default metapath: cycle over the edge types that actually carry edges
    // (schemas often register types, like the default "edge", that a given
    // dataset never uses).
    std::vector<size_t> per_type(graph.num_edge_types(), 0);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      for (size_t t = 0; t < graph.num_edge_types(); ++t) {
        per_type[t] += graph.OutDegree(v, static_cast<EdgeType>(t));
      }
    }
    for (size_t t = 0; t < per_type.size(); ++t) {
      if (per_type[t] > 0) metapath.push_back(static_cast<EdgeType>(t));
    }
    if (metapath.empty()) {
      return Status::FailedPrecondition("graph has no edges");
    }
  }
  std::vector<VertexId> starts;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (!graph.OutNeighbors(v, metapath[0]).empty()) starts.push_back(v);
  }
  if (starts.empty()) return Status::FailedPrecondition("no metapath starts");
  const auto walks =
      nn::MetapathWalks(graph, config_.walks, metapath, starts);
  nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.sgns.seed);
  model.TrainWalks(walks, negs);
  return model.embeddings().matrix();
}

std::string Pmne::name() const {
  switch (config_.variant) {
    case PmneVariant::kNetwork:
      return "pmne-n";
    case PmneVariant::kResults:
      return "pmne-r";
    case PmneVariant::kCoAnalysis:
      return "pmne-c";
  }
  return "pmne";
}

Result<nn::Matrix> Pmne::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.sgns.seed);
  const size_t layers = graph.num_edge_types();

  switch (config_.variant) {
    case PmneVariant::kNetwork: {
      // Merge all layers into one network, embed once.
      const auto walks = nn::UniformWalks(graph, config_.walks);
      nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
      model.TrainWalks(walks, negs);
      return model.embeddings().matrix();
    }
    case PmneVariant::kResults: {
      // Embed each layer independently, concatenate the results.
      nn::SkipGramConfig per = config_.sgns;
      per.dim = std::max<size_t>(4, config_.sgns.dim / std::max<size_t>(layers, 1));
      nn::Matrix out;
      for (size_t t = 0; t < layers; ++t) {
        const auto walks =
            nn::LayerWalks(graph, config_.walks, static_cast<EdgeType>(t));
        nn::SkipGramModel model(graph.num_vertices(), per);
        model.TrainWalks(walks, negs);
        out = out.empty() ? model.embeddings().matrix()
                          : nn::ConcatCols(out, model.embeddings().matrix());
      }
      return out;
    }
    case PmneVariant::kCoAnalysis: {
      // Walks that hop between layers with probability switch_prob.
      Rng rng(config_.walks.seed);
      std::vector<std::vector<VertexId>> walks;
      for (uint32_t w = 0; w < config_.walks.walks_per_vertex; ++w) {
        for (VertexId start = 0; start < graph.num_vertices(); ++start) {
          std::vector<VertexId> walk{start};
          EdgeType layer = static_cast<EdgeType>(rng.Uniform(layers));
          while (walk.size() < config_.walks.walk_length) {
            if (rng.Bernoulli(config_.switch_prob)) {
              layer = static_cast<EdgeType>(rng.Uniform(layers));
            }
            auto nbs = graph.OutNeighbors(walk.back(), layer);
            if (nbs.empty()) nbs = graph.OutNeighbors(walk.back());
            if (nbs.empty()) break;
            walk.push_back(nbs[rng.Uniform(nbs.size())].dst);
          }
          if (walk.size() >= 2) walks.push_back(std::move(walk));
        }
      }
      nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
      model.TrainWalks(walks, negs);
      return model.embeddings().matrix();
    }
  }
  return Status::Internal("unreachable");
}

Result<nn::Matrix> Mve::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const size_t views = graph.num_edge_types();
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.sgns.seed);

  // Per-view embeddings.
  std::vector<nn::Matrix> view_emb;
  view_emb.reserve(views);
  for (size_t t = 0; t < views; ++t) {
    const auto walks =
        nn::LayerWalks(graph, config_.walks, static_cast<EdgeType>(t));
    nn::SkipGramModel model(graph.num_vertices(), config_.sgns);
    model.TrainWalks(walks, negs);
    view_emb.push_back(model.embeddings().matrix());
  }

  // Attention over views: learn logits w_t so the softmax-combined
  // embedding scores observed edges above sampled non-edges.
  std::vector<float> logits(views, 0.0f);
  Rng rng(config_.sgns.seed + 99);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Neighbor& nb : graph.OutNeighbors(v)) edges.emplace_back(v, nb.dst);
  }
  if (!edges.empty()) {
    for (uint32_t round = 0; round < config_.attention_rounds; ++round) {
      // Softmax of the current logits.
      std::vector<float> a(views);
      float mx = *std::max_element(logits.begin(), logits.end());
      float sum = 0;
      for (size_t t = 0; t < views; ++t) {
        a[t] = std::exp(logits[t] - mx);
        sum += a[t];
      }
      for (float& x : a) x /= sum;

      const auto [u, v] = edges[rng.Uniform(edges.size())];
      const VertexId neg = static_cast<VertexId>(
          rng.Uniform(graph.num_vertices()));
      // Per-view pair scores.
      std::vector<float> s_pos(views), s_neg(views);
      float pos = 0, negs_score = 0;
      for (size_t t = 0; t < views; ++t) {
        s_pos[t] = nn::Dot(view_emb[t].Row(u), view_emb[t].Row(v));
        s_neg[t] = nn::Dot(view_emb[t].Row(u), view_emb[t].Row(neg));
        pos += a[t] * s_pos[t];
        negs_score += a[t] * s_neg[t];
      }
      const float gp = SigmoidF(pos) - 1.0f;   // positive label grad
      const float gn = SigmoidF(negs_score);   // negative label grad
      // dLoss/dlogit_t through the softmax.
      for (size_t t = 0; t < views; ++t) {
        float da = gp * s_pos[t] + gn * s_neg[t];
        float avg = 0;
        for (size_t r = 0; r < views; ++r) {
          avg += a[r] * (gp * s_pos[r] + gn * s_neg[r]);
        }
        logits[t] -= config_.attention_lr * a[t] * (da - avg);
      }
    }
  }

  // Combined embedding.
  std::vector<float> a(views);
  float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0;
  for (size_t t = 0; t < views; ++t) {
    a[t] = std::exp(logits[t] - mx);
    sum += a[t];
  }
  nn::Matrix out(graph.num_vertices(), config_.sgns.dim);
  for (size_t t = 0; t < views; ++t) {
    const float w = a[t] / sum;
    for (size_t i = 0; i < out.rows(); ++i) {
      nn::Axpy(w, view_emb[t].Row(i), out.Row(i));
    }
  }
  return out;
}

Result<nn::Matrix> Mne::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const size_t layers = graph.num_edge_types();
  const size_t n = graph.num_vertices();
  Rng rng(config_.seed);

  nn::EmbeddingTable common(n, config_.dim, rng);
  nn::EmbeddingTable context(n, config_.dim, rng);
  std::vector<nn::EmbeddingTable> extra;  // per layer, extra_dim
  std::vector<nn::Matrix> proj;           // per layer, extra_dim x dim
  for (size_t t = 0; t < layers; ++t) {
    extra.emplace_back(n, config_.extra_dim, rng);
    proj.push_back(nn::Matrix::Xavier(config_.extra_dim, config_.dim, rng));
  }

  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.seed);
  const float lr = config_.learning_rate;
  std::vector<float> h(config_.dim);
  std::vector<float> dh(config_.dim);

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (size_t t = 0; t < layers; ++t) {
      const auto walks =
          nn::LayerWalks(graph, config_.walks, static_cast<EdgeType>(t));
      for (const auto& walk : walks) {
        for (size_t i = 0; i < walk.size(); ++i) {
          const size_t lo = i > 2 ? i - 2 : 0;
          const size_t hi = std::min(walk.size(), i + 3);
          for (size_t j = lo; j < hi; ++j) {
            if (j == i) continue;
            const VertexId center = walk[i];
            // h_{v,t} = b_v + u_{v,t} P_t
            auto b = common.Row(center);
            auto u = extra[t].Row(center);
            std::copy(b.begin(), b.end(), h.begin());
            for (size_t e = 0; e < config_.extra_dim; ++e) {
              nn::Axpy(u[e], proj[t].Row(e), h);
            }
            std::fill(dh.begin(), dh.end(), 0.0f);

            auto sgns_target = [&](VertexId target, float label) {
              auto ctx = context.Row(target);
              const float g = SigmoidF(nn::Dot(h, ctx)) - label;
              nn::Axpy(g, ctx, dh);
              context.SgdUpdate(target, h, lr * g);
            };
            sgns_target(walk[j], 1.0f);
            for (VertexId ng : negs.Sample(config_.negatives, walk[j])) {
              sgns_target(ng, 0.0f);
            }
            // Backprop dh into b, u and P_t.
            common.SgdUpdate(center, dh, lr);
            for (size_t e = 0; e < config_.extra_dim; ++e) {
              const float du = nn::Dot(dh, proj[t].Row(e));
              nn::Axpy(-lr * u[e], dh, proj[t].Row(e));
              extra[t].Row(center)[e] -= lr * du;
            }
          }
        }
      }
    }
  }

  // Per-layer embeddings plus the common embedding as the primary output.
  per_layer_.clear();
  for (size_t t = 0; t < layers; ++t) {
    nn::Matrix emb(n, config_.dim);
    for (VertexId v = 0; v < n; ++v) {
      auto b = common.Row(v);
      auto dst = emb.Row(v);
      std::copy(b.begin(), b.end(), dst.begin());
      auto u = extra[t].Row(v);
      for (size_t e = 0; e < config_.extra_dim; ++e) {
        nn::Axpy(u[e], proj[t].Row(e), dst);
      }
    }
    per_layer_.push_back(std::move(emb));
  }
  return common.matrix();
}

Result<nn::Matrix> Anrl::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const size_t n = graph.num_vertices();
  Rng rng(config_.seed);

  const nn::Matrix x = BuildFeatureMatrix(graph, config_.feature_dim);
  // Neighbor-enhancement targets: mean of neighbors' features.
  nn::Matrix target(n, config_.feature_dim);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbs = graph.OutNeighbors(v);
    auto row = target.Row(v);
    if (nbs.empty()) {
      auto self = x.Row(v);
      std::copy(self.begin(), self.end(), row.begin());
      continue;
    }
    const float inv = 1.0f / static_cast<float>(nbs.size());
    for (const Neighbor& nb : nbs) nn::Axpy(inv, x.Row(nb.dst), row);
  }

  nn::Linear encoder(config_.feature_dim, config_.dim, rng);
  nn::Linear decoder(config_.dim, config_.feature_dim, rng);
  nn::EmbeddingTable context(n, config_.dim, rng);
  nn::Sgd opt(config_.learning_rate);
  NegativeSampler negs(graph, AllVertices(graph), 0.75, config_.seed);

  // Context lists from walks: center -> sampled contexts.
  const auto walks = nn::UniformWalks(graph, config_.walks);
  std::unordered_map<VertexId, std::vector<VertexId>> contexts;
  for (const auto& walk : walks) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      contexts[walk[i]].push_back(walk[i + 1]);
      contexts[walk[i + 1]].push_back(walk[i]);
    }
  }

  nn::Matrix xv(1, config_.feature_dim);
  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (VertexId v = 0; v < n; ++v) {
      auto src = x.Row(v);
      std::copy(src.begin(), src.end(), xv.Row(0).begin());
      nn::Matrix h = encoder.Forward(xv);
      nn::TanhInPlace(h);
      const nn::Matrix h_act = h;

      // Reconstruction branch.
      nn::Matrix recon = decoder.Forward(h_act);
      nn::Matrix drecon(1, config_.feature_dim);
      auto t = target.Row(v);
      auto r = recon.Row(0);
      auto dr = drecon.Row(0);
      const float scale = 2.0f * config_.reconstruction_weight /
                          static_cast<float>(config_.feature_dim);
      for (size_t j = 0; j < config_.feature_dim; ++j) {
        dr[j] = scale * (r[j] - t[j]);
      }
      nn::Matrix dh = decoder.Backward(drecon);

      // Skip-gram branch through the encoder output.
      auto it = contexts.find(v);
      if (it != contexts.end() && !it->second.empty()) {
        const VertexId ctx_v =
            it->second[rng.Uniform(it->second.size())];
        auto sgns_target = [&](VertexId targetv, float label) {
          auto ctx = context.Row(targetv);
          const float g = SigmoidF(nn::Dot(h_act.Row(0), ctx)) - label;
          nn::Axpy(g, ctx, dh.Row(0));
          context.SgdUpdate(targetv, h_act.Row(0), config_.learning_rate * g);
        };
        sgns_target(ctx_v, 1.0f);
        for (VertexId ng : negs.Sample(config_.negatives, ctx_v)) {
          sgns_target(ng, 0.0f);
        }
      }

      encoder.Backward(nn::TanhBackward(h_act, dh));
      encoder.Apply(opt);
      decoder.Apply(opt);
    }
  }

  // Final embeddings: encoder output for every vertex.
  nn::Matrix out(n, config_.dim);
  for (VertexId v = 0; v < n; ++v) {
    auto src = x.Row(v);
    std::copy(src.begin(), src.end(), xv.Row(0).begin());
    nn::Matrix h = encoder.Forward(xv);
    nn::TanhInPlace(h);
    auto dst = out.Row(v);
    auto hr = h.Row(0);
    std::copy(hr.begin(), hr.end(), dst.begin());
  }
  return out;
}

}  // namespace algo
}  // namespace aligraph
