/// \file gnn.h
/// \brief The GNN framework of Algorithm 1 and its classic instantiations:
/// GraphSAGE (mini-batch, sampled neighborhoods), GCN (full-batch), FastGCN
/// (independent layer-wise importance sampling), AS-GCN (adaptive layer-wise
/// sampling conditioned on the batch) and a structural-identity baseline
/// (Struc2Vec, simplified).
///
/// All models train unsupervised with the edge-based objective of the
/// GraphSAGE paper: connected pairs score high, sampled negatives score low.

#ifndef ALIGRAPH_ALGO_GNN_H_
#define ALIGRAPH_ALGO_GNN_H_

#include <string>
#include <vector>

#include "algo/embedding_algorithm.h"
#include "block/sampled_block.h"
#include "nn/layers.h"
#include "nn/skipgram.h"
#include "nn/walks.h"
#include "ops/hop_cache.h"
#include "sampling/sampler.h"

namespace aligraph {
namespace algo {

/// \brief Shared hyper-parameters of the GNN family.
struct GnnConfig {
  size_t dim = 32;            ///< embedding dimension d
  size_t feature_dim = 32;    ///< input feature dimension
  uint32_t fanout1 = 5;       ///< neighbors sampled at hop 1
  uint32_t fanout2 = 5;       ///< neighbors sampled at hop 2
  uint32_t epochs = 1;
  size_t batch_size = 64;
  size_t batches_per_epoch = 64;
  uint32_t negatives = 2;
  float learning_rate = 0.01f;
  std::string aggregator = "mean";  ///< "mean" or "maxpool"
  uint64_t seed = 31;
  /// Run the subgraph-block execution path: samples are relabeled into
  /// block::SampledBlock, features are gathered once per unique vertex
  /// (with cross-batch row reuse through HopEmbeddingCache) and operators
  /// index dense local-id rows. The legacy flat path (false) draws the
  /// same samples and produces bit-identical embeddings; it is kept for
  /// differential testing and ablation.
  bool use_blocks = true;
  /// Stage-queue depth of the 3-stage sample/gather/compute pipeline over
  /// the block path: 0 keeps the sequential per-batch loop; >= 1 streams
  /// batches through pipeline::BlockPipeline so batch N+1's hop sampling
  /// overlaps batch N's feature gather and batch N-1's forward/backward.
  /// Every stage stays single-threaded and in batch order, so results are
  /// bit-identical across depths; only wall-clock and the (bounded) number
  /// of in-flight blocks change. Ignored when use_blocks is false.
  size_t pipeline_depth = 0;
};

/// \brief One GraphSAGE layer h' = ReLU(W [self || AGG(neigh)] + b) with an
/// explicit cache so the same layer can be applied at several tree levels
/// within one training step.
class SageLayer {
 public:
  /// \param relu apply ReLU to the output. The top layer of a stack should
  ///        pass false: a ReLU there collapses the unsupervised edge
  ///        objective into dead units (scores need both signs).
  SageLayer(size_t in_dim, size_t out_dim, bool maxpool, Rng& rng,
            bool relu = true)
      : linear_(2 * in_dim, out_dim, rng), in_dim_(in_dim),
        maxpool_(maxpool), relu_(relu) {}

  struct Cache {
    nn::Matrix input;             // [n, 2*in_dim] concat(self, agg)
    nn::Matrix output;            // [n, out_dim] post-ReLU
    std::vector<uint32_t> argmax;  // maxpool winners
    size_t fan = 1;
  };

  /// neighbors is [n*fan, in_dim]; self is [n, in_dim].
  nn::Matrix Forward(const nn::Matrix& self, const nn::Matrix& neighbors,
                     size_t fan, Cache* cache);

  /// Block forward: `rows` is a block's dense [num_vertices, in_dim]
  /// per-unique-vertex matrix; self rows come from hop.dst, neighbor rows
  /// from the hop CSR, with no per-slot materialization of the neighbor
  /// matrix. Fills `cache` exactly like Forward (same input / output /
  /// argmax bits), so Backward serves both paths unchanged.
  nn::Matrix ForwardBlock(const nn::Matrix& rows, const block::BlockHop& hop,
                          Cache* cache);

  /// Returns (dSelf, dNeighbors).
  std::pair<nn::Matrix, nn::Matrix> Backward(const Cache& cache,
                                             const nn::Matrix& grad_out);

  void Apply(nn::Optimizer& opt) { linear_.Apply(opt); }
  size_t out_dim() const { return linear_.out_dim(); }

 private:
  nn::Linear linear_;
  size_t in_dim_;
  bool maxpool_;
  bool relu_;
};

/// \brief Reusable two-layer GraphSAGE trainer whose weights persist across
/// calls — the building block of GraphSage itself and of models that train
/// over a sequence of graphs (Evolving GNN warm-starts every snapshot from
/// the previous one's weights).
class SageTrainer {
 public:
  SageTrainer(const GnnConfig& config, size_t feature_dim);

  /// Runs `epochs` epochs of unsupervised edge-loss training.
  void TrainEpochs(const AttributedGraph& graph, const nn::Matrix& features,
                   uint32_t epochs);

  /// Embeds every vertex with one deterministic sampled pass.
  nn::Matrix Infer(const AttributedGraph& graph, const nn::Matrix& features);

 private:
  /// Pipeline-driven twins of TrainEpochs / Infer, taken when
  /// config_.pipeline_depth >= 1 (and use_blocks): batch drawing + hop
  /// sampling runs on the pipeline's sample lane, the feature gather on its
  /// gather lane, and forward/backward/apply stays on the caller's thread.
  void TrainEpochsPipelined(const AttributedGraph& graph,
                            const nn::Matrix& features, uint32_t epochs);
  nn::Matrix InferPipelined(const AttributedGraph& graph,
                            const nn::Matrix& features);

  GnnConfig config_;
  Rng rng_;
  SageLayer layer1_;
  SageLayer layer2_;
  nn::Adam opt_;
  /// Block-path feature rows keyed by (hop 0, global vertex id): a vertex
  /// sampled by several batches has its feature row gathered once and
  /// reused ("block.reused_rows"), which is exactly the paper's hop-level
  /// materialization applied at the input layer where reuse is
  /// semantics-preserving.
  ops::HopEmbeddingCache feature_rows_;
};

/// \brief Two-layer GraphSAGE with node-wise neighbor sampling.
class GraphSage : public EmbeddingAlgorithm {
 public:
  GraphSage() = default;
  explicit GraphSage(GnnConfig config) : config_(std::move(config)) {}
  std::string name() const override { return "graphsage"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

  /// Embeds with externally supplied initial features (used by models that
  /// stack GraphSAGE, e.g. Evolving GNN warm starts).
  Result<nn::Matrix> EmbedWithFeatures(const AttributedGraph& graph,
                                       const nn::Matrix& features);

 private:
  GnnConfig config_;
};

/// \brief Propagation mode of the convolutional family.
enum class GcnMode {
  kFull,     ///< exact full-batch propagation (GCN)
  kFastGcn,  ///< layer-wise independent importance sampling
  kAsGcn,    ///< layer-wise sampling restricted to the batch's neighborhood
};

/// \brief Two-layer graph convolutional network over the row-normalized
/// adjacency with self-loops.
class Gcn : public EmbeddingAlgorithm {
 public:
  struct Config {
    GnnConfig base;
    GcnMode mode = GcnMode::kFull;
    size_t layer_samples = 128;  ///< sampled support per layer (Fast/AS)
  };

  Gcn() = default;
  explicit Gcn(Config config) : config_(std::move(config)) {}
  std::string name() const override;
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

/// \brief Simplified Struc2Vec: vertices walk over a structural-similarity
/// neighbor list (nearest by k-hop degree signature among sampled
/// candidates), then SGNS. Captures structural identity rather than
/// proximity. Candidate scan is O(n * candidates) — authentically the
/// slowest baseline, as in the paper's Table 7.
class Struc2Vec : public EmbeddingAlgorithm {
 public:
  struct Config {
    nn::SkipGramConfig sgns;
    nn::WalkConfig walks;
    size_t candidates = 256;  ///< candidate sample per vertex
    size_t similar_k = 8;     ///< structural neighbor list size
  };

  Struc2Vec() = default;
  explicit Struc2Vec(Config config) : config_(std::move(config)) {}
  std::string name() const override { return "struc2vec"; }
  Result<nn::Matrix> Embed(const AttributedGraph& graph) override;

 private:
  Config config_;
};

}  // namespace algo
}  // namespace aligraph

#endif  // ALIGRAPH_ALGO_GNN_H_
