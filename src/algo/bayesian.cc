#include "algo/bayesian.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace aligraph {
namespace algo {

Result<nn::Matrix> BayesianCorrection::Correct(
    const nn::Matrix& base, const std::vector<VertexId>& vertices,
    const std::vector<uint32_t>& groups) {
  if (vertices.size() != groups.size()) {
    return Status::InvalidArgument("vertices/groups size mismatch");
  }
  const size_t n = base.rows();
  const size_t d = base.cols();
  Rng rng(config_.seed);

  // Bucket related vertices by knowledge group.
  std::unordered_map<uint32_t, std::vector<VertexId>> by_group;
  for (size_t i = 0; i < vertices.size(); ++i) {
    by_group[groups[i]].push_back(vertices[i]);
  }
  std::vector<std::vector<VertexId>> usable;
  for (auto& [g, members] : by_group) {
    if (members.size() >= 2) usable.push_back(std::move(members));
  }

  // Corrections (posterior means, updated by SGD) and the projection f.
  nn::Matrix delta(n, d);
  nn::Linear f(d, d, rng);
  // Initialize f near identity so the correction starts from the base.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      f.weight().value.At(i, j) = (i == j) ? 1.0f : 0.0f;
    }
  }
  nn::Sgd opt(config_.learning_rate);
  const float lr = config_.learning_rate;

  if (!usable.empty()) {
    nn::Matrix input(2, d);
    for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
      for (size_t p = 0; p < config_.pairs_per_epoch; ++p) {
        const auto& members = usable[rng.Uniform(usable.size())];
        const VertexId v1 = members[rng.Uniform(members.size())];
        const VertexId v2 = members[rng.Uniform(members.size())];
        if (v1 == v2) continue;
        // input rows: h + delta for both entities.
        for (int r = 0; r < 2; ++r) {
          const VertexId v = r == 0 ? v1 : v2;
          auto hb = base.Row(v);
          auto dl = delta.Row(v);
          auto dst = input.Row(r);
          for (size_t j = 0; j < d; ++j) dst[j] = hb[j] + dl[j];
        }
        nn::Matrix z = f.ForwardAt(input);
        // Loss: ||z1 - z2||^2 + anchor * sum_r ||z_r - h_r||^2. The anchor
        // term rules out the collapsed solution f == 0.
        nn::Matrix dz(2, d);
        for (size_t j = 0; j < d; ++j) {
          const float g = 2.0f * (z.At(0, j) - z.At(1, j)) /
                          static_cast<float>(d);
          dz.At(0, j) = g;
          dz.At(1, j) = -g;
        }
        for (int r = 0; r < 2; ++r) {
          const VertexId v = r == 0 ? v1 : v2;
          auto hb = base.Row(v);
          for (size_t j = 0; j < d; ++j) {
            dz.At(r, j) += config_.anchor_strength * 2.0f *
                           (z.At(r, j) - hb[j]) / static_cast<float>(d);
          }
        }
        nn::Matrix dinput = f.BackwardAt(input, dz);
        // Posterior-mean update with the Gaussian prior pulling delta to 0.
        for (int r = 0; r < 2; ++r) {
          const VertexId v = r == 0 ? v1 : v2;
          auto dl = delta.Row(v);
          auto di = dinput.Row(r);
          for (size_t j = 0; j < d; ++j) {
            dl[j] -= lr * (di[j] + config_.prior_strength * dl[j]);
          }
        }
        f.Apply(opt);
      }
    }
  }

  // Corrected embeddings for every row.
  nn::Matrix input_all(n, d);
  for (size_t v = 0; v < n; ++v) {
    auto hb = base.Row(v);
    auto dl = delta.Row(v);
    auto dst = input_all.Row(v);
    for (size_t j = 0; j < d; ++j) dst[j] = hb[j] + dl[j];
  }
  return f.ForwardAt(input_all);
}

}  // namespace algo
}  // namespace aligraph
