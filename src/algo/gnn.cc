#include "algo/gnn.h"

#include <algorithm>
#include <any>
#include <array>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "block/feature_source.h"
#include "block/scaled_csr.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "pipeline/block_pipeline.h"

namespace aligraph {
namespace algo {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Gathers feature rows for a vertex list.
nn::Matrix Gather(const nn::Matrix& features, std::span<const VertexId> ids) {
  nn::Matrix out(ids.size(), features.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto src = features.Row(ids[i]);
    auto dst = out.Row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

// Mean aggregation [n*fan, d] -> [n, d].
nn::Matrix MeanAgg(const nn::Matrix& neigh, size_t fan) {
  const size_t n = neigh.rows() / fan;
  nn::Matrix out(n, neigh.cols());
  const float inv = 1.0f / static_cast<float>(fan);
  for (size_t i = 0; i < n; ++i) {
    auto dst = out.Row(i);
    for (size_t f = 0; f < fan; ++f) nn::Axpy(inv, neigh.Row(i * fan + f), dst);
  }
  return out;
}

nn::Matrix MeanAggBackward(const nn::Matrix& grad, size_t fan) {
  nn::Matrix out(grad.rows() * fan, grad.cols());
  const float inv = 1.0f / static_cast<float>(fan);
  for (size_t i = 0; i < grad.rows(); ++i) {
    auto src = grad.Row(i);
    for (size_t f = 0; f < fan; ++f) nn::Axpy(inv, src, out.Row(i * fan + f));
  }
  return out;
}

// One training batch's edge sample: the root list plus the positive /
// negative pair index lists into it. Factored out of the training loop so
// the sequential path and the pipeline's roots stage draw batches through
// the SAME code — same RNG call sequence, hence bit-identical batches.
struct EdgeBatch {
  std::vector<VertexId> roots;
  std::vector<std::pair<size_t, size_t>> pos;  // index into roots
  std::vector<std::pair<size_t, size_t>> neg;
};

// Positive pairs from random edges; `k` negatives per pair. The guard bounds
// the retries on graphs dominated by sink vertices.
EdgeBatch DrawEdgeBatch(const AttributedGraph& graph,
                        const std::vector<VertexId>& all, Rng& rng,
                        NegativeSampler& negatives, size_t B, uint32_t k) {
  EdgeBatch eb;
  eb.roots.reserve(B * (2 + k));
  size_t made = 0;
  size_t guard = 0;
  while (made < B && guard < B * 16 + 64) {
    ++guard;
    const VertexId u = all[rng.Uniform(all.size())];
    const auto nbs = graph.OutNeighbors(u);
    if (nbs.empty()) continue;
    const VertexId v = nbs[rng.Uniform(nbs.size())].dst;
    const size_t iu = eb.roots.size();
    eb.roots.push_back(u);
    const size_t iv = eb.roots.size();
    eb.roots.push_back(v);
    eb.pos.emplace_back(iu, iv);
    for (VertexId ng : negatives.Sample(k, v)) {
      eb.neg.emplace_back(iu, eb.roots.size());
      eb.roots.push_back(ng);
    }
    ++made;
  }
  return eb;
}

// Edge loss gradient on the root embeddings: connected pairs pulled toward
// score 1, negatives toward 0, normalized by the total pair count.
nn::Matrix EdgeLossGrad(const nn::Matrix& h2, const EdgeBatch& eb) {
  nn::Matrix dh2(h2.rows(), h2.cols());
  const float denom = static_cast<float>(eb.pos.size() + eb.neg.size());
  auto pair_grad = [&](size_t a, size_t b, float label) {
    const float g =
        (SigmoidF(nn::Dot(h2.Row(a), h2.Row(b))) - label) / denom;
    nn::Axpy(g, h2.Row(b), dh2.Row(a));
    nn::Axpy(g, h2.Row(a), dh2.Row(b));
  };
  for (const auto& [a, b] : eb.pos) pair_grad(a, b, 1.0f);
  for (const auto& [a, b] : eb.neg) pair_grad(a, b, 0.0f);
  return dh2;
}

}  // namespace

nn::Matrix SageLayer::Forward(const nn::Matrix& self,
                              const nn::Matrix& neighbors, size_t fan,
                              Cache* cache) {
  ALIGRAPH_CHECK_EQ(neighbors.rows(), self.rows() * fan);
  nn::Matrix agg;
  if (maxpool_) {
    const size_t n = self.rows();
    const size_t d = neighbors.cols();
    agg = nn::Matrix(n, d);
    cache->argmax.assign(n * d, 0);
    for (size_t i = 0; i < n; ++i) {
      auto dst = agg.Row(i);
      for (size_t j = 0; j < d; ++j) dst[j] = neighbors.At(i * fan, j);
      for (size_t f = 1; f < fan; ++f) {
        auto src = neighbors.Row(i * fan + f);
        for (size_t j = 0; j < d; ++j) {
          if (src[j] > dst[j]) {
            dst[j] = src[j];
            cache->argmax[i * d + j] = static_cast<uint32_t>(f);
          }
        }
      }
    }
  } else {
    agg = MeanAgg(neighbors, fan);
  }
  cache->fan = fan;
  cache->input = nn::ConcatCols(self, agg);
  nn::Matrix y = linear_.ForwardAt(cache->input);
  if (relu_) nn::ReluInPlace(y);
  cache->output = y;
  return y;
}

nn::Matrix SageLayer::ForwardBlock(const nn::Matrix& rows,
                                   const block::BlockHop& hop, Cache* cache) {
  const size_t n = hop.num_dst();
  const size_t d = rows.cols();
  nn::Matrix agg(n, d);
  if (maxpool_) {
    cache->argmax.assign(n * d, 0);
    for (size_t i = 0; i < n; ++i) {
      auto dst = agg.Row(i);
      const uint32_t begin = hop.offsets[i];
      auto first = rows.Row(hop.src[begin]);
      for (size_t j = 0; j < d; ++j) dst[j] = first[j];
      for (uint32_t e = begin + 1; e < hop.offsets[i + 1]; ++e) {
        auto src = rows.Row(hop.src[e]);
        for (size_t j = 0; j < d; ++j) {
          if (src[j] > dst[j]) {
            dst[j] = src[j];
            cache->argmax[i * d + j] = e - begin;
          }
        }
      }
    }
  } else {
    const float inv = 1.0f / static_cast<float>(hop.fan);
    for (size_t i = 0; i < n; ++i) {
      auto dst = agg.Row(i);
      for (uint32_t e = hop.offsets[i]; e < hop.offsets[i + 1]; ++e) {
        nn::Axpy(inv, rows.Row(hop.src[e]), dst);
      }
    }
  }
  cache->fan = hop.fan;
  cache->input = nn::ConcatCols(block::GatherRows(rows, hop.dst), agg);
  nn::Matrix y = linear_.ForwardAt(cache->input);
  if (relu_) nn::ReluInPlace(y);
  cache->output = y;
  return y;
}

std::pair<nn::Matrix, nn::Matrix> SageLayer::Backward(
    const Cache& cache, const nn::Matrix& grad_out) {
  const nn::Matrix relu_grad =
      relu_ ? nn::ReluBackward(cache.output, grad_out) : grad_out;
  const nn::Matrix dinput = linear_.BackwardAt(cache.input, relu_grad);
  const size_t n = dinput.rows();
  nn::Matrix dself(n, in_dim_);
  nn::Matrix dagg(n, in_dim_);
  for (size_t i = 0; i < n; ++i) {
    auto src = dinput.Row(i);
    auto s = dself.Row(i);
    auto a = dagg.Row(i);
    for (size_t j = 0; j < in_dim_; ++j) {
      s[j] = src[j];
      a[j] = src[in_dim_ + j];
    }
  }
  nn::Matrix dneigh;
  if (maxpool_) {
    dneigh = nn::Matrix(n * cache.fan, in_dim_);
    for (size_t i = 0; i < n; ++i) {
      auto src = dagg.Row(i);
      for (size_t j = 0; j < in_dim_; ++j) {
        dneigh.At(i * cache.fan + cache.argmax[i * in_dim_ + j], j) = src[j];
      }
    }
  } else {
    dneigh = MeanAggBackward(dagg, cache.fan);
  }
  return {std::move(dself), std::move(dneigh)};
}

Result<nn::Matrix> GraphSage::Embed(const AttributedGraph& graph) {
  const nn::Matrix features =
      BuildFeatureMatrix(graph, config_.feature_dim);
  return EmbedWithFeatures(graph, features);
}

SageTrainer::SageTrainer(const GnnConfig& config, size_t feature_dim)
    : config_(config),
      rng_(config.seed),
      layer1_(feature_dim, config.dim, config.aggregator == "maxpool", rng_),
      layer2_(config.dim, config.dim, config.aggregator == "maxpool", rng_,
              /*relu=*/false),
      opt_(config.learning_rate),
      feature_rows_(feature_dim) {}

void SageTrainer::TrainEpochs(const AttributedGraph& graph,
                              const nn::Matrix& features, uint32_t epochs) {
  if (config_.use_blocks && config_.pipeline_depth >= 1) {
    TrainEpochsPipelined(graph, features, epochs);
    return;
  }
  Rng& rng = rng_;
  SageLayer& layer1 = layer1_;
  SageLayer& layer2 = layer2_;
  nn::Adam& opt = opt_;

  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negatives(graph, all, 0.75, config_.seed + 2);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, config_.seed + 3);
  LocalNeighborSource source(graph);
  block::MatrixFeatureSource feature_source(features);
  // The cached feature rows are only valid for THIS (graph, features)
  // pair; trainers are reused across snapshots (Evolving GNN), so start
  // each training run clean. Reuse still spans every batch of the run.
  feature_rows_.Reset();

  const uint32_t f1 = config_.fanout1;
  const uint32_t f2 = config_.fanout2;
  const size_t B = config_.batch_size;
  const uint32_t k = config_.negatives;

  for (uint32_t epoch = 0; epoch < epochs; ++epoch) {
    for (size_t batch = 0; batch < config_.batches_per_epoch; ++batch) {
      const EdgeBatch eb = DrawEdgeBatch(graph, all, rng, negatives, B, k);
      if (eb.roots.empty()) continue;

      // Sampled 2-hop tree and feature gathering. Both branches draw the
      // same sample (one shared draw loop) and execute the same float-op
      // sequence, so the produced embeddings are bitwise equal; the block
      // branch gathers features once per unique vertex (with cross-batch
      // row reuse) instead of once per slot.
      const std::vector<uint32_t> fans{f1, f2};
      SageLayer::Cache c_roots, c_h1, c_top;
      nn::Matrix h1_roots, h1_h1, h2;
      if (config_.use_blocks) {
        const block::SampledBlock blk = hood.SampleBlock(
            source, eb.roots, NeighborhoodSampler::kAllEdgeTypes, fans);
        const nn::Matrix x =
            block::GatherBlockFeatures(blk, feature_source, &feature_rows_);
        h1_roots = layer1.ForwardBlock(x, blk.hops()[0], &c_roots);
        h1_h1 = layer1.ForwardBlock(x, blk.hops()[1], &c_h1);
        h2 = layer2.Forward(h1_roots, h1_h1, f1, &c_top);
      } else {
        const NeighborhoodSample tree = hood.Sample(
            source, eb.roots, NeighborhoodSampler::kAllEdgeTypes, fans);
        const nn::Matrix x_roots = Gather(features, eb.roots);
        const nn::Matrix x_h1 = Gather(features, tree.hops[0]);
        const nn::Matrix x_h2 = Gather(features, tree.hops[1]);
        h1_roots = layer1.Forward(x_roots, x_h1, f1, &c_roots);
        h1_h1 = layer1.Forward(x_h1, x_h2, f2, &c_h1);
        h2 = layer2.Forward(h1_roots, h1_h1, f1, &c_top);
      }

      // Edge loss; backward through the tree. Feature gradients discarded.
      const nn::Matrix dh2 = EdgeLossGrad(h2, eb);
      auto [dh1_roots, dh1_h1] = layer2.Backward(c_top, dh2);
      layer1.Backward(c_roots, dh1_roots);
      layer1.Backward(c_h1, dh1_h1);
      layer1.Apply(opt);
      layer2.Apply(opt);
    }
  }
}

void SageTrainer::TrainEpochsPipelined(const AttributedGraph& graph,
                                       const nn::Matrix& features,
                                       uint32_t epochs) {
  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negatives(graph, all, 0.75, config_.seed + 2);
  NeighborhoodSampler hood(NeighborStrategy::kUniform, config_.seed + 3);
  LocalNeighborSource source(graph);
  block::MatrixFeatureSource feature_source(features);
  feature_rows_.Reset();

  const uint32_t f1 = config_.fanout1;
  const std::vector<uint32_t> fans{f1, config_.fanout2};
  const size_t B = config_.batch_size;
  const uint32_t k = config_.negatives;
  const size_t num_batches =
      static_cast<size_t>(epochs) * config_.batches_per_epoch;

  // Stage state partitioning keeps every stateful participant single-stage
  // (hence single-threaded and in batch order, hence bit-identical to the
  // sequential loop): rng_ / negatives / hood live on the sample lane,
  // feature_rows_ on the gather lane, layers / optimizer on this thread.
  pipeline::BlockPipeline pipe({config_.pipeline_depth});
  const Status run = pipe.Run(
      hood, source, NeighborhoodSampler::kAllEdgeTypes, fans, num_batches,
      /*roots=*/
      [&](size_t, std::any* user) {
        EdgeBatch eb = DrawEdgeBatch(graph, all, rng_, negatives, B, k);
        std::vector<VertexId> roots = eb.roots;
        *user = std::move(eb);
        return roots;
      },
      /*gather=*/
      [&](const block::SampledBlock& blk) {
        return block::GatherBlockFeatures(blk, feature_source,
                                          &feature_rows_);
      },
      /*compute=*/
      [&](size_t, const block::SampledBlock& blk, const nn::Matrix& x,
          std::any& user) {
        const EdgeBatch& eb = std::any_cast<const EdgeBatch&>(user);
        if (eb.roots.empty()) return;  // mirrors the sequential `continue`
        SageLayer::Cache c_roots, c_h1, c_top;
        const nn::Matrix h1_roots =
            layer1_.ForwardBlock(x, blk.hops()[0], &c_roots);
        const nn::Matrix h1_h1 = layer1_.ForwardBlock(x, blk.hops()[1], &c_h1);
        const nn::Matrix h2 = layer2_.Forward(h1_roots, h1_h1, f1, &c_top);
        const nn::Matrix dh2 = EdgeLossGrad(h2, eb);
        auto [dh1_roots, dh1_h1] = layer2_.Backward(c_top, dh2);
        layer1_.Backward(c_roots, dh1_roots);
        layer1_.Backward(c_h1, dh1_h1);
        layer1_.Apply(opt_);
        layer2_.Apply(opt_);
      });
  // The lanes are owned by `pipe` and cannot have been shut down here.
  ALIGRAPH_CHECK(run.ok());
}

nn::Matrix SageTrainer::Infer(const AttributedGraph& graph,
                              const nn::Matrix& features) {
  if (config_.use_blocks && config_.pipeline_depth >= 1) {
    return InferPipelined(graph, features);
  }
  SageLayer& layer1 = layer1_;
  SageLayer& layer2 = layer2_;
  LocalNeighborSource source(graph);
  const uint32_t f1 = config_.fanout1;
  const uint32_t f2 = config_.fanout2;

  // Inference: one deterministic sampled pass over all vertices, chunked.
  nn::Matrix out(graph.num_vertices(), config_.dim);
  NeighborhoodSampler infer_hood(NeighborStrategy::kUniform, config_.seed + 7);
  block::MatrixFeatureSource feature_source(features);
  feature_rows_.Reset();
  const size_t chunk = 512;
  for (VertexId begin = 0; begin < graph.num_vertices(); begin += chunk) {
    const VertexId end =
        std::min<VertexId>(begin + chunk, graph.num_vertices());
    std::vector<VertexId> roots(end - begin);
    std::iota(roots.begin(), roots.end(), begin);
    const std::vector<uint32_t> fans{f1, f2};
    SageLayer::Cache c_roots, c_h1, c_top;
    nn::Matrix h1_roots, h1_h1, h2;
    if (config_.use_blocks) {
      const block::SampledBlock blk = infer_hood.SampleBlock(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
      const nn::Matrix x =
          GatherBlockFeatures(blk, feature_source, &feature_rows_);
      h1_roots = layer1.ForwardBlock(x, blk.hops()[0], &c_roots);
      h1_h1 = layer1.ForwardBlock(x, blk.hops()[1], &c_h1);
      h2 = layer2.Forward(h1_roots, h1_h1, f1, &c_top);
    } else {
      const NeighborhoodSample tree = infer_hood.Sample(
          source, roots, NeighborhoodSampler::kAllEdgeTypes, fans);
      const nn::Matrix x_roots = Gather(features, roots);
      const nn::Matrix x_h1 = Gather(features, tree.hops[0]);
      const nn::Matrix x_h2 = Gather(features, tree.hops[1]);
      h1_roots = layer1.Forward(x_roots, x_h1, f1, &c_roots);
      h1_h1 = layer1.Forward(x_h1, x_h2, f2, &c_h1);
      h2 = layer2.Forward(h1_roots, h1_h1, f1, &c_top);
    }
    nn::L2NormalizeRows(h2);
    for (size_t i = 0; i < h2.rows(); ++i) {
      auto src = h2.Row(i);
      auto dst = out.Row(begin + i);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return out;
}

nn::Matrix SageTrainer::InferPipelined(const AttributedGraph& graph,
                                       const nn::Matrix& features) {
  LocalNeighborSource source(graph);
  const uint32_t f1 = config_.fanout1;
  const std::vector<uint32_t> fans{f1, config_.fanout2};

  nn::Matrix out(graph.num_vertices(), config_.dim);
  NeighborhoodSampler infer_hood(NeighborStrategy::kUniform, config_.seed + 7);
  block::MatrixFeatureSource feature_source(features);
  feature_rows_.Reset();
  const size_t chunk = 512;
  const size_t num_batches =
      (static_cast<size_t>(graph.num_vertices()) + chunk - 1) / chunk;

  pipeline::BlockPipeline pipe({config_.pipeline_depth});
  const Status run = pipe.Run(
      infer_hood, source, NeighborhoodSampler::kAllEdgeTypes, fans,
      num_batches,
      /*roots=*/
      [&](size_t b, std::any*) {
        const VertexId begin = static_cast<VertexId>(b * chunk);
        const VertexId end =
            std::min<VertexId>(begin + chunk, graph.num_vertices());
        std::vector<VertexId> roots(end - begin);
        std::iota(roots.begin(), roots.end(), begin);
        return roots;
      },
      /*gather=*/
      [&](const block::SampledBlock& blk) {
        return block::GatherBlockFeatures(blk, feature_source,
                                          &feature_rows_);
      },
      /*compute=*/
      [&](size_t b, const block::SampledBlock& blk, const nn::Matrix& x,
          std::any&) {
        SageLayer::Cache c_roots, c_h1, c_top;
        const nn::Matrix h1_roots =
            layer1_.ForwardBlock(x, blk.hops()[0], &c_roots);
        const nn::Matrix h1_h1 = layer1_.ForwardBlock(x, blk.hops()[1], &c_h1);
        nn::Matrix h2 = layer2_.Forward(h1_roots, h1_h1, f1, &c_top);
        nn::L2NormalizeRows(h2);
        const VertexId begin = static_cast<VertexId>(b * chunk);
        for (size_t i = 0; i < h2.rows(); ++i) {
          auto src = h2.Row(i);
          auto dst = out.Row(begin + i);
          std::copy(src.begin(), src.end(), dst.begin());
        }
      });
  ALIGRAPH_CHECK(run.ok());
  return out;
}

Result<nn::Matrix> GraphSage::EmbedWithFeatures(const AttributedGraph& graph,
                                                const nn::Matrix& features) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  if (features.rows() != graph.num_vertices()) {
    return Status::InvalidArgument("feature matrix row count mismatch");
  }
  SageTrainer trainer(config_, features.cols());
  trainer.TrainEpochs(graph, features, config_.epochs);
  return trainer.Infer(graph, features);
}

std::string Gcn::name() const {
  switch (config_.mode) {
    case GcnMode::kFull:
      return "gcn";
    case GcnMode::kFastGcn:
      return "fastgcn";
    case GcnMode::kAsGcn:
      return "as-gcn";
  }
  return "gcn";
}

Result<nn::Matrix> Gcn::Embed(const AttributedGraph& graph) {
  if (graph.num_vertices() == 0) return Status::InvalidArgument("empty graph");
  const GnnConfig& base = config_.base;
  const VertexId n = graph.num_vertices();
  const nn::Matrix x = BuildFeatureMatrix(graph, base.feature_dim);
  Rng rng(base.seed);
  nn::Linear w1(base.feature_dim, base.dim, rng);
  nn::Linear w2(base.dim, base.dim, rng);
  nn::Adam opt(base.learning_rate);

  // Support sets per layer (Fast/AS modes); full mode uses every vertex.
  const bool sampled = config_.mode != GcnMode::kFull;
  std::vector<double> degree_weight(n);
  for (VertexId v = 0; v < n; ++v) {
    degree_weight[v] = static_cast<double>(graph.OutDegree(v) + 1);
  }
  AliasTable degree_table(degree_weight);

  // Row-normalized propagation with self loops restricted to a support set
  // (empty support = all vertices). The importance-sampling estimator
  // rescales each sampled contribution by 1 / (s * q(u)).
  auto propagate = [&](const nn::Matrix& h,
                       const std::unordered_set<VertexId>* support,
                       double support_scale) {
    nn::Matrix out(n, h.cols());
    for (VertexId v = 0; v < n; ++v) {
      auto dst = out.Row(v);
      const auto nbs = graph.OutNeighbors(v);
      const float inv = 1.0f / static_cast<float>(nbs.size() + 1);
      nn::Axpy(inv, h.Row(v), dst);  // self loop always retained
      for (const Neighbor& nb : nbs) {
        if (support != nullptr && support->count(nb.dst) == 0) continue;
        const float scale =
            support == nullptr
                ? inv
                : inv * static_cast<float>(support_scale /
                                           degree_weight[nb.dst]);
        nn::Axpy(scale, h.Row(nb.dst), dst);
      }
    }
    return out;
  };
  // Transposed propagation for the backward pass (same support).
  auto propagate_t = [&](const nn::Matrix& g,
                         const std::unordered_set<VertexId>* support,
                         double support_scale) {
    nn::Matrix out(n, g.cols());
    for (VertexId v = 0; v < n; ++v) {
      const auto nbs = graph.OutNeighbors(v);
      const float inv = 1.0f / static_cast<float>(nbs.size() + 1);
      nn::Axpy(inv, g.Row(v), out.Row(v));
      for (const Neighbor& nb : nbs) {
        if (support != nullptr && support->count(nb.dst) == 0) continue;
        const float scale =
            support == nullptr
                ? inv
                : inv * static_cast<float>(support_scale /
                                           degree_weight[nb.dst]);
        nn::Axpy(scale, g.Row(v), out.Row(nb.dst));
      }
    }
    return out;
  };

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negatives(graph, all, 0.75, base.seed + 2);

  double total_degree = 0;
  for (double w : degree_weight) total_degree += w;

  for (uint32_t epoch = 0; epoch < base.epochs; ++epoch) {
    for (size_t step = 0; step < base.batches_per_epoch / 8 + 1; ++step) {
      // Layer support sampling.
      std::unordered_set<VertexId> support;
      const std::unordered_set<VertexId>* support_ptr = nullptr;
      double support_scale = 1.0;
      if (sampled) {
        if (config_.mode == GcnMode::kFastGcn) {
          // Independent importance sampling over all vertices.
          for (size_t i = 0; i < config_.layer_samples; ++i) {
            support.insert(
                static_cast<VertexId>(degree_table.Sample(rng)));
          }
        } else {
          // AS-GCN: sample within the 1-hop neighborhood of a random batch,
          // conditioning the support on where it is actually needed.
          std::vector<VertexId> cand;
          for (size_t i = 0; i < base.batch_size; ++i) {
            const VertexId v = all[rng.Uniform(all.size())];
            for (const Neighbor& nb : graph.OutNeighbors(v)) {
              cand.push_back(nb.dst);
            }
          }
          if (cand.empty()) cand = all;
          for (size_t i = 0;
               i < config_.layer_samples && i < cand.size() * 4; ++i) {
            support.insert(cand[rng.Uniform(cand.size())]);
          }
        }
        support_ptr = &support;
        support_scale =
            total_degree / static_cast<double>(n) *
            static_cast<double>(support.size()) / config_.layer_samples;
      }

      // The block path compiles the support-restricted propagation into a
      // ScaledCsr once per step: the per-edge hash-set membership test and
      // scale recomputation of the legacy lambdas disappear from the hot
      // loop, and the CSR is reused by both forward propagations and the
      // transposed backward one. Edge order and scales match the lambdas
      // exactly, so both paths are bitwise equal.
      block::ScaledCsr step_csr;
      if (base.use_blocks) {
        step_csr = block::BuildPropagationCsr(graph, support_ptr,
                                              support_scale, degree_weight);
      }
      auto prop = [&](const nn::Matrix& h) {
        return base.use_blocks ? step_csr.Propagate(h)
                               : propagate(h, support_ptr, support_scale);
      };
      auto prop_t = [&](const nn::Matrix& g) {
        return base.use_blocks
                   ? step_csr.PropagateTransposed(g)
                   : propagate_t(g, support_ptr, support_scale);
      };

      // Forward.
      const nn::Matrix px = prop(x);
      nn::Matrix h1 = w1.ForwardAt(px);
      nn::ReluInPlace(h1);
      const nn::Matrix h1_act = h1;
      const nn::Matrix ph1 = prop(h1_act);
      const nn::Matrix h2 = w2.ForwardAt(ph1);

      // Sampled-edge loss on h2.
      nn::Matrix dh2(h2.rows(), h2.cols());
      const size_t pairs = base.batch_size;
      for (size_t i = 0; i < pairs; ++i) {
        const VertexId u = all[rng.Uniform(all.size())];
        const auto nbs = graph.OutNeighbors(u);
        if (nbs.empty()) continue;
        const VertexId v = nbs[rng.Uniform(nbs.size())].dst;
        auto grad_pair = [&](VertexId a, VertexId b, float label) {
          const float g = (SigmoidF(nn::Dot(h2.Row(a), h2.Row(b))) - label) /
                          static_cast<float>(pairs * (1 + base.negatives));
          nn::Axpy(g, h2.Row(b), dh2.Row(a));
          nn::Axpy(g, h2.Row(a), dh2.Row(b));
        };
        grad_pair(u, v, 1.0f);
        for (VertexId ng : negatives.Sample(base.negatives, v)) {
          grad_pair(u, ng, 0.0f);
        }
      }

      // Backward.
      const nn::Matrix dph1 = w2.BackwardAt(ph1, dh2);
      const nn::Matrix dh1 = prop_t(dph1);
      const nn::Matrix dh1_pre = nn::ReluBackward(h1_act, dh1);
      w1.BackwardAt(px, dh1_pre);
      w1.Apply(opt);
      w2.Apply(opt);
    }
  }

  // Inference is always exact full propagation with the trained weights.
  block::ScaledCsr full_csr;
  if (base.use_blocks) {
    full_csr = block::BuildPropagationCsr(graph, nullptr, 1.0, degree_weight);
  }
  auto full_prop = [&](const nn::Matrix& h) {
    return base.use_blocks ? full_csr.Propagate(h) : propagate(h, nullptr, 1.0);
  };
  const nn::Matrix px = full_prop(x);
  nn::Matrix h1 = w1.ForwardAt(px);
  nn::ReluInPlace(h1);
  const nn::Matrix ph1 = full_prop(h1);
  nn::Matrix h2 = w2.ForwardAt(ph1);
  nn::L2NormalizeRows(h2);
  return h2;
}

Result<nn::Matrix> Struc2Vec::Embed(const AttributedGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  Rng rng(config_.sgns.seed + 41);

  // Structural signature: (log out-degree, log in-degree, log mean neighbor
  // degree) — a compact stand-in for struc2vec's degree-sequence rings.
  std::vector<std::array<float, 3>> sig(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbs = graph.OutNeighbors(v);
    double mean_nb = 0;
    for (const Neighbor& nb : nbs) {
      mean_nb += static_cast<double>(graph.OutDegree(nb.dst));
    }
    if (!nbs.empty()) mean_nb /= static_cast<double>(nbs.size());
    sig[v] = {std::log1p(static_cast<float>(graph.OutDegree(v))),
              std::log1p(static_cast<float>(graph.InDegree(v))),
              std::log1p(static_cast<float>(mean_nb))};
  }
  auto dist = [&](VertexId a, VertexId b) {
    float acc = 0;
    for (int i = 0; i < 3; ++i) {
      const float d = sig[a][i] - sig[b][i];
      acc += d * d;
    }
    return acc;
  };

  // Structural neighbor lists: nearest similar_k among sampled candidates.
  std::vector<std::vector<VertexId>> similar(n);
  for (VertexId v = 0; v < n; ++v) {
    std::vector<std::pair<float, VertexId>> cand;
    cand.reserve(config_.candidates);
    for (size_t c = 0; c < config_.candidates; ++c) {
      const VertexId u = static_cast<VertexId>(rng.Uniform(n));
      if (u == v) continue;
      cand.emplace_back(dist(v, u), u);
    }
    const size_t k = std::min(config_.similar_k, cand.size());
    std::partial_sort(cand.begin(), cand.begin() + k, cand.end());
    for (size_t i = 0; i < k; ++i) similar[v].push_back(cand[i].second);
  }

  // Walks over the similarity lists + SGNS.
  std::vector<std::vector<VertexId>> walks;
  for (uint32_t w = 0; w < config_.walks.walks_per_vertex; ++w) {
    for (VertexId start = 0; start < n; ++start) {
      std::vector<VertexId> walk{start};
      while (walk.size() < config_.walks.walk_length) {
        const auto& list = similar[walk.back()];
        if (list.empty()) break;
        walk.push_back(list[rng.Uniform(list.size())]);
      }
      if (walk.size() >= 2) walks.push_back(std::move(walk));
    }
  }
  nn::SkipGramModel model(n, config_.sgns);
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negs(graph, all, 0.75, config_.sgns.seed);
  model.TrainWalks(walks, negs);
  return model.embeddings().matrix();
}

}  // namespace algo
}  // namespace aligraph
