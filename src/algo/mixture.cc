#include "algo/mixture.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sampling/sampler.h"

namespace aligraph {
namespace algo {
namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Result<nn::Matrix> MixtureGnn::Embed(const AttributedGraph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  const size_t S = config_.senses;
  const size_t d = config_.sense_dim;
  Rng rng(config_.seed);

  std::vector<nn::EmbeddingTable> sense;  // per sense, n x d
  for (size_t s = 0; s < S; ++s) sense.emplace_back(n, d, rng, 0.05f);
  nn::EmbeddingTable context(n, d, rng, 0.05f);
  // Sense prior P, per vertex, updated from posterior responsibilities.
  nn::Matrix prior(n, S);
  prior.Fill(1.0f / static_cast<float>(S));

  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  NegativeSampler negs(graph, all, 0.75, config_.seed + 1);
  const auto walks = nn::UniformWalks(graph, config_.walks);
  const float lr = config_.learning_rate;

  std::vector<float> resp(S), score(S);

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& walk : walks) {
      for (size_t i = 0; i + 1 < walk.size(); ++i) {
        const VertexId center = walk[i];
        const VertexId ctx_v = walk[i + 1];
        auto ctx = context.Row(ctx_v);

        // Posterior responsibility of each sense for this context
        // (E step of the lower-bound maximization).
        float mx = -1e30f;
        for (size_t s = 0; s < S; ++s) {
          score[s] = nn::Dot(sense[s].Row(center), ctx) +
                     std::log(std::max(prior.At(center, s), 1e-6f));
          mx = std::max(mx, score[s]);
        }
        float sum = 0;
        for (size_t s = 0; s < S; ++s) {
          resp[s] = std::exp(score[s] - mx);
          sum += resp[s];
        }
        for (size_t s = 0; s < S; ++s) resp[s] /= sum;

        // M step: every sense takes a responsibility-weighted SGNS update.
        const auto negatives = negs.Sample(config_.negatives, ctx_v);
        for (size_t s = 0; s < S; ++s) {
          if (resp[s] < 1e-3f) continue;
          auto hs = sense[s].Row(center);
          auto sgns = [&](VertexId target, float label) {
            auto ct = context.Row(target);
            const float g =
                resp[s] * (SigmoidF(nn::Dot(hs, ct)) - label);
            // center first so the context update uses the pre-step value.
            std::vector<float> dcenter(d);
            nn::Axpy(g, ct, dcenter);
            context.SgdUpdate(target, hs, lr * g);
            nn::Axpy(-lr, dcenter, hs);
          };
          sgns(ctx_v, 1.0f);
          for (VertexId ng : negatives) sgns(ng, 0.0f);
          // Prior follows the running responsibilities.
          prior.At(center, s) =
              0.99f * prior.At(center, s) + 0.01f * resp[s];
        }
      }
    }
  }

  // Output: concatenated senses.
  nn::Matrix out(n, S * d);
  for (VertexId v = 0; v < n; ++v) {
    auto dst = out.Row(v);
    for (size_t s = 0; s < S; ++s) {
      auto src = sense[s].Row(v);
      std::copy(src.begin(), src.end(), dst.begin() + s * d);
    }
  }
  return out;
}

InteractionAutoencoder::InteractionAutoencoder(size_t num_items,
                                               Config config)
    : config_(config),
      num_items_(num_items),
      rng_(config.seed),
      encoder_(num_items, config.hidden, rng_),
      enc_logvar_(num_items, config.hidden, rng_),
      decoder_(config.hidden, num_items, rng_) {}

void InteractionAutoencoder::Train(
    const std::vector<std::vector<uint32_t>>& user_items) {
  nn::Sgd opt(config_.learning_rate);
  nn::Matrix x(1, num_items_);
  nn::Matrix eps(1, config_.hidden);

  for (uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& items : user_items) {
      if (items.empty()) continue;
      // Input: multi-hot, DAE-corrupted by dropout.
      x.Fill(0.0f);
      for (uint32_t it : items) {
        if (config_.variational || !rng_.Bernoulli(config_.corruption)) {
          x.At(0, it) = 1.0f;
        }
      }
      nn::Matrix mu = encoder_.Forward(x);
      nn::TanhInPlace(mu);
      const nn::Matrix mu_act = mu;

      nn::Matrix z = mu_act;
      nn::Matrix logvar;
      if (config_.variational) {
        logvar = enc_logvar_.ForwardAt(x);
        for (size_t j = 0; j < config_.hidden; ++j) {
          const float sigma = std::exp(0.5f * logvar.At(0, j));
          eps.At(0, j) = static_cast<float>(rng_.NextGaussian());
          z.At(0, j) += sigma * eps.At(0, j);
        }
      }

      nn::Matrix logits = decoder_.Forward(z);
      // Multi-hot BCE against the uncorrupted interactions.
      nn::Matrix dlogits(1, num_items_);
      for (size_t j = 0; j < num_items_; ++j) {
        const float label =
            std::find(items.begin(), items.end(), j) != items.end() ? 1.0f
                                                                    : 0.0f;
        dlogits.At(0, j) =
            (SigmoidF(logits.At(0, j)) - label) / num_items_;
      }
      nn::Matrix dz = decoder_.Backward(dlogits);

      if (config_.variational) {
        // KL(N(mu, sigma) || N(0,1)) gradients: dmu += beta*mu,
        // dlogvar += beta*0.5*(exp(logvar)-1), plus the sampling path.
        nn::Matrix dlogvar(1, config_.hidden);
        for (size_t j = 0; j < config_.hidden; ++j) {
          const float sigma = std::exp(0.5f * logvar.At(0, j));
          dlogvar.At(0, j) =
              dz.At(0, j) * eps.At(0, j) * 0.5f * sigma +
              config_.beta * 0.5f * (std::exp(logvar.At(0, j)) - 1.0f);
          dz.At(0, j) += config_.beta * mu_act.At(0, j);
        }
        enc_logvar_.BackwardAt(x, dlogvar);
        enc_logvar_.Apply(opt);
      }

      encoder_.Backward(nn::TanhBackward(mu_act, dz));
      encoder_.Apply(opt);
      decoder_.Apply(opt);
    }
  }
}

std::vector<float> InteractionAutoencoder::Score(
    const std::vector<uint32_t>& user_items) {
  nn::Matrix x(1, num_items_);
  for (uint32_t it : user_items) x.At(0, it) = 1.0f;
  nn::Matrix mu = encoder_.ForwardAt(x);
  nn::TanhInPlace(mu);
  nn::Matrix logits = decoder_.ForwardAt(mu);
  std::vector<float> out(num_items_);
  for (size_t j = 0; j < num_items_; ++j) out[j] = logits.At(0, j);
  return out;
}

}  // namespace algo
}  // namespace aligraph
